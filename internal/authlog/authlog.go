// Package authlog implements the secure-log channel that connects the SSH
// daemon to the pubkey-success PAM module.
//
// The paper (§3.4): "This module searches recent local secure system entry
// logs to determine this information. ... Information about the state of
// public key authentication is not provided from SSH to PAM. This module is
// the only mechanism known to provide this information." We reproduce that
// arrangement exactly: sshd appends structured events, and the PAM module
// scans the recent tail for an "Accepted publickey" record matching the
// user and connection.
//
// The log doubles as the data source for §4.1 information gathering: every
// successful entry also records shell properties and whether a TTY was
// allocated, which internal/loganalysis aggregates.
package authlog

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EventType enumerates the record kinds sshd emits.
type EventType string

// Event types. AcceptedPublickey and AcceptedPassword mirror OpenSSH's
// wording; SessionOpen carries the §4.1 shell/TTY telemetry.
const (
	AcceptedPublickey EventType = "Accepted publickey"
	AcceptedPassword  EventType = "Accepted password"
	FailedPassword    EventType = "Failed password"
	FailedToken       EventType = "Failed token"
	AcceptedToken     EventType = "Accepted token"
	SessionOpen       EventType = "Session opened"
	SessionClose      EventType = "Session closed"
)

// Event is one log record.
type Event struct {
	Time   time.Time
	Type   EventType
	User   string
	Addr   string // remote IP
	Port   int    // remote port, 0 if unknown
	TTY    bool   // §4.1: was a terminal session initiated
	Shell  string // §4.1: shell property at login
	Detail string // free text (e.g. key fingerprint)
}

// String renders the event in a syslog-like single line:
//
//	2016-10-04T08:00:00Z Accepted publickey for cproctor from 129.114.0.5 port 50022 tty=yes shell=/bin/bash detail="SHA256:..."
func (e Event) String() string {
	tty := "no"
	if e.TTY {
		tty = "yes"
	}
	return fmt.Sprintf("%s %s for %s from %s port %d tty=%s shell=%s detail=%q",
		e.Time.UTC().Format(time.RFC3339), e.Type, e.User, e.Addr, e.Port, tty, e.Shell, e.Detail)
}

// ParseLine is the inverse of Event.String.
func ParseLine(line string) (Event, error) {
	var e Event
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return e, errors.New("authlog: malformed line")
	}
	ts, err := time.Parse(time.RFC3339, line[:i])
	if err != nil {
		return e, fmt.Errorf("authlog: bad timestamp: %w", err)
	}
	e.Time = ts
	rest := line[i+1:]

	forIdx := strings.Index(rest, " for ")
	if forIdx < 0 {
		return e, errors.New("authlog: missing 'for'")
	}
	e.Type = EventType(rest[:forIdx])
	rest = rest[forIdx+len(" for "):]

	fromIdx := strings.Index(rest, " from ")
	if fromIdx < 0 {
		return e, errors.New("authlog: missing 'from'")
	}
	e.User = rest[:fromIdx]
	rest = rest[fromIdx+len(" from "):]

	fields := strings.SplitN(rest, " ", 7)
	if len(fields) < 6 || fields[1] != "port" {
		return e, errors.New("authlog: malformed tail")
	}
	e.Addr = fields[0]
	port, err := strconv.Atoi(fields[2])
	if err != nil {
		return e, fmt.Errorf("authlog: bad port: %w", err)
	}
	e.Port = port
	e.TTY = fields[3] == "tty=yes"
	e.Shell = strings.TrimPrefix(fields[4], "shell=")
	if len(fields) >= 6 {
		d := strings.TrimPrefix(strings.Join(fields[5:], " "), "detail=")
		if unq, err := strconv.Unquote(d); err == nil {
			e.Detail = unq
		}
	}
	return e, nil
}

// Log is an append-only auth log with an in-memory recent-events ring for
// fast scanning and an optional file sink.
type Log struct {
	mu     sync.Mutex
	file   *os.File
	w      *bufio.Writer
	recent []Event // ring buffer
	head   int
	size   int
	max    int
}

// New creates a log keeping the most recent maxRecent events in memory. If
// path is non-empty, events are also appended to that file.
func New(path string, maxRecent int) (*Log, error) {
	if maxRecent <= 0 {
		maxRecent = 4096
	}
	l := &Log{recent: make([]Event, maxRecent), max: maxRecent}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			return nil, fmt.Errorf("authlog: %w", err)
		}
		l.file = f
		l.w = bufio.NewWriter(f)
	}
	return l, nil
}

// Append records an event.
func (l *Log) Append(e Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recent[l.head] = e
	l.head = (l.head + 1) % l.max
	if l.size < l.max {
		l.size++
	}
	if l.w != nil {
		if _, err := l.w.WriteString(e.String() + "\n"); err != nil {
			return fmt.Errorf("authlog: %w", err)
		}
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("authlog: %w", err)
		}
	}
	return nil
}

// ScanRecent calls fn for each in-memory event from newest to oldest and
// stops when fn returns false.
func (l *Log) ScanRecent(fn func(Event) bool) {
	l.mu.Lock()
	events := make([]Event, 0, l.size)
	for i := 0; i < l.size; i++ {
		idx := (l.head - 1 - i + l.max*2) % l.max
		events = append(events, l.recent[idx])
	}
	l.mu.Unlock()
	for _, e := range events {
		if !fn(e) {
			return
		}
	}
}

// FindPubkeySuccess reports whether an AcceptedPublickey event exists for
// user from addr no older than window before now. This is the query the
// paper's first PAM module performs ("Public Key Success?" in Figure 1).
//
// The scan walks the in-memory ring newest-first in place and stops at the
// window horizon, so its cost is bounded by the connection rate within the
// window, not the ring capacity.
func (l *Log) FindPubkeySuccess(user, addr string, now time.Time, window time.Duration) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i < l.size; i++ {
		e := &l.recent[(l.head-1-i+l.max*2)%l.max]
		if now.Sub(e.Time) > window {
			return false // newest-first; everything older is out of window
		}
		if e.Type == AcceptedPublickey && e.User == user && (addr == "" || e.Addr == addr) {
			return true
		}
	}
	return false
}

// Close flushes and closes the file sink, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return err
		}
		return l.file.Close()
	}
	return nil
}

// ReadFile parses a log file written by Log into events, skipping
// malformed lines (counted in the second return).
func ReadFile(path string) ([]Event, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("authlog: %w", err)
	}
	defer f.Close()
	var events []Event
	bad := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if sc.Text() == "" {
			continue
		}
		e, err := ParseLine(sc.Text())
		if err != nil {
			bad++
			continue
		}
		events = append(events, e)
	}
	return events, bad, sc.Err()
}
