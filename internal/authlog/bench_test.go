package authlog

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkAuthlogScan measures FindPubkeySuccess, the query the pubkey
// PAM module runs on every login. The ring is filled to capacity with
// recent events so the scan pays the full in-window walk: the worst case
// for a miss, and the common case on a busy login node.
func BenchmarkAuthlogScan(b *testing.B) {
	for _, size := range []int{1024, 16384, 65536} {
		b.Run(fmt.Sprintf("ring%d", size), func(b *testing.B) {
			l, err := New("", size)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			now := time.Date(2016, 10, 4, 8, 0, 0, 0, time.UTC)
			for i := 0; i < size; i++ {
				l.Append(Event{
					// All events inside the window: the miss case scans
					// the whole ring.
					Time: now.Add(-time.Duration(i) * time.Millisecond),
					Type: AcceptedPublickey,
					User: fmt.Sprintf("user%04d", i%500),
					Addr: fmt.Sprintf("73.1.%d.%d", i%200, i%250),
				})
			}
			b.Run("hit-newest", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if !l.FindPubkeySuccess("user0000", "", now, 5*time.Minute) {
						b.Fatal("expected hit")
					}
				}
			})
			b.Run("miss-full-window", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if l.FindPubkeySuccess("nosuch", "", now, 5*time.Minute) {
						b.Fatal("unexpected hit")
					}
				}
			})
			b.Run("miss-window-horizon", func(b *testing.B) {
				// A narrow window exits at the horizon instead of walking
				// the whole ring — the property the scan's doc promises.
				for i := 0; i < b.N; i++ {
					if l.FindPubkeySuccess("nosuch", "", now, 100*time.Millisecond) {
						b.Fatal("unexpected hit")
					}
				}
			})
		})
	}
}
