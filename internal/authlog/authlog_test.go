package authlog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2016, 10, 4, 8, 0, 0, 0, time.UTC)

func ev(typ EventType, user string, at time.Time) Event {
	return Event{Time: at, Type: typ, User: user, Addr: "129.114.0.5", Port: 50022,
		TTY: true, Shell: "/bin/bash", Detail: "SHA256:abcd"}
}

func TestEventStringParseRoundTrip(t *testing.T) {
	e := ev(AcceptedPublickey, "cproctor", t0)
	got, err := ParseLine(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(e.Time) || got.Type != e.Type || got.User != e.User ||
		got.Addr != e.Addr || got.Port != e.Port || got.TTY != e.TTY ||
		got.Shell != e.Shell || got.Detail != e.Detail {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", e, got)
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"2016-10-04T08:00:00Z no-for-here",
		"not-a-time Accepted publickey for u from 1.2.3.4 port 1 tty=no shell=s detail=\"\"",
		"2016-10-04T08:00:00Z Accepted publickey for u missing-from",
		"2016-10-04T08:00:00Z Accepted publickey for u from 1.2.3.4 port banana tty=no shell=s detail=\"\"",
	}
	for _, l := range bad {
		if _, err := ParseLine(l); err == nil {
			t.Errorf("ParseLine(%q) succeeded, want error", l)
		}
	}
}

func TestFindPubkeySuccess(t *testing.T) {
	l, err := New("", 16)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(ev(AcceptedPublickey, "storm", t0))
	l.Append(ev(AcceptedPassword, "hanlon", t0.Add(time.Second)))

	now := t0.Add(5 * time.Second)
	if !l.FindPubkeySuccess("storm", "129.114.0.5", now, time.Minute) {
		t.Fatal("pubkey success not found")
	}
	if l.FindPubkeySuccess("hanlon", "129.114.0.5", now, time.Minute) {
		t.Fatal("password login reported as pubkey success")
	}
	if l.FindPubkeySuccess("storm", "10.0.0.1", now, time.Minute) {
		t.Fatal("wrong address matched")
	}
	// Empty addr matches any origin.
	if !l.FindPubkeySuccess("storm", "", now, time.Minute) {
		t.Fatal("empty addr should match")
	}
	// Outside the window the event must be ignored.
	if l.FindPubkeySuccess("storm", "129.114.0.5", t0.Add(2*time.Hour), time.Minute) {
		t.Fatal("stale event matched")
	}
}

func TestRingEviction(t *testing.T) {
	l, _ := New("", 4)
	for i := 0; i < 10; i++ {
		l.Append(ev(AcceptedPublickey, fmt.Sprintf("u%d", i), t0.Add(time.Duration(i)*time.Second)))
	}
	var seen []string
	l.ScanRecent(func(e Event) bool {
		seen = append(seen, e.User)
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(seen))
	}
	// Newest first.
	want := []string{"u9", "u8", "u7", "u6"}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen = %v, want %v", seen, want)
		}
	}
}

func TestScanRecentEarlyStop(t *testing.T) {
	l, _ := New("", 16)
	for i := 0; i < 8; i++ {
		l.Append(ev(SessionOpen, fmt.Sprintf("u%d", i), t0))
	}
	n := 0
	l.ScanRecent(func(Event) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("scan visited %d events, want 3", n)
	}
}

func TestFileSinkAndReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "secure.log")
	l, err := New(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(ev(AcceptedPublickey, "storm", t0))
	l.Append(ev(SessionOpen, "storm", t0.Add(time.Second)))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	events, bad, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 || len(events) != 2 {
		t.Fatalf("ReadFile = %d events, %d bad", len(events), bad)
	}
	if events[0].User != "storm" || events[0].Type != AcceptedPublickey {
		t.Fatalf("event[0] = %+v", events[0])
	}
}

func TestReadFileSkipsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "secure.log")
	l, _ := New(path, 4)
	l.Append(ev(AcceptedPassword, "u", t0))
	l.Close()
	// Append garbage by hand.
	f, _ := New(path, 4)
	f.Close()
	if err := appendRaw(path, "not a log line\n"); err != nil {
		t.Fatal(err)
	}
	events, bad, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || bad != 1 {
		t.Fatalf("events=%d bad=%d", len(events), bad)
	}
}

func appendRaw(path, s string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(s)
	return err
}

func TestEventStringDetailQuoting(t *testing.T) {
	e := ev(AcceptedPublickey, "u", t0)
	e.Detail = `tricky "quoted" detail with spaces`
	got, err := ParseLine(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Detail != e.Detail {
		t.Fatalf("detail = %q, want %q", got.Detail, e.Detail)
	}
}

// Property: String/ParseLine round-trips events with arbitrary printable
// user names and details.
func TestRoundTripProperty(t *testing.T) {
	f := func(userRaw, detail string, port uint16, tty bool) bool {
		user := sanitizeToken(userRaw)
		if user == "" {
			user = "u"
		}
		e := Event{Time: t0, Type: AcceptedToken, User: user, Addr: "10.1.2.3",
			Port: int(port), TTY: tty, Shell: "/bin/sh", Detail: detail}
		got, err := ParseLine(e.String())
		return err == nil && got.User == user && got.Detail == detail && got.Port == int(port) && got.TTY == tty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// sanitizeToken strips characters that are structurally meaningful in the
// log format; real usernames never contain them.
func sanitizeToken(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r > ' ' && r != '"' && r < 127 {
			out = append(out, r)
		}
	}
	return string(out)
}
