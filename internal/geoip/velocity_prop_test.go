package geoip

import (
	"math"
	"math/rand"
	"net"
	"testing"
	"time"
)

// randLoc draws a uniformly random surface point (longitude uniform,
// latitude via uniform sin so the poles are not over-sampled).
func randLoc(rng *rand.Rand) Location {
	return Location{
		Lat: math.Asin(2*rng.Float64()-1) * 180 / math.Pi,
		Lon: rng.Float64()*360 - 180,
	}
}

func TestVelocityProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randLoc(rng), randLoc(rng)
		dt := time.Duration(rng.Int63n(int64(48 * time.Hour)))

		km := KilometersBetween(a, b)
		if math.IsNaN(km) || km < 0 {
			t.Fatalf("KilometersBetween(%+v, %+v) = %v", a, b, km)
		}
		if km > 2*math.Pi*6371/2+1 { // no great circle exceeds half the circumference
			t.Fatalf("distance %v km exceeds half the earth's circumference", km)
		}
		if rev := KilometersBetween(b, a); math.Abs(km-rev) > 1e-9*math.Max(1, km) {
			t.Fatalf("distance asymmetric: %v vs %v", km, rev)
		}

		v := Velocity(a, b, dt)
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("Velocity(%+v, %+v, %v) = %v", a, b, dt, v)
		}
		if rev := Velocity(b, a, dt); v != rev {
			t.Fatalf("velocity asymmetric: %v vs %v", v, rev)
		}
		// Monotonic: more time, same distance → no faster.
		if dt > 0 {
			if slower := Velocity(a, b, dt*2); slower > v {
				t.Fatalf("velocity increased with time: %v -> %v", v, slower)
			}
		}
	}
}

func TestVelocityDegenerateIntervals(t *testing.T) {
	austin := Location{Lat: 30.27, Lon: -97.74}
	beijing := Location{Lat: 39.9, Lon: 116.4}
	for _, dt := range []time.Duration{0, -time.Hour, time.Nanosecond, time.Microsecond} {
		v := Velocity(austin, beijing, dt)
		if math.IsNaN(v) {
			t.Fatalf("Velocity(dt=%v) = NaN", dt)
		}
		if dt <= 0 && !math.IsInf(v, 1) {
			t.Fatalf("Velocity(dt=%v) = %v, want +Inf for relocation in no time", dt, v)
		}
		if dt > 0 && (v <= 0 || math.IsInf(v, 1)) {
			t.Fatalf("Velocity(dt=%v) = %v, want finite positive", dt, v)
		}
	}
	// Same place in zero time is calm, not infinite.
	if v := Velocity(austin, austin, 0); v != 0 {
		t.Fatalf("Velocity(same, 0) = %v, want 0", v)
	}
	if v := Velocity(austin, austin, -time.Minute); v != 0 {
		t.Fatalf("Velocity(same, <0) = %v, want 0", v)
	}
}

func TestKilometersBetweenAntipodalClamp(t *testing.T) {
	// Antipodal and near-antipodal points push the haversine intermediate
	// past 1 by float error; the clamp keeps Asin in-domain.
	cases := [][2]Location{
		{{Lat: 0, Lon: 0}, {Lat: 0, Lon: 180}},
		{{Lat: 90, Lon: 0}, {Lat: -90, Lon: 0}},
		{{Lat: 30.0000001, Lon: 50}, {Lat: -30.0000001, Lon: -130}},
	}
	for _, c := range cases {
		km := KilometersBetween(c[0], c[1])
		if math.IsNaN(km) {
			t.Fatalf("KilometersBetween(%+v, %+v) = NaN", c[0], c[1])
		}
		if km < 6371*math.Pi-10 || km > 6371*math.Pi+10 {
			t.Fatalf("antipodal distance = %v, want ~%v", km, 6371*math.Pi)
		}
	}
	if km := KilometersBetween(Location{Lat: 1, Lon: 2}, Location{Lat: 1, Lon: 2}); km != 0 {
		t.Fatalf("zero distance = %v", km)
	}
}

func TestLookupConservativeEdges(t *testing.T) {
	d := Synthetic()
	// IPv6 and nil addresses resolve to nothing rather than panicking.
	for _, ip := range []net.IP{
		net.ParseIP("2001:db8::1"),
		net.ParseIP("::1"),
		nil,
	} {
		if _, err := d.Lookup(ip); err != ErrNotFound {
			t.Fatalf("Lookup(%v) err = %v, want ErrNotFound", ip, err)
		}
	}
	// An IPv4-mapped IPv6 address is still IPv4 and resolves.
	if loc, err := d.Lookup(net.ParseIP("::ffff:129.114.3.7")); err != nil || loc.Country != "US" {
		t.Fatalf("v4-mapped lookup = %+v, %v", loc, err)
	}
}

func TestAddRangeSlashZero(t *testing.T) {
	d := New()
	if err := d.AddRange("0.0.0.0/0", Location{Country: "XX"}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"0.0.0.0", "255.255.255.255", "8.8.8.8"} {
		if loc, err := d.Lookup(net.ParseIP(s)); err != nil || loc.Country != "XX" {
			t.Fatalf("Lookup(%s) under /0 = %+v, %v", s, loc, err)
		}
	}
	// A more specific range added later still wins (longest prefix).
	if err := d.AddRange("10.0.0.0/8", Location{Country: "YY"}); err != nil {
		t.Fatal(err)
	}
	if loc, _ := d.Lookup(net.ParseIP("10.1.2.3")); loc.Country != "YY" {
		t.Fatalf("longest prefix lost to /0: %+v", loc)
	}
	if err := d.AddRange("2001:db8::/32", Location{}); err == nil {
		t.Fatal("IPv6 range accepted")
	}
}
