package geoip

import (
	"math"
	"net"
	"testing"
	"testing/quick"
)

func TestLookupBasic(t *testing.T) {
	d := Synthetic()
	loc, err := d.Lookup(net.ParseIP("129.114.3.7"))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Country != "US" || loc.Region != "Austin TX" {
		t.Fatalf("loc = %+v", loc)
	}
	loc, err = d.Lookup(net.ParseIP("141.20.1.2"))
	if err != nil || loc.Country != "DE" {
		t.Fatalf("DE lookup = %+v, %v", loc, err)
	}
	if _, err := d.Lookup(net.ParseIP("8.8.8.8")); err != ErrNotFound {
		t.Fatalf("unmapped: %v", err)
	}
	if _, err := d.Lookup(net.ParseIP("2001:db8::1")); err != ErrNotFound {
		t.Fatalf("ipv6: %v", err)
	}
}

func TestLongestPrefixWins(t *testing.T) {
	d := New()
	d.AddRange("10.0.0.0/8", Location{Country: "US", Region: "broad"})
	d.AddRange("10.5.0.0/16", Location{Country: "US", Region: "narrow"})
	loc, err := d.Lookup(net.ParseIP("10.5.1.1"))
	if err != nil || loc.Region != "narrow" {
		t.Fatalf("got %+v, %v", loc, err)
	}
	loc, _ = d.Lookup(net.ParseIP("10.6.1.1"))
	if loc.Region != "broad" {
		t.Fatalf("got %+v", loc)
	}
}

func TestAddRangeErrors(t *testing.T) {
	d := New()
	if err := d.AddRange("banana", Location{}); err == nil {
		t.Fatal("bad CIDR accepted")
	}
	if err := d.AddRange("2001:db8::/32", Location{}); err == nil {
		t.Fatal("IPv6 range accepted")
	}
}

func TestKilometersBetween(t *testing.T) {
	austin := Location{Lat: 30.27, Lon: -97.74}
	london := Location{Lat: 51.51, Lon: -0.13}
	km := KilometersBetween(austin, london)
	// Great-circle Austin–London ≈ 7,900 km.
	if km < 7500 || km > 8300 {
		t.Fatalf("Austin-London = %.0f km", km)
	}
	if d := KilometersBetween(austin, austin); d > 0.001 {
		t.Fatalf("self distance = %f", d)
	}
	// Symmetry.
	if a, b := KilometersBetween(austin, london), KilometersBetween(london, austin); math.Abs(a-b) > 1e-6 {
		t.Fatalf("asymmetric: %f vs %f", a, b)
	}
}

// Property: any IP inside an added /16 resolves to it (absent a more
// specific range).
func TestRangeMembershipProperty(t *testing.T) {
	d := New()
	if err := d.AddRange("172.16.0.0/12", Location{Country: "ZZ"}); err != nil {
		t.Fatal(err)
	}
	f := func(c, x uint8) bool {
		ip := net.IPv4(172, 16+c%16, x, 1)
		loc, err := d.Lookup(ip)
		return err == nil && loc.Country == "ZZ"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
