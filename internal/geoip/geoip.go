// Package geoip is a small in-memory IP-geolocation service: the
// substrate for the paper's named future-work direction ("ready to be
// grown to incorporate new features including geolocation services,
// dynamic risk assessment", §6).
//
// Real deployments load a MaxMind-style database export; the reproduction
// ships a synthetic table with the same query surface (longest-prefix
// match over CIDR ranges) plus coordinates so the risk engine can compute
// travel velocity. Loading custom tables is supported through AddRange.
package geoip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"
)

// Location describes where an address appears to be.
type Location struct {
	Country string  // ISO 3166-1 alpha-2
	Region  string  // free-form region/city label
	Lat     float64 // degrees
	Lon     float64 // degrees
}

// rangeEntry is one CIDR → location mapping (IPv4 only; the paper's
// deployment predates meaningful IPv6 SSH traffic at the center).
type rangeEntry struct {
	lo, hi uint32
	bits   int
	loc    Location
}

// DB is a longest-prefix-match geolocation table, safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	ranges []rangeEntry
	sorted bool
}

// New returns an empty database.
func New() *DB { return &DB{} }

// ErrNotFound is returned for unmapped addresses.
var ErrNotFound = errors.New("geoip: address not in any known range")

// AddRange maps a CIDR block to a location.
func (d *DB) AddRange(cidr string, loc Location) error {
	_, n, err := net.ParseCIDR(cidr)
	if err != nil {
		return fmt.Errorf("geoip: %w", err)
	}
	v4 := n.IP.To4()
	if v4 == nil {
		return errors.New("geoip: IPv4 ranges only")
	}
	ones, _ := n.Mask.Size()
	lo := binary.BigEndian.Uint32(v4)
	hi := lo | (math.MaxUint32 >> ones)
	if ones == 0 {
		hi = math.MaxUint32
	}
	d.mu.Lock()
	d.ranges = append(d.ranges, rangeEntry{lo: lo, hi: hi, bits: ones, loc: loc})
	d.sorted = false
	d.mu.Unlock()
	return nil
}

// Lookup resolves an address to its most specific known range.
func (d *DB) Lookup(ip net.IP) (Location, error) {
	v4 := ip.To4()
	if v4 == nil {
		return Location{}, ErrNotFound
	}
	u := binary.BigEndian.Uint32(v4)
	d.mu.Lock()
	if !d.sorted {
		// Most specific (longest prefix) first so the first hit wins.
		sort.Slice(d.ranges, func(i, j int) bool { return d.ranges[i].bits > d.ranges[j].bits })
		d.sorted = true
	}
	ranges := d.ranges
	d.mu.Unlock()
	for _, r := range ranges {
		if u >= r.lo && u <= r.hi {
			return r.loc, nil
		}
	}
	return Location{}, ErrNotFound
}

// KilometersBetween is the great-circle distance between two locations.
func KilometersBetween(a, b Location) float64 {
	const earthRadiusKm = 6371
	rad := func(deg float64) float64 { return deg * math.Pi / 180 }
	dLat := rad(b.Lat - a.Lat)
	dLon := rad(b.Lon - a.Lon)
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(rad(a.Lat))*math.Cos(rad(b.Lat))*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Floating-point error can push h a hair past 1 for antipodal points,
	// which would send Asin to NaN; clamp into the valid haversine domain.
	if h > 1 {
		h = 1
	}
	if h < 0 {
		h = 0
	}
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// Velocity is the implied travel speed in km/h between two sightings
// separated by dt. It never divides by zero: a non-positive or sub-
// nanosecond interval across a real distance reads as +Inf (instantaneous
// relocation — always "impossible travel"), and zero distance in zero
// time is 0. The result is symmetric in its endpoints and monotonic:
// non-decreasing in distance, non-increasing in elapsed time.
func Velocity(a, b Location, dt time.Duration) float64 {
	km := KilometersBetween(a, b)
	if dt <= 0 {
		if km > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return km / dt.Hours()
}

// Synthetic builds the demo table used by examples, tests, and the risk
// engine's defaults: the center's own ranges plus a handful of distinct
// geographies including the countries the paper shipped hard tokens to.
func Synthetic() *DB {
	d := New()
	must := func(cidr string, loc Location) {
		if err := d.AddRange(cidr, loc); err != nil {
			panic(err)
		}
	}
	must("10.128.0.0/16", Location{Country: "US", Region: "center-internal", Lat: 30.39, Lon: -97.73})
	must("129.114.0.0/16", Location{Country: "US", Region: "Austin TX", Lat: 30.27, Lon: -97.74})
	must("73.0.0.0/8", Location{Country: "US", Region: "residential US", Lat: 39.5, Lon: -98.35})
	must("128.83.0.0/16", Location{Country: "US", Region: "UT Austin", Lat: 30.28, Lon: -97.73})
	must("141.0.0.0/8", Location{Country: "DE", Region: "Germany", Lat: 51.16, Lon: 10.45})
	must("159.226.0.0/16", Location{Country: "CN", Region: "China", Lat: 39.9, Lon: 116.4})
	must("130.88.0.0/16", Location{Country: "GB", Region: "United Kingdom", Lat: 53.48, Lon: -2.24})
	must("192.33.96.0/19", Location{Country: "CH", Region: "Switzerland", Lat: 47.38, Lon: 8.54})
	must("134.157.0.0/16", Location{Country: "FR", Region: "France", Lat: 48.85, Lon: 2.35})
	must("150.214.0.0/16", Location{Country: "ES", Region: "Spain", Lat: 40.42, Lon: -3.70})
	must("203.0.113.0/24", Location{Country: "AU", Region: "Australia", Lat: -33.87, Lon: 151.21})
	return d
}
