package syncutil

import (
	"sync"
	"testing"
)

func TestStripesRoundUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, DefaultStripes}, {-5, DefaultStripes},
		{1, 1}, {2, 2}, {3, 4}, {200, 256}, {256, 256}, {257, 512},
	} {
		if got := NewStriped(tc.n).Stripes(); got != tc.want {
			t.Errorf("NewStriped(%d).Stripes() = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestSameKeySameStripe(t *testing.T) {
	m := NewStriped(256)
	for _, key := range []string{"", "alice", "bob", "a-very-long-username-for-hashing"} {
		if m.index(key) != m.index(key) {
			t.Fatalf("index(%q) not stable", key)
		}
	}
}

// TestMutualExclusionPerKey hammers a set of counters, one per key, each
// guarded only by the striped lock. Under -race this fails loudly if two
// goroutines holding the same key's lock can run concurrently.
func TestMutualExclusionPerKey(t *testing.T) {
	m := NewStriped(8) // few stripes: force cross-key sharing too
	keys := []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8", "u9"}
	counters := make(map[string]*int, len(keys))
	for _, k := range keys {
		counters[k] = new(int)
	}
	const perKey = 200
	var wg sync.WaitGroup
	for _, k := range keys {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(k string) {
				defer wg.Done()
				for i := 0; i < perKey/4; i++ {
					m.Lock(k)
					*counters[k]++
					m.Unlock(k)
				}
			}(k)
		}
	}
	wg.Wait()
	for _, k := range keys {
		if *counters[k] != perKey {
			t.Errorf("counter[%s] = %d, want %d", k, *counters[k], perKey)
		}
	}
}

func BenchmarkStripedLockUnlock(b *testing.B) {
	m := NewStriped(256)
	b.RunParallel(func(pb *testing.PB) {
		key := "user-with-a-typical-length"
		for pb.Next() {
			m.Lock(key)
			m.Unlock(key)
		}
	})
}
