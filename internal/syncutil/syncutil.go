// Package syncutil provides the concurrency primitives the hot
// authentication path is built on. Its centrepiece is StripedMutex, a
// fixed-size lock table that gives near-per-key mutual exclusion without
// per-key allocation: otpd serialises validation per *user* (fail counter
// and replay high-water-mark updates are read-modify-write), but a single
// process-wide mutex would serialise every user behind one core. Striping
// by a hash of the key lets unrelated users proceed in parallel while two
// operations on the same key always contend on the same stripe.
package syncutil

import "sync"

// DefaultStripes is the stripe count used by NewStriped(0). 256 stripes
// keep the collision probability negligible for the concurrency levels a
// single process sees (even 64 simultaneous validations collide on a
// stripe with probability < 1/4, and a collision only costs serialisation
// of those two requests, not correctness).
const DefaultStripes = 256

// StripedMutex is a hash-striped lock table keyed by string. Two calls
// with the same key always map to the same underlying mutex, so holding
// Lock(key) gives mutual exclusion for that key. Distinct keys may share a
// stripe (false sharing) — that is a performance artifact, never a
// correctness one. The zero value is not ready; use NewStriped.
type StripedMutex struct {
	stripes []sync.Mutex
	mask    uint64
}

// NewStriped returns a table with n stripes rounded up to a power of two;
// n <= 0 means DefaultStripes.
func NewStriped(n int) *StripedMutex {
	if n <= 0 {
		n = DefaultStripes
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &StripedMutex{stripes: make([]sync.Mutex, size), mask: uint64(size - 1)}
}

// FNV-1a, inlined so hashing a key allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (m *StripedMutex) index(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h & m.mask
}

// Lock acquires the stripe for key.
func (m *StripedMutex) Lock(key string) { m.stripes[m.index(key)].Lock() }

// Unlock releases the stripe for key.
func (m *StripedMutex) Unlock(key string) { m.stripes[m.index(key)].Unlock() }

// Stripes reports the table size (always a power of two).
func (m *StripedMutex) Stripes() int { return len(m.stripes) }
