package sshwire

import (
	"fmt"
	"net"
	"strings"
	"testing"
)

func pair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestSendRecvRoundTrip(t *testing.T) {
	client, server := pair(t)
	defer client.Close()
	defer server.Close()

	go func() {
		client.Send(&Msg{T: THello, User: "alice", TTY: true, Shell: "/bin/bash"})
	}()
	m, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.T != THello || m.User != "alice" || !m.TTY || m.Shell != "/bin/bash" {
		t.Fatalf("got %+v", m)
	}
}

func TestBinaryFieldsSurviveJSON(t *testing.T) {
	client, server := pair(t)
	defer client.Close()
	defer server.Close()
	nonce := []byte{0, 1, 2, 255, 254, 10, 13}
	go func() {
		server.Send(&Msg{T: TNonce, Nonce: nonce, Banner: "hi\nthere"})
	}()
	m, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Nonce) != string(nonce) {
		t.Fatalf("nonce = %v", m.Nonce)
	}
	if m.Banner != "hi\nthere" {
		t.Fatalf("banner = %q", m.Banner)
	}
}

func TestRecvOnClosedConn(t *testing.T) {
	client, server := pair(t)
	server.Close()
	if _, err := client.Recv(); err == nil {
		t.Fatal("Recv on closed peer succeeded")
	}
}

func TestRecvMalformedFrame(t *testing.T) {
	a, b := net.Pipe()
	conn := NewConn(b)
	defer conn.Close()
	go func() {
		a.Write([]byte("this is not json\n"))
		a.Close()
	}()
	if _, err := conn.Recv(); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Fatalf("err = %v", err)
	}
}

func TestSequencedConversation(t *testing.T) {
	client, server := pair(t)
	defer client.Close()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		// Server side: prompt, read answer, send result.
		if err := server.Send(&Msg{T: TPrompt, Msg: "Token Code: ", Echo: false}); err != nil {
			done <- err
			return
		}
		m, err := server.Recv()
		if err != nil {
			done <- err
			return
		}
		if m.T != TAnswer || m.Value != "123456" {
			done <- fmt.Errorf("bad answer %+v", m)
			return
		}
		done <- server.Send(&Msg{T: TResult, OK: true, Msg: "welcome"})
	}()
	m, err := client.Recv()
	if err != nil || m.T != TPrompt || m.Echo {
		t.Fatalf("prompt = %+v, %v", m, err)
	}
	if err := client.Send(&Msg{T: TAnswer, Value: "123456"}); err != nil {
		t.Fatal(err)
	}
	m, err = client.Recv()
	if err != nil || m.T != TResult || !m.OK {
		t.Fatalf("result = %+v, %v", m, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRecvIntoResetsBetweenFrames pins the reuse contract: a field set by
// one frame must not leak into the next frame decoded into the same Msg
// (omitempty fields are absent from the wire, so without the reset a
// stale User/Nonce would survive).
func TestRecvIntoResetsBetweenFrames(t *testing.T) {
	client, server := pair(t)
	defer client.Close()
	defer server.Close()

	go func() {
		client.Send(&Msg{T: THello, User: "alice", TTY: true, Nonce: []byte{1, 2}})
		client.Send(&Msg{T: TBye})
	}()
	var m Msg
	if err := server.RecvInto(&m); err != nil {
		t.Fatal(err)
	}
	if m.T != THello || m.User != "alice" || !m.TTY {
		t.Fatalf("first frame = %+v", m)
	}
	if err := server.RecvInto(&m); err != nil {
		t.Fatal(err)
	}
	if m.T != TBye || m.User != "" || m.TTY || m.Nonce != nil {
		t.Fatalf("second frame kept stale fields: %+v", m)
	}
}
