// Package sshwire defines the line protocol between the simulated SSH
// client and the login-node daemon (internal/sshd).
//
// DESIGN.md substitution note: this is not the RFC 4253 binary transport.
// The reproduction needs SSH's *authentication surface* — public-key
// verification invisible to PAM, a password/keyboard-interactive
// conversation, retry limits, banners, and connection multiplexing — and
// those are carried faithfully over JSON lines. Real ed25519 signatures
// over a server nonce stand in for SSH's signed session identifier.
package sshwire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
)

// Message types.
const (
	// Client → server.
	THello   = "hello"   // user, tty, shell
	TPubkey  = "pubkey"  // pub, sig over nonce
	TAnswer  = "answer"  // value (reply to prompt)
	TChannel = "channel" // open a multiplexed channel on an authed conn
	TExec    = "exec"    // cmd (run on an open channel)
	TBye     = "bye"     // close

	// Server → client.
	TNonce     = "nonce"      // nonce, banner
	TPubkeyOK  = "pubkey-ok"  //
	TPubkeyNo  = "pubkey-no"  //
	TPrompt    = "prompt"     // msg, echo
	TInfo      = "info"       // msg
	TResult    = "result"     // ok, msg (authentication verdict)
	TChannelOK = "channel-ok" //
	TExecOut   = "exec-out"   // out
	TError     = "error"      // msg (protocol violation; connection drops)
)

// Msg is the single frame type; unused fields stay empty.
type Msg struct {
	T      string `json:"t"`
	User   string `json:"user,omitempty"`
	TTY    bool   `json:"tty,omitempty"`
	Shell  string `json:"shell,omitempty"`
	Nonce  []byte `json:"nonce,omitempty"`
	Banner string `json:"banner,omitempty"`
	Pub    []byte `json:"pub,omitempty"`
	Sig    []byte `json:"sig,omitempty"`
	Msg    string `json:"msg,omitempty"`
	Echo   bool   `json:"echo,omitempty"`
	Value  string `json:"value,omitempty"`
	OK     bool   `json:"ok,omitempty"`
	Cmd    string `json:"cmd,omitempty"`
	Out    string `json:"out,omitempty"`
}

// Conn frames Msgs over a net.Conn.
type Conn struct {
	c   net.Conn
	r   *bufio.Scanner
	enc *json.Encoder
}

// NewConn wraps c.
func NewConn(c net.Conn) *Conn {
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 16*1024), 1024*1024)
	return &Conn{c: c, r: sc, enc: json.NewEncoder(c)}
}

// Send writes one frame.
func (c *Conn) Send(m *Msg) error {
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("sshwire: send: %w", err)
	}
	return nil
}

// Recv reads one frame.
func (c *Conn) Recv() (*Msg, error) {
	var m Msg
	if err := c.RecvInto(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// RecvInto reads one frame into m, which is reset first. Callers that loop
// over a conversation can reuse one Msg instead of allocating per frame.
func (c *Conn) RecvInto(m *Msg) error {
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return fmt.Errorf("sshwire: recv: %w", err)
		}
		return fmt.Errorf("sshwire: connection closed")
	}
	*m = Msg{}
	if err := json.Unmarshal(c.r.Bytes(), m); err != nil {
		return fmt.Errorf("sshwire: decode: %w", err)
	}
	return nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }
