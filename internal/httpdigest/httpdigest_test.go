package httpdigest

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// RFC 2617 §3.5 worked example.
func TestRFC2617Example(t *testing.T) {
	ha1 := HA1("Mufasa", "testrealm@host.com", "Circle Of Life")
	got := response(ha1,
		"dcd98b7102dd2f0e8b11d0f600bfb0c093", "00000001",
		"0a4f113b", "auth", "GET", "/dir/index.html")
	want := "6629fae49393a05397450978507c4ef1"
	if got != want {
		t.Fatalf("digest = %s, want %s", got, want)
	}
}

func TestParseParams(t *testing.T) {
	p := parseParams(`username="bob", realm="r", nonce="abc", uri="/x?y=1", response="zz", qop=auth, nc=00000001, cnonce="q"`)
	want := map[string]string{
		"username": "bob", "realm": "r", "nonce": "abc", "uri": "/x?y=1",
		"response": "zz", "qop": "auth", "nc": "00000001", "cnonce": "q",
	}
	for k, v := range want {
		if p[k] != v {
			t.Errorf("param %s = %q, want %q", k, p[k], v)
		}
	}
}

func TestParseParamsMalformed(t *testing.T) {
	// Must not panic or loop on garbage.
	for _, s := range []string{"", "=", `a="unterminated`, ",,,,", "novalue"} {
		parseParams(s)
	}
}

func newPair(t *testing.T) (*httptest.Server, *http.Client, *Server) {
	t.Helper()
	creds := StaticCredentials{"portal": HA1("portal", "otpd-admin", "s3cret")}
	ds := NewServer("otpd-admin", creds)
	mux := http.NewServeMux()
	mux.HandleFunc("/whoami", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "user=%s", Username(r))
	})
	mux.HandleFunc("/echo", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		w.Write(b)
	})
	srv := httptest.NewServer(ds.Wrap(mux))
	t.Cleanup(srv.Close)
	client := &http.Client{Transport: &Client{Username: "portal", Password: "s3cret"}}
	return srv, client, ds
}

func TestEndToEndAuth(t *testing.T) {
	srv, client, _ := newPair(t)
	resp, err := client.Get(srv.URL + "/whoami")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "user=portal" {
		t.Fatalf("body = %q", b)
	}
}

func TestPostBodyReplayedAfterChallenge(t *testing.T) {
	srv, client, _ := newPair(t)
	resp, err := client.Post(srv.URL+"/echo", "text/plain", strings.NewReader("payload-1"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "payload-1" {
		t.Fatalf("body after challenge replay = %q", b)
	}
}

func TestWrongPasswordRejected(t *testing.T) {
	srv, _, _ := newPair(t)
	bad := &http.Client{Transport: &Client{Username: "portal", Password: "wrong"}}
	resp, err := bad.Get(srv.URL + "/whoami")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
}

func TestUnknownUserRejected(t *testing.T) {
	srv, _, _ := newPair(t)
	bad := &http.Client{Transport: &Client{Username: "intruder", Password: "s3cret"}}
	resp, err := bad.Get(srv.URL + "/whoami")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
}

func TestNoCredentialsChallenged(t *testing.T) {
	srv, _, _ := newPair(t)
	resp, err := http.Get(srv.URL + "/whoami")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
	wa := resp.Header.Get("WWW-Authenticate")
	if !strings.HasPrefix(wa, "Digest ") || !strings.Contains(wa, `qop="auth"`) {
		t.Fatalf("WWW-Authenticate = %q", wa)
	}
}

func TestNonceReuseAcrossRequests(t *testing.T) {
	srv, client, _ := newPair(t)
	// Several requests: after the first challenge, the cached nonce with
	// increasing nc should keep working with no further 401s.
	for i := 0; i < 5; i++ {
		resp, err := client.Get(srv.URL + "/whoami")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
}

func TestReplayedNonceCountRejected(t *testing.T) {
	srv, client, _ := newPair(t)
	// Prime the client's challenge cache.
	resp, err := client.Get(srv.URL + "/whoami")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Capture a legitimate authorized request, then replay it verbatim:
	// same nonce, same nc → the server must reject it.
	var captured string
	tr := &capturingTransport{inner: http.DefaultTransport, header: &captured}
	cl := &http.Client{Transport: &Client{Username: "portal", Password: "s3cret", Transport: tr}}
	resp2, err := cl.Get(srv.URL + "/whoami")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if captured == "" {
		t.Fatal("no Authorization captured")
	}

	req, _ := http.NewRequest("GET", srv.URL+"/whoami", nil)
	req.Header.Set("Authorization", captured)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnauthorized {
		t.Fatalf("replayed request status = %d, want 401", resp3.StatusCode)
	}
}

type capturingTransport struct {
	inner  http.RoundTripper
	header *string
}

func (c *capturingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if a := r.Header.Get("Authorization"); a != "" {
		*c.header = a
	}
	return c.inner.RoundTrip(r)
}

func TestStaleNonceRechallenged(t *testing.T) {
	creds := StaticCredentials{"portal": HA1("portal", "r", "pw")}
	ds := NewServer("r", creds)
	ds.NonceTTL = 10 * time.Millisecond
	srv := httptest.NewServer(ds.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	})))
	defer srv.Close()
	client := &http.Client{Transport: &Client{Username: "portal", Password: "pw"}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	time.Sleep(30 * time.Millisecond)
	// Nonce is now stale server-side; client retries transparently on
	// the stale challenge and must still succeed.
	resp2, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("status after stale nonce = %d, want 200", resp2.StatusCode)
	}
}

func TestWrongRealmRejected(t *testing.T) {
	srv, _, _ := newPair(t)
	req, _ := http.NewRequest("GET", srv.URL+"/whoami", nil)
	req.Header.Set("Authorization",
		`Digest username="portal", realm="other", nonce="x", uri="/whoami", response="y"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
}

func TestForgedNonceRejected(t *testing.T) {
	srv, _, _ := newPair(t)
	// A response computed over a nonce the server never issued.
	ha1 := HA1("portal", "otpd-admin", "s3cret")
	nonce := "deadbeefdeadbeefdeadbeefdeadbeef"
	resp := response(ha1, nonce, "00000001", "abc", "auth", "GET", "/whoami")
	req, _ := http.NewRequest("GET", srv.URL+"/whoami", nil)
	req.Header.Set("Authorization", fmt.Sprintf(
		`Digest username="portal", realm="otpd-admin", nonce=%q, uri="/whoami", response=%q, qop=auth, nc=00000001, cnonce="abc"`,
		nonce, resp))
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", r.StatusCode)
	}
}
