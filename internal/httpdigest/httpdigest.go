// Package httpdigest implements HTTP Digest Access Authentication
// (RFC 2617/7616, MD5 with qop=auth) as both server middleware and a client
// RoundTripper.
//
// The paper (§3.5): "The portal back end authenticates to the admin API
// using HTTP Digest Authentication over a TLS-secured connection." The otpd
// admin API wraps its mux in Server, and the portal uses Client as its
// http.Client transport.
package httpdigest

import (
	"crypto/md5"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

func h(parts ...string) string {
	sum := md5.Sum([]byte(strings.Join(parts, ":")))
	return hex.EncodeToString(sum[:])
}

// response computes the RFC 2617 request digest for qop=auth.
func response(ha1, nonce, nc, cnonce, qop, method, uri string) string {
	ha2 := h(method, uri)
	if qop == "" {
		return h(ha1, nonce, ha2)
	}
	return h(ha1, nonce, nc, cnonce, qop, ha2)
}

// HA1 derives the username:realm:password hash that both sides need.
// Servers may store only HA1, never the password.
func HA1(username, realm, password string) string {
	return h(username, realm, password)
}

// parseParams parses the comma-separated key=value list of Authorization /
// WWW-Authenticate headers (values optionally quoted).
func parseParams(s string) map[string]string {
	out := map[string]string{}
	for len(s) > 0 {
		s = strings.TrimLeft(s, " ,")
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		var val string
		if strings.HasPrefix(s, `"`) {
			s = s[1:]
			end := strings.IndexByte(s, '"')
			if end < 0 {
				val, s = s, ""
			} else {
				val, s = s[:end], s[end+1:]
			}
		} else {
			end := strings.IndexByte(s, ',')
			if end < 0 {
				val, s = strings.TrimSpace(s), ""
			} else {
				val, s = strings.TrimSpace(s[:end]), s[end:]
			}
		}
		if key != "" {
			out[key] = val
		}
	}
	return out
}

// CredentialStore resolves a username to its HA1 hash. Returning false
// denies the user.
type CredentialStore interface {
	HA1(username string) (ha1 string, ok bool)
}

// StaticCredentials is a CredentialStore backed by a map of username→HA1.
type StaticCredentials map[string]string

// HA1 implements CredentialStore.
func (s StaticCredentials) HA1(username string) (string, bool) {
	v, ok := s[username]
	return v, ok
}

// Server is digest-authenticating middleware.
type Server struct {
	Realm string
	Creds CredentialStore
	// NonceTTL bounds nonce lifetime; expired nonces trigger a fresh
	// challenge with stale=true. Zero means 5 minutes.
	NonceTTL time.Duration

	mu     sync.Mutex
	nonces map[string]nonceState
}

type nonceState struct {
	issued time.Time
	lastNC uint64
}

// NewServer builds digest middleware for realm over creds.
func NewServer(realm string, creds CredentialStore) *Server {
	return &Server{Realm: realm, Creds: creds, nonces: make(map[string]nonceState)}
}

func (s *Server) ttl() time.Duration {
	if s.NonceTTL > 0 {
		return s.NonceTTL
	}
	return 5 * time.Minute
}

func newNonce() string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic("httpdigest: rand: " + err.Error())
	}
	return hex.EncodeToString(b)
}

func (s *Server) challenge(w http.ResponseWriter, stale bool) {
	nonce := newNonce()
	s.mu.Lock()
	s.nonces[nonce] = nonceState{issued: time.Now()}
	// Opportunistic GC of expired nonces.
	for n, st := range s.nonces {
		if time.Since(st.issued) > 2*s.ttl() {
			delete(s.nonces, n)
		}
	}
	s.mu.Unlock()
	hdr := fmt.Sprintf(`Digest realm=%q, qop="auth", nonce=%q, algorithm=MD5`, s.Realm, nonce)
	if stale {
		hdr += `, stale=true`
	}
	w.Header().Set("WWW-Authenticate", hdr)
	http.Error(w, "unauthorized", http.StatusUnauthorized)
}

// Username extracts the authenticated username stashed by Wrap.
func Username(r *http.Request) string {
	return r.Header.Get("X-Httpdigest-User")
}

// Wrap returns a handler that authenticates every request before passing
// it to next. The authenticated username is exposed via Username.
func (s *Server) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		auth := r.Header.Get("Authorization")
		if !strings.HasPrefix(auth, "Digest ") {
			s.challenge(w, false)
			return
		}
		p := parseParams(auth[len("Digest "):])
		user, nonce, uri, resp := p["username"], p["nonce"], p["uri"], p["response"]
		if user == "" || nonce == "" || uri == "" || resp == "" {
			s.challenge(w, false)
			return
		}
		if p["realm"] != s.Realm {
			s.challenge(w, false)
			return
		}
		s.mu.Lock()
		st, known := s.nonces[nonce]
		expired := known && time.Since(st.issued) > s.ttl()
		var replay bool
		if known && !expired && p["qop"] != "" {
			var nc uint64
			fmt.Sscanf(p["nc"], "%x", &nc)
			if nc <= st.lastNC {
				replay = true
			} else {
				st.lastNC = nc
				s.nonces[nonce] = st
			}
		}
		if expired {
			delete(s.nonces, nonce)
		}
		s.mu.Unlock()
		if !known || expired {
			s.challenge(w, true)
			return
		}
		if replay {
			s.challenge(w, false)
			return
		}
		ha1, ok := s.Creds.HA1(user)
		if !ok {
			s.challenge(w, false)
			return
		}
		want := response(ha1, nonce, p["nc"], p["cnonce"], p["qop"], r.Method, uri)
		if subtle.ConstantTimeCompare([]byte(want), []byte(resp)) != 1 {
			s.challenge(w, false)
			return
		}
		r2 := r.Clone(r.Context())
		r2.Header.Set("X-Httpdigest-User", user)
		next.ServeHTTP(w, r2)
	})
}

// Client is an http.RoundTripper that answers digest challenges. It caches
// the last challenge per host so steady-state traffic needs one round trip.
type Client struct {
	Username string
	Password string
	// Transport is the underlying RoundTripper; nil means
	// http.DefaultTransport.
	Transport http.RoundTripper

	mu    sync.Mutex
	chals map[string]*challengeState // keyed by host
}

type challengeState struct {
	realm, nonce, qop string
	nc                uint64
}

func (c *Client) transport() http.RoundTripper {
	if c.Transport != nil {
		return c.Transport
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper. Requests with bodies must have
// GetBody set (true for all bytes.Buffer/strings.Reader bodies built by
// http.NewRequest) so the request can be replayed after a 401.
func (c *Client) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	if c.chals == nil {
		c.chals = make(map[string]*challengeState)
	}
	chal := c.chals[req.URL.Host]
	c.mu.Unlock()

	attempt := req
	if chal != nil {
		attempt = c.authorized(req, chal)
	}
	resp, err := c.transport().RoundTrip(attempt)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusUnauthorized {
		return resp, nil
	}
	hdr := resp.Header.Get("WWW-Authenticate")
	if !strings.HasPrefix(hdr, "Digest ") {
		return resp, nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	p := parseParams(hdr[len("Digest "):])
	chal = &challengeState{realm: p["realm"], nonce: p["nonce"], qop: p["qop"]}
	c.mu.Lock()
	c.chals[req.URL.Host] = chal
	c.mu.Unlock()

	retry := c.authorized(req, chal)
	return c.transport().RoundTrip(retry)
}

func (c *Client) authorized(req *http.Request, chal *challengeState) *http.Request {
	c.mu.Lock()
	chal.nc++
	nc := fmt.Sprintf("%08x", chal.nc)
	c.mu.Unlock()

	cnonce := newNonce()
	uri := req.URL.RequestURI()
	qop := ""
	if strings.Contains(chal.qop, "auth") {
		qop = "auth"
	}
	ha1 := HA1(c.Username, chal.realm, c.Password)
	resp := response(ha1, chal.nonce, nc, cnonce, qop, req.Method, uri)

	out := req.Clone(req.Context())
	if req.Body != nil && req.GetBody != nil {
		body, err := req.GetBody()
		if err == nil {
			out.Body = body
		}
	}
	val := fmt.Sprintf(`Digest username=%q, realm=%q, nonce=%q, uri=%q, response=%q, algorithm=MD5`,
		c.Username, chal.realm, chal.nonce, uri, resp)
	if qop != "" {
		val += fmt.Sprintf(`, qop=%s, nc=%s, cnonce=%q`, qop, nc, cnonce)
	}
	out.Header.Set("Authorization", val)
	return out
}
