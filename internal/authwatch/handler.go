package authwatch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// Handler serves the watcher's aggregates:
//
//	GET /debug/authwatch               JSON Snapshot
//	GET /debug/authwatch?format=ascii  FIGURES.txt-style ASCII charts
//
// Mount it with Watcher.Mount or wire it into an existing mux.
func (w *Watcher) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "ascii" {
			rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(rw, w.ASCII())
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(w.Snapshot())
	})
}

// Mount registers the handler at GET /debug/authwatch.
func (w *Watcher) Mount(mux *http.ServeMux) {
	mux.Handle("GET /debug/authwatch", w.Handler())
}

// ASCII renders the live aggregates in the FIGURES.txt chart style: one
// bar chart per series plus the alert and device-mix tails.
func (w *Watcher) ASCII() string {
	snap := w.Snapshot()
	d := w.Daily()
	out := fmt.Sprintf("authwatch: %d events (%d dropped), stream time %s\n\n",
		snap.Events, snap.Dropped, snap.Now.UTC().Format("2006-01-02T15:04:05Z"))
	if d == nil {
		return out + "no events yet\n"
	}
	for _, name := range []string{
		"unique_mfa_users", "traffic_all", "traffic_external",
		"traffic_ext_mfa", "sms_sent", "login_failures",
	} {
		out += d.Chart(name, 80, 8) + "\n"
	}
	out += fmt.Sprintf("sms total: %d\n", snap.SMSTotal)
	if len(snap.DeviceMix) > 0 {
		out += "device mix:"
		total := 0
		for _, n := range snap.DeviceMix {
			total += n
		}
		for _, k := range sortedKeys(snap.DeviceMix) {
			out += fmt.Sprintf(" %s=%d(%.1f%%)", k, snap.DeviceMix[k],
				100*float64(snap.DeviceMix[k])/float64(total))
		}
		out += "\n"
	}
	out += "alerts:"
	for _, a := range snap.Alerts {
		state := "ok"
		if a.Active {
			state = "FIRING"
		}
		out += fmt.Sprintf(" %s=%s", a.Rule, state)
	}
	return out + "\n"
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
