// Package authwatch turns the live auth-event firehose into the paper's
// evaluation figures, continuously. The paper's §5 analysis (Figures 3–6,
// Table 1) was produced post-hoc from centrally aggregated logs; authwatch
// subscribes to the internal/eventstream bus and maintains the same
// aggregates — unique MFA users per day, SSH traffic all/external/
// external-MFA, SMS volume, device-type mix — as rolling daily and hourly
// buckets, updated on every event.
//
// On top of the buckets sit threshold alert rules (failure-rate burn,
// lockout spikes, SMS surges) surfaced three ways: as
// authwatch_alert_active{rule=...} gauges in /metrics, as degraded state
// through Health (wired into /healthz), and in the /debug/authwatch
// endpoint, which serves both JSON aggregates and the FIGURES.txt-style
// ASCII charts.
package authwatch

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/metrics"
	"openmfa/internal/obs"
)

// Rules are the alert thresholds. Zero values take defaults.
type Rules struct {
	// FailureWindow is the sliding window for the failure-rate burn rule
	// (default 1h). With at least FailureMinLogins login decisions in the
	// window (default 50), a failure share above FailureMaxRate (default
	// 0.5) fires the "failure_rate" alert.
	FailureWindow    time.Duration
	FailureMinLogins int
	FailureMaxRate   float64
	// LockoutWindow / LockoutMax fire "lockout_spike" when at least
	// LockoutMax lockouts (default 5) land inside the window (default 1h).
	LockoutWindow time.Duration
	LockoutMax    int
	// SMSWindow / SMSMax fire "sms_surge" when at least SMSMax token
	// texts (default 1000) are sent inside the window (default 1h).
	SMSWindow time.Duration
	SMSMax    int
}

func (r Rules) withDefaults() Rules {
	if r.FailureWindow <= 0 {
		r.FailureWindow = time.Hour
	}
	if r.FailureMinLogins <= 0 {
		r.FailureMinLogins = 50
	}
	if r.FailureMaxRate <= 0 {
		r.FailureMaxRate = 0.5
	}
	if r.LockoutWindow <= 0 {
		r.LockoutWindow = time.Hour
	}
	if r.LockoutMax <= 0 {
		r.LockoutMax = 5
	}
	if r.SMSWindow <= 0 {
		r.SMSWindow = time.Hour
	}
	if r.SMSMax <= 0 {
		r.SMSMax = 1000
	}
	return r
}

// Alert rule names.
const (
	RuleFailureRate  = "failure_rate"
	RuleLockoutSpike = "lockout_spike"
	RuleSMSSurge     = "sms_surge"
)

// Config parameterises a Watcher.
type Config struct {
	// Obs, when set, exports authwatch_events_ingested_total and one
	// authwatch_alert_active{rule=...} gauge per rule.
	Obs *obs.Registry
	// InternalNets classify login source addresses; traffic from these
	// networks is excluded from the external series (Figure 4 red/blue
	// bars). Defaults to the stack's internal fabric, 10.128.0.0/16.
	InternalNets []*net.IPNet
	// Rules are the alert thresholds.
	Rules Rules
	// ExtraHealth adds further checks consulted by Health alongside the
	// watcher's own alert state — e.g. an SLO engine's fast-burn check,
	// so an error-budget burn degrades /healthz exactly like a native
	// authwatch alert.
	ExtraHealth []obs.HealthCheck
}

// maxDayBuckets bounds the daily map (oldest evicted beyond this).
const maxDayBuckets = 1000

type dayBucket struct {
	trafficAll, trafficExternal, trafficExtMFA int
	failures, sms, lockouts, enrolments       int
	mfaUsers                                  map[string]struct{}
}

type hourBucket struct {
	logins, failures, lockouts, sms int
}

// Watcher is the streaming aggregator. Create with New, feed it with
// Ingest (synchronous) or Attach (live, from a bus subscription).
type Watcher struct {
	internal []*net.IPNet
	rules    Rules
	extra    []obs.HealthCheck

	ingestedCtr *obs.Counter
	alertGauges map[string]*obs.Gauge

	mu        sync.Mutex
	now       time.Time // stream time: max event timestamp seen
	ingested  uint64
	days      map[int64]*dayBucket  // unix day
	hours     map[int64]*hourBucket // unix hour
	smsTotal  int
	deviceMix map[string]int
	alerts    map[string]bool

	sub  *eventstream.Subscription
	done chan struct{}
}

// New builds a watcher.
func New(cfg Config) *Watcher {
	nets := cfg.InternalNets
	if nets == nil {
		_, fabric, _ := net.ParseCIDR("10.128.0.0/16")
		nets = []*net.IPNet{fabric}
	}
	w := &Watcher{
		internal:    nets,
		rules:       cfg.Rules.withDefaults(),
		extra:       cfg.ExtraHealth,
		ingestedCtr: cfg.Obs.Counter("authwatch_events_ingested_total"),
		alertGauges: map[string]*obs.Gauge{
			RuleFailureRate:  cfg.Obs.Gauge("authwatch_alert_active", "rule", RuleFailureRate),
			RuleLockoutSpike: cfg.Obs.Gauge("authwatch_alert_active", "rule", RuleLockoutSpike),
			RuleSMSSurge:     cfg.Obs.Gauge("authwatch_alert_active", "rule", RuleSMSSurge),
		},
		days:      make(map[int64]*dayBucket),
		hours:     make(map[int64]*hourBucket),
		deviceMix: make(map[string]int),
		alerts:    make(map[string]bool),
	}
	return w
}

func (w *Watcher) isInternal(addr string) bool {
	ip := net.ParseIP(addr)
	if ip == nil {
		return false
	}
	for _, n := range w.internal {
		if n.Contains(ip) {
			return true
		}
	}
	return false
}

func dayKey(t time.Time) int64  { return t.Unix() / 86400 }
func hourKey(t time.Time) int64 { return t.Unix() / 3600 }

func (w *Watcher) day(t time.Time) *dayBucket {
	k := dayKey(t)
	b, ok := w.days[k]
	if !ok {
		b = &dayBucket{mfaUsers: make(map[string]struct{})}
		w.days[k] = b
		if len(w.days) > maxDayBuckets {
			oldest := int64(1<<63 - 1)
			for dk := range w.days {
				if dk < oldest {
					oldest = dk
				}
			}
			delete(w.days, oldest)
		}
	}
	return b
}

func (w *Watcher) hour(t time.Time) *hourBucket {
	k := hourKey(t)
	b, ok := w.hours[k]
	if !ok {
		b = &hourBucket{}
		w.hours[k] = b
	}
	return b
}

// Ingest folds one event into the aggregates and re-evaluates the alert
// rules. Nil-safe. Safe for concurrent use.
func (w *Watcher) Ingest(e eventstream.Event) {
	if w == nil {
		return
	}
	w.ingestedCtr.Inc()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ingested++
	if e.Time.After(w.now) {
		w.now = e.Time
	}
	switch e.Type {
	case eventstream.TypeLogin:
		db, hb := w.day(e.Time), w.hour(e.Time)
		hb.logins++
		if e.Result == "accept" {
			db.trafficAll++
			if !w.isInternal(e.Addr) {
				db.trafficExternal++
				if e.MFA {
					db.trafficExtMFA++
					db.mfaUsers[e.User] = struct{}{}
				}
			}
		} else {
			db.failures++
			hb.failures++
		}
	case eventstream.TypeSMS:
		if e.Result == "sent" {
			w.day(e.Time).sms++
			w.hour(e.Time).sms++
			w.smsTotal++
		}
	case eventstream.TypeLockout:
		w.day(e.Time).lockouts++
		w.hour(e.Time).lockouts++
	case eventstream.TypeEnroll:
		// The portal also announces enrolments (for its own audit trail);
		// otpd is the system of record, so only its events feed the
		// Table 1 device mix — counting both would double every pairing.
		if e.Component == "otpd" {
			w.day(e.Time).enrolments++
			w.deviceMix[e.Method]++
		}
	}
	w.pruneHoursLocked()
	w.evaluateLocked()
}

// pruneHoursLocked drops hour buckets that have slid out of every rule
// window (with one window of slack for late events).
func (w *Watcher) pruneHoursLocked() {
	maxWin := w.rules.FailureWindow
	if w.rules.LockoutWindow > maxWin {
		maxWin = w.rules.LockoutWindow
	}
	if w.rules.SMSWindow > maxWin {
		maxWin = w.rules.SMSWindow
	}
	horizon := hourKey(w.now.Add(-2 * maxWin))
	if len(w.hours) < 64 {
		return
	}
	for k := range w.hours {
		if k < horizon {
			delete(w.hours, k)
		}
	}
}

func (w *Watcher) windowSum(win time.Duration, f func(*hourBucket) int) int {
	from := hourKey(w.now.Add(-win))
	to := hourKey(w.now)
	sum := 0
	for k, b := range w.hours {
		if k >= from && k <= to {
			sum += f(b)
		}
	}
	return sum
}

func (w *Watcher) evaluateLocked() {
	logins := w.windowSum(w.rules.FailureWindow, func(b *hourBucket) int { return b.logins })
	failures := w.windowSum(w.rules.FailureWindow, func(b *hourBucket) int { return b.failures })
	w.setAlertLocked(RuleFailureRate,
		logins >= w.rules.FailureMinLogins &&
			float64(failures) > w.rules.FailureMaxRate*float64(logins))
	w.setAlertLocked(RuleLockoutSpike,
		w.windowSum(w.rules.LockoutWindow, func(b *hourBucket) int { return b.lockouts }) >= w.rules.LockoutMax)
	w.setAlertLocked(RuleSMSSurge,
		w.windowSum(w.rules.SMSWindow, func(b *hourBucket) int { return b.sms }) >= w.rules.SMSMax)
}

func (w *Watcher) setAlertLocked(rule string, active bool) {
	w.alerts[rule] = active
	v := 0.0
	if active {
		v = 1
	}
	w.alertGauges[rule].Set(v)
}

// Health implements obs.HealthCheck: non-nil while any alert is active
// or any Config.ExtraHealth check fails.
func (w *Watcher) Health() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	var active []string
	for rule, on := range w.alerts {
		if on {
			active = append(active, rule)
		}
	}
	w.mu.Unlock()
	if len(active) > 0 {
		sort.Strings(active)
		return fmt.Errorf("authwatch: alerts active: %s", strings.Join(active, ", "))
	}
	for _, check := range w.extra {
		if check == nil {
			continue
		}
		if err := check(); err != nil {
			return err
		}
	}
	return nil
}

// Attach subscribes the watcher to a bus and consumes events on a
// goroutine until Stop (or bus-side subscription close). buffer sizes the
// subscription channel (<= 0 for the default).
func (w *Watcher) Attach(bus *eventstream.Bus, buffer int) {
	w.mu.Lock()
	if w.sub != nil {
		w.mu.Unlock()
		return
	}
	sub := bus.Subscribe(buffer)
	done := make(chan struct{})
	w.sub, w.done = sub, done
	w.mu.Unlock()
	go func() {
		defer close(done)
		for e := range sub.Events() {
			w.Ingest(e)
		}
	}()
}

// Stop closes the bus subscription (after delivering already-buffered
// events) and waits for the consumer goroutine to drain.
func (w *Watcher) Stop() {
	w.mu.Lock()
	sub, done := w.sub, w.done
	w.sub, w.done = nil, nil
	w.mu.Unlock()
	if sub == nil {
		return
	}
	sub.Close()
	<-done
}

// Dropped is the number of bus events the attached subscription missed
// (0 when not attached).
func (w *Watcher) Dropped() uint64 {
	w.mu.Lock()
	sub := w.sub
	w.mu.Unlock()
	if sub == nil {
		return 0
	}
	return sub.Dropped()
}

// DaySnapshot is one day's aggregates.
type DaySnapshot struct {
	Date           string `json:"date"`
	TrafficAll     int    `json:"traffic_all"`
	TrafficExt     int    `json:"traffic_external"`
	TrafficExtMFA  int    `json:"traffic_ext_mfa"`
	UniqueMFAUsers int    `json:"unique_mfa_users"`
	LoginFailures  int    `json:"login_failures"`
	SMS            int    `json:"sms"`
	Lockouts       int    `json:"lockouts"`
	Enrolments     int    `json:"enrolments"`
}

// AlertStatus is one rule's current state.
type AlertStatus struct {
	Rule   string `json:"rule"`
	Active bool   `json:"active"`
}

// Snapshot is the full JSON view served by /debug/authwatch.
type Snapshot struct {
	Now       time.Time      `json:"now"`
	Events    uint64         `json:"events"`
	Dropped   uint64         `json:"dropped"`
	SMSTotal  int            `json:"sms_total"`
	DeviceMix map[string]int `json:"device_mix"`
	Alerts    []AlertStatus  `json:"alerts"`
	Days      []DaySnapshot  `json:"days"`
}

// Snapshot returns a copy of the current aggregates, days sorted by date.
func (w *Watcher) Snapshot() Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := Snapshot{
		Now:       w.now,
		Events:    w.ingested,
		SMSTotal:  w.smsTotal,
		DeviceMix: make(map[string]int, len(w.deviceMix)),
	}
	for k, v := range w.deviceMix {
		snap.DeviceMix[k] = v
	}
	keys := make([]int64, 0, len(w.days))
	for k := range w.days {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		b := w.days[k]
		snap.Days = append(snap.Days, DaySnapshot{
			Date:           time.Unix(k*86400, 0).UTC().Format("2006-01-02"),
			TrafficAll:     b.trafficAll,
			TrafficExt:     b.trafficExternal,
			TrafficExtMFA:  b.trafficExtMFA,
			UniqueMFAUsers: len(b.mfaUsers),
			LoginFailures:  b.failures,
			SMS:            b.sms,
			Lockouts:       b.lockouts,
			Enrolments:     b.enrolments,
		})
	}
	for _, rule := range []string{RuleFailureRate, RuleLockoutSpike, RuleSMSSurge} {
		snap.Alerts = append(snap.Alerts, AlertStatus{Rule: rule, Active: w.alerts[rule]})
	}
	if w.sub != nil {
		snap.Dropped = w.sub.Dropped()
	}
	return snap
}

// Daily converts the day buckets into a metrics.Daily (the rollout chart
// renderer), with the same series names the batch report uses. Returns nil
// before any events arrive.
func (w *Watcher) Daily() *metrics.Daily {
	snap := w.Snapshot()
	if len(snap.Days) == 0 {
		return nil
	}
	parse := func(s string) time.Time {
		t, _ := time.Parse("2006-01-02", s)
		return t
	}
	d := metrics.NewDaily(parse(snap.Days[0].Date), parse(snap.Days[len(snap.Days)-1].Date))
	for _, ds := range snap.Days {
		t := parse(ds.Date)
		d.Set(t, "traffic_all", float64(ds.TrafficAll))
		d.Set(t, "traffic_external", float64(ds.TrafficExt))
		d.Set(t, "traffic_ext_mfa", float64(ds.TrafficExtMFA))
		d.Set(t, "unique_mfa_users", float64(ds.UniqueMFAUsers))
		d.Set(t, "login_failures", float64(ds.LoginFailures))
		d.Set(t, "sms_sent", float64(ds.SMS))
	}
	return d
}
