package authwatch

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
)

var base = time.Date(2016, 10, 4, 8, 0, 0, 0, time.UTC)

func login(t time.Time, user, addr, result string, mfa bool) eventstream.Event {
	return eventstream.Event{
		Time: t, Type: eventstream.TypeLogin, Component: "sshd",
		User: user, Addr: addr, Result: result, MFA: mfa,
	}
}

func TestWatcherDailyAggregation(t *testing.T) {
	w := New(Config{})
	day2 := base.AddDate(0, 0, 1)

	w.Ingest(login(base, "alice", "73.1.2.3", "accept", true))
	w.Ingest(login(base.Add(time.Hour), "alice", "73.1.2.3", "accept", true)) // same user: unique count stays 1
	w.Ingest(login(base, "bob", "73.9.9.9", "accept", true))
	w.Ingest(login(base, "carol", "73.4.4.4", "accept", false))   // external, no MFA
	w.Ingest(login(base, "gateway1", "10.128.3.7", "accept", false)) // internal
	w.Ingest(login(base, "mallory", "73.6.6.6", "reject", false))
	w.Ingest(eventstream.Event{Time: base, Type: eventstream.TypeSMS, Component: "otpd", Result: "sent"})
	w.Ingest(eventstream.Event{Time: base, Type: eventstream.TypeSMS, Component: "sms", Result: "delivered"}) // lifecycle, not a send
	w.Ingest(eventstream.Event{Time: base, Type: eventstream.TypeEnroll, Component: "otpd", User: "bob", Method: "soft"})
	w.Ingest(eventstream.Event{Time: base, Type: eventstream.TypeEnroll, Component: "portal", User: "bob", Method: "soft"}) // duplicate announcement
	w.Ingest(eventstream.Event{Time: base, Type: eventstream.TypeLockout, User: "mallory"})
	w.Ingest(login(day2, "dave", "73.2.2.2", "accept", true))

	snap := w.Snapshot()
	if snap.Events != 12 {
		t.Errorf("Events = %d, want 12", snap.Events)
	}
	if len(snap.Days) != 2 {
		t.Fatalf("days = %d, want 2", len(snap.Days))
	}
	d1 := snap.Days[0]
	if d1.Date != "2016-10-04" {
		t.Errorf("day 1 date = %s", d1.Date)
	}
	if d1.TrafficAll != 5 || d1.TrafficExt != 4 || d1.TrafficExtMFA != 3 {
		t.Errorf("day 1 traffic all/ext/mfa = %d/%d/%d, want 5/4/3",
			d1.TrafficAll, d1.TrafficExt, d1.TrafficExtMFA)
	}
	if d1.UniqueMFAUsers != 2 {
		t.Errorf("day 1 unique MFA users = %d, want 2 (alice, bob)", d1.UniqueMFAUsers)
	}
	if d1.LoginFailures != 1 || d1.SMS != 1 || d1.Lockouts != 1 || d1.Enrolments != 1 {
		t.Errorf("day 1 failures/sms/lockouts/enrolments = %d/%d/%d/%d, want 1/1/1/1",
			d1.LoginFailures, d1.SMS, d1.Lockouts, d1.Enrolments)
	}
	if snap.SMSTotal != 1 {
		t.Errorf("SMSTotal = %d, want 1", snap.SMSTotal)
	}
	if snap.DeviceMix["soft"] != 1 || len(snap.DeviceMix) != 1 {
		t.Errorf("device mix = %v, want soft:1 only (portal dupe filtered)", snap.DeviceMix)
	}
	if snap.Days[1].UniqueMFAUsers != 1 {
		t.Errorf("day 2 unique MFA users = %d, want 1", snap.Days[1].UniqueMFAUsers)
	}

	daily := w.Daily()
	if daily == nil {
		t.Fatal("Daily() = nil")
	}
	if got := daily.Get(base, "traffic_ext_mfa"); got != 3 {
		t.Errorf("Daily traffic_ext_mfa = %v, want 3", got)
	}
	if got := daily.Get(base, "unique_mfa_users"); got != 2 {
		t.Errorf("Daily unique_mfa_users = %v, want 2", got)
	}
}

func TestAlertRulesAndHealth(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Config{Obs: reg, Rules: Rules{LockoutMax: 3, FailureMinLogins: 10}})
	if err := w.Health(); err != nil {
		t.Fatalf("healthy watcher Health() = %v", err)
	}

	// Lockout spike: 3 lockouts inside the hour window.
	for i := 0; i < 3; i++ {
		w.Ingest(eventstream.Event{Time: base.Add(time.Duration(i) * time.Minute),
			Type: eventstream.TypeLockout, User: "m"})
	}
	err := w.Health()
	if err == nil || !strings.Contains(err.Error(), RuleLockoutSpike) {
		t.Fatalf("Health() = %v, want lockout_spike active", err)
	}
	if v := reg.Gauge("authwatch_alert_active", "rule", RuleLockoutSpike).Value(); v != 1 {
		t.Errorf("lockout gauge = %v, want 1", v)
	}

	// Failure-rate burn: 10 logins in-window, 8 failures (> 50%).
	for i := 0; i < 8; i++ {
		w.Ingest(login(base.Add(time.Minute), "x", "73.0.0.1", "reject", false))
	}
	for i := 0; i < 2; i++ {
		w.Ingest(login(base.Add(time.Minute), "y", "73.0.0.2", "accept", false))
	}
	err = w.Health()
	if err == nil || !strings.Contains(err.Error(), RuleFailureRate) {
		t.Fatalf("Health() = %v, want failure_rate active", err)
	}

	// The windows slide: a day later both alerts clear (stream time moves
	// with the newest event).
	w.Ingest(login(base.AddDate(0, 0, 1), "z", "73.0.0.3", "accept", false))
	if err := w.Health(); err != nil {
		t.Fatalf("Health() after window slide = %v, want nil", err)
	}
	if v := reg.Gauge("authwatch_alert_active", "rule", RuleLockoutSpike).Value(); v != 0 {
		t.Errorf("lockout gauge after slide = %v, want 0", v)
	}
}

func TestHealthzDegradesUnderAlert(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Config{Obs: reg, Rules: Rules{LockoutMax: 1}})
	mux := http.NewServeMux()
	obs.Mount(mux, reg, w.Health)
	w.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d before alert, want 200", code)
	}
	w.Ingest(eventstream.Event{Time: base, Type: eventstream.TypeLockout, User: "m"})
	code, body := get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d under alert, want 503", code)
	}
	if !strings.Contains(body, RuleLockoutSpike) {
		t.Errorf("/healthz body missing rule name: %q", body)
	}

	code, body = get("/debug/authwatch")
	if code != http.StatusOK {
		t.Fatalf("/debug/authwatch = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/authwatch not JSON: %v", err)
	}
	if len(snap.Days) != 1 || snap.Days[0].Lockouts != 1 {
		t.Errorf("snapshot days = %+v", snap.Days)
	}
	active := false
	for _, a := range snap.Alerts {
		if a.Rule == RuleLockoutSpike && a.Active {
			active = true
		}
	}
	if !active {
		t.Error("snapshot alerts missing active lockout_spike")
	}

	code, body = get("/debug/authwatch?format=ascii")
	if code != http.StatusOK {
		t.Fatalf("ascii view = %d", code)
	}
	for _, want := range []string{"authwatch:", "lockout_spike", "FIRING"} {
		if !strings.Contains(body, want) {
			t.Errorf("ascii view missing %q:\n%s", want, body)
		}
	}
}

func TestAttachStopDrainsSubscription(t *testing.T) {
	leakcheck.Check(t)
	bus := eventstream.NewBus(nil)
	w := New(Config{})
	w.Attach(bus, 1024)
	const events = 500
	for i := 0; i < events; i++ {
		bus.Publish(login(base.Add(time.Duration(i)*time.Second), "u", "73.0.0.1", "accept", false))
	}
	w.Stop() // closes the subscription and waits for the drain
	snap := w.Snapshot()
	if snap.Events != events {
		t.Errorf("ingested %d events after Stop, want %d (buffered events must drain)", snap.Events, events)
	}
	if snap.Dropped != 0 {
		t.Errorf("Dropped = %d, want 0", snap.Dropped)
	}
	w.Stop() // idempotent
}
