package rollout

import (
	"sync"
	"testing"
	"time"

	"openmfa/internal/otpd"
)

// The full-calendar run is shared across tests (it is the expensive part).
var (
	resOnce sync.Once
	res     *Result
	resErr  error
)

func sharedRun(t *testing.T) *Result {
	t.Helper()
	resOnce.Do(func() {
		res, resErr = Run(Config{Users: 300, Seed: 7})
	})
	if resErr != nil {
		t.Fatal(resErr)
	}
	return res
}

func day(s string) time.Time {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(err)
	}
	return t
}

// weekdayMean averages a series over weekdays in [from,to].
func weekdayMean(r *Result, series, from, to string) float64 {
	m := r.Metrics
	sum, n := 0.0, 0
	for d := m.DayIndex(day(from)); d <= m.DayIndex(day(to)); d++ {
		date := m.Date(d)
		if date.Weekday() == time.Saturday || date.Weekday() == time.Sunday {
			continue
		}
		sum += m.Get(date, series)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestRunBasicSanity(t *testing.T) {
	r := sharedRun(t)
	if r.TotalLogins < 10000 {
		t.Fatalf("suspiciously few logins: %d", r.TotalLogins)
	}
	if r.MFALogins == 0 || r.MFALogins >= r.TotalLogins {
		t.Fatalf("MFA logins = %d of %d", r.MFALogins, r.TotalLogins)
	}
	if r.SMSMessages == 0 {
		t.Fatal("no SMS sent")
	}
}

// Figure 3: unique MFA users per day. "A steady increase of users using
// MFA throughout phases 1 and 2 ... A noticeable discontinuous increase
// does occur on September 7th ... A decline in unique users is noted
// during the winter holiday."
func TestFigure3UniqueMFAUsers(t *testing.T) {
	r := sharedRun(t)

	early := weekdayMean(r, SeriesUniqueMFAUsers, "2016-08-15", "2016-08-26")
	prePhase2 := weekdayMean(r, SeriesUniqueMFAUsers, "2016-08-29", "2016-09-05")
	postPhase2 := weekdayMean(r, SeriesUniqueMFAUsers, "2016-09-07", "2016-09-16")
	november := weekdayMean(r, SeriesUniqueMFAUsers, "2016-11-01", "2016-11-30")
	holiday := weekdayMean(r, SeriesUniqueMFAUsers, "2016-12-19", "2016-12-30")

	if !(early < prePhase2 && prePhase2 < postPhase2) {
		t.Fatalf("adoption not increasing: %.1f -> %.1f -> %.1f", early, prePhase2, postPhase2)
	}
	// The Sep 7 discontinuity: a clear jump, not a gentle slope.
	if postPhase2 < 1.3*prePhase2 {
		t.Fatalf("no phase-2 discontinuity: %.1f -> %.1f", prePhase2, postPhase2)
	}
	// Holiday dip.
	if holiday > 0.7*november {
		t.Fatalf("no winter-holiday decline: nov %.1f, holiday %.1f", november, holiday)
	}
}

// Figure 4: SSH traffic mix. "It is clearly seen that there was a
// significant decrease in this type of traffic [external non-MFA] once
// phase 2 began. Even after the beginning of phase 3, automated,
// non-interactive traffic continues to account for a significant portion
// of login events." Internal traffic "was not particularly affected".
func TestFigure4TrafficMix(t *testing.T) {
	r := sharedRun(t)
	nonMFA := func(from, to string) float64 {
		return weekdayMean(r, SeriesTrafficExternal, from, to) -
			weekdayMean(r, SeriesTrafficExtMFA, from, to)
	}
	before := nonMFA("2016-08-22", "2016-09-05")
	after := nonMFA("2016-09-07", "2016-09-23")
	if after > 0.8*before {
		t.Fatalf("no phase-2 decrease in external non-MFA traffic: %.0f -> %.0f", before, after)
	}
	// Phase 3 still carries significant automated exempt traffic.
	phase3 := nonMFA("2016-10-10", "2016-11-10")
	extAll := weekdayMean(r, SeriesTrafficExternal, "2016-10-10", "2016-11-10")
	if phase3 < 0.1*extAll {
		t.Fatalf("automated traffic vanished in phase 3: %.0f of %.0f", phase3, extAll)
	}
	// Internal traffic exists (black above red) and is stable across the
	// transition.
	internalBefore := weekdayMean(r, SeriesTrafficAll, "2016-08-22", "2016-09-05") -
		weekdayMean(r, SeriesTrafficExternal, "2016-08-22", "2016-09-05")
	internalAfter := weekdayMean(r, SeriesTrafficAll, "2016-10-10", "2016-11-10") -
		weekdayMean(r, SeriesTrafficExternal, "2016-10-10", "2016-11-10")
	if internalBefore <= 0 || internalAfter <= 0 {
		t.Fatal("no internal traffic")
	}
	if internalAfter < 0.5*internalBefore {
		t.Fatalf("internal traffic collapsed across transition: %.0f -> %.0f",
			internalBefore, internalAfter)
	}
}

// Figure 5: "MFA-related user support tickets comprised an average of
// 6.7% of all inquiries [Aug–Dec]. During January to March of 2017, MFA
// inquiries averaged only 2.7%."
func TestFigure5TicketShares(t *testing.T) {
	r := sharedRun(t)
	share := func(from, to string) float64 {
		m := r.Metrics
		mfa := m.SumRange(SeriesTicketsMFA, day(from), day(to))
		tot := m.SumRange(SeriesTicketsTotal, day(from), day(to))
		return 100 * mfa / tot
	}
	transition := share("2016-08-10", "2016-12-31")
	steady := share("2017-01-01", "2017-03-31")
	if transition < 4.5 || transition > 9.5 {
		t.Fatalf("Aug–Dec MFA ticket share = %.1f%%, paper reports 6.7%%", transition)
	}
	if steady < 1.2 || steady > 4.8 {
		t.Fatalf("Jan–Mar MFA ticket share = %.1f%%, paper reports 2.7%%", steady)
	}
	if steady >= transition {
		t.Fatalf("steady-state share (%.1f%%) not below transition share (%.1f%%)", steady, transition)
	}
}

// Figure 6: "October 4th ... ranks fourth in the total count of newly
// initialized pairings while September 7th ... ranks first." Increases
// correlate with the announcement (08-10) and the phase changes.
func TestFigure6PairingSpikes(t *testing.T) {
	r := sharedRun(t)
	m := r.Metrics

	if rank := m.Rank(SeriesPairingsNew, day("2016-09-07")); rank != 1 {
		t.Fatalf("2016-09-07 pairing rank = %d, paper: 1", rank)
	}
	if rank := m.Rank(SeriesPairingsNew, day("2016-10-04")); rank < 2 || rank > 6 {
		t.Fatalf("2016-10-04 pairing rank = %d, paper: 4", rank)
	}
	// The announcement day is itself a visible spike vs its neighbours.
	ann := m.Get(day("2016-08-10"), SeriesPairingsNew)
	before := m.Get(day("2016-08-08"), SeriesPairingsNew)
	if ann < 3*(before+1) {
		t.Fatalf("announcement spike missing: 08-08=%v 08-10=%v", before, ann)
	}
	// Pairings decline to the end of the year after the deadline.
	oct := m.SumRange(SeriesPairingsNew, day("2016-10-05"), day("2016-10-31"))
	dec := m.SumRange(SeriesPairingsNew, day("2016-12-01"), day("2016-12-31"))
	if dec > oct {
		t.Fatalf("pairings did not decline: oct=%v dec=%v", oct, dec)
	}
	// "Most users had already paired an MFA device before the mandatory
	// deadline."
	preDeadline := m.SumRange(SeriesPairingsNew, day("2016-08-01"), day("2016-10-04"))
	total := m.Sum(SeriesPairingsNew)
	if preDeadline < 0.55*total {
		t.Fatalf("only %.0f%% paired before the deadline", 100*preDeadline/total)
	}
}

// Table 1: Soft 55.38 / SMS 40.22 / Training 2.97 / Hard 1.43.
func TestTable1PairingBreakdown(t *testing.T) {
	r := sharedRun(t)
	b := r.Table1
	check := func(label string, paper, tol float64) {
		got := b.Percent(label)
		if got < paper-tol || got > paper+tol {
			t.Errorf("%s = %.2f%%, paper %.2f%% (±%.1f)", label, got, paper, tol)
		}
	}
	// The 300-user test population carries sampling noise; the
	// EXPERIMENTS.md run at 1,200 users lands tighter.
	check("soft", 55.38, 7)
	check("sms", 40.22, 7)
	check("training", 2.97, 2.5)
	check("hard", 1.43, 2.5)
	// Ordering: soft and sms dominate in the paper's order; at the
	// 300-user test scale training and hard are single-digit counts and
	// may tie, so only the two mobile rows are order-asserted here (the
	// EXPERIMENTS.md run at 1,200 users checks the full ordering).
	if b.Rows[0].Label != "soft" || b.Rows[1].Label != "sms" {
		t.Fatalf("breakdown order = %+v", b.Rows)
	}
	// ">95% of users tend to utilize a mobile device".
	if mobile := b.Percent("soft") + b.Percent("sms"); mobile < 90 {
		t.Fatalf("mobile share = %.1f%%", mobile)
	}
}

// §4.1: most login events are scripted (non-TTY), and a minority of users
// produce the majority of traffic.
func TestSection41LogAnalysis(t *testing.T) {
	r := sharedRun(t)
	a := r.Analysis
	if a.NonTTYShare() < 0.5 {
		t.Fatalf("non-TTY share = %.2f; the far majority should be scripted", a.NonTTYShare())
	}
	ranked := a.Ranked()
	if len(ranked) < 50 {
		t.Fatalf("only %d users in the analysis", len(ranked))
	}
	top := ranked[:len(ranked)/10]
	if share := a.AutomationShare(top); share < 0.5 {
		t.Fatalf("top decile drives %.0f%% of logins; expected a majority", 100*share)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("two extra short runs")
	}
	cfg := Config{Users: 60, Seed: 99,
		End: time.Date(2016, 9, 30, 0, 0, 0, 0, time.UTC)}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalLogins != b.TotalLogins || a.MFALogins != b.MFALogins {
		t.Fatalf("runs diverged: %d/%d vs %d/%d",
			a.TotalLogins, a.MFALogins, b.TotalLogins, b.MFALogins)
	}
	for _, s := range []string{SeriesPairingsNew, SeriesTrafficExternal, SeriesUniqueMFAUsers} {
		sa, sb := a.Metrics.Series(s), b.Metrics.Series(s)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("series %s diverged at day %d: %v vs %v", s, i, sa[i], sb[i])
			}
		}
	}
}

func TestModeForCalendar(t *testing.T) {
	cfg := Config{}.withDefaults()
	cases := map[string]string{
		"2016-08-05": "paired",
		"2016-08-10": "paired",
		"2016-09-05": "paired",
		"2016-09-06": "countdown",
		"2016-10-03": "countdown",
		"2016-10-04": "full",
		"2017-01-01": "full",
	}
	for d, want := range cases {
		if got := string(cfg.modeFor(day(d))); got != want {
			t.Errorf("modeFor(%s) = %s, want %s", d, got, want)
		}
	}
}

func TestTokensMatchIDMPairings(t *testing.T) {
	// Cross-invariant: every provisioned token in otpd corresponds to a
	// paired person, types consistent with Table 1 counting.
	r := sharedRun(t)
	var fromTable float64
	for _, row := range r.Table1.Rows {
		fromTable += row.Percent
	}
	if fromTable < 99.9 || fromTable > 100.1 {
		t.Fatalf("Table 1 does not total 100%%: %.2f", fromTable)
	}
	for _, typ := range []string{"soft", "sms", "hard", "training"} {
		if r.Table1.Percent(typ) <= 0 {
			t.Fatalf("no %s pairings at all", typ)
		}
	}
	_ = otpd.TokenSoft
}
