package rollout

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"openmfa/internal/idm"
	"openmfa/internal/otpd"
)

// person is one synthetic account and its behaviour profile.
type person struct {
	name     string
	class    idm.AccountClass
	password string
	pubkey   bool

	createdDay int // day index the account exists from
	pairDay    int // day index of device pairing; -1 = never pairs
	device     otpd.TokenType
	phone      string

	// Mean successful logins/day from outside and inside the center.
	extRate, intRate float64
	// tty is the probability a login allocates a terminal (§4.1).
	tty float64
	// shell reported in auth-log telemetry.
	shell string

	// Populated when the pairing happens.
	secret     []byte
	staticCode string
	paired     bool

	// givenUp is set when a never-pairing user stops trying after the
	// mandatory deadline locks them out.
	deniedAttempts int
}

// classMix is the population composition. The §2/§4.1 description: most
// users are interactive researchers; "a non-negligible number of user
// accounts, on the order of hundreds" (out of >10,000) automate logins;
// gateways and community accounts negotiate on behalf of thousands; staff
// are outnumbered "a hundredfold".
type classShare struct {
	class idm.AccountClass
	share float64
}

var classMix = []classShare{
	{idm.ClassUser, 0.878},     // interactive researchers
	{idm.ClassCommunity, 0.05}, // heavily scripted individual accounts
	{idm.ClassGateway, 0.015},  // science gateways / community accounts
	{idm.ClassStaff, 0.025},    // center staff
	{idm.ClassTraining, 0.032}, // workshop accounts (Table 1: ~3% of pairings)
}

// deviceMix is the Table 1 target conditioned on non-training pairings:
// soft 55.38 / (100-2.97), sms 40.22 / (100-2.97), hard 1.43 / (100-2.97).
var deviceMix = []struct {
	typ otpd.TokenType
	p   float64
}{
	{otpd.TokenSoft, 0.5538 / 0.9703},
	{otpd.TokenSMS, 0.4022 / 0.9703},
	{otpd.TokenHard, 0.0143 / 0.9703},
}

func pickDevice(rng *rand.Rand) otpd.TokenType {
	x := rng.Float64()
	acc := 0.0
	for _, d := range deviceMix {
		acc += d.p
		if x < acc {
			return d.typ
		}
	}
	return otpd.TokenSoft
}

// pairingWeights builds the per-day pairing-date distribution that shapes
// Figure 6. The paper's observed ordering is encoded directly: September
// 7th (the day after phase 2 began) ranks first and October 4th (the
// mandatory deadline) ranks fourth, with the August 10th announcement and
// September 6th between them.
func (s *sim) pairingWeights() []float64 {
	w := make([]float64, s.metrics.Days)
	announce := s.metrics.DayIndex(s.cfg.Announce)
	phase2 := s.metrics.DayIndex(s.cfg.Phase2)
	phase3 := s.metrics.DayIndex(s.cfg.Phase3)
	for d := range w {
		date := s.metrics.Date(d)
		switch {
		case d < announce:
			w[d] = 0.5 // staff beta
		case d == announce:
			w[d] = 80 // mass announcement spike: rank 3
		case d < phase2:
			// phase 1 opt-in, gentle decay
			w[d] = 12 - 4*float64(d-announce)/float64(phase2-announce)
		case d == phase2:
			w[d] = 95 // phase 2 begins: rank 2
		case d == phase2+1:
			w[d] = 170 // September 7th: rank 1
		case d < phase3:
			w[d] = 25 - 13*float64(d-phase2-1)/float64(phase3-phase2)
		case d == phase3:
			w[d] = 60 // October 4th: rank 4
		case date.Year() == 2016:
			// trickle declining to the end of the year; "most users had
			// already paired ... before the mandatory deadline".
			w[d] = 4.5 * math.Exp(-float64(d-phase3)/40)
			if date.Month() == time.December && date.Day() >= 17 {
				w[d] *= 0.4 // winter holiday
			}
		default:
			// 2017: "Beginning with the Spring semester, new pairings
			// once again increased and have shown a slight declining
			// trend since."
			switch {
			case date.Month() == time.January && date.Day() < 17:
				w[d] = 0.6
			case date.Month() == time.January:
				w[d] = 4
			case date.Month() == time.February:
				w[d] = 3
			default:
				w[d] = 2
			}
		}
	}
	return w
}

// samplePairDay draws a pairing day from the weight vector.
func samplePairDay(rng *rand.Rand, weights []float64, total float64) int {
	x := rng.Float64() * total
	for d, v := range weights {
		x -= v
		if x < 0 {
			return d
		}
	}
	return len(weights) - 1
}

// workshopDays are the training-session dates (one per month or so).
func (s *sim) workshopDays() []int {
	dates := []time.Time{
		time.Date(2016, 8, 22, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 9, 19, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 10, 17, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC),
		time.Date(2017, 2, 6, 0, 0, 0, 0, time.UTC),
		time.Date(2017, 3, 6, 0, 0, 0, 0, time.UTC),
	}
	var out []int
	for _, d := range dates {
		if !d.Before(s.cfg.Start) && !d.After(s.cfg.End) {
			out = append(out, s.metrics.DayIndex(d))
		}
	}
	if len(out) == 0 {
		out = []int{0}
	}
	return out
}

// buildPopulation samples the user base.
func (s *sim) buildPopulation() {
	rng := s.rng
	weights := s.pairingWeights()
	var totalW float64
	for _, v := range weights {
		totalW += v
	}
	workshops := s.workshopDays()
	phase3 := s.metrics.DayIndex(s.cfg.Phase3)

	for i := 0; i < s.cfg.Users; i++ {
		p := &person{
			name:     fmt.Sprintf("u%05d", i),
			password: fmt.Sprintf("pw-%05d", i),
		}
		x := rng.Float64()
		acc := 0.0
		for _, cs := range classMix {
			acc += cs.share
			if x < acc {
				p.class = cs.class
				break
			}
		}
		if p.class == "" {
			p.class = idm.ClassUser
		}

		switch p.class {
		case idm.ClassUser:
			p.extRate = 0.12 + rng.Float64()*0.5
			p.intRate = rng.Float64() * 0.25
			p.tty = 0.85
			p.shell = "/bin/bash"
			p.pubkey = rng.Float64() < 0.4
			p.device = pickDevice(rng)
			if rng.Float64() < 0.08 {
				p.pairDay = -1 // inactive accounts never pair
			} else {
				p.pairDay = samplePairDay(rng, weights, totalW)
			}
		case idm.ClassCommunity: // scripted individual accounts
			p.extRate = 8 + rng.Float64()*18
			p.intRate = 1 + rng.Float64()*3
			p.tty = 0.05
			p.shell = "/usr/bin/scp"
			p.pubkey = true
			p.device = pickDevice(rng)
			// Targeted users (§4.1) were contacted early, but took
			// until the countdown broke their scripts to finish
			// migrating: they pair in a band around phase 2 and are
			// all done by the mandatory deadline.
			p2 := s.metrics.DayIndex(s.cfg.Phase2)
			p3 := s.metrics.DayIndex(s.cfg.Phase3)
			if rng.Float64() < 0.9 {
				p.pairDay = p2 - 7 + rng.Intn(p3-p2+8)
			} else {
				p.pairDay = samplePairDay(rng, weights, totalW)
			}
		case idm.ClassGateway:
			p.extRate = 25 + rng.Float64()*35
			p.intRate = 4 + rng.Float64()*6
			p.tty = 0.0
			p.shell = "/bin/sh"
			p.pubkey = true
			p.pairDay = -1 // whitelisted, never pairs
		case idm.ClassStaff:
			p.extRate = 1.2 + rng.Float64()*2.2
			p.intRate = 0.8 + rng.Float64()*1.5
			p.tty = 0.6
			p.shell = "/bin/bash"
			p.pubkey = true
			p.device = pickDevice(rng)
			// Staff opted in during the internal beta (July) or right
			// at the announcement.
			p.pairDay = rng.Intn(s.metrics.DayIndex(s.cfg.Announce) + 3)
		case idm.ClassTraining:
			p.extRate = 0 // only log in on workshop days
			p.intRate = 0
			p.tty = 1.0
			p.shell = "/bin/bash"
			p.device = otpd.TokenTraining
			p.pairDay = workshops[rng.Intn(len(workshops))]
			p.staticCode = fmt.Sprintf("%06d", rng.Intn(1000000))
		}

		// Accounts pairing in 2017 are mostly new spring-semester users:
		// they exist only from shortly before their pairing day.
		if p.pairDay > phase3+60 {
			p.createdDay = p.pairDay - rng.Intn(3)
		}
		if p.device == otpd.TokenSMS {
			p.phone = fmt.Sprintf("512555%04d", i%10000)
		}
		s.people = append(s.people, p)
	}
}

// dayFactor scales activity for weekends and the winter holiday.
func (s *sim) dayFactor(date time.Time) float64 {
	f := 1.0
	switch date.Weekday() {
	case time.Saturday, time.Sunday:
		f *= 0.45
	}
	if (date.Month() == time.December && date.Day() >= 17) ||
		(date.Month() == time.January && date.Day() <= 2) {
		f *= 0.35 // "A decline in unique users is noted during the winter holiday."
	}
	return f
}

// poisson draws a Poisson variate (Knuth's method; λ here is small).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}
