package rollout

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"openmfa/internal/accessctl"
	"openmfa/internal/authlog"
	"openmfa/internal/clock"
	"openmfa/internal/cryptoutil"
	"openmfa/internal/directory"
	"openmfa/internal/eventstream"
	"openmfa/internal/idm"
	"openmfa/internal/loganalysis"
	"openmfa/internal/metrics"
	"openmfa/internal/obs"
	"openmfa/internal/otp"
	"openmfa/internal/otpd"
	"openmfa/internal/pam"
	"openmfa/internal/radius"
	"openmfa/internal/store"
)

// Result carries everything the experiment emitters need.
type Result struct {
	Config  Config
	Metrics *metrics.Daily
	// Table1 is the final pairing-type breakdown (paper Table 1).
	Table1 metrics.Breakdown
	// SMSMessages is the number of token texts sent (cost model input).
	SMSMessages int
	// Analysis is the §4.1 report over the simulated auth log.
	Analysis *loganalysis.Report
	// MFALogins / TotalLogins summarise the run ("over half a million
	// successful log ins" in the paper's production year).
	MFALogins   int
	TotalLogins int
	// Obs is the run's metrics registry: every simulated login records
	// per-stage counters plus an end-to-end wall-clock auth latency
	// histogram (rollout_auth_duration_seconds).
	Obs *obs.Registry
}

// ObservabilityReport summarises the run's end-to-end authentication
// latency percentiles and RADIUS outcome counts for the experiment logs.
func (r *Result) ObservabilityReport() string {
	if r.Obs == nil {
		return ""
	}
	h := r.Obs.Histogram("rollout_auth_duration_seconds", nil)
	if h.Count() == 0 {
		return "observability: no authentications recorded"
	}
	dur := func(q float64) time.Duration {
		return time.Duration(h.Quantile(q) * float64(time.Second)).Round(time.Microsecond)
	}
	return fmt.Sprintf(
		"observability: auth latency n=%d p50=%s p90=%s p99=%s; radius accept=%d reject=%d challenge=%d",
		h.Count(), dur(0.5), dur(0.9), dur(0.99),
		int(r.Obs.Counter("radius_requests_total", "result", "accept").Value()),
		int(r.Obs.Counter("radius_requests_total", "result", "reject").Value()),
		int(r.Obs.Counter("radius_requests_total", "result", "challenge").Value()))
}

// sim is the running simulation.
type sim struct {
	cfg     Config
	rng     *rand.Rand
	clk     *clock.Sim
	metrics *metrics.Daily
	obs     *obs.Registry
	authDur *obs.Histogram
	people  []*person

	idm   *idm.IDM
	dir   *directory.Dir
	otp   *otpd.Server
	alog  *authlog.Log
	acl   *accessctl.List
	pool  *radius.Pool
	stack *pam.Stack
	mode  *modeSwitch

	radiusServers []*radius.Server

	smsMu    sync.Mutex
	smsCodes map[string]string // phone → last code body
	smsCount int

	mfaLogins   int
	totalLogins int
	lastLogin   map[string]time.Time // per-user spacing for replay safety
}

type modeSwitch struct {
	mu  sync.Mutex
	cfg pam.TokenConfig
}

func (m *modeSwitch) TokenConfig() pam.TokenConfig {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg
}

func (m *modeSwitch) set(cfg pam.TokenConfig) {
	m.mu.Lock()
	m.cfg = cfg
	m.mu.Unlock()
}

func (s *sim) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Run executes the simulation and returns the collected evaluation data.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	s := &sim{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		clk:       clock.NewSim(cfg.Start),
		metrics:   metrics.NewDaily(cfg.Start, cfg.End),
		obs:       obs.NewRegistry(),
		smsCodes:  make(map[string]string),
		lastLogin: make(map[string]time.Time),
	}
	// End-to-end latency is wall-clock (the sim clock jumps days at a
	// time); the histogram answers "how long does one login actually take
	// through the full PAM → RADIUS → otpd path".
	s.authDur = s.obs.Histogram("rollout_auth_duration_seconds", nil)
	if err := s.build(); err != nil {
		return nil, err
	}
	defer s.teardown()

	s.buildPopulation()
	s.register()

	for d := 0; d < s.metrics.Days; d++ {
		s.runDay(d)
		if d%30 == 29 {
			s.logf("rollout: %s done (%d/%d days, %d logins so far)",
				s.metrics.Date(d).Format("2006-01-02"), d+1, s.metrics.Days, s.totalLogins)
		}
	}

	return s.assemble(), nil
}

// build wires the infrastructure: real otpd + a two-server RADIUS farm +
// the Figure 1 PAM stack.
func (s *sim) build() error {
	s.dir = directory.New()
	s.idm = idm.New(store.OpenMemoryShards(s.cfg.StoreShards), s.dir, s.clk)
	var err error
	s.otp, err = otpd.New(otpd.Config{
		DB:            store.OpenMemoryShards(s.cfg.StoreShards),
		EncryptionKey: cryptoutil.RandomBytes(32),
		Clock:         s.clk,
		Issuer:        "HPC",
		Obs:           s.obs,
		Events:        s.cfg.Events,
		SMS: otpd.SMSSenderFunc(func(phone, body string) error {
			s.smsMu.Lock()
			f := strings.Fields(body)
			s.smsCodes[phone] = f[len(f)-1]
			s.smsCount++
			s.smsMu.Unlock()
			return nil
		}),
	})
	if err != nil {
		return err
	}
	s.alog, err = authlog.New("", 1<<16)
	if err != nil {
		return err
	}
	// Internal system traffic moves freely (§3.4); gateways and
	// community automation keep a standing whitelist entry.
	rules, err := accessctl.Parse("permit : ALL : 10.128.0.0/16 : ALL\n")
	if err != nil {
		return err
	}
	s.acl = accessctl.NewList(rules)

	secret := cryptoutil.RandomBytes(16)
	var addrs []string
	for i := 0; i < 2; i++ {
		rs := &radius.Server{Secret: secret, Handler: &otpd.RadiusHandler{OTP: s.otp}, Obs: s.obs}
		if err := rs.ListenAndServe("127.0.0.1:0"); err != nil {
			return err
		}
		s.radiusServers = append(s.radiusServers, rs)
		addrs = append(addrs, rs.Addr().String())
	}
	s.pool = radius.NewPool(addrs, secret, 2*time.Second, 1)
	s.pool.Obs = s.obs

	s.mode = &modeSwitch{}
	s.mode.set(pam.TokenConfig{Mode: pam.ModePaired})
	s.stack = pam.NewSSHDStack(pam.SSHDStackConfig{
		AuthLog:    s.alog,
		IDM:        s.idm,
		Exemptions: s.acl,
		TokenCfg:   s.mode,
		Pairing:    pam.LocalPairing{Dir: s.dir},
		Radius:     s.pool,
	})
	return nil
}

func (s *sim) teardown() {
	for _, rs := range s.radiusServers {
		rs.Close()
	}
}

// register creates the IDM accounts that exist at simulation start, plus
// the gateway exemption rules.
func (s *sim) register() {
	var exempt strings.Builder
	exempt.WriteString("permit : ALL : 10.128.0.0/16 : ALL\n")
	for _, p := range s.people {
		if p.createdDay == 0 {
			s.createAccount(p)
		}
		if p.class == idm.ClassGateway {
			fmt.Fprintf(&exempt, "permit : %s : ALL : ALL\n", p.name)
		}
	}
	rules, err := accessctl.Parse(exempt.String())
	if err == nil {
		s.acl.Replace(rules)
	}
}

func (s *sim) createAccount(p *person) {
	if _, err := s.idm.Create(p.name, p.name+"@hpc.example", p.password, p.class); err != nil {
		panic("rollout: create account: " + err.Error())
	}
}

// runDay simulates one calendar day.
func (s *sim) runDay(d int) {
	date := s.metrics.Date(d)
	s.clk.Set(date.Add(5 * time.Hour))
	s.mode.set(pam.TokenConfig{
		Mode:     s.cfg.modeFor(date),
		Deadline: s.cfg.Phase3.AddDate(0, 0, -1),
		InfoURL:  "https://portal.hpc.example/mfa",
	})

	// Late-created accounts appear.
	for _, p := range s.people {
		if p.createdDay == d && p.createdDay != 0 {
			s.createAccount(p)
		}
	}

	// Pairings scheduled for today happen in the morning.
	newPairings := 0
	for _, p := range s.people {
		if p.pairDay == d {
			if s.pair(p) {
				newPairings++
			}
		}
	}
	s.metrics.Set(date, SeriesPairingsNew, float64(newPairings))

	// Generate the day's login schedule.
	type login struct {
		p        *person
		offset   time.Duration
		internal bool
	}
	var plan []login
	factor := s.dayFactor(date)
	for _, p := range s.people {
		if p.createdDay > d {
			continue
		}
		ext, intl := p.extRate, p.intRate
		// §5 adaptation: once the countdown's mandatory acknowledgement
		// broke scripted workflows, heavily automated accounts moved to
		// multiplexing, login-node cron jobs, and internal transfers —
		// the Figure 4 cliff in external non-MFA traffic.
		if p.class == idm.ClassCommunity && !date.Before(s.cfg.Phase2) {
			ext *= 0.15
			intl *= 3.0
		}
		if p.class == idm.ClassTraining {
			if p.pairDay == d { // workshop day
				ext = 2.5
			} else {
				continue
			}
		}
		// Never-pairing users stop attempting once MFA is mandatory.
		if !p.paired && p.pairDay == -1 && p.class != idm.ClassGateway &&
			!date.Before(s.cfg.Phase3) {
			ext *= 0.05
		}
		for i, n := 0, poisson(s.rng, ext*factor); i < n; i++ {
			plan = append(plan, login{p: p, offset: s.loginOffset()})
		}
		for i, n := 0, poisson(s.rng, intl*factor); i < n; i++ {
			plan = append(plan, login{p: p, offset: s.loginOffset(), internal: true})
		}
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].offset < plan[j].offset })

	mfaUsers := make(map[string]bool)
	failures := 0
	for _, l := range plan {
		ok, usedMFA := s.doLogin(l.p, date, l.offset, l.internal)
		if !ok {
			failures++
			if !l.p.paired && !l.internal {
				s.metrics.Add(date, SeriesDeniedUnpaired, 1)
				l.p.deniedAttempts++
			}
			continue
		}
		s.totalLogins++
		s.metrics.Add(date, SeriesTrafficAll, 1)
		if !l.internal {
			s.metrics.Add(date, SeriesTrafficExternal, 1)
			if usedMFA {
				s.metrics.Add(date, SeriesTrafficExtMFA, 1)
				mfaUsers[l.p.name] = true
				s.mfaLogins++
			}
		}
	}
	s.metrics.Set(date, SeriesUniqueMFAUsers, float64(len(mfaUsers)))
	s.metrics.Set(date, SeriesLoginFailures, float64(failures))

	s.tickets(date, newPairings, failures)
}

// loginOffset spreads logins over the working day.
func (s *sim) loginOffset() time.Duration {
	return 6*time.Hour + time.Duration(s.rng.Int63n(int64(16*time.Hour)))
}

// pair provisions the person's device through the real back end.
func (s *sim) pair(p *person) bool {
	switch p.device {
	case otpd.TokenTraining:
		if err := s.otp.SetStaticToken(p.name, p.staticCode); err != nil {
			return false
		}
		s.idm.SetPairing(p.name, idm.PairingTraining)
	case otpd.TokenSMS:
		enr, err := s.otp.InitSMSToken(p.name, p.phone)
		if err != nil {
			return false
		}
		p.secret = enr.Secret
		s.idm.SetPairing(p.name, idm.PairingSMS)
	case otpd.TokenHard:
		serial := "C200-" + p.name
		if err := s.otp.ImportHardToken(serial, cryptoutil.RandomBytes(20)); err != nil {
			return false
		}
		if _, err := s.otp.AssignHardToken(p.name, serial); err != nil {
			return false
		}
		// The fob holds the same pre-programmed seed as the back end;
		// the simulated device reads codes via CurrentCode at login.
		s.idm.SetPairing(p.name, idm.PairingHard)
	default: // soft
		enr, err := s.otp.InitSoftToken(p.name)
		if err != nil {
			return false
		}
		p.secret = enr.Secret
		s.idm.SetPairing(p.name, idm.PairingSoft)
	}
	p.paired = true
	return true
}

// doLogin pushes one login through the PAM stack. Returns (granted,
// usedMFA).
func (s *sim) doLogin(p *person, date time.Time, offset time.Duration, internal bool) (bool, bool) {
	at := date.Add(offset)
	// Per-user spacing: a TOTP code is consumed on success, so devices
	// are never asked for two logins inside one 30 s step.
	if last, ok := s.lastLogin[p.name]; ok {
		if gap := at.Sub(last); gap < 31*time.Second {
			at = last.Add(31 * time.Second)
		}
	}
	s.lastLogin[p.name] = at
	s.clk.Set(at)

	var ip net.IP
	if internal {
		ip = net.IPv4(10, 128, byte(s.rng.Intn(256)), byte(1+s.rng.Intn(250)))
	} else {
		ip = net.IPv4(73, byte(s.rng.Intn(200)), byte(s.rng.Intn(256)), byte(1+s.rng.Intn(250)))
	}

	// Public-key first factor: sshd would have verified the signature
	// and written the log record the PAM module greps.
	if p.pubkey {
		s.alog.Append(authlog.Event{
			Time: s.clk.Now(), Type: authlog.AcceptedPublickey,
			User: p.name, Addr: ip.String(), Port: 50000 + s.rng.Intn(9999),
			TTY: s.rng.Float64() < p.tty, Shell: p.shell,
		})
	}

	conv := &simConv{sim: s, p: p}
	ctx := &pam.Context{
		User: p.name, RemoteAddr: ip, Service: "sshd",
		Conv: conv, Now: s.clk.Now,
		Trace: obs.NewTraceID(), Metrics: s.obs,
	}
	start := time.Now()
	err := s.stack.Authenticate(ctx)
	s.authDur.ObserveSince(start)
	if err != nil {
		s.publishLogin(p, date, at, ip, "reject", false, false, "")
		return false, false
	}
	tty := s.rng.Float64() < p.tty
	s.alog.Append(authlog.Event{
		Time: s.clk.Now(), Type: authlog.SessionOpen,
		User: p.name, Addr: ip.String(), Port: 50000 + s.rng.Intn(9999),
		TTY: tty, Shell: p.shell,
	})
	s.publishLogin(p, date, at, ip, "accept", conv.tokenOK, tty, p.shell)
	return true, conv.tokenOK
}

// publishLogin mirrors sshd's per-connection login event for simulated
// attempts (the sim invokes the PAM stack in-process, bypassing sshd). The
// event is stamped on the scheduled simulation day — per-user replay
// spacing can nudge the wall-clock instant past midnight, but the batch
// report attributes every login to the day it was scheduled, and streaming
// aggregation must bucket identically. Publishing draws no randomness.
func (s *sim) publishLogin(p *person, date, at time.Time, ip net.IP, result string, usedMFA, tty bool, shell string) {
	if s.cfg.Events == nil {
		return
	}
	evTime := at
	if evTime.Unix()/86400 != date.Unix()/86400 {
		evTime = date.Add(24*time.Hour - time.Second)
	}
	s.cfg.Events.Publish(eventstream.Event{
		Time: evTime, Type: eventstream.TypeLogin, Component: "sshd",
		User: p.name, Addr: ip.String(), Result: result,
		MFA: usedMFA, TTY: tty, Shell: shell,
	})
}

// simConv plays the user's side of the conversation: password, token code
// from the simulated device, countdown acknowledgements.
type simConv struct {
	sim     *sim
	p       *person
	tokenOK bool
}

func (c *simConv) Prompt(echo bool, msg string) (string, error) {
	switch {
	case strings.Contains(msg, "Password"):
		return c.p.password, nil
	case strings.Contains(msg, "Token"):
		code, err := c.code()
		if err != nil {
			return "000000", nil
		}
		c.tokenOK = true // provisionally; a stack failure resets relevance
		return code, nil
	default:
		return "", nil // countdown acknowledgement
	}
}

func (c *simConv) Info(string) error { return nil }

// code produces what the user's device would show right now.
func (c *simConv) code() (string, error) {
	p := c.p
	switch p.device {
	case otpd.TokenTraining:
		return p.staticCode, nil
	case otpd.TokenSMS:
		// The PAM module's null request already triggered the text;
		// read it off the (instant-delivery) phone.
		c.sim.smsMu.Lock()
		code := c.sim.smsCodes[p.phone]
		c.sim.smsMu.Unlock()
		if code == "" {
			return "", fmt.Errorf("no sms received")
		}
		return code, nil
	case otpd.TokenHard:
		return c.sim.otp.CurrentCode(p.name, 0)
	default:
		if p.secret == nil {
			return "", fmt.Errorf("unpaired")
		}
		return otp.TOTP(p.secret, c.sim.clk.Now(), c.sim.otp.OTPOptions())
	}
}

// tickets models the Figure 5 support load: a weekday-shaped baseline of
// non-MFA tickets plus an MFA component tied to pairing activity and
// login failures, calibrated to the paper's shares (6.7 % Aug–Dec, 2.7 %
// Jan–Mar).
func (s *sim) tickets(date time.Time, newPairings, failures int) {
	base := 28.0
	if date.Weekday() == time.Saturday || date.Weekday() == time.Sunday {
		base = 8
	}
	total := float64(poisson(s.rng, base))

	// MFA inquiry rates are calibrated against the paper's observed
	// shares: "MFA-related user support tickets comprised an average of
	// 6.7% of all inquiries [Aug–Dec]. During January to March of 2017,
	// MFA inquiries averaged only 2.7%." A small coupling to the day's
	// pairing volume and login failures preserves the correlation with
	// transition events visible in Figure 5.
	var mfaRate float64
	switch {
	case date.Before(s.cfg.Announce):
		mfaRate = 0
	case date.Year() == 2016:
		mfaRate = 1.58 + 0.02*float64(newPairings) + 0.01*float64(failures)
	default:
		mfaRate = 0.62 + 0.02*float64(newPairings) + 0.01*float64(failures)
	}
	mfa := float64(poisson(s.rng, mfaRate))
	s.metrics.Set(date, SeriesTicketsMFA, mfa)
	s.metrics.Set(date, SeriesTicketsTotal, total+mfa)
}

// assemble builds the Result.
func (s *sim) assemble() *Result {
	counts := map[string]int{}
	for _, ti := range s.otp.Tokens() {
		counts[string(ti.Type)]++
	}
	table1 := metrics.NewBreakdown("Token Device Pairing Type", counts)

	var events []authlog.Event
	s.alog.ScanRecent(func(e authlog.Event) bool {
		events = append(events, e)
		return true
	})
	analysis := loganalysis.Analyze(events, s.cfg.Start, s.cfg.End.AddDate(0, 0, 1))

	s.smsMu.Lock()
	smsN := s.smsCount
	s.smsMu.Unlock()

	return &Result{
		Config:      s.cfg,
		Metrics:     s.metrics,
		Table1:      table1,
		SMSMessages: smsN,
		Analysis:    analysis,
		MFALogins:   s.mfaLogins,
		TotalLogins: s.totalLogins,
		Obs:         s.obs,
	}
}
