package rollout

import (
	"fmt"
	"strings"
	"time"
)

// d parses a calendar date; panics on bad literals (programmer error).
func d(s string) time.Time {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(err)
	}
	return t
}

// phaseLegend describes the transition calendar for the figure headers.
func (r *Result) phaseLegend() string {
	return fmt.Sprintf("phase 1 (paired, opt-in) %s | phase 2 (countdown) %s | phase 3 (mandatory) %s",
		r.Config.Announce.Format("2006-01-02"),
		r.Config.Phase2.Format("2006-01-02"),
		r.Config.Phase3.Format("2006-01-02"))
}

// Figure3 renders the unique-MFA-users series with a chart and the
// paper-vs-measured claims.
func (r *Result) Figure3() string {
	m := r.Metrics
	var sb strings.Builder
	sb.WriteString("Figure 3: Number of unique MFA users broken down by day\n")
	sb.WriteString(r.phaseLegend() + "\n\n")
	sb.WriteString(m.Chart(SeriesUniqueMFAUsers, 80, 12))
	pre := r.weekdayMeanRange(SeriesUniqueMFAUsers, "2016-08-29", "2016-09-05")
	post := r.weekdayMeanRange(SeriesUniqueMFAUsers, "2016-09-07", "2016-09-16")
	nov := r.weekdayMeanRange(SeriesUniqueMFAUsers, "2016-11-01", "2016-11-30")
	holiday := r.weekdayMeanRange(SeriesUniqueMFAUsers, "2016-12-19", "2016-12-30")
	fmt.Fprintf(&sb, "\npaper: steady increase through phases 1-2; discontinuous increase on 09-07; winter-holiday decline\n")
	fmt.Fprintf(&sb, "measured: pre-phase-2 weekday mean %.1f -> post %.1f (x%.2f); November %.1f -> holiday %.1f (x%.2f)\n",
		pre, post, post/pre, nov, holiday, holiday/nov)
	return sb.String()
}

// Figure4 renders the traffic mix.
func (r *Result) Figure4() string {
	var sb strings.Builder
	sb.WriteString("Figure 4: SSH traffic broken down by day\n")
	sb.WriteString("black=all traffic, red=external, blue=external using MFA\n")
	sb.WriteString(r.phaseLegend() + "\n\n")
	sb.WriteString(r.Metrics.Chart(SeriesTrafficAll, 80, 8))
	sb.WriteString(r.Metrics.Chart(SeriesTrafficExternal, 80, 8))
	sb.WriteString(r.Metrics.Chart(SeriesTrafficExtMFA, 80, 8))
	nm := func(from, to string) float64 {
		return r.weekdayMeanRange(SeriesTrafficExternal, from, to) -
			r.weekdayMeanRange(SeriesTrafficExtMFA, from, to)
	}
	before := nm("2016-08-22", "2016-09-05")
	after := nm("2016-09-07", "2016-09-23")
	phase3 := nm("2016-10-10", "2016-11-10")
	fmt.Fprintf(&sb, "\npaper: significant decrease in external non-MFA traffic once phase 2 began; automated traffic still significant in phase 3\n")
	fmt.Fprintf(&sb, "measured: external non-MFA weekday mean %.0f/day -> %.0f/day after phase 2 (x%.2f); phase 3 residual %.0f/day\n",
		before, after, after/before, phase3)
	return sb.String()
}

// Figure5 renders the ticket series and shares.
func (r *Result) Figure5() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: Number of user support ticket inquiries broken down by day\n")
	sb.WriteString(r.phaseLegend() + "\n\n")
	sb.WriteString(r.Metrics.Chart(SeriesTicketsTotal, 80, 8))
	sb.WriteString(r.Metrics.Chart(SeriesTicketsMFA, 80, 8))
	tr, st := r.TicketShares()
	fmt.Fprintf(&sb, "\npaper: MFA inquiries averaged 6.7%% of tickets Aug-Dec 2016 and 2.7%% Jan-Mar 2017\n")
	fmt.Fprintf(&sb, "measured: %.1f%% Aug-Dec 2016, %.1f%% Jan-Mar 2017\n", tr, st)
	return sb.String()
}

// TicketShares returns the measured MFA ticket shares (percent) for the
// paper's two reporting windows.
func (r *Result) TicketShares() (transition, steady float64) {
	m := r.Metrics
	share := func(from, to time.Time) float64 {
		tot := m.SumRange(SeriesTicketsTotal, from, to)
		if tot == 0 {
			return 0
		}
		return 100 * m.SumRange(SeriesTicketsMFA, from, to) / tot
	}
	return share(r.Config.Announce, d("2016-12-31")),
		share(d("2017-01-01"), d("2017-03-31"))
}

// Figure6 renders the new-pairings series and the spike ranking.
func (r *Result) Figure6() string {
	m := r.Metrics
	var sb strings.Builder
	sb.WriteString("Figure 6: Number of new token pairings broken down by day\n")
	sb.WriteString(r.phaseLegend() + "\n\n")
	sb.WriteString(m.Chart(SeriesPairingsNew, 80, 12))
	fmt.Fprintf(&sb, "\npaper: 09-07 ranks 1st in new pairings; 10-04 ranks 4th; spikes at announcements/phase changes\n")
	fmt.Fprintf(&sb, "measured: 08-10=%g 09-06=%g 09-07=%g (rank %d) 10-04=%g (rank %d)\n",
		m.Get(d("2016-08-10"), SeriesPairingsNew),
		m.Get(d("2016-09-06"), SeriesPairingsNew),
		m.Get(d("2016-09-07"), SeriesPairingsNew),
		m.Rank(SeriesPairingsNew, d("2016-09-07")),
		m.Get(d("2016-10-04"), SeriesPairingsNew),
		m.Rank(SeriesPairingsNew, d("2016-10-04")))
	return sb.String()
}

// Table1Report renders the pairing mix against the paper's numbers.
func (r *Result) Table1Report() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Percentage breakdown of current token device pairing types\n\n")
	paper := map[string]float64{"soft": 55.38, "sms": 40.22, "training": 2.97, "hard": 1.43}
	fmt.Fprintf(&sb, "%-12s %10s %10s\n", "Type", "paper (%)", "measured")
	for _, label := range []string{"soft", "sms", "training", "hard"} {
		fmt.Fprintf(&sb, "%-12s %10.2f %10.2f\n", label, paper[label], r.Table1.Percent(label))
	}
	return sb.String()
}

// CostReport estimates the §3.3 Twilio spend for the simulated window.
func (r *Result) CostReport() string {
	months := monthsBetween(r.Config.Start, r.Config.End)
	perMsg := 0.0075
	total := float64(months)*1.0 + float64(r.SMSMessages)*perMsg
	return fmt.Sprintf(
		"SMS cost model (§3.3: $1/month + $0.0075 per US message)\n"+
			"months=%d messages=%d -> $%.2f for the simulated window\n",
		months, r.SMSMessages, total)
}

func monthsBetween(a, b time.Time) int {
	return int(b.Month()) - int(a.Month()) + 12*(b.Year()-a.Year()) + 1
}

// Summary is the §4.1 analysis headline plus run totals.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rollout: %d users, %s - %s, seed %d\n",
		r.Config.Users, r.Config.Start.Format("2006-01-02"),
		r.Config.End.Format("2006-01-02"), r.Config.Seed)
	fmt.Fprintf(&sb, "successful logins: %d (%d via MFA); SMS messages: %d\n",
		r.TotalLogins, r.MFALogins, r.SMSMessages)
	fmt.Fprintf(&sb, "non-TTY login share (§4.1): %.0f%%\n", 100*r.Analysis.NonTTYShare())
	return sb.String()
}

func (r *Result) weekdayMeanRange(series, from, to string) float64 {
	m := r.Metrics
	sum, n := 0.0, 0
	for i := m.DayIndex(d(from)); i <= m.DayIndex(d(to)); i++ {
		date := m.Date(i)
		if date.Weekday() == time.Saturday || date.Weekday() == time.Sunday {
			continue
		}
		sum += m.Get(date, series)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ExperimentsMarkdown renders the whole paper-vs-measured record, the body
// of EXPERIMENTS.md.
func (r *Result) ExperimentsMarkdown() string {
	m := r.Metrics
	pre := r.weekdayMeanRange(SeriesUniqueMFAUsers, "2016-08-29", "2016-09-05")
	post := r.weekdayMeanRange(SeriesUniqueMFAUsers, "2016-09-07", "2016-09-16")
	nov := r.weekdayMeanRange(SeriesUniqueMFAUsers, "2016-11-01", "2016-11-30")
	holiday := r.weekdayMeanRange(SeriesUniqueMFAUsers, "2016-12-19", "2016-12-30")
	nm := func(from, to string) float64 {
		return r.weekdayMeanRange(SeriesTrafficExternal, from, to) -
			r.weekdayMeanRange(SeriesTrafficExtMFA, from, to)
	}
	before, after := nm("2016-08-22", "2016-09-05"), nm("2016-09-07", "2016-09-23")
	tr, st := r.TicketShares()

	var sb strings.Builder
	fmt.Fprintf(&sb, "Run: %d users, %s to %s, seed %d. Regenerate with `go run ./cmd/rollout -all`.\n\n",
		r.Config.Users, r.Config.Start.Format("2006-01-02"), r.Config.End.Format("2006-01-02"), r.Config.Seed)
	sb.WriteString("| Experiment | Paper | Measured | Verdict |\n|---|---|---|---|\n")
	fmt.Fprintf(&sb, "| Fig 3: adoption rises through phases 1–2 | monotone increase | weekday means %.1f → %.1f (pre→post phase 2) | %s |\n",
		pre, post, verdict(post > pre))
	fmt.Fprintf(&sb, "| Fig 3: discontinuity on 2016-09-07 | \"noticeable discontinuous increase\" | ×%.2f jump across phase-2 start | %s |\n",
		post/pre, verdict(post > 1.3*pre))
	fmt.Fprintf(&sb, "| Fig 3: winter-holiday decline | visible dip | November %.1f → holiday %.1f (×%.2f) | %s |\n",
		nov, holiday, holiday/nov, verdict(holiday < 0.7*nov))
	fmt.Fprintf(&sb, "| Fig 4: external non-MFA drop at phase 2 | \"significant decrease\" | %.0f/day → %.0f/day (×%.2f) | %s |\n",
		before, after, after/before, verdict(after < 0.8*before))
	fmt.Fprintf(&sb, "| Fig 4: automated traffic persists in phase 3 | \"significant portion\" | %.0f/day exempt external in Oct–Nov | %s |\n",
		nm("2016-10-10", "2016-11-10"), verdict(nm("2016-10-10", "2016-11-10") > 0))
	fmt.Fprintf(&sb, "| Fig 5: MFA ticket share Aug–Dec | 6.7%% | %.1f%% | %s |\n", tr, verdict(tr > 4.5 && tr < 9.5))
	fmt.Fprintf(&sb, "| Fig 5: MFA ticket share Jan–Mar | 2.7%% | %.1f%% | %s |\n", st, verdict(st > 1.2 && st < 4.8))
	fmt.Fprintf(&sb, "| Fig 6: 2016-09-07 rank in new pairings | 1st | rank %d (%g pairings) | %s |\n",
		m.Rank(SeriesPairingsNew, d("2016-09-07")), m.Get(d("2016-09-07"), SeriesPairingsNew),
		verdict(m.Rank(SeriesPairingsNew, d("2016-09-07")) == 1))
	fmt.Fprintf(&sb, "| Fig 6: 2016-10-04 rank in new pairings | 4th | rank %d (%g pairings) | %s |\n",
		m.Rank(SeriesPairingsNew, d("2016-10-04")), m.Get(d("2016-10-04"), SeriesPairingsNew),
		verdict(m.Rank(SeriesPairingsNew, d("2016-10-04")) >= 2 && m.Rank(SeriesPairingsNew, d("2016-10-04")) <= 6))
	for _, row := range []struct {
		label string
		paper float64
	}{{"soft", 55.38}, {"sms", 40.22}, {"training", 2.97}, {"hard", 1.43}} {
		got := r.Table1.Percent(row.label)
		fmt.Fprintf(&sb, "| Table 1: %s pairing share | %.2f%% | %.2f%% | %s |\n",
			row.label, row.paper, got, verdict(got > row.paper-6 && got < row.paper+6))
	}
	fmt.Fprintf(&sb, "| §4.1: most login events non-TTY | \"far majority\" | %.0f%% non-TTY | %s |\n",
		100*r.Analysis.NonTTYShare(), verdict(r.Analysis.NonTTYShare() > 0.5))
	return sb.String()
}

func verdict(ok bool) string {
	if ok {
		return "reproduced"
	}
	return "NOT reproduced"
}
