// Package rollout is the phased-deployment simulator that regenerates the
// paper's evaluation (Figures 3–6 and Table 1). A configurable synthetic
// population — interactive researchers, heavily scripted accounts,
// gateways and community accounts, staff, and training accounts — lives
// through the paper's exact calendar:
//
//	2016-08-10  public announcement, opt-in ("paired" mode, phase 1)
//	2016-09-06  countdown mode (phase 2)
//	2016-10-04  MFA mandatory ("full" mode, phase 3)
//
// Every login in the simulation exercises the real stack: the Figure 1 PAM
// configuration, the exemption list, LDAP pairing lookups, and live RADIUS
// exchanges over UDP against the otpd validation engine. Pairings create
// real tokens; SMS codes travel through the SMS sender; failures hit the
// real lockout counters. Only the SSH wire framing is bypassed (the PAM
// stack is invoked in-process) to keep multi-month simulations fast — the
// sshd package's own tests cover that layer.
package rollout

import (
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/pam"
)

// Config parameterises a run. Zero values take the defaults used by
// cmd/rollout and EXPERIMENTS.md.
type Config struct {
	// Users is the population size. The paper's deployment exceeded
	// 10,000 accounts; the default 1,200 preserves every shape at
	// laptop scale (see DESIGN.md §4).
	Users int
	// Seed drives all randomness; runs are deterministic per seed.
	Seed int64
	// Start and End bound the simulated calendar (inclusive).
	Start, End time.Time
	// Announce, Phase2, Phase3 are the transition dates.
	Announce, Phase2, Phase3 time.Time
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// Events, when set, receives the run's typed auth events live: one
	// login event per attempt (stamped on the scheduled simulation day, so
	// streaming day buckets aggregate exactly like the batch report) plus
	// the otpd-side SMS, lockout, and enrolment events. The bus consumes
	// no randomness, so a run's figures are identical with or without it.
	Events *eventstream.Bus
	// StoreShards is the shard count for the simulation's in-memory
	// stores (0 = GOMAXPROCS-scaled default). Sharding changes lock
	// contention only, never results: runs are identical per seed.
	StoreShards int
}

func (c Config) withDefaults() Config {
	if c.Users == 0 {
		c.Users = 1200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2016, 8, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.End.IsZero() {
		c.End = time.Date(2017, 3, 31, 0, 0, 0, 0, time.UTC)
	}
	if c.Announce.IsZero() {
		c.Announce = time.Date(2016, 8, 10, 0, 0, 0, 0, time.UTC)
	}
	if c.Phase2.IsZero() {
		c.Phase2 = time.Date(2016, 9, 6, 0, 0, 0, 0, time.UTC)
	}
	if c.Phase3.IsZero() {
		c.Phase3 = time.Date(2016, 10, 4, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// modeFor returns the enforcement tier in effect on a date.
func (c Config) modeFor(day time.Time) pam.Mode {
	switch {
	case !day.Before(c.Phase3):
		return pam.ModeFull
	case !day.Before(c.Phase2):
		return pam.ModeCountdown
	default:
		// Phase 1 and the hidden beta before the announcement both run
		// "paired" (§5: "PAM modules were in place and set to the
		// 'paired' opt-in mode").
		return pam.ModePaired
	}
}

// Series names produced by Run.
const (
	SeriesUniqueMFAUsers  = "unique_mfa_users" // Figure 3
	SeriesTrafficAll      = "traffic_all"      // Figure 4, black bars
	SeriesTrafficExternal = "traffic_external" // Figure 4, red bars
	SeriesTrafficExtMFA   = "traffic_ext_mfa"  // Figure 4, blue bars
	SeriesTicketsTotal    = "tickets_total"    // Figure 5
	SeriesTicketsMFA      = "tickets_mfa"      // Figure 5
	SeriesPairingsNew     = "pairings_new"     // Figure 6
	SeriesLoginFailures   = "login_failures"   // supplementary
	SeriesDeniedUnpaired  = "denied_unpaired"  // supplementary
)
