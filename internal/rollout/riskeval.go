// Risk-based adaptive-MFA attack-mix evaluation (DESIGN.md §14): the same
// deterministic attempt schedule is replayed twice over fresh
// infrastructure — once through the plain Figure 1 stack ("off" arm), once
// with the risk gate wired in ("on" arm) — and the two arms are compared
// on usability (MFA prompts shown to legitimate users, SMS volume) and
// security (attacker success per scenario).
//
// Scenarios:
//
//   - credential_stuffing: an attacker replays leaked passwords from a
//     botnet. Exempt (gateway) accounts are the engine-off exposure: the
//     whitelist skips MFA for them from any source, so a leaked password
//     is full compromise. The gate's step-up cancels the exemption.
//   - sim_swap_sms: the attacker ports the victim's phone number and
//     receives the token texts, so the second factor alone no longer
//     helps. The gate denies on impossible travel from the victim's
//     login 90 minutes earlier.
//   - otp_replay: a real-time phish relays the victim's current TOTP
//     code (engine-off compromise); a stale replay of an already-used
//     code is stopped in both arms by otpd's consume-once rule.
//   - benign_travel: no attacker. Established users travel abroad;
//     the gate must step them up, not lock them out, and home-network
//     logins earn the adaptive skip.
//
// Every attempt drives the real PAM → RADIUS → otpd path, exactly like
// the phased-rollout simulation. The schedule (users, sources, timing,
// attacker actions) is pre-generated from the seed alone, so two runs —
// and both arms within a run — see byte-identical timelines; reports are
// byte-stable per seed.
package rollout

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"openmfa/internal/accessctl"
	"openmfa/internal/authlog"
	"openmfa/internal/authwatch"
	"openmfa/internal/clock"
	"openmfa/internal/cryptoutil"
	"openmfa/internal/directory"
	"openmfa/internal/eventstream"
	"openmfa/internal/geoip"
	"openmfa/internal/idm"
	"openmfa/internal/obs"
	"openmfa/internal/otp"
	"openmfa/internal/otpd"
	"openmfa/internal/pam"
	"openmfa/internal/radius"
	"openmfa/internal/risk"
	"openmfa/internal/store"
)

// RiskEvalConfig parameterises RunRiskEval. Zero values take defaults.
type RiskEvalConfig struct {
	// Users is the legitimate population per scenario (default 24, min 8).
	Users int
	// Days is the evaluated calendar length per scenario (default 8, min 5).
	Days int
	// Seed drives all randomness; runs are deterministic per seed.
	Seed int64
	// Start is the first evaluated day (default 2017-04-03, after the
	// paper's rollout completed — every account is in "full" mode).
	Start time.Time
	// Events, when set, receives the on-arm event stream live (login
	// results, otpd SMS/enrol events, and the engine's TypeRisk
	// decisions), for authwatch parity checks and JSONL dumps. The bus
	// consumes no randomness: results are identical with or without it.
	Events *eventstream.Bus
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// StoreShards is the shard count for the in-memory back ends.
	StoreShards int
}

func (c RiskEvalConfig) withDefaults() RiskEvalConfig {
	if c.Users == 0 {
		c.Users = 24
	}
	if c.Users < 8 {
		c.Users = 8
	}
	if c.Days == 0 {
		c.Days = 8
	}
	if c.Days < 5 {
		c.Days = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2017, 4, 3, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// RiskArmStats aggregates one scenario arm.
type RiskArmStats struct {
	LegitAttempts int // legitimate login attempts
	LegitGranted  int // ...that succeeded
	LegitPrompts  int // ...that saw a token prompt
	AttackerTries int // attacker attempts
	Breaches      int // ...that succeeded
	SMS           int // token texts sent
	// Gate decision mix (zero on the off arm).
	Skips, Allows, StepUps, Denies int
}

// RiskScenarioResult is one attack mix, engine off vs on.
type RiskScenarioResult struct {
	Name        string
	Description string
	Off, On     RiskArmStats
}

// RiskDay is one on-arm day's aggregates, mirroring the authwatch series
// so streaming aggregation can be cross-checked exactly.
type RiskDay struct {
	Date           string
	TrafficAll     int
	TrafficExt     int
	TrafficExtMFA  int
	UniqueMFAUsers int
	LoginFailures  int
}

// RiskEvalResult carries everything the report and cross-check need.
type RiskEvalResult struct {
	Config    RiskEvalConfig
	Scenarios []RiskScenarioResult
	// Days are the on-arm daily aggregates across all scenarios (user
	// names are scenario-prefixed, so merging days is collision-free).
	Days []RiskDay
	// SMSTotal is the on-arm SMS volume across all scenarios.
	SMSTotal int
}

// warmupDays is the per-account history imported before day 0 (production
// history predating the evaluation window; MinHistory is 20).
const warmupDays = 25

// Attack timing relative to the victim's own login.
const (
	attackLag = 90 * time.Minute // sim-swap / phish: after the victim's morning login
	replayLag = 10 * time.Second // stale-code replay: inside the same TOTP step
)

// Attempt kinds.
const (
	kindLegit   = "legit"
	kindStuff   = "stuff"   // leaked password, no second factor
	kindSimSwap = "simswap" // leaked password + ported phone number
	kindPhish   = "phish"   // leaked password + live-relayed TOTP code
	kindReplay  = "replay"  // leaked password + already-consumed TOTP code
)

// rperson is one evaluation account.
type rperson struct {
	name     string
	password string
	phone    string
	device   otpd.TokenType // empty = no token (gateway)
	exempt   bool           // standing whitelist entry (gateway)
	home     net.IP         // habitual source address
	travelIP net.IP         // trip source (benign_travel)
}

// rattempt is one scheduled authentication attempt. Offsets are minute-
// spaced per user (well past one TOTP step), except the deliberate
// replayLag pair.
type rattempt struct {
	day  int
	off  time.Duration
	p    *rperson
	ip   net.IP
	kind string
}

func (a *rattempt) attacker() bool { return a.kind != kindLegit }

// dayOffsets draws n distinct minute offsets in [loMin, hiMin).
func dayOffsets(rng *rand.Rand, n, loMin, hiMin int) []time.Duration {
	used := make(map[int]bool, n)
	out := make([]time.Duration, 0, n)
	for len(out) < n {
		m := loMin + rng.Intn(hiMin-loMin)
		if used[m] {
			continue
		}
		used[m] = true
		out = append(out, time.Duration(m)*time.Minute)
	}
	return out
}

func cnIP(rng *rand.Rand) net.IP {
	return net.IPv4(159, 226, byte(1+rng.Intn(250)), byte(1+rng.Intn(250)))
}

func homeIP(rng *rand.Rand) net.IP {
	return net.IPv4(73, byte(10+rng.Intn(150)), byte(rng.Intn(256)), byte(1+rng.Intn(250)))
}

func mkPeople(rng *rand.Rand, prefix string, n int, device func(i int) otpd.TokenType) []*rperson {
	people := make([]*rperson, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s-u%03d", prefix, i)
		people = append(people, &rperson{
			name:     name,
			password: "pw-" + name,
			phone:    fmt.Sprintf("+1512%07d", i),
			device:   device(i),
			home:     homeIP(rng),
		})
	}
	return people
}

// victims deterministically selects ~30% of the population (at least 2).
func victims(rng *rand.Rand, people []*rperson) []*rperson {
	v := len(people) * 3 / 10
	if v < 2 {
		v = 2
	}
	perm := rng.Perm(len(people))
	out := make([]*rperson, v)
	for i := 0; i < v; i++ {
		out[i] = people[perm[i]]
	}
	return out
}

func sortSchedule(sched []rattempt) {
	sort.SliceStable(sched, func(i, j int) bool {
		if sched[i].day != sched[j].day {
			return sched[i].day < sched[j].day
		}
		return sched[i].off < sched[j].off
	})
}

// genStuffing: every account logs in daily; the attacker holds leaked
// passwords for both gateways and ~25% of users and sprays from a botnet.
func genStuffing(rng *rand.Rand, cfg RiskEvalConfig) ([]*rperson, []rattempt) {
	people := mkPeople(rng, "cs", cfg.Users, func(i int) otpd.TokenType {
		if rng.Float64() < 0.7 {
			return otpd.TokenSoft
		}
		return otpd.TokenSMS
	})
	for g := 0; g < 2; g++ {
		name := fmt.Sprintf("cs-gw%d", g+1)
		people = append(people, &rperson{
			name: name, password: "pw-" + name, exempt: true, home: homeIP(rng),
		})
	}

	var sched []rattempt
	for day := 0; day < cfg.Days; day++ {
		for _, p := range people {
			for _, off := range dayOffsets(rng, 1+rng.Intn(2), 360, 1320) {
				sched = append(sched, rattempt{day: day, off: off, p: p, ip: p.home, kind: kindLegit})
			}
		}
	}

	var targets []*rperson
	for _, p := range people {
		if p.exempt || rng.Float64() < 0.25 {
			targets = append(targets, p)
		}
	}
	// Four attempts per breached account, on distinct days, well under
	// otpd's 20-failure lockout.
	for _, p := range targets {
		perm := rng.Perm(cfg.Days - 1)
		n := 4
		if n > len(perm) {
			n = len(perm)
		}
		for j := 0; j < n; j++ {
			sched = append(sched, rattempt{
				day: 1 + perm[j], off: dayOffsets(rng, 1, 360, 1320)[0],
				p: p, ip: cnIP(rng), kind: kindStuff,
			})
		}
	}
	return people, sched
}

// genSimSwap: an all-SMS population; each victim's number is ported and
// the attacker logs in 90 minutes after the victim's own morning login.
func genSimSwap(rng *rand.Rand, cfg RiskEvalConfig) ([]*rperson, []rattempt) {
	people := mkPeople(rng, "ss", cfg.Users, func(int) otpd.TokenType { return otpd.TokenSMS })
	vs := victims(rng, people)
	attackDay := make(map[*rperson]int, len(vs))
	for _, v := range vs {
		attackDay[v] = 1 + rng.Intn(cfg.Days-1)
	}

	var sched []rattempt
	for day := 0; day < cfg.Days; day++ {
		for _, p := range people {
			if ad, ok := attackDay[p]; ok && ad == day {
				// One morning login, then the account stays quiet; the
				// attack follows 90 minutes later.
				off := dayOffsets(rng, 1, 360, 660)[0]
				sched = append(sched,
					rattempt{day: day, off: off, p: p, ip: p.home, kind: kindLegit},
					rattempt{day: day, off: off + attackLag, p: p, ip: cnIP(rng), kind: kindSimSwap})
				continue
			}
			for _, off := range dayOffsets(rng, 1+rng.Intn(2), 360, 1320) {
				sched = append(sched, rattempt{day: day, off: off, p: p, ip: p.home, kind: kindLegit})
			}
		}
	}
	return people, sched
}

// genReplay: an all-soft-token population; half the victims are phished
// in real time (the relayed code is still fresh), half have a stale code
// replayed inside the TOTP step the victim already consumed.
func genReplay(rng *rand.Rand, cfg RiskEvalConfig) ([]*rperson, []rattempt) {
	people := mkPeople(rng, "or", cfg.Users, func(int) otpd.TokenType { return otpd.TokenSoft })
	vs := victims(rng, people)

	var sched []rattempt
	attackDay := make(map[*rperson]int, len(vs))
	kinds := make(map[*rperson]string, len(vs))
	for i, v := range vs {
		attackDay[v] = 1 + rng.Intn(cfg.Days-1)
		if i%2 == 0 {
			kinds[v] = kindPhish
		} else {
			kinds[v] = kindReplay
		}
	}
	for day := 0; day < cfg.Days; day++ {
		for _, p := range people {
			if ad, ok := attackDay[p]; ok && ad == day {
				off := dayOffsets(rng, 1, 360, 660)[0]
				lag := attackLag
				if kinds[p] == kindReplay {
					lag = replayLag
				}
				sched = append(sched,
					rattempt{day: day, off: off, p: p, ip: p.home, kind: kindLegit},
					rattempt{day: day, off: off + lag, p: p, ip: cnIP(rng), kind: kinds[p]})
				continue
			}
			for _, off := range dayOffsets(rng, 1+rng.Intn(2), 360, 1320) {
				sched = append(sched, rattempt{day: day, off: off, p: p, ip: p.home, kind: kindLegit})
			}
		}
	}
	return people, sched
}

// genTravel: no attacker. ~30% of users take a two-day trip abroad (a day
// in transit, then logins from a German network); the rest stay home.
func genTravel(rng *rand.Rand, cfg RiskEvalConfig) ([]*rperson, []rattempt) {
	people := mkPeople(rng, "bt", cfg.Users, func(int) otpd.TokenType { return otpd.TokenSoft })
	trip := make(map[*rperson]int)
	for _, p := range victims(rng, people) {
		p.travelIP = net.IPv4(141, byte(1+rng.Intn(200)), byte(rng.Intn(256)), byte(1+rng.Intn(250)))
		trip[p] = 2 + rng.Intn(cfg.Days-3)
	}

	var sched []rattempt
	for day := 0; day < cfg.Days; day++ {
		for _, p := range people {
			start, traveller := trip[p]
			if traveller && day == start-1 {
				continue // in transit
			}
			if traveller && (day == start || day == start+1) {
				// Afternoon logins keep the implied velocity plausible
				// (the gap from the last home login stays > 8 h).
				off := dayOffsets(rng, 1, 720, 1200)[0]
				sched = append(sched, rattempt{day: day, off: off, p: p, ip: p.travelIP, kind: kindLegit})
				continue
			}
			lo, hi := 360, 1320
			if traveller {
				lo, hi = 720, 1260
			}
			for _, off := range dayOffsets(rng, 1+rng.Intn(2), lo, hi) {
				sched = append(sched, rattempt{day: day, off: off, p: p, ip: p.home, kind: kindLegit})
			}
		}
	}
	return people, sched
}

// riskArm is one scenario arm's live infrastructure.
type riskArm struct {
	clk     *clock.Sim
	obs     *obs.Registry
	idm     *idm.IDM
	dir     *directory.Dir
	otp     *otpd.Server
	alog    *authlog.Log
	acl     *accessctl.List
	pool    *radius.Pool
	servers []*radius.Server
	stack   *pam.Stack
	engine  *risk.Engine // nil on the off arm
	secrets map[string][]byte

	smsMu    sync.Mutex
	smsCodes map[string]string
	smsCount int
}

func (a *riskArm) teardown() {
	for _, rs := range a.servers {
		rs.Close()
	}
}

// riskEval accumulates the on-arm streaming aggregates across scenarios.
type riskEval struct {
	cfg  RiskEvalConfig
	days map[int64]*riskDayBucket
	sms  int
}

type riskDayBucket struct {
	trafficAll, trafficExt, trafficExtMFA, failures int
	mfa                                             map[string]struct{}
}

// newArm builds fresh infrastructure (accounts, tokens, RADIUS farm, PAM
// stack) for one arm of one scenario, mirroring the rollout simulator's
// wiring; the on arm adds the risk gate and imports each account's
// pre-evaluation login history.
func (ev *riskEval) newArm(people []*rperson, on bool) (*riskArm, error) {
	cfg := ev.cfg
	arm := &riskArm{
		clk:      clock.NewSim(cfg.Start.AddDate(0, 0, -warmupDays-1)),
		obs:      obs.NewRegistry(),
		secrets:  make(map[string][]byte),
		smsCodes: make(map[string]string),
	}
	arm.dir = directory.New()
	arm.idm = idm.New(store.OpenMemoryShards(cfg.StoreShards), arm.dir, arm.clk)
	var events *eventstream.Bus
	if on {
		events = cfg.Events
	}
	var err error
	arm.otp, err = otpd.New(otpd.Config{
		DB:            store.OpenMemoryShards(cfg.StoreShards),
		EncryptionKey: cryptoutil.RandomBytes(32),
		Clock:         arm.clk,
		Issuer:        "HPC",
		Obs:           arm.obs,
		Events:        events,
		SMS: otpd.SMSSenderFunc(func(phone, body string) error {
			arm.smsMu.Lock()
			f := strings.Fields(body)
			arm.smsCodes[phone] = f[len(f)-1]
			arm.smsCount++
			arm.smsMu.Unlock()
			return nil
		}),
	})
	if err != nil {
		return nil, err
	}
	if arm.alog, err = authlog.New("", 1<<12); err != nil {
		return nil, err
	}

	var aclText strings.Builder
	aclText.WriteString("permit : ALL : 10.128.0.0/16 : ALL\n")
	for _, p := range people {
		if p.exempt {
			fmt.Fprintf(&aclText, "permit : %s : ALL : ALL\n", p.name)
		}
	}
	rules, err := accessctl.Parse(aclText.String())
	if err != nil {
		return nil, err
	}
	arm.acl = accessctl.NewList(rules)

	secret := cryptoutil.RandomBytes(16)
	var addrs []string
	for i := 0; i < 2; i++ {
		rs := &radius.Server{Secret: secret, Handler: &otpd.RadiusHandler{OTP: arm.otp}, Obs: arm.obs}
		if err := rs.ListenAndServe("127.0.0.1:0"); err != nil {
			arm.teardown()
			return nil, err
		}
		arm.servers = append(arm.servers, rs)
		addrs = append(addrs, rs.Addr().String())
	}
	arm.pool = radius.NewPool(addrs, secret, 2*time.Second, 1)
	arm.pool.Obs = arm.obs

	mode := &modeSwitch{}
	mode.set(pam.TokenConfig{Mode: pam.ModeFull})
	scfg := pam.SSHDStackConfig{
		AuthLog:    arm.alog,
		IDM:        arm.idm,
		Exemptions: arm.acl,
		TokenCfg:   mode,
		Pairing:    pam.LocalPairing{Dir: arm.dir},
		Radius:     arm.pool,
	}
	if on {
		arm.engine = risk.New(risk.Options{
			Geo:    geoip.Synthetic(),
			Policy: risk.AdaptivePolicy(),
			Obs:    arm.obs,
			Events: events,
		})
		arm.stack = pam.NewSSHDStackWithRisk(scfg, arm.engine, nil)
	} else {
		arm.stack = pam.NewSSHDStack(scfg)
	}

	for _, p := range people {
		class := idm.ClassUser
		if p.exempt {
			class = idm.ClassGateway
		}
		if _, err := arm.idm.Create(p.name, p.name+"@hpc.example", p.password, class); err != nil {
			arm.teardown()
			return nil, err
		}
		switch p.device {
		case otpd.TokenSMS:
			enr, err := arm.otp.InitSMSToken(p.name, p.phone)
			if err != nil {
				arm.teardown()
				return nil, err
			}
			arm.secrets[p.name] = enr.Secret
			arm.idm.SetPairing(p.name, idm.PairingSMS)
		case otpd.TokenSoft:
			enr, err := arm.otp.InitSoftToken(p.name)
			if err != nil {
				arm.teardown()
				return nil, err
			}
			arm.secrets[p.name] = enr.Secret
			arm.idm.SetPairing(p.name, idm.PairingSoft)
		}
	}

	if arm.engine != nil {
		// Import each account's pre-evaluation history: habitual network,
		// country, and working hours (spread so no in-window hour reads as
		// off-hours). This is what a production deployment accumulates
		// before the adaptive tier is switched on.
		hours := []int{6, 9, 12, 15, 18, 21}
		for _, p := range people {
			for i := 0; i < warmupDays; i++ {
				at := cfg.Start.AddDate(0, 0, i-warmupDays).
					Add(time.Duration(hours[i%len(hours)]) * time.Hour)
				arm.engine.RecordSuccess(p.name, p.home, at)
			}
		}
	}
	return arm, nil
}

// record folds one on-arm login outcome into the daily aggregates and, if
// a bus is wired, publishes the login event (stamped on the scheduled day,
// mirroring the rollout simulator's convention).
func (ev *riskEval) record(date, at time.Time, user string, ip net.IP, granted, mfa bool) {
	evTime := at
	if evTime.Unix()/86400 != date.Unix()/86400 {
		evTime = date.Add(24*time.Hour - time.Second)
	}
	result := "reject"
	if granted {
		result = "accept"
	}
	if ev.cfg.Events != nil {
		ev.cfg.Events.Publish(eventstream.Event{
			Time: evTime, Type: eventstream.TypeLogin, Component: "sshd",
			User: user, Addr: ip.String(), Result: result, MFA: mfa,
		})
	}
	k := evTime.Unix() / 86400
	b := ev.days[k]
	if b == nil {
		b = &riskDayBucket{mfa: make(map[string]struct{})}
		ev.days[k] = b
	}
	if granted {
		b.trafficAll++
		b.trafficExt++ // every evaluation source is outside 10.128/16
		if mfa {
			b.trafficExtMFA++
			b.mfa[user] = struct{}{}
		}
	} else {
		b.failures++
	}
}

// riskEvalConv plays the principal's side of the conversation: the
// account's real password (all scripted attacks assume it leaked) and a
// second factor per the attempt kind.
type riskEvalConv struct {
	arm *riskArm
	a   *rattempt
	at  time.Time

	prompted bool
	tokenOK  bool
}

func (c *riskEvalConv) Prompt(echo bool, msg string) (string, error) {
	switch {
	case strings.Contains(msg, "Password"):
		return c.a.p.password, nil
	case strings.Contains(msg, "Token"):
		c.prompted = true
		code, err := c.code()
		if err != nil {
			// A code-less attacker answers with a structurally invalid
			// guess (7 digits; otpd requires exactly 6). A well-formed
			// guess like "000000" would carry a real ~1e-6-per-window
			// chance of matching the run's random secrets — faithful to
			// an actual guessing attacker, but a determinism hole for a
			// byte-identical evaluation.
			return "0000000", nil
		}
		c.tokenOK = true
		return code, nil
	default:
		return "", nil
	}
}

func (c *riskEvalConv) Info(string) error { return nil }

func (c *riskEvalConv) code() (string, error) {
	p := c.a.p
	switch c.a.kind {
	case kindStuff:
		return "", fmt.Errorf("attacker holds no second factor")
	case kindReplay:
		// The code the victim consumed replayLag ago, inside the same
		// TOTP step.
		return otp.TOTP(c.arm.secrets[p.name], c.at.Add(-replayLag), c.arm.otp.OTPOptions())
	default:
		// legit: the user's own device. simswap: the ported phone receives
		// this attempt's text. phish: the relay reads the current code off
		// the victim's screen. All three resolve to the live device value.
		if p.device == otpd.TokenSMS {
			c.arm.smsMu.Lock()
			code := c.arm.smsCodes[p.phone]
			c.arm.smsMu.Unlock()
			if code == "" {
				return "", fmt.Errorf("no sms received")
			}
			return code, nil
		}
		sec := c.arm.secrets[p.name]
		if sec == nil {
			return "", fmt.Errorf("unpaired")
		}
		return otp.TOTP(sec, c.arm.clk.Now(), c.arm.otp.OTPOptions())
	}
}

// runArm replays the schedule through one arm's stack.
func (ev *riskEval) runArm(arm *riskArm, sched []rattempt, on bool) RiskArmStats {
	var stats RiskArmStats
	for i := range sched {
		a := &sched[i]
		date := ev.cfg.Start.AddDate(0, 0, a.day)
		at := date.Add(a.off)
		arm.clk.Set(at)

		conv := &riskEvalConv{arm: arm, a: a, at: at}
		ctx := &pam.Context{
			User: a.p.name, RemoteAddr: a.ip, Service: "sshd",
			Conv: conv, Now: arm.clk.Now,
			Trace: obs.NewTraceID(), Metrics: arm.obs,
		}
		granted := arm.stack.Authenticate(ctx) == nil
		if arm.engine != nil {
			// The sshd wiring's outcome feedback.
			if granted {
				arm.engine.RecordSuccess(a.p.name, a.ip, at)
			} else {
				arm.engine.RecordFailure(a.p.name, a.ip, at)
			}
		}

		if a.attacker() {
			stats.AttackerTries++
			if granted {
				stats.Breaches++
			}
		} else {
			stats.LegitAttempts++
			if granted {
				stats.LegitGranted++
			}
			if conv.prompted {
				stats.LegitPrompts++
			}
		}
		if on {
			ev.record(date, at, a.p.name, a.ip, granted, granted && conv.tokenOK)
		}
	}
	stats.SMS = arm.smsCount
	if on {
		ev.sms += arm.smsCount
		dec := func(name string) int {
			return int(arm.obs.Counter("risk_decisions_total", "decision", name).Value())
		}
		stats.Skips, stats.Allows = dec("skip"), dec("allow")
		stats.StepUps, stats.Denies = dec("step_up"), dec("deny")
	}
	return stats
}

// RunRiskEval executes every attack-mix scenario engine-off and engine-on
// and returns the comparative result. Deterministic per config.
func RunRiskEval(cfg RiskEvalConfig) (*RiskEvalResult, error) {
	cfg = cfg.withDefaults()
	ev := &riskEval{cfg: cfg, days: make(map[int64]*riskDayBucket)}
	res := &RiskEvalResult{Config: cfg}

	scenarios := []struct {
		name, desc string
		gen        func(*rand.Rand, RiskEvalConfig) ([]*rperson, []rattempt)
	}{
		{"credential_stuffing", "leaked passwords sprayed from a botnet; exempt gateways are the engine-off exposure", genStuffing},
		{"sim_swap_sms", "victim's phone number ported; the attacker receives the token texts", genSimSwap},
		{"otp_replay", "real-time phish relays fresh codes; stale replays hit otpd's consume-once rule", genReplay},
		{"benign_travel", "no attacker: established users travel abroad and must step up, not lock out", genTravel},
	}

	for si, sc := range scenarios {
		rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(si)))
		people, sched := sc.gen(rng, cfg)
		sortSchedule(sched)

		sr := RiskScenarioResult{Name: sc.name, Description: sc.desc}
		for _, on := range []bool{false, true} {
			arm, err := ev.newArm(people, on)
			if err != nil {
				return nil, fmt.Errorf("riskeval %s: %w", sc.name, err)
			}
			stats := ev.runArm(arm, sched, on)
			arm.teardown()
			if on {
				sr.On = stats
			} else {
				sr.Off = stats
			}
		}
		res.Scenarios = append(res.Scenarios, sr)
		if cfg.Logf != nil {
			cfg.Logf("riskeval: %-20s off: %d/%d breaches, %d prompts  on: %d/%d breaches, %d prompts",
				sc.name, sr.Off.Breaches, sr.Off.AttackerTries, sr.Off.LegitPrompts,
				sr.On.Breaches, sr.On.AttackerTries, sr.On.LegitPrompts)
		}
	}

	keys := make([]int64, 0, len(ev.days))
	for k := range ev.days {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		b := ev.days[k]
		res.Days = append(res.Days, RiskDay{
			Date:           time.Unix(k*86400, 0).UTC().Format("2006-01-02"),
			TrafficAll:     b.trafficAll,
			TrafficExt:     b.trafficExt,
			TrafficExtMFA:  b.trafficExtMFA,
			UniqueMFAUsers: len(b.mfa),
			LoginFailures:  b.failures,
		})
	}
	res.SMSTotal = ev.sms
	return res, nil
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func riskBar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n == 0 && frac > 0 {
		n = 1
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(" ", width-n)
}

// Report renders the FIGURES-style comparison. Byte-stable per config.
func (r *RiskEvalResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ADAPTIVE-MFA ATTACK-MIX EVALUATION (risk engine off vs on)\n")
	fmt.Fprintf(&b, "==========================================================\n")
	fmt.Fprintf(&b, "%d accounts x %d days per scenario, seed %d; policy: skip < 0.05 (history >= 20), step-up >= 0.50, deny >= 1.20\n",
		r.Config.Users, r.Config.Days, r.Config.Seed)
	fmt.Fprintf(&b, "Both arms replay one deterministic schedule over the real PAM -> RADIUS -> otpd path; only the risk gate differs.\n\n")

	fmt.Fprintf(&b, "%-20s %-4s %7s %8s %8s %6s %8s %9s\n",
		"scenario", "arm", "legit", "granted", "prompted", "sms", "attacks", "breached")
	for _, sc := range r.Scenarios {
		row := func(arm string, s RiskArmStats) {
			name := ""
			if arm == "off" {
				name = sc.Name
			}
			fmt.Fprintf(&b, "%-20s %-4s %7d %8d %8d %6d %8d %9d\n",
				name, arm, s.LegitAttempts, s.LegitGranted, s.LegitPrompts,
				s.SMS, s.AttackerTries, s.Breaches)
		}
		row("off", sc.Off)
		row("on", sc.On)
	}

	fmt.Fprintf(&b, "\n%-20s %18s %22s %20s\n",
		"scenario", "MFA prompts", "attacker success", "legit success")
	for _, sc := range r.Scenarios {
		fmt.Fprintf(&b, "%-20s %7d -> %7d %9.1f%% -> %6.1f%% %8.1f%% -> %5.1f%%\n",
			sc.Name,
			sc.Off.LegitPrompts, sc.On.LegitPrompts,
			pct(sc.Off.Breaches, sc.Off.AttackerTries), pct(sc.On.Breaches, sc.On.AttackerTries),
			pct(sc.Off.LegitGranted, sc.Off.LegitAttempts), pct(sc.On.LegitGranted, sc.On.LegitAttempts))
	}

	var skips, allows, stepUps, denies int
	for _, sc := range r.Scenarios {
		skips += sc.On.Skips
		allows += sc.On.Allows
		stepUps += sc.On.StepUps
		denies += sc.On.Denies
	}
	fmt.Fprintf(&b, "\ngate decisions (on arms): skip=%d allow=%d step_up=%d deny=%d\n",
		skips, allows, stepUps, denies)

	fmt.Fprintf(&b, "\nFIGURE R1. Token prompts per legitimate login (usability)\n")
	for _, sc := range r.Scenarios {
		off := pct(sc.Off.LegitPrompts, sc.Off.LegitAttempts) / 100
		on := pct(sc.On.LegitPrompts, sc.On.LegitAttempts) / 100
		fmt.Fprintf(&b, "  %-20s off |%s| %4.0f%%\n", sc.Name, riskBar(off, 24), 100*off)
		fmt.Fprintf(&b, "  %-20s on  |%s| %4.0f%%\n", "", riskBar(on, 24), 100*on)
	}
	fmt.Fprintf(&b, "\nFIGURE R2. Attacker success rate (security)\n")
	for _, sc := range r.Scenarios {
		if sc.Off.AttackerTries == 0 {
			fmt.Fprintf(&b, "  %-20s (no attacker in this mix)\n", sc.Name)
			continue
		}
		off := pct(sc.Off.Breaches, sc.Off.AttackerTries) / 100
		on := pct(sc.On.Breaches, sc.On.AttackerTries) / 100
		fmt.Fprintf(&b, "  %-20s off |%s| %4.0f%%\n", sc.Name, riskBar(off, 24), 100*off)
		fmt.Fprintf(&b, "  %-20s on  |%s| %4.0f%%\n", "", riskBar(on, 24), 100*on)
	}
	return b.String()
}

// RiskCrossCheck compares the on-arm daily aggregates against what an
// authwatch watcher accumulated from the same bus (the streaming pipeline
// computed by entirely independent code). Call after Watcher.Stop.
func RiskCrossCheck(res *RiskEvalResult, w *authwatch.Watcher) error {
	var diffs []string
	addDiff := func(format string, args ...any) {
		if len(diffs) < 10 {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
	}
	if n := w.Dropped(); n > 0 {
		addDiff("subscription dropped %d events; streaming aggregates are incomplete", n)
	}
	snap := w.Snapshot()
	days := make(map[string]authwatch.DaySnapshot, len(snap.Days))
	for _, d := range snap.Days {
		days[d.Date] = d
	}
	checked := make(map[string]bool, len(res.Days))
	for _, d := range res.Days {
		checked[d.Date] = true
		ds := days[d.Date]
		compare := func(what string, eval, stream int) {
			if eval != stream {
				addDiff("%s %s: eval=%d stream=%d", d.Date, what, eval, stream)
			}
		}
		compare("traffic_all", d.TrafficAll, ds.TrafficAll)
		compare("traffic_external", d.TrafficExt, ds.TrafficExt)
		compare("traffic_ext_mfa", d.TrafficExtMFA, ds.TrafficExtMFA)
		compare("unique_mfa_users", d.UniqueMFAUsers, ds.UniqueMFAUsers)
		compare("login_failures", d.LoginFailures, ds.LoginFailures)
	}
	for _, d := range snap.Days {
		if !checked[d.Date] && (d.TrafficAll > 0 || d.LoginFailures > 0) {
			addDiff("stream has login activity on %s, outside the evaluation calendar", d.Date)
		}
	}
	if snap.SMSTotal != res.SMSTotal {
		addDiff("sms total: eval=%d stream=%d", res.SMSTotal, snap.SMSTotal)
	}
	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("riskeval: streaming/eval aggregate mismatch:\n  %s",
		strings.Join(diffs, "\n  "))
}

// RiskCrossCheckSummary is the one-line success report for RiskCrossCheck.
func RiskCrossCheckSummary(res *RiskEvalResult, w *authwatch.Watcher) string {
	snap := w.Snapshot()
	return fmt.Sprintf(
		"authwatch: %d events streamed (%d dropped), %d days: daily aggregates and %d SMS match the risk eval",
		snap.Events, snap.Dropped, len(snap.Days), snap.SMSTotal)
}
