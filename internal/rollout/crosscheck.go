package rollout

import (
	"fmt"
	"strings"

	"openmfa/internal/authwatch"
)

// CrossCheck compares a completed run's batch aggregates against the
// streaming aggregates an authwatch.Watcher accumulated from the same
// run's event bus. The two are computed by entirely different code paths —
// the batch report inside the simulator loop, the watcher one event at a
// time off the bus — so agreement is a strong end-to-end check on the
// whole event pipeline. It returns nil when every daily series (unique MFA
// users, traffic all/external/external-MFA, login failures) and the SMS
// total match exactly; otherwise an error listing the first mismatches.
//
// Call after the watcher has drained (Watcher.Stop); a subscription that
// dropped events cannot be compared and is reported as a mismatch.
func CrossCheck(res *Result, w *authwatch.Watcher) error {
	var diffs []string
	addDiff := func(format string, args ...any) {
		if len(diffs) < 10 {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
	}

	if n := w.Dropped(); n > 0 {
		addDiff("subscription dropped %d events; streaming aggregates are incomplete", n)
	}

	snap := w.Snapshot()
	days := make(map[string]authwatch.DaySnapshot, len(snap.Days))
	for _, d := range snap.Days {
		days[d.Date] = d
	}

	checked := make(map[string]bool)
	for i := 0; i < res.Metrics.Days; i++ {
		date := res.Metrics.Date(i)
		key := date.Format("2006-01-02")
		checked[key] = true
		ds := days[key] // zero value when the stream saw no events that day
		compare := func(what string, batch float64, stream int) {
			if int(batch) != stream {
				addDiff("%s %s: batch=%d stream=%d", key, what, int(batch), stream)
			}
		}
		compare("unique_mfa_users", res.Metrics.Get(date, SeriesUniqueMFAUsers), ds.UniqueMFAUsers)
		compare("traffic_all", res.Metrics.Get(date, SeriesTrafficAll), ds.TrafficAll)
		compare("traffic_external", res.Metrics.Get(date, SeriesTrafficExternal), ds.TrafficExt)
		compare("traffic_ext_mfa", res.Metrics.Get(date, SeriesTrafficExtMFA), ds.TrafficExtMFA)
		compare("login_failures", res.Metrics.Get(date, SeriesLoginFailures), ds.LoginFailures)
	}
	for _, d := range snap.Days {
		if !checked[d.Date] && (d.TrafficAll > 0 || d.LoginFailures > 0) {
			addDiff("stream has login activity on %s, outside the batch calendar", d.Date)
		}
	}

	if snap.SMSTotal != res.SMSMessages {
		addDiff("sms total: batch=%d stream=%d", res.SMSMessages, snap.SMSTotal)
	}

	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("rollout: streaming/batch aggregate mismatch:\n  %s",
		strings.Join(diffs, "\n  "))
}

// CrossCheckSummary is the one-line success report for CrossCheck runs.
func CrossCheckSummary(res *Result, w *authwatch.Watcher) string {
	snap := w.Snapshot()
	span := ""
	if len(snap.Days) > 0 {
		span = snap.Days[0].Date + ".." + snap.Days[len(snap.Days)-1].Date
	}
	return fmt.Sprintf(
		"authwatch: %d events streamed (%d dropped), %d days %s: daily aggregates and %d SMS match batch report",
		snap.Events, snap.Dropped, len(snap.Days), span, snap.SMSTotal)
}
