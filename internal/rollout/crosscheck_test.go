package rollout

import (
	"strings"
	"testing"
	"time"

	"openmfa/internal/authwatch"
	"openmfa/internal/eventstream"
	"openmfa/internal/leakcheck"
)

// TestCrossCheckStreamingMatchesBatch runs a short calendar spanning the
// phase-2 -> phase-3 transition with the event bus attached and asserts the
// streaming authwatch aggregates equal the batch report exactly, day by
// day. This is the end-to-end proof that the live event pipeline carries
// the same information the paper's post-hoc log analysis did.
func TestCrossCheckStreamingMatchesBatch(t *testing.T) {
	leakcheck.Check(t)
	bus := eventstream.NewBus(nil)
	watch := authwatch.New(authwatch.Config{})
	// A deep buffer makes drops structurally impossible: the publisher and
	// consumer run in the same process and the buffer exceeds any burst.
	watch.Attach(bus, 1<<16)

	res, err := Run(Config{
		Users:  80,
		Seed:   7,
		Start:  day("2016-09-25"),
		End:    day("2016-10-10"),
		Events: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	watch.Stop()

	if d := watch.Dropped(); d != 0 {
		t.Fatalf("watcher dropped %d events", d)
	}
	if err := CrossCheck(res, watch); err != nil {
		t.Fatalf("streaming aggregates diverge from batch report:\n%v", err)
	}
	snap := watch.Snapshot()
	if snap.Events == 0 || snap.SMSTotal == 0 {
		t.Fatalf("stream saw %d events, %d SMS — bus not wired through the run", snap.Events, snap.SMSTotal)
	}
	summary := CrossCheckSummary(res, watch)
	for _, want := range []string{"authwatch:", "match batch report"} {
		if !strings.Contains(summary, want) {
			t.Errorf("summary missing %q: %s", want, summary)
		}
	}

	// With everything else in agreement, a single login event outside the
	// batch calendar must be the one reported divergence.
	watch.Ingest(eventstream.Event{
		Time: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		Type: eventstream.TypeLogin, Result: "accept", Addr: "73.1.1.1", User: "ghost",
	})
	err = CrossCheck(res, watch)
	if err == nil || !strings.Contains(err.Error(), "outside the batch calendar") {
		t.Errorf("out-of-calendar activity not flagged: %v", err)
	}
}

// TestCrossCheckDetectsDivergence proves the check actually bites: a
// watcher fed one event too few (or too many) must be reported.
func TestCrossCheckDetectsDivergence(t *testing.T) {
	res, err := Run(Config{Users: 40, Seed: 3,
		Start: day("2016-10-03"), End: day("2016-10-06")})
	if err != nil {
		t.Fatal(err)
	}
	w := authwatch.New(authwatch.Config{})
	// Empty watcher vs a real run: every day with traffic must diff.
	if err := CrossCheck(res, w); err == nil {
		t.Fatal("CrossCheck passed an empty stream against a non-empty run")
	} else if !strings.Contains(err.Error(), "traffic_all") {
		t.Errorf("diff does not name the diverging series: %v", err)
	}

	// The figures must be identical with and without the bus attached:
	// event publication consumes no randomness.
	bus := eventstream.NewBus(nil)
	sub := bus.Subscribe(1 << 16)
	res2, err := Run(Config{Users: 40, Seed: 3,
		Start: day("2016-10-03"), End: day("2016-10-06"), Events: bus})
	sub.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLogins != res2.TotalLogins || res.SMSMessages != res2.SMSMessages {
		t.Errorf("bus changed the figures: logins %d vs %d, sms %d vs %d",
			res.TotalLogins, res2.TotalLogins, res.SMSMessages, res2.SMSMessages)
	}
}
