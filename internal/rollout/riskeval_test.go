package rollout

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"openmfa/internal/authwatch"
	"openmfa/internal/eventstream"
	"openmfa/internal/geoip"
	"openmfa/internal/risk"
)

func smallRiskCfg() RiskEvalConfig {
	return RiskEvalConfig{Users: 8, Days: 5, Seed: 7}
}

// The headline claims of DESIGN.md §14: the on arm removes every scripted
// breach without costing a single legitimate login, and cuts prompts.
func TestRiskEvalSecurityAndUsability(t *testing.T) {
	res, err := RunRiskEval(smallRiskCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) < 3 {
		t.Fatalf("scenarios = %d, want >= 3 attack mixes", len(res.Scenarios))
	}
	byName := map[string]RiskScenarioResult{}
	for _, sc := range res.Scenarios {
		byName[sc.Name] = sc
	}

	// Engine off, the scripted attacks land: leaked passwords walk through
	// exempt accounts, and intercepted/relayed codes beat the second factor.
	for _, name := range []string{"credential_stuffing", "sim_swap_sms", "otp_replay"} {
		sc, ok := byName[name]
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		if sc.Off.AttackerTries == 0 {
			t.Fatalf("%s: no attacker attempts scheduled", name)
		}
		if sc.Off.Breaches == 0 {
			t.Errorf("%s: engine-off arm shows no breaches; the scenario exercises nothing", name)
		}
		if sc.On.Breaches != 0 {
			t.Errorf("%s: %d breaches with the engine on", name, sc.On.Breaches)
		}
	}
	// Stale replays are stopped by consume-once even with the engine off.
	or := byName["otp_replay"]
	if or.Off.Breaches >= or.Off.AttackerTries {
		t.Errorf("otp_replay: every attack succeeded engine-off; consume-once should stop stale replays (%d/%d)",
			or.Off.Breaches, or.Off.AttackerTries)
	}

	for _, sc := range res.Scenarios {
		// No usability regression: the on arm grants every login the off
		// arm granted.
		if sc.On.LegitGranted != sc.Off.LegitGranted || sc.On.LegitGranted != sc.On.LegitAttempts {
			t.Errorf("%s: legit granted off=%d/%d on=%d/%d; adaptive arm must not lock out legitimate users",
				sc.Name, sc.Off.LegitGranted, sc.Off.LegitAttempts, sc.On.LegitGranted, sc.On.LegitAttempts)
		}
		// And fewer prompts: established accounts earn the skip.
		if sc.On.LegitPrompts >= sc.Off.LegitPrompts {
			t.Errorf("%s: prompts off=%d on=%d, want a reduction", sc.Name, sc.Off.LegitPrompts, sc.On.LegitPrompts)
		}
		if sc.On.Skips == 0 {
			t.Errorf("%s: gate never granted a skip", sc.Name)
		}
	}

	// Travellers step up rather than lock out; the SMS bill shrinks.
	bt := byName["benign_travel"]
	if bt.On.StepUps == 0 {
		t.Error("benign_travel: no step-ups recorded for novel-country logins")
	}
	if bt.On.Denies != 0 {
		t.Errorf("benign_travel: %d denials in a no-attacker mix", bt.On.Denies)
	}
	cs := byName["credential_stuffing"]
	if cs.On.SMS >= cs.Off.SMS {
		t.Errorf("credential_stuffing: sms off=%d on=%d, want fewer texts with adaptive skip", cs.Off.SMS, cs.On.SMS)
	}

	if !strings.Contains(res.Report(), "FIGURE R1") {
		t.Error("report missing the usability figure")
	}
}

// Two runs with the same config must be byte-identical — report, stats,
// and daily aggregates (the property `cmd/rollout -risk` double-runs).
func TestRiskEvalDeterministic(t *testing.T) {
	run := func() *RiskEvalResult {
		res, err := RunRiskEval(smallRiskCfg())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if ar, br := a.Report(), b.Report(); ar != br {
		t.Fatalf("reports differ between identical runs:\n--- a\n%s\n--- b\n%s", ar, br)
	}
	if fmt.Sprintf("%+v", a.Scenarios) != fmt.Sprintf("%+v", b.Scenarios) {
		t.Fatal("scenario stats differ between identical runs")
	}
	if fmt.Sprintf("%+v", a.Days) != fmt.Sprintf("%+v", b.Days) || a.SMSTotal != b.SMSTotal {
		t.Fatal("daily aggregates differ between identical runs")
	}
}

// The on-arm stream must aggregate to exactly the eval's own daily
// numbers through authwatch's independent code path.
func TestRiskEvalStreamingParity(t *testing.T) {
	bus := eventstream.NewBus(nil)
	watch := authwatch.New(authwatch.Config{})
	watch.Attach(bus, 1<<16)

	cfg := smallRiskCfg()
	cfg.Events = bus
	res, err := RunRiskEval(cfg)
	if err != nil {
		t.Fatal(err)
	}
	watch.Stop()
	if err := RiskCrossCheck(res, watch); err != nil {
		t.Fatal(err)
	}
	if s := RiskCrossCheckSummary(res, watch); !strings.Contains(s, "match the risk eval") {
		t.Fatalf("summary = %q", s)
	}
	if len(res.Days) == 0 {
		t.Fatal("no daily aggregates collected")
	}

	// A perturbed eval result must be detected, not silently accepted.
	res.Days[0].TrafficAll++
	if err := RiskCrossCheck(res, watch); err == nil {
		t.Fatal("perturbed aggregates passed the cross-check")
	}
}

// The JSONL dump of one run's stream, replayed offline through fresh
// engines, yields byte-identical decision sequences (the -events-out
// regression path).
func TestRiskEvalReplayRegression(t *testing.T) {
	bus := eventstream.NewBus(nil)
	sub := bus.Subscribe(1 << 16)

	cfg := smallRiskCfg()
	cfg.Events = bus
	if _, err := RunRiskEval(cfg); err != nil {
		t.Fatal(err)
	}
	sub.Close()

	var jsonl bytes.Buffer
	enc := json.NewEncoder(&jsonl)
	n := 0
	for ev := range sub.Events() {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d events", sub.Dropped())
	}
	if n == 0 {
		t.Fatal("no events captured")
	}

	replay := func() string {
		e := risk.New(risk.Options{Geo: geoip.Synthetic(), Policy: risk.AdaptivePolicy()})
		dec := json.NewDecoder(bytes.NewReader(jsonl.Bytes()))
		var out strings.Builder
		for dec.More() {
			var ev eventstream.Event
			if err := dec.Decode(&ev); err != nil {
				t.Fatal(err)
			}
			if d, ok := e.Observe(ev); ok {
				fmt.Fprintf(&out, "%s %s %s %s\n", ev.Time.Format("2006-01-02T15:04:05"), ev.User, d.Outcome, d.Detail())
			}
		}
		return out.String()
	}
	a, b := replay(), replay()
	if a == "" {
		t.Fatal("replay produced no decisions")
	}
	if a != b {
		t.Fatal("offline replays of the same JSONL diverged")
	}
}
