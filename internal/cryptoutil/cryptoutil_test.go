package cryptoutil

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// RFC 6070-style vectors adapted for HMAC-SHA256 (published test vectors
// widely cross-checked, e.g. in the Go x/crypto test suite).
func TestPBKDF2KnownVectors(t *testing.T) {
	cases := []struct {
		password, salt string
		iter, keyLen   int
		wantHex        string
	}{
		{"password", "salt", 1, 32,
			"120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b"},
		{"password", "salt", 2, 32,
			"ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43"},
		{"password", "salt", 4096, 32,
			"c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a"},
		{"passwordPASSWORDpassword", "saltSALTsaltSALTsaltSALTsaltSALTsalt", 4096, 40,
			"348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1c635518c7dac47e9"},
	}
	for _, c := range cases {
		got := PBKDF2([]byte(c.password), []byte(c.salt), c.iter, c.keyLen)
		want, err := hex.DecodeString(c.wantHex)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("PBKDF2(%q,%q,%d,%d) = %x, want %s",
				c.password, c.salt, c.iter, c.keyLen, got, c.wantHex)
		}
	}
}

func TestPBKDF2PanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for iter=0")
		}
	}()
	PBKDF2([]byte("p"), []byte("s"), 0, 32)
}

func TestHashAndVerifyPassword(t *testing.T) {
	h := HashPassword("hunter2")
	if !strings.HasPrefix(h, "pbkdf2$") {
		t.Fatalf("unexpected hash format: %q", h)
	}
	if !VerifyPassword(h, "hunter2") {
		t.Fatal("correct password rejected")
	}
	if VerifyPassword(h, "hunter3") {
		t.Fatal("wrong password accepted")
	}
	if VerifyPassword(h, "") {
		t.Fatal("empty password accepted")
	}
}

func TestVerifyPasswordRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"", "pbkdf2", "pbkdf2$x$y$z", "md5$1$aa$bb",
		"pbkdf2$4096$!!!$AAAA", "pbkdf2$4096$AAAA$!!!",
		"pbkdf2$99999999999$AAAA$AAAA",
	} {
		if VerifyPassword(s, "pw") {
			t.Errorf("VerifyPassword accepted malformed hash %q", s)
		}
	}
}

func TestHashPasswordSalted(t *testing.T) {
	a := HashPassword("same")
	b := HashPassword("same")
	if a == b {
		t.Fatal("two hashes of the same password are identical; salt missing")
	}
}

func TestBoxRoundTrip(t *testing.T) {
	box, err := NewBox(bytes.Repeat([]byte{7}, 32))
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("JBSWY3DPEHPK3PXP secret seed")
	ad := []byte("user:cproctor")
	sealed := box.Seal(pt, ad)
	got, err := box.Open(sealed, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip = %q, want %q", got, pt)
	}
}

func TestBoxWrongADFails(t *testing.T) {
	box, _ := NewBox(bytes.Repeat([]byte{7}, 32))
	sealed := box.Seal([]byte("x"), []byte("user:a"))
	if _, err := box.Open(sealed, []byte("user:b")); err != ErrDecrypt {
		t.Fatalf("Open with wrong AD: err = %v, want ErrDecrypt", err)
	}
}

func TestBoxTamperFails(t *testing.T) {
	box, _ := NewBox(bytes.Repeat([]byte{7}, 32))
	sealed := box.Seal([]byte("payload"), nil)
	sealed[len(sealed)-1] ^= 1
	if _, err := box.Open(sealed, nil); err != ErrDecrypt {
		t.Fatalf("Open of tampered payload: err = %v, want ErrDecrypt", err)
	}
}

func TestBoxShortCiphertext(t *testing.T) {
	box, _ := NewBox(bytes.Repeat([]byte{7}, 32))
	if _, err := box.Open([]byte{1, 2, 3}, nil); err != ErrDecrypt {
		t.Fatalf("Open of truncated payload: err = %v, want ErrDecrypt", err)
	}
}

func TestBoxBadKeySize(t *testing.T) {
	if _, err := NewBox(make([]byte, 10)); err == nil {
		t.Fatal("NewBox accepted 10-byte key")
	}
}

func TestBoxNoncesUnique(t *testing.T) {
	box, _ := NewBox(bytes.Repeat([]byte{9}, 32))
	a := box.Seal([]byte("same"), nil)
	b := box.Seal([]byte("same"), nil)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of identical plaintext produced identical output")
	}
}

func TestSignerRoundTrip(t *testing.T) {
	s := NewSigner([]byte("portal-secret"))
	now := time.Date(2016, 9, 1, 12, 0, 0, 0, time.UTC)
	tok := s.Sign("unpair:storm", now.Add(time.Hour))
	got, err := s.Verify(tok, now)
	if err != nil {
		t.Fatal(err)
	}
	if got != "unpair:storm" {
		t.Fatalf("payload = %q", got)
	}
}

func TestSignerExpiry(t *testing.T) {
	s := NewSigner([]byte("k"))
	now := time.Date(2016, 9, 1, 12, 0, 0, 0, time.UTC)
	tok := s.Sign("p", now.Add(time.Minute))
	if _, err := s.Verify(tok, now.Add(2*time.Minute)); err != ErrTokenExpired {
		t.Fatalf("err = %v, want ErrTokenExpired", err)
	}
}

func TestSignerForgery(t *testing.T) {
	a := NewSigner([]byte("key-a"))
	b := NewSigner([]byte("key-b"))
	now := time.Unix(1472730000, 0)
	tok := a.Sign("payload", now.Add(time.Hour))
	if _, err := b.Verify(tok, now); err != ErrTokenForged {
		t.Fatalf("cross-key verify err = %v, want ErrTokenForged", err)
	}
	// Bit-flip in the payload part must also fail.
	mut := "A" + tok[1:]
	if _, err := a.Verify(mut, now); err == nil {
		t.Fatal("tampered token verified")
	}
}

func TestSignerMalformed(t *testing.T) {
	s := NewSigner([]byte("k"))
	now := time.Unix(0, 0)
	for _, tok := range []string{"", "a.b", "a.b.c.d", "!!!.AAA.AAA"} {
		if _, err := s.Verify(tok, now); err == nil {
			t.Errorf("Verify(%q) succeeded, want error", tok)
		}
	}
}

func TestSignerPayloadWithDots(t *testing.T) {
	// Payloads are base64-encoded so embedded dots must survive.
	s := NewSigner([]byte("k"))
	now := time.Unix(1472730000, 0)
	tok := s.Sign("a.b.c|d", now.Add(time.Hour))
	got, err := s.Verify(tok, now)
	if err != nil || got != "a.b.c|d" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestRandomBytesLengthAndVariety(t *testing.T) {
	a := RandomBytes(32)
	b := RandomBytes(32)
	if len(a) != 32 || len(b) != 32 {
		t.Fatal("wrong length")
	}
	if bytes.Equal(a, b) {
		t.Fatal("two random draws equal")
	}
	if len(RandomHex(8)) != 16 {
		t.Fatal("RandomHex length")
	}
}

// Property: Box round-trips arbitrary payloads and ADs.
func TestBoxRoundTripProperty(t *testing.T) {
	box, _ := NewBox(bytes.Repeat([]byte{3}, 32))
	f := func(pt, ad []byte) bool {
		got, err := box.Open(box.Seal(pt, ad), ad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: signer round-trips arbitrary payloads.
func TestSignerRoundTripProperty(t *testing.T) {
	s := NewSigner([]byte("prop-key"))
	now := time.Unix(1472730000, 0)
	f := func(payload string) bool {
		tok := s.Sign(payload, now.Add(time.Hour))
		got, err := s.Verify(tok, now)
		return err == nil && got == payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PBKDF2 output length always equals keyLen.
func TestPBKDF2LengthProperty(t *testing.T) {
	f := func(pw, salt []byte, kl uint8) bool {
		keyLen := int(kl%100) + 1
		return len(PBKDF2(pw, salt, 2, keyLen)) == keyLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
