// Package cryptoutil collects the small cryptographic building blocks the
// infrastructure needs: PBKDF2 password hashing (the portal and IDM store
// only derived keys), an AES-GCM "sealed box" used by the OTP back end to
// encrypt token secrets at rest (the paper's LinOTP database is encrypted),
// and HMAC-signed, expiring URL tokens used for the out-of-band unpairing
// email described in §3.5.
//
// Only the Go standard library is used.
package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"
)

// PBKDF2 derives a key of keyLen bytes from password and salt using iter
// iterations of HMAC-SHA256 (RFC 2898 / RFC 8018).
func PBKDF2(password, salt []byte, iter, keyLen int) []byte {
	if iter < 1 || keyLen < 1 {
		panic("cryptoutil: PBKDF2 iter and keyLen must be positive")
	}
	prf := hmac.New(sha256.New, password)
	hashLen := prf.Size()
	numBlocks := (keyLen + hashLen - 1) / hashLen

	var buf [4]byte
	dk := make([]byte, 0, numBlocks*hashLen)
	u := make([]byte, hashLen)
	for block := 1; block <= numBlocks; block++ {
		prf.Reset()
		prf.Write(salt)
		binary.BigEndian.PutUint32(buf[:], uint32(block))
		prf.Write(buf[:])
		t := prf.Sum(nil)
		copy(u, t)
		for i := 2; i <= iter; i++ {
			prf.Reset()
			prf.Write(u)
			u = prf.Sum(u[:0])
			for x := range t {
				t[x] ^= u[x]
			}
		}
		dk = append(dk, t...)
	}
	return dk[:keyLen]
}

// DefaultPBKDF2Iterations balances test speed and realism; production
// deployments should raise it.
const DefaultPBKDF2Iterations = 4096

const saltLen = 16

// HashPassword returns a self-describing PBKDF2 hash string:
// pbkdf2$<iter>$<b64 salt>$<b64 dk>.
func HashPassword(password string) string {
	salt := make([]byte, saltLen)
	if _, err := rand.Read(salt); err != nil {
		panic("cryptoutil: rand failed: " + err.Error())
	}
	dk := PBKDF2([]byte(password), salt, DefaultPBKDF2Iterations, 32)
	return fmt.Sprintf("pbkdf2$%d$%s$%s",
		DefaultPBKDF2Iterations,
		base64.RawStdEncoding.EncodeToString(salt),
		base64.RawStdEncoding.EncodeToString(dk))
}

// VerifyPassword reports whether password matches the stored hash produced
// by HashPassword. It is constant-time in the derived key comparison.
func VerifyPassword(stored, password string) bool {
	parts := strings.Split(stored, "$")
	if len(parts) != 4 || parts[0] != "pbkdf2" {
		return false
	}
	var iter int
	if _, err := fmt.Sscanf(parts[1], "%d", &iter); err != nil || iter < 1 || iter > 1<<24 {
		return false
	}
	salt, err := base64.RawStdEncoding.DecodeString(parts[2])
	if err != nil {
		return false
	}
	want, err := base64.RawStdEncoding.DecodeString(parts[3])
	if err != nil {
		return false
	}
	got := PBKDF2([]byte(password), salt, iter, len(want))
	return subtle.ConstantTimeCompare(got, want) == 1
}

// Box encrypts and decrypts small payloads with AES-256-GCM under a fixed
// key. The OTP back end wraps every token secret in a Box before it touches
// the store, mirroring the paper's encrypted MariaDB repository.
type Box struct {
	aead cipher.AEAD
}

// NewBox creates a Box from a 16-, 24-, or 32-byte key.
func NewBox(key []byte) (*Box, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: %w", err)
	}
	return &Box{aead: aead}, nil
}

// Seal encrypts plaintext, binding it to the additional data ad (which may
// be nil). The nonce is prepended to the returned ciphertext.
func (b *Box) Seal(plaintext, ad []byte) []byte {
	nonce := make([]byte, b.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		panic("cryptoutil: rand failed: " + err.Error())
	}
	return b.aead.Seal(nonce, nonce, plaintext, ad)
}

// ErrDecrypt is returned when a sealed payload fails authentication.
var ErrDecrypt = errors.New("cryptoutil: decryption failed")

// Open decrypts a payload produced by Seal with the same additional data.
func (b *Box) Open(sealed, ad []byte) ([]byte, error) {
	ns := b.aead.NonceSize()
	if len(sealed) < ns {
		return nil, ErrDecrypt
	}
	pt, err := b.aead.Open(nil, sealed[:ns], sealed[ns:], ad)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// Signer issues and verifies expiring HMAC-SHA256 tokens of the form
// base64(payload)|base64(expiry)|base64(mac). The portal uses it for
// out-of-band unpair URLs and for session cookies.
type Signer struct {
	key []byte
}

// NewSigner returns a Signer using key. The key is copied.
func NewSigner(key []byte) *Signer {
	k := make([]byte, len(key))
	copy(k, key)
	return &Signer{key: k}
}

// Sign returns a token carrying payload that Verify will accept until
// expires (UTC).
func (s *Signer) Sign(payload string, expires time.Time) string {
	exp := fmt.Sprintf("%d", expires.Unix())
	mac := s.mac(payload, exp)
	enc := base64.RawURLEncoding
	return enc.EncodeToString([]byte(payload)) + "." + enc.EncodeToString([]byte(exp)) + "." + enc.EncodeToString(mac)
}

// Token verification errors.
var (
	ErrTokenMalformed = errors.New("cryptoutil: malformed token")
	ErrTokenExpired   = errors.New("cryptoutil: token expired")
	ErrTokenForged    = errors.New("cryptoutil: bad token signature")
)

// Verify checks token and returns its payload. now supplies the current
// time so that callers on a simulated clock get deterministic behaviour.
func (s *Signer) Verify(token string, now time.Time) (string, error) {
	enc := base64.RawURLEncoding
	parts := strings.Split(token, ".")
	if len(parts) != 3 {
		return "", ErrTokenMalformed
	}
	payload, err := enc.DecodeString(parts[0])
	if err != nil {
		return "", ErrTokenMalformed
	}
	exp, err := enc.DecodeString(parts[1])
	if err != nil {
		return "", ErrTokenMalformed
	}
	mac, err := enc.DecodeString(parts[2])
	if err != nil {
		return "", ErrTokenMalformed
	}
	want := s.mac(string(payload), string(exp))
	if !hmac.Equal(mac, want) {
		return "", ErrTokenForged
	}
	var unix int64
	if _, err := fmt.Sscanf(string(exp), "%d", &unix); err != nil {
		return "", ErrTokenMalformed
	}
	if now.Unix() > unix {
		return "", ErrTokenExpired
	}
	return string(payload), nil
}

func (s *Signer) mac(payload, exp string) []byte {
	h := hmac.New(sha256.New, s.key)
	h.Write([]byte(payload))
	h.Write([]byte{0})
	h.Write([]byte(exp))
	return h.Sum(nil)
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) []byte {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("cryptoutil: rand failed: " + err.Error())
	}
	return b
}

// RandomHex returns a random hex string of 2n characters.
func RandomHex(n int) string {
	return fmt.Sprintf("%x", RandomBytes(n))
}
