package pam

import (
	"time"

	"openmfa/internal/accessctl"
	"openmfa/internal/authlog"
	"openmfa/internal/idm"
)

// Context data keys set by modules for later entries in the stack.
const (
	// DataPubkeyOK is set to true by PubkeySuccess when the first factor
	// was an authorized public key.
	DataPubkeyOK = "pubkey_ok"
	// DataExempt is set to true by Exempt when an MFA exemption applies.
	DataExempt = "mfa_exempt"
	// DataMFAUsed is set to true by Token when the user presented a
	// valid second factor; sshd reads it to tag the login event.
	DataMFAUsed = "mfa_used"
	// DataMFAMethod is the pairing type the second factor used
	// (soft/sms/hard/training), set alongside DataMFAUsed.
	DataMFAMethod = "mfa_method"
)

// PubkeySuccess is in-house module 1 (§3.4, Figure 1 "Public Key
// Success?"): "constructed to determine if a user has utilized public key
// authentication successfully via SSH as their first factor ... This
// module searches recent local secure system entry logs ... Information
// about the state of public key authentication is not provided from SSH to
// PAM. This module is the only mechanism known to provide this
// information."
type PubkeySuccess struct {
	Log *authlog.Log
	// Window bounds how far back the log search goes; zero means 30 s
	// (the current connection's handshake is always this recent).
	Window time.Duration
}

// Name implements Module.
func (m *PubkeySuccess) Name() string { return "pam_pubkey_success" }

// Authenticate implements Module.
func (m *PubkeySuccess) Authenticate(ctx *Context) Result {
	window := m.Window
	if window == 0 {
		window = 30 * time.Second
	}
	addr := ""
	if ctx.RemoteAddr != nil {
		addr = ctx.RemoteAddr.String()
	}
	if m.Log.FindPubkeySuccess(ctx.User, addr, ctx.now(), window) {
		ctx.Data[DataPubkeyOK] = true
		return Success
	}
	return Ignore
}

// Password is the pam_unix stand-in: prompts for and verifies the user's
// first-factor password against the IDM.
type Password struct {
	IDM *idm.IDM
	// PromptText defaults to "Password: ".
	PromptText string
}

// Name implements Module.
func (m *Password) Name() string { return "pam_password" }

// Authenticate implements Module.
func (m *Password) Authenticate(ctx *Context) Result {
	prompt := m.PromptText
	if prompt == "" {
		prompt = "Password: "
	}
	pw, err := ctx.Conv.Prompt(false, prompt)
	if err != nil {
		return SystemErr
	}
	if err := m.IDM.Authenticate(ctx.User, pw); err != nil {
		return AuthErr
	}
	return Success
}

// Exempt is in-house module 2 (§3.4, Figure 1 "MFA Exemption Granted?"):
// compares the username and remote IP against the white/blacklist
// configuration. Granted exemption → Success (combined with a sufficient
// control this ends the stack); denied → Ignore, so processing continues
// to the token module.
type Exempt struct {
	List *accessctl.List
}

// Name implements Module.
func (m *Exempt) Name() string { return "pam_mfa_exempt" }

// Authenticate implements Module.
func (m *Exempt) Authenticate(ctx *Context) Result {
	if force, _ := ctx.Data[DataRiskForceMFA].(bool); force {
		// The risk gate flagged this attempt: exemptions do not apply,
		// the second factor is mandatory.
		ctx.logf("pam_mfa_exempt: exemption suppressed for %s (risk policy)", ctx.User)
		return Ignore
	}
	d := m.List.Check(ctx.User, ctx.RemoteAddr, ctx.now())
	if d.Exempt {
		ctx.Data[DataExempt] = true
		ctx.logf("pam_mfa_exempt: exemption granted to %s from %v", ctx.User, ctx.RemoteAddr)
		return Success
	}
	return Ignore
}

// SolarisCombo is in-house module 4 (§3.4): "a module specific for use on
// Oracle Solaris operating systems that combine the public key and MFA
// exemption checks to accommodate differences in PAM stack processing
// logic." It performs both checks in one pass: success only when the
// exemption applies (the pubkey state is still recorded for later
// modules).
type SolarisCombo struct {
	Pubkey *PubkeySuccess
	Exempt *Exempt
}

// Name implements Module.
func (m *SolarisCombo) Name() string { return "pam_solaris_combo" }

// Authenticate implements Module.
func (m *SolarisCombo) Authenticate(ctx *Context) Result {
	m.Pubkey.Authenticate(ctx) // records DataPubkeyOK; result folded below
	return m.Exempt.Authenticate(ctx)
}
