package pam

import (
	"openmfa/internal/accessctl"
	"openmfa/internal/authlog"
	"openmfa/internal/idm"
	"openmfa/internal/radius"
	"openmfa/internal/risk"
)

// SSHDStackConfig collects the dependencies of the paper's Figure 1 stack.
type SSHDStackConfig struct {
	AuthLog    *authlog.Log
	IDM        *idm.IDM
	Exemptions *accessctl.List
	TokenCfg   ConfigProvider
	Pairing    PairingLookup
	Radius     *radius.Pool
}

// NewSSHDStack builds the representative Linux PAM authentication stack of
// Figure 1:
//
//	auth  [success=1 default=ignore]  pam_pubkey_success   # pubkey? skip password
//	auth  requisite                   pam_password          # first factor
//	auth  sufficient                  pam_mfa_exempt        # exemption? done
//	auth  required                    pam_mfa_token         # second factor
//
// Reading of the tree: SSH first tests for an authorized public key. The
// pubkey-success module detects that via the auth log and skips the
// password module; otherwise the user must enter a correct password
// (requisite: a wrong password terminates the stack, and sshd restarts it
// for the retry budget). Only then is the second factor processed: the
// exemption module short-circuits to success for whitelisted
// users/addresses, and finally the token module enforces the configured
// opt-in tier.
func NewSSHDStack(cfg SSHDStackConfig) *Stack {
	return &Stack{
		Service: "sshd",
		Entries: []Entry{
			{SkipOnSuccess(1), &PubkeySuccess{Log: cfg.AuthLog}},
			{Requisite(), &Password{IDM: cfg.IDM}},
			{Sufficient(), &Exempt{List: cfg.Exemptions}},
			{Required(), &Token{Config: cfg.TokenCfg, Pairing: cfg.Pairing, Radius: cfg.Radius}},
		},
	}
}

// NewSSHDStackWithRisk is NewSSHDStack plus the adaptive-MFA gate (§6
// future work): the gate runs right after the first factor, so a deny
// refuses before the second factor is even attempted, a step-up forces
// MFA past any exemption, and a skip (policy opt-in) ends the stack in
// success without a token prompt.
func NewSSHDStackWithRisk(cfg SSHDStackConfig, engine *risk.Engine, notify func(string, risk.Decision)) *Stack {
	return &Stack{
		Service: "sshd",
		Entries: []Entry{
			{SkipOnSuccess(1), &PubkeySuccess{Log: cfg.AuthLog}},
			{Requisite(), &Password{IDM: cfg.IDM}},
			{RiskGateControl(), &RiskGate{Engine: engine, Notify: notify}},
			{Sufficient(), &Exempt{List: cfg.Exemptions}},
			{Required(), &Token{Config: cfg.TokenCfg, Pairing: cfg.Pairing, Radius: cfg.Radius}},
		},
	}
}

// NewSolarisStack is the Oracle Solaris variant (§3.4): the combined
// pubkey+exemption module replaces the two separate entries "to
// accommodate differences in PAM stack processing logic". Password
// handling on Solaris happens before this stack runs, so the combo module
// leads.
func NewSolarisStack(cfg SSHDStackConfig) *Stack {
	combo := &SolarisCombo{
		Pubkey: &PubkeySuccess{Log: cfg.AuthLog},
		Exempt: &Exempt{List: cfg.Exemptions},
	}
	return &Stack{
		Service: "sshd-solaris",
		Entries: []Entry{
			{Sufficient(), combo},
			{Required(), &Token{Config: cfg.TokenCfg, Pairing: cfg.Pairing, Radius: cfg.Radius}},
		},
	}
}
