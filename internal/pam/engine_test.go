package pam

import (
	"errors"
	"fmt"
	"testing"
)

// fakeModule returns a fixed result and counts invocations.
type fakeModule struct {
	name   string
	result Result
	calls  int
}

func (f *fakeModule) Name() string { return f.name }
func (f *fakeModule) Authenticate(*Context) Result {
	f.calls++
	return f.result
}

func run(t *testing.T, entries ...Entry) error {
	t.Helper()
	s := &Stack{Service: "test", Entries: entries}
	return s.Authenticate(&Context{User: "u"})
}

func TestRequiredSuccess(t *testing.T) {
	if err := run(t, Entry{Required(), &fakeModule{result: Success}}); err != nil {
		t.Fatal(err)
	}
}

func TestRequiredFailureContinuesButFails(t *testing.T) {
	later := &fakeModule{name: "later", result: Success}
	err := run(t,
		Entry{Required(), &fakeModule{name: "fail", result: AuthErr}},
		Entry{Required(), later},
	)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v", err)
	}
	// Required failure must not short-circuit (hides which module failed).
	if later.calls != 1 {
		t.Fatal("later module not executed after required failure")
	}
}

func TestRequisiteFailureTerminates(t *testing.T) {
	later := &fakeModule{name: "later", result: Success}
	err := run(t,
		Entry{Requisite(), &fakeModule{name: "fail", result: AuthErr}},
		Entry{Required(), later},
	)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v", err)
	}
	if later.calls != 0 {
		t.Fatal("module executed after requisite failure")
	}
}

func TestSufficientSuccessShortCircuits(t *testing.T) {
	later := &fakeModule{name: "later", result: AuthErr}
	err := run(t,
		Entry{Sufficient(), &fakeModule{name: "suff", result: Success}},
		Entry{Required(), later},
	)
	if err != nil {
		t.Fatal(err)
	}
	if later.calls != 0 {
		t.Fatal("module executed after sufficient success")
	}
}

func TestSufficientFailureIgnored(t *testing.T) {
	err := run(t,
		Entry{Sufficient(), &fakeModule{result: AuthErr}},
		Entry{Required(), &fakeModule{result: Success}},
	)
	if err != nil {
		t.Fatalf("sufficient failure leaked: %v", err)
	}
}

func TestSufficientCannotOverrideEarlierRequiredFailure(t *testing.T) {
	// Classic PAM subtlety: sufficient success after a required failure
	// does NOT grant entry.
	err := run(t,
		Entry{Required(), &fakeModule{result: AuthErr}},
		Entry{Sufficient(), &fakeModule{result: Success}},
	)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
}

func TestOptionalAloneDecides(t *testing.T) {
	if err := run(t, Entry{Optional(), &fakeModule{result: Success}}); err != nil {
		t.Fatal(err)
	}
	// Optional failure alone: nothing determinative.
	err := run(t, Entry{Optional(), &fakeModule{result: AuthErr}})
	if !errors.Is(err, ErrEmptyStack) {
		t.Fatalf("err = %v, want ErrEmptyStack", err)
	}
}

func TestIgnoreResultNeverCounts(t *testing.T) {
	err := run(t, Entry{Required(), &fakeModule{result: Ignore}})
	if !errors.Is(err, ErrEmptyStack) {
		t.Fatalf("all-ignore stack err = %v", err)
	}
}

func TestEmptyStack(t *testing.T) {
	if err := run(t); !errors.Is(err, ErrEmptyStack) {
		t.Fatalf("err = %v", err)
	}
}

func TestSkipOnSuccessJumps(t *testing.T) {
	skipped := &fakeModule{name: "skipped", result: AuthErr}
	err := run(t,
		Entry{SkipOnSuccess(1), &fakeModule{name: "jump", result: Success}},
		Entry{Requisite(), skipped},
		Entry{Required(), &fakeModule{name: "final", result: Success}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if skipped.calls != 0 {
		t.Fatal("skipped module executed")
	}
}

func TestSkipOnSuccessNoJumpWhenIgnored(t *testing.T) {
	pw := &fakeModule{name: "pw", result: Success}
	err := run(t,
		Entry{SkipOnSuccess(1), &fakeModule{name: "jump", result: Ignore}},
		Entry{Requisite(), pw},
		Entry{Required(), &fakeModule{name: "final", result: Success}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if pw.calls != 1 {
		t.Fatal("password module skipped despite pubkey miss")
	}
}

func TestSkipPastEndIsSafe(t *testing.T) {
	err := run(t,
		Entry{Required(), &fakeModule{result: Success}},
		Entry{SkipOnSuccess(10), &fakeModule{result: Success}},
	)
	if err != nil {
		t.Fatalf("skip past end: %v", err)
	}
}

func TestSkipPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Skip(0) did not panic")
		}
	}()
	Skip(0)
}

func TestFirstFailureSticks(t *testing.T) {
	// A later success cannot launder an earlier required failure.
	err := run(t,
		Entry{Required(), &fakeModule{result: AuthErr}},
		Entry{Required(), &fakeModule{result: Success}},
	)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestResultString(t *testing.T) {
	for r, want := range map[Result]string{
		Success: "success", Ignore: "ignore", AuthErr: "auth_err",
		UserUnknown: "user_unknown", SystemErr: "system_err", Result(42): "Result(42)",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}

func TestContextLogging(t *testing.T) {
	var lines []string
	s := &Stack{Service: "svc", Entries: []Entry{{Required(), &fakeModule{name: "m1", result: Success}}}}
	ctx := &Context{User: "u", Log: func(f string, a ...any) { lines = append(lines, fmt.Sprintf(f, a...)) }}
	if err := s.Authenticate(ctx); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("log lines = %v", lines)
	}
}
