package pam

import (
	"fmt"
	"strconv"

	"openmfa/internal/risk"
)

// RiskGate is the adaptive-MFA decision module (§6 future work, built out
// per DESIGN.md §14): it asks the risk engine to decide the attempt right
// after the first factor and folds the outcome into the Figure 1 stack:
//
//   - deny    → refuses the attempt outright (AuthErr),
//   - step_up → cancels any MFA exemption for this attempt by setting
//     DataRiskForceMFA, which the Exempt module honours, so the second
//     factor is required even for whitelisted origins,
//   - skip    → the account earned an MFA bypass (policy opt-in): the
//     gate returns Success and its Control ends the stack before the
//     token module, so no prompt is shown,
//   - allow   → abstains (Ignore); the stack runs unchanged.
//
// The decision (outcome, score, reasons) is attached to the attempt's
// flight-recorder span. Outcomes feed back into the engine via
// RecordSuccess/RecordFailure from the caller (sshd does this
// automatically when a risk engine is wired).
type RiskGate struct {
	Engine *risk.Engine
	// Notify, when set, receives every step-up and deny decision (the
	// admin alert channel).
	Notify func(user string, d risk.Decision)
}

// DataRiskForceMFA marks the attempt as too risky for exemptions.
const DataRiskForceMFA = "risk_force_mfa"

// DataRiskSkipMFA marks the attempt as granted an adaptive MFA bypass.
const DataRiskSkipMFA = "risk_skip_mfa"

// RiskGateControl is the stack control for the gate: a skip outcome
// (Success) terminates the stack in success before the token module, an
// abstain (Ignore) lets it continue, and a deny (AuthErr) kills it.
func RiskGateControl() Control {
	return Control{
		On:      map[Result]Action{Success: ActionDone, Ignore: ActionIgnore},
		Default: ActionDie,
	}
}

// Name implements Module.
func (m *RiskGate) Name() string { return "pam_risk_gate" }

// Authenticate implements Module.
func (m *RiskGate) Authenticate(ctx *Context) Result {
	d := m.Engine.Decide(ctx.User, ctx.RemoteAddr, ctx.now())
	if ctx.Span != nil {
		ctx.Span.SetAttr("risk.outcome", d.Outcome.String())
		ctx.Span.SetAttr("risk.score", strconv.FormatFloat(d.Score, 'f', 2, 64))
		if len(d.Reasons) > 0 {
			ctx.Span.SetAttr("risk.reasons", d.Detail())
		}
	}
	if m.Notify != nil && (d.Outcome == risk.OutcomeStepUp || d.Outcome == risk.OutcomeDeny) {
		m.Notify(ctx.User, d)
	}
	switch d.Outcome {
	case risk.OutcomeDeny:
		ctx.logf("pam_risk_gate: DENY %s from %v: score %.2f (%v)",
			ctx.User, ctx.RemoteAddr, d.Score, d.ReasonStrings())
		if ctx.Conv != nil {
			ctx.Conv.Info(fmt.Sprintf("login blocked by risk policy (%s)", d.Level()))
		}
		return AuthErr
	case risk.OutcomeStepUp:
		ctx.logf("pam_risk_gate: force MFA for %s from %v: score %.2f (%v)",
			ctx.User, ctx.RemoteAddr, d.Score, d.ReasonStrings())
		ctx.Data[DataRiskForceMFA] = true
		return Ignore
	case risk.OutcomeSkip:
		ctx.logf("pam_risk_gate: MFA skip for %s from %v: history %d, score %.2f",
			ctx.User, ctx.RemoteAddr, d.History, d.Score)
		ctx.Data[DataRiskSkipMFA] = true
		return Success
	default:
		return Ignore
	}
}
