package pam

import (
	"fmt"

	"openmfa/internal/risk"
)

// RiskGate is the dynamic-risk extension module (§6 future work, built
// out per DESIGN.md): it scores the attempt before the exemption module
// runs and
//
//   - Critical  → denies the attempt outright (AuthErr),
//   - Elevated  → cancels any MFA exemption for this attempt by setting
//     DataRiskForceMFA, which the Exempt module honours, so the second
//     factor is required even for whitelisted origins,
//   - Low       → abstains (Ignore).
//
// Outcomes feed back into the engine via RecordSuccess/RecordFailure from
// the caller (sshd does this automatically when a risk engine is wired).
type RiskGate struct {
	Engine *risk.Engine
	// Notify, when set, receives a human-readable line per non-low
	// assessment (the admin alert channel).
	Notify func(user string, a risk.Assessment)
}

// DataRiskForceMFA marks the attempt as too risky for exemptions.
const DataRiskForceMFA = "risk_force_mfa"

// Name implements Module.
func (m *RiskGate) Name() string { return "pam_risk_gate" }

// Authenticate implements Module.
func (m *RiskGate) Authenticate(ctx *Context) Result {
	a := m.Engine.Assess(ctx.User, ctx.RemoteAddr, ctx.now())
	if a.Level != risk.Low && m.Notify != nil {
		m.Notify(ctx.User, a)
	}
	switch a.Level {
	case risk.Critical:
		ctx.logf("pam_risk_gate: DENY %s from %v: score %.2f (%v)",
			ctx.User, ctx.RemoteAddr, a.Score, a.Reasons)
		if ctx.Conv != nil {
			ctx.Conv.Info(fmt.Sprintf("login blocked by risk policy (%s)", a.Level))
		}
		return AuthErr
	case risk.Elevated:
		ctx.logf("pam_risk_gate: force MFA for %s from %v: score %.2f (%v)",
			ctx.User, ctx.RemoteAddr, a.Score, a.Reasons)
		ctx.Data[DataRiskForceMFA] = true
		return Ignore
	default:
		return Ignore
	}
}
