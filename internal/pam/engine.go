// Package pam reimplements the Pluggable Authentication Modules stack
// semantics in pure Go, together with the paper's four in-house modules
// (§3.4): the public-key-success check, the MFA exemption check, the MFA
// token-code module with its four-tier enforcement policy, and the Solaris
// combination module.
//
// The engine follows Linux-PAM's generalized control syntax: every module
// result maps to an action (ok, done, bad, die, ignore, or skip-N), and
// the classic keywords required / requisite / sufficient / optional are
// provided as the conventional mappings. This makes the paper's Figure 1
// decision tree directly executable — see TestFigure1.
package pam

import (
	"errors"
	"fmt"
	"net"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/obs"
)

// Result is a module's verdict, a compact subset of PAM return codes.
type Result int

// Module results.
const (
	// Success is PAM_SUCCESS.
	Success Result = iota
	// Ignore is PAM_IGNORE: the module abstains.
	Ignore
	// AuthErr is PAM_AUTH_ERR: authentication failed.
	AuthErr
	// UserUnknown is PAM_USER_UNKNOWN.
	UserUnknown
	// SystemErr is PAM_SYSTEM_ERR: infrastructure failure.
	SystemErr
)

// String names the result.
func (r Result) String() string {
	switch r {
	case Success:
		return "success"
	case Ignore:
		return "ignore"
	case AuthErr:
		return "auth_err"
	case UserUnknown:
		return "user_unknown"
	case SystemErr:
		return "system_err"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Action is what the stack does with a module result.
type Action int

// Actions, per Linux-PAM's control value vocabulary. Positive values are
// skip counts (the [success=N] jump syntax).
const (
	// ActionIgnore: the result does not influence the stack outcome.
	ActionIgnore Action = -1 - iota
	// ActionOK: contributes success unless a failure is already recorded.
	ActionOK
	// ActionDone: like OK, then terminate the stack immediately.
	ActionDone
	// ActionBad: record failure, continue.
	ActionBad
	// ActionDie: record failure, terminate immediately.
	ActionDie
)

// Skip returns the action that jumps over the next n entries.
func Skip(n int) Action {
	if n < 1 {
		panic("pam: Skip requires n >= 1")
	}
	return Action(n)
}

// Control maps results to actions. Default applies to unmapped results.
type Control struct {
	On      map[Result]Action
	Default Action
}

func (c Control) action(r Result) Action {
	if a, ok := c.On[r]; ok {
		return a
	}
	return c.Default
}

// The four classic control keywords.

// Required: failure is recorded but the stack continues (so later modules
// still run, hiding which one failed); success contributes.
func Required() Control {
	return Control{On: map[Result]Action{Success: ActionOK, Ignore: ActionIgnore}, Default: ActionBad}
}

// Requisite: failure terminates the stack immediately.
func Requisite() Control {
	return Control{On: map[Result]Action{Success: ActionOK, Ignore: ActionIgnore}, Default: ActionDie}
}

// Sufficient: success terminates the stack successfully (unless a required
// module already failed); failure is ignored.
func Sufficient() Control {
	return Control{On: map[Result]Action{Success: ActionDone}, Default: ActionIgnore}
}

// Optional: counts only when nothing else is determinative.
func Optional() Control {
	return Control{On: map[Result]Action{Success: ActionOK}, Default: ActionIgnore}
}

// SkipOnSuccess is the [success=N default=ignore] jump used to bypass the
// password module after public-key success.
func SkipOnSuccess(n int) Control {
	return Control{On: map[Result]Action{Success: Skip(n)}, Default: ActionIgnore}
}

// Conversation is the PAM conversation function: the only channel a module
// has to the remote user.
type Conversation interface {
	// Prompt asks the user for input. echo=false means secret entry.
	Prompt(echo bool, msg string) (string, error)
	// Info displays a message without expecting input.
	Info(msg string) error
}

// Context carries one authentication attempt through the stack.
type Context struct {
	User       string
	RemoteAddr net.IP
	Service    string // e.g. "sshd"
	Conv       Conversation
	Now        func() time.Time

	// Data is module-shared state (pam_set_data equivalent).
	Data map[string]any

	// Log, when set, receives a line per module decision.
	Log func(format string, args ...any)

	// Trace is the connection's trace ID (assigned by sshd). It tags
	// every structured log line this attempt produces and rides to the
	// RADIUS back end inside a Proxy-State attribute so one login can be
	// followed across all four layers.
	Trace string
	// Metrics, when set, receives per-module outcome counters and
	// latency histograms plus a per-stack outcome counter.
	Metrics *obs.Registry
	// Logger, when set, receives a structured line per module decision
	// (component=pam), carrying Trace.
	Logger *obs.Logger
	// Spans, when set, records one timing span per module (children of
	// Span when sshd provided one) plus the token module's RADIUS-RTT
	// legs, all under Trace.
	Spans *obs.SpanStore
	// Span is the enclosing span (sshd's conversation span). The engine
	// re-points it at the running module's span for the duration of each
	// Authenticate call so nested legs parent correctly.
	Span *obs.Span
	// Events, when set, receives typed auth events (second-factor use)
	// on the operational analytics bus.
	Events *eventstream.Bus
}

// startSpan opens a child of the enclosing span, or a root span under the
// attempt's trace ID when there is none. Nil-safe.
func (ctx *Context) startSpan(name string) *obs.Span {
	if ctx.Span != nil {
		return ctx.Span.StartChild(name)
	}
	return ctx.Spans.Start(ctx.Trace, name)
}

func (ctx *Context) logf(format string, args ...any) {
	if ctx.Log != nil {
		ctx.Log(format, args...)
	}
}

func (ctx *Context) now() time.Time {
	if ctx.Now != nil {
		return ctx.Now()
	}
	return time.Now()
}

// Module is an authentication module.
type Module interface {
	Name() string
	Authenticate(ctx *Context) Result
}

// Entry is one line of a PAM stack configuration.
type Entry struct {
	Control Control
	Module  Module
}

// Stack is an ordered PAM configuration for one service.
type Stack struct {
	Service string
	Entries []Entry
}

// Authentication outcomes.
var (
	// ErrAuthFailed: a determinative module failed.
	ErrAuthFailed = errors.New("pam: authentication failure")
	// ErrEmptyStack: no module expressed an opinion.
	ErrEmptyStack = errors.New("pam: no determinative module in stack")
)

// Authenticate runs the stack. nil means entry is granted.
func (s *Stack) Authenticate(ctx *Context) error {
	err := s.run(ctx)
	if ctx.Metrics != nil {
		outcome := "granted"
		switch {
		case errors.Is(err, ErrAuthFailed):
			outcome = "denied"
		case errors.Is(err, ErrEmptyStack):
			outcome = "empty"
		case err != nil:
			outcome = "error"
		}
		ctx.Metrics.Counter("pam_stack_total", "service", s.Service, "outcome", outcome).Inc()
	}
	return err
}

func (s *Stack) run(ctx *Context) error {
	if ctx.Data == nil {
		ctx.Data = make(map[string]any)
	}
	type impression int
	const (
		none impression = iota
		good
		bad
	)
	state := none

	record := func(ok bool) {
		if ok {
			if state == none {
				state = good
			}
		} else {
			// First failure wins and sticks (Linux-PAM retains the
			// first required failure).
			if state != bad {
				state = bad
			}
		}
	}

	for i := 0; i < len(s.Entries); i++ {
		e := s.Entries[i]
		// Every per-module observability hook is guarded so an
		// uninstrumented stack pays neither the time.Now() nor the
		// argument-boxing allocations.
		var start time.Time
		if ctx.Metrics != nil {
			start = time.Now()
		}
		var span *obs.Span
		if ctx.Span != nil || ctx.Spans != nil {
			span = ctx.startSpan("pam." + e.Module.Name())
		}
		prev := ctx.Span
		if span != nil {
			ctx.Span = span
		}
		res := e.Module.Authenticate(ctx)
		ctx.Span = prev
		if span != nil {
			span.SetAttr("result", res.String())
			span.End()
		}
		act := e.Control.action(res)
		if ctx.Log != nil {
			ctx.logf("pam(%s): %s -> %s", s.Service, e.Module.Name(), res)
		}
		if ctx.Metrics != nil {
			ctx.Metrics.Counter("pam_module_result_total",
				"module", e.Module.Name(), "result", res.String()).Inc()
			ctx.Metrics.Histogram("pam_module_duration_seconds", nil,
				"module", e.Module.Name()).ObserveSince(start)
		}
		if ctx.Logger != nil {
			ctx.Logger.Info("module decision", "component", "pam", "trace", ctx.Trace,
				"service", s.Service, "module", e.Module.Name(), "result", res.String(),
				"user", ctx.User)
		}
		switch {
		case act == ActionIgnore:
			// nothing
		case act == ActionOK:
			record(true)
		case act == ActionDone:
			record(true)
			if state == good {
				return nil
			}
			// A prior failure blocks the early success; keep going
			// so remaining required modules still run.
		case act == ActionBad:
			record(false)
		case act == ActionDie:
			record(false)
			return ErrAuthFailed
		case act >= 1: // skip N
			i += int(act)
		}
	}
	switch state {
	case good:
		return nil
	case bad:
		return ErrAuthFailed
	default:
		return ErrEmptyStack
	}
}
