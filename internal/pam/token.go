package pam

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"openmfa/internal/directory"
	"openmfa/internal/eventstream"
	"openmfa/internal/radius"
)

// Mode is the token module's enforcement tier (§3.4): the four-tier,
// opt-in MFA enforcement policy "designed to assist with the transitioning
// of large user bases from single-factor authentication to multi-factor
// authentication".
type Mode string

// Enforcement modes.
const (
	// ModeOff deactivates the token module entirely.
	ModeOff Mode = "off"
	// ModePaired prompts only users who have paired a device.
	ModePaired Mode = "paired"
	// ModeCountdown is ModePaired plus a mandatory-acknowledgement
	// notice for unpaired users counting down to the deadline.
	ModeCountdown Mode = "countdown"
	// ModeFull prompts everyone; unpaired users are denied.
	ModeFull Mode = "full"
)

// ParseMode validates a mode string. Unknown strings are a configuration
// error: "if any configuration errors occur, the token module defaults to
// the fourth enforcement mode" — callers should fall back to ModeFull.
func ParseMode(s string) (Mode, bool) {
	switch Mode(strings.ToLower(strings.TrimSpace(s))) {
	case ModeOff:
		return ModeOff, true
	case ModePaired:
		return ModePaired, true
	case ModeCountdown:
		return ModeCountdown, true
	case ModeFull:
		return ModeFull, true
	}
	return ModeFull, false
}

// TokenConfig is the token module's PAM-configuration-file equivalent.
// "Any of these modes may be set during production operation and are in
// effect as soon as written to disk."
type TokenConfig struct {
	Mode Mode
	// Deadline is the date MFA becomes mandatory (countdown mode).
	Deadline time.Time
	// InfoURL is the tutorial page shown in the countdown notice.
	InfoURL string
}

// ConfigProvider yields the current configuration on every login attempt.
type ConfigProvider interface {
	TokenConfig() TokenConfig
}

// StaticConfig is a fixed in-memory ConfigProvider.
type StaticConfig TokenConfig

// TokenConfig implements ConfigProvider.
func (c StaticConfig) TokenConfig() TokenConfig { return TokenConfig(c) }

// FileConfig re-reads a small key=value file (mode=, deadline=, url=) when
// its mtime changes, giving the hot-reload behaviour the paper relies on.
// Malformed files yield ModeFull, the fail-safe default.
type FileConfig struct {
	Path string

	mu    sync.Mutex
	mtime time.Time
	cur   TokenConfig
}

// TokenConfig implements ConfigProvider.
func (f *FileConfig) TokenConfig() TokenConfig {
	f.mu.Lock()
	defer f.mu.Unlock()
	fi, err := os.Stat(f.Path)
	if err != nil {
		return TokenConfig{Mode: ModeFull}
	}
	if fi.ModTime().Equal(f.mtime) && !f.mtime.IsZero() {
		return f.cur
	}
	b, err := os.ReadFile(f.Path)
	if err != nil {
		return TokenConfig{Mode: ModeFull}
	}
	cfg, ok := parseTokenConfig(string(b))
	if !ok {
		cfg = TokenConfig{Mode: ModeFull}
	}
	f.mtime = fi.ModTime()
	f.cur = cfg
	return cfg
}

func parseTokenConfig(s string) (TokenConfig, bool) {
	cfg := TokenConfig{Mode: ModeFull}
	ok := true
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, found := strings.Cut(line, "=")
		if !found {
			ok = false
			continue
		}
		v = strings.TrimSpace(v)
		switch strings.TrimSpace(k) {
		case "mode":
			m, valid := ParseMode(v)
			if !valid {
				ok = false
			}
			cfg.Mode = m
		case "deadline":
			t, err := time.Parse("2006-01-02", v)
			if err != nil {
				ok = false
				continue
			}
			cfg.Deadline = t
		case "url":
			cfg.InfoURL = v
		default:
			ok = false
		}
	}
	return cfg, ok
}

// PairingLookup resolves a user's MFA pairing type; the production wiring
// queries the directory ("An LDAP query is used to check the user's MFA
// pairing type", Figure 2).
type PairingLookup interface {
	Pairing(user string) (string, error)
}

// DirectoryPairing adapts a directory client to PairingLookup.
type DirectoryPairing struct {
	Client *directory.Client
}

// Pairing implements PairingLookup via an LDAP-style search.
func (d DirectoryPairing) Pairing(user string) (string, error) {
	entries, err := d.Client.Search(directory.PeopleBase, directory.ScopeSub,
		"(uid="+user+")", []string{"mfapairing"})
	if err != nil {
		return "", err
	}
	if len(entries) == 0 {
		return "none", nil
	}
	p := entries[0].Get("mfapairing")
	if p == "" {
		p = "none"
	}
	return p, nil
}

// LocalPairing adapts an in-process directory (no network hop) for
// simulations that bypass TCP.
type LocalPairing struct {
	Dir *directory.Dir
}

// Pairing implements PairingLookup.
func (d LocalPairing) Pairing(user string) (string, error) {
	e, err := d.Dir.Lookup(directory.UserDN(user))
	if err != nil {
		return "none", nil
	}
	p := e.Get("mfapairing")
	if p == "" {
		p = "none"
	}
	return p, nil
}

// Token is in-house module 3 (§3.4, Figures 1 and 2): the second-factor
// challenge–response module. It consults the enforcement mode, looks up
// the user's pairing via LDAP, triggers SMS delivery through a null RADIUS
// request when needed, prompts the user for their six-digit code, and
// validates it against the back end through the round-robin RADIUS pool.
type Token struct {
	Config  ConfigProvider
	Pairing PairingLookup
	Radius  *radius.Pool
	// PromptText defaults to "Token Code: ".
	PromptText string
}

// Name implements Module.
func (m *Token) Name() string { return "pam_mfa_token" }

// Authenticate implements Module.
func (m *Token) Authenticate(ctx *Context) Result {
	cfg := m.Config.TokenConfig()
	mode := cfg.Mode

	// Countdown past its deadline escalates to full enforcement.
	if mode == ModeCountdown && !cfg.Deadline.IsZero() && ctx.now().After(endOfDay(cfg.Deadline)) {
		mode = ModeFull
	}

	if mode == ModeOff {
		// "The first mode ... deactivates the token module entirely,
		// exiting with success."
		return Success
	}

	pairing, err := m.Pairing.Pairing(ctx.User)
	if err != nil {
		// LDAP unavailable: fail safe — treat as unpaired under the
		// mandatory regime, prompt anyway.
		ctx.logf("pam_mfa_token: pairing lookup failed for %s: %v", ctx.User, err)
		pairing = "none"
	}
	paired := pairing != "none" && pairing != ""

	switch mode {
	case ModePaired:
		if !paired {
			// "the token module exits successfully without denying
			// entry to the user."
			return Success
		}
	case ModeCountdown:
		if !paired {
			// "The time delta between a configured deadline date and
			// the current date are used to calculate x" — calendar
			// days, so the number shown is stable all day.
			now := ctx.now()
			today := time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, time.UTC)
			days := int(endOfDay(cfg.Deadline).Sub(today).Hours() / 24)
			if days < 0 {
				days = 0
			}
			msg := fmt.Sprintf(
				"Multi-factor authentication becomes mandatory in %d day(s).\n"+
					"Pair a device before then: %s", days, cfg.InfoURL)
			// "the user must press return to acknowledge that they
			// have read and received this statement."
			if _, err := ctx.Conv.Prompt(true, msg+"\nPress return to acknowledge: "); err != nil {
				return SystemErr
			}
			return Success
		}
	case ModeFull:
		// Prompt regardless of pairing.
	}

	return m.challenge(ctx, pairing)
}

// challenge runs the Figure 2 flow.
func (m *Token) challenge(ctx *Context, pairing string) Result {
	var state []byte
	if pairing == "sms" {
		// "a null request is first sent to the LinOTP back end to
		// initiate a text message."
		resp, err := m.exchange(ctx, ctx.User, "", nil)
		if err != nil {
			ctx.logf("pam_mfa_token: sms trigger failed: %v", err)
			return SystemErr
		}
		if msg := replyMessage(resp); msg != "" {
			if err := ctx.Conv.Info(msg); err != nil {
				return SystemErr
			}
		}
		if resp.Code == radius.AccessReject {
			return AuthErr
		}
		if s, ok := resp.Get(radius.AttrState); ok {
			state = s
		}
	}

	prompt := m.PromptText
	if prompt == "" {
		prompt = "Token Code: "
	}
	code, err := ctx.Conv.Prompt(false, prompt)
	if err != nil {
		return SystemErr
	}
	resp, err := m.exchange(ctx, ctx.User, code, state)
	if err != nil {
		ctx.logf("pam_mfa_token: radius exchange failed: %v", err)
		return SystemErr
	}
	switch resp.Code {
	case radius.AccessAccept:
		ctx.Data[DataMFAUsed] = true
		ctx.Data[DataMFAMethod] = pairing
		m.publish(ctx, pairing, "accept")
		return Success
	default:
		if msg := replyMessage(resp); msg != "" {
			ctx.Conv.Info(msg)
		}
		m.publish(ctx, pairing, "reject")
		return AuthErr
	}
}

// publish announces the second-factor outcome on the analytics bus.
func (m *Token) publish(ctx *Context, pairing, result string) {
	if ctx.Events == nil {
		return
	}
	addr := ""
	if ctx.RemoteAddr != nil {
		addr = ctx.RemoteAddr.String()
	}
	ctx.Events.Publish(eventstream.Event{
		Time: ctx.now(), Type: eventstream.TypeMFA, Component: "pam",
		Trace: ctx.Trace, User: ctx.User, Addr: addr,
		Result: result, Method: pairing, MFA: result == "accept",
	})
}

func (m *Token) exchange(ctx *Context, user, code string, state []byte) (*radius.Packet, error) {
	span := ctx.startSpan("radius.rtt")
	defer span.End()
	return m.Radius.Exchange(func(req *radius.Packet) {
		req.AddString(radius.AttrUserName, user)
		hidden, err := radius.HidePassword(code, m.Radius.Secret(), req.Authenticator)
		if err == nil {
			req.Add(radius.AttrUserPassword, hidden)
		}
		if state != nil {
			req.Add(radius.AttrState, state)
		}
		// Carry the connection's trace ID to the back end. Proxy-State
		// is opaque to RADIUS semantics and echoed in replies (RFC 2865
		// §5.33), which makes it a free trace-propagation channel.
		if ctx.Trace != "" {
			req.AddString(radius.AttrProxyState, ctx.Trace)
		}
	})
}

func replyMessage(p *radius.Packet) string {
	parts := p.GetAll(radius.AttrReplyMessage)
	out := make([]string, len(parts))
	for i, b := range parts {
		out[i] = string(b)
	}
	return strings.Join(out, "\n")
}

func endOfDay(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), t.Day(), 23, 59, 59, 0, time.UTC)
}
