package pam

import (
	"errors"
	"strings"
	"testing"
)

func testRegistry() ModuleRegistry {
	return ModuleRegistry{
		"pam_pubkey_success": &fakeModule{name: "pubkey", result: Ignore},
		"pam_password":       &fakeModule{name: "password", result: Success},
		"pam_mfa_exempt":     &fakeModule{name: "exempt", result: Ignore},
		"pam_mfa_token":      &fakeModule{name: "token", result: Success},
	}
}

func TestParseFigureOneConfig(t *testing.T) {
	stack, err := ParseConfig("sshd", FigureOneConfig, testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(stack.Entries) != 4 {
		t.Fatalf("entries = %d", len(stack.Entries))
	}
	names := []string{"pubkey", "password", "exempt", "token"}
	for i, e := range stack.Entries {
		if e.Module.Name() != names[i] {
			t.Fatalf("entry %d = %s, want %s", i, e.Module.Name(), names[i])
		}
	}
	// Semantics: parsed stack authenticates like the hand-built one.
	if err := stack.Authenticate(&Context{User: "u"}); err != nil {
		t.Fatalf("parsed stack: %v", err)
	}
}

func TestParsedConfigSemanticsMatchBuiltStack(t *testing.T) {
	// Password failure must be terminal (requisite) in the parsed stack.
	reg := testRegistry()
	reg["pam_password"] = &fakeModule{name: "password", result: AuthErr}
	token := reg["pam_mfa_token"].(*fakeModule)
	stack, err := ParseConfig("sshd", FigureOneConfig, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := stack.Authenticate(&Context{User: "u"}); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v", err)
	}
	if token.calls != 0 {
		t.Fatal("token ran after requisite password failure")
	}

	// Pubkey success must skip the password.
	reg2 := testRegistry()
	reg2["pam_pubkey_success"] = &fakeModule{name: "pubkey", result: Success}
	pw := &fakeModule{name: "password", result: AuthErr}
	reg2["pam_password"] = pw
	stack2, _ := ParseConfig("sshd", FigureOneConfig, reg2)
	if err := stack2.Authenticate(&Context{User: "u"}); err != nil {
		t.Fatalf("pubkey path: %v", err)
	}
	if pw.calls != 0 {
		t.Fatal("password ran despite pubkey skip")
	}

	// Exemption success must short-circuit before the token.
	reg3 := testRegistry()
	reg3["pam_mfa_exempt"] = &fakeModule{name: "exempt", result: Success}
	tok3 := reg3["pam_mfa_token"].(*fakeModule)
	stack3, _ := ParseConfig("sshd", FigureOneConfig, reg3)
	if err := stack3.Authenticate(&Context{User: "u"}); err != nil {
		t.Fatal(err)
	}
	if tok3.calls != 0 {
		t.Fatal("token ran despite sufficient exemption")
	}
}

func TestParseControlVariants(t *testing.T) {
	reg := ModuleRegistry{"m": &fakeModule{name: "m", result: Success}}
	cases := []string{
		"auth required m",
		"auth requisite m",
		"auth sufficient m",
		"auth optional m",
		"auth [success=ok default=bad] m",
		"auth [success=done ignore=ignore default=die] m",
		"auth [success=2 auth_err=bad default=ignore] m",
		"auth [user_unknown=ignore system_err=die default=ok] m",
	}
	for _, line := range cases {
		if _, err := ParseConfig("svc", line, reg); err != nil {
			t.Errorf("ParseConfig(%q): %v", line, err)
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	reg := ModuleRegistry{"m": &fakeModule{name: "m"}}
	bad := []string{
		"",                           // empty config
		"auth required",              // missing module
		"account required m",         // unsupported facility
		"auth frobnicate m",          // unknown control
		"auth required nosuchmodule", // unknown module
		"auth [success=ok m",         // unterminated bracket
		"auth [success] m",           // token without value
		"auth [success=banana] m",    // unknown action
		"auth [banana=ok] m",         // unknown result key
		"auth [success=0] m",         // zero skip
	}
	for _, cfg := range bad {
		if _, err := ParseConfig("svc", cfg, reg); err == nil {
			t.Errorf("ParseConfig(%q) succeeded, want error", cfg)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	cfg := "# header\n\n  \nauth required m\n# trailing\n"
	reg := ModuleRegistry{"m": &fakeModule{name: "m", result: Success}}
	stack, err := ParseConfig("svc", cfg, reg)
	if err != nil || len(stack.Entries) != 1 {
		t.Fatalf("%v, %d entries", err, len(stack.Entries))
	}
}

func TestStandardRegistryParsesFigureOneEndToEnd(t *testing.T) {
	// Full integration: the text file drives the real modules.
	h := newHarness(t, "")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	reg := StandardRegistry(SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: h.dir},
		Radius:     h.pool,
	})
	stack, err := ParseConfig("sshd", FigureOneConfig, reg)
	if err != nil {
		t.Fatal(err)
	}
	c := &conv{answers: []any{"pw", func() string { return code() }}}
	ctx := &Context{User: "alice", RemoteAddr: external, Conv: c, Now: h.sim.Now}
	if err := stack.Authenticate(ctx); err != nil {
		t.Fatalf("config-driven stack denied: %v", err)
	}
	if !c.sawPrompt("Password") || !c.sawPrompt("Token") {
		t.Fatalf("prompts = %v", c.prompts)
	}
	// Solaris module resolvable too.
	if _, err := ParseConfig("solaris",
		"auth sufficient pam_solaris_combo\nauth required pam_mfa_token\n", reg); err != nil {
		t.Fatal(err)
	}
}

func TestParseConfigExtraArgsIgnoredInBracketForm(t *testing.T) {
	// Module args after the name are tolerated (parsed as the module
	// name boundary).
	reg := ModuleRegistry{"m": &fakeModule{name: "m", result: Success}}
	stack, err := ParseConfig("svc", "auth [success=ok default=ignore] m some_arg=1", reg)
	if err != nil || len(stack.Entries) != 1 {
		t.Fatalf("%v", err)
	}
	if !strings.Contains(stack.Entries[0].Module.Name(), "m") {
		t.Fatal("wrong module")
	}
}
