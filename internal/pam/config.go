package pam

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// This file implements Linux-PAM-style text configuration, the surface
// system administrators actually touch (§3.4: modules "would be
// customized by the system administrator to determine how system entry
// will be allowed", via "configuration files"). A service file looks like
// the real /etc/pam.d entries:
//
//	# /etc/pam.d/sshd
//	auth [success=1 default=ignore]  pam_pubkey_success
//	auth requisite                   pam_password
//	auth sufficient                  pam_mfa_exempt
//	auth required                    pam_mfa_token
//
// Controls accept both the classic keywords and the bracketed
// value=action syntax with actions ok, done, bad, die, ignore, or a skip
// count.

// ModuleRegistry maps module names to instances; the caller registers the
// concrete modules (with their wiring) before parsing.
type ModuleRegistry map[string]Module

// ParseConfig builds a Stack for service from a pam.d-style file body.
func ParseConfig(service, content string, registry ModuleRegistry) (*Stack, error) {
	stack := &Stack{Service: service}
	sc := bufio.NewScanner(strings.NewReader(content))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entry, err := parseConfigLine(line, registry)
		if err != nil {
			return nil, fmt.Errorf("pam: %s line %d: %w", service, lineNo, err)
		}
		stack.Entries = append(stack.Entries, entry)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(stack.Entries) == 0 {
		return nil, fmt.Errorf("pam: %s: empty configuration", service)
	}
	return stack, nil
}

func parseConfigLine(line string, registry ModuleRegistry) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Entry{}, fmt.Errorf("want 'auth <control> <module>', got %q", line)
	}
	if fields[0] != "auth" {
		return Entry{}, fmt.Errorf("unsupported facility %q (only auth)", fields[0])
	}

	var controlStr string
	var moduleName string
	if strings.HasPrefix(fields[1], "[") {
		// Re-join the bracketed control, which may span fields.
		rest := strings.TrimSpace(line[len("auth"):])
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return Entry{}, fmt.Errorf("unterminated control bracket")
		}
		controlStr = rest[:end+1]
		moduleName = strings.TrimSpace(rest[end+1:])
		if i := strings.IndexByte(moduleName, ' '); i >= 0 {
			moduleName = moduleName[:i]
		}
	} else {
		controlStr = fields[1]
		moduleName = fields[2]
	}
	if moduleName == "" {
		return Entry{}, fmt.Errorf("missing module name")
	}

	control, err := parseControl(controlStr)
	if err != nil {
		return Entry{}, err
	}
	mod, ok := registry[moduleName]
	if !ok {
		return Entry{}, fmt.Errorf("unknown module %q", moduleName)
	}
	return Entry{Control: control, Module: mod}, nil
}

func parseControl(s string) (Control, error) {
	switch s {
	case "required":
		return Required(), nil
	case "requisite":
		return Requisite(), nil
	case "sufficient":
		return Sufficient(), nil
	case "optional":
		return Optional(), nil
	}
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Control{}, fmt.Errorf("unknown control %q", s)
	}
	c := Control{On: map[Result]Action{}, Default: ActionBad}
	for _, kv := range strings.Fields(s[1 : len(s)-1]) {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return Control{}, fmt.Errorf("bad control token %q", kv)
		}
		act, err := parseAction(val)
		if err != nil {
			return Control{}, err
		}
		switch key {
		case "success":
			c.On[Success] = act
		case "ignore":
			c.On[Ignore] = act
		case "auth_err":
			c.On[AuthErr] = act
		case "user_unknown":
			c.On[UserUnknown] = act
		case "system_err":
			c.On[SystemErr] = act
		case "default":
			c.Default = act
		default:
			return Control{}, fmt.Errorf("unknown result %q in control", key)
		}
	}
	return c, nil
}

func parseAction(s string) (Action, error) {
	switch s {
	case "ok":
		return ActionOK, nil
	case "done":
		return ActionDone, nil
	case "bad":
		return ActionBad, nil
	case "die":
		return ActionDie, nil
	case "ignore":
		return ActionIgnore, nil
	}
	if n, err := strconv.Atoi(s); err == nil && n >= 1 {
		return Skip(n), nil
	}
	return 0, fmt.Errorf("unknown action %q", s)
}

// StandardRegistry wires the deployment's stock modules from an
// SSHDStackConfig, so the Figure 1 file above parses out of the box.
// Additional or replacement modules can be layered on by the caller.
func StandardRegistry(cfg SSHDStackConfig) ModuleRegistry {
	return ModuleRegistry{
		"pam_pubkey_success": &PubkeySuccess{Log: cfg.AuthLog},
		"pam_password":       &Password{IDM: cfg.IDM},
		"pam_mfa_exempt":     &Exempt{List: cfg.Exemptions},
		"pam_mfa_token":      &Token{Config: cfg.TokenCfg, Pairing: cfg.Pairing, Radius: cfg.Radius},
		"pam_solaris_combo": &SolarisCombo{
			Pubkey: &PubkeySuccess{Log: cfg.AuthLog},
			Exempt: &Exempt{List: cfg.Exemptions},
		},
	}
}

// FigureOneConfig is the canonical service file for the paper's stack.
const FigureOneConfig = `# openmfa sshd PAM stack (paper Figure 1)
auth [success=1 default=ignore]  pam_pubkey_success
auth requisite                   pam_password
auth sufficient                  pam_mfa_exempt
auth required                    pam_mfa_token
`
