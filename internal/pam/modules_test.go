package pam

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"openmfa/internal/accessctl"
	"openmfa/internal/authlog"
	"openmfa/internal/clock"
	"openmfa/internal/directory"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/otpd"
	"openmfa/internal/radius"
	"openmfa/internal/store"
)

var (
	t0       = time.Date(2016, 9, 20, 10, 0, 0, 0, time.UTC)
	external = net.ParseIP("73.32.100.4")
	internal = net.ParseIP("129.114.3.7")
)

// conv is a scripted conversation. Each Prompt pops the next answer; an
// answer may be a literal string or a function evaluated at prompt time
// (for TOTP codes that must be current).
type conv struct {
	mu      sync.Mutex
	answers []any // string or func() string
	prompts []string
	infos   []string
}

func (c *conv) Prompt(echo bool, msg string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prompts = append(c.prompts, msg)
	if len(c.answers) == 0 {
		return "", errors.New("conv: no scripted answer")
	}
	a := c.answers[0]
	c.answers = c.answers[1:]
	switch v := a.(type) {
	case string:
		return v, nil
	case func() string:
		return v(), nil
	default:
		return "", errors.New("conv: bad answer type")
	}
}

func (c *conv) Info(msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.infos = append(c.infos, msg)
	return nil
}

func (c *conv) sawInfo(substr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.infos {
		if strings.Contains(m, substr) {
			return true
		}
	}
	return false
}

func (c *conv) sawPrompt(substr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.prompts {
		if strings.Contains(m, substr) {
			return true
		}
	}
	return false
}

// harness wires the full back end: IDM + directory + otpd + RADIUS.
type harness struct {
	sim     *clock.Sim
	idm     *idm.IDM
	dir     *directory.Dir
	otp     *otpd.Server
	authLog *authlog.Log
	acl     *accessctl.List
	pool    *radius.Pool
	mode    *StaticConfig
	stack   *Stack
	sms     *smsCapture
}

type smsCapture struct {
	mu   sync.Mutex
	msgs []string
}

func (s *smsCapture) SendSMS(phone, body string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, body)
	return nil
}

func (s *smsCapture) lastCode() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.msgs) == 0 {
		return ""
	}
	body := s.msgs[len(s.msgs)-1]
	fields := strings.Fields(body)
	return fields[len(fields)-1]
}

func newHarness(t testing.TB, aclRules string) *harness {
	t.Helper()
	sim := clock.NewSim(t0)
	dir := directory.New()
	h := &harness{
		sim: sim,
		dir: dir,
		idm: idm.New(store.OpenMemory(), dir, sim),
		sms: &smsCapture{},
	}
	var err error
	h.otp, err = otpd.New(otpd.Config{
		DB:            store.OpenMemory(),
		EncryptionKey: bytes.Repeat([]byte{1}, 32),
		Clock:         sim,
		SMS:           h.sms,
		Issuer:        "TACC",
	})
	if err != nil {
		t.Fatal(err)
	}
	h.authLog, err = authlog.New("", 128)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := accessctl.Parse(aclRules)
	if err != nil {
		t.Fatal(err)
	}
	h.acl = accessctl.NewList(rules)

	secret := []byte("pam-radius-secret")
	rsrv := &radius.Server{Secret: secret, Handler: &otpd.RadiusHandler{OTP: h.otp}}
	if err := rsrv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsrv.Close() })
	h.pool = radius.NewPool([]string{rsrv.Addr().String()}, secret, 2*time.Second, 0)

	mode := StaticConfig{Mode: ModeFull}
	h.mode = &mode
	h.stack = NewSSHDStack(SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: dir},
		Radius:     h.pool,
	})
	return h
}

func (h *harness) addUser(t testing.TB, user, password string) {
	t.Helper()
	if _, err := h.idm.Create(user, user+"@hpc.example", password, idm.ClassUser); err != nil {
		t.Fatal(err)
	}
}

// pairSoft pairs a soft token and returns a generator for current codes.
func (h *harness) pairSoft(t testing.TB, user string) func() string {
	t.Helper()
	enr, err := h.otp.InitSoftToken(user)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.idm.SetPairing(user, idm.PairingSoft); err != nil {
		t.Fatal(err)
	}
	return func() string {
		code, err := otp.TOTP(enr.Secret, h.sim.Now(), h.otp.OTPOptions())
		if err != nil {
			t.Fatal(err)
		}
		return code
	}
}

func (h *harness) pairSMS(t testing.TB, user, phone string) {
	t.Helper()
	if _, err := h.otp.InitSMSToken(user, phone); err != nil {
		t.Fatal(err)
	}
	if err := h.idm.SetPairing(user, idm.PairingSMS); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) recordPubkey(user string, addr net.IP) {
	h.authLog.Append(authlog.Event{
		Time: h.sim.Now(), Type: authlog.AcceptedPublickey,
		User: user, Addr: addr.String(), Port: 50022, Shell: "/bin/bash",
	})
}

func (h *harness) login(t testing.TB, user string, addr net.IP, c *conv) error {
	t.Helper()
	ctx := &Context{User: user, RemoteAddr: addr, Service: "sshd", Conv: c, Now: h.sim.Now}
	return h.stack.Authenticate(ctx)
}

// TestFigure1 walks every branch of the paper's Figure 1 decision tree.
func TestFigure1(t *testing.T) {
	t.Run("pubkey+paired_token_success", func(t *testing.T) {
		h := newHarness(t, "")
		h.addUser(t, "alice", "pw")
		code := h.pairSoft(t, "alice")
		h.recordPubkey("alice", external)
		c := &conv{answers: []any{func() string { return code() }}}
		if err := h.login(t, "alice", external, c); err != nil {
			t.Fatalf("entry denied: %v", err)
		}
		if c.sawPrompt("Password") {
			t.Fatal("password prompted despite pubkey success")
		}
		if !c.sawPrompt("Token Code") {
			t.Fatal("token code never prompted")
		}
	})

	t.Run("password+paired_token_success", func(t *testing.T) {
		h := newHarness(t, "")
		h.addUser(t, "bob", "hunter2")
		code := h.pairSoft(t, "bob")
		c := &conv{answers: []any{"hunter2", func() string { return code() }}}
		if err := h.login(t, "bob", external, c); err != nil {
			t.Fatalf("entry denied: %v", err)
		}
		if !c.sawPrompt("Password") || !c.sawPrompt("Token Code") {
			t.Fatalf("prompts = %v", c.prompts)
		}
	})

	t.Run("wrong_password_denied_before_second_factor", func(t *testing.T) {
		h := newHarness(t, "")
		h.addUser(t, "bob", "hunter2")
		h.pairSoft(t, "bob")
		c := &conv{answers: []any{"wrong"}}
		if err := h.login(t, "bob", external, c); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("err = %v", err)
		}
		if c.sawPrompt("Token Code") {
			t.Fatal("second factor reached with bad first factor (brute-force filter broken)")
		}
	})

	t.Run("exemption_grants_entry_without_token", func(t *testing.T) {
		h := newHarness(t, "permit : gateway1 : ALL : ALL")
		h.addUser(t, "gateway1", "gwpw")
		c := &conv{answers: []any{"gwpw"}}
		if err := h.login(t, "gateway1", external, c); err != nil {
			t.Fatalf("exempt entry denied: %v", err)
		}
		if c.sawPrompt("Token Code") {
			t.Fatal("exempt user prompted for token")
		}
	})

	t.Run("pubkey+exemption_fully_noninteractive", func(t *testing.T) {
		// "In the event that a user account is outfitted to use public
		// key authentication and the account has been granted an MFA
		// exemption, log in may occur uninterrupted."
		h := newHarness(t, "permit : gateway1 : ALL : ALL")
		h.addUser(t, "gateway1", "gwpw")
		h.recordPubkey("gateway1", external)
		c := &conv{} // no answers: any prompt would fail
		if err := h.login(t, "gateway1", external, c); err != nil {
			t.Fatalf("non-interactive entry denied: %v", err)
		}
		if len(c.prompts) != 0 || len(c.infos) != 0 {
			t.Fatalf("interaction occurred: prompts=%v infos=%v", c.prompts, c.infos)
		}
	})

	t.Run("wrong_token_denied", func(t *testing.T) {
		h := newHarness(t, "")
		h.addUser(t, "carol", "pw")
		h.pairSoft(t, "carol")
		c := &conv{answers: []any{"pw", "000000"}}
		if err := h.login(t, "carol", external, c); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("internal_traffic_exempt_by_subnet", func(t *testing.T) {
		// "an MFA exemption is configured to allow any SSH traffic to
		// move freely from IP addresses that are a part of that
		// particular system."
		h := newHarness(t, "permit : ALL : 129.114.0.0/16 : ALL")
		h.addUser(t, "dave", "pw")
		h.pairSoft(t, "dave")
		c := &conv{answers: []any{"pw"}}
		if err := h.login(t, "dave", internal, c); err != nil {
			t.Fatalf("internal entry denied: %v", err)
		}
		if c.sawPrompt("Token Code") {
			t.Fatal("internal traffic prompted for token")
		}
		// The same user from outside must be prompted.
		code := func() string { c2, _ := h.otp.CurrentCode("dave", 0); return c2 }
		c3 := &conv{answers: []any{"pw", func() string { return code() }}}
		if err := h.login(t, "dave", external, c3); err != nil {
			t.Fatalf("external entry denied: %v", err)
		}
		if !c3.sawPrompt("Token Code") {
			t.Fatal("external traffic not prompted")
		}
	})
}

// TestFigure2 exercises the token module decision tree in full mode.
func TestFigure2(t *testing.T) {
	t.Run("sms_null_request_then_code", func(t *testing.T) {
		h := newHarness(t, "")
		h.addUser(t, "storm", "pw")
		h.pairSMS(t, "storm", "5125551234")
		c := &conv{answers: []any{"pw", func() string { return h.sms.lastCode() }}}
		if err := h.login(t, "storm", external, c); err != nil {
			t.Fatalf("SMS login denied: %v", err)
		}
		if !c.sawInfo("SMS") {
			t.Fatalf("no SMS notice shown: %v", c.infos)
		}
		if len(h.sms.msgs) != 1 {
			t.Fatalf("sms count = %d", len(h.sms.msgs))
		}
	})

	t.Run("sms_already_sent_notice", func(t *testing.T) {
		h := newHarness(t, "")
		h.addUser(t, "storm", "pw")
		h.pairSMS(t, "storm", "5125551234")
		// First login sends the SMS but the user aborts (wrong code).
		c1 := &conv{answers: []any{"pw", "000000"}}
		h.login(t, "storm", external, c1)
		// Second login while the code is active: no new SMS, notice shown.
		c2 := &conv{answers: []any{"pw", func() string { return h.sms.lastCode() }}}
		if err := h.login(t, "storm", external, c2); err != nil {
			t.Fatalf("second SMS login denied: %v", err)
		}
		if !c2.sawInfo("already been sent") {
			t.Fatalf("no already-sent notice: %v", c2.infos)
		}
		if len(h.sms.msgs) != 1 {
			t.Fatalf("sms count = %d, want 1", len(h.sms.msgs))
		}
	})

	t.Run("soft_and_hard_paths_prompt_directly", func(t *testing.T) {
		h := newHarness(t, "")
		h.addUser(t, "alice", "pw")
		code := h.pairSoft(t, "alice")
		c := &conv{answers: []any{"pw", func() string { return code() }}}
		if err := h.login(t, "alice", external, c); err != nil {
			t.Fatal(err)
		}
		if len(c.infos) != 0 {
			t.Fatalf("unexpected info messages: %v", c.infos)
		}
	})

	t.Run("unpaired_user_denied_in_full_mode", func(t *testing.T) {
		h := newHarness(t, "")
		h.addUser(t, "newbie", "pw")
		c := &conv{answers: []any{"pw", "123456"}}
		if err := h.login(t, "newbie", external, c); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("err = %v", err)
		}
		if !c.sawPrompt("Token Code") {
			t.Fatal("full mode must prompt regardless of pairing")
		}
	})
}

func TestEnforcementModes(t *testing.T) {
	t.Run("off_mode_single_factor", func(t *testing.T) {
		h := newHarness(t, "")
		h.mode.Mode = ModeOff
		h.addUser(t, "u", "pw")
		c := &conv{answers: []any{"pw"}}
		if err := h.login(t, "u", external, c); err != nil {
			t.Fatalf("off mode denied: %v", err)
		}
		if c.sawPrompt("Token Code") {
			t.Fatal("off mode prompted for token")
		}
	})

	t.Run("paired_mode_unpaired_passes", func(t *testing.T) {
		h := newHarness(t, "")
		h.mode.Mode = ModePaired
		h.addUser(t, "u", "pw")
		c := &conv{answers: []any{"pw"}}
		if err := h.login(t, "u", external, c); err != nil {
			t.Fatalf("paired mode denied unpaired user: %v", err)
		}
	})

	t.Run("paired_mode_paired_must_mfa", func(t *testing.T) {
		h := newHarness(t, "")
		h.mode.Mode = ModePaired
		h.addUser(t, "u", "pw")
		code := h.pairSoft(t, "u")
		c := &conv{answers: []any{"pw", func() string { return code() }}}
		if err := h.login(t, "u", external, c); err != nil {
			t.Fatal(err)
		}
		if !c.sawPrompt("Token Code") {
			t.Fatal("paired user not prompted in paired mode")
		}
		// And a wrong code denies entry even in paired mode.
		c2 := &conv{answers: []any{"pw", "000000"}}
		if err := h.login(t, "u", external, c2); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("countdown_unpaired_must_acknowledge", func(t *testing.T) {
		h := newHarness(t, "")
		*h.mode = StaticConfig{
			Mode:     ModeCountdown,
			Deadline: time.Date(2016, 10, 4, 0, 0, 0, 0, time.UTC),
			InfoURL:  "https://portal.hpc.example/mfa",
		}
		h.addUser(t, "u", "pw")
		c := &conv{answers: []any{"pw", ""}} // empty return = acknowledgement
		if err := h.login(t, "u", external, c); err != nil {
			t.Fatalf("countdown denied unpaired user: %v", err)
		}
		found := false
		for _, p := range c.prompts {
			if strings.Contains(p, "mandatory in 14 day(s)") &&
				strings.Contains(p, "https://portal.hpc.example/mfa") {
				found = true
			}
		}
		if !found {
			t.Fatalf("countdown notice missing or wrong: %v", c.prompts)
		}
	})

	t.Run("countdown_paired_prompts_normally", func(t *testing.T) {
		h := newHarness(t, "")
		*h.mode = StaticConfig{Mode: ModeCountdown,
			Deadline: time.Date(2016, 10, 4, 0, 0, 0, 0, time.UTC)}
		h.addUser(t, "u", "pw")
		code := h.pairSoft(t, "u")
		c := &conv{answers: []any{"pw", func() string { return code() }}}
		if err := h.login(t, "u", external, c); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("countdown_past_deadline_behaves_as_full", func(t *testing.T) {
		h := newHarness(t, "")
		*h.mode = StaticConfig{Mode: ModeCountdown,
			Deadline: time.Date(2016, 9, 1, 0, 0, 0, 0, time.UTC)} // already past
		h.addUser(t, "u", "pw")
		c := &conv{answers: []any{"pw", "123456"}}
		if err := h.login(t, "u", external, c); !errors.Is(err, ErrAuthFailed) {
			t.Fatalf("expired countdown err = %v", err)
		}
	})
}

func TestFileConfigHotReloadAndFailSafe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pam_mfa_token.conf")
	os.WriteFile(path, []byte("mode=paired\n"), 0o644)
	fc := &FileConfig{Path: path}
	if got := fc.TokenConfig(); got.Mode != ModePaired {
		t.Fatalf("mode = %v", got.Mode)
	}
	// Rewrite → takes effect on next read.
	os.WriteFile(path, []byte("mode=countdown\ndeadline=2016-10-04\nurl=https://x\n"), 0o644)
	future := time.Now().Add(2 * time.Second)
	os.Chtimes(path, future, future)
	got := fc.TokenConfig()
	if got.Mode != ModeCountdown || got.InfoURL != "https://x" ||
		!got.Deadline.Equal(time.Date(2016, 10, 4, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("reloaded config = %+v", got)
	}
	// Corrupt file → fail-safe to full ("the token module defaults to
	// the fourth enforcement mode").
	os.WriteFile(path, []byte("mode=banana\n"), 0o644)
	future = future.Add(2 * time.Second)
	os.Chtimes(path, future, future)
	if got := fc.TokenConfig(); got.Mode != ModeFull {
		t.Fatalf("corrupt config mode = %v, want full", got.Mode)
	}
	// Missing file → full.
	fc2 := &FileConfig{Path: filepath.Join(t.TempDir(), "missing.conf")}
	if got := fc2.TokenConfig(); got.Mode != ModeFull {
		t.Fatalf("missing config mode = %v", got.Mode)
	}
}

func TestParseModeAndConfig(t *testing.T) {
	for s, want := range map[string]Mode{"off": ModeOff, " Paired ": ModePaired,
		"COUNTDOWN": ModeCountdown, "full": ModeFull} {
		got, ok := ParseMode(s)
		if !ok || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, ok)
		}
	}
	if m, ok := ParseMode("bogus"); ok || m != ModeFull {
		t.Error("bogus mode must fail to ModeFull")
	}
	if _, ok := parseTokenConfig("mode=full\ndeadline=banana\n"); ok {
		t.Error("bad deadline accepted")
	}
	if _, ok := parseTokenConfig("unknown=1\n"); ok {
		t.Error("unknown key accepted")
	}
	if cfg, ok := parseTokenConfig("# comment\n\nmode=off\n"); !ok || cfg.Mode != ModeOff {
		t.Error("comments/blanks broke parsing")
	}
}

func TestSolarisStack(t *testing.T) {
	h := newHarness(t, "permit : gateway1 : ALL : ALL")
	h.addUser(t, "gateway1", "pw")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	solaris := NewSolarisStack(SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: h.dir},
		Radius:     h.pool,
	})
	// Exempt user sails through.
	ctx := &Context{User: "gateway1", RemoteAddr: external, Conv: &conv{}, Now: h.sim.Now}
	if err := solaris.Authenticate(ctx); err != nil {
		t.Fatalf("solaris exempt denied: %v", err)
	}
	// Non-exempt user needs the token.
	c := &conv{answers: []any{func() string { return code() }}}
	ctx2 := &Context{User: "alice", RemoteAddr: external, Conv: c, Now: h.sim.Now}
	if err := solaris.Authenticate(ctx2); err != nil {
		t.Fatalf("solaris token path denied: %v", err)
	}
}

func TestPubkeyModuleWindowAndAddr(t *testing.T) {
	h := newHarness(t, "")
	mod := &PubkeySuccess{Log: h.authLog}
	h.recordPubkey("u", external)
	ctx := &Context{User: "u", RemoteAddr: external, Now: h.sim.Now, Data: map[string]any{}}
	if mod.Authenticate(ctx) != Success {
		t.Fatal("fresh pubkey event not found")
	}
	if ctx.Data[DataPubkeyOK] != true {
		t.Fatal("DataPubkeyOK not set")
	}
	// Different source address must not match.
	ctx2 := &Context{User: "u", RemoteAddr: internal, Now: h.sim.Now, Data: map[string]any{}}
	if mod.Authenticate(ctx2) != Ignore {
		t.Fatal("pubkey matched from wrong address")
	}
	// Stale events (35s later, default 30s window) must not match.
	h.sim.Advance(35 * time.Second)
	ctx3 := &Context{User: "u", RemoteAddr: external, Now: h.sim.Now, Data: map[string]any{}}
	if mod.Authenticate(ctx3) != Ignore {
		t.Fatal("stale pubkey event matched")
	}
}

func TestTokenModuleRadiusOutage(t *testing.T) {
	// All RADIUS servers dead → SystemErr → required entry fails closed.
	h := newHarness(t, "")
	h.addUser(t, "u", "pw")
	h.pairSoft(t, "u")
	dead := radius.NewPool([]string{"127.0.0.1:9"}, []byte("s"), 50*time.Millisecond, 0)
	h.stack.Entries[3].Module = &Token{
		Config: h.mode, Pairing: LocalPairing{Dir: h.dir}, Radius: dead,
	}
	c := &conv{answers: []any{"pw", "123456"}}
	if err := h.login(t, "u", external, c); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("outage err = %v, want fail closed", err)
	}
}

func TestDirectoryPairingLookup(t *testing.T) {
	d := directory.New()
	d.Add(directory.UserDN("u"), map[string][]string{"uid": {"u"}, "mfapairing": {"sms"}})
	srv := directory.NewServer(d)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dp := DirectoryPairing{Client: &directory.Client{Addr: srv.Addr().String()}}
	p, err := dp.Pairing("u")
	if err != nil || p != "sms" {
		t.Fatalf("Pairing = %q, %v", p, err)
	}
	p, err = dp.Pairing("ghost")
	if err != nil || p != "none" {
		t.Fatalf("ghost Pairing = %q, %v", p, err)
	}
	lp := LocalPairing{Dir: d}
	if p, _ := lp.Pairing("u"); p != "sms" {
		t.Fatal("LocalPairing mismatch")
	}
	if p, _ := lp.Pairing("ghost"); p != "none" {
		t.Fatal("LocalPairing ghost mismatch")
	}
}

// BenchmarkFullStackLogin measures an end-to-end PAM authentication with
// pubkey + token over the real RADIUS/otpd path.
func BenchmarkFullStackLogin(b *testing.B) {
	h := newHarness(b, "")
	h.addUser(b, "u", "pw")
	code := h.pairSoft(b, "u")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.sim.Advance(30 * time.Second) // fresh code each round (replay protection)
		h.recordPubkey("u", external)
		c := &conv{answers: []any{func() string { return code() }}}
		if err := h.login(b, "u", external, c); err != nil {
			b.Fatal(err)
		}
	}
}
