package pam

import (
	"errors"
	"net"
	"testing"
	"time"

	"openmfa/internal/geoip"
	"openmfa/internal/risk"
)

var (
	austinIP = net.ParseIP("129.114.3.7")
	chinaIP  = net.ParseIP("159.226.40.1")
	germanIP = net.ParseIP("141.20.1.2")
)

// riskHarness wires the risk-gated stack over the usual back end.
func riskHarness(t *testing.T, aclRules string) (*harness, *risk.Engine, *Stack) {
	t.Helper()
	h := newHarness(t, aclRules)
	engine := risk.NewEngine(geoip.Synthetic(), risk.DefaultWeights())
	stack := NewSSHDStackWithRisk(SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: h.dir},
		Radius:     h.pool,
	}, engine, nil)
	return h, engine, stack
}

func seedHistory(e *risk.Engine, user string, at time.Time) {
	for i := 0; i < 30; i++ {
		e.RecordSuccess(user, austinIP, at.AddDate(0, 0, -30+i))
	}
}

func loginVia(t *testing.T, h *harness, stack *Stack, user string, ip net.IP, c *conv) error {
	t.Helper()
	ctx := &Context{User: user, RemoteAddr: ip, Service: "sshd", Conv: c, Now: h.sim.Now}
	return stack.Authenticate(ctx)
}

func TestRiskGateLowRiskPassesThrough(t *testing.T) {
	h, engine, stack := riskHarness(t, "")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	seedHistory(engine, "alice", h.sim.Now())
	c := &conv{answers: []any{"pw", func() string { return code() }}}
	if err := loginVia(t, h, stack, "alice", austinIP, c); err != nil {
		t.Fatalf("familiar login denied: %v", err)
	}
}

func TestRiskGateElevatedCancelsExemption(t *testing.T) {
	// A whitelisted user from a brand-new country must still present a
	// token code: the exemption is suppressed for the attempt.
	h, engine, stack := riskHarness(t, "permit : gateway1 : ALL : ALL")
	h.addUser(t, "gateway1", "pw")
	code := h.pairSoft(t, "gateway1")
	seedHistory(engine, "gateway1", h.sim.Now())

	// From the usual place: exemption applies, no token prompt.
	c1 := &conv{answers: []any{"pw"}}
	if err := loginVia(t, h, stack, "gateway1", austinIP, c1); err != nil {
		t.Fatalf("home login denied: %v", err)
	}
	if c1.sawPrompt("Token") {
		t.Fatal("token prompted from familiar origin")
	}
	// From Germany (new net + new country = elevated): token required.
	c2 := &conv{answers: []any{"pw", func() string { return code() }}}
	if err := loginVia(t, h, stack, "gateway1", germanIP, c2); err != nil {
		t.Fatalf("elevated-risk login with valid token denied: %v", err)
	}
	if !c2.sawPrompt("Token") {
		t.Fatal("exemption not suppressed under elevated risk")
	}
}

func TestRiskGateCriticalDenies(t *testing.T) {
	h, engine, stack := riskHarness(t, "")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	seedHistory(engine, "alice", h.sim.Now())
	// Impossible travel: success from Austin now, login from China in
	// 30 minutes.
	engine.RecordSuccess("alice", austinIP, h.sim.Now())
	h.sim.Advance(30 * time.Minute)
	c := &conv{answers: []any{"pw", func() string { return code() }}}
	err := loginVia(t, h, stack, "alice", chinaIP, c)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("impossible travel admitted: %v", err)
	}
	if c.sawPrompt("Token") {
		t.Fatal("critical risk still reached the token module")
	}
	if !c.sawInfo("risk policy") {
		t.Fatalf("no user-facing risk notice: %v", c.infos)
	}
}

func TestRiskGateNotifyChannel(t *testing.T) {
	h, engine, _ := riskHarness(t, "")
	h.addUser(t, "alice", "pw")
	h.pairSoft(t, "alice")
	seedHistory(engine, "alice", h.sim.Now())
	var alerts []string
	stack := NewSSHDStackWithRisk(SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: h.dir},
		Radius:     h.pool,
	}, engine, func(user string, a risk.Assessment) {
		alerts = append(alerts, user+":"+a.Level.String())
	})
	code := h.pairSoft // silence unused; not needed here
	_ = code
	c := &conv{answers: []any{"pw", "000000"}}
	loginVia(t, h, stack, "alice", germanIP, c)
	if len(alerts) != 1 || alerts[0] != "alice:elevated" {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestRiskGateRunsAfterFirstFactor(t *testing.T) {
	// The gate must not fire for attempts that fail the password: the
	// stack is requisite-ordered, password first.
	h, engine, stack := riskHarness(t, "")
	h.addUser(t, "alice", "pw")
	seedHistory(engine, "alice", h.sim.Now())
	var alerts int
	stack.Entries[2].Module = &RiskGate{Engine: engine,
		Notify: func(string, risk.Assessment) { alerts++ }}
	c := &conv{answers: []any{"wrong-password"}}
	if err := loginVia(t, h, stack, "alice", chinaIP, c); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v", err)
	}
	if alerts != 0 {
		t.Fatal("risk gate evaluated before the first factor succeeded")
	}
}
