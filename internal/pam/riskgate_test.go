package pam

import (
	"errors"
	"math"
	"net"
	"os"
	"testing"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/geoip"
	"openmfa/internal/obs"
	"openmfa/internal/risk"
)

var (
	austinIP = net.ParseIP("129.114.3.7")
	chinaIP  = net.ParseIP("159.226.40.1")
	germanIP = net.ParseIP("141.20.1.2")
)

// riskHarness wires the risk-gated stack over the usual back end.
func riskHarness(t *testing.T, aclRules string) (*harness, *risk.Engine, *Stack) {
	t.Helper()
	h := newHarness(t, aclRules)
	engine := risk.NewEngine(geoip.Synthetic(), risk.DefaultWeights())
	stack := NewSSHDStackWithRisk(SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: h.dir},
		Radius:     h.pool,
	}, engine, nil)
	return h, engine, stack
}

func seedHistory(e *risk.Engine, user string, at time.Time) {
	for i := 0; i < 30; i++ {
		e.RecordSuccess(user, austinIP, at.AddDate(0, 0, -30+i))
	}
}

func loginVia(t *testing.T, h *harness, stack *Stack, user string, ip net.IP, c *conv) error {
	t.Helper()
	ctx := &Context{User: user, RemoteAddr: ip, Service: "sshd", Conv: c, Now: h.sim.Now}
	return stack.Authenticate(ctx)
}

func TestRiskGateLowRiskPassesThrough(t *testing.T) {
	h, engine, stack := riskHarness(t, "")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	seedHistory(engine, "alice", h.sim.Now())
	c := &conv{answers: []any{"pw", func() string { return code() }}}
	if err := loginVia(t, h, stack, "alice", austinIP, c); err != nil {
		t.Fatalf("familiar login denied: %v", err)
	}
}

func TestRiskGateElevatedCancelsExemption(t *testing.T) {
	// A whitelisted user from a brand-new country must still present a
	// token code: the exemption is suppressed for the attempt.
	h, engine, stack := riskHarness(t, "permit : gateway1 : ALL : ALL")
	h.addUser(t, "gateway1", "pw")
	code := h.pairSoft(t, "gateway1")
	seedHistory(engine, "gateway1", h.sim.Now())

	// From the usual place: exemption applies, no token prompt.
	c1 := &conv{answers: []any{"pw"}}
	if err := loginVia(t, h, stack, "gateway1", austinIP, c1); err != nil {
		t.Fatalf("home login denied: %v", err)
	}
	if c1.sawPrompt("Token") {
		t.Fatal("token prompted from familiar origin")
	}
	// From Germany (new net + new country = elevated): token required.
	c2 := &conv{answers: []any{"pw", func() string { return code() }}}
	if err := loginVia(t, h, stack, "gateway1", germanIP, c2); err != nil {
		t.Fatalf("elevated-risk login with valid token denied: %v", err)
	}
	if !c2.sawPrompt("Token") {
		t.Fatal("exemption not suppressed under elevated risk")
	}
}

func TestRiskGateCriticalDenies(t *testing.T) {
	h, engine, stack := riskHarness(t, "")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	seedHistory(engine, "alice", h.sim.Now())
	// Impossible travel: success from Austin now, login from China in
	// 30 minutes.
	engine.RecordSuccess("alice", austinIP, h.sim.Now())
	h.sim.Advance(30 * time.Minute)
	c := &conv{answers: []any{"pw", func() string { return code() }}}
	err := loginVia(t, h, stack, "alice", chinaIP, c)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("impossible travel admitted: %v", err)
	}
	if c.sawPrompt("Token") {
		t.Fatal("critical risk still reached the token module")
	}
	if !c.sawInfo("risk policy") {
		t.Fatalf("no user-facing risk notice: %v", c.infos)
	}
}

func TestRiskGateNotifyChannel(t *testing.T) {
	h, engine, _ := riskHarness(t, "")
	h.addUser(t, "alice", "pw")
	h.pairSoft(t, "alice")
	seedHistory(engine, "alice", h.sim.Now())
	var alerts []string
	stack := NewSSHDStackWithRisk(SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: h.dir},
		Radius:     h.pool,
	}, engine, func(user string, d risk.Decision) {
		alerts = append(alerts, user+":"+d.Level().String())
	})
	code := h.pairSoft // silence unused; not needed here
	_ = code
	c := &conv{answers: []any{"pw", "000000"}}
	loginVia(t, h, stack, "alice", germanIP, c)
	if len(alerts) != 1 || alerts[0] != "alice:elevated" {
		t.Fatalf("alerts = %v", alerts)
	}
}

// adaptiveStack builds a risk-gated stack with the skip tier enabled.
func adaptiveStack(t *testing.T, h *harness, opts risk.Options) (*risk.Engine, *Stack) {
	t.Helper()
	if opts.Geo == nil {
		opts.Geo = geoip.Synthetic()
	}
	if !opts.Policy.AllowSkip {
		opts.Policy = risk.AdaptivePolicy()
	}
	engine := risk.New(opts)
	stack := NewSSHDStackWithRisk(SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: h.dir},
		Radius:     h.pool,
	}, engine, nil)
	return engine, stack
}

func TestRiskGateAdaptiveSkipSuppressesPrompt(t *testing.T) {
	// With AllowSkip on, a clean attempt from a well-established account
	// ends the stack after the first factor: no token prompt.
	h := newHarness(t, "")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	engine, stack := adaptiveStack(t, h, risk.Options{})
	seedHistory(engine, "alice", h.sim.Now())

	c := &conv{answers: []any{"pw"}}
	if err := loginVia(t, h, stack, "alice", austinIP, c); err != nil {
		t.Fatalf("established login denied: %v", err)
	}
	if c.sawPrompt("Token") {
		t.Fatal("adaptive skip still prompted for the token")
	}

	// The same account from a novel network does not earn the skip.
	c2 := &conv{answers: []any{"pw", func() string { return code() }}}
	if err := loginVia(t, h, stack, "alice", germanIP, c2); err != nil {
		t.Fatalf("novel-origin login with valid token denied: %v", err)
	}
	if !c2.sawPrompt("Token") {
		t.Fatal("novel origin skipped MFA")
	}
}

func TestRiskGateSkipRequiresHistory(t *testing.T) {
	// A brand-new account scores 0 but must not earn the bypass.
	h := newHarness(t, "")
	h.addUser(t, "newbie", "pw")
	code := h.pairSoft(t, "newbie")
	_, stack := adaptiveStack(t, h, risk.Options{})
	c := &conv{answers: []any{"pw", func() string { return code() }}}
	if err := loginVia(t, h, stack, "newbie", austinIP, c); err != nil {
		t.Fatalf("new-account login denied: %v", err)
	}
	if !c.sawPrompt("Token") {
		t.Fatal("account without history skipped MFA")
	}
}

func TestRiskGateAttachesDecisionToSpans(t *testing.T) {
	// The gate annotates the per-module span with the decision so the
	// flight recorder's trace view explains why an attempt was denied.
	h, engine, stack := riskHarness(t, "")
	h.addUser(t, "alice", "pw")
	h.pairSoft(t, "alice")
	seedHistory(engine, "alice", h.sim.Now())
	engine.RecordSuccess("alice", austinIP, h.sim.Now())
	h.sim.Advance(30 * time.Minute)

	spans := obs.NewSpanStore(64)
	trace := obs.NewTraceID()
	ctx := &Context{User: "alice", RemoteAddr: chinaIP, Service: "sshd",
		Conv: &conv{answers: []any{"pw"}}, Now: h.sim.Now,
		Trace: trace, Spans: spans}
	if err := stack.Authenticate(ctx); err == nil {
		t.Fatal("impossible travel admitted")
	}
	attrs := map[string]string{}
	found := false
	for _, sp := range spans.Trace(trace) {
		if sp.Name == "pam.pam_risk_gate" {
			found = true
			for _, a := range sp.Attrs {
				attrs[a.Key] = a.Value
			}
		}
	}
	if !found {
		t.Fatal("no risk gate span recorded")
	}
	if attrs["risk.outcome"] != "deny" {
		t.Fatalf("span outcome = %q, want deny (attrs %v)", attrs["risk.outcome"], attrs)
	}
	if attrs["risk.score"] == "" || attrs["risk.reasons"] == "" {
		t.Fatalf("span missing score/reasons: %v", attrs)
	}
}

func TestRiskGatePublishesOneDecisionPerAttempt(t *testing.T) {
	// Exactly one TypeRisk event per stack run, even when the stack
	// continues through exemption and token modules.
	h := newHarness(t, "")
	h.addUser(t, "alice", "pw")
	code := h.pairSoft(t, "alice")
	bus := eventstream.NewBus(nil)
	sub := bus.Subscribe(64)
	engine := risk.New(risk.Options{Geo: geoip.Synthetic(), Events: bus})
	stack := NewSSHDStackWithRisk(SSHDStackConfig{
		AuthLog: h.authLog, IDM: h.idm, Exemptions: h.acl,
		TokenCfg: h.mode, Pairing: LocalPairing{Dir: h.dir}, Radius: h.pool,
	}, engine, nil)
	seedHistory(engine, "alice", h.sim.Now())

	for i := 0; i < 3; i++ {
		c := &conv{answers: []any{"pw", func() string { return code() }}}
		if err := loginVia(t, h, stack, "alice", austinIP, c); err != nil {
			t.Fatalf("login %d: %v", i, err)
		}
		h.sim.Advance(time.Minute)
	}
	sub.Close()
	got := 0
	for e := range sub.Events() {
		if e.Type != eventstream.TypeRisk {
			t.Fatalf("unexpected event type %q", e.Type)
		}
		if e.User != "alice" || e.Result != "allow" {
			t.Fatalf("decision event = %+v", e)
		}
		got++
	}
	if got != 3 {
		t.Fatalf("decision events = %d, want 3", got)
	}
}

// TestRiskGateOverheadGate enforces a 5% budget for the risk gate on the
// Figure 1 login hot path (password + exemption, the path every exempt
// user rides). Same methodology as the otpd observability gates:
// env-gated, ABBA-interleaved trials, min-of-trials per arm, and an
// over-budget reading must reproduce on every attempt to fail.
//
//	OBS_OVERHEAD_GATE=1 go test ./internal/pam -run TestRiskGateOverheadGate
func TestRiskGateOverheadGate(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GATE") == "" {
		t.Skip("set OBS_OVERHEAD_GATE=1 (make bench-obs) to run the overhead gate")
	}
	const (
		trials   = 5
		attempts = 3
		budget   = 0.05
	)
	h := newHarness(t, "permit : bench : ALL : ALL")
	h.addUser(t, "bench", "pw")
	cfg := SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: h.dir},
		Radius:     h.pool,
	}
	engine := risk.NewEngine(geoip.Synthetic(), risk.DefaultWeights())
	seedHistory(engine, "bench", h.sim.Now())
	base := NewSSHDStack(cfg)
	gated := NewSSHDStackWithRisk(cfg, engine, nil)
	run := func(stack *Stack) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				ctx := &Context{User: "bench", RemoteAddr: austinIP, Service: "sshd",
					Conv: &conv{answers: []any{"pw"}}, Now: h.sim.Now}
				if err := stack.Authenticate(ctx); err != nil {
					b.Fatalf("login: %v", err)
				}
			}
		})
		return float64(r.NsPerOp())
	}
	run(base) // warm-up: page in both paths before timing
	run(gated)
	measure := func() (off, on float64) {
		off, on = math.Inf(1), math.Inf(1)
		for i := 0; i < trials; i++ {
			if i%2 == 0 {
				off = math.Min(off, run(base))
				on = math.Min(on, run(gated))
			} else {
				on = math.Min(on, run(gated))
				off = math.Min(off, run(base))
			}
		}
		return off, on
	}
	overhead := 0.0
	for attempt := 1; attempt <= attempts; attempt++ {
		off, on := measure()
		overhead = (on - off) / off
		t.Logf("attempt %d: gate off %.0f ns/op, gate on %.0f ns/op, overhead %.2f%%",
			attempt, off, on, 100*overhead)
		if overhead <= budget {
			return
		}
	}
	t.Errorf("risk gate stayed more than %.0f%% slower than the ungated stack across %d measurements (last: %.2f%%)",
		100*budget, attempts, 100*overhead)
}

func TestRiskGateRunsAfterFirstFactor(t *testing.T) {
	// The gate must not fire for attempts that fail the password: the
	// stack is requisite-ordered, password first.
	h, engine, stack := riskHarness(t, "")
	h.addUser(t, "alice", "pw")
	seedHistory(engine, "alice", h.sim.Now())
	var alerts int
	stack.Entries[2].Module = &RiskGate{Engine: engine,
		Notify: func(string, risk.Decision) { alerts++ }}
	c := &conv{answers: []any{"wrong-password"}}
	if err := loginVia(t, h, stack, "alice", chinaIP, c); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v", err)
	}
	if alerts != 0 {
		t.Fatal("risk gate evaluated before the first factor succeeded")
	}
}
