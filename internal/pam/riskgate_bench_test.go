package pam

import (
	"testing"

	"openmfa/internal/geoip"
	"openmfa/internal/risk"
)

// BenchmarkRiskGatedLogin compares the Figure 1 password+exemption hot
// path with and without the risk gate (the enforced comparison lives in
// TestRiskGateOverheadGate).
func BenchmarkRiskGatedLogin(b *testing.B) {
	h := newHarness(b, "permit : bench : ALL : ALL")
	h.addUser(b, "bench", "pw")
	cfg := SSHDStackConfig{
		AuthLog:    h.authLog,
		IDM:        h.idm,
		Exemptions: h.acl,
		TokenCfg:   h.mode,
		Pairing:    LocalPairing{Dir: h.dir},
		Radius:     h.pool,
	}
	engine := risk.NewEngine(geoip.Synthetic(), risk.DefaultWeights())
	seedHistory(engine, "bench", h.sim.Now())
	run := func(b *testing.B, stack *Stack) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := &Context{User: "bench", RemoteAddr: austinIP, Service: "sshd",
				Conv: &conv{answers: []any{"pw"}}, Now: h.sim.Now}
			if err := stack.Authenticate(ctx); err != nil {
				b.Fatalf("login: %v", err)
			}
		}
	}
	b.Run("gate-off", func(b *testing.B) { run(b, NewSSHDStack(cfg)) })
	b.Run("gate-on", func(b *testing.B) { run(b, NewSSHDStackWithRisk(cfg, engine, nil)) })
}
