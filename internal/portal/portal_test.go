package portal

import (
	"bytes"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/directory"
	"openmfa/internal/httpdigest"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/otpd"
	"openmfa/internal/store"
)

var t0 = time.Date(2016, 8, 15, 10, 0, 0, 0, time.UTC)

type world struct {
	sim    *clock.Sim
	idm    *idm.IDM
	otp    *otpd.Server
	portal *httptest.Server
	sms    *smsCap
	email  *emailCap
}

type smsCap struct {
	mu   sync.Mutex
	msgs []string
}

func (s *smsCap) SendSMS(phone, body string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, body)
	return nil
}

func (s *smsCap) lastCode() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.msgs) == 0 {
		return ""
	}
	f := strings.Fields(s.msgs[len(s.msgs)-1])
	return f[len(f)-1]
}

func (s *smsCap) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

type emailCap struct {
	mu     sync.Mutex
	to     []string
	bodies []string
}

func (e *emailCap) SendEmail(to, subject, body string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.to = append(e.to, to)
	e.bodies = append(e.bodies, body)
	return nil
}

func (e *emailCap) lastBody() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.bodies) == 0 {
		return ""
	}
	return e.bodies[len(e.bodies)-1]
}

func newWorld(t testing.TB) *world {
	t.Helper()
	sim := clock.NewSim(t0)
	w := &world{sim: sim, sms: &smsCap{}, email: &emailCap{}}
	dir := directory.New()
	w.idm = idm.New(store.OpenMemory(), dir, sim)
	var err error
	w.otp, err = otpd.New(otpd.Config{
		DB:            store.OpenMemory(),
		EncryptionKey: bytes.Repeat([]byte{5}, 32),
		Clock:         sim,
		SMS:           w.sms,
		Issuer:        "TACC",
	})
	if err != nil {
		t.Fatal(err)
	}
	api := &otpd.AdminAPI{
		OTP:   w.otp,
		Realm: "otpd-admin",
		Creds: httpdigest.StaticCredentials{"portal": httpdigest.HA1("portal", "otpd-admin", "pw")},
	}
	otpSrv := httptest.NewServer(api.Handler())
	t.Cleanup(otpSrv.Close)

	p, err := New(Config{
		IDM:        w.idm,
		Admin:      &otpd.AdminClient{BaseURL: otpSrv.URL, Username: "portal", Password: "pw"},
		Email:      w.email,
		Clock:      sim,
		SessionKey: []byte("portal-session-key"),
		BaseURL:    "https://portal.hpc.example",
	})
	if err != nil {
		t.Fatal(err)
	}
	w.portal = httptest.NewServer(p.Handler())
	t.Cleanup(w.portal.Close)
	return w
}

func (w *world) addUser(t testing.TB, user, pw string) {
	t.Helper()
	if _, err := w.idm.Create(user, user+"@hpc.example", pw, idm.ClassUser); err != nil {
		t.Fatal(err)
	}
}

// browser is an http client with a cookie jar (a user's web browser).
func browser(t testing.TB) *http.Client {
	t.Helper()
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &http.Client{Jar: jar, CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse // inspect redirects explicitly
	}}
}

func post(t testing.TB, c *http.Client, urlStr string, form url.Values) (*http.Response, string) {
	t.Helper()
	resp, err := c.PostForm(urlStr, form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, string(b)
}

func get(t testing.TB, c *http.Client, urlStr string) (*http.Response, string) {
	t.Helper()
	resp, err := c.Get(urlStr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, string(b)
}

func login(t testing.TB, w *world, c *http.Client, user, pw string) *http.Response {
	t.Helper()
	resp, _ := post(t, c, w.portal.URL+"/login", url.Values{"username": {user}, "password": {pw}})
	return resp
}

var stateRe = regexp.MustCompile(`state: (\S+)`)
var uriRe = regexp.MustCompile(`QR payload: (\S+)`)

func TestLoginAndSplashInterstitial(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	// Unpaired user is redirected to the splash on login.
	resp := login(t, w, c, "alice", "pw")
	if resp.StatusCode != http.StatusSeeOther || resp.Header.Get("Location") != "/splash" {
		t.Fatalf("login redirect = %d %q", resp.StatusCode, resp.Header.Get("Location"))
	}
	_, body := get(t, c, w.portal.URL+"/splash")
	if !strings.Contains(body, "Multi-factor authentication is required") {
		t.Fatalf("splash body = %q", body)
	}
	// Dismiss → home still reachable.
	_, body = get(t, c, w.portal.URL+"/home")
	if !strings.Contains(body, "pairing: none") {
		t.Fatalf("home body = %q", body)
	}
	// Re-login: prompted again (redirect to splash once more).
	resp = login(t, w, c, "alice", "pw")
	if resp.Header.Get("Location") != "/splash" {
		t.Fatal("second login not re-prompted")
	}
}

func TestLoginFailures(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	resp := login(t, w, c, "alice", "wrong")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad pw status = %d", resp.StatusCode)
	}
	// No session cookie: protected pages 401.
	resp2, _ := get(t, c, w.portal.URL+"/home")
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("home without session = %d", resp2.StatusCode)
	}
}

func TestSoftPairingFlow(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")

	resp, body := post(t, c, w.portal.URL+"/pair/start", url.Values{"type": {"soft"}})
	if resp.StatusCode != 200 {
		t.Fatalf("pair start = %d %q", resp.StatusCode, body)
	}
	state := stateRe.FindStringSubmatch(body)
	uri := uriRe.FindStringSubmatch(body)
	if state == nil || uri == nil {
		t.Fatalf("missing state/uri in %q", body)
	}
	// "After scanning the QR code, the mobile application immediately
	// presents the user with a six-digit token code."
	key, err := otp.ParseURI(uri[1])
	if err != nil {
		t.Fatal(err)
	}
	code, _ := otp.TOTP(key.Secret, w.sim.Now(), key.Options)
	resp, body = post(t, c, w.portal.URL+"/pair/confirm",
		url.Values{"state": {state[1]}, "code": {code}})
	if resp.StatusCode != 200 || !strings.Contains(body, "paired: soft") {
		t.Fatalf("confirm = %d %q", resp.StatusCode, body)
	}
	// IDM notified.
	if p, _ := w.idm.Pairing("alice"); p != idm.PairingSoft {
		t.Fatalf("pairing = %v", p)
	}
	// Next login goes straight home.
	resp = login(t, w, c, "alice", "pw")
	if resp.Header.Get("Location") != "/home" {
		t.Fatal("paired user still sent to splash")
	}
}

func TestSMSPairingFlow(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "storm", "pw")
	c := browser(t)
	login(t, w, c, "storm", "pw")

	// Invalid phone rejected.
	resp, _ := post(t, c, w.portal.URL+"/pair/start",
		url.Values{"type": {"sms"}, "phone": {"banana"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad phone status = %d", resp.StatusCode)
	}

	resp, body := post(t, c, w.portal.URL+"/pair/start",
		url.Values{"type": {"sms"}, "phone": {"5125551234"}})
	if resp.StatusCode != 200 {
		t.Fatalf("sms start = %d %q", resp.StatusCode, body)
	}
	if w.sms.count() != 1 {
		t.Fatalf("sms count = %d", w.sms.count())
	}
	state := stateRe.FindStringSubmatch(body)
	resp, body = post(t, c, w.portal.URL+"/pair/confirm",
		url.Values{"state": {state[1]}, "code": {w.sms.lastCode()}})
	if resp.StatusCode != 200 || !strings.Contains(body, "paired: sms") {
		t.Fatalf("confirm = %d %q", resp.StatusCode, body)
	}
	if p, _ := w.idm.Pairing("storm"); p != idm.PairingSMS {
		t.Fatalf("pairing = %v", p)
	}
}

func TestHardPairingFlow(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "hanlon", "pw")
	secret := []byte("fob-secret-0001-----")
	w.otp.ImportHardToken("C200-0001", secret)
	c := browser(t)
	login(t, w, c, "hanlon", "pw")

	resp, body := post(t, c, w.portal.URL+"/pair/start",
		url.Values{"type": {"hard"}, "serial": {"C200-0001"}})
	if resp.StatusCode != 200 {
		t.Fatalf("hard start = %d %q", resp.StatusCode, body)
	}
	state := stateRe.FindStringSubmatch(body)
	// "the user is then prompted to enter the current token code ...
	// This ensures that the hard token device is working properly after
	// shipment."
	code, _ := otp.TOTP(secret, w.sim.Now(), w.otp.OTPOptions())
	resp, body = post(t, c, w.portal.URL+"/pair/confirm",
		url.Values{"state": {state[1]}, "code": {code}})
	if resp.StatusCode != 200 || !strings.Contains(body, "paired: hard") {
		t.Fatalf("confirm = %d %q", resp.StatusCode, body)
	}
	// Unknown serial fails.
	c2 := browser(t)
	w.addUser(t, "other", "pw")
	login(t, w, c2, "other", "pw")
	resp, _ = post(t, c2, w.portal.URL+"/pair/start",
		url.Values{"type": {"hard"}, "serial": {"BOGUS"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus serial status = %d", resp.StatusCode)
	}
}

func TestPairingAbortOnRefresh(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")

	_, body := post(t, c, w.portal.URL+"/pair/start", url.Values{"type": {"soft"}})
	state := stateRe.FindStringSubmatch(body)
	uri := uriRe.FindStringSubmatch(body)

	// "If a user refreshes in the middle of the process ... the process
	// is aborted": GET /pair kills the pending state and the token.
	get(t, c, w.portal.URL+"/pair")
	if w.otp.HasToken("alice") {
		t.Fatal("provisional token survived the refresh")
	}
	// The old form (back button) is now stale.
	key, _ := otp.ParseURI(uri[1])
	code, _ := otp.TOTP(key.Secret, w.sim.Now(), key.Options)
	resp, _ := post(t, c, w.portal.URL+"/pair/confirm",
		url.Values{"state": {state[1]}, "code": {code}})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale confirm status = %d", resp.StatusCode)
	}
}

func TestPairingConfirmReplayBlocked(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")
	_, body := post(t, c, w.portal.URL+"/pair/start", url.Values{"type": {"soft"}})
	state := stateRe.FindStringSubmatch(body)
	uri := uriRe.FindStringSubmatch(body)
	key, _ := otp.ParseURI(uri[1])
	code, _ := otp.TOTP(key.Secret, w.sim.Now(), key.Options)
	form := url.Values{"state": {state[1]}, "code": {code}}
	if resp, _ := post(t, c, w.portal.URL+"/pair/confirm", form); resp.StatusCode != 200 {
		t.Fatal("first confirm failed")
	}
	// Resubmitting the same form (browser retry) must not error the
	// pairing or create duplicates — it is refused as stale.
	resp, _ := post(t, c, w.portal.URL+"/pair/confirm", form)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("replayed confirm status = %d", resp.StatusCode)
	}
	if p, _ := w.idm.Pairing("alice"); p != idm.PairingSoft {
		t.Fatal("pairing state corrupted by replay")
	}
}

func TestPairingWrongCodeAllowsRetry(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")
	_, body := post(t, c, w.portal.URL+"/pair/start", url.Values{"type": {"soft"}})
	state := stateRe.FindStringSubmatch(body)
	uri := uriRe.FindStringSubmatch(body)

	resp, _ := post(t, c, w.portal.URL+"/pair/confirm",
		url.Values{"state": {state[1]}, "code": {"000000"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("wrong code status = %d", resp.StatusCode)
	}
	// Process still alive: the right code now succeeds.
	key, _ := otp.ParseURI(uri[1])
	code, _ := otp.TOTP(key.Secret, w.sim.Now(), key.Options)
	resp, _ = post(t, c, w.portal.URL+"/pair/confirm",
		url.Values{"state": {state[1]}, "code": {code}})
	if resp.StatusCode != 200 {
		t.Fatalf("retry status = %d", resp.StatusCode)
	}
}

func TestDoublePairingBlocked(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")
	pairSoft(t, w, c)
	resp, _ := post(t, c, w.portal.URL+"/pair/start", url.Values{"type": {"soft"}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double pair status = %d", resp.StatusCode)
	}
}

// pairSoft drives a complete soft pairing and returns the secret.
func pairSoft(t testing.TB, w *world, c *http.Client) []byte {
	t.Helper()
	_, body := post(t, c, w.portal.URL+"/pair/start", url.Values{"type": {"soft"}})
	state := stateRe.FindStringSubmatch(body)
	uri := uriRe.FindStringSubmatch(body)
	if state == nil || uri == nil {
		t.Fatalf("pair start body = %q", body)
	}
	key, err := otp.ParseURI(uri[1])
	if err != nil {
		t.Fatal(err)
	}
	code, _ := otp.TOTP(key.Secret, w.sim.Now(), key.Options)
	resp, b2 := post(t, c, w.portal.URL+"/pair/confirm",
		url.Values{"state": {state[1]}, "code": {code}})
	if resp.StatusCode != 200 {
		t.Fatalf("pairSoft confirm = %d %q", resp.StatusCode, b2)
	}
	return key.Secret
}

func TestUnpairWithCurrentCode(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")
	secret := pairSoft(t, w, c)

	// Wrong code refused.
	resp, _ := post(t, c, w.portal.URL+"/unpair/confirm", url.Values{"code": {"000000"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("wrong unpair code status = %d", resp.StatusCode)
	}
	// Current code unpairs. (Advance past the pairing confirmation's
	// consumed window so the code is fresh.)
	w.sim.Advance(31 * time.Second)
	code, _ := otp.TOTP(secret, w.sim.Now(), w.otp.OTPOptions())
	resp, body := post(t, c, w.portal.URL+"/unpair/confirm", url.Values{"code": {code}})
	if resp.StatusCode != 200 || !strings.Contains(body, "unpaired") {
		t.Fatalf("unpair = %d %q", resp.StatusCode, body)
	}
	if p, _ := w.idm.Pairing("alice"); p != idm.PairingNone {
		t.Fatal("IDM not notified of unpair")
	}
	if w.otp.HasToken("alice") {
		t.Fatal("token survived unpair")
	}
}

func TestHardUnpairRequiresTicket(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "hanlon", "pw")
	w.otp.ImportHardToken("C200-0009", []byte("fob-secret-0009-----"))
	c := browser(t)
	login(t, w, c, "hanlon", "pw")
	_, body := post(t, c, w.portal.URL+"/pair/start",
		url.Values{"type": {"hard"}, "serial": {"C200-0009"}})
	state := stateRe.FindStringSubmatch(body)
	code, _ := otp.TOTP([]byte("fob-secret-0009-----"), w.sim.Now(), w.otp.OTPOptions())
	post(t, c, w.portal.URL+"/pair/confirm", url.Values{"state": {state[1]}, "code": {code}})

	resp, _ := post(t, c, w.portal.URL+"/unpair/confirm", url.Values{"code": {code}})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("hard unpair status = %d", resp.StatusCode)
	}
	resp, _ = post(t, c, w.portal.URL+"/unpair/email", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("hard unpair email status = %d", resp.StatusCode)
	}
}

func TestOutOfBandEmailUnpair(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")
	pairSoft(t, w, c)

	resp, _ := post(t, c, w.portal.URL+"/unpair/email", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("unpair email status = %d", resp.StatusCode)
	}
	body := w.email.lastBody()
	m := regexp.MustCompile(`token=(\S+)`).FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("no token in email body %q", body)
	}
	// "Following the URL in the email ... will allow the user to remove
	// the current MFA pairing." No session needed.
	anon := browser(t)
	resp, out := get(t, anon, w.portal.URL+"/unpair/oob?token="+m[1])
	if resp.StatusCode != 200 || !strings.Contains(out, "unpaired") {
		t.Fatalf("oob unpair = %d %q", resp.StatusCode, out)
	}
	if p, _ := w.idm.Pairing("alice"); p != idm.PairingNone {
		t.Fatal("oob unpair did not clear pairing")
	}
	// The link is single-purpose: second use finds nothing to unpair.
	resp, _ = get(t, anon, w.portal.URL+"/unpair/oob?token="+m[1])
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("replayed oob status = %d", resp.StatusCode)
	}
}

func TestOOBLinkForgeryAndExpiry(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")
	pairSoft(t, w, c)
	post(t, c, w.portal.URL+"/unpair/email", nil)
	m := regexp.MustCompile(`token=(\S+)`).FindStringSubmatch(w.email.lastBody())

	// Tampered token refused.
	anon := browser(t)
	resp, _ := get(t, anon, w.portal.URL+"/unpair/oob?token=AAAA"+m[1][4:])
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("forged token status = %d", resp.StatusCode)
	}
	// Expired link refused.
	w.sim.Advance(OOBTTL + time.Hour)
	resp, _ = get(t, anon, w.portal.URL+"/unpair/oob?token="+m[1])
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("expired token status = %d", resp.StatusCode)
	}
	if p, _ := w.idm.Pairing("alice"); p != idm.PairingSoft {
		t.Fatal("pairing removed by bad link")
	}
}

func TestSessionExpiry(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")
	if resp, _ := get(t, c, w.portal.URL+"/home"); resp.StatusCode != 200 {
		t.Fatal("fresh session rejected")
	}
	w.sim.Advance(13 * time.Hour) // TTL is 12h
	if resp, _ := get(t, c, w.portal.URL+"/home"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatal("expired session accepted")
	}
}

func TestLogout(t *testing.T) {
	w := newWorld(t)
	w.addUser(t, "alice", "pw")
	c := browser(t)
	login(t, w, c, "alice", "pw")
	post(t, c, w.portal.URL+"/logout", nil)
	if resp, _ := get(t, c, w.portal.URL+"/home"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatal("session survived logout")
	}
}
