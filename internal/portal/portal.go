// Package portal implements the web-based user portal of §3.5: the single
// place users manage their MFA device pairing. It reproduces the paper's
// flows in full:
//
//   - session login against the IDM, with the interstitial "splash screen"
//     for unpaired users, dismissible but re-shown on every login;
//   - a stateful pairing process per session (soft QR scan, SMS phone
//     number, hard-token serial), hardened against refreshes, form
//     resubmission, and the back button: any restart aborts the pending
//     pairing and the user starts from the beginning;
//   - token-code confirmation against the OTP back end via the
//     digest-authenticated admin REST API;
//   - unpairing with possession proof (current code), the signed-URL
//     out-of-band email path for lost devices, and the hard-token
//     exception (support ticket only);
//   - notifications to the identity-management back end on every pairing
//     change.
package portal

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/cryptoutil"
	"openmfa/internal/eventstream"
	"openmfa/internal/idm"
	"openmfa/internal/obs"
	"openmfa/internal/otpd"
	"openmfa/internal/qr"
	"openmfa/internal/sms"
)

// EmailSender delivers out-of-band mail (unpair links). Tests capture it.
type EmailSender interface {
	SendEmail(to, subject, body string) error
}

// EmailFunc adapts a function.
type EmailFunc func(to, subject, body string) error

// SendEmail implements EmailSender.
func (f EmailFunc) SendEmail(to, subject, body string) error { return f(to, subject, body) }

// Config wires a Portal.
type Config struct {
	IDM   *idm.IDM          // required
	Admin *otpd.AdminClient // required
	Email EmailSender       // required for out-of-band unpairing
	Clock clock.Clock       // nil = real time
	// SessionKey signs cookies and out-of-band URLs (required).
	SessionKey []byte
	// BaseURL prefixes signed links in email.
	BaseURL string
	// SessionTTL defaults to 12 hours.
	SessionTTL time.Duration
	// Obs, when set, mounts /metrics, /healthz, and /debug/pprof on the
	// portal mux and counts requests per route and status class.
	Obs *obs.Registry
	// Events, when set, receives a pairing-confirmed event per successful
	// enrolment on the operational analytics bus.
	Events *eventstream.Bus
	// HealthChecks are mounted alongside Obs on /healthz; any failing
	// check degrades the endpoint to 503.
	HealthChecks []obs.HealthCheck
	// ExtraMounts, when set, are applied to the portal mux after the
	// application routes (e.g. authwatch's /debug/authwatch handler).
	ExtraMounts []func(*http.ServeMux)
}

// Portal is the web application.
type Portal struct {
	idm    *idm.IDM
	admin  *otpd.AdminClient
	email  EmailSender
	clk    clock.Clock
	signer *cryptoutil.Signer
	base   string
	ttl    time.Duration
	obs    *obs.Registry
	events *eventstream.Bus
	checks []obs.HealthCheck
	mounts []func(*http.ServeMux)

	mu       sync.Mutex
	sessions map[string]*session
}

type session struct {
	user    string
	expires time.Time
	pending *pairingState
}

// pairingState is the stateful, no-refresh pairing operation.
type pairingState struct {
	typ    otpd.TokenType
	nonce  string
	secret string // base32, soft only (displayed as QR)
	uri    string
	serial string
	phone  string
}

// New builds the Portal.
func New(cfg Config) (*Portal, error) {
	if cfg.IDM == nil || cfg.Admin == nil {
		return nil, errors.New("portal: IDM and Admin required")
	}
	if len(cfg.SessionKey) == 0 {
		return nil, errors.New("portal: SessionKey required")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	ttl := cfg.SessionTTL
	if ttl == 0 {
		ttl = 12 * time.Hour
	}
	return &Portal{
		idm:      cfg.IDM,
		admin:    cfg.Admin,
		email:    cfg.Email,
		clk:      clk,
		signer:   cryptoutil.NewSigner(cfg.SessionKey),
		base:     strings.TrimSuffix(cfg.BaseURL, "/"),
		ttl:      ttl,
		obs:      cfg.Obs,
		events:   cfg.Events,
		checks:   cfg.HealthChecks,
		mounts:   cfg.ExtraMounts,
		sessions: make(map[string]*session),
	}, nil
}

// Handler returns the portal's HTTP mux. With Config.Obs set, the ops
// endpoints (/metrics, /healthz, /debug/pprof) are mounted alongside the
// application routes and every application request increments
// portal_http_requests_total{route,code}.
func (p *Portal) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, p.counted(pattern, h))
	}
	handle("POST /login", p.handleLogin)
	handle("POST /logout", p.handleLogout)
	handle("GET /home", p.auth(p.handleHome))
	handle("GET /splash", p.auth(p.handleSplash))
	handle("GET /pair", p.auth(p.handlePairPage))
	handle("POST /pair/start", p.auth(p.handlePairStart))
	handle("POST /pair/confirm", p.auth(p.handlePairConfirm))
	handle("POST /unpair/confirm", p.auth(p.handleUnpairConfirm))
	handle("POST /unpair/email", p.auth(p.handleUnpairEmail))
	handle("GET /unpair/oob", p.handleUnpairOOB)
	if p.obs != nil {
		obs.Mount(mux, p.obs, p.checks...)
	}
	for _, m := range p.mounts {
		m(mux)
	}
	return mux
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// counted wraps h with per-route, per-status-class request counting.
func (p *Portal) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	if p.obs == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		p.obs.Counter("portal_http_requests_total",
			"route", route, "code", strconv.Itoa(rec.code)).Inc()
	}
}

const cookieName = "portal_session"

// --- session plumbing ---

func (p *Portal) handleLogin(w http.ResponseWriter, r *http.Request) {
	user := strings.ToLower(r.PostFormValue("username"))
	pass := r.PostFormValue("password")
	if err := p.idm.Authenticate(user, pass); err != nil {
		http.Error(w, "bad credentials", http.StatusUnauthorized)
		return
	}
	sid := cryptoutil.RandomHex(16)
	now := p.clk.Now()
	p.mu.Lock()
	p.sessions[sid] = &session{user: user, expires: now.Add(p.ttl)}
	for id, s := range p.sessions { // opportunistic GC
		if now.After(s.expires) {
			delete(p.sessions, id)
		}
	}
	p.mu.Unlock()
	http.SetCookie(w, &http.Cookie{
		Name: cookieName, Path: "/", HttpOnly: true,
		Value: p.signer.Sign(sid, now.Add(p.ttl)),
	})
	// "If no multi-factor device is configured, then the user is
	// directed to an interstitial page" — on every log in.
	pairing, err := p.idm.Pairing(user)
	if err == nil && pairing == idm.PairingNone {
		http.Redirect(w, r, "/splash", http.StatusSeeOther)
		return
	}
	http.Redirect(w, r, "/home", http.StatusSeeOther)
}

func (p *Portal) handleLogout(w http.ResponseWriter, r *http.Request) {
	if s, sid := p.session(r); s != nil {
		p.mu.Lock()
		delete(p.sessions, sid)
		p.mu.Unlock()
	}
	http.SetCookie(w, &http.Cookie{Name: cookieName, Path: "/", MaxAge: -1})
	fmt.Fprintln(w, "logged out")
}

func (p *Portal) session(r *http.Request) (*session, string) {
	c, err := r.Cookie(cookieName)
	if err != nil {
		return nil, ""
	}
	sid, err := p.signer.Verify(c.Value, p.clk.Now())
	if err != nil {
		return nil, ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.sessions[sid]
	if s == nil || p.clk.Now().After(s.expires) {
		return nil, ""
	}
	return s, sid
}

func (p *Portal) auth(fn func(http.ResponseWriter, *http.Request, *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s, _ := p.session(r)
		if s == nil {
			http.Error(w, "not logged in", http.StatusUnauthorized)
			return
		}
		fn(w, r, s)
	}
}

// --- pages ---

func (p *Portal) handleHome(w http.ResponseWriter, r *http.Request, s *session) {
	pairing, _ := p.idm.Pairing(s.user)
	fmt.Fprintf(w, "user: %s\npairing: %s\n", s.user, pairing)
}

func (p *Portal) handleSplash(w http.ResponseWriter, r *http.Request, s *session) {
	// The splash explains the requirement and links to pairing. It is
	// dismissible (the user simply navigates to /home) but will be shown
	// again at next login.
	fmt.Fprintf(w, "Multi-factor authentication is required for system entry.\n"+
		"Pair a device now: %s/pair\nDismiss: %s/home\n", p.base, p.base)
}

func (p *Portal) handlePairPage(w http.ResponseWriter, r *http.Request, s *session) {
	// "If a user refreshes in the middle of the process ... the process
	// is aborted and the user will have to restart from the beginning."
	p.abortPending(s)
	pairing, _ := p.idm.Pairing(s.user)
	fmt.Fprintf(w, "current pairing: %s\noptions: soft sms hard\n", pairing)
}

// abortPending discards a half-finished pairing, removing the provisional
// token from the back end.
func (p *Portal) abortPending(s *session) {
	p.mu.Lock()
	pending := s.pending
	s.pending = nil
	p.mu.Unlock()
	if pending != nil {
		p.admin.Remove(s.user) // best effort; token was provisional
	}
}

func (p *Portal) handlePairStart(w http.ResponseWriter, r *http.Request, s *session) {
	p.abortPending(s) // restarting the process aborts the previous one

	if pairing, _ := p.idm.Pairing(s.user); pairing != idm.PairingNone {
		http.Error(w, "a device is already paired; unpair it first", http.StatusConflict)
		return
	}
	typ := otpd.TokenType(r.PostFormValue("type"))
	st := &pairingState{typ: typ, nonce: cryptoutil.RandomHex(8)}

	switch typ {
	case otpd.TokenSoft:
		enr, err := p.admin.Init(s.user, otpd.TokenSoft, "", "")
		if err != nil {
			p.adminError(w, err)
			return
		}
		st.secret, st.uri = enr.Secret, enr.URI
	case otpd.TokenSMS:
		phone := r.PostFormValue("phone")
		if !sms.ValidUSNumber(phone) {
			http.Error(w, "enter a ten-digit, US-based phone number", http.StatusBadRequest)
			return
		}
		if _, err := p.admin.Init(s.user, otpd.TokenSMS, phone, ""); err != nil {
			p.adminError(w, err)
			return
		}
		st.phone = phone
		// "The portal then triggers the LinOTP server to send a token
		// code to the user via SMS."
		if _, _, err := p.admin.TriggerSMS(s.user); err != nil {
			p.admin.Remove(s.user)
			p.adminError(w, err)
			return
		}
	case otpd.TokenHard:
		serial := strings.TrimSpace(r.PostFormValue("serial"))
		if serial == "" {
			http.Error(w, "enter the serial number on the back of the token", http.StatusBadRequest)
			return
		}
		if _, err := p.admin.Init(s.user, otpd.TokenHard, "", serial); err != nil {
			p.adminError(w, err)
			return
		}
		st.serial = serial
	default:
		http.Error(w, "unknown device type", http.StatusBadRequest)
		return
	}

	p.mu.Lock()
	s.pending = st
	p.mu.Unlock()

	switch typ {
	case otpd.TokenSoft:
		// The QR code "contains the user's secret key encoded as an
		// image": render the real symbol plus its payload.
		fmt.Fprintf(w, "state: %s\nscan this QR payload: %s\nthen enter the code shown in the app\n", st.nonce, st.uri)
		if code, err := qr.Encode(st.uri, qr.L); err == nil {
			fmt.Fprintf(w, "\n%s\n", code.Render())
		}
	case otpd.TokenSMS:
		fmt.Fprintf(w, "state: %s\nan SMS was sent to %s; enter the code to confirm receipt\n", st.nonce, st.phone)
	case otpd.TokenHard:
		fmt.Fprintf(w, "state: %s\nenter the current code on fob %s to confirm it survived shipment\n", st.nonce, st.serial)
	}
}

func (p *Portal) handlePairConfirm(w http.ResponseWriter, r *http.Request, s *session) {
	p.mu.Lock()
	st := s.pending
	p.mu.Unlock()
	if st == nil {
		// Replay/back-button: no live pairing process.
		http.Error(w, "no pairing in progress; start again", http.StatusGone)
		return
	}
	if got := r.PostFormValue("state"); got != st.nonce {
		// A stale form post from an aborted process.
		http.Error(w, "stale pairing form; start again", http.StatusGone)
		return
	}
	code := r.PostFormValue("code")
	ok, msg, err := p.admin.Validate(s.user, code)
	if err != nil {
		p.adminError(w, err)
		return
	}
	if !ok {
		// Wrong code: the process stays alive for another try.
		http.Error(w, "code did not validate: "+msg, http.StatusUnprocessableEntity)
		return
	}
	p.mu.Lock()
	s.pending = nil
	p.mu.Unlock()
	// "the identity management back end is notified that the user has
	// paired using a ... token device."
	if err := p.idm.SetPairing(s.user, pairingFor(st.typ)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if p.events != nil {
		p.events.Publish(eventstream.Event{
			Time: p.clk.Now(), Type: eventstream.TypeEnroll, Component: "portal",
			User: s.user, Method: string(st.typ), Result: "paired",
		})
	}
	fmt.Fprintf(w, "paired: %s\n", st.typ)
}

func pairingFor(t otpd.TokenType) idm.PairingStatus {
	switch t {
	case otpd.TokenSoft:
		return idm.PairingSoft
	case otpd.TokenSMS:
		return idm.PairingSMS
	case otpd.TokenHard:
		return idm.PairingHard
	case otpd.TokenTraining:
		return idm.PairingTraining
	default:
		return idm.PairingNone
	}
}

// --- unpairing ---

func (p *Portal) handleUnpairConfirm(w http.ResponseWriter, r *http.Request, s *session) {
	pairing, err := p.idm.Pairing(s.user)
	if err != nil || pairing == idm.PairingNone {
		http.Error(w, "no device paired", http.StatusNotFound)
		return
	}
	if pairing == idm.PairingHard {
		// "Support is not provided for the unpairing of a hard token
		// device via the portal. Instead ... submit a request directly
		// to the center's user support ticketing system."
		http.Error(w, "hard tokens are unpaired via a support ticket", http.StatusForbidden)
		return
	}
	// Possession proof: the current token code.
	code := r.PostFormValue("code")
	ok, msg, err := p.admin.Validate(s.user, code)
	if err != nil {
		p.adminError(w, err)
		return
	}
	if !ok {
		http.Error(w, "code did not validate: "+msg, http.StatusUnprocessableEntity)
		return
	}
	if err := p.unpair(s.user); err != nil {
		p.adminError(w, err)
		return
	}
	fmt.Fprintln(w, "device unpaired")
}

func (p *Portal) unpair(user string) error {
	if err := p.admin.Remove(user); err != nil {
		return err
	}
	return p.idm.SetPairing(user, idm.PairingNone)
}

// OOBTTL is the lifetime of out-of-band unpair links.
const OOBTTL = 24 * time.Hour

func (p *Portal) handleUnpairEmail(w http.ResponseWriter, r *http.Request, s *session) {
	if p.email == nil {
		http.Error(w, "email unavailable", http.StatusServiceUnavailable)
		return
	}
	acct, err := p.idm.Lookup(s.user)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if acct.Pairing == idm.PairingHard {
		http.Error(w, "hard tokens are unpaired via a support ticket", http.StatusForbidden)
		return
	}
	// "The user is sent an email to their associated account email
	// address that contains a signed URL."
	tok := p.signer.Sign("unpair:"+s.user, p.clk.Now().Add(OOBTTL))
	link := fmt.Sprintf("%s/unpair/oob?token=%s", p.base, tok)
	body := fmt.Sprintf("Follow this link to remove your MFA device pairing:\n%s\n", link)
	if err := p.email.SendEmail(acct.Email, "MFA device unpairing request", body); err != nil {
		http.Error(w, "could not send email", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "unpairing email sent")
}

func (p *Portal) handleUnpairOOB(w http.ResponseWriter, r *http.Request) {
	payload, err := p.signer.Verify(r.URL.Query().Get("token"), p.clk.Now())
	if err != nil {
		http.Error(w, "invalid or expired link", http.StatusForbidden)
		return
	}
	user, ok := strings.CutPrefix(payload, "unpair:")
	if !ok {
		http.Error(w, "invalid link", http.StatusForbidden)
		return
	}
	pairing, err := p.idm.Pairing(user)
	if err != nil || pairing == idm.PairingNone {
		http.Error(w, "no device paired", http.StatusNotFound)
		return
	}
	if pairing == idm.PairingHard {
		http.Error(w, "hard tokens are unpaired via a support ticket", http.StatusForbidden)
		return
	}
	if err := p.unpair(user); err != nil {
		p.adminError(w, err)
		return
	}
	fmt.Fprintln(w, "device unpaired")
}

func (p *Portal) adminError(w http.ResponseWriter, err error) {
	var apiErr *otpd.APIError
	if errors.As(err, &apiErr) {
		http.Error(w, apiErr.Message, apiErr.Status)
		return
	}
	http.Error(w, "back end unavailable", http.StatusBadGateway)
}
