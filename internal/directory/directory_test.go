package directory

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func seed(t *testing.T) *Dir {
	t.Helper()
	d := New()
	add := func(uid, pairing, class string) {
		err := d.Add(UserDN(uid), map[string][]string{
			"uid":         {uid},
			"objectClass": {"person", class},
			"mfaPairing":  {pairing},
			"mail":        {uid + "@hpc.example"},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add("cproctor", "soft", "staff")
	add("storm", "sms", "staff")
	add("hanlon", "hard", "staff")
	add("gateway1", "none", "gateway")
	if err := d.Add("ou=people,dc=hpc,dc=example", map[string][]string{"ou": {"people"}}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAddLookupDelete(t *testing.T) {
	d := seed(t)
	e, err := d.Lookup(UserDN("cproctor"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Get("mfaPairing") != "soft" {
		t.Fatalf("mfaPairing = %q", e.Get("mfaPairing"))
	}
	if err := d.Add(UserDN("cproctor"), nil); err != ErrExists {
		t.Fatalf("duplicate add: %v", err)
	}
	if err := d.Delete(UserDN("cproctor")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup(UserDN("cproctor")); err != ErrNoEntry {
		t.Fatalf("after delete: %v", err)
	}
	if err := d.Delete(UserDN("cproctor")); err != ErrNoEntry {
		t.Fatalf("double delete: %v", err)
	}
	if err := d.Add("", nil); err != ErrBadDN {
		t.Fatalf("empty DN: %v", err)
	}
}

func TestLookupIsCaseInsensitiveOnDN(t *testing.T) {
	d := seed(t)
	e, err := d.Lookup("UID=CPROCTOR, OU=People, DC=hpc, DC=example")
	if err != nil {
		t.Fatal(err)
	}
	if e.Get("uid") != "cproctor" {
		t.Fatal("wrong entry")
	}
}

func TestModify(t *testing.T) {
	d := seed(t)
	// The portal flips a user's pairing type after (un)pairing.
	if err := d.Modify(UserDN("storm"), map[string][]string{"mfaPairing": {"soft"}}); err != nil {
		t.Fatal(err)
	}
	e, _ := d.Lookup(UserDN("storm"))
	if e.Get("mfaPairing") != "soft" {
		t.Fatal("modify did not stick")
	}
	// Empty slice deletes the attribute.
	if err := d.Modify(UserDN("storm"), map[string][]string{"mail": nil}); err != nil {
		t.Fatal(err)
	}
	e, _ = d.Lookup(UserDN("storm"))
	if e.Get("mail") != "" {
		t.Fatal("attribute not deleted")
	}
	if err := d.Modify(UserDN("ghost"), nil); err != ErrNoEntry {
		t.Fatalf("modify missing: %v", err)
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	d := seed(t)
	e, _ := d.Lookup(UserDN("hanlon"))
	e.Attrs["mfapairing"][0] = "tampered"
	e2, _ := d.Lookup(UserDN("hanlon"))
	if e2.Get("mfaPairing") != "hard" {
		t.Fatal("mutation leaked into the directory")
	}
}

func mustFilter(t *testing.T, s string) Filter {
	t.Helper()
	f, err := ParseFilter(s)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", s, err)
	}
	return f
}

func TestSearchEquality(t *testing.T) {
	d := seed(t)
	got := d.Search(PeopleBase, ScopeSub, mustFilter(t, "(uid=storm)"), nil)
	if len(got) != 1 || got[0].Get("uid") != "storm" {
		t.Fatalf("got %d entries", len(got))
	}
	// Equality is case-insensitive like LDAP's default matching rule.
	got = d.Search(PeopleBase, ScopeSub, mustFilter(t, "(uid=STORM)"), nil)
	if len(got) != 1 {
		t.Fatal("case-insensitive match failed")
	}
}

func TestSearchCompound(t *testing.T) {
	d := seed(t)
	got := d.Search(PeopleBase, ScopeSub,
		mustFilter(t, "(&(objectClass=staff)(!(mfaPairing=none)))"), nil)
	if len(got) != 3 {
		t.Fatalf("AND/NOT: got %d entries, want 3", len(got))
	}
	got = d.Search(PeopleBase, ScopeSub,
		mustFilter(t, "(|(mfaPairing=soft)(mfaPairing=hard))"), nil)
	if len(got) != 2 {
		t.Fatalf("OR: got %d entries, want 2", len(got))
	}
}

func TestSearchPresenceAndSubstring(t *testing.T) {
	d := seed(t)
	got := d.Search(PeopleBase, ScopeSub, mustFilter(t, "(mfaPairing=*)"), nil)
	if len(got) != 4 {
		t.Fatalf("presence: got %d, want 4", len(got))
	}
	got = d.Search(PeopleBase, ScopeSub, mustFilter(t, "(uid=c*)"), nil)
	if len(got) != 1 || got[0].Get("uid") != "cproctor" {
		t.Fatalf("prefix: got %d", len(got))
	}
	got = d.Search(PeopleBase, ScopeSub, mustFilter(t, "(mail=*@hpc.example)"), nil)
	if len(got) != 4 {
		t.Fatalf("suffix: got %d, want 4", len(got))
	}
	got = d.Search(PeopleBase, ScopeSub, mustFilter(t, "(uid=*an*)"), nil)
	if len(got) != 1 || got[0].Get("uid") != "hanlon" {
		t.Fatalf("middle: got %d", len(got))
	}
	got = d.Search(PeopleBase, ScopeSub, mustFilter(t, "(uid=c*or)"), nil)
	if len(got) != 1 {
		t.Fatalf("initial+final: got %d", len(got))
	}
}

func TestSearchScopes(t *testing.T) {
	d := seed(t)
	// Base scope on the OU returns only the OU entry.
	got := d.Search(PeopleBase, ScopeBase, nil, nil)
	if len(got) != 1 || got[0].DN != NormalizeDN(PeopleBase) {
		t.Fatalf("base scope: %v", got)
	}
	// One level: the four users.
	got = d.Search(PeopleBase, ScopeOne, nil, nil)
	if len(got) != 4 {
		t.Fatalf("one scope: %d", len(got))
	}
	// Sub: OU + users.
	got = d.Search(PeopleBase, ScopeSub, nil, nil)
	if len(got) != 5 {
		t.Fatalf("sub scope: %d", len(got))
	}
	// Results are DN-sorted.
	for i := 1; i < len(got); i++ {
		if got[i-1].DN > got[i].DN {
			t.Fatal("results not sorted")
		}
	}
}

func TestSearchAttrProjection(t *testing.T) {
	d := seed(t)
	got := d.Search(PeopleBase, ScopeSub, mustFilter(t, "(uid=storm)"), []string{"mfaPairing"})
	if len(got) != 1 {
		t.Fatal("no result")
	}
	if got[0].Get("mfaPairing") != "sms" {
		t.Fatal("projected attr missing")
	}
	if got[0].Get("mail") != "" {
		t.Fatal("unprojected attr leaked")
	}
}

func TestParseFilterErrors(t *testing.T) {
	bad := []string{
		"", "uid=x", "(uid=x", "(&)", "(|)", "((uid=x))",
		"(!(uid=x)", "(=x)", "(uid=x))", "(uid=x)(a=b)",
	}
	for _, s := range bad {
		if _, err := ParseFilter(s); err == nil {
			t.Errorf("ParseFilter(%q) succeeded, want error", s)
		}
	}
}

func TestFilterString(t *testing.T) {
	for _, s := range []string{
		"(uid=x)", "(uid=*)", "(&(a=1)(b=2))", "(|(a=1)(!(b=2)))", "(uid=a*b*c)",
	} {
		f := mustFilter(t, s)
		// Round-trip: parse(f.String()) matches the same entries.
		if _, err := ParseFilter(f.String()); err != nil {
			t.Errorf("String() of %q is unparseable: %q", s, f.String())
		}
	}
}

func TestClientServerEndToEnd(t *testing.T) {
	d := seed(t)
	srv := NewServer(d)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: srv.Addr().String()}

	// The PAM token module's actual query: pairing type for a user.
	entries, err := c.Search(PeopleBase, ScopeSub, "(uid=storm)", []string{"mfaPairing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Get("mfaPairing") != "sms" {
		t.Fatalf("search via client = %+v", entries)
	}

	// Lookup.
	e, err := c.Lookup(UserDN("hanlon"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Get("mfaPairing") != "hard" {
		t.Fatal("lookup mismatch")
	}

	// Add + modify + delete.
	if err := c.Add(UserDN("newuser"), map[string][]string{"uid": {"newuser"}, "mfaPairing": {"none"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Modify(UserDN("newuser"), map[string][]string{"mfaPairing": {"soft"}}); err != nil {
		t.Fatal(err)
	}
	e, err = c.Lookup(UserDN("newuser"))
	if err != nil || e.Get("mfaPairing") != "soft" {
		t.Fatalf("modify via client: %v %v", e, err)
	}
	if err := c.Delete(UserDN("newuser")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(UserDN("newuser")); err == nil {
		t.Fatal("entry survived delete")
	}
}

func TestClientServerErrors(t *testing.T) {
	d := seed(t)
	srv := NewServer(d)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: srv.Addr().String()}
	if _, err := c.Lookup(UserDN("nobody")); err == nil {
		t.Fatal("lookup of missing entry succeeded")
	}
	if _, err := c.Search(PeopleBase, ScopeSub, "(((", nil); err == nil {
		t.Fatal("bad filter accepted")
	}
	if err := c.Add(UserDN("cproctor"), nil); err == nil {
		t.Fatal("duplicate add via client succeeded")
	}
	// Dead server.
	bad := &Client{Addr: "127.0.0.1:1"}
	if _, err := bad.Lookup("x"); err == nil {
		t.Fatal("dead server lookup succeeded")
	}
}

func TestNormalizeDN(t *testing.T) {
	if NormalizeDN("UID=A, OU=B") != "uid=a,ou=b" {
		t.Fatalf("got %q", NormalizeDN("UID=A, OU=B"))
	}
}

// Property: every entry added under the people base is findable by uid
// equality filter.
func TestAddSearchProperty(t *testing.T) {
	f := func(ids []uint16) bool {
		d := New()
		seen := map[string]bool{}
		for _, id := range ids {
			uid := fmt.Sprintf("user%d", id)
			if seen[uid] {
				continue
			}
			seen[uid] = true
			if err := d.Add(UserDN(uid), map[string][]string{"uid": {uid}}); err != nil {
				return false
			}
		}
		for uid := range seen {
			flt, err := ParseFilter("(uid=" + uid + ")")
			if err != nil {
				return false
			}
			if len(d.Search(PeopleBase, ScopeSub, flt, nil)) != 1 {
				return false
			}
		}
		return d.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: substring filters agree with strings.Contains for simple
// "*needle*" patterns.
func TestSubstringProperty(t *testing.T) {
	f := func(hay, needle string) bool {
		hay = strings.Map(keepSimple, hay)
		needle = strings.Map(keepSimple, needle)
		if needle == "" {
			return true
		}
		d := New()
		d.Add("uid=x,ou=people,dc=hpc,dc=example", map[string][]string{"v": {hay}})
		flt, err := ParseFilter("(v=*" + needle + "*)")
		if err != nil {
			return true // pattern chars stripped below make this rare
		}
		got := len(d.Search(PeopleBase, ScopeSub, flt, nil)) == 1
		want := strings.Contains(strings.ToLower(hay), strings.ToLower(needle))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func keepSimple(r rune) rune {
	if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
		return r
	}
	return -1
}

func BenchmarkSearchEquality(b *testing.B) {
	d := New()
	for i := 0; i < 10000; i++ {
		d.Add(UserDN(fmt.Sprintf("user%05d", i)), map[string][]string{
			"uid": {fmt.Sprintf("user%05d", i)}, "mfapairing": {"soft"}})
	}
	flt, _ := ParseFilter("(uid=user09999)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(d.Search(PeopleBase, ScopeSub, flt, []string{"mfapairing"})) != 1 {
			b.Fatal("miss")
		}
	}
}
