package directory

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// wire protocol: one JSON object per line in each direction.

type request struct {
	Op      string              `json:"op"` // search | add | modify | delete | lookup
	DN      string              `json:"dn,omitempty"`
	Base    string              `json:"base,omitempty"`
	Scope   int                 `json:"scope,omitempty"`
	Filter  string              `json:"filter,omitempty"`
	Attrs   []string            `json:"attrs,omitempty"`
	Changes map[string][]string `json:"changes,omitempty"`
	Entry   map[string][]string `json:"entry,omitempty"`
}

type reply struct {
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	Entries []*Entry `json:"entries,omitempty"`
}

// Server exposes a Dir over TCP (JSON lines).
type Server struct {
	dir *Dir

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewServer wraps dir.
func NewServer(dir *Dir) *Server { return &Server{dir: dir} }

// ListenAndServe binds addr and serves until Close. Returns after binding.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and waits for connections to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			enc.Encode(reply{Error: "malformed request: " + err.Error()})
			return
		}
		enc.Encode(s.handle(&req))
	}
}

func (s *Server) handle(req *request) reply {
	switch req.Op {
	case "search":
		var f Filter
		if req.Filter != "" {
			var err error
			f, err = ParseFilter(req.Filter)
			if err != nil {
				return reply{Error: err.Error()}
			}
		}
		entries := s.dir.Search(req.Base, Scope(req.Scope), f, req.Attrs)
		return reply{OK: true, Entries: entries}
	case "lookup":
		e, err := s.dir.Lookup(req.DN)
		if err != nil {
			return reply{Error: err.Error()}
		}
		return reply{OK: true, Entries: []*Entry{e}}
	case "add":
		if err := s.dir.Add(req.DN, req.Entry); err != nil {
			return reply{Error: err.Error()}
		}
		return reply{OK: true}
	case "modify":
		if err := s.dir.Modify(req.DN, req.Changes); err != nil {
			return reply{Error: err.Error()}
		}
		return reply{OK: true}
	case "delete":
		if err := s.dir.Delete(req.DN); err != nil {
			return reply{Error: err.Error()}
		}
		return reply{OK: true}
	default:
		return reply{Error: fmt.Sprintf("directory: unknown op %q", req.Op)}
	}
}

// Client talks to a directory Server. The zero value is unusable; set Addr.
// Each call opens a short-lived connection, which keeps failure handling
// trivial at the call rates this infrastructure sees.
type Client struct {
	Addr    string
	Timeout time.Duration // per-call; zero means 2s
	// Dial overrides the TCP dial; nil means net.DialTimeout semantics.
	// Chaos tests inject a faultnet dialer here. The per-call deadline
	// still applies to the resulting connection either way.
	Dial func(network, addr string) (net.Conn, error)
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 2 * time.Second
}

// ErrServer wraps server-reported failures.
var ErrServer = errors.New("directory: server error")

func (c *Client) roundTrip(req *request) (*reply, error) {
	var conn net.Conn
	var err error
	if c.Dial != nil {
		conn, err = c.Dial("tcp", c.Addr)
	} else {
		conn, err = net.DialTimeout("tcp", c.Addr, c.timeout())
	}
	if err != nil {
		return nil, fmt.Errorf("directory: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.timeout()))
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(append(b, '\n')); err != nil {
		return nil, fmt.Errorf("directory: %w", err)
	}
	var rep reply
	dec := json.NewDecoder(bufio.NewReader(conn))
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("directory: %w", err)
	}
	if !rep.OK {
		return nil, fmt.Errorf("%w: %s", ErrServer, rep.Error)
	}
	return &rep, nil
}

// Search queries entries under base matching the filter string.
func (c *Client) Search(base string, scope Scope, filter string, attrs []string) ([]*Entry, error) {
	rep, err := c.roundTrip(&request{Op: "search", Base: base, Scope: int(scope), Filter: filter, Attrs: attrs})
	if err != nil {
		return nil, err
	}
	return rep.Entries, nil
}

// Lookup fetches a single entry by DN.
func (c *Client) Lookup(dn string) (*Entry, error) {
	rep, err := c.roundTrip(&request{Op: "lookup", DN: dn})
	if err != nil {
		return nil, err
	}
	if len(rep.Entries) == 0 {
		return nil, ErrNoEntry
	}
	return rep.Entries[0], nil
}

// Add inserts an entry.
func (c *Client) Add(dn string, attrs map[string][]string) error {
	_, err := c.roundTrip(&request{Op: "add", DN: dn, Entry: attrs})
	return err
}

// Modify replaces attributes on an entry.
func (c *Client) Modify(dn string, changes map[string][]string) error {
	_, err := c.roundTrip(&request{Op: "modify", DN: dn, Changes: changes})
	return err
}

// Delete removes an entry.
func (c *Client) Delete(dn string) error {
	_, err := c.roundTrip(&request{Op: "delete", DN: dn})
	return err
}
