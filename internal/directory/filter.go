// Package directory implements the LDAP-substitute identity directory
// (§3.1: LinOTP "extends an existing identity management database reserved
// for Lightweight Directory Access Protocol (LDAP) queries"; §3.4: "The
// token module queries for existing LDAP entries on the authenticating user
// to distinguish between possible authentication routes").
//
// Entries are attribute maps addressed by distinguished names. Searches use
// RFC 4515-style string filters — equality, presence, substring, AND, OR,
// NOT — over a DN subtree. The server speaks a JSON-lines protocol over
// TCP; full BER encoding is out of scope per DESIGN.md's substitution
// table, but query semantics are faithful.
package directory

import (
	"fmt"
	"strings"
)

// Filter matches directory entries.
type Filter interface {
	Matches(e *Entry) bool
	String() string
}

type andFilter struct{ subs []Filter }
type orFilter struct{ subs []Filter }
type notFilter struct{ sub Filter }
type eqFilter struct{ attr, value string }
type presentFilter struct{ attr string }
type substrFilter struct {
	attr    string
	initial string
	anys    []string
	final   string
}

func (f andFilter) Matches(e *Entry) bool {
	for _, s := range f.subs {
		if !s.Matches(e) {
			return false
		}
	}
	return true
}

func (f orFilter) Matches(e *Entry) bool {
	for _, s := range f.subs {
		if s.Matches(e) {
			return true
		}
	}
	return false
}

func (f notFilter) Matches(e *Entry) bool { return !f.sub.Matches(e) }

func (f eqFilter) Matches(e *Entry) bool {
	for _, v := range e.Attrs[f.attr] {
		if strings.EqualFold(v, f.value) {
			return true
		}
	}
	return false
}

func (f presentFilter) Matches(e *Entry) bool {
	return len(e.Attrs[f.attr]) > 0
}

func (f substrFilter) Matches(e *Entry) bool {
	for _, v := range e.Attrs[f.attr] {
		if f.matchValue(strings.ToLower(v)) {
			return true
		}
	}
	return false
}

func (f substrFilter) matchValue(v string) bool {
	if f.initial != "" {
		if !strings.HasPrefix(v, strings.ToLower(f.initial)) {
			return false
		}
		v = v[len(f.initial):]
	}
	for _, a := range f.anys {
		i := strings.Index(v, strings.ToLower(a))
		if i < 0 {
			return false
		}
		v = v[i+len(a):]
	}
	if f.final != "" {
		return strings.HasSuffix(v, strings.ToLower(f.final))
	}
	return true
}

func (f andFilter) String() string { return compound("&", f.subs) }
func (f orFilter) String() string  { return compound("|", f.subs) }
func (f notFilter) String() string { return "(!" + f.sub.String() + ")" }
func (f eqFilter) String() string  { return "(" + f.attr + "=" + f.value + ")" }
func (f presentFilter) String() string {
	return "(" + f.attr + "=*)"
}
func (f substrFilter) String() string {
	parts := []string{f.initial}
	parts = append(parts, f.anys...)
	parts = append(parts, f.final)
	return "(" + f.attr + "=" + strings.Join(parts, "*") + ")"
}

func compound(op string, subs []Filter) string {
	var sb strings.Builder
	sb.WriteString("(" + op)
	for _, s := range subs {
		sb.WriteString(s.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// ParseFilter parses an RFC 4515-style filter string.
func ParseFilter(s string) (Filter, error) {
	p := &filterParser{src: s}
	f, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("directory: trailing input at %d in %q", p.pos, s)
	}
	return f, nil
}

type filterParser struct {
	src string
	pos int
}

func (p *filterParser) skipSpace() {
	for p.pos < len(p.src) && p.src[p.pos] == ' ' {
		p.pos++
	}
}

func (p *filterParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("directory: expected %q at %d in %q", string(c), p.pos, p.src)
	}
	p.pos++
	return nil
}

func (p *filterParser) parse() (Filter, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("directory: unexpected end of filter %q", p.src)
	}
	switch p.src[p.pos] {
	case '&', '|':
		op := p.src[p.pos]
		p.pos++
		var subs []Filter
		for {
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ')' {
				break
			}
			f, err := p.parse()
			if err != nil {
				return nil, err
			}
			subs = append(subs, f)
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if len(subs) == 0 {
			return nil, fmt.Errorf("directory: empty %q filter in %q", string(op), p.src)
		}
		if op == '&' {
			return andFilter{subs}, nil
		}
		return orFilter{subs}, nil
	case '!':
		p.pos++
		sub, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return notFilter{sub}, nil
	default:
		return p.parseSimple()
	}
}

func (p *filterParser) parseSimple() (Filter, error) {
	eq := strings.IndexByte(p.src[p.pos:], '=')
	if eq < 0 {
		return nil, fmt.Errorf("directory: missing '=' in %q", p.src)
	}
	attr := strings.TrimSpace(p.src[p.pos : p.pos+eq])
	if attr == "" {
		return nil, fmt.Errorf("directory: empty attribute in %q", p.src)
	}
	p.pos += eq + 1
	end := strings.IndexByte(p.src[p.pos:], ')')
	if end < 0 {
		return nil, fmt.Errorf("directory: unterminated filter %q", p.src)
	}
	value := p.src[p.pos : p.pos+end]
	p.pos += end + 1

	attr = strings.ToLower(attr)
	switch {
	case value == "*":
		return presentFilter{attr}, nil
	case strings.Contains(value, "*"):
		parts := strings.Split(value, "*")
		f := substrFilter{attr: attr, initial: parts[0], final: parts[len(parts)-1]}
		for _, mid := range parts[1 : len(parts)-1] {
			if mid != "" {
				f.anys = append(f.anys, mid)
			}
		}
		return f, nil
	default:
		return eqFilter{attr, value}, nil
	}
}
