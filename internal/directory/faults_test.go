package directory

import (
	"errors"
	"testing"
	"time"

	"openmfa/internal/faultnet"
	"openmfa/internal/leakcheck"
)

// TestClientThroughFaultNet drives the directory protocol through the
// fault-injection layer: dial failures surface as dial errors, injected
// byte corruption makes the JSON parser fail closed, and a healthy wrapped
// path still works.
func TestClientThroughFaultNet(t *testing.T) {
	leakcheck.Check(t)
	d := seed(t)
	srv := NewServer(d)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Clean fault layer: everything works through the hook.
	clean := faultnet.New(faultnet.Config{Seed: 1})
	c := &Client{Addr: srv.Addr().String(), Timeout: 2 * time.Second, Dial: clean.Dial}
	if e, err := c.Lookup(UserDN("hanlon")); err != nil || e.Get("mfaPairing") != "hard" {
		t.Fatalf("lookup through clean fault layer: %v, %v", e, err)
	}

	// Injected dial failure is an error, not a hang.
	failing := faultnet.New(faultnet.Config{Seed: 1, DialFailRate: 1})
	c.Dial = failing.Dial
	if _, err := c.Lookup(UserDN("hanlon")); !errors.Is(err, faultnet.ErrDialFault) {
		t.Fatalf("err = %v, want ErrDialFault", err)
	}

	// Corrupted request bytes: the server cannot parse the JSON frame and
	// the call fails closed within the deadline instead of succeeding on
	// garbage.
	corrupting := faultnet.New(faultnet.Config{Seed: 1, CorruptRate: 1})
	c.Dial = corrupting.Dial
	c.Timeout = 500 * time.Millisecond
	start := time.Now()
	if _, err := c.Lookup(UserDN("hanlon")); err == nil {
		t.Fatal("corrupted round-trip succeeded")
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("corrupted call took %v; deadline not enforced", took)
	}

	// A partitioned directory server fails closed too.
	parted := faultnet.New(faultnet.Config{Seed: 1})
	parted.Partition(srv.Addr().String())
	c.Dial = parted.Dial
	if _, err := c.Lookup(UserDN("hanlon")); !errors.Is(err, faultnet.ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
}
