package directory

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Entry is a directory entry: a DN plus multi-valued attributes. Attribute
// names are stored lowercase.
type Entry struct {
	DN    string              `json:"dn"`
	Attrs map[string][]string `json:"attrs"`
}

// Get returns the first value of attr ("" when absent).
func (e *Entry) Get(attr string) string {
	v := e.Attrs[strings.ToLower(attr)]
	if len(v) == 0 {
		return ""
	}
	return v[0]
}

// clone deep-copies the entry.
func (e *Entry) clone() *Entry {
	out := &Entry{DN: e.DN, Attrs: make(map[string][]string, len(e.Attrs))}
	for k, v := range e.Attrs {
		vv := make([]string, len(v))
		copy(vv, v)
		out.Attrs[k] = vv
	}
	return out
}

// NormalizeDN lowercases and strips spaces around RDN components.
func NormalizeDN(dn string) string {
	parts := strings.Split(dn, ",")
	for i, p := range parts {
		parts[i] = strings.ToLower(strings.TrimSpace(p))
	}
	return strings.Join(parts, ",")
}

// Scope controls how much of the subtree a search covers.
type Scope int

// Search scopes, mirroring LDAP's base/one/sub.
const (
	ScopeBase Scope = iota
	ScopeOne
	ScopeSub
)

// Directory errors.
var (
	ErrExists  = errors.New("directory: entry already exists")
	ErrNoEntry = errors.New("directory: no such entry")
	ErrBadDN   = errors.New("directory: malformed DN")
)

// Dir is the in-memory directory, safe for concurrent use.
type Dir struct {
	mu      sync.RWMutex
	entries map[string]*Entry // keyed by normalized DN
}

// New creates an empty directory.
func New() *Dir {
	return &Dir{entries: make(map[string]*Entry)}
}

// Add inserts an entry. Attribute names are normalised to lowercase.
func (d *Dir) Add(dn string, attrs map[string][]string) error {
	ndn := NormalizeDN(dn)
	if ndn == "" {
		return ErrBadDN
	}
	e := &Entry{DN: ndn, Attrs: make(map[string][]string, len(attrs))}
	for k, v := range attrs {
		vv := make([]string, len(v))
		copy(vv, v)
		e.Attrs[strings.ToLower(k)] = vv
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[ndn]; ok {
		return ErrExists
	}
	d.entries[ndn] = e
	return nil
}

// Modify replaces the listed attributes on an existing entry. A nil or
// empty value slice deletes the attribute.
func (d *Dir) Modify(dn string, changes map[string][]string) error {
	ndn := NormalizeDN(dn)
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[ndn]
	if !ok {
		return ErrNoEntry
	}
	for k, v := range changes {
		k = strings.ToLower(k)
		if len(v) == 0 {
			delete(e.Attrs, k)
			continue
		}
		vv := make([]string, len(v))
		copy(vv, v)
		e.Attrs[k] = vv
	}
	return nil
}

// Delete removes an entry.
func (d *Dir) Delete(dn string) error {
	ndn := NormalizeDN(dn)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[ndn]; !ok {
		return ErrNoEntry
	}
	delete(d.entries, ndn)
	return nil
}

// Lookup fetches one entry by DN.
func (d *Dir) Lookup(dn string) (*Entry, error) {
	ndn := NormalizeDN(dn)
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.entries[ndn]
	if !ok {
		return nil, ErrNoEntry
	}
	return e.clone(), nil
}

// inScope reports whether dn falls within scope of base (both normalized).
func inScope(dn, base string, scope Scope) bool {
	if base == "" {
		switch scope {
		case ScopeBase:
			return dn == ""
		case ScopeOne:
			return !strings.Contains(dn, ",")
		default:
			return true
		}
	}
	switch scope {
	case ScopeBase:
		return dn == base
	case ScopeOne:
		if !strings.HasSuffix(dn, ","+base) {
			return false
		}
		rel := strings.TrimSuffix(dn, ","+base)
		return !strings.Contains(rel, ",")
	default: // ScopeSub
		return dn == base || strings.HasSuffix(dn, ","+base)
	}
}

// Search returns entries under base (per scope) matching filter, sorted by
// DN. If attrs is non-empty, returned entries carry only those attributes.
func (d *Dir) Search(base string, scope Scope, filter Filter, attrs []string) []*Entry {
	nbase := NormalizeDN(base)
	if base == "" {
		nbase = ""
	}
	d.mu.RLock()
	var out []*Entry
	for dn, e := range d.entries {
		if !inScope(dn, nbase, scope) {
			continue
		}
		if filter != nil && !filter.Matches(e) {
			continue
		}
		out = append(out, e.clone())
	}
	d.mu.RUnlock()
	if len(attrs) > 0 {
		want := make(map[string]bool, len(attrs))
		for _, a := range attrs {
			want[strings.ToLower(a)] = true
		}
		for _, e := range out {
			for k := range e.Attrs {
				if !want[k] {
					delete(e.Attrs, k)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DN < out[j].DN })
	return out
}

// Len reports the number of entries.
func (d *Dir) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// UserDN builds the conventional DN for a user account in this deployment.
func UserDN(uid string) string {
	return fmt.Sprintf("uid=%s,ou=people,dc=hpc,dc=example", strings.ToLower(uid))
}

// PeopleBase is the search base for user entries.
const PeopleBase = "ou=people,dc=hpc,dc=example"
