// Package faultnet is a deterministic network fault-injection layer for
// chaos-testing the auth stack. The paper's central operational claim is
// resiliency — "API calls communicate with RADIUS servers in a round-robin
// fashion to provide load balancing and resiliency if specific RADIUS
// servers are unavailable" (§3.4) — and its one reported production incident
// was a degraded network (§5: SMS codes delivered "in an expired state"
// after carrier retries). This package makes those conditions reproducible:
// it wraps net.Conn, net.PacketConn, and net.Listener with faults drawn
// from a seeded RNG, so the same seed replays the same misbehaviour.
//
// Fault model
//
// Datagram transports (UDP, the RADIUS legs) get the classic loss model:
// per-datagram drop, duplication, hold-one reordering, single-byte
// corruption, and per-peer partitions that silently blackhole both
// directions — exactly what a NAS sees when a farm member dies without
// closing anything.
//
// Stream transports (TCP: the sshd wire, the directory protocol) cannot
// lose bytes without breaking TCP's contract, so they get the stream
// failure modes instead: dial failures, injected connection resets,
// per-write delay, and byte corruption (which exercises the parsers'
// fail-closed paths).
//
// Delays sleep on an injectable clock.Sleeper, so chaos tests built on
// clock.Sim run in simulated time; the zero value uses the real clock.
// Every injected fault increments faultnet_injected_total{kind=...} when a
// registry is attached.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/obs"
)

// Injected fault errors. They are wrapped in *net.OpError so callers'
// net.Error handling sees them the way it would see real network failures.
var (
	// ErrDialFault is returned by Dial when a dial failure is injected.
	ErrDialFault = errors.New("faultnet: injected dial failure")
	// ErrReset is returned by stream reads/writes when a connection reset
	// is injected; the underlying connection is closed.
	ErrReset = errors.New("faultnet: injected connection reset")
	// ErrPartitioned is returned by stream operations against a
	// partitioned peer. Datagram operations never return it: partitions
	// blackhole datagrams silently, like real ones.
	ErrPartitioned = errors.New("faultnet: peer partitioned")
)

// Config sets the fault rates. All rates are probabilities in [0, 1];
// zero-value Config injects nothing and adds no delay.
type Config struct {
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Clock paces injected delays; nil means the real clock. Chaos tests
	// built on clock.Sim run injected latency in simulated time.
	Clock clock.Sleeper
	// Obs, when set, counts injected faults in
	// faultnet_injected_total{kind=...}.
	Obs *obs.Registry

	// Datagram faults (applied per datagram on UDP conns).
	DropRate    float64 // silently discard the datagram
	DupRate     float64 // send it twice
	ReorderRate float64 // hold it back until the next datagram is sent
	CorruptRate float64 // flip one byte (also applied per stream write)

	// Stream faults (applied to TCP conns).
	DialFailRate float64 // Dial returns ErrDialFault
	ResetRate    float64 // per-write probability of an injected reset

	// Delay and Jitter add base + uniform extra latency to every send
	// (datagram or stream write). Dials are never delayed: infrastructure
	// setup dials synchronously, and parking it on a simulated clock that
	// nothing is advancing yet would deadlock.
	Delay  time.Duration
	Jitter time.Duration
}

// Network owns the RNG, the partition set, and the counters. It is safe
// for concurrent use; the RNG is mutex-guarded so the draw sequence is a
// deterministic function of the seed and the interleaving of operations.
type Network struct {
	cfg Config
	clk clock.Sleeper

	mu    sync.Mutex
	rng   *rand.Rand
	parts map[string]bool

	cDrop, cDup, cReorder, cCorrupt  *obs.Counter
	cDelay, cPartition, cDial, cRset *obs.Counter
}

// New builds a Network from cfg.
func New(cfg Config) *Network {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	n := &Network{
		cfg:   cfg,
		clk:   clk,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		parts: make(map[string]bool),
	}
	if cfg.Obs != nil {
		c := func(kind string) *obs.Counter {
			return cfg.Obs.Counter("faultnet_injected_total", "kind", kind)
		}
		n.cDrop, n.cDup, n.cReorder, n.cCorrupt = c("drop"), c("dup"), c("reorder"), c("corrupt")
		n.cDelay, n.cPartition, n.cDial, n.cRset = c("delay"), c("partition"), c("dial_fail"), c("reset")
	}
	return n
}

// Partition blackholes all traffic to and from the peer address
// ("host:port" as the wrapped side sees it) until Heal.
func (n *Network) Partition(addr string) {
	n.mu.Lock()
	n.parts[addr] = true
	n.mu.Unlock()
}

// Heal removes a partition.
func (n *Network) Heal(addr string) {
	n.mu.Lock()
	delete(n.parts, addr)
	n.mu.Unlock()
}

// Partitioned reports whether addr is currently partitioned.
func (n *Network) Partitioned(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parts[addr]
}

// roll draws once from the seeded RNG.
func (n *Network) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	n.mu.Lock()
	hit := n.rng.Float64() < rate
	n.mu.Unlock()
	return hit
}

// sleepDelay blocks for Delay plus uniform Jitter on the injected clock.
func (n *Network) sleepDelay() {
	d := n.cfg.Delay
	if n.cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
		n.mu.Unlock()
	}
	if d <= 0 {
		return
	}
	n.cDelay.Inc()
	n.clk.Sleep(d)
}

// corrupt returns a copy of b with one byte flipped (position and mask
// drawn from the seeded RNG). Callers may reuse b, so it is never mutated.
func (n *Network) corrupt(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	if len(out) > 0 {
		n.mu.Lock()
		i := n.rng.Intn(len(out))
		mask := byte(1 + n.rng.Intn(255))
		n.mu.Unlock()
		out[i] ^= mask
	}
	n.cCorrupt.Inc()
	return out
}

// Dial opens a connection through the fault layer. Dials to partitioned
// peers and injected dial failures error; surviving connections are
// wrapped so per-operation faults apply. Datagram networks ("udp...")
// get the datagram fault model, everything else the stream model.
func (n *Network) Dial(network, addr string) (net.Conn, error) {
	if n.Partitioned(addr) {
		n.cPartition.Inc()
		return nil, &net.OpError{Op: "dial", Net: network, Err: ErrPartitioned}
	}
	if n.roll(n.cfg.DialFailRate) {
		n.cDial.Inc()
		return nil, &net.OpError{Op: "dial", Net: network, Err: ErrDialFault}
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return n.wrapConn(c, addr, isDatagram(network)), nil
}

// Listen binds a stream listener whose accepted connections pass through
// the fault layer (peer keyed by remote address).
func (n *Network) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{Listener: ln, n: n}, nil
}

// ListenPacket binds a packet listener whose datagrams pass through the
// fault layer in both directions.
func (n *Network) ListenPacket(network, addr string) (net.PacketConn, error) {
	pc, err := net.ListenPacket(network, addr)
	if err != nil {
		return nil, err
	}
	return n.WrapPacketConn(pc), nil
}

// WrapConn interposes the fault layer on an existing connection. peer is
// the partition key (normally c.RemoteAddr().String()).
func (n *Network) WrapConn(c net.Conn, peer string) net.Conn {
	return n.wrapConn(c, peer, isDatagram(c.RemoteAddr().Network()))
}

// WrapPacketConn interposes the datagram fault model on an existing
// packet connection.
func (n *Network) WrapPacketConn(pc net.PacketConn) net.PacketConn {
	return &faultPacketConn{PacketConn: pc, n: n}
}

func (n *Network) wrapConn(c net.Conn, peer string, datagram bool) net.Conn {
	return &faultConn{Conn: c, n: n, peer: peer, datagram: datagram}
}

func isDatagram(network string) bool {
	switch network {
	case "udp", "udp4", "udp6", "unixgram", "ip", "ip4", "ip6":
		return true
	}
	return false
}

// faultListener wraps accepted connections.
type faultListener struct {
	net.Listener
	n *Network
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.n.wrapConn(c, c.RemoteAddr().String(), false), nil
}

// faultConn applies per-operation faults to a single connection. For
// datagram conns each Write/Read is one datagram; for stream conns the
// stream fault model applies.
type faultConn struct {
	net.Conn
	n        *Network
	peer     string
	datagram bool

	mu    sync.Mutex
	stash []byte // reorder hold-back (datagram only)
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.datagram {
		return c.writeDatagram(b)
	}
	if c.n.Partitioned(c.peer) {
		c.n.cPartition.Inc()
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: ErrPartitioned}
	}
	if c.n.roll(c.n.cfg.ResetRate) {
		c.n.cRset.Inc()
		c.Conn.Close()
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: ErrReset}
	}
	c.n.sleepDelay()
	if c.n.roll(c.n.cfg.CorruptRate) {
		b = c.n.corrupt(b)
	}
	return c.Conn.Write(b)
}

func (c *faultConn) writeDatagram(b []byte) (int, error) {
	// Silent-loss cases report success, like a real lossy network: the
	// datagram left the host; nobody will ever know what became of it.
	if c.n.Partitioned(c.peer) {
		c.n.cPartition.Inc()
		return len(b), nil
	}
	if c.n.roll(c.n.cfg.DropRate) {
		c.n.cDrop.Inc()
		return len(b), nil
	}
	out := b
	if c.n.roll(c.n.cfg.CorruptRate) {
		out = c.n.corrupt(out)
	}
	if c.n.roll(c.n.cfg.ReorderRate) {
		// Hold this datagram until the next one is sent.
		held := make([]byte, len(out))
		copy(held, out)
		c.mu.Lock()
		prev := c.stash
		c.stash = held
		c.mu.Unlock()
		c.n.cReorder.Inc()
		if prev != nil {
			c.Conn.Write(prev)
		}
		return len(b), nil
	}
	c.n.sleepDelay()
	if _, err := c.Conn.Write(out); err != nil {
		return 0, err
	}
	if c.n.roll(c.n.cfg.DupRate) {
		c.n.cDup.Inc()
		c.Conn.Write(out)
	}
	c.mu.Lock()
	prev := c.stash
	c.stash = nil
	c.mu.Unlock()
	if prev != nil {
		c.Conn.Write(prev) // release the held datagram out of order
	}
	return len(b), nil
}

func (c *faultConn) Read(b []byte) (int, error) {
	for {
		nr, err := c.Conn.Read(b)
		if err != nil {
			return nr, err
		}
		if c.n.Partitioned(c.peer) {
			c.n.cPartition.Inc()
			if c.datagram {
				continue // swallow datagrams from a partitioned peer
			}
			return 0, &net.OpError{Op: "read", Net: "tcp", Err: ErrPartitioned}
		}
		return nr, nil
	}
}

// faultPacketConn applies the datagram fault model to an unconnected
// packet socket (the server side of the RADIUS farm).
type faultPacketConn struct {
	net.PacketConn
	n *Network

	mu    sync.Mutex
	stash []byte
	sAddr net.Addr
}

func (p *faultPacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	peer := addr.String()
	if p.n.Partitioned(peer) {
		p.n.cPartition.Inc()
		return len(b), nil
	}
	if p.n.roll(p.n.cfg.DropRate) {
		p.n.cDrop.Inc()
		return len(b), nil
	}
	out := b
	if p.n.roll(p.n.cfg.CorruptRate) {
		out = p.n.corrupt(out)
	}
	if p.n.roll(p.n.cfg.ReorderRate) {
		held := make([]byte, len(out))
		copy(held, out)
		p.mu.Lock()
		prevB, prevA := p.stash, p.sAddr
		p.stash, p.sAddr = held, addr
		p.mu.Unlock()
		p.n.cReorder.Inc()
		if prevB != nil {
			p.PacketConn.WriteTo(prevB, prevA)
		}
		return len(b), nil
	}
	p.n.sleepDelay()
	if _, err := p.PacketConn.WriteTo(out, addr); err != nil {
		return 0, err
	}
	if p.n.roll(p.n.cfg.DupRate) {
		p.n.cDup.Inc()
		p.PacketConn.WriteTo(out, addr)
	}
	p.mu.Lock()
	prevB, prevA := p.stash, p.sAddr
	p.stash, p.sAddr = nil, nil
	p.mu.Unlock()
	if prevB != nil {
		p.PacketConn.WriteTo(prevB, prevA)
	}
	return len(b), nil
}

func (p *faultPacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	for {
		nr, src, err := p.PacketConn.ReadFrom(b)
		if err != nil {
			return nr, src, err
		}
		if src != nil && p.n.Partitioned(src.String()) {
			p.n.cPartition.Inc()
			continue // blackhole inbound datagrams from partitioned peers
		}
		return nr, src, nil
	}
}
