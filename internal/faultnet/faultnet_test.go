package faultnet

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
)

// udpPair returns a raw listening socket and a faultnet-dialed conn to it.
func udpPair(t *testing.T, n *Network) (net.PacketConn, net.Conn) {
	t.Helper()
	srv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := n.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// recvAll drains datagrams until the socket is quiet for 100 ms.
func recvAll(t *testing.T, pc net.PacketConn) [][]byte {
	t.Helper()
	var out [][]byte
	buf := make([]byte, 2048)
	for {
		pc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		nr, _, err := pc.ReadFrom(buf)
		if err != nil {
			return out
		}
		b := make([]byte, nr)
		copy(b, buf[:nr])
		out = append(out, b)
	}
}

func TestDatagramDropAll(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	n := New(Config{Seed: 1, DropRate: 1, Obs: reg})
	srv, c := udpPair(t, n)
	for i := 0; i < 5; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatalf("write %d: %v", i, err) // loss is silent: writes succeed
		}
	}
	if got := recvAll(t, srv); len(got) != 0 {
		t.Fatalf("received %d datagrams through DropRate=1", len(got))
	}
	if v := reg.Counter("faultnet_injected_total", "kind", "drop").Value(); v != 5 {
		t.Fatalf("drop counter = %d, want 5", v)
	}
}

func TestDatagramDuplication(t *testing.T) {
	leakcheck.Check(t)
	n := New(Config{Seed: 1, DupRate: 1})
	srv, c := udpPair(t, n)
	for i := 0; i < 3; i++ {
		c.Write([]byte{byte(i)})
	}
	got := recvAll(t, srv)
	if len(got) != 6 {
		t.Fatalf("received %d datagrams, want 6 (every send duplicated)", len(got))
	}
}

func TestDatagramCorruption(t *testing.T) {
	leakcheck.Check(t)
	n := New(Config{Seed: 1, CorruptRate: 1})
	srv, c := udpPair(t, n)
	payload := []byte("authenticator-protected-payload")
	orig := append([]byte(nil), payload...)
	c.Write(payload)
	got := recvAll(t, srv)
	if len(got) != 1 {
		t.Fatalf("received %d datagrams", len(got))
	}
	if len(got[0]) != len(orig) {
		t.Fatalf("corrupted length %d != %d", len(got[0]), len(orig))
	}
	if bytes.Equal(got[0], orig) {
		t.Fatal("datagram not corrupted")
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("caller's buffer was mutated")
	}
	// Exactly one byte differs.
	diff := 0
	for i := range orig {
		if got[0][i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want 1", diff)
	}
}

func TestDatagramReorder(t *testing.T) {
	leakcheck.Check(t)
	// Seed 6: first draw 0.358 (< 0.5: hold A), second 0.845 (>= 0.5:
	// send B, then release A) — verified deterministic for math/rand.
	n := New(Config{Seed: 6, ReorderRate: 0.5})
	srv, c := udpPair(t, n)
	c.Write([]byte("A"))
	c.Write([]byte("B"))
	got := recvAll(t, srv)
	if len(got) != 2 || string(got[0]) != "B" || string(got[1]) != "A" {
		t.Fatalf("order = %q, want [B A]", got)
	}
}

func TestPartitionBlackholesBothDirections(t *testing.T) {
	leakcheck.Check(t)
	n := New(Config{Seed: 1})
	srv, c := udpPair(t, n)
	peer := srv.LocalAddr().String()

	// Healthy first; learn the client's address from the datagram.
	c.Write([]byte("hello"))
	buf := make([]byte, 64)
	srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	nr, clientAddr, err := srv.ReadFrom(buf)
	if err != nil || string(buf[:nr]) != "hello" {
		t.Fatalf("pre-partition delivery failed: %q, %v", buf[:nr], err)
	}

	n.Partition(peer)
	c.Write([]byte("lost"))
	if got := recvAll(t, srv); len(got) != 0 {
		t.Fatal("datagram crossed a partition")
	}
	// Reverse direction: the server answers, the client must not see it.
	srv.WriteTo([]byte("reply"), clientAddr)
	c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := c.Read(make([]byte, 64)); err == nil {
		t.Fatal("read from partitioned peer succeeded")
	}

	n.Heal(peer)
	c.Write([]byte("back"))
	if got := recvAll(t, srv); len(got) != 1 || string(got[0]) != "back" {
		t.Fatalf("post-heal delivery = %q", got)
	}
	srv.WriteTo([]byte("again"), clientAddr)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	nr, err = c.Read(buf)
	if err != nil || string(buf[:nr]) != "again" {
		t.Fatalf("post-heal reverse delivery = %q, %v", buf[:nr], err)
	}
}

func TestStreamDialFailureAndReset(t *testing.T) {
	leakcheck.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	nFail := New(Config{Seed: 1, DialFailRate: 1})
	if _, err := nFail.Dial("tcp", ln.Addr().String()); !errors.Is(err, ErrDialFault) {
		t.Fatalf("dial err = %v, want ErrDialFault", err)
	}

	nReset := New(Config{Seed: 1, ResetRate: 1})
	c, err := nReset.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("write err = %v, want ErrReset", err)
	}
}

func TestStreamPartitionErrorsWrites(t *testing.T) {
	leakcheck.Check(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	n := New(Config{Seed: 1})
	c, err := n.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-accepted
	defer srv.Close()

	n.Partition(ln.Addr().String())
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write err = %v, want ErrPartitioned", err)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	leakcheck.Check(t)
	run := func() []int64 {
		reg := obs.NewRegistry()
		n := New(Config{Seed: 42, DropRate: 0.3, DupRate: 0.2, CorruptRate: 0.1, Obs: reg})
		srv, c := udpPair(t, n)
		for i := 0; i < 200; i++ {
			c.Write([]byte{byte(i)})
		}
		recvAll(t, srv)
		return []int64{
			reg.Counter("faultnet_injected_total", "kind", "drop").Value(),
			reg.Counter("faultnet_injected_total", "kind", "dup").Value(),
			reg.Counter("faultnet_injected_total", "kind", "corrupt").Value(),
		}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged under the same seed: %v vs %v", a, b)
		}
	}
	if a[0] == 0 {
		t.Fatal("DropRate=0.3 over 200 sends injected nothing")
	}
}

func TestDelayRunsOnSimulatedClock(t *testing.T) {
	leakcheck.Check(t)
	sim := clock.NewSim(time.Date(2016, 10, 10, 9, 0, 0, 0, time.UTC))
	n := New(Config{Seed: 1, Delay: 5 * time.Second, Clock: sim})
	srv, c := udpPair(t, n)

	done := make(chan struct{})
	go func() {
		c.Write([]byte("delayed"))
		close(done)
	}()
	// The writer must be parked in Sim.Sleep, not delivering.
	waitFor(t, func() bool { return sim.Sleepers() == 1 })
	select {
	case <-done:
		t.Fatal("write completed before the simulated delay elapsed")
	default:
	}
	sim.Advance(5 * time.Second)
	<-done
	if got := recvAll(t, srv); len(got) != 1 || string(got[0]) != "delayed" {
		t.Fatalf("got %q", got)
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	n := New(Config{Seed: 1, ResetRate: 1, Obs: reg})
	ln, err := n.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("x")) // injected reset closes the conn
		c.Close()
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 16)); err == nil {
		t.Fatal("expected the server-side injected reset to surface as a read error")
	}
	if v := reg.Counter("faultnet_injected_total", "kind", "reset").Value(); v != 1 {
		t.Fatalf("reset counter = %d", v)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
