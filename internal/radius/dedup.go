package radius

import (
	"sync"
	"time"
)

// dedupKey identifies a request for RFC 2865 §2 duplicate detection: a
// retransmission reuses the source endpoint, the Identifier, and the
// Request Authenticator.
type dedupKey struct {
	src  string
	id   byte
	auth [16]byte
}

// dedupEntry tracks one request from the moment it is accepted for
// handling. It is inserted *before* the handler runs ("reserve before
// handle"): a retransmission that arrives while the original is still in
// flight finds the entry, waits on done, and replays the cached reply —
// it never reaches the handler, so an Access-Request is evaluated exactly
// once no matter how many copies the NAS sends.
type dedupEntry struct {
	done  chan struct{} // closed once reply is valid
	reply []byte        // nil if the handler dropped the request
	at    time.Time     // reservation time; expiry = at + window
}

// expired reports whether the entry has aged out at time now.
func (e *dedupEntry) expired(now time.Time, window time.Duration) bool {
	return now.Sub(e.at) >= window
}

// dedupTable is the duplicate-detection cache. Expiry is O(1) amortised:
// every entry lives for the same window, so insertion order is expiry
// order and a FIFO queue replaces the old full-map scan that ran inside
// the lock on every packet. The table is also bounded: maxEntries caps
// memory against spoofed-source floods, evicting the oldest reservation
// when full (the oldest is the one a legitimate retransmission is least
// likely to still reference).
type dedupTable struct {
	mu      sync.Mutex
	entries map[dedupKey]*dedupEntry
	queue   []dedupRecord // FIFO of live reservations, oldest first
	window  time.Duration
	max     int
	now     func() time.Time
}

// dedupRecord pins the queue slot to a specific entry: after an eviction
// the same key can be re-reserved, and the stale record must not purge the
// new entry.
type dedupRecord struct {
	key   dedupKey
	entry *dedupEntry
}

func newDedupTable(window time.Duration, maxEntries int, now func() time.Time) *dedupTable {
	return &dedupTable{
		entries: make(map[dedupKey]*dedupEntry),
		window:  window,
		max:     maxEntries,
		now:     now,
	}
}

// reserve claims key for handling. isNew reports whether the caller owns
// the request: it must run the handler and call finish exactly once. When
// isNew is false the returned entry belongs to an earlier packet — wait on
// entry.done and replay entry.reply.
func (t *dedupTable) reserve(key dedupKey) (entry *dedupEntry, isNew bool) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.purgeLocked(now)
	if e, ok := t.entries[key]; ok {
		return e, false
	}
	if t.max > 0 {
		for len(t.entries) >= t.max && len(t.queue) > 0 {
			t.evictOldestLocked()
		}
	}
	e := &dedupEntry{done: make(chan struct{}), at: now}
	t.entries[key] = e
	t.queue = append(t.queue, dedupRecord{key: key, entry: e})
	return e, true
}

// finish publishes the reply for a reservation and wakes every waiting
// retransmission. reply nil means the handler dropped the request; late
// duplicates are then dropped too. Callers must invoke finish on every
// reservation, including error paths, or duplicates block until expiry.
func (t *dedupTable) finish(e *dedupEntry, reply []byte) {
	e.reply = reply // happens-before the close synchronises this write
	close(e.done)
}

// purgeLocked drops expired reservations from the front of the queue.
func (t *dedupTable) purgeLocked(now time.Time) {
	i := 0
	for ; i < len(t.queue); i++ {
		rec := t.queue[i]
		if !rec.entry.expired(now, t.window) {
			break
		}
		if cur, ok := t.entries[rec.key]; ok && cur == rec.entry {
			delete(t.entries, rec.key)
		}
	}
	if i > 0 {
		t.queue = append(t.queue[:0], t.queue[i:]...)
	}
}

// evictOldestLocked removes the oldest live reservation (capacity
// pressure, not expiry).
func (t *dedupTable) evictOldestLocked() {
	rec := t.queue[0]
	t.queue = t.queue[1:]
	if cur, ok := t.entries[rec.key]; ok && cur == rec.entry {
		delete(t.entries, rec.key)
	}
}

// len reports the live entry count (test hook).
func (t *dedupTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
