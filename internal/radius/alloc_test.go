package radius

import (
	"errors"
	"testing"

	"openmfa/internal/racecheck"
)

func skipUnderRace(t *testing.T) {
	t.Helper()
	if racecheck.Enabled {
		t.Skip("alloc-count assertions are meaningless under -race")
	}
}

func sampleRequest() *Packet {
	req := NewRequest(7)
	req.AddString(AttrUserName, "alice")
	req.AddString(AttrNASIdentifier, "login-node-3")
	hidden, err := HidePassword("123456", []byte("s3cret"), req.Authenticator)
	if err != nil {
		panic(err)
	}
	req.Add(AttrUserPassword, hidden)
	req.AddString(AttrProxyState, "tr-0123456789abcdef")
	return req
}

// TestAppendEncodeZeroAlloc gates the codec's encode half: serialising into
// a buffer with capacity must not allocate.
func TestAppendEncodeZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	req := sampleRequest()
	buf := make([]byte, 0, MaxPacketLen)
	got := testing.AllocsPerRun(500, func() {
		if _, err := req.AppendEncode(buf); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("AppendEncode allocs/op = %.1f, want 0", got)
	}
}

// TestDecodeFromZeroAlloc gates the decode half: parsing into a reused
// Packet must not allocate once its buffers reach the traffic size.
func TestDecodeFromZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	wire, err := sampleRequest().Encode()
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := p.DecodeFrom(wire); err != nil { // warm the buffers
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(500, func() {
		if err := p.DecodeFrom(wire); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("DecodeFrom allocs/op = %.1f, want 0", got)
	}
}

// TestDecodeFromMatchesDecode pins the reusing decoder to the allocating
// reference, including reuse across packets of different shapes.
func TestDecodeFromMatchesDecode(t *testing.T) {
	big := &Packet{Code: AccessAccept, Identifier: 9}
	for i := 0; i < 20; i++ {
		big.AddString(AttrReplyMessage, "line with some text in it")
	}
	small := &Packet{Code: AccessReject, Identifier: 1}
	small.AddString(AttrReplyMessage, "no")
	var reused Packet
	for _, src := range []*Packet{big, small, big, sampleRequest(), small} {
		wire, err := src.Encode()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		if err := reused.DecodeFrom(wire); err != nil {
			t.Fatal(err)
		}
		if reused.Code != want.Code || reused.Identifier != want.Identifier ||
			reused.Authenticator != want.Authenticator {
			t.Fatalf("header mismatch: %+v vs %+v", reused, want)
		}
		if len(reused.Attributes) != len(want.Attributes) {
			t.Fatalf("attr count %d != %d", len(reused.Attributes), len(want.Attributes))
		}
		for i, a := range want.Attributes {
			if reused.Attributes[i].Type != a.Type || string(reused.Attributes[i].Value) != string(a.Value) {
				t.Fatalf("attr %d mismatch", i)
			}
		}
	}
}

// TestEmptySecretRejected is the regression test for the degenerate
// RFC 2865 keystream: an empty shared secret must be refused at password
// hiding, revealing, server startup, and client configuration.
func TestEmptySecretRejected(t *testing.T) {
	var auth [16]byte
	if _, err := HidePassword("pw", nil, auth); !errors.Is(err, ErrEmptySecret) {
		t.Errorf("HidePassword(nil secret) err = %v, want ErrEmptySecret", err)
	}
	if _, err := HidePassword("pw", []byte{}, auth); !errors.Is(err, ErrEmptySecret) {
		t.Errorf("HidePassword(empty secret) err = %v, want ErrEmptySecret", err)
	}
	if _, err := RevealPassword(make([]byte, 16), nil, auth); !errors.Is(err, ErrEmptySecret) {
		t.Errorf("RevealPassword(nil secret) err = %v, want ErrEmptySecret", err)
	}

	srv := &Server{Handler: HandlerFunc(func(*Request) *Packet { return nil })}
	if err := srv.ListenAndServe("127.0.0.1:0"); !errors.Is(err, ErrEmptySecret) {
		t.Errorf("secretless ListenAndServe err = %v, want ErrEmptySecret", err)
		srv.Close()
	}

	c := &Client{Addr: "127.0.0.1:1"}
	if _, err := c.Exchange(NewRequest(0)); !errors.Is(err, ErrConfig) {
		t.Errorf("secretless Exchange err = %v, want ErrConfig", err)
	}
}

// TestHidePasswordRoundTripLongSecret exercises the scratch-buffer path for
// secrets too large for the stack block.
func TestHidePasswordRoundTripLongSecret(t *testing.T) {
	secret := make([]byte, 100)
	for i := range secret {
		secret[i] = byte(i * 7)
	}
	var auth [16]byte
	copy(auth[:], "abcdefghijklmnop")
	for _, pw := range []string{"", "x", "123456", string(make([]byte, 128))} {
		hidden, err := HidePassword(pw, secret, auth)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RevealPassword(hidden, secret, auth)
		if err != nil {
			t.Fatal(err)
		}
		// NUL padding is trimmed on reveal, so an all-NUL password reads
		// back empty — that matches the previous implementation.
		want := pw
		for len(want) > 0 && want[len(want)-1] == 0 {
			want = want[:len(want)-1]
		}
		if got != want {
			t.Errorf("round trip %q: got %q", pw, got)
		}
	}
}
