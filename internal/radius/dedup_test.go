package radius

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func dkey(src string, id byte) dedupKey {
	var auth [16]byte
	auth[0] = id
	return dedupKey{src: src, id: id, auth: auth}
}

func TestDedupReserveThenDuplicate(t *testing.T) {
	now := time.Unix(1000, 0)
	tab := newDedupTable(5*time.Second, 0, func() time.Time { return now })
	e, isNew := tab.reserve(dkey("1.2.3.4:1812", 1))
	if !isNew {
		t.Fatal("first reserve not new")
	}
	dup, isNew := tab.reserve(dkey("1.2.3.4:1812", 1))
	if isNew {
		t.Fatal("duplicate reserve treated as new")
	}
	if dup != e {
		t.Fatal("duplicate got a different entry")
	}
	select {
	case <-dup.done:
		t.Fatal("done closed before finish")
	default:
	}
	tab.finish(e, []byte("reply"))
	<-dup.done
	if string(dup.reply) != "reply" {
		t.Fatalf("reply = %q", dup.reply)
	}
}

func TestDedupExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	tab := newDedupTable(5*time.Second, 0, func() time.Time { return now })
	e, _ := tab.reserve(dkey("a", 1))
	tab.finish(e, []byte("r"))
	now = now.Add(6 * time.Second)
	if _, isNew := tab.reserve(dkey("a", 1)); !isNew {
		t.Fatal("expired entry still deduplicated")
	}
	if tab.len() != 1 {
		t.Fatalf("len = %d, want 1 (expired entry purged)", tab.len())
	}
}

func TestDedupHardCap(t *testing.T) {
	now := time.Unix(1000, 0)
	tab := newDedupTable(time.Hour, 100, func() time.Time { return now })
	// A spoofed-source flood: every packet a distinct key, none expiring.
	for i := 0; i < 1000; i++ {
		e, isNew := tab.reserve(dkey(fmt.Sprintf("10.0.%d.%d:1812", i/256, i%256), byte(i)))
		if !isNew {
			t.Fatalf("packet %d misdetected as duplicate", i)
		}
		tab.finish(e, nil)
	}
	if tab.len() != 100 {
		t.Fatalf("len = %d, want hard cap 100", tab.len())
	}
	// The newest entry survived; the oldest was evicted.
	if _, isNew := tab.reserve(dkey("10.0.3.231:1812", byte(999%256))); isNew {
		t.Fatal("newest entry evicted")
	}
	if _, isNew := tab.reserve(dkey("10.0.0.0:1812", 0)); !isNew {
		t.Fatal("oldest entry not evicted")
	}
}

// TestDedupEvictionThenReinsertKeepsNewEntry guards the ABA case: a key is
// evicted, re-reserved, and the stale queue record must not purge the new
// entry when the old record's expiry passes.
func TestDedupEvictionThenReinsertKeepsNewEntry(t *testing.T) {
	now := time.Unix(1000, 0)
	tab := newDedupTable(5*time.Second, 2, func() time.Time { return now })
	eA, _ := tab.reserve(dkey("a", 1))
	tab.finish(eA, nil)
	eB, _ := tab.reserve(dkey("b", 2))
	tab.finish(eB, nil)
	// Cap pressure evicts "a"...
	eC, _ := tab.reserve(dkey("c", 3))
	tab.finish(eC, nil)
	// ...and "a" is re-reserved with a fresh entry.
	now = now.Add(4 * time.Second)
	eA2, isNew := tab.reserve(dkey("a", 1))
	if !isNew {
		t.Fatal("evicted key not re-reservable")
	}
	tab.finish(eA2, []byte("fresh"))
	// When the ORIGINAL "a" record's expiry passes, the fresh entry must
	// survive (it expires later).
	now = now.Add(2 * time.Second)
	dup, isNew := tab.reserve(dkey("a", 1))
	if isNew {
		t.Fatal("fresh entry purged by stale queue record")
	}
	if string(dup.reply) != "fresh" {
		t.Fatalf("reply = %q", dup.reply)
	}
}

// TestRetransmitStormHandlerRunsOnce fires many identical copies of one
// Access-Request concurrently from the same source socket and asserts the
// handler ran exactly once: the reserve-before-handle protocol must hold
// even while the original is still inside the handler. Before the fix the
// dedup entry was recorded only after the handler returned, so concurrent
// retransmissions consumed the user's OTP twice and could answer the pair
// with Accept+Reject.
func TestRetransmitStormHandlerRunsOnce(t *testing.T) {
	secret := []byte("storm-secret")
	var handled int32
	srv := &Server{
		Secret: secret,
		Handler: HandlerFunc(func(req *Request) *Packet {
			atomic.AddInt32(&handled, 1)
			time.Sleep(50 * time.Millisecond) // keep the original in flight
			out := &Packet{Code: AccessAccept}
			out.AddString(AttrReplyMessage, "once")
			return out
		}),
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req := NewRequest(0)
	buildReq("stormuser", "123456", secret)(req)
	if err := AddMessageAuthenticator(req, secret); err != nil {
		t.Fatal(err)
	}
	wire, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const copies = 32
	var wg sync.WaitGroup
	for i := 0; i < copies; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn.Write(wire)
		}()
	}
	wg.Wait()

	// Every copy (original + retransmissions) is answered with the same
	// cached Accept once the handler finishes.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, MaxPacketLen)
	replies := 0
	for replies < copies {
		n, err := conn.Read(buf)
		if err != nil {
			break // deadline: UDP may drop some, that's fine
		}
		resp, err := Decode(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if resp.Code != AccessAccept {
			t.Fatalf("reply %d: code = %v, want Access-Accept", replies, resp.Code)
		}
		replies++
	}
	if replies == 0 {
		t.Fatal("no replies received")
	}
	if got := atomic.LoadInt32(&handled); got != 1 {
		t.Fatalf("handler ran %d times for %d identical packets, want exactly 1", got, copies)
	}
}

// TestRetransmitAfterReplyReplaysCachedResponse covers the classic
// (non-concurrent) retransmission: the reply is served from cache and the
// handler is not re-invoked.
func TestRetransmitAfterReplyReplaysCachedResponse(t *testing.T) {
	secret := []byte("replay-secret")
	var handled int32
	srv := &Server{
		Secret: secret,
		Handler: HandlerFunc(func(req *Request) *Packet {
			atomic.AddInt32(&handled, 1)
			return &Packet{Code: AccessReject}
		}),
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req := NewRequest(0)
	buildReq("u", "x", secret)(req)
	if err := AddMessageAuthenticator(req, secret); err != nil {
		t.Fatal(err)
	}
	wire, _ := req.Encode()
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, MaxPacketLen)
	for i := 0; i < 3; i++ {
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if got := atomic.LoadInt32(&handled); got != 1 {
		t.Fatalf("handler ran %d times, want 1", got)
	}
}
