package radius

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := NewRequest(7)
	p.AddString(AttrUserName, "cproctor")
	p.AddString(AttrNASIdentifier, "login1.stampede")
	p.Add(AttrState, []byte{1, 2, 3})
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != AccessRequest || got.Identifier != p.Identifier {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Authenticator != p.Authenticator {
		t.Fatal("authenticator mismatch")
	}
	if got.GetString(AttrUserName) != "cproctor" {
		t.Fatalf("User-Name = %q", got.GetString(AttrUserName))
	}
	if s, _ := got.Get(AttrState); !bytes.Equal(s, []byte{1, 2, 3}) {
		t.Fatal("State mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err != ErrPacketTooShort {
		t.Fatalf("short: %v", err)
	}
	// Length field smaller than header.
	bad := make([]byte, 20)
	bad[3] = 10
	if _, err := Decode(bad); err != ErrBadLength {
		t.Fatalf("bad length: %v", err)
	}
	// Length larger than datagram.
	bad2 := make([]byte, 20)
	bad2[2] = 0xff
	bad2[3] = 0xff
	if _, err := Decode(bad2); err != ErrBadLength {
		t.Fatalf("overlong: %v", err)
	}
	// Attribute with length < 2.
	p := NewRequest(1)
	wire, _ := p.Encode()
	wire = append(wire, 1, 1)
	wire[3] = byte(len(wire))
	if _, err := Decode(wire); err != ErrBadAttribute {
		t.Fatalf("bad attr: %v", err)
	}
	// Attribute overrunning the packet.
	p2 := NewRequest(1)
	wire2, _ := p2.Encode()
	wire2 = append(wire2, 1, 30, 'x')
	wire2[3] = byte(len(wire2))
	if _, err := Decode(wire2); err != ErrBadAttribute {
		t.Fatalf("overrun attr: %v", err)
	}
}

func TestEncodeAttrTooLong(t *testing.T) {
	p := NewRequest(1)
	p.Add(AttrReplyMessage, make([]byte, 254))
	if _, err := p.Encode(); err != ErrAttrTooLong {
		t.Fatalf("err = %v, want ErrAttrTooLong", err)
	}
}

func TestGetAllAndRemoveAll(t *testing.T) {
	p := NewRequest(1)
	p.AddString(AttrReplyMessage, "line 1")
	p.AddString(AttrUserName, "u")
	p.AddString(AttrReplyMessage, "line 2")
	all := p.GetAll(AttrReplyMessage)
	if len(all) != 2 || string(all[0]) != "line 1" || string(all[1]) != "line 2" {
		t.Fatalf("GetAll = %q", all)
	}
	p.RemoveAll(AttrReplyMessage)
	if _, ok := p.Get(AttrReplyMessage); ok {
		t.Fatal("RemoveAll left attributes behind")
	}
	if p.GetString(AttrUserName) != "u" {
		t.Fatal("RemoveAll removed unrelated attribute")
	}
}

func TestHideRevealPassword(t *testing.T) {
	secret := []byte("s3cret")
	var auth [16]byte
	copy(auth[:], "0123456789abcdef")
	for _, pw := range []string{"", "123456", "a", "exactly-16-bytes", "this one is much longer than sixteen bytes"} {
		hidden, err := HidePassword(pw, secret, auth)
		if err != nil {
			t.Fatal(err)
		}
		if len(hidden)%16 != 0 || len(hidden) == 0 {
			t.Fatalf("hidden length %d not a positive multiple of 16", len(hidden))
		}
		got, err := RevealPassword(hidden, secret, auth)
		if err != nil {
			t.Fatal(err)
		}
		if got != pw {
			t.Fatalf("reveal = %q, want %q", got, pw)
		}
	}
}

func TestHidePasswordTooLong(t *testing.T) {
	if _, err := HidePassword(string(make([]byte, 129)), []byte("s"), [16]byte{}); err == nil {
		t.Fatal("129-byte password accepted")
	}
}

func TestRevealPasswordBadLength(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 144} {
		if _, err := RevealPassword(make([]byte, n), []byte("s"), [16]byte{}); err == nil {
			t.Errorf("length %d accepted", n)
		}
	}
}

func TestRevealWithWrongSecretGarbles(t *testing.T) {
	var auth [16]byte
	hidden, _ := HidePassword("123456", []byte("right"), auth)
	got, err := RevealPassword(hidden, []byte("wrong"), auth)
	if err == nil && got == "123456" {
		t.Fatal("wrong secret revealed the password")
	}
}

func TestResponseAuthenticatorVerify(t *testing.T) {
	secret := []byte("shared")
	req := NewRequest(9)
	req.AddString(AttrUserName, "u")
	resp := &Packet{Code: AccessAccept, Identifier: 9}
	resp.AddString(AttrReplyMessage, "welcome")
	if err := SignResponse(resp, req.Authenticator, secret); err != nil {
		t.Fatal(err)
	}
	if !VerifyResponse(resp, req.Authenticator, secret) {
		t.Fatal("signed response failed verification")
	}
	// Tampering with an attribute must break verification.
	resp.Attributes[0].Value[0] ^= 1
	if VerifyResponse(resp, req.Authenticator, secret) {
		t.Fatal("tampered response verified")
	}
	resp.Attributes[0].Value[0] ^= 1
	// Wrong secret must fail.
	if VerifyResponse(resp, req.Authenticator, []byte("other")) {
		t.Fatal("response verified under wrong secret")
	}
}

func TestMessageAuthenticator(t *testing.T) {
	secret := []byte("shared")
	p := NewRequest(3)
	p.AddString(AttrUserName, "storm")
	if err := AddMessageAuthenticator(p, secret); err != nil {
		t.Fatal(err)
	}
	if !VerifyMessageAuthenticator(p, secret) {
		t.Fatal("fresh MA failed verification")
	}
	// Round-trip through the wire.
	wire, _ := p.Encode()
	got, _ := Decode(wire)
	if !VerifyMessageAuthenticator(got, secret) {
		t.Fatal("decoded MA failed verification")
	}
	// Tamper.
	got.Attributes[0].Value[0] ^= 1
	if VerifyMessageAuthenticator(got, secret) {
		t.Fatal("tampered packet verified")
	}
	// Wrong secret.
	got.Attributes[0].Value[0] ^= 1
	if VerifyMessageAuthenticator(got, []byte("wrong")) {
		t.Fatal("wrong secret verified")
	}
	// Absent MA verifies trivially.
	q := NewRequest(4)
	if !VerifyMessageAuthenticator(q, secret) {
		t.Fatal("packet without MA should verify")
	}
	// Malformed MA length fails.
	r := NewRequest(5)
	r.Add(AttrMessageAuthenticator, []byte{1, 2, 3})
	if VerifyMessageAuthenticator(r, secret) {
		t.Fatal("short MA verified")
	}
}

func TestCodeString(t *testing.T) {
	for c, want := range map[Code]string{
		AccessRequest: "Access-Request", AccessAccept: "Access-Accept",
		AccessReject: "Access-Reject", AccessChallenge: "Access-Challenge",
		Code(99): "Code(99)",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", byte(c), c.String(), want)
		}
	}
}

// Property: encode/decode round-trips arbitrary attribute sets.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(id byte, attrs [][]byte) bool {
		p := NewRequest(id)
		for i, v := range attrs {
			if len(v) > 253 {
				v = v[:253]
			}
			p.Add(byte(i%250)+1, v)
		}
		wire, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		if len(got.Attributes) != len(p.Attributes) {
			return false
		}
		for i := range got.Attributes {
			if got.Attributes[i].Type != p.Attributes[i].Type ||
				!bytes.Equal(got.Attributes[i].Value, p.Attributes[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: password hiding round-trips all short printable passwords.
func TestHideRevealProperty(t *testing.T) {
	f := func(pwRaw []byte, secret []byte, auth [16]byte) bool {
		if len(secret) == 0 {
			secret = []byte{1}
		}
		if len(pwRaw) > 128 {
			pwRaw = pwRaw[:128]
		}
		// NUL bytes are indistinguishable from padding by design; real
		// token codes are digits.
		pw := ""
		for _, b := range pwRaw {
			if b != 0 {
				pw += string(rune(b%94 + 33))
			}
		}
		if len(pw) > 128 {
			pw = pw[:128]
		}
		hidden, err := HidePassword(pw, secret, auth)
		if err != nil {
			return false
		}
		got, err := RevealPassword(hidden, secret, auth)
		return err == nil && got == pw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
