package radius

import (
	"errors"
	"net"
	"sync"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/obs"
)

// Handler processes a decoded Access-Request and returns a reply packet
// (Access-Accept, Access-Reject, or Access-Challenge). The returned packet
// needs only Code and Attributes set; the server fills Identifier and the
// response authenticator. Returning nil drops the request silently.
type Handler interface {
	ServeRADIUS(req *Request) *Packet
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request) *Packet

// ServeRADIUS calls f.
func (f HandlerFunc) ServeRADIUS(req *Request) *Packet { return f(req) }

// Request bundles a decoded packet with its origin and convenience
// accessors for the fields the OTP flow uses.
type Request struct {
	Packet *Packet
	Addr   net.Addr
	secret []byte
}

// Username returns the User-Name attribute.
func (r *Request) Username() string { return r.Packet.GetString(AttrUserName) }

// Password reveals the User-Password attribute (the token code in this
// infrastructure). A missing attribute yields "".
func (r *Request) Password() (string, error) {
	hidden, ok := r.Packet.Get(AttrUserPassword)
	if !ok {
		return "", nil
	}
	return RevealPassword(hidden, r.secret, r.Packet.Authenticator)
}

// State returns the State attribute linking a challenge to its response.
func (r *Request) State() []byte {
	v, _ := r.Packet.Get(AttrState)
	return v
}

// Trace returns the trace ID the NAS attached via Proxy-State, or "".
// Proxy hops append their own (binary) Proxy-State values, so only the
// first value that looks like a trace ID counts.
func (r *Request) Trace() string {
	for _, v := range r.Packet.GetAll(AttrProxyState) {
		if s := string(v); obs.ValidTraceID(s) {
			return s
		}
	}
	return ""
}

// Server is a UDP RADIUS server.
type Server struct {
	// Secret is the shared secret for all clients (per-client secrets
	// are overkill for this reproduction; FreeRADIUS supports both).
	Secret []byte
	// Handler processes Access-Requests.
	Handler Handler
	// DedupWindow bounds the duplicate-detection cache. Retransmitted
	// requests (same source, identifier, and authenticator) within the
	// window receive the cached reply instead of a second evaluation,
	// matching RFC 2865 §2 duplicate handling. A duplicate that arrives
	// while the original is still being handled waits for that reply
	// instead of triggering a second evaluation, so the handler runs
	// exactly once per request. Zero means 5 seconds.
	DedupWindow time.Duration
	// MaxDedupEntries caps the duplicate-detection cache so spoofed
	// source addresses cannot grow it without bound. When full, the
	// oldest reservation is evicted. Zero means DefaultMaxDedupEntries;
	// negative means unbounded.
	MaxDedupEntries int
	// Logf, when set, receives diagnostic messages.
	Logf func(format string, args ...any)
	// Obs, when set, receives request/outcome counters and per-exchange
	// latency histograms.
	Obs *obs.Registry
	// Logger, when set, receives a structured line per request
	// (component=radius) carrying the propagated trace ID.
	Logger *obs.Logger
	// Events, when set, receives one typed event per request decision on
	// the operational analytics bus.
	Events *eventstream.Bus
	// Now supplies event timestamps; nil means time.Now. Deployments on a
	// simulated clock inject it so bus events aggregate on simulated time.
	Now func() time.Time
	// ListenPacket binds the server socket; nil means net.ListenPacket.
	// Chaos tests inject a faultnet binder here so the farm side of the
	// exchange sees the same degraded network as the client side.
	ListenPacket func(network, addr string) (net.PacketConn, error)

	mu     sync.Mutex
	conn   net.PacketConn
	closed bool
	dedup  *dedupTable
	wg     sync.WaitGroup

	// Metric handles, resolved once in ListenAndServe so the per-packet
	// path never touches the registry map.
	mReplays  *obs.Counter
	mDuration *obs.Histogram
	mResults  map[string]*obs.Counter
}

// DefaultMaxDedupEntries bounds the dedup cache when MaxDedupEntries is
// zero. At ~60 bytes of bookkeeping per entry this is a few MiB worst
// case, while comfortably covering every outstanding request a farm
// member sees within one 5-second window.
const DefaultMaxDedupEntries = 65536

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ListenAndServe binds addr (e.g. "127.0.0.1:0") and serves until Close.
// It returns once the listener is bound; serving continues in background
// goroutines.
func (s *Server) ListenAndServe(addr string) error {
	if len(s.Secret) == 0 {
		// An empty secret degenerates RFC 2865 password hiding to
		// MD5(authenticator) and makes every response forgeable; refuse to
		// serve rather than run an open relay.
		return ErrEmptySecret
	}
	listen := s.ListenPacket
	if listen == nil {
		listen = net.ListenPacket
	}
	conn, err := listen("udp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return errors.New("radius: server closed")
	}
	s.conn = conn
	s.dedup = newDedupTable(s.dedupWindow(), s.maxDedupEntries(), time.Now)
	if s.Obs != nil {
		s.mReplays = s.Obs.Counter("radius_retransmit_replays_total")
		s.mDuration = s.Obs.Histogram("radius_request_duration_seconds", nil)
		s.mResults = make(map[string]*obs.Counter)
		for _, res := range []string{"accept", "reject", "challenge", "drop"} {
			s.mResults[res] = s.Obs.Counter("radius_requests_total", "result", res)
		}
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serve(conn)
	return nil
}

// Addr returns the bound address, or nil before ListenAndServe.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

func (s *Server) dedupWindow() time.Duration {
	if s.DedupWindow > 0 {
		return s.DedupWindow
	}
	return 5 * time.Second
}

func (s *Server) maxDedupEntries() int {
	switch {
	case s.MaxDedupEntries > 0:
		return s.MaxDedupEntries
	case s.MaxDedupEntries < 0:
		return 0 // unbounded
	}
	return DefaultMaxDedupEntries
}

func (s *Server) serve(conn net.PacketConn) {
	defer s.wg.Done()
	buf := make([]byte, MaxPacketLen)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		// Hand the datagram to its handler goroutine in a pooled buffer:
		// handlePacket copies what it keeps (DecodeFrom owns its value
		// storage), so the buffer is recycled as soon as handling returns.
		bp := getWireBuf()
		pkt := append(*bp, buf[:n]...)
		s.wg.Add(1)
		go func(bp *[]byte, pkt []byte, src net.Addr) {
			defer s.wg.Done()
			defer putWireBuf(bp)
			s.handlePacket(conn, pkt, src)
		}(bp, pkt, src)
	}
}

func (s *Server) handlePacket(conn net.PacketConn, wire []byte, src net.Addr) {
	req, err := Decode(wire)
	if err != nil {
		s.logf("radius: drop malformed packet from %s: %v", src, err)
		return
	}
	if req.Code != AccessRequest {
		s.logf("radius: drop %s from %s", req.Code, src)
		return
	}
	if !VerifyMessageAuthenticator(req, s.Secret) {
		s.logf("radius: drop request with bad Message-Authenticator from %s", src)
		return
	}

	key := dedupKey{src: src.String(), id: req.Identifier, auth: req.Authenticator}
	entry, isNew := s.dedup.reserve(key)
	if !isNew {
		s.mReplays.Inc()
		// Retransmission. The original reservation may still be in the
		// handler: wait for its reply rather than evaluating the request
		// a second time (which would consume the user's OTP twice and
		// answer one retransmission pair with Accept+Reject). If the
		// original never finishes within the window, drop silently —
		// the NAS will retransmit again.
		select {
		case <-entry.done:
			if entry.reply != nil {
				conn.WriteTo(entry.reply, src)
			}
		case <-time.After(s.dedupWindow()):
		}
		return
	}
	// We own the reservation: evaluate once and publish the reply (nil on
	// drop/error) so concurrent duplicates unblock.
	start := time.Now()
	replyWire, result, trace := s.respond(req, src)
	s.mDuration.ObserveSince(start)
	if c, ok := s.mResults[result]; ok {
		c.Inc()
	}
	if s.Events != nil {
		now := s.Now
		if now == nil {
			now = time.Now
		}
		s.Events.Publish(eventstream.Event{
			Time: now(), Type: eventstream.TypeRadius, Component: "radius",
			Trace: trace, User: req.GetString(AttrUserName),
			Addr: src.String(), Result: result,
			Duration: time.Since(start),
		})
	}
	s.Logger.Info("request", "component", "radius", "trace", trace,
		"user", req.GetString(AttrUserName), "result", result)
	s.dedup.finish(entry, replyWire)
	if replyWire != nil {
		if _, err := conn.WriteTo(replyWire, src); err != nil {
			s.logf("radius: write to %s: %v", src, err)
		}
	}
}

// respond runs the handler and returns the signed, encoded reply (nil if
// the request is dropped or the reply cannot be built), the outcome class
// for metrics, and the request's trace ID for logging.
func (s *Server) respond(req *Packet, src net.Addr) (wire []byte, result, trace string) {
	r := &Request{Packet: req, Addr: src, secret: s.Secret}
	trace = r.Trace()
	resp := s.Handler.ServeRADIUS(r)
	if resp == nil {
		return nil, "drop", trace
	}
	switch resp.Code {
	case AccessAccept:
		result = "accept"
	case AccessChallenge:
		result = "challenge"
	default:
		result = "reject"
	}
	resp.Identifier = req.Identifier
	// RFC 2865 §5.33: Proxy-State attributes from the request are copied
	// unmodified into the reply. This also returns the trace ID to the NAS.
	for _, v := range req.GetAll(AttrProxyState) {
		resp.Add(AttrProxyState, v)
	}
	// Responses carry a Message-Authenticator when the request did.
	if _, hadMA := req.Get(AttrMessageAuthenticator); hadMA {
		save := resp.Authenticator
		resp.Authenticator = req.Authenticator
		if err := AddMessageAuthenticator(resp, s.Secret); err != nil {
			s.logf("radius: sign response: %v", err)
			return nil, "drop", trace
		}
		resp.Authenticator = save
	}
	if err := SignResponse(resp, req.Authenticator, s.Secret); err != nil {
		s.logf("radius: sign response: %v", err)
		return nil, "drop", trace
	}
	replyWire, err := resp.Encode()
	if err != nil {
		s.logf("radius: encode response: %v", err)
		return nil, "drop", trace
	}
	return replyWire, result, trace
}

// Close stops the server and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	s.wg.Wait()
	return nil
}
