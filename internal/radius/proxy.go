package radius

import (
	"encoding/binary"
	"sync/atomic"
)

// Proxy is a Handler that forwards Access-Requests to an upstream server,
// reproducing FreeRADIUS "proxy chaining" (§3.2). The login nodes talk to
// a handful of proxy RADIUS servers which in turn negotiate with the
// server in front of the LinOTP database.
//
// The proxy appends a Proxy-State attribute on the way up (RFC 2865 §5.33)
// and strips it from the reply on the way down, preserving any State
// attribute used by challenge–response flows.
type Proxy struct {
	// Upstream exchanges packets with the next hop.
	Upstream *Client
	counter  uint32
}

// ServeRADIUS implements Handler.
func (p *Proxy) ServeRADIUS(req *Request) *Packet {
	fwd := NewRequest(0)
	fwd.Code = AccessRequest

	// Copy attributes; User-Password must be re-hidden under the
	// upstream secret and the new authenticator.
	for _, a := range req.Packet.Attributes {
		switch a.Type {
		case AttrUserPassword:
			pw, err := req.Password()
			if err != nil {
				return &Packet{Code: AccessReject}
			}
			hidden, err := HidePassword(pw, p.Upstream.Secret, fwd.Authenticator)
			if err != nil {
				return &Packet{Code: AccessReject}
			}
			fwd.Add(AttrUserPassword, hidden)
		case AttrMessageAuthenticator:
			// Recomputed by the upstream client.
		default:
			fwd.Add(a.Type, a.Value)
		}
	}
	var ps [4]byte
	binary.BigEndian.PutUint32(ps[:], atomic.AddUint32(&p.counter, 1))
	fwd.Add(AttrProxyState, ps[:])

	resp, err := p.Upstream.Exchange(fwd)
	if err != nil {
		return nil // drop; the NAS will retransmit and fail over
	}
	out := &Packet{Code: resp.Code}
	for _, a := range resp.Attributes {
		if a.Type == AttrProxyState || a.Type == AttrMessageAuthenticator {
			continue
		}
		out.Add(a.Type, a.Value)
	}
	return out
}
