package radius

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"openmfa/internal/obs"
)

// Client exchange errors.
var (
	ErrTimeout     = errors.New("radius: timeout waiting for response")
	ErrBadResponse = errors.New("radius: response failed verification")
	ErrAllDown     = errors.New("radius: all servers unavailable")
)

// Client sends Access-Requests to a single RADIUS server with
// retransmission, and verifies response authenticators.
type Client struct {
	// Addr is the server's UDP address ("host:port").
	Addr string
	// Secret is the shared secret.
	Secret []byte
	// Timeout is the per-attempt wait; zero means 1 second.
	Timeout time.Duration
	// Retries is the number of retransmissions after the first attempt;
	// zero means 2 (3 attempts total).
	Retries int

	idCounter uint32
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return time.Second
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 2
}

// nextID allocates request identifiers round-robin per client.
func (c *Client) nextID() byte {
	return byte(atomic.AddUint32(&c.idCounter, 1))
}

// Exchange sends req and waits for a verified response. The request's
// Identifier is assigned automatically and a Message-Authenticator is
// added. The same wire bytes are retransmitted on timeout so the server's
// duplicate cache works as intended.
func (c *Client) Exchange(req *Packet) (*Packet, error) {
	req.Identifier = c.nextID()
	if err := AddMessageAuthenticator(req, c.Secret); err != nil {
		return nil, err
	}
	wire, err := req.Encode()
	if err != nil {
		return nil, err
	}
	raddr, err := net.ResolveUDPAddr("udp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("radius: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("radius: %w", err)
	}
	defer conn.Close()

	buf := make([]byte, MaxPacketLen)
	attempts := 1 + c.retries()
	for a := 0; a < attempts; a++ {
		if _, err := conn.Write(wire); err != nil {
			return nil, fmt.Errorf("radius: %w", err)
		}
		deadline := time.Now().Add(c.timeout())
		for {
			if err := conn.SetReadDeadline(deadline); err != nil {
				return nil, err
			}
			n, err := conn.Read(buf)
			if err != nil {
				break // timeout: retransmit
			}
			resp, err := Decode(buf[:n])
			if err != nil || resp.Identifier != req.Identifier {
				continue // stray packet; keep waiting
			}
			if !VerifyResponse(resp, req.Authenticator, c.Secret) {
				return nil, ErrBadResponse
			}
			if !c.verifyRespMA(resp, req.Authenticator) {
				return nil, ErrBadResponse
			}
			return resp, nil
		}
	}
	return nil, ErrTimeout
}

// verifyRespMA validates a response Message-Authenticator, which is
// computed with the *request* authenticator in the header field.
func (c *Client) verifyRespMA(resp *Packet, reqAuth [16]byte) bool {
	if _, ok := resp.Get(AttrMessageAuthenticator); !ok {
		return true
	}
	clone := &Packet{Code: resp.Code, Identifier: resp.Identifier, Authenticator: reqAuth}
	clone.Attributes = append(clone.Attributes, resp.Attributes...)
	return VerifyMessageAuthenticator(clone, c.Secret)
}

// Pool is a round-robin failover client over several RADIUS servers: "API
// calls communicate with RADIUS servers in a round-robin fashion to provide
// load balancing and resiliency if specific RADIUS servers are unavailable"
// (§3.4).
type Pool struct {
	// Cooldown is how long a failed server is skipped before being
	// retried; zero means 30 seconds.
	Cooldown time.Duration
	// Obs, when set, receives per-exchange outcome counters, latency
	// histograms, and a failover counter.
	Obs *obs.Registry

	secret  []byte
	mu      sync.Mutex
	clients []*Client
	downTil []time.Time
	next    int
}

// NewPool builds a pool of clients sharing one secret. Each address gets
// the provided per-attempt timeout and retry budget.
func NewPool(addrs []string, secret []byte, timeout time.Duration, retries int) *Pool {
	p := &Pool{secret: append([]byte(nil), secret...)}
	for _, a := range addrs {
		p.clients = append(p.clients, &Client{Addr: a, Secret: secret, Timeout: timeout, Retries: retries})
	}
	p.downTil = make([]time.Time, len(p.clients))
	return p
}

func (p *Pool) cooldown() time.Duration {
	if p.Cooldown > 0 {
		return p.Cooldown
	}
	return 30 * time.Second
}

// Secret returns the shared secret, which callers need to hide
// User-Password attributes bound to each rebuilt request authenticator.
func (p *Pool) Secret() []byte { return p.secret }

// Servers returns the configured addresses.
func (p *Pool) Servers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.clients))
	for i, c := range p.clients {
		out[i] = c.Addr
	}
	return out
}

// pick returns the next candidate client honouring cooldowns, or -1.
func (p *Pool) pick(now time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.clients)
	for i := 0; i < n; i++ {
		idx := (p.next + i) % n
		if now.After(p.downTil[idx]) {
			p.next = (idx + 1) % n
			return idx
		}
	}
	return -1
}

func (p *Pool) markDown(idx int, now time.Time) {
	p.mu.Lock()
	p.downTil[idx] = now.Add(p.cooldown())
	p.mu.Unlock()
}

// Exchange sends req via the next healthy server, failing over on timeout.
// Each failover re-randomises the request authenticator and re-hides
// password attributes via the rebuild callback, because hiding is bound to
// the authenticator. rebuild is called with a fresh request skeleton
// (Code/Authenticator set) and must populate attributes.
func (p *Pool) Exchange(rebuild func(req *Packet)) (*Packet, error) {
	start := time.Now()
	resp, err := p.exchange(rebuild)
	if p.Obs != nil {
		result := "ok"
		if err != nil {
			result = "error"
		}
		p.Obs.Counter("radius_client_exchange_total", "result", result).Inc()
		p.Obs.Histogram("radius_client_exchange_duration_seconds", nil).ObserveSince(start)
	}
	return resp, err
}

func (p *Pool) exchange(rebuild func(req *Packet)) (*Packet, error) {
	now := time.Now()
	n := len(p.clients)
	if n == 0 {
		return nil, ErrAllDown
	}
	var lastErr error = ErrAllDown
	for attempt := 0; attempt < n; attempt++ {
		idx := p.pick(now)
		if idx < 0 {
			// Everything is cooling down; desperate fallback to
			// plain round-robin so logins do not hard-fail while a
			// single server flaps (resiliency over strictness).
			idx = attempt % n
		}
		req := NewRequest(0)
		rebuild(req)
		resp, err := p.clients[idx].Exchange(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		p.markDown(idx, now)
		if p.Obs != nil {
			p.Obs.Counter("radius_client_failover_total").Inc()
		}
	}
	return nil, lastErr
}
