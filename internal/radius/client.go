package radius

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/obs"
)

// Client exchange errors.
var (
	ErrTimeout = errors.New("radius: timeout waiting for response")
	ErrAllDown = errors.New("radius: all servers unavailable")
	ErrConfig  = errors.New("radius: invalid client configuration")
)

// NoRetry disables retransmission entirely: the client sends the request
// once and waits one timeout. Retries: 0 keeps the default budget.
const NoRetry = -1

// DefaultBackoff is the base retransmit pause after an attempt that failed
// early (see Client.Backoff).
const DefaultBackoff = 50 * time.Millisecond

// maxBackoff caps exponential growth so a long retry budget against a dead
// server does not sleep for minutes.
const maxBackoff = 2 * time.Second

// Client sends Access-Requests to a single RADIUS server with
// retransmission, and verifies response authenticators.
type Client struct {
	// Addr is the server's UDP address ("host:port").
	Addr string
	// Secret is the shared secret.
	Secret []byte
	// Timeout is the per-attempt wait for a verified response. Zero means
	// the 1-second default; negative is rejected with ErrConfig.
	Timeout time.Duration
	// Retries is the number of retransmissions after the first attempt.
	// Zero means the default of 2 (three attempts total); NoRetry (-1)
	// means a single attempt with no retransmission; anything below
	// NoRetry is rejected with ErrConfig.
	Retries int
	// Backoff is the base pause before retransmitting after an attempt
	// that failed early — a dead server answers ECONNREFUSED immediately,
	// and without a pause the whole retry budget burns in microseconds.
	// The pause doubles per attempt (capped) with ±50% jitter so a farm
	// of clients retrying a rebooted server does not synchronise. Zero
	// means DefaultBackoff; negative disables the pause. Attempts that
	// consumed their full Timeout are already paced and never sleep.
	Backoff time.Duration
	// Clock paces backoff sleeps; nil means the real clock.
	Clock clock.Sleeper
	// Dial opens the UDP conversation; nil means net.Dial. Chaos tests
	// inject a faultnet dialer here.
	Dial func(network, addr string) (net.Conn, error)
	// Obs, when set, counts silently discarded datagrams in
	// radius_client_discards_total{reason=...}.
	Obs *obs.Registry

	idCounter uint32
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return time.Second
}

func (c *Client) retries() int {
	switch {
	case c.Retries > 0:
		return c.Retries
	case c.Retries == NoRetry:
		return 0
	}
	return 2
}

// validate rejects configurations whose zero-value defaulting would
// otherwise mask a caller bug (Retries: -3 used to mean "never send and
// report ErrTimeout").
func (c *Client) validate() error {
	if len(c.Secret) == 0 {
		// See ErrEmptySecret: password hiding and response verification
		// both degenerate without a real shared secret.
		return fmt.Errorf("%w: %v", ErrConfig, ErrEmptySecret)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("%w: negative Timeout %v", ErrConfig, c.Timeout)
	}
	if c.Retries < NoRetry {
		return fmt.Errorf("%w: Retries %d below NoRetry (-1)", ErrConfig, c.Retries)
	}
	return nil
}

func (c *Client) sleeper() clock.Sleeper {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.Real{}
}

// backoffFor returns the pause before retransmission number attempt+1.
func (c *Client) backoffFor(attempt int) time.Duration {
	base := c.Backoff
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = DefaultBackoff
	}
	d := base << uint(attempt)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// discard counts a datagram dropped without aborting the exchange.
func (c *Client) discard(reason string) {
	if c.Obs != nil {
		c.Obs.Counter("radius_client_discards_total", "reason", reason).Inc()
	}
}

// nextID allocates request identifiers round-robin per client.
func (c *Client) nextID() byte {
	return byte(atomic.AddUint32(&c.idCounter, 1))
}

// Exchange sends req and waits for a verified response. The request's
// Identifier is assigned automatically and a Message-Authenticator is
// added. The same wire bytes are retransmitted on timeout so the server's
// duplicate cache works as intended.
//
// Responses that fail to decode, carry the wrong Identifier, or fail
// authenticator verification are silently discarded and the client keeps
// waiting out the attempt deadline, per RFC 2865 §3 — a forged datagram
// must not abort an exchange the genuine server is about to answer.
func (c *Client) Exchange(req *Packet) (*Packet, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	req.Identifier = c.nextID()
	if err := AddMessageAuthenticator(req, c.Secret); err != nil {
		return nil, err
	}
	wireBuf := getWireBuf()
	defer putWireBuf(wireBuf)
	wire, err := req.AppendEncode(*wireBuf)
	if err != nil {
		return nil, err
	}
	dial := c.Dial
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("udp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("radius: %w", err)
	}
	defer conn.Close()

	readBuf := getWireBuf()
	defer putWireBuf(readBuf)
	buf := (*readBuf)[:MaxPacketLen]
	attempts := 1 + c.retries()
	var lastErr error
	for a := 0; a < attempts; a++ {
		earlyFail := false
		if _, err := conn.Write(wire); err != nil {
			// Dead-server fast failure (ECONNREFUSED): pace the retry
			// instead of hot-looping through the budget.
			lastErr = fmt.Errorf("radius: %w", err)
			earlyFail = true
		} else {
			// Deadlines are wall-clock by contract of net.Conn, so this
			// uses time.Now even when backoff runs on an injected clock.
			deadline := time.Now().Add(c.timeout())
			for {
				if err := conn.SetReadDeadline(deadline); err != nil {
					return nil, err
				}
				n, err := conn.Read(buf)
				if err != nil {
					if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
						earlyFail = true
						lastErr = fmt.Errorf("radius: %w", err)
					}
					break // retransmit
				}
				resp, err := Decode(buf[:n])
				if err != nil {
					c.discard("malformed")
					continue
				}
				if resp.Identifier != req.Identifier {
					c.discard("id_mismatch")
					continue
				}
				if !VerifyResponse(resp, req.Authenticator, c.Secret) {
					c.discard("bad_authenticator")
					continue
				}
				if !c.verifyRespMA(resp, req.Authenticator) {
					c.discard("bad_message_authenticator")
					continue
				}
				return resp, nil
			}
		}
		if earlyFail && a < attempts-1 {
			if d := c.backoffFor(a); d > 0 {
				c.sleeper().Sleep(d)
			}
		}
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, ErrTimeout
}

// verifyRespMA validates a response Message-Authenticator, which is
// computed with the *request* authenticator in the header field. The swap
// happens in place: VerifyMessageAuthenticator encodes into a scratch
// image, so no clone of the packet is needed.
func (c *Client) verifyRespMA(resp *Packet, reqAuth [16]byte) bool {
	if _, ok := resp.Get(AttrMessageAuthenticator); !ok {
		return true
	}
	save := resp.Authenticator
	resp.Authenticator = reqAuth
	ok := VerifyMessageAuthenticator(resp, c.Secret)
	resp.Authenticator = save
	return ok
}

// Pool is a round-robin failover client over several RADIUS servers: "API
// calls communicate with RADIUS servers in a round-robin fashion to provide
// load balancing and resiliency if specific RADIUS servers are unavailable"
// (§3.4).
type Pool struct {
	// Cooldown is how long a failed server is skipped before being
	// retried; zero means 30 seconds.
	Cooldown time.Duration
	// Obs, when set, receives per-exchange outcome counters, latency
	// histograms, and a failover counter. Use SetObs to also wire the
	// member clients' discard counters.
	Obs *obs.Registry
	// Clock supplies the time for cooldown bookkeeping; nil means the
	// real clock.
	Clock clock.Clock

	secret  []byte
	mu      sync.Mutex
	clients []*Client
	downTil []time.Time
	next    int
}

// NewPool builds a pool of clients sharing one secret. Each address gets
// the provided per-attempt timeout and retry budget (Client sentinel
// semantics: retries 0 means the default, NoRetry means single-shot).
func NewPool(addrs []string, secret []byte, timeout time.Duration, retries int) *Pool {
	p := &Pool{secret: append([]byte(nil), secret...)}
	for _, a := range addrs {
		p.clients = append(p.clients, &Client{Addr: a, Secret: secret, Timeout: timeout, Retries: retries})
	}
	p.downTil = make([]time.Time, len(p.clients))
	return p
}

func (p *Pool) cooldown() time.Duration {
	if p.Cooldown > 0 {
		return p.Cooldown
	}
	return 30 * time.Second
}

func (p *Pool) now() time.Time {
	if p.Clock != nil {
		return p.Clock.Now()
	}
	return time.Now()
}

// Secret returns the shared secret, which callers need to hide
// User-Password attributes bound to each rebuilt request authenticator.
func (p *Pool) Secret() []byte { return p.secret }

// Servers returns the configured addresses.
func (p *Pool) Servers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.clients))
	for i, c := range p.clients {
		out[i] = c.Addr
	}
	return out
}

// SetDial installs a dial hook on every member client (chaos tests inject
// a faultnet dialer). Call before Exchange traffic starts.
func (p *Pool) SetDial(dial func(network, addr string) (net.Conn, error)) {
	for _, c := range p.clients {
		c.Dial = dial
	}
}

// SetObs attaches a registry to the pool and to every member client, so
// exchange outcomes and silent discards land in the same place.
func (p *Pool) SetObs(reg *obs.Registry) {
	p.Obs = reg
	for _, c := range p.clients {
		c.Obs = reg
	}
}

// pick returns the next candidate client honouring cooldowns, or -1.
func (p *Pool) pick(now time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.clients)
	for i := 0; i < n; i++ {
		idx := (p.next + i) % n
		if now.After(p.downTil[idx]) {
			p.next = (idx + 1) % n
			return idx
		}
	}
	return -1
}

func (p *Pool) markDown(idx int) {
	p.mu.Lock()
	p.downTil[idx] = p.now().Add(p.cooldown())
	p.mu.Unlock()
}

// Exchange sends req via the next healthy server, failing over on timeout.
// Each failover re-randomises the request authenticator and re-hides
// password attributes via the rebuild callback, because hiding is bound to
// the authenticator. rebuild is called with a fresh request skeleton
// (Code/Authenticator set) and must populate attributes.
func (p *Pool) Exchange(rebuild func(req *Packet)) (*Packet, error) {
	start := time.Now()
	resp, err := p.exchange(rebuild)
	if p.Obs != nil {
		result := "ok"
		if err != nil {
			result = "error"
		}
		p.Obs.Counter("radius_client_exchange_total", "result", result).Inc()
		p.Obs.Histogram("radius_client_exchange_duration_seconds", nil).ObserveSince(start)
	}
	return resp, err
}

func (p *Pool) exchange(rebuild func(req *Packet)) (*Packet, error) {
	n := len(p.clients)
	if n == 0 {
		return nil, ErrAllDown
	}
	var lastErr error = ErrAllDown
	lastFailed := -1
	for attempt := 0; attempt < n; attempt++ {
		// Re-read the clock every attempt: the previous attempt may have
		// burned seconds of timeout, during which another server's
		// cooldown expired.
		idx := p.pick(p.now())
		if idx < 0 {
			// Everything is cooling down; desperate fallback to plain
			// round-robin so logins do not hard-fail while a single
			// server flaps (resiliency over strictness) — but never
			// straight back to the server that just failed.
			idx = attempt % n
			if idx == lastFailed && n > 1 {
				idx = (idx + 1) % n
			}
		}
		req := NewRequest(0)
		rebuild(req)
		resp, err := p.clients[idx].Exchange(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		lastFailed = idx
		p.markDown(idx)
		if p.Obs != nil {
			p.Obs.Counter("radius_client_failover_total").Inc()
		}
	}
	return nil, lastErr
}
