package radius

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
)

// deadAddr binds a UDP port and immediately closes it, yielding an address
// that answers ECONNREFUSED (via ICMP port-unreachable on loopback).
func deadAddr(t *testing.T) string {
	t.Helper()
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := c.LocalAddr().String()
	c.Close()
	return addr
}

// silentAddr binds a UDP socket that receives but never answers, counting
// the datagrams it swallows — a black-holed server.
func silentAddr(t *testing.T) (string, *int32) {
	t.Helper()
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	got := new(int32)
	go func() {
		buf := make([]byte, MaxPacketLen)
		for {
			if _, _, err := c.ReadFromUDP(buf); err != nil {
				return
			}
			atomic.AddInt32(got, 1)
		}
	}()
	return c.LocalAddr().String(), got
}

// TestSpoofedResponseSilentlyDiscarded is the regression test for the
// RFC 2865 §3 violation: a forged datagram used to abort the exchange with
// a verification error even though the genuine server's signed reply was
// already in flight.
func TestSpoofedResponseSilentlyDiscarded(t *testing.T) {
	leakcheck.Check(t)
	secret := []byte("s")
	srv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	c := &Client{Addr: srv.LocalAddr().String(), Secret: secret,
		Timeout: 2 * time.Second, Retries: NoRetry, Obs: reg}

	// Fake server: first a forged response (right Identifier, garbage
	// authenticator — what an off-path attacker who guessed the ID can
	// send), then the genuine, correctly signed Access-Accept.
	go func() {
		buf := make([]byte, MaxPacketLen)
		srv.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, client, err := srv.ReadFromUDP(buf)
		if err != nil {
			return
		}
		req, err := Decode(buf[:n])
		if err != nil {
			return
		}

		forged := &Packet{Code: AccessAccept, Identifier: req.Identifier}
		copy(forged.Authenticator[:], []byte("not-a-real-authentic"))
		forgedWire, _ := forged.Encode()
		srv.WriteToUDP(forgedWire, client)

		genuine := &Packet{Code: AccessAccept, Identifier: req.Identifier,
			Authenticator: req.Authenticator}
		genuine.AddString(AttrReplyMessage, "ok")
		if err := AddMessageAuthenticator(genuine, secret); err != nil {
			return
		}
		genuine.Authenticator = [16]byte{}
		if err := SignResponse(genuine, req.Authenticator, secret); err != nil {
			return
		}
		wire, _ := genuine.Encode()
		srv.WriteToUDP(wire, client)
	}()

	req := NewRequest(0)
	req.AddString(AttrUserName, "u")
	resp, err := c.Exchange(req)
	if err != nil {
		t.Fatalf("exchange aborted by spoofed datagram: %v", err)
	}
	if resp.Code != AccessAccept || resp.GetString(AttrReplyMessage) != "ok" {
		t.Fatalf("got %v %q, want genuine Access-Accept", resp.Code, resp.GetString(AttrReplyMessage))
	}
	if v := reg.Counter("radius_client_discards_total", "reason", "bad_authenticator").Value(); v != 1 {
		t.Fatalf("bad_authenticator discards = %d, want 1", v)
	}
}

// TestDeadServerRetransmitBackoff is the regression test for the hot loop:
// against a dead server every attempt fails with ECONNREFUSED in
// microseconds, so the whole retry budget used to burn instantly.
func TestDeadServerRetransmitBackoff(t *testing.T) {
	leakcheck.Check(t)
	c := &Client{Addr: deadAddr(t), Secret: []byte("s"),
		Timeout: 300 * time.Millisecond, Retries: 1}
	req := NewRequest(0)
	req.AddString(AttrUserName, "u")
	start := time.Now()
	if _, err := c.Exchange(req); err == nil {
		t.Fatal("exchange against dead server succeeded")
	}
	// One backoff pause between the two attempts: >= base/2 with jitter.
	if took := time.Since(start); took < DefaultBackoff/2 {
		t.Fatalf("retry budget burned in %v; no backoff between attempts", took)
	}
}

func TestBackoffSkippedOnPureTimeout(t *testing.T) {
	leakcheck.Check(t)
	addr, _ := silentAddr(t)
	c := &Client{Addr: addr, Secret: []byte("s"),
		Timeout: 50 * time.Millisecond, Retries: 2}
	req := NewRequest(0)
	req.AddString(AttrUserName, "u")
	start := time.Now()
	if _, err := c.Exchange(req); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Three timeout-paced attempts and nothing else: no extra sleeps.
	if took := time.Since(start); took > 400*time.Millisecond {
		t.Fatalf("timeout-paced attempts took %v; backoff added on top of timeouts", took)
	}
}

// TestConfigValidation is the regression test for the sentinel semantics:
// Retries: -1 used to mean zero attempts returning ErrTimeout without a
// single datagram leaving the host.
func TestConfigValidation(t *testing.T) {
	leakcheck.Check(t)
	req := func() *Packet {
		r := NewRequest(0)
		r.AddString(AttrUserName, "u")
		return r
	}

	c := &Client{Addr: "127.0.0.1:1", Secret: []byte("s"), Timeout: -time.Second}
	if _, err := c.Exchange(req()); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative Timeout err = %v, want ErrConfig", err)
	}
	c = &Client{Addr: "127.0.0.1:1", Secret: []byte("s"), Retries: -2}
	if _, err := c.Exchange(req()); !errors.Is(err, ErrConfig) {
		t.Fatalf("Retries -2 err = %v, want ErrConfig", err)
	}

	// NoRetry means exactly one datagram on the wire.
	addr, got := silentAddr(t)
	c = &Client{Addr: addr, Secret: []byte("s"),
		Timeout: 100 * time.Millisecond, Retries: NoRetry}
	if _, err := c.Exchange(req()); err != ErrTimeout {
		t.Fatalf("single-shot err = %v, want ErrTimeout", err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := atomic.LoadInt32(got); n != 1 {
		t.Fatalf("NoRetry sent %d datagrams, want exactly 1", n)
	}
}

// TestPoolCooldownExpiresMidExchange is the regression test for the stale
// clock in Pool.exchange: `now` was captured once, so a cooldown expiring
// while an earlier attempt burned its timeout was never noticed and the
// exchange hard-failed with a healthy server available.
func TestPoolCooldownExpiresMidExchange(t *testing.T) {
	leakcheck.Check(t)
	secret := []byte("s")
	live := &Server{Secret: secret, Handler: HandlerFunc(func(*Request) *Packet {
		return &Packet{Code: AccessAccept}
	})}
	if err := live.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	silentA, _ := silentAddr(t)
	silentB, _ := silentAddr(t)
	// Order matters: A is picked first, the live server is cooling until
	// shortly before A's timeout expires, B is the stale-clock victim.
	pool := NewPool([]string{silentA, live.Addr().String(), silentB},
		secret, 400*time.Millisecond, NoRetry)
	pool.Cooldown = 5 * time.Second
	pool.mu.Lock()
	pool.downTil[1] = time.Now().Add(300 * time.Millisecond)
	pool.mu.Unlock()

	resp, err := pool.Exchange(buildReq("u", "123456", secret))
	if err != nil {
		t.Fatalf("exchange failed despite the live server's cooldown expiring mid-exchange: %v", err)
	}
	if resp.Code != AccessAccept {
		t.Fatalf("code = %v", resp.Code)
	}
}

// TestPoolFallbackSkipsJustFailedServer is the regression test for the
// desperate fallback re-picking the server that just failed: with every
// server cooling down, attempt%n could land on the index the previous
// attempt already proved dead, while a live server sat idle.
func TestPoolFallbackSkipsJustFailedServer(t *testing.T) {
	leakcheck.Check(t)
	secret := []byte("s")
	live := &Server{Secret: secret, Handler: HandlerFunc(func(*Request) *Packet {
		return &Packet{Code: AccessAccept}
	})}
	if err := live.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	pool := NewPool([]string{live.Addr().String(), deadAddr(t)},
		secret, 200*time.Millisecond, NoRetry)
	pool.Cooldown = time.Hour
	// Force the flap state: the live server (idx 0) is cooling, so pick
	// starts at the dead idx 1; after it fails, every later attempt falls
	// back to round-robin and must not re-pick idx 1.
	pool.mu.Lock()
	pool.downTil[0] = time.Now().Add(time.Hour)
	pool.next = 1
	pool.mu.Unlock()

	resp, err := pool.Exchange(buildReq("u", "123456", secret))
	if err != nil {
		t.Fatalf("fallback re-picked the just-failed server: %v", err)
	}
	if resp.Code != AccessAccept {
		t.Fatalf("code = %v", resp.Code)
	}
}
