// Package radius implements the subset of RADIUS (RFC 2865, RFC 2869) the
// MFA infrastructure depends on: Access-Request / Access-Accept /
// Access-Reject / Access-Challenge exchanges over UDP, User-Password
// hiding, response authenticators, Message-Authenticator (HMAC-MD5)
// integrity, a retransmitting client, a round-robin failover pool (the
// paper's PAM token module "communicate[s] with RADIUS servers in a
// round-robin fashion to provide load balancing and resiliency"), and a
// proxy ("capable of load balancing and proxy chaining across servers",
// §3.2).
package radius

import (
	"crypto/hmac"
	"crypto/md5"
	"crypto/rand"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// Code is the RADIUS packet type.
type Code byte

// Packet codes used by the infrastructure.
const (
	AccessRequest   Code = 1
	AccessAccept    Code = 2
	AccessReject    Code = 3
	AccessChallenge Code = 11
)

// String names the code.
func (c Code) String() string {
	switch c {
	case AccessRequest:
		return "Access-Request"
	case AccessAccept:
		return "Access-Accept"
	case AccessReject:
		return "Access-Reject"
	case AccessChallenge:
		return "Access-Challenge"
	default:
		return fmt.Sprintf("Code(%d)", byte(c))
	}
}

// Attribute types used by the infrastructure.
const (
	AttrUserName             = 1
	AttrUserPassword         = 2
	AttrNASIPAddress         = 4
	AttrReplyMessage         = 18
	AttrState                = 24
	AttrNASIdentifier        = 32
	AttrProxyState           = 33
	AttrMessageAuthenticator = 80
)

// Attribute is a single type-length-value attribute.
type Attribute struct {
	Type  byte
	Value []byte
}

// Packet is a RADIUS packet.
type Packet struct {
	Code          Code
	Identifier    byte
	Authenticator [16]byte
	Attributes    []Attribute
}

// Add appends an attribute.
func (p *Packet) Add(typ byte, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	p.Attributes = append(p.Attributes, Attribute{Type: typ, Value: v})
}

// AddString appends a string-valued attribute.
func (p *Packet) AddString(typ byte, value string) { p.Add(typ, []byte(value)) }

// Get returns the first attribute of the given type.
func (p *Packet) Get(typ byte) ([]byte, bool) {
	for _, a := range p.Attributes {
		if a.Type == typ {
			return a.Value, true
		}
	}
	return nil, false
}

// GetString returns the first attribute of the given type as a string.
func (p *Packet) GetString(typ byte) string {
	v, _ := p.Get(typ)
	return string(v)
}

// GetAll returns every attribute of the given type, in order. Reply-Message
// may legally repeat to carry multi-line prompts.
func (p *Packet) GetAll(typ byte) [][]byte {
	var out [][]byte
	for _, a := range p.Attributes {
		if a.Type == typ {
			out = append(out, a.Value)
		}
	}
	return out
}

// RemoveAll deletes every attribute of the given type.
func (p *Packet) RemoveAll(typ byte) {
	kept := p.Attributes[:0]
	for _, a := range p.Attributes {
		if a.Type != typ {
			kept = append(kept, a)
		}
	}
	p.Attributes = kept
}

const headerLen = 20

// MaxPacketLen is the RFC 2865 maximum packet size.
const MaxPacketLen = 4096

// Encoding/decoding errors.
var (
	ErrPacketTooShort = errors.New("radius: packet too short")
	ErrPacketTooLong  = errors.New("radius: packet exceeds 4096 bytes")
	ErrBadLength      = errors.New("radius: length field mismatch")
	ErrBadAttribute   = errors.New("radius: malformed attribute")
	ErrAttrTooLong    = errors.New("radius: attribute value exceeds 253 bytes")
)

// Encode serialises the packet.
func (p *Packet) Encode() ([]byte, error) {
	length := headerLen
	for _, a := range p.Attributes {
		if len(a.Value) > 253 {
			return nil, ErrAttrTooLong
		}
		length += 2 + len(a.Value)
	}
	if length > MaxPacketLen {
		return nil, ErrPacketTooLong
	}
	buf := make([]byte, length)
	buf[0] = byte(p.Code)
	buf[1] = p.Identifier
	binary.BigEndian.PutUint16(buf[2:4], uint16(length))
	copy(buf[4:20], p.Authenticator[:])
	off := headerLen
	for _, a := range p.Attributes {
		buf[off] = a.Type
		buf[off+1] = byte(2 + len(a.Value))
		copy(buf[off+2:], a.Value)
		off += 2 + len(a.Value)
	}
	return buf, nil
}

// Decode parses a wire packet.
func Decode(b []byte) (*Packet, error) {
	if len(b) < headerLen {
		return nil, ErrPacketTooShort
	}
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < headerLen || length > len(b) || length > MaxPacketLen {
		return nil, ErrBadLength
	}
	p := &Packet{Code: Code(b[0]), Identifier: b[1]}
	copy(p.Authenticator[:], b[4:20])
	off := headerLen
	for off < length {
		if off+2 > length {
			return nil, ErrBadAttribute
		}
		alen := int(b[off+1])
		if alen < 2 || off+alen > length {
			return nil, ErrBadAttribute
		}
		val := make([]byte, alen-2)
		copy(val, b[off+2:off+alen])
		p.Attributes = append(p.Attributes, Attribute{Type: b[off], Value: val})
		off += alen
	}
	return p, nil
}

// NewRequest builds an Access-Request with a fresh random authenticator.
func NewRequest(identifier byte) *Packet {
	p := &Packet{Code: AccessRequest, Identifier: identifier}
	if _, err := rand.Read(p.Authenticator[:]); err != nil {
		panic("radius: rand: " + err.Error())
	}
	return p
}

// HidePassword encodes password per RFC 2865 §5.2 using the shared secret
// and the request authenticator. Passwords longer than 128 bytes fail.
func HidePassword(password string, secret []byte, reqAuth [16]byte) ([]byte, error) {
	if len(password) > 128 {
		return nil, errors.New("radius: password longer than 128 bytes")
	}
	// Pad to a 16-byte multiple; empty password still occupies one block.
	n := (len(password) + 15) / 16 * 16
	if n == 0 {
		n = 16
	}
	pw := make([]byte, n)
	copy(pw, password)

	out := make([]byte, n)
	prev := reqAuth[:]
	for i := 0; i < n; i += 16 {
		h := md5.New()
		h.Write(secret)
		h.Write(prev)
		b := h.Sum(nil)
		for j := 0; j < 16; j++ {
			out[i+j] = pw[i+j] ^ b[j]
		}
		prev = out[i : i+16]
	}
	return out, nil
}

// RevealPassword inverts HidePassword, trimming trailing NUL padding.
func RevealPassword(hidden, secret []byte, reqAuth [16]byte) (string, error) {
	if len(hidden) == 0 || len(hidden)%16 != 0 || len(hidden) > 128 {
		return "", errors.New("radius: bad hidden password length")
	}
	out := make([]byte, len(hidden))
	prev := reqAuth[:]
	for i := 0; i < len(hidden); i += 16 {
		h := md5.New()
		h.Write(secret)
		h.Write(prev)
		b := h.Sum(nil)
		for j := 0; j < 16; j++ {
			out[i+j] = hidden[i+j] ^ b[j]
		}
		prev = hidden[i : i+16]
	}
	// Strip padding.
	end := len(out)
	for end > 0 && out[end-1] == 0 {
		end--
	}
	return string(out[:end]), nil
}

// ResponseAuthenticator computes MD5(Code+ID+Length+RequestAuth+Attrs+Secret)
// for a response whose Authenticator field is currently zero or arbitrary.
func ResponseAuthenticator(resp *Packet, reqAuth [16]byte, secret []byte) ([16]byte, error) {
	save := resp.Authenticator
	resp.Authenticator = reqAuth
	wire, err := resp.Encode()
	resp.Authenticator = save
	if err != nil {
		return [16]byte{}, err
	}
	h := md5.New()
	h.Write(wire)
	h.Write(secret)
	var out [16]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

// SignResponse fills in the response authenticator for a reply to a request
// carrying reqAuth.
func SignResponse(resp *Packet, reqAuth [16]byte, secret []byte) error {
	auth, err := ResponseAuthenticator(resp, reqAuth, secret)
	if err != nil {
		return err
	}
	resp.Authenticator = auth
	return nil
}

// VerifyResponse checks a reply's response authenticator.
func VerifyResponse(resp *Packet, reqAuth [16]byte, secret []byte) bool {
	want, err := ResponseAuthenticator(resp, reqAuth, secret)
	if err != nil {
		return false
	}
	return subtle.ConstantTimeCompare(want[:], resp.Authenticator[:]) == 1
}

// AddMessageAuthenticator appends an RFC 2869 §5.14 Message-Authenticator
// computed over the packet with the attribute itself zeroed. For requests,
// the packet's own (random) authenticator is in place; for responses,
// reqAuth must already be substituted by the caller.
func AddMessageAuthenticator(p *Packet, secret []byte) error {
	p.RemoveAll(AttrMessageAuthenticator)
	p.Add(AttrMessageAuthenticator, make([]byte, 16))
	wire, err := p.Encode()
	if err != nil {
		return err
	}
	mac := hmac.New(md5.New, secret)
	mac.Write(wire)
	sum := mac.Sum(nil)
	copy(p.Attributes[len(p.Attributes)-1].Value, sum)
	return nil
}

// VerifyMessageAuthenticator checks the Message-Authenticator attribute if
// present; packets without one verify trivially (the attribute is optional
// for Access-Request).
func VerifyMessageAuthenticator(p *Packet, secret []byte) bool {
	got, ok := p.Get(AttrMessageAuthenticator)
	if !ok {
		return true
	}
	if len(got) != 16 {
		return false
	}
	// Recompute with the attribute zeroed in place.
	clone := &Packet{Code: p.Code, Identifier: p.Identifier, Authenticator: p.Authenticator}
	for _, a := range p.Attributes {
		v := make([]byte, len(a.Value))
		if a.Type != AttrMessageAuthenticator {
			copy(v, a.Value)
		}
		clone.Attributes = append(clone.Attributes, Attribute{Type: a.Type, Value: v})
	}
	wire, err := clone.Encode()
	if err != nil {
		return false
	}
	mac := hmac.New(md5.New, secret)
	mac.Write(wire)
	return hmac.Equal(mac.Sum(nil), got)
}
