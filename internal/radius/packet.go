// Package radius implements the subset of RADIUS (RFC 2865, RFC 2869) the
// MFA infrastructure depends on: Access-Request / Access-Accept /
// Access-Reject / Access-Challenge exchanges over UDP, User-Password
// hiding, response authenticators, Message-Authenticator (HMAC-MD5)
// integrity, a retransmitting client, a round-robin failover pool (the
// paper's PAM token module "communicate[s] with RADIUS servers in a
// round-robin fashion to provide load balancing and resiliency"), and a
// proxy ("capable of load balancing and proxy chaining across servers",
// §3.2).
package radius

import (
	"crypto/hmac"
	"crypto/md5"
	"crypto/rand"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Code is the RADIUS packet type.
type Code byte

// Packet codes used by the infrastructure.
const (
	AccessRequest   Code = 1
	AccessAccept    Code = 2
	AccessReject    Code = 3
	AccessChallenge Code = 11
)

// String names the code.
func (c Code) String() string {
	switch c {
	case AccessRequest:
		return "Access-Request"
	case AccessAccept:
		return "Access-Accept"
	case AccessReject:
		return "Access-Reject"
	case AccessChallenge:
		return "Access-Challenge"
	default:
		return fmt.Sprintf("Code(%d)", byte(c))
	}
}

// Attribute types used by the infrastructure.
const (
	AttrUserName             = 1
	AttrUserPassword         = 2
	AttrNASIPAddress         = 4
	AttrReplyMessage         = 18
	AttrState                = 24
	AttrNASIdentifier        = 32
	AttrProxyState           = 33
	AttrMessageAuthenticator = 80
)

// Attribute is a single type-length-value attribute.
type Attribute struct {
	Type  byte
	Value []byte
}

// Packet is a RADIUS packet.
type Packet struct {
	Code          Code
	Identifier    byte
	Authenticator [16]byte
	Attributes    []Attribute

	// valBuf is the single backing array DecodeFrom slices attribute
	// values out of, reused across decodes so a long-lived Packet parses
	// wire traffic without allocating.
	valBuf []byte
}

// Add appends an attribute.
func (p *Packet) Add(typ byte, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	p.Attributes = append(p.Attributes, Attribute{Type: typ, Value: v})
}

// AddString appends a string-valued attribute.
func (p *Packet) AddString(typ byte, value string) { p.Add(typ, []byte(value)) }

// Get returns the first attribute of the given type.
func (p *Packet) Get(typ byte) ([]byte, bool) {
	for _, a := range p.Attributes {
		if a.Type == typ {
			return a.Value, true
		}
	}
	return nil, false
}

// GetString returns the first attribute of the given type as a string.
func (p *Packet) GetString(typ byte) string {
	v, _ := p.Get(typ)
	return string(v)
}

// GetAll returns every attribute of the given type, in order. Reply-Message
// may legally repeat to carry multi-line prompts.
func (p *Packet) GetAll(typ byte) [][]byte {
	var out [][]byte
	for _, a := range p.Attributes {
		if a.Type == typ {
			out = append(out, a.Value)
		}
	}
	return out
}

// RemoveAll deletes every attribute of the given type.
func (p *Packet) RemoveAll(typ byte) {
	kept := p.Attributes[:0]
	for _, a := range p.Attributes {
		if a.Type != typ {
			kept = append(kept, a)
		}
	}
	p.Attributes = kept
}

const headerLen = 20

// MaxPacketLen is the RFC 2865 maximum packet size.
const MaxPacketLen = 4096

// Encoding/decoding errors.
var (
	ErrPacketTooShort = errors.New("radius: packet too short")
	ErrPacketTooLong  = errors.New("radius: packet exceeds 4096 bytes")
	ErrBadLength      = errors.New("radius: length field mismatch")
	ErrBadAttribute   = errors.New("radius: malformed attribute")
	ErrAttrTooLong    = errors.New("radius: attribute value exceeds 253 bytes")
)

// Encode serialises the packet into a fresh buffer.
func (p *Packet) Encode() ([]byte, error) {
	return p.AppendEncode(nil)
}

// AppendEncode appends the wire form of the packet to dst and returns the
// extended slice. When dst has enough spare capacity the encode performs no
// allocation, which is what the per-datagram paths rely on.
func (p *Packet) AppendEncode(dst []byte) ([]byte, error) {
	length := headerLen
	for _, a := range p.Attributes {
		if len(a.Value) > 253 {
			return nil, ErrAttrTooLong
		}
		length += 2 + len(a.Value)
	}
	if length > MaxPacketLen {
		return nil, ErrPacketTooLong
	}
	base := len(dst)
	if cap(dst)-base < length {
		grown := make([]byte, base, base+length)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[base : base+length]
	buf[0] = byte(p.Code)
	buf[1] = p.Identifier
	binary.BigEndian.PutUint16(buf[2:4], uint16(length))
	copy(buf[4:20], p.Authenticator[:])
	off := headerLen
	for _, a := range p.Attributes {
		buf[off] = a.Type
		buf[off+1] = byte(2 + len(a.Value))
		copy(buf[off+2:], a.Value)
		off += 2 + len(a.Value)
	}
	return dst[:base+length], nil
}

// Decode parses a wire packet.
func Decode(b []byte) (*Packet, error) {
	p := &Packet{}
	if err := p.DecodeFrom(b); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeFrom parses a wire packet into p, replacing its contents. The
// attribute slice and the value backing buffer are reused across calls, so
// decoding into a long-lived Packet allocates nothing once the buffers have
// grown to the traffic's working size. Attribute values from the previous
// decode are invalidated.
func (p *Packet) DecodeFrom(b []byte) error {
	if len(b) < headerLen {
		return ErrPacketTooShort
	}
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < headerLen || length > len(b) || length > MaxPacketLen {
		return ErrBadLength
	}
	p.Code = Code(b[0])
	p.Identifier = b[1]
	copy(p.Authenticator[:], b[4:20])
	p.Attributes = p.Attributes[:0]
	body := length - headerLen
	if cap(p.valBuf) < body {
		p.valBuf = make([]byte, 0, body)
	}
	vals := p.valBuf[:0]
	off := headerLen
	for off < length {
		if off+2 > length {
			return ErrBadAttribute
		}
		alen := int(b[off+1])
		if alen < 2 || off+alen > length {
			return ErrBadAttribute
		}
		start := len(vals)
		vals = append(vals, b[off+2:off+alen]...)
		// Full slice expression: an append through one value must never
		// bleed into its neighbour.
		p.Attributes = append(p.Attributes, Attribute{
			Type:  b[off],
			Value: vals[start:len(vals):len(vals)],
		})
		off += alen
	}
	p.valBuf = vals
	return nil
}

// NewRequest builds an Access-Request with a fresh random authenticator.
func NewRequest(identifier byte) *Packet {
	p := &Packet{Code: AccessRequest, Identifier: identifier}
	if _, err := rand.Read(p.Authenticator[:]); err != nil {
		panic("radius: rand: " + err.Error())
	}
	return p
}

// ErrEmptySecret rejects a degenerate shared secret. RFC 2865 §5.2 derives
// the password keystream from MD5(secret + authenticator); an empty secret
// collapses that to MD5 of the (cleartext, attacker-visible) request
// authenticator, so hiding becomes trivially reversible on the wire.
var ErrEmptySecret = errors.New("radius: shared secret must be non-empty")

// pwKeystream computes one RFC 2865 §5.2 keystream block,
// MD5(secret + prev), without allocating: small secrets concatenate into a
// stack buffer and md5.Sum returns by value.
func pwKeystream(secret, prev []byte, scratch []byte) [md5.Size]byte {
	var stack [64]byte
	buf := stack[:0]
	if len(secret)+16 > len(stack) {
		buf = scratch[:0]
	}
	buf = append(buf, secret...)
	buf = append(buf, prev...)
	return md5.Sum(buf)
}

// HidePassword encodes password per RFC 2865 §5.2 using the shared secret
// and the request authenticator. Passwords longer than 128 bytes and empty
// secrets fail.
func HidePassword(password string, secret []byte, reqAuth [16]byte) ([]byte, error) {
	if len(secret) == 0 {
		return nil, ErrEmptySecret
	}
	if len(password) > 128 {
		return nil, errors.New("radius: password longer than 128 bytes")
	}
	// Pad to a 16-byte multiple; empty password still occupies one block.
	n := (len(password) + 15) / 16 * 16
	if n == 0 {
		n = 16
	}
	out := make([]byte, n)
	copy(out, password)
	var scratch []byte
	if len(secret)+16 > 64 {
		scratch = make([]byte, 0, len(secret)+16)
	}
	prev := reqAuth[:]
	for i := 0; i < n; i += 16 {
		b := pwKeystream(secret, prev, scratch)
		for j := 0; j < 16; j++ {
			out[i+j] ^= b[j] // out holds the zero-padded password
		}
		prev = out[i : i+16]
	}
	return out, nil
}

// RevealPassword inverts HidePassword, trimming trailing NUL padding.
func RevealPassword(hidden, secret []byte, reqAuth [16]byte) (string, error) {
	if len(secret) == 0 {
		return "", ErrEmptySecret
	}
	if len(hidden) == 0 || len(hidden)%16 != 0 || len(hidden) > 128 {
		return "", errors.New("radius: bad hidden password length")
	}
	out := make([]byte, len(hidden))
	var scratch []byte
	if len(secret)+16 > 64 {
		scratch = make([]byte, 0, len(secret)+16)
	}
	prev := reqAuth[:]
	for i := 0; i < len(hidden); i += 16 {
		b := pwKeystream(secret, prev, scratch)
		for j := 0; j < 16; j++ {
			out[i+j] = hidden[i+j] ^ b[j]
		}
		prev = hidden[i : i+16]
	}
	// Strip padding.
	end := len(out)
	for end > 0 && out[end-1] == 0 {
		end--
	}
	return string(out[:end]), nil
}

// wireBufs pools MaxPacketLen-capacity scratch buffers for the encode-and-
// hash paths (response authenticators, Message-Authenticator computation,
// client exchanges, the server's datagram fan-out). Getting a buffer never
// blocks; the pool only trims steady-state allocation.
var wireBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MaxPacketLen)
		return &b
	},
}

func getWireBuf() *[]byte  { return wireBufs.Get().(*[]byte) }
func putWireBuf(b *[]byte) { *b = (*b)[:0]; wireBufs.Put(b) }

// ResponseAuthenticator computes MD5(Code+ID+Length+RequestAuth+Attrs+Secret)
// for a response whose Authenticator field is currently zero or arbitrary.
func ResponseAuthenticator(resp *Packet, reqAuth [16]byte, secret []byte) ([16]byte, error) {
	save := resp.Authenticator
	resp.Authenticator = reqAuth
	buf := getWireBuf()
	defer putWireBuf(buf)
	wire, err := resp.AppendEncode(*buf)
	resp.Authenticator = save
	if err != nil {
		return [16]byte{}, err
	}
	// MD5 over wire+secret in one pass: the pooled buffer has room for the
	// secret tail, so the whole computation stays allocation-free.
	wire = append(wire, secret...)
	return md5.Sum(wire), nil
}

// SignResponse fills in the response authenticator for a reply to a request
// carrying reqAuth.
func SignResponse(resp *Packet, reqAuth [16]byte, secret []byte) error {
	auth, err := ResponseAuthenticator(resp, reqAuth, secret)
	if err != nil {
		return err
	}
	resp.Authenticator = auth
	return nil
}

// VerifyResponse checks a reply's response authenticator.
func VerifyResponse(resp *Packet, reqAuth [16]byte, secret []byte) bool {
	want, err := ResponseAuthenticator(resp, reqAuth, secret)
	if err != nil {
		return false
	}
	return subtle.ConstantTimeCompare(want[:], resp.Authenticator[:]) == 1
}

// zeroMessageAuthenticators blanks the value bytes of every
// Message-Authenticator attribute inside an encoded packet image. The wire
// layout is already validated by the encode, so the walk is structural.
func zeroMessageAuthenticators(wire []byte) {
	off := headerLen
	for off+2 <= len(wire) {
		alen := int(wire[off+1])
		if alen < 2 || off+alen > len(wire) {
			return
		}
		if wire[off] == AttrMessageAuthenticator {
			for i := off + 2; i < off+alen; i++ {
				wire[i] = 0
			}
		}
		off += alen
	}
}

// AddMessageAuthenticator appends an RFC 2869 §5.14 Message-Authenticator
// computed over the packet with the attribute itself zeroed. For requests,
// the packet's own (random) authenticator is in place; for responses,
// reqAuth must already be substituted by the caller.
func AddMessageAuthenticator(p *Packet, secret []byte) error {
	p.RemoveAll(AttrMessageAuthenticator)
	p.Add(AttrMessageAuthenticator, make([]byte, 16))
	buf := getWireBuf()
	defer putWireBuf(buf)
	wire, err := p.AppendEncode(*buf)
	if err != nil {
		return err
	}
	mac := hmac.New(md5.New, secret)
	mac.Write(wire)
	var sum [md5.Size]byte
	copy(p.Attributes[len(p.Attributes)-1].Value, mac.Sum(sum[:0]))
	return nil
}

// VerifyMessageAuthenticator checks the Message-Authenticator attribute if
// present; packets without one verify trivially (the attribute is optional
// for Access-Request). The recomputation zeroes the attribute in a scratch
// wire image instead of deep-cloning the packet, so verification costs one
// encode plus one HMAC.
func VerifyMessageAuthenticator(p *Packet, secret []byte) bool {
	got, ok := p.Get(AttrMessageAuthenticator)
	if !ok {
		return true
	}
	if len(got) != 16 {
		return false
	}
	buf := getWireBuf()
	defer putWireBuf(buf)
	wire, err := p.AppendEncode(*buf)
	if err != nil {
		return false
	}
	zeroMessageAuthenticators(wire)
	mac := hmac.New(md5.New, secret)
	mac.Write(wire)
	var sum [md5.Size]byte
	return hmac.Equal(mac.Sum(sum[:0]), got)
}
