package radius

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkEncode measures the zero-alloc wire encoder on a representative
// Access-Request (username, NAS id, hidden password, proxy state).
func BenchmarkEncode(b *testing.B) {
	req := sampleRequest()
	buf := make([]byte, 0, MaxPacketLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := req.AppendEncode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures the reusing decoder on the same packet.
func BenchmarkDecode(b *testing.B) {
	wire, err := sampleRequest().Encode()
	if err != nil {
		b.Fatal(err)
	}
	var p Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.DecodeFrom(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHidePassword measures RFC 2865 §5.2 password hiding (the
// per-login keystream computation on both client and server).
func BenchmarkHidePassword(b *testing.B) {
	secret := []byte("s3cret")
	var auth [16]byte
	copy(auth[:], "0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := HidePassword("123456", secret, auth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchange measures a full client/server UDP round trip on
// loopback: encode, Message-Authenticator, dedup reservation, handler,
// response signing, verification.
func BenchmarkExchange(b *testing.B) {
	secret := []byte("bench-secret")
	var handled int64
	srv := &Server{
		Secret: secret,
		Handler: HandlerFunc(func(req *Request) *Packet {
			atomic.AddInt64(&handled, 1)
			out := &Packet{Code: AccessAccept}
			out.AddString(AttrReplyMessage, "ok")
			return out
		}),
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: srv.Addr().String(), Secret: secret, Timeout: 5 * time.Second}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := NewRequest(0)
		req.AddString(AttrUserName, "alice")
		hidden, err := HidePassword("123456", secret, req.Authenticator)
		if err != nil {
			b.Fatal(err)
		}
		req.Add(AttrUserPassword, hidden)
		resp, err := c.Exchange(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Code != AccessAccept {
			b.Fatalf("code = %v", resp.Code)
		}
	}
}
