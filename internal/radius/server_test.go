package radius

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// startServer launches a server whose handler accepts password "123456",
// challenges on empty password, and rejects otherwise.
func startServer(t *testing.T, secret []byte) (*Server, string) {
	t.Helper()
	var handled int32
	srv := &Server{
		Secret: secret,
		Handler: HandlerFunc(func(req *Request) *Packet {
			atomic.AddInt32(&handled, 1)
			pw, err := req.Password()
			if err != nil {
				return &Packet{Code: AccessReject}
			}
			switch pw {
			case "123456":
				out := &Packet{Code: AccessAccept}
				out.AddString(AttrReplyMessage, "ok")
				return out
			case "":
				out := &Packet{Code: AccessChallenge}
				out.Add(AttrState, []byte("challenge-1"))
				out.AddString(AttrReplyMessage, "enter token")
				return out
			default:
				return &Packet{Code: AccessReject}
			}
		}),
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

func buildReq(user, pw string, secret []byte) func(*Packet) {
	return func(req *Packet) {
		req.AddString(AttrUserName, user)
		hidden, err := HidePassword(pw, secret, req.Authenticator)
		if err != nil {
			panic(err)
		}
		req.Add(AttrUserPassword, hidden)
	}
}

func exchange(t *testing.T, addr string, secret []byte, user, pw string) *Packet {
	t.Helper()
	c := &Client{Addr: addr, Secret: secret, Timeout: 2 * time.Second}
	req := NewRequest(0)
	buildReq(user, pw, secret)(req)
	resp, err := c.Exchange(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestClientServerAccept(t *testing.T) {
	secret := []byte("tacc-radius")
	_, addr := startServer(t, secret)
	resp := exchange(t, addr, secret, "cproctor", "123456")
	if resp.Code != AccessAccept {
		t.Fatalf("code = %v, want Access-Accept", resp.Code)
	}
	if resp.GetString(AttrReplyMessage) != "ok" {
		t.Fatalf("Reply-Message = %q", resp.GetString(AttrReplyMessage))
	}
}

func TestClientServerReject(t *testing.T) {
	secret := []byte("tacc-radius")
	_, addr := startServer(t, secret)
	resp := exchange(t, addr, secret, "cproctor", "999999")
	if resp.Code != AccessReject {
		t.Fatalf("code = %v, want Access-Reject", resp.Code)
	}
}

func TestChallengeResponseFlow(t *testing.T) {
	secret := []byte("tacc-radius")
	_, addr := startServer(t, secret)
	// Null request triggers a challenge (the SMS flow, §3.4: "a null
	// RADIUS response is forwarded to LinOTP which triggers a request
	// to Twilio").
	resp := exchange(t, addr, secret, "storm", "")
	if resp.Code != AccessChallenge {
		t.Fatalf("code = %v, want Access-Challenge", resp.Code)
	}
	state, ok := resp.Get(AttrState)
	if !ok || string(state) != "challenge-1" {
		t.Fatalf("State = %q, %v", state, ok)
	}
	// Second round with the token code and the returned State.
	c := &Client{Addr: addr, Secret: secret, Timeout: 2 * time.Second}
	req := NewRequest(0)
	req.AddString(AttrUserName, "storm")
	hidden, _ := HidePassword("123456", secret, req.Authenticator)
	req.Add(AttrUserPassword, hidden)
	req.Add(AttrState, state)
	resp2, err := c.Exchange(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Code != AccessAccept {
		t.Fatalf("code = %v, want Access-Accept", resp2.Code)
	}
}

func TestWrongSecretFailsVerification(t *testing.T) {
	secret := []byte("right")
	_, addr := startServer(t, secret)
	// The server drops requests whose Message-Authenticator fails under
	// its secret, so the client times out.
	c := &Client{Addr: addr, Secret: []byte("wrong"), Timeout: 100 * time.Millisecond, Retries: 1}
	req := NewRequest(0)
	req.AddString(AttrUserName, "u")
	hidden, _ := HidePassword("123456", []byte("wrong"), req.Authenticator)
	req.Add(AttrUserPassword, hidden)
	if _, err := c.Exchange(req); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestDuplicateRetransmissionAnsweredFromCache(t *testing.T) {
	secret := []byte("s")
	var calls int32
	srv := &Server{
		Secret: secret,
		Handler: HandlerFunc(func(req *Request) *Packet {
			atomic.AddInt32(&calls, 1)
			return &Packet{Code: AccessAccept}
		}),
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hand-roll a client so the exact same datagram is sent twice from
	// one source port.
	req := NewRequest(0)
	req.Identifier = 42
	req.AddString(AttrUserName, "u")
	AddMessageAuthenticator(req, secret)
	wire, _ := req.Encode()

	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, MaxPacketLen)
	for i := 0; i < 2; i++ {
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("handler called %d times for duplicate request, want 1", got)
	}
}

func TestServerIgnoresNonRequests(t *testing.T) {
	secret := []byte("s")
	srv := &Server{Secret: secret, Handler: HandlerFunc(func(*Request) *Packet {
		t.Error("handler called for non-request packet")
		return nil
	})}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := &Packet{Code: AccessAccept, Identifier: 1}
	wire, _ := p.Encode()
	conn, _ := net.Dial("udp", srv.Addr().String())
	defer conn.Close()
	conn.Write(wire)
	conn.Write([]byte{1, 2}) // malformed too
	time.Sleep(50 * time.Millisecond)
}

func TestPoolRoundRobin(t *testing.T) {
	secret := []byte("s")
	var hits [2]int32
	var srvs [2]*Server
	var addrs []string
	for i := 0; i < 2; i++ {
		i := i
		srvs[i] = &Server{Secret: secret, Handler: HandlerFunc(func(*Request) *Packet {
			atomic.AddInt32(&hits[i], 1)
			return &Packet{Code: AccessAccept}
		})}
		if err := srvs[i].ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srvs[i].Close()
		addrs = append(addrs, srvs[i].Addr().String())
	}
	pool := NewPool(addrs, secret, time.Second, 0)
	for i := 0; i < 6; i++ {
		resp, err := pool.Exchange(buildReq("u", "123456", secret))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Code != AccessAccept {
			t.Fatalf("code = %v", resp.Code)
		}
	}
	a, b := atomic.LoadInt32(&hits[0]), atomic.LoadInt32(&hits[1])
	if a != 3 || b != 3 {
		t.Fatalf("round robin distribution = %d/%d, want 3/3", a, b)
	}
}

func TestPoolFailover(t *testing.T) {
	secret := []byte("s")
	live := &Server{Secret: secret, Handler: HandlerFunc(func(*Request) *Packet {
		return &Packet{Code: AccessAccept}
	})}
	if err := live.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	// A dead address: bind then close so nothing answers.
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.LocalAddr().String()
	dead.Close()

	pool := NewPool([]string{deadAddr, live.Addr().String()}, secret, 100*time.Millisecond, 0)
	resp, err := pool.Exchange(buildReq("u", "123456", secret))
	if err != nil {
		t.Fatalf("failover exchange failed: %v", err)
	}
	if resp.Code != AccessAccept {
		t.Fatalf("code = %v", resp.Code)
	}
	// The dead server is now cooling down; the next exchange must go
	// straight to the live one and succeed quickly.
	start := time.Now()
	if _, err := pool.Exchange(buildReq("u", "123456", secret)); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 80*time.Millisecond {
		t.Fatalf("second exchange took %v; cooldown not honoured", took)
	}
}

func TestPoolAllDown(t *testing.T) {
	secret := []byte("s")
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.LocalAddr().String()
	dead.Close()
	pool := NewPool([]string{addr}, secret, 50*time.Millisecond, 0)
	if _, err := pool.Exchange(buildReq("u", "1", secret)); err == nil {
		t.Fatal("exchange against dead pool succeeded")
	}
	pool2 := NewPool(nil, secret, time.Second, 0)
	if _, err := pool2.Exchange(func(*Packet) {}); err != ErrAllDown {
		t.Fatalf("empty pool err = %v, want ErrAllDown", err)
	}
}

func TestProxyChaining(t *testing.T) {
	secret := []byte("inner")
	outerSecret := []byte("outer")
	// Terminal server.
	terminal, termAddr := startServer(t, secret)
	_ = terminal
	// Proxy in front of it.
	proxy := &Server{
		Secret: outerSecret,
		Handler: &Proxy{Upstream: &Client{
			Addr: termAddr, Secret: secret, Timeout: 2 * time.Second}},
	}
	if err := proxy.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	resp := exchange(t, proxy.Addr().String(), outerSecret, "u", "123456")
	if resp.Code != AccessAccept {
		t.Fatalf("via proxy: code = %v", resp.Code)
	}
	if _, ok := resp.Get(AttrProxyState); ok {
		t.Fatal("Proxy-State leaked to the NAS")
	}
	// Challenge flows must survive the proxy (State preserved).
	respC := exchange(t, proxy.Addr().String(), outerSecret, "u", "")
	if respC.Code != AccessChallenge {
		t.Fatalf("via proxy: code = %v, want challenge", respC.Code)
	}
	if s, ok := respC.Get(AttrState); !ok || string(s) != "challenge-1" {
		t.Fatalf("State through proxy = %q, %v", s, ok)
	}
}

func BenchmarkRoundTrip(b *testing.B) {
	secret := []byte("s")
	srv := &Server{Secret: secret, Handler: HandlerFunc(func(*Request) *Packet {
		return &Packet{Code: AccessAccept}
	})}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: srv.Addr().String(), Secret: secret, Timeout: 2 * time.Second}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := NewRequest(0)
		req.AddString(AttrUserName, "u")
		if _, err := c.Exchange(req); err != nil {
			b.Fatal(err)
		}
	}
}
