package risk

import (
	"net"
	"testing"
	"time"

	"openmfa/internal/geoip"
)

var (
	t0     = time.Date(2016, 11, 1, 15, 0, 0, 0, time.UTC) // afternoon UTC
	austin = net.ParseIP("129.114.3.7")
	texas2 = net.ParseIP("129.114.9.9") // same /16, different /24
	china  = net.ParseIP("159.226.40.1")
	german = net.ParseIP("141.20.1.2")
)

func newEngine() *Engine {
	return NewEngine(geoip.Synthetic(), DefaultWeights())
}

// seed establishes a stable Austin daytime history for the user.
func seed(e *Engine, user string, days int) {
	for i := 0; i < days; i++ {
		at := t0.AddDate(0, 0, -days+i)
		e.RecordSuccess(user, austin, at)
	}
}

func TestFirstLoginIsLowRisk(t *testing.T) {
	e := newEngine()
	a := e.Assess("newbie", austin, t0)
	if a.Level != Low || a.Score != 0 {
		t.Fatalf("first login = %+v", a)
	}
}

func TestFamiliarPatternStaysLow(t *testing.T) {
	e := newEngine()
	seed(e, "alice", 30)
	a := e.Assess("alice", austin, t0)
	if a.Level != Low {
		t.Fatalf("familiar login = %+v", a)
	}
}

func TestNewNetworkElevates(t *testing.T) {
	e := newEngine()
	seed(e, "alice", 30)
	a := e.Assess("alice", texas2, t0)
	// New /24 alone: 0.35 < 0.50 → still low, but scored.
	if a.Score <= 0 {
		t.Fatalf("new network not scored: %+v", a)
	}
	if a.Level != Low {
		t.Fatalf("same-country new net should stay low: %+v", a)
	}
}

func TestNewCountryElevates(t *testing.T) {
	e := newEngine()
	seed(e, "alice", 30)
	a := e.Assess("alice", german, t0)
	// New network (0.35) + new country (0.55) = 0.90 → elevated.
	if a.Level != Elevated {
		t.Fatalf("new country = %+v", a)
	}
}

func TestImpossibleTravelCritical(t *testing.T) {
	e := newEngine()
	seed(e, "alice", 30)
	// Last success in Austin at t0; a login from China 1 hour later is
	// ~12,000 km/h: new net + new country + impossible speed = 1.70.
	e.RecordSuccess("alice", austin, t0)
	a := e.Assess("alice", china, t0.Add(time.Hour))
	if a.Level != Critical {
		t.Fatalf("impossible travel = %+v", a)
	}
	found := false
	for _, r := range a.Reasons {
		if len(r) > 10 && r[:10] == "impossible" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no impossible-travel reason: %v", a.Reasons)
	}
}

func TestSlowTravelIsFine(t *testing.T) {
	e := newEngine()
	seed(e, "alice", 30)
	e.RecordSuccess("alice", austin, t0)
	// Same trip a week later: plausible flight; only novelty scores.
	a := e.Assess("alice", china, t0.AddDate(0, 0, 7))
	for _, r := range a.Reasons {
		if len(r) > 10 && r[:10] == "impossible" {
			t.Fatalf("slow travel flagged: %v", a.Reasons)
		}
	}
}

func TestTravelBecomesFamiliar(t *testing.T) {
	e := newEngine()
	seed(e, "alice", 30)
	// Once the user has logged in from Germany, it is no longer novel.
	e.RecordSuccess("alice", german, t0)
	a := e.Assess("alice", german, t0.AddDate(0, 0, 1))
	if a.Level != Low {
		t.Fatalf("familiar country still scored: %+v", a)
	}
}

func TestFailurePressure(t *testing.T) {
	e := newEngine()
	seed(e, "alice", 30)
	for i := 0; i < 12; i++ {
		e.RecordFailure("alice", austin, t0.Add(time.Duration(i)*time.Minute))
	}
	a := e.Assess("alice", austin, t0.Add(15*time.Minute))
	// Capped at 10 × 0.12 = 1.20 → critical.
	if a.Level != Critical {
		t.Fatalf("failure storm = %+v", a)
	}
	// Pressure decays once the window passes.
	a2 := e.Assess("alice", austin, t0.Add(failWindow+20*time.Minute))
	if a2.Score != 0 {
		t.Fatalf("stale failures still scored: %+v", a2)
	}
}

func TestOffHoursSignal(t *testing.T) {
	e := newEngine()
	seed(e, "alice", 40) // all at 15:00 UTC
	a := e.Assess("alice", austin, time.Date(2016, 11, 2, 3, 0, 0, 0, time.UTC))
	if a.Score == 0 {
		t.Fatalf("off-hours login not scored: %+v", a)
	}
	// Adjacent hour counts as usual.
	b := e.Assess("alice", austin, time.Date(2016, 11, 2, 16, 0, 0, 0, time.UTC))
	if b.Score != 0 {
		t.Fatalf("adjacent hour scored: %+v", b)
	}
}

func TestNoGeoDBDegradesGracefully(t *testing.T) {
	e := NewEngine(nil, DefaultWeights())
	seed(e, "alice", 30)
	a := e.Assess("alice", china, t0)
	// Only the new-network signal is available.
	if a.Level != Low || a.Score == 0 {
		t.Fatalf("geo-less assess = %+v", a)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{Low: "low", Elevated: "elevated", Critical: "critical", Level(9): "Level(9)"} {
		if l.String() != want {
			t.Errorf("%d -> %q", int(l), l.String())
		}
	}
}

func TestUsersCount(t *testing.T) {
	e := newEngine()
	e.RecordSuccess("a", austin, t0)
	e.RecordSuccess("b", austin, t0)
	e.RecordSuccess("a", austin, t0)
	if e.Users() != 2 {
		t.Fatalf("Users = %d", e.Users())
	}
}
