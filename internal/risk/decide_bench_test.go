package risk

import (
	"net"
	"testing"
	"time"

	"openmfa/internal/geoip"
)

// BenchmarkDecideHot is the PAM gate's per-attempt cost for an
// established account from a familiar origin — the path every login pays
// when the gate is wired. It must stay allocation-free: the ≤5% budget in
// TestRiskGateOverheadGate (internal/pam) depends on it.
func BenchmarkDecideHot(b *testing.B) {
	e := NewEngine(geoip.Synthetic(), DefaultWeights())
	ip := net.ParseIP("129.114.3.7")
	t0 := time.Date(2026, 1, 1, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 30; i++ {
		e.RecordSuccess("bench", ip, t0.AddDate(0, 0, i))
	}
	at := t0.AddDate(0, 0, 31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Decide("bench", ip, at)
	}
}
