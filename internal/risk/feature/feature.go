// Package feature is the streaming per-user feature store behind the
// adaptive-MFA engine (the RBA architecture from the OpenStack risk-based
// authentication paper, see PAPERS.md): a bounded in-memory profile of
// every account's login behaviour, folded in one typed auth event at a
// time from internal/eventstream.
//
// The store computes facts, not verdicts: Snapshot returns the feature
// vector for a prospective attempt (novel /24, novel country, implied
// travel velocity, failure pressure and burst EWMA, off-hours flag,
// factor mix) and the risk package applies policy weights to it. Keeping
// the layers separate means the same store can back the synchronous PAM
// gate (fed by sshd outcome callbacks) and the advisory bus-attached mode
// (fed by Ingest), and a JSONL replay of either is byte-identical.
//
// All state is bounded: per-user network/country sets are capped, the
// failure ring is capped, and the user table itself evicts
// least-recently-active accounts in deterministic batches once MaxUsers
// is exceeded — eviction order depends only on event times and user
// names, never on map iteration order, so replays converge.
package feature

import (
	"math"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/geoip"
	"openmfa/internal/obs"
)

// Config parameterises a store. Zero values take defaults.
type Config struct {
	// Geo resolves source addresses; nil disables the geographic
	// features (they read as unknown, which the scorer treats neutrally
	// — see Features.GeoConfigured).
	Geo *geoip.DB
	// MaxUsers bounds the user table (default 10000). When exceeded the
	// least-recently-active batch is evicted.
	MaxUsers int
	// MaxNetworks bounds each user's first-sighting /24 set (default 256).
	MaxNetworks int
	// Obs, when set, exports risk_feature_users (occupancy gauge) and
	// risk_feature_evictions_total.
	Obs *obs.Registry
}

const (
	defaultMaxUsers    = 10000
	defaultMaxNetworks = 256
	maxCountries       = 64
	maxFails           = 64
	// FailWindow is the sliding window for the recent-failure count.
	FailWindow = 30 * time.Minute
	// burstTau is the failure-burst EWMA decay constant.
	burstTau = 10 * time.Minute
)

// userState is one account's bounded history.
type userState struct {
	networks  map[string]bool // /24 prefixes seen on success
	countries map[string]bool
	methods   map[string]int // second-factor method → uses

	lastSeen   time.Time // last successful login
	lastEvent  time.Time // last event of any kind (eviction clock)
	lastLoc    geoip.Location
	hasLastLoc bool

	fails   []time.Time // recent-failure ring
	burst   float64     // failure EWMA, decayed to burstAt
	burstAt time.Time
	hours   [24]int // success-hour histogram
	total   int     // successful logins
	mfaUses int     // accepted second factors
}

// Store is the bounded feature table. Safe for concurrent use.
type Store struct {
	geo      *geoip.DB
	maxUsers int
	maxNets  int

	mu    sync.Mutex
	users map[string]*userState

	occupancy *obs.Gauge   // risk_feature_users
	evictions *obs.Counter // risk_feature_evictions_total

	subMu sync.Mutex
	sub   *eventstream.Subscription
	done  chan struct{}
}

// NewStore builds a store.
func NewStore(cfg Config) *Store {
	if cfg.MaxUsers <= 0 {
		cfg.MaxUsers = defaultMaxUsers
	}
	if cfg.MaxNetworks <= 0 {
		cfg.MaxNetworks = defaultMaxNetworks
	}
	return &Store{
		geo:       cfg.Geo,
		maxUsers:  cfg.MaxUsers,
		maxNets:   cfg.MaxNetworks,
		users:     make(map[string]*userState),
		occupancy: cfg.Obs.Gauge("risk_feature_users"),
		evictions: cfg.Obs.Counter("risk_feature_evictions_total"),
	}
}

// Geo reports the configured geolocation DB (nil when disabled).
func (s *Store) Geo() *geoip.DB { return s.geo }

// Slash24 formats the /24 prefix key for an address.
func Slash24(ip net.IP) string {
	var nb [maxKeyLen]byte
	return string(appendNetKey(nb[:0], ip))
}

const maxKeyLen = len("255.255.255.0/24")

// appendNetKey appends the /24 prefix key to buf. Hand-rolled rather than
// fmt.Sprintf, and used with Go's alloc-free map[string] lookup on
// string(buf): this runs on every snapshot and every recorded login.
func appendNetKey(buf []byte, ip net.IP) []byte {
	v4 := ip.To4()
	if v4 == nil {
		return append(buf, ip.String()...)
	}
	buf = strconv.AppendUint(buf, uint64(v4[0]), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(v4[1]), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(v4[2]), 10)
	return append(buf, ".0/24"...)
}

func (s *Store) state(user string, at time.Time) *userState {
	st := s.users[user]
	if st == nil {
		st = &userState{
			networks:  map[string]bool{},
			countries: map[string]bool{},
			methods:   map[string]int{},
		}
		s.users[user] = st
		if len(s.users) > s.maxUsers {
			s.evictLocked()
		}
		s.occupancy.Set(float64(len(s.users)))
	}
	if at.After(st.lastEvent) {
		st.lastEvent = at
	}
	return st
}

// evictLocked drops the least-recently-active batch of users, bringing
// the table back under MaxUsers. Order is (lastEvent, name): purely a
// function of the event history, so replays evict identically.
func (s *Store) evictLocked() {
	batch := s.maxUsers / 64
	if batch < 1 {
		batch = 1
	}
	type cand struct {
		name string
		at   time.Time
	}
	all := make([]cand, 0, len(s.users))
	for name, st := range s.users {
		all = append(all, cand{name, st.lastEvent})
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].at.Equal(all[j].at) {
			return all[i].at.Before(all[j].at)
		}
		return all[i].name < all[j].name
	})
	if batch > len(all) {
		batch = len(all)
	}
	for _, c := range all[:batch] {
		delete(s.users, c.name)
	}
	s.evictions.Add(int64(batch))
}

// RecordSuccess folds a successful login into the user's history.
func (s *Store) RecordSuccess(user string, ip net.IP, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(user, at)
	if len(st.networks) < s.maxNets {
		st.networks[Slash24(ip)] = true
	}
	if s.geo != nil {
		if loc, err := s.geo.Lookup(ip); err == nil {
			if len(st.countries) < maxCountries {
				st.countries[loc.Country] = true
			}
			st.lastLoc, st.hasLastLoc = loc, true
		}
	}
	st.lastSeen = at
	st.hours[at.UTC().Hour()]++
	st.total++
	st.fails = pruneFails(st.fails, at)
}

// RecordFailure folds a failed attempt into the user's history.
func (s *Store) RecordFailure(user string, ip net.IP, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(user, at)
	st.fails = append(pruneFails(st.fails, at), at)
	if len(st.fails) > maxFails {
		st.fails = st.fails[len(st.fails)-maxFails:]
	}
	st.burst = decayBurst(st.burst, st.burstAt, at) + 1
	st.burstAt = at
}

// RecordMFA folds a second-factor outcome (eventstream mfa event) in.
func (s *Store) RecordMFA(user, method string, accepted bool, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(user, at)
	if method != "" && (len(st.methods) < 8 || st.methods[method] > 0) {
		st.methods[method]++
	}
	if accepted {
		st.mfaUses++
	}
}

// decayBurst ages the EWMA from 'from' to 'to'.
func decayBurst(v float64, from, to time.Time) float64 {
	if v == 0 || !to.After(from) {
		return v
	}
	return v * math.Exp(-to.Sub(from).Seconds()/burstTau.Seconds())
}

func pruneFails(fails []time.Time, now time.Time) []time.Time {
	kept := fails[:0]
	for _, f := range fails {
		if now.Sub(f) <= FailWindow {
			kept = append(kept, f)
		}
	}
	if len(kept) > maxFails {
		kept = kept[len(kept)-maxFails:]
	}
	return kept
}

// Ingest folds one typed auth event into the store. This is the single
// code path shared by the bus consumer (Attach) and offline JSONL
// replays, so live and replayed feature state are identical. Risk
// decision events are ignored — the engine's own output must not feed
// back into its input.
func (s *Store) Ingest(e eventstream.Event) {
	if e.User == "" {
		return
	}
	switch e.Type {
	case eventstream.TypeLogin:
		ip := ParseAddr(e.Addr)
		if ip == nil {
			return
		}
		if e.Result == "accept" {
			s.RecordSuccess(e.User, ip, e.Time)
		} else {
			s.RecordFailure(e.User, ip, e.Time)
		}
	case eventstream.TypeMFA:
		s.RecordMFA(e.User, e.Method, e.Result == "accept", e.Time)
	}
	// sms/lockout/enroll/radius/risk: no per-user feature contribution.
}

// ParseAddr extracts the IP from an event address ("ip" or "ip:port").
func ParseAddr(addr string) net.IP {
	if ip := net.ParseIP(addr); ip != nil {
		return ip
	}
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return net.ParseIP(host)
	}
	return nil
}

// Attach subscribes the store to a bus and ingests events on a background
// goroutine until Stop. One attachment at a time.
func (s *Store) Attach(bus *eventstream.Bus, buffer int) {
	s.AttachFunc(bus, buffer, s.Ingest)
}

// AttachFunc is Attach with a custom per-event handler (the risk engine
// substitutes its decide-then-ingest Observe path).
func (s *Store) AttachFunc(bus *eventstream.Bus, buffer int, handle func(eventstream.Event)) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.sub != nil {
		return
	}
	s.sub = bus.Subscribe(buffer)
	s.done = make(chan struct{})
	go func(sub *eventstream.Subscription, done chan struct{}) {
		defer close(done)
		for e := range sub.Events() {
			handle(e)
		}
	}(s.sub, s.done)
}

// Stop closes the attachment and drains buffered events before returning.
func (s *Store) Stop() {
	s.subMu.Lock()
	sub, done := s.sub, s.done
	s.sub, s.done = nil, nil
	s.subMu.Unlock()
	if sub == nil {
		return
	}
	sub.Close()
	<-done
}

// Dropped reports events the attached subscription missed (0 when never
// attached).
func (s *Store) Dropped() uint64 {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.sub == nil {
		return 0
	}
	return s.sub.Dropped()
}

// Users reports how many accounts currently have history.
func (s *Store) Users() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.users)
}

// MethodCount is one second-factor method's use count.
type MethodCount struct {
	Method string
	Count  int
}

// Features is the read-only feature vector for one prospective attempt.
type Features struct {
	// Known is false for accounts with no recorded history at all.
	Known bool
	// History is the number of successful logins on record.
	History int
	// MFAUses is the number of accepted second factors on record.
	MFAUses int
	// Methods is the second-factor mix, sorted by method name.
	Methods []MethodCount

	// NewNetwork is true when the account has history and has never
	// succeeded from the source /24. Network carries the formatted prefix
	// for explanations; to keep the known-network hot path allocation
	// free it is only populated when NewNetwork is set or the account has
	// no successes yet (use Slash24 when the key is always needed).
	Network    string
	NewNetwork bool

	// GeoConfigured reports whether the store has a geolocation DB at
	// all; GeoKnown whether this source resolved. Country/NewCountry are
	// meaningful only when GeoKnown.
	GeoConfigured bool
	GeoKnown      bool
	Country       string
	NewCountry    bool

	// HasLastLoc, SpeedKmh, DistanceKm and Gap describe implied travel
	// from the account's last successful login location.
	HasLastLoc bool
	SpeedKmh   float64
	DistanceKm float64
	Gap        time.Duration

	// RecentFails is the failure count inside FailWindow; FailBurst the
	// burst EWMA decayed to the attempt time.
	RecentFails int
	FailBurst   float64

	// OffHours is set when the account has >= 20 successes and the
	// attempt hour (and both adjacent hours) account for under 2% of them.
	OffHours bool
	Hour     int
}

// Snapshot computes the feature vector for an attempt by user from ip at
// the given time. Read-only: assessment never mutates history.
func (s *Store) Snapshot(user string, ip net.IP, at time.Time) Features {
	s.mu.Lock()
	defer s.mu.Unlock()

	var nb [maxKeyLen]byte
	key := appendNetKey(nb[:0], ip)
	f := Features{GeoConfigured: s.geo != nil, Hour: at.UTC().Hour()}
	st := s.users[user]
	if st == nil {
		f.Network = string(key)
		return f
	}
	f.Known = true
	f.History = st.total
	f.MFAUses = st.mfaUses
	if len(st.methods) > 0 {
		f.Methods = make([]MethodCount, 0, len(st.methods))
		for m, n := range st.methods {
			f.Methods = append(f.Methods, MethodCount{m, n})
		}
		sort.Slice(f.Methods, func(i, j int) bool { return f.Methods[i].Method < f.Methods[j].Method })
	}

	if st.total > 0 {
		f.NewNetwork = !st.networks[string(key)] // alloc-free map read
	}
	if f.NewNetwork || st.total == 0 {
		f.Network = string(key)
	}
	var loc geoip.Location
	if s.geo != nil {
		if l, err := s.geo.Lookup(ip); err == nil {
			loc = l
			f.GeoKnown = true
			f.Country = l.Country
			if st.total > 0 {
				f.NewCountry = !st.countries[l.Country]
			}
		}
	}
	if f.GeoKnown && st.hasLastLoc {
		f.HasLastLoc = true
		f.Gap = at.Sub(st.lastSeen)
		if st.lastLoc != loc { // same place (the common case): zero km, zero speed
			f.DistanceKm = geoip.KilometersBetween(st.lastLoc, loc)
			switch {
			case f.Gap > 0:
				f.SpeedKmh = f.DistanceKm / f.Gap.Hours()
			case f.DistanceKm > 0:
				f.SpeedKmh = math.Inf(1)
			}
		}
	}

	for _, ft := range st.fails {
		if at.Sub(ft) <= FailWindow {
			f.RecentFails++
		}
	}
	f.FailBurst = decayBurst(st.burst, st.burstAt, at)

	if st.total >= 20 {
		usual := false
		for _, hh := range []int{(f.Hour + 23) % 24, f.Hour, (f.Hour + 1) % 24} {
			if float64(st.hours[hh]) >= 0.02*float64(st.total) {
				usual = true
			}
		}
		f.OffHours = !usual
	}
	return f
}
