package feature

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/geoip"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
)

var t0 = time.Date(2026, 3, 2, 10, 0, 0, 0, time.UTC)

func ip(s string) net.IP { return net.ParseIP(s) }

func loginEvent(user, addr, result string, at time.Time) eventstream.Event {
	return eventstream.Event{Time: at, Type: eventstream.TypeLogin,
		Component: "sshd", User: user, Addr: addr, Result: result}
}

func TestSlash24(t *testing.T) {
	cases := []struct{ in, want string }{
		{"129.114.3.7", "129.114.3.0/24"},
		{"10.0.0.1", "10.0.0.0/24"},
		{"255.255.255.255", "255.255.255.0/24"},
		{"2001:db8::1", "2001:db8::1"}, // IPv6: the address is its own key
	}
	for _, c := range cases {
		if got := Slash24(ip(c.in)); got != c.want {
			t.Errorf("Slash24(%s) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct{ in, want string }{
		{"129.114.3.7", "129.114.3.7"},
		{"129.114.3.7:51514", "129.114.3.7"},
		{"[2001:db8::1]:22", "2001:db8::1"},
		{"2001:db8::1", "2001:db8::1"},
		{"not-an-address", ""},
		{"", ""},
	}
	for _, c := range cases {
		got := ParseAddr(c.in)
		if c.want == "" {
			if got != nil {
				t.Errorf("ParseAddr(%q) = %v, want nil", c.in, got)
			}
			continue
		}
		if got == nil || got.String() != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %s", c.in, got, c.want)
		}
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	s := NewStore(Config{Geo: geoip.Synthetic()})
	austin := ip("129.114.3.7")

	// Unknown account: nothing is novel, geo is configured but history
	// absent.
	f := s.Snapshot("alice", austin, t0)
	if f.Known || f.History != 0 || f.NewNetwork || f.NewCountry {
		t.Fatalf("unknown account snapshot = %+v", f)
	}
	if !f.GeoConfigured || f.Network != "129.114.3.0/24" {
		t.Fatalf("snapshot geo/network = %+v", f)
	}

	for i := 0; i < 5; i++ {
		s.RecordSuccess("alice", austin, t0.AddDate(0, 0, i))
	}
	at := t0.AddDate(0, 0, 6)
	f = s.Snapshot("alice", austin, at)
	if !f.Known || f.History != 5 {
		t.Fatalf("history = %+v", f)
	}
	if f.NewNetwork || f.Network != "" {
		t.Fatalf("familiar network flagged novel: %+v", f)
	}
	if f.NewCountry || !f.GeoKnown {
		t.Fatalf("familiar country flagged novel: %+v", f)
	}
	if !f.HasLastLoc || f.DistanceKm != 0 || f.SpeedKmh != 0 {
		t.Fatalf("same-place travel features = %+v", f)
	}

	// Novel origin: network + country light up and the key is populated.
	f = s.Snapshot("alice", ip("141.20.1.2"), at)
	if !f.NewNetwork || f.Network != "141.20.1.0/24" || !f.NewCountry {
		t.Fatalf("novel origin snapshot = %+v", f)
	}
	if !f.HasLastLoc || f.DistanceKm < 1000 || f.SpeedKmh <= 0 {
		t.Fatalf("travel features = %+v", f)
	}
}

func TestFailureWindowAndBurst(t *testing.T) {
	s := NewStore(Config{})
	a := ip("10.0.0.1")
	for i := 0; i < 4; i++ {
		s.RecordFailure("bob", a, t0.Add(time.Duration(i)*time.Minute))
	}
	at := t0.Add(5 * time.Minute)
	f := s.Snapshot("bob", a, at)
	if f.RecentFails != 4 {
		t.Fatalf("RecentFails = %d, want 4", f.RecentFails)
	}
	if f.FailBurst <= 0 || f.FailBurst > 4 {
		t.Fatalf("FailBurst = %v", f.FailBurst)
	}
	// Outside the window the count expires; the EWMA has decayed to
	// (practically) nothing.
	late := t0.Add(FailWindow + 6*time.Minute)
	f = s.Snapshot("bob", a, late)
	if f.RecentFails != 0 {
		t.Fatalf("RecentFails after window = %d", f.RecentFails)
	}
	if f.FailBurst > 0.25 {
		t.Fatalf("FailBurst barely decayed: %v", f.FailBurst)
	}
	// The ring itself is bounded.
	for i := 0; i < 3*maxFails; i++ {
		s.RecordFailure("bob", a, late.Add(time.Duration(i)*time.Second))
	}
	f = s.Snapshot("bob", a, late.Add(time.Duration(3*maxFails)*time.Second))
	if f.RecentFails != maxFails {
		t.Fatalf("RecentFails = %d, want ring cap %d", f.RecentFails, maxFails)
	}
}

func TestOffHoursProfile(t *testing.T) {
	s := NewStore(Config{})
	a := ip("10.0.0.1")
	// 30 successes, all at 09:00–11:00 UTC.
	for i := 0; i < 30; i++ {
		s.RecordSuccess("carol", a, t0.AddDate(0, 0, -30+i).Add(time.Duration(i%3)*time.Hour))
	}
	if f := s.Snapshot("carol", a, t0); f.OffHours {
		t.Fatalf("usual hour flagged off-hours: %+v", f)
	}
	night := time.Date(2026, 3, 2, 3, 0, 0, 0, time.UTC)
	if f := s.Snapshot("carol", a, night); !f.OffHours {
		t.Fatalf("03:00 not flagged off-hours: %+v", f)
	}
	// Accounts with thin history never trip the flag.
	s.RecordSuccess("dave", a, t0)
	if f := s.Snapshot("dave", a, night); f.OffHours {
		t.Fatal("off-hours fired with 1 login of history")
	}
}

func TestMethodMixAndMFAUses(t *testing.T) {
	s := NewStore(Config{})
	s.RecordMFA("erin", "totp", true, t0)
	s.RecordMFA("erin", "totp", true, t0.Add(time.Minute))
	s.RecordMFA("erin", "sms", true, t0.Add(2*time.Minute))
	s.RecordMFA("erin", "sms", false, t0.Add(3*time.Minute))
	f := s.Snapshot("erin", ip("10.0.0.1"), t0.Add(4*time.Minute))
	if f.MFAUses != 3 {
		t.Fatalf("MFAUses = %d, want 3", f.MFAUses)
	}
	want := []MethodCount{{"sms", 2}, {"totp", 2}}
	if len(f.Methods) != 2 || f.Methods[0] != want[0] || f.Methods[1] != want[1] {
		t.Fatalf("Methods = %+v, want %+v", f.Methods, want)
	}
}

func TestIngestRouting(t *testing.T) {
	s := NewStore(Config{})
	s.Ingest(loginEvent("alice", "129.114.3.7:50000", "accept", t0))
	s.Ingest(loginEvent("alice", "129.114.3.7:50001", "reject", t0.Add(time.Minute)))
	s.Ingest(eventstream.Event{Time: t0, Type: eventstream.TypeMFA,
		User: "alice", Method: "totp", Result: "accept"})
	// Ignored: no user, unparseable address, decision feedback.
	s.Ingest(loginEvent("", "129.114.3.7", "accept", t0))
	s.Ingest(loginEvent("alice", "???", "accept", t0))
	s.Ingest(eventstream.Event{Time: t0, Type: eventstream.TypeRisk,
		User: "alice", Addr: "159.226.40.1", Result: "deny"})
	s.Ingest(eventstream.Event{Time: t0, Type: eventstream.TypeSMS, User: "alice"})

	f := s.Snapshot("alice", ip("129.114.3.7"), t0.Add(2*time.Minute))
	if f.History != 1 || f.RecentFails != 1 || f.MFAUses != 1 {
		t.Fatalf("ingested features = %+v", f)
	}
	if s.Users() != 1 {
		t.Fatalf("Users = %d, want 1", s.Users())
	}
}

func TestBoundedUnderChurnStorm(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStore(Config{MaxUsers: 1000, Obs: reg})
	a := ip("10.0.0.1")
	for i := 0; i < 10000; i++ {
		s.RecordSuccess(fmt.Sprintf("user%05d", i), a, t0.Add(time.Duration(i)*time.Second))
	}
	if n := s.Users(); n > 1000 {
		t.Fatalf("Users = %d, want <= cap 1000", n)
	}
	// The newest accounts survive; the oldest were evicted.
	if f := s.Snapshot("user09999", a, t0.Add(time.Hour*3)); !f.Known {
		t.Fatal("most recent account evicted")
	}
	if f := s.Snapshot("user00000", a, t0.Add(time.Hour*3)); f.Known {
		t.Fatal("oldest account survived a 10x churn storm")
	}
}

func TestEvictionDeterministic(t *testing.T) {
	// The same event history must evict the same accounts: replay
	// convergence depends on it.
	feed := func() *Store {
		s := NewStore(Config{MaxUsers: 64})
		for i := 0; i < 500; i++ {
			user := fmt.Sprintf("u%03d", i%150) // revisits keep some fresh
			s.RecordSuccess(user, ip("10.0.0.1"), t0.Add(time.Duration(i)*time.Minute))
		}
		return s
	}
	s1, s2 := feed(), feed()
	if s1.Users() != s2.Users() {
		t.Fatalf("user counts diverged: %d vs %d", s1.Users(), s2.Users())
	}
	at := t0.Add(600 * time.Minute)
	for i := 0; i < 150; i++ {
		user := fmt.Sprintf("u%03d", i)
		k1 := s1.Snapshot(user, ip("10.0.0.1"), at).Known
		k2 := s2.Snapshot(user, ip("10.0.0.1"), at).Known
		if k1 != k2 {
			t.Fatalf("survivor sets diverged at %s: %v vs %v", user, k1, k2)
		}
	}
}

func TestAttachIngestsAndStopDrains(t *testing.T) {
	leakcheck.Check(t)
	bus := eventstream.NewBus(nil)
	s := NewStore(Config{})
	s.Attach(bus, 1024)
	const n = 500
	for i := 0; i < n; i++ {
		bus.Publish(loginEvent("alice", "129.114.3.7", "accept", t0.Add(time.Duration(i)*time.Minute)))
	}
	// Stop closes the subscription and drains everything already
	// buffered: all n events must be in the store afterwards.
	s.Stop()
	f := s.Snapshot("alice", ip("129.114.3.7"), t0.AddDate(0, 0, 1))
	if f.History != n {
		t.Fatalf("History = %d, want %d (Stop did not drain)", f.History, n)
	}
	if s.Dropped() != 0 {
		t.Fatalf("Dropped = %d", s.Dropped())
	}
	// Second Stop is a no-op; Attach after Stop works again.
	s.Stop()
	s.Attach(bus, 16)
	bus.Publish(loginEvent("alice", "129.114.3.7", "accept", t0.AddDate(0, 0, 2)))
	s.Stop()
	if f := s.Snapshot("alice", ip("129.114.3.7"), t0.AddDate(0, 0, 3)); f.History != n+1 {
		t.Fatalf("History after re-attach = %d, want %d", f.History, n+1)
	}
}

func TestConcurrentPublishSnapshotStop(t *testing.T) {
	// Race hygiene under -race: concurrent bus publishes, direct writes,
	// reads, and a mid-flight Stop.
	leakcheck.Check(t)
	bus := eventstream.NewBus(nil)
	s := NewStore(Config{MaxUsers: 200, Geo: geoip.Synthetic()})
	s.Attach(bus, 4096)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				user := fmt.Sprintf("w%dg%d", g, i%50)
				bus.Publish(loginEvent(user, "129.114.3.7", "accept", t0.Add(time.Duration(i)*time.Second)))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.RecordFailure("direct", ip("10.0.0.9"), t0.Add(time.Duration(i)*time.Second))
			s.Snapshot("w0g0", ip("129.114.3.7"), t0.Add(time.Duration(i)*time.Second))
			s.Users()
		}
	}()
	wg.Wait()
	s.Stop()
	if s.Users() > 200 {
		t.Fatalf("Users = %d, want <= 200", s.Users())
	}
}
