// Package risk implements the dynamic risk assessment the paper names as
// the infrastructure's growth path (§6). Each login attempt is scored
// from the user's history:
//
//   - novel source network (first sighting of the /24),
//   - novel country,
//   - impossible travel (geo-velocity between consecutive logins),
//   - recent failed-attempt pressure on the account,
//   - off-hours access relative to the user's own activity profile.
//
// Scores map to levels, and a PAM module (Gate) folds the level into the
// Figure 1 stack: Elevated cancels any MFA exemption for the attempt
// (forces the second factor), Critical denies outright. History is kept
// in memory with bounded per-user state.
package risk

import (
	"fmt"
	"net"
	"sync"
	"time"

	"openmfa/internal/geoip"
)

// Level buckets a score.
type Level int

// Risk levels.
const (
	Low Level = iota
	Elevated
	Critical
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Elevated:
		return "elevated"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Weights tune the scoring. The zero value is unusable; use
// DefaultWeights.
type Weights struct {
	NewNetwork      float64 // first login from this /24
	NewCountry      float64 // first login from this country
	ImpossibleSpeed float64 // travel faster than MaxKmh
	FailPressure    float64 // per recent failed attempt (capped)
	OffHours        float64 // outside the user's usual window
	MaxKmh          float64 // fastest plausible travel
	// ElevatedAt / CriticalAt are the level thresholds.
	ElevatedAt, CriticalAt float64
}

// DefaultWeights is a conservative profile: a single novelty signal
// elevates; novelty plus impossible travel (or heavy failure pressure)
// becomes critical.
func DefaultWeights() Weights {
	return Weights{
		NewNetwork:      0.35,
		NewCountry:      0.55,
		ImpossibleSpeed: 0.80,
		FailPressure:    0.12,
		OffHours:        0.15,
		MaxKmh:          950, // commercial flight
		ElevatedAt:      0.50,
		CriticalAt:      1.20,
	}
}

// Assessment is the scored verdict for one attempt.
type Assessment struct {
	Score   float64
	Level   Level
	Reasons []string
}

// userState is the bounded per-user history.
type userState struct {
	networks   map[string]bool // /24 prefixes seen
	countries  map[string]bool
	lastSeen   time.Time
	lastLoc    geoip.Location
	hasLastLoc bool
	// failure ring: timestamps of recent failures.
	fails []time.Time
	// hour histogram of successful logins.
	hours [24]int
	total int
}

// Engine scores attempts. Safe for concurrent use.
type Engine struct {
	Geo     *geoip.DB
	Weights Weights

	mu    sync.Mutex
	users map[string]*userState
}

// NewEngine builds an engine over a geolocation DB (nil disables the
// geographic signals).
func NewEngine(geo *geoip.DB, w Weights) *Engine {
	return &Engine{Geo: geo, Weights: w, users: make(map[string]*userState)}
}

func (e *Engine) state(user string) *userState {
	s := e.users[user]
	if s == nil {
		s = &userState{networks: map[string]bool{}, countries: map[string]bool{}}
		e.users[user] = s
	}
	return s
}

func slash24(ip net.IP) string {
	v4 := ip.To4()
	if v4 == nil {
		return ip.String()
	}
	return fmt.Sprintf("%d.%d.%d.0/24", v4[0], v4[1], v4[2])
}

const failWindow = 30 * time.Minute

// Assess scores an attempt without mutating history (call RecordSuccess /
// RecordFailure afterwards with the outcome).
func (e *Engine) Assess(user string, ip net.IP, at time.Time) Assessment {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.state(user)
	w := e.Weights
	var a Assessment

	var loc geoip.Location
	var haveLoc bool
	if e.Geo != nil {
		if l, err := e.Geo.Lookup(ip); err == nil {
			loc, haveLoc = l, true
		}
	}

	if s.total > 0 {
		if !s.networks[slash24(ip)] {
			a.Score += w.NewNetwork
			a.Reasons = append(a.Reasons, "new source network "+slash24(ip))
		}
		if haveLoc && !s.countries[loc.Country] {
			a.Score += w.NewCountry
			a.Reasons = append(a.Reasons, "new country "+loc.Country)
		}
		if haveLoc && s.hasLastLoc && at.After(s.lastSeen) {
			km := geoip.KilometersBetween(s.lastLoc, loc)
			hours := at.Sub(s.lastSeen).Hours()
			if hours > 0 && km > 50 {
				speed := km / hours
				if speed > w.MaxKmh {
					a.Score += w.ImpossibleSpeed
					a.Reasons = append(a.Reasons,
						fmt.Sprintf("impossible travel: %.0f km in %.1f h", km, hours))
				}
			}
		}
		if s.total >= 20 && w.OffHours > 0 {
			h := at.UTC().Hour()
			// "Usual" = the hour accounts for at least 2% of history,
			// counting adjacent hours as usual too.
			usual := false
			for _, hh := range []int{(h + 23) % 24, h, (h + 1) % 24} {
				if float64(s.hours[hh]) >= 0.02*float64(s.total) {
					usual = true
				}
			}
			if !usual {
				a.Score += w.OffHours
				a.Reasons = append(a.Reasons, fmt.Sprintf("unusual hour %02d:00 UTC", h))
			}
		}
	}

	// Failure pressure applies to new and old accounts alike.
	recent := 0
	for _, f := range s.fails {
		if at.Sub(f) <= failWindow {
			recent++
		}
	}
	if recent > 0 {
		n := recent
		if n > 10 {
			n = 10
		}
		a.Score += w.FailPressure * float64(n)
		a.Reasons = append(a.Reasons, fmt.Sprintf("%d recent failed attempts", recent))
	}

	switch {
	case a.Score >= w.CriticalAt:
		a.Level = Critical
	case a.Score >= w.ElevatedAt:
		a.Level = Elevated
	}
	return a
}

// RecordSuccess folds a successful login into the user's history.
func (e *Engine) RecordSuccess(user string, ip net.IP, at time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.state(user)
	if len(s.networks) < 512 {
		s.networks[slash24(ip)] = true
	}
	if e.Geo != nil {
		if loc, err := e.Geo.Lookup(ip); err == nil {
			s.countries[loc.Country] = true
			s.lastLoc, s.hasLastLoc = loc, true
		}
	}
	s.lastSeen = at
	s.hours[at.UTC().Hour()]++
	s.total++
	s.fails = pruneFails(s.fails, at)
}

// RecordFailure folds a failed attempt into the user's history.
func (e *Engine) RecordFailure(user string, ip net.IP, at time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.state(user)
	s.fails = append(pruneFails(s.fails, at), at)
}

func pruneFails(fails []time.Time, now time.Time) []time.Time {
	kept := fails[:0]
	for _, f := range fails {
		if now.Sub(f) <= failWindow {
			kept = append(kept, f)
		}
	}
	// Bound the slice.
	if len(kept) > 64 {
		kept = kept[len(kept)-64:]
	}
	return kept
}

// Users reports how many accounts have history.
func (e *Engine) Users() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.users)
}
