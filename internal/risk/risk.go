// Package risk is the adaptive-MFA decision engine the paper names as
// the infrastructure's growth path (§6), built on the RBA architecture
// from the OpenStack risk-based-authentication paper (PAPERS.md): a
// bounded streaming feature store (internal/risk/feature) profiles every
// account from live auth events, and a declarative policy (weights +
// thresholds + per-feature explanations) turns each attempt's feature
// vector into one of four outcomes:
//
//   - skip    — clean score on a well-established account: the PAM gate
//     ends the stack successfully before the token module, so
//     the user is not prompted (policy opt-in, AllowSkip);
//   - allow   — abstain; the Figure 1 stack (exemptions included) runs
//     unchanged;
//   - step_up — force the second factor, cancelling any exemption;
//   - deny    — refuse the attempt before the second factor.
//
// Scored signals: novel source /24, novel country, impossible travel
// (geo-velocity), unmappable source addresses (scored conservatively —
// they can also never earn a skip), off-hours access against the
// account's own profile, and failed-attempt pressure (sliding-window
// count extended by a burst EWMA).
//
// Every decision increments risk_* metrics and is published back onto
// the event bus as a TypeRisk event; the feature store ignores those, so
// the engine never feeds on its own output.
package risk

import (
	"fmt"
	"net"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/geoip"
	"openmfa/internal/obs"
	"openmfa/internal/risk/feature"
)

// Level buckets a score (legacy coarse scale; Decision is the full view).
type Level int

// Risk levels.
const (
	Low Level = iota
	Elevated
	Critical
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Elevated:
		return "elevated"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Assessment is the legacy scored verdict for one attempt (a flattened
// Decision; Assess keeps the original advisory API).
type Assessment struct {
	Score   float64
	Level   Level
	Reasons []string
}

const failWindow = feature.FailWindow

// burstFloor is the EWMA value below which decayed failure pressure
// stops scoring: stale bursts read as zero, like the expired window.
const burstFloor = 0.25

// Options configures New. Zero values take defaults.
type Options struct {
	// Geo resolves source addresses (nil disables geographic signals).
	// Ignored when Store is set.
	Geo *geoip.DB
	// Policy is the decision policy; a zero Weights field is replaced by
	// DefaultWeights.
	Policy Policy
	// Obs, when set, exports risk_decisions_total{decision},
	// risk_reasons_total{reason}, and risk_assess_duration_seconds (the
	// feature store adds risk_feature_users and
	// risk_feature_evictions_total).
	Obs *obs.Registry
	// Events, when set, receives one TypeRisk event per Decide call.
	Events *eventstream.Bus
	// MaxUsers bounds the feature store (0 = its default). Ignored when
	// Store is set.
	MaxUsers int
	// Store, when set, is an externally built feature store to decide
	// over (shared with other consumers).
	Store *feature.Store
}

// Engine scores attempts and decides outcomes. Safe for concurrent use.
type Engine struct {
	store  *feature.Store
	policy Policy
	events *eventstream.Bus

	decisions [outcomeCount]*obs.Counter // indexed by Outcome (hot path: no map hash)
	reasons   map[string]*obs.Counter
	assessDur *obs.Histogram
}

// New builds an engine.
func New(o Options) *Engine {
	if o.Policy.Weights == (Weights{}) {
		o.Policy.Weights = DefaultWeights()
	}
	st := o.Store
	if st == nil {
		st = feature.NewStore(feature.Config{Geo: o.Geo, MaxUsers: o.MaxUsers, Obs: o.Obs})
	}
	e := &Engine{
		store:     st,
		policy:    o.Policy.withDefaults(),
		events:    o.Events,
		reasons:   make(map[string]*obs.Counter, len(FeatureNames)),
		assessDur: o.Obs.Histogram("risk_assess_duration_seconds", nil),
	}
	// Pre-create every label value so the families appear in the
	// exposition (and pass metrics-lint) before the first decision.
	for _, out := range Outcomes {
		e.decisions[out] = o.Obs.Counter("risk_decisions_total", "decision", out.String())
	}
	for _, name := range FeatureNames {
		e.reasons[name] = o.Obs.Counter("risk_reasons_total", "reason", name)
	}
	return e
}

// NewEngine builds an engine over a geolocation DB (nil disables the
// geographic signals) with the legacy assess-only behaviour: adaptive
// skip stays off unless the policy enables it.
func NewEngine(geo *geoip.DB, w Weights) *Engine {
	return New(Options{Geo: geo, Policy: Policy{Weights: w}})
}

// Store exposes the engine's feature store.
func (e *Engine) Store() *feature.Store { return e.store }

// Policy reports the active policy.
func (e *Engine) Policy() Policy { return e.policy }

// evaluate scores one attempt from the feature vector. Pure: no metrics,
// no events, no mutation.
func (e *Engine) evaluate(user string, ip net.IP, at time.Time) Decision {
	f := e.store.Snapshot(user, ip, at)
	w := e.policy.Weights
	var d Decision
	d.History = f.History
	add := func(name string, weight float64, detail string) {
		d.Score += weight
		d.Reasons = append(d.Reasons, Reason{Feature: name, Weight: weight, Detail: detail})
	}

	if f.History > 0 {
		if f.NewNetwork {
			add(FeatureNewNetwork, w.NewNetwork, "new source network "+f.Network)
		}
		if f.GeoKnown && f.NewCountry {
			add(FeatureNewCountry, w.NewCountry, "new country "+f.Country)
		}
		if f.HasLastLoc && f.DistanceKm > 50 && f.SpeedKmh > w.MaxKmh {
			add(FeatureImpossibleTravel, w.ImpossibleSpeed,
				fmt.Sprintf("impossible travel: %.0f km in %.1f h", f.DistanceKm, f.Gap.Hours()))
		}
		if f.GeoConfigured && !f.GeoKnown && w.UnknownGeo > 0 {
			// IPv6 or unmapped sources: we cannot clear them
			// geographically, so they score conservatively.
			add(FeatureUnknownGeo, w.UnknownGeo, "source address in no known range")
		}
		if f.OffHours && w.OffHours > 0 {
			add(FeatureOffHours, w.OffHours, fmt.Sprintf("unusual hour %02d:00 UTC", f.Hour))
		}
	}

	// Failure pressure applies to new and old accounts alike: the
	// sliding-window count, extended by the burst EWMA so a storm keeps
	// scoring as it decays.
	pressure := float64(f.RecentFails)
	if f.FailBurst > pressure {
		pressure = f.FailBurst
	}
	if pressure >= burstFloor || f.RecentFails > 0 {
		if pressure > 10 {
			pressure = 10
		}
		detail := fmt.Sprintf("%d recent failed attempts", f.RecentFails)
		if f.RecentFails == 0 {
			detail = fmt.Sprintf("failure burst (ewma %.1f)", f.FailBurst)
		}
		add(FeatureFailPressure, w.FailPressure*pressure, detail)
	}

	switch {
	case d.Score >= w.CriticalAt:
		d.Outcome = OutcomeDeny
	case d.Score >= w.ElevatedAt:
		d.Outcome = OutcomeStepUp
	case e.policy.AllowSkip &&
		f.History >= e.policy.MinHistory &&
		d.Score < e.policy.SkipBelow &&
		(!f.GeoConfigured || f.GeoKnown):
		// Skip only accounts we can fully place: an unmappable source
		// (IPv6, unknown range) never earns the bypass.
		d.Outcome = OutcomeSkip
	default:
		d.Outcome = OutcomeAllow
	}
	return d
}

// Assess scores an attempt without mutating history (call RecordSuccess /
// RecordFailure afterwards with the outcome). Advisory: unlike Decide it
// does not count a decision or publish an event.
func (e *Engine) Assess(user string, ip net.IP, at time.Time) Assessment {
	var start time.Time
	if e.assessDur != nil {
		start = time.Now()
	}
	d := e.evaluate(user, ip, at)
	if e.assessDur != nil {
		e.assessDur.ObserveSince(start)
	}
	return Assessment{Score: d.Score, Level: d.Level(), Reasons: d.ReasonStrings()}
}

// Decide scores an attempt and commits the decision: exactly one
// risk_decisions_total increment and exactly one TypeRisk event per call.
// Like Assess it never mutates history — outcomes feed back through
// RecordSuccess / RecordFailure (or Ingest).
func (e *Engine) Decide(user string, ip net.IP, at time.Time) Decision {
	var start time.Time
	if e.assessDur != nil {
		start = time.Now()
	}
	d := e.evaluate(user, ip, at)
	if e.assessDur != nil {
		e.assessDur.ObserveSince(start)
	}
	e.decisions[d.Outcome].Inc()
	for _, r := range d.Reasons {
		if c := e.reasons[r.Feature]; c != nil {
			c.Inc()
		}
	}
	if e.events != nil {
		addr := ""
		if ip != nil {
			addr = ip.String()
		}
		e.events.Publish(eventstream.Event{
			Time: at, Type: eventstream.TypeRisk, Component: "risk",
			User: user, Addr: addr,
			Result: d.Outcome.String(), Detail: d.Detail(),
		})
	}
	return d
}

// RecordSuccess folds a successful login into the user's history.
func (e *Engine) RecordSuccess(user string, ip net.IP, at time.Time) {
	e.store.RecordSuccess(user, ip, at)
}

// RecordFailure folds a failed attempt into the user's history.
func (e *Engine) RecordFailure(user string, ip net.IP, at time.Time) {
	e.store.RecordFailure(user, ip, at)
}

// Users reports how many accounts have history.
func (e *Engine) Users() int { return e.store.Users() }

// Observe is the streaming (advisory) mode used by bus attachments and
// offline JSONL replays: a login event is first decided against the
// history accumulated so far — exactly as the PAM gate would have seen it
// — and then folded into the feature store. Other event types only feed
// the store. Returns the decision and whether one was made.
func (e *Engine) Observe(ev eventstream.Event) (Decision, bool) {
	var d Decision
	decided := false
	if ev.Type == eventstream.TypeLogin && ev.User != "" {
		if ip := feature.ParseAddr(ev.Addr); ip != nil {
			d = e.Decide(ev.User, ip, ev.Time)
			decided = true
		}
	}
	e.store.Ingest(ev)
	return d, decided
}

// Attach subscribes the engine to a bus in advisory mode: every login
// event is decided (metrics + republished TypeRisk decision) and
// ingested via Observe, on a background goroutine until Stop. The
// engine's own decision events are ignored by Observe, so attaching to
// the bus it publishes on does not loop. Do not combine with the
// synchronous PAM-gate wiring — the store would double-count.
func (e *Engine) Attach(bus *eventstream.Bus, buffer int) {
	e.store.AttachFunc(bus, buffer, func(ev eventstream.Event) { e.Observe(ev) })
}

// Stop closes an Attach subscription and drains it.
func (e *Engine) Stop() { e.store.Stop() }

// Dropped reports events an Attach subscription missed.
func (e *Engine) Dropped() uint64 { return e.store.Dropped() }
