package risk

import (
	"fmt"
	"strings"
)

// Feature names used in decision explanations, reason counters, and the
// declarative policy. One per scored signal.
const (
	FeatureNewNetwork       = "new_network"
	FeatureNewCountry       = "new_country"
	FeatureImpossibleTravel = "impossible_travel"
	FeatureUnknownGeo       = "unknown_geo"
	FeatureOffHours         = "off_hours"
	FeatureFailPressure     = "fail_pressure"
)

// FeatureNames lists every scored feature (stable order).
var FeatureNames = []string{
	FeatureNewNetwork, FeatureNewCountry, FeatureImpossibleTravel,
	FeatureUnknownGeo, FeatureOffHours, FeatureFailPressure,
}

// Weights tune the scoring. The zero value is unusable; use
// DefaultWeights.
type Weights struct {
	NewNetwork      float64 // first login from this /24
	NewCountry      float64 // first login from this country
	ImpossibleSpeed float64 // travel faster than MaxKmh
	FailPressure    float64 // per recent failed attempt (capped)
	OffHours        float64 // outside the user's usual window
	UnknownGeo      float64 // source resolves to no known range (conservative)
	MaxKmh          float64 // fastest plausible travel
	// ElevatedAt / CriticalAt are the step-up / deny thresholds.
	ElevatedAt, CriticalAt float64
}

// DefaultWeights is a conservative profile: a single novelty signal
// elevates; novelty plus impossible travel (or heavy failure pressure)
// becomes critical.
func DefaultWeights() Weights {
	return Weights{
		NewNetwork:      0.35,
		NewCountry:      0.55,
		ImpossibleSpeed: 0.80,
		FailPressure:    0.12,
		OffHours:        0.15,
		UnknownGeo:      0.25,
		MaxKmh:          950, // commercial flight
		ElevatedAt:      0.50,
		CriticalAt:      1.20,
	}
}

// Policy is the declarative decision policy: feature weights, the
// step-up/deny thresholds they feed (Weights.ElevatedAt / CriticalAt),
// and the adaptive-skip tier that grants clean, well-established
// accounts an MFA bypass for the attempt.
type Policy struct {
	Weights Weights
	// AllowSkip enables the skip outcome. Off (the default), low scores
	// produce OutcomeAllow — the gate abstains and the Figure 1 stack
	// runs unchanged, which is the pre-adaptive behaviour.
	AllowSkip bool
	// SkipBelow is the exclusive score ceiling for a skip (default 0.05:
	// any scored signal disqualifies).
	SkipBelow float64
	// MinHistory is the successful-login count an account needs before
	// it can earn a skip (default 20).
	MinHistory int
}

// DefaultPolicy scores with DefaultWeights and keeps adaptive skip off:
// drop-in behaviour for the original assess-only engine.
func DefaultPolicy() Policy {
	return Policy{Weights: DefaultWeights(), SkipBelow: 0.05, MinHistory: 20}
}

// AdaptivePolicy is DefaultPolicy with the skip tier enabled — the
// prompt-reduction mode evaluated by the rollout attack-mix scenarios.
func AdaptivePolicy() Policy {
	p := DefaultPolicy()
	p.AllowSkip = true
	return p
}

func (p Policy) withDefaults() Policy {
	if p.SkipBelow == 0 {
		p.SkipBelow = 0.05
	}
	if p.MinHistory == 0 {
		p.MinHistory = 20
	}
	return p
}

// Outcome is the per-attempt verdict.
type Outcome int

// Outcomes, in increasing severity.
const (
	// OutcomeAllow: no adaptive action; the stack (including any
	// exemption) runs unchanged.
	OutcomeAllow Outcome = iota
	// OutcomeSkip: the account earned an MFA bypass for this attempt.
	OutcomeSkip
	// OutcomeStepUp: force the second factor, cancelling any exemption.
	OutcomeStepUp
	// OutcomeDeny: refuse the attempt outright.
	OutcomeDeny

	outcomeCount = iota
)

// String names the outcome (used as the risk_decisions_total label and
// the risk event's Result).
func (o Outcome) String() string {
	switch o {
	case OutcomeAllow:
		return "allow"
	case OutcomeSkip:
		return "skip"
	case OutcomeStepUp:
		return "step_up"
	case OutcomeDeny:
		return "deny"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Outcomes lists every outcome (stable order).
var Outcomes = []Outcome{OutcomeAllow, OutcomeSkip, OutcomeStepUp, OutcomeDeny}

// Reason is one scored feature's contribution to a decision.
type Reason struct {
	Feature string  // feature name constant
	Weight  float64 // score contribution
	Detail  string  // human-readable explanation
}

// Decision is the scored verdict for one attempt.
type Decision struct {
	Outcome Outcome
	Score   float64
	Reasons []Reason
	// History is the account's successful-login count at decision time.
	History int
}

// Level maps the decision onto the coarse legacy scale (deny=critical,
// step-up=elevated, everything else low).
func (d Decision) Level() Level {
	switch d.Outcome {
	case OutcomeDeny:
		return Critical
	case OutcomeStepUp:
		return Elevated
	default:
		return Low
	}
}

// ReasonStrings flattens the explanations.
func (d Decision) ReasonStrings() []string {
	out := make([]string, len(d.Reasons))
	for i, r := range d.Reasons {
		out[i] = r.Detail
	}
	return out
}

// Detail is the one-line deterministic rendering published on the event
// bus and attached to flight-recorder spans.
func (d Decision) Detail() string {
	var b strings.Builder
	fmt.Fprintf(&b, "score=%.2f", d.Score)
	for _, r := range d.Reasons {
		b.WriteString("; ")
		b.WriteString(r.Detail)
	}
	return b.String()
}
