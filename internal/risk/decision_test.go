package risk

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/geoip"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
	"openmfa/internal/risk/feature"
)

var (
	decT0    = time.Date(2026, 3, 2, 10, 0, 0, 0, time.UTC)
	unmapped = net.ParseIP("2001:db8::1")
)

// decSeed builds n days of boring Austin history ending just before decT0.
func decSeed(e *Engine, user string, n int) {
	for i := 0; i < n; i++ {
		e.RecordSuccess(user, austin, decT0.AddDate(0, 0, -n+i))
	}
}

func TestDecideOutcomes(t *testing.T) {
	e := New(Options{Geo: geoip.Synthetic(), Policy: AdaptivePolicy()})
	decSeed(e, "alice", 30)

	cases := []struct {
		name string
		ip   net.IP
		want Outcome
	}{
		{"established familiar origin", austin, OutcomeSkip},
		{"novel network and country", german, OutcomeStepUp},
	}
	for _, c := range cases {
		if d := e.Decide("alice", c.ip, decT0); d.Outcome != c.want {
			t.Errorf("%s: outcome = %v, want %v (score %.2f %v)",
				c.name, d.Outcome, c.want, d.Score, d.ReasonStrings())
		}
	}

	// Impossible travel stacks to a deny.
	e.RecordSuccess("alice", austin, decT0)
	d := e.Decide("alice", china, decT0.Add(30*time.Minute))
	if d.Outcome != OutcomeDeny {
		t.Fatalf("impossible travel outcome = %v (score %.2f %v)", d.Outcome, d.Score, d.ReasonStrings())
	}
	if d.Level() != Critical {
		t.Fatalf("deny level = %v", d.Level())
	}
	if !strings.Contains(d.Detail(), "impossible travel") {
		t.Fatalf("Detail() = %q", d.Detail())
	}

	// New accounts always take the full stack.
	if d := e.Decide("stranger", austin, decT0); d.Outcome != OutcomeAllow {
		t.Fatalf("new account outcome = %v", d.Outcome)
	}
}

func TestSkipRequiresMappableSource(t *testing.T) {
	// An unmappable source (IPv6 here) can never earn the bypass, even
	// with a pristine history, and scores the unknown-geo penalty.
	e := New(Options{Geo: geoip.Synthetic(), Policy: AdaptivePolicy()})
	decSeed(e, "alice", 30)
	d := e.Decide("alice", unmapped, decT0)
	if d.Outcome == OutcomeSkip {
		t.Fatalf("unmappable source earned a skip (score %.2f)", d.Score)
	}
	found := false
	for _, r := range d.Reasons {
		if r.Feature == FeatureUnknownGeo {
			found = true
		}
	}
	if !found {
		t.Fatalf("no unknown-geo reason: %v", d.ReasonStrings())
	}

	// With geo disabled entirely the DB clears nobody and penalises
	// nobody: familiarity falls back to network history alone, so a
	// well-established account still earns the skip and the unknown-geo
	// penalty never fires (graceful degradation, as for Assess).
	e2 := New(Options{Policy: AdaptivePolicy()})
	decSeed(e2, "alice", 30)
	d2 := e2.Decide("alice", austin, decT0)
	if d2.Outcome != OutcomeSkip {
		t.Fatalf("geo-disabled outcome = %v, want skip on network history (%v)", d2.Outcome, d2.ReasonStrings())
	}
	for _, r := range d2.Reasons {
		if r.Feature == FeatureUnknownGeo {
			t.Fatal("unknown-geo scored with geo disabled")
		}
	}
}

func TestSkipPolicyKnobs(t *testing.T) {
	// Below MinHistory: no skip.
	e := New(Options{Geo: geoip.Synthetic(), Policy: AdaptivePolicy()})
	decSeed(e, "thin", 10)
	if d := e.Decide("thin", austin, decT0); d.Outcome != OutcomeAllow {
		t.Fatalf("thin history outcome = %v", d.Outcome)
	}
	// AllowSkip off (the default policy): identical setup, no skip.
	e2 := New(Options{Geo: geoip.Synthetic()})
	decSeed(e2, "alice", 30)
	if d := e2.Decide("alice", austin, decT0); d.Outcome != OutcomeAllow {
		t.Fatalf("default policy outcome = %v, want allow", d.Outcome)
	}
	if e2.Policy().AllowSkip {
		t.Fatal("default policy has AllowSkip on")
	}
}

func render(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestDecideMetricsExactlyOnce(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Geo: geoip.Synthetic(), Obs: reg})
	decSeed(e, "alice", 30)
	for i := 0; i < 5; i++ {
		e.Decide("alice", austin, decT0)
	}
	e.Decide("alice", german, decT0)
	exp := render(t, reg)
	for _, want := range []string{
		`risk_decisions_total{decision="allow"} 5`,
		`risk_decisions_total{decision="step_up"} 1`,
		`risk_decisions_total{decision="deny"} 0`,
		`risk_decisions_total{decision="skip"} 0`,
		`risk_reasons_total{reason="new_network"} 1`,
		`risk_reasons_total{reason="new_country"} 1`,
		`risk_reasons_total{reason="impossible_travel"} 0`,
		`risk_feature_users 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Assess is advisory: it must not move the decision or reason
	// counters (it does observe the latency histogram).
	e.Assess("alice", german, decT0)
	counters := func(exp string) string {
		var keep []string
		for _, line := range strings.Split(exp, "\n") {
			if strings.HasPrefix(line, "risk_decisions_total{") || strings.HasPrefix(line, "risk_reasons_total{") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if got := render(t, reg); counters(got) != counters(exp) {
		t.Fatalf("Assess changed the decision counters:\n%s\nvs\n%s", counters(got), counters(exp))
	}
}

func TestDecidePublishesExactlyOneEvent(t *testing.T) {
	bus := eventstream.NewBus(nil)
	sub := bus.Subscribe(64)
	e := New(Options{Geo: geoip.Synthetic(), Events: bus})
	decSeed(e, "alice", 30)
	e.Decide("alice", china, decT0)
	e.Assess("alice", china, decT0) // advisory: no event
	sub.Close()
	var got []eventstream.Event
	for ev := range sub.Events() {
		got = append(got, ev)
	}
	if len(got) != 1 {
		t.Fatalf("events = %d, want 1", len(got))
	}
	ev := got[0]
	if ev.Type != eventstream.TypeRisk || ev.User != "alice" || ev.Addr != china.String() {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Result != "step_up" && ev.Result != "deny" {
		t.Fatalf("event result = %q", ev.Result)
	}
	if !strings.HasPrefix(ev.Detail, "score=") {
		t.Fatalf("event detail = %q", ev.Detail)
	}
}

func TestObserveReplayDeterminism(t *testing.T) {
	// The same event log replayed through two engines yields identical
	// decision sequences — the property the rollout eval's replay
	// regression depends on.
	var log []eventstream.Event
	users := []string{"u1", "u2", "u3"}
	ips := []net.IP{austin, german, china}
	for i := 0; i < 200; i++ {
		res := "accept"
		if i%7 == 0 {
			res = "reject"
		}
		log = append(log, eventstream.Event{
			Time: decT0.Add(time.Duration(i) * 11 * time.Minute), Type: eventstream.TypeLogin,
			User: users[i%len(users)], Addr: fmt.Sprintf("%s:50%03d", ips[(i/3)%3], i), Result: res,
		})
	}
	replay := func() []string {
		e := New(Options{Geo: geoip.Synthetic(), Policy: AdaptivePolicy()})
		var out []string
		for _, ev := range log {
			if d, ok := e.Observe(ev); ok {
				out = append(out, fmt.Sprintf("%s %s %.4f %s", ev.User, d.Outcome, d.Score, d.Detail()))
			}
		}
		return out
	}
	a, b := replay(), replay()
	if len(a) != len(log) {
		t.Fatalf("decisions = %d, want one per login event (%d)", len(a), len(log))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

func TestObserveIgnoresOwnDecisions(t *testing.T) {
	// The engine's published TypeRisk events must not feed back into the
	// store when it is attached to the same bus it publishes on.
	leakcheck.Check(t)
	bus := eventstream.NewBus(nil)
	e := New(Options{Geo: geoip.Synthetic(), Events: bus})
	e.Attach(bus, 256)
	bus.Publish(eventstream.Event{Time: decT0, Type: eventstream.TypeLogin,
		User: "alice", Addr: "129.114.3.7:50000", Result: "accept"})
	e.Stop()
	if e.Dropped() != 0 {
		t.Fatalf("dropped = %d", e.Dropped())
	}
	f := e.Store().Snapshot("alice", austin, decT0.Add(time.Minute))
	if f.History != 1 {
		t.Fatalf("History = %d, want 1 (decision events must not count as logins)", f.History)
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeAllow: "allow", OutcomeSkip: "skip",
		OutcomeStepUp: "step_up", OutcomeDeny: "deny",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
	if s := Outcome(99).String(); s != "Outcome(99)" {
		t.Errorf("unknown outcome = %q", s)
	}
	if len(Outcomes) != outcomeCount {
		t.Fatalf("Outcomes lists %d of %d", len(Outcomes), outcomeCount)
	}
}

func TestSharedStoreOption(t *testing.T) {
	st := feature.NewStore(feature.Config{Geo: geoip.Synthetic()})
	e := New(Options{Store: st, Policy: AdaptivePolicy()})
	if e.Store() != st {
		t.Fatal("engine did not adopt the provided store")
	}
	st.RecordSuccess("alice", austin, decT0)
	if e.Users() != 1 {
		t.Fatalf("Users = %d", e.Users())
	}
}
