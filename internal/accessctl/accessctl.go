// Package accessctl implements the paper's MFA exemption access control
// list (§3.4), the mechanism the authors single out as "dynamic, powerful,
// and scalable configurations ... that could not otherwise be similarly
// entertained by other MFA implementations".
//
// The configuration file "extends typical PAM access configuration syntax":
//
//	# action : users : origins : expires
//	permit : gateway1 tg803 : 129.114.0.0/16 : ALL
//	permit : ALL : 206.76.192.0/24 : 2016-10-04
//	deny   : baduser : ALL : ALL
//	permit : visitor : 192.168.7.9 192.168.7.10-192.168.7.20 : 2016-09-27
//
// Semantics reproduced from the paper:
//
//   - Individual accounts, specific IP addresses or IP ranges, or any
//     combination may be targeted, with or without an expiration date.
//   - Special "ALL" keywords may appear in the date, account, and address
//     fields for blanket policies.
//   - Expired rules are ignored automatically ("temporary variances that
//     will automatically expire if the date has passed").
//   - By default all accounts are denied an MFA exemption; administrators
//     must add permit rules explicitly.
//   - First matching rule wins (white/blacklist order is meaningful), so a
//     deny can carve a user out of a broad permit.
//   - "Changes take effect immediately upon write to disk": List.FromFile
//     re-reads the file whenever its mtime changes.
package accessctl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// Action is the rule outcome.
type Action int

// Rule outcomes. Deny wins by default when nothing matches.
const (
	Deny Action = iota
	Permit
)

// String returns "permit" or "deny".
func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// Origin matches a connection source.
type origin struct {
	all     bool
	ip      net.IP     // exact address
	cidr    *net.IPNet // CIDR block
	lo, hi  uint32     // dotted range lo-hi (IPv4 only)
	isRange bool
}

func (o origin) matches(ip net.IP) bool {
	if o.all {
		return true
	}
	if o.cidr != nil {
		return o.cidr.Contains(ip)
	}
	if o.isRange {
		v4 := ip.To4()
		if v4 == nil {
			return false
		}
		u := binary.BigEndian.Uint32(v4)
		return u >= o.lo && u <= o.hi
	}
	return o.ip.Equal(ip)
}

// Rule is one parsed configuration line.
type Rule struct {
	Action   Action
	AllUsers bool
	Users    []string
	origins  []origin
	NoExpiry bool      // expires field was ALL
	Expires  time.Time // exemption valid through end of this day (UTC)
	Line     int       // source line for diagnostics
	Raw      string
}

// expired reports whether the rule is no longer in force at now.
func (r Rule) expired(now time.Time) bool {
	if r.NoExpiry {
		return false
	}
	// The paper's variances specify a date; the exemption survives
	// through the end of that day.
	endOfDay := time.Date(r.Expires.Year(), r.Expires.Month(), r.Expires.Day(),
		23, 59, 59, int(time.Second-time.Nanosecond), time.UTC)
	return now.After(endOfDay)
}

func (r Rule) matchesUser(user string) bool {
	if r.AllUsers {
		return true
	}
	for _, u := range r.Users {
		if u == user {
			return true
		}
	}
	return false
}

func (r Rule) matchesOrigin(ip net.IP) bool {
	for _, o := range r.origins {
		if o.matches(ip) {
			return true
		}
	}
	return false
}

// ParseRule parses one "action : users : origins : expires" line.
func ParseRule(line string, lineNo int) (Rule, error) {
	r := Rule{Line: lineNo, Raw: line}
	parts := strings.Split(line, ":")
	if len(parts) != 4 {
		return r, fmt.Errorf("accessctl: line %d: want 4 ':'-separated fields, got %d", lineNo, len(parts))
	}
	switch strings.ToLower(strings.TrimSpace(parts[0])) {
	case "permit", "+":
		r.Action = Permit
	case "deny", "-":
		r.Action = Deny
	default:
		return r, fmt.Errorf("accessctl: line %d: action %q (want permit/deny)", lineNo, strings.TrimSpace(parts[0]))
	}

	users := strings.Fields(parts[1])
	if len(users) == 0 {
		return r, fmt.Errorf("accessctl: line %d: empty users field", lineNo)
	}
	for _, u := range users {
		if u == "ALL" {
			r.AllUsers = true
		} else {
			r.Users = append(r.Users, u)
		}
	}

	origins := strings.Fields(parts[2])
	if len(origins) == 0 {
		return r, fmt.Errorf("accessctl: line %d: empty origins field", lineNo)
	}
	for _, spec := range origins {
		o, err := parseOrigin(spec)
		if err != nil {
			return r, fmt.Errorf("accessctl: line %d: %w", lineNo, err)
		}
		r.origins = append(r.origins, o)
	}

	exp := strings.TrimSpace(parts[3])
	if exp == "ALL" || exp == "" {
		r.NoExpiry = true
	} else {
		t, err := time.Parse("2006-01-02", exp)
		if err != nil {
			return r, fmt.Errorf("accessctl: line %d: bad expiry %q (want YYYY-MM-DD or ALL)", lineNo, exp)
		}
		r.Expires = t
	}
	return r, nil
}

func parseOrigin(spec string) (origin, error) {
	if spec == "ALL" {
		return origin{all: true}, nil
	}
	if strings.Contains(spec, "/") {
		_, n, err := net.ParseCIDR(spec)
		if err != nil {
			return origin{}, fmt.Errorf("bad CIDR %q", spec)
		}
		return origin{cidr: n}, nil
	}
	if i := strings.IndexByte(spec, '-'); i >= 0 {
		loIP := net.ParseIP(spec[:i])
		hiIP := net.ParseIP(spec[i+1:])
		if loIP == nil || hiIP == nil || loIP.To4() == nil || hiIP.To4() == nil {
			return origin{}, fmt.Errorf("bad IPv4 range %q", spec)
		}
		lo := binary.BigEndian.Uint32(loIP.To4())
		hi := binary.BigEndian.Uint32(hiIP.To4())
		if lo > hi {
			return origin{}, fmt.Errorf("inverted range %q", spec)
		}
		return origin{isRange: true, lo: lo, hi: hi}, nil
	}
	ip := net.ParseIP(spec)
	if ip == nil {
		return origin{}, fmt.Errorf("bad address %q", spec)
	}
	return origin{ip: ip}, nil
}

// Parse reads a full configuration (comments with '#', blank lines
// allowed).
func Parse(content string) ([]Rule, error) {
	var rules []Rule
	sc := bufio.NewScanner(strings.NewReader(content))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(line, lineNo)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, sc.Err()
}

// Decision is the result of an exemption check.
type Decision struct {
	Exempt  bool  // true: skip the second factor
	Matched *Rule // the rule that decided, nil when the default applied
}

// List is a hot-reloadable exemption list.
type List struct {
	mu    sync.RWMutex
	rules []Rule
	path  string
	mtime time.Time
}

// NewList builds a List from in-memory rules.
func NewList(rules []Rule) *List {
	return &List{rules: rules}
}

// FromFile loads a List that re-reads path whenever its mtime changes
// ("changes take effect immediately upon write to disk").
func FromFile(path string) (*List, error) {
	l := &List{path: path}
	if err := l.reload(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *List) reload() error {
	fi, err := os.Stat(l.path)
	if err != nil {
		return fmt.Errorf("accessctl: %w", err)
	}
	l.mu.RLock()
	same := fi.ModTime().Equal(l.mtime) && !l.mtime.IsZero()
	l.mu.RUnlock()
	if same {
		return nil
	}
	b, err := os.ReadFile(l.path)
	if err != nil {
		return fmt.Errorf("accessctl: %w", err)
	}
	rules, err := Parse(string(b))
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.rules = rules
	l.mtime = fi.ModTime()
	l.mu.Unlock()
	return nil
}

// Replace swaps in a new rule set atomically (in-memory lists only; the
// file-backed path reloads from disk instead).
func (l *List) Replace(rules []Rule) {
	l.mu.Lock()
	l.rules = rules
	l.mu.Unlock()
}

// Rules returns a copy of the active rules.
func (l *List) Rules() []Rule {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Rule, len(l.rules))
	copy(out, l.rules)
	return out
}

// Check evaluates user connecting from addr at time now. If the list is
// file-backed, the file is re-checked first. The first non-expired rule
// matching both the user and the origin decides; otherwise the paper's
// default applies: no exemption (Deny).
func (l *List) Check(user string, addr net.IP, now time.Time) Decision {
	if l.path != "" {
		// A reload failure (e.g. admin mid-edit) keeps the previous
		// rules active rather than failing open or closed.
		_ = l.reload()
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i := range l.rules {
		r := &l.rules[i]
		if r.expired(now) {
			continue
		}
		if r.matchesUser(user) && r.matchesOrigin(addr) {
			return Decision{Exempt: r.Action == Permit, Matched: r}
		}
	}
	return Decision{Exempt: false}
}
