package accessctl

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var (
	now      = time.Date(2016, 9, 1, 12, 0, 0, 0, time.UTC)
	internal = net.ParseIP("129.114.3.7")
	external = net.ParseIP("73.32.100.4")
)

func mustParse(t *testing.T, cfg string) *List {
	t.Helper()
	rules, err := Parse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewList(rules)
}

func TestDefaultDeny(t *testing.T) {
	l := mustParse(t, "")
	d := l.Check("anyone", external, now)
	if d.Exempt {
		t.Fatal("default must be deny (no exemption)")
	}
	if d.Matched != nil {
		t.Fatal("no rule should have matched")
	}
}

func TestPermitSpecificUserAnywhere(t *testing.T) {
	l := mustParse(t, "permit : gateway1 : ALL : ALL")
	if !l.Check("gateway1", external, now).Exempt {
		t.Fatal("gateway1 should be exempt from anywhere")
	}
	if l.Check("other", external, now).Exempt {
		t.Fatal("other user must not be exempt")
	}
}

func TestPermitAllUsersFromInternalCIDR(t *testing.T) {
	// The paper: "an MFA exemption is configured to allow any SSH
	// traffic to move freely from IP addresses that are a part of that
	// particular system".
	l := mustParse(t, "permit : ALL : 129.114.0.0/16 : ALL")
	if !l.Check("anyone", internal, now).Exempt {
		t.Fatal("internal traffic should be exempt")
	}
	if l.Check("anyone", external, now).Exempt {
		t.Fatal("external traffic must not be exempt")
	}
}

func TestIPRange(t *testing.T) {
	l := mustParse(t, "permit : visitor : 192.168.7.10-192.168.7.20 : ALL")
	for ip, want := range map[string]bool{
		"192.168.7.9":  false,
		"192.168.7.10": true,
		"192.168.7.15": true,
		"192.168.7.20": true,
		"192.168.7.21": false,
	} {
		got := l.Check("visitor", net.ParseIP(ip), now).Exempt
		if got != want {
			t.Errorf("range check %s = %v, want %v", ip, got, want)
		}
	}
}

func TestExactIP(t *testing.T) {
	l := mustParse(t, "permit : svc : 10.0.0.5 : ALL")
	if !l.Check("svc", net.ParseIP("10.0.0.5"), now).Exempt {
		t.Fatal("exact IP should match")
	}
	if l.Check("svc", net.ParseIP("10.0.0.6"), now).Exempt {
		t.Fatal("neighbouring IP must not match")
	}
}

func TestTemporaryVarianceExpires(t *testing.T) {
	l := mustParse(t, "permit : slowpoke : ALL : 2016-09-27")
	if !l.Check("slowpoke", external, now).Exempt {
		t.Fatal("variance should be active before deadline")
	}
	// Still valid on the deadline day itself...
	onDay := time.Date(2016, 9, 27, 18, 0, 0, 0, time.UTC)
	if !l.Check("slowpoke", external, onDay).Exempt {
		t.Fatal("variance should cover the expiry day")
	}
	// ...but gone the next morning ("automatically expire").
	after := time.Date(2016, 9, 28, 0, 0, 1, 0, time.UTC)
	if l.Check("slowpoke", external, after).Exempt {
		t.Fatal("variance survived past its expiry date")
	}
}

func TestFirstMatchWinsDenyCarveOut(t *testing.T) {
	cfg := `
# deny one bad actor, then open the subnet
deny   : mallory : ALL : ALL
permit : ALL : 129.114.0.0/16 : ALL
`
	l := mustParse(t, cfg)
	if l.Check("mallory", internal, now).Exempt {
		t.Fatal("explicit deny must beat later permit")
	}
	if !l.Check("alice", internal, now).Exempt {
		t.Fatal("others should still be exempt")
	}
	d := l.Check("mallory", internal, now)
	if d.Matched == nil || d.Matched.Action != Deny {
		t.Fatal("decision should carry the matching deny rule")
	}
}

func TestMultipleUsersAndOriginsPerRule(t *testing.T) {
	l := mustParse(t, "permit : gw1 gw2 gw3 : 10.0.0.1 10.0.0.2 : ALL")
	if !l.Check("gw2", net.ParseIP("10.0.0.2"), now).Exempt {
		t.Fatal("gw2@10.0.0.2 should match")
	}
	if l.Check("gw2", net.ParseIP("10.0.0.3"), now).Exempt {
		t.Fatal("unlisted origin matched")
	}
	if l.Check("gw4", net.ParseIP("10.0.0.1"), now).Exempt {
		t.Fatal("unlisted user matched")
	}
}

func TestBlanketAllAllAll(t *testing.T) {
	l := mustParse(t, "permit : ALL : ALL : ALL")
	if !l.Check("anyone", external, now).Exempt {
		t.Fatal("blanket rule should exempt everyone")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"permit : u : ALL",                     // 3 fields
		"frobnicate : u : ALL : ALL",           // bad action
		"permit :  : ALL : ALL",                // empty users
		"permit : u :  : ALL",                  // empty origins
		"permit : u : 999.1.2.3 : ALL",         // bad IP
		"permit : u : 10.0.0.0/99 : ALL",       // bad CIDR
		"permit : u : 10.0.0.9-10.0.0.1 : ALL", // inverted range
		"permit : u : 10.0.0.1-banana : ALL",   // bad range end
		"permit : u : ALL : someday",           // bad date
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	rules, err := Parse("# header\n\n  \npermit : u : ALL : ALL\n# trailer\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("got %d rules, want 1", len(rules))
	}
	if rules[0].Line != 4 {
		t.Fatalf("rule line = %d, want 4", rules[0].Line)
	}
}

func TestPlusMinusAliases(t *testing.T) {
	l := mustParse(t, "- : mallory : ALL : ALL\n+ : ALL : ALL : ALL")
	if l.Check("mallory", external, now).Exempt {
		t.Fatal("- alias broken")
	}
	if !l.Check("alice", external, now).Exempt {
		t.Fatal("+ alias broken")
	}
}

func TestHotReloadOnMtimeChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mfa_exempt.conf")
	if err := os.WriteFile(path, []byte("deny : ALL : ALL : ALL\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := FromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Check("u", external, now).Exempt {
		t.Fatal("initial config should deny")
	}
	// Rewrite with a future mtime so the change is detected even on
	// coarse-grained filesystems.
	if err := os.WriteFile(path, []byte("permit : u : ALL : ALL\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if !l.Check("u", external, now).Exempt {
		t.Fatal("rewritten config not picked up (hot reload failed)")
	}
}

func TestReloadFailureKeepsOldRules(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mfa_exempt.conf")
	os.WriteFile(path, []byte("permit : u : ALL : ALL\n"), 0o644)
	l, err := FromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the file (admin mid-edit).
	os.WriteFile(path, []byte("permit : broken"), 0o644)
	future := time.Now().Add(2 * time.Second)
	os.Chtimes(path, future, future)
	if !l.Check("u", external, now).Exempt {
		t.Fatal("reload failure should keep previous rules active")
	}
}

func TestFromFileMissing(t *testing.T) {
	if _, err := FromFile("/nonexistent/mfa.conf"); err == nil {
		t.Fatal("FromFile on missing path should fail")
	}
}

func TestRulesReturnsCopy(t *testing.T) {
	l := mustParse(t, "permit : u : ALL : ALL")
	r := l.Rules()
	r[0].Action = Deny
	if l.Check("u", external, now).Exempt == false {
		t.Fatal("mutating Rules() result changed the live list")
	}
}

func TestActionString(t *testing.T) {
	if Permit.String() != "permit" || Deny.String() != "deny" {
		t.Fatal("Action.String wrong")
	}
}

// Property: for a permit rule over a random CIDR, every address inside the
// block is exempt and the adjacent addresses outside are not.
func TestCIDRBoundaryProperty(t *testing.T) {
	f := func(a, b, c, d uint8, bits uint8) bool {
		ones := int(bits%25) + 8 // /8../32
		ip := net.IPv4(a, b, c, d)
		mask := net.CIDRMask(ones, 32)
		network := ip.Mask(mask)
		cidr := fmt.Sprintf("%s/%d", network, ones)
		rules, err := Parse("permit : u : " + cidr + " : ALL")
		if err != nil {
			return false
		}
		l := NewList(rules)
		if !l.Check("u", ip, now).Exempt {
			return false
		}
		_, ipnet, _ := net.ParseCIDR(cidr)
		// First address past the top of the block must not match
		// (unless the block wraps the whole space).
		if ones > 0 {
			top := lastAddr(ipnet)
			next := addOne(top)
			if next != nil && ipnet.Contains(next) {
				return false
			}
			if next != nil && l.Check("u", next, now).Exempt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func lastAddr(n *net.IPNet) net.IP {
	ip := n.IP.To4()
	mask := n.Mask
	out := make(net.IP, 4)
	for i := 0; i < 4; i++ {
		out[i] = ip[i] | ^mask[i]
	}
	return out
}

func addOne(ip net.IP) net.IP {
	v4 := ip.To4()
	if v4 == nil {
		return nil
	}
	out := make(net.IP, 4)
	copy(out, v4)
	for i := 3; i >= 0; i-- {
		out[i]++
		if out[i] != 0 {
			return out
		}
	}
	return nil // wrapped
}

// Property: rule parsing round-trips user lists.
func TestUserListProperty(t *testing.T) {
	f := func(names []string) bool {
		var clean []string
		for _, n := range names {
			n = strings.Map(func(r rune) rune {
				if r > ' ' && r != ':' && r != '#' && r < 127 {
					return r
				}
				return -1
			}, n)
			if n != "" && n != "ALL" {
				clean = append(clean, n)
			}
		}
		if len(clean) == 0 {
			return true
		}
		line := "permit : " + strings.Join(clean, " ") + " : ALL : ALL"
		rules, err := Parse(line)
		if err != nil || len(rules) != 1 {
			return false
		}
		l := NewList(rules)
		for _, n := range clean {
			if !l.Check(n, external, now).Exempt {
				return false
			}
		}
		return !l.Check("zz-not-listed-zz", external, now).Exempt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCheckSmallList(b *testing.B) {
	rules, _ := Parse("permit : ALL : 129.114.0.0/16 : ALL")
	l := NewList(rules)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Check("user", external, now)
	}
}

// BenchmarkCheckLargeList measures exemption-list size scaling, one of the
// DESIGN.md ablations: the paper's center maintained many per-user
// variances simultaneously.
func BenchmarkCheckLargeList(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "permit : user%04d : 10.%d.%d.0/24 : 2016-12-31\n", i, i/256, i%256)
	}
	rules, err := Parse(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	l := NewList(rules)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Check("user0999", net.ParseIP("10.3.231.5"), now) // worst case: last rule
	}
}
