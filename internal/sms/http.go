package sms

import (
	"encoding/json"
	"net/http"
)

// API exposes the gateway over a Twilio-shaped REST endpoint:
//
//	POST /2010-04-01/Accounts/{sid}/Messages.json
//	  form: To, From, Body
//	  auth: HTTP Basic, AccountSID:AuthToken
//
// The response mirrors Twilio's message resource (subset).
type API struct {
	Gateway *Gateway
}

type messageResource struct {
	SID    string `json:"sid"`
	To     string `json:"to"`
	From   string `json:"from"`
	Body   string `json:"body"`
	Status string `json:"status"`
}

type apiError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, apiError{405, "method not allowed"})
		return
	}
	sid, tok, ok := r.BasicAuth()
	if !ok || sid != a.Gateway.AccountSID || tok != a.Gateway.AuthToken {
		writeJSON(w, http.StatusUnauthorized, apiError{20003, "authenticate"})
		return
	}
	want := "/2010-04-01/Accounts/" + a.Gateway.AccountSID + "/Messages.json"
	if r.URL.Path != want {
		writeJSON(w, http.StatusNotFound, apiError{20404, "resource not found"})
		return
	}
	if err := r.ParseForm(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{400, "bad form"})
		return
	}
	to, from, body := r.PostForm.Get("To"), r.PostForm.Get("From"), r.PostForm.Get("Body")
	if to == "" || body == "" {
		writeJSON(w, http.StatusBadRequest, apiError{21604, "'To' and 'Body' are required"})
		return
	}
	m, err := a.Gateway.Send(to, from, body)
	switch err {
	case nil:
	case ErrBadNumber:
		writeJSON(w, http.StatusBadRequest, apiError{21211, "invalid 'To' phone number"})
		return
	case ErrUnknownNumber:
		writeJSON(w, http.StatusBadRequest, apiError{30003, "unreachable destination handset"})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{500, err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, messageResource{
		SID: m.SID, To: m.To, From: m.From, Body: m.Body, Status: string(m.Status),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
