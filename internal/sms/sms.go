// Package sms simulates the Twilio SMS service the paper uses for its
// "SMS token" option (§3.3): a REST gateway, a virtual phone network with a
// carrier delivery model (latency, transient failures, retries), and cost
// accounting at Twilio's published 2016 rates ($1 per month flat plus
// $0.0075 per US-based message).
//
// The carrier model deliberately reproduces the paper's one operational
// complaint (§5): "In a handful of cases, an SMS text message will arrive
// delayed. Logs indicate that the user's network carrier had failed to
// deliver the message until subsequent retries delivered the token code in
// an expired state." Failure injection knobs let tests and the rollout
// simulator recreate exactly that.
package sms

import (
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"sync"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/eventstream"
)

// Per-message and subscription pricing (Twilio, 2016, per the paper).
const (
	MonthlyFeeCents     = 100 // $1 per month
	PerMessageCentsX100 = 75  // $0.0075 per message = 75 hundredths of a cent
)

// Status describes where a message is in its lifecycle.
type Status string

// Message statuses.
const (
	StatusQueued    Status = "queued"
	StatusSent      Status = "sent"
	StatusDelivered Status = "delivered"
	StatusFailed    Status = "failed"
)

// Message is one SMS.
type Message struct {
	SID         string
	To          string
	From        string
	Body        string
	Status      Status
	QueuedAt    time.Time
	DeliveredAt time.Time
	Attempts    int
}

// CarrierModel controls delivery behaviour.
type CarrierModel struct {
	// BaseDelay is the normal queue→handset latency.
	BaseDelay time.Duration
	// Jitter adds up to this much uniform extra delay.
	Jitter time.Duration
	// FailureRate is the per-attempt probability a carrier attempt is
	// lost and must be retried.
	FailureRate float64
	// RetryBackoff is the delay between redelivery attempts; the paper's
	// delayed-token cases correspond to one or more retries pushing
	// delivery past the 30-second code lifetime.
	RetryBackoff time.Duration
	// MaxAttempts bounds retries; the message fails permanently after.
	MaxAttempts int
}

// DefaultCarrier is a well-behaved US carrier: ~2 s delivery, 1 in 200
// attempts lost, 45 s retry backoff (long enough to expire a TOTP code).
func DefaultCarrier() CarrierModel {
	return CarrierModel{
		BaseDelay:    2 * time.Second,
		Jitter:       2 * time.Second,
		FailureRate:  0.005,
		RetryBackoff: 45 * time.Second,
		MaxAttempts:  4,
	}
}

// Phone is a virtual handset. Register one with the Network to receive
// messages.
type Phone struct {
	Number string

	mu    sync.Mutex
	inbox []Message
	waits []chan Message
}

// Inbox returns a copy of received messages, oldest first.
func (p *Phone) Inbox() []Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Message, len(p.inbox))
	copy(out, p.inbox)
	return out
}

// Latest returns the most recent message, if any.
func (p *Phone) Latest() (Message, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.inbox) == 0 {
		return Message{}, false
	}
	return p.inbox[len(p.inbox)-1], true
}

// Wait returns a channel that receives the next message delivered to this
// phone (already-received messages do not count).
func (p *Phone) Wait() <-chan Message {
	ch := make(chan Message, 1)
	p.mu.Lock()
	p.waits = append(p.waits, ch)
	p.mu.Unlock()
	return ch
}

func (p *Phone) deliver(m Message) {
	p.mu.Lock()
	p.inbox = append(p.inbox, m)
	waits := p.waits
	p.waits = nil
	p.mu.Unlock()
	for _, ch := range waits {
		ch <- m
	}
}

// Gateway is the Twilio-substitute service.
type Gateway struct {
	AccountSID string
	AuthToken  string

	// Events, when set, receives one delivery-lifecycle event per message
	// (result delivered/failed) on the operational analytics bus.
	Events *eventstream.Bus

	clk     clock.Sleeper
	carrier CarrierModel

	mu       sync.Mutex
	rng      *rand.Rand
	phones   map[string]*Phone
	log      []*Message
	sidSeq   int
	months   int // billed subscription months
	usCount  int // billed US messages
	pending  sync.WaitGroup
	maxDelay time.Duration
}

// NewGateway builds a gateway on the given clock with deterministic
// randomness under seed.
func NewGateway(clk clock.Sleeper, carrier CarrierModel, seed int64) *Gateway {
	return &Gateway{
		AccountSID: "AC" + fmt.Sprintf("%032x", seed),
		AuthToken:  "tok-" + fmt.Sprintf("%08x", seed),
		clk:        clk,
		carrier:    carrier,
		rng:        rand.New(rand.NewSource(seed)),
		phones:     make(map[string]*Phone),
	}
}

var usNumber = regexp.MustCompile(`^\+?1?[0-9]{10}$`)

// ValidUSNumber reports whether n looks like the ten-digit US numbers the
// portal accepts ("the user is prompted to enter a ten-digit, US-based
// phone number", §3.5).
func ValidUSNumber(n string) bool { return usNumber.MatchString(n) }

// Register attaches a virtual phone to the network and returns it.
func (g *Gateway) Register(number string) (*Phone, error) {
	if !ValidUSNumber(number) {
		return nil, fmt.Errorf("sms: %q is not a US number", number)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if p, ok := g.phones[number]; ok {
		return p, nil
	}
	p := &Phone{Number: number}
	g.phones[number] = p
	return p, nil
}

// Send errors.
var (
	ErrUnknownNumber = errors.New("sms: number not in service")
	ErrBadNumber     = errors.New("sms: invalid destination number")
)

// Send queues a message for asynchronous carrier delivery and returns a
// snapshot of its record with status "queued", like the real API. Track
// delivery through the destination Phone or Log, not the returned value.
func (g *Gateway) Send(to, from, body string) (*Message, error) {
	if !ValidUSNumber(to) {
		return nil, ErrBadNumber
	}
	g.mu.Lock()
	phone, ok := g.phones[to]
	if !ok {
		g.mu.Unlock()
		return nil, ErrUnknownNumber
	}
	g.sidSeq++
	m := &Message{
		SID:      fmt.Sprintf("SM%030d", g.sidSeq),
		To:       to,
		From:     from,
		Body:     body,
		Status:   StatusQueued,
		QueuedAt: g.clk.Now(),
	}
	g.log = append(g.log, m)
	g.usCount++
	delay := g.carrier.BaseDelay
	if g.carrier.Jitter > 0 {
		delay += time.Duration(g.rng.Int63n(int64(g.carrier.Jitter)))
	}
	// Model the carrier burning through its attempt budget: each of the
	// MaxAttempts tries can be lost independently. Losing every one —
	// including the final try — is a permanent failure; the old loop
	// stopped at MaxAttempts-1, which made StatusFailed unreachable and
	// reported fully-lost messages as delivered.
	attemptsLost := 0
	for attemptsLost < g.carrier.MaxAttempts && g.rng.Float64() < g.carrier.FailureRate {
		attemptsLost++
	}
	snapshot := *m
	g.mu.Unlock()

	g.pending.Add(1)
	go g.deliver(m, phone, delay, attemptsLost)
	return &snapshot, nil
}

func (g *Gateway) deliver(m *Message, phone *Phone, delay time.Duration, attemptsLost int) {
	defer g.pending.Done()
	if g.carrier.MaxAttempts > 0 && attemptsLost >= g.carrier.MaxAttempts {
		// Every attempt was lost: the carrier gives up after the final
		// backoff and nothing ever reaches the handset.
		g.clk.Sleep(delay + time.Duration(attemptsLost-1)*g.carrier.RetryBackoff)
		g.mu.Lock()
		m.Attempts = attemptsLost
		m.Status = StatusFailed
		g.mu.Unlock()
		g.publish(m.To, string(StatusFailed))
		return
	}
	total := delay + time.Duration(attemptsLost)*g.carrier.RetryBackoff
	g.clk.Sleep(total)
	g.mu.Lock()
	m.Attempts = attemptsLost + 1
	m.Status = StatusDelivered
	m.DeliveredAt = g.clk.Now()
	if total > g.maxDelay {
		g.maxDelay = total
	}
	msg := *m
	g.mu.Unlock()
	g.publish(m.To, string(StatusDelivered))
	phone.deliver(msg)
}

// publish announces a delivery outcome on the analytics bus.
func (g *Gateway) publish(to, result string) {
	if g.Events == nil {
		return
	}
	g.Events.Publish(eventstream.Event{
		Time: g.clk.Now(), Type: eventstream.TypeSMS, Component: "sms",
		Result: result, Detail: "to=" + to,
	})
}

// Flush waits for all queued deliveries to finish. With a Sim clock the
// caller must advance the clock far enough first.
func (g *Gateway) Flush() { g.pending.Wait() }

// Log returns copies of all message records.
func (g *Gateway) Log() []Message {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Message, len(g.log))
	for i, m := range g.log {
		out[i] = *m
	}
	return out
}

// BillMonth records one month of subscription.
func (g *Gateway) BillMonth() {
	g.mu.Lock()
	g.months++
	g.mu.Unlock()
}

// Cost summarises charges.
type Cost struct {
	Months     int
	Messages   int
	TotalCents float64
}

// Cost returns the accumulated bill: months*$1 + messages*$0.0075.
func (g *Gateway) Cost() Cost {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Cost{
		Months:     g.months,
		Messages:   g.usCount,
		TotalCents: float64(g.months*MonthlyFeeCents) + float64(g.usCount*PerMessageCentsX100)/100,
	}
}

// String formats the cost in dollars.
func (c Cost) String() string {
	return fmt.Sprintf("$%.4f (%d months @ $1.00 + %d msgs @ $0.0075)",
		c.TotalCents/100, c.Months, c.Messages)
}
