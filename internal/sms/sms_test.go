package sms

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/leakcheck"
)

var t0 = time.Date(2016, 9, 1, 9, 0, 0, 0, time.UTC)

// instantCarrier delivers immediately and never fails.
func instantCarrier() CarrierModel {
	return CarrierModel{BaseDelay: 0, Jitter: 0, FailureRate: 0, RetryBackoff: 0, MaxAttempts: 1}
}

func TestValidUSNumber(t *testing.T) {
	for n, want := range map[string]bool{
		"5125551234":   true,
		"15125551234":  true,
		"+15125551234": true,
		"512555123":    false,
		"+445551234":   false,
		"512-555-1234": false,
		"":             false,
	} {
		if got := ValidUSNumber(n); got != want {
			t.Errorf("ValidUSNumber(%q) = %v, want %v", n, got, want)
		}
	}
}

func TestSendAndDeliver(t *testing.T) {
	g := NewGateway(clock.Real{}, instantCarrier(), 1)
	phone, err := g.Register("5125551234")
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Send("5125551234", "512000", "Your token code is 123456")
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != StatusQueued {
		t.Fatalf("initial status = %s", m.Status)
	}
	g.Flush()
	got, ok := phone.Latest()
	if !ok {
		t.Fatal("no message delivered")
	}
	if got.Body != "Your token code is 123456" || got.Status != StatusDelivered {
		t.Fatalf("delivered = %+v", got)
	}
	if len(phone.Inbox()) != 1 {
		t.Fatal("inbox size wrong")
	}
}

func TestSendErrors(t *testing.T) {
	g := NewGateway(clock.Real{}, instantCarrier(), 1)
	if _, err := g.Send("bogus", "x", "y"); err != ErrBadNumber {
		t.Fatalf("bad number: %v", err)
	}
	if _, err := g.Send("5125550000", "x", "y"); err != ErrUnknownNumber {
		t.Fatalf("unknown number: %v", err)
	}
	if _, err := g.Register("nope"); err == nil {
		t.Fatal("registered invalid number")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	g := NewGateway(clock.Real{}, instantCarrier(), 1)
	a, _ := g.Register("5125551234")
	b, _ := g.Register("5125551234")
	if a != b {
		t.Fatal("re-registration returned a different phone")
	}
}

func TestWaitReceivesNextMessage(t *testing.T) {
	g := NewGateway(clock.Real{}, instantCarrier(), 1)
	phone, _ := g.Register("5125551234")
	ch := phone.Wait()
	if _, err := g.Send("5125551234", "s", "hello"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch:
		if m.Body != "hello" {
			t.Fatalf("got %q", m.Body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never fired")
	}
}

func TestCarrierDelayOnSimClock(t *testing.T) {
	sim := clock.NewSim(t0)
	carrier := CarrierModel{BaseDelay: 5 * time.Second, MaxAttempts: 1}
	g := NewGateway(sim, carrier, 1)
	phone, _ := g.Register("5125551234")
	g.Send("5125551234", "s", "code")
	// Nothing delivered until the clock advances.
	if _, ok := phone.Latest(); ok {
		t.Fatal("delivered before clock advanced")
	}
	waitSleepers(t, sim, 1)
	sim.Advance(6 * time.Second)
	g.Flush()
	got, ok := phone.Latest()
	if !ok {
		t.Fatal("not delivered after advance")
	}
	if !got.DeliveredAt.Equal(t0.Add(6 * time.Second)) {
		t.Fatalf("DeliveredAt = %v", got.DeliveredAt)
	}
}

// The paper's delayed-SMS failure mode: a lost carrier attempt pushes
// delivery past the 30-second code lifetime.
func TestRetryDelaysPastTokenExpiry(t *testing.T) {
	sim := clock.NewSim(t0)
	carrier := CarrierModel{
		BaseDelay: time.Second, FailureRate: 0.6,
		RetryBackoff: 45 * time.Second, MaxAttempts: 2,
	}
	leakcheck.Check(t)
	// Seed 6: the first draw (0.358) loses attempt one, the second
	// (0.845) lets the retry through.
	g := NewGateway(sim, carrier, 6)
	phone, _ := g.Register("5125551234")
	g.Send("5125551234", "s", "123456")
	waitSleepers(t, sim, 1)
	sim.Advance(50 * time.Second)
	g.Flush()
	got, ok := phone.Latest()
	if !ok {
		t.Fatal("message never delivered")
	}
	if got.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", got.Attempts)
	}
	latency := got.DeliveredAt.Sub(got.QueuedAt)
	if latency <= 30*time.Second {
		t.Fatalf("latency %v should exceed the 30 s code lifetime", latency)
	}
}

// TestPermanentFailure is the regression test for the unreachable
// StatusFailed: a message that lost every carrier attempt used to be
// reported delivered — handing the user a code that never arrived.
func TestPermanentFailure(t *testing.T) {
	leakcheck.Check(t)
	sim := clock.NewSim(t0)
	carrier := CarrierModel{
		BaseDelay: time.Second, FailureRate: 1.0, // every attempt is lost
		RetryBackoff: 45 * time.Second, MaxAttempts: 2,
	}
	g := NewGateway(sim, carrier, 7)
	phone, _ := g.Register("5125551234")
	g.Send("5125551234", "s", "123456")
	waitSleepers(t, sim, 1)
	sim.Advance(time.Hour)
	g.Flush()
	if m, ok := phone.Latest(); ok {
		t.Fatalf("fully-lost message reached the handset: %+v", m)
	}
	log := g.Log()
	if len(log) != 1 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[0].Status != StatusFailed {
		t.Fatalf("status = %s, want %s", log[0].Status, StatusFailed)
	}
	if log[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want the full budget of 2", log[0].Attempts)
	}
	if !log[0].DeliveredAt.IsZero() {
		t.Fatal("failed message has a delivery time")
	}
}

func waitSleepers(t *testing.T, sim *clock.Sim, n int) {
	t.Helper()
	for i := 0; i < 1000 && sim.Sleepers() < n; i++ {
		time.Sleep(time.Millisecond)
	}
	if sim.Sleepers() < n {
		t.Fatal("delivery goroutine never slept")
	}
}

func TestCostAccounting(t *testing.T) {
	g := NewGateway(clock.Real{}, instantCarrier(), 1)
	g.Register("5125551234")
	for i := 0; i < 1000; i++ {
		if _, err := g.Send("5125551234", "s", "x"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		g.BillMonth()
	}
	g.Flush()
	c := g.Cost()
	if c.Months != 6 || c.Messages != 1000 {
		t.Fatalf("cost counters = %+v", c)
	}
	// 6*$1 + 1000*$0.0075 = $13.50
	if math.Abs(c.TotalCents-1350) > 1e-9 {
		t.Fatalf("total = %.4f cents, want 1350", c.TotalCents)
	}
	if !strings.Contains(c.String(), "$13.5000") {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestLogRecordsEverything(t *testing.T) {
	g := NewGateway(clock.Real{}, instantCarrier(), 1)
	g.Register("5125551234")
	g.Send("5125551234", "s", "a")
	g.Send("5125551234", "s", "b")
	g.Flush()
	log := g.Log()
	if len(log) != 2 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[0].SID == log[1].SID {
		t.Fatal("SIDs not unique")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() []Message {
		sim := clock.NewSim(t0)
		g := NewGateway(sim, DefaultCarrier(), 42)
		g.Register("5125551234")
		for i := 0; i < 50; i++ {
			g.Send("5125551234", "s", "x")
		}
		for i := 0; i < 1000 && sim.Sleepers() < 50; i++ {
			time.Sleep(time.Millisecond)
		}
		sim.Advance(24 * time.Hour)
		g.Flush()
		return g.Log()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Attempts != b[i].Attempts || !a[i].DeliveredAt.Equal(b[i].DeliveredAt) {
			t.Fatalf("run diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHTTPAPI(t *testing.T) {
	g := NewGateway(clock.Real{}, instantCarrier(), 1)
	phone, _ := g.Register("5125551234")
	srv := httptest.NewServer(&API{Gateway: g})
	defer srv.Close()

	post := func(auth bool, path string, form url.Values) (*http.Response, map[string]any) {
		req, _ := http.NewRequest("POST", srv.URL+path, strings.NewReader(form.Encode()))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		if auth {
			req.SetBasicAuth(g.AccountSID, g.AuthToken)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		return resp, body
	}

	path := "/2010-04-01/Accounts/" + g.AccountSID + "/Messages.json"
	form := url.Values{"To": {"5125551234"}, "From": {"512000"}, "Body": {"Your code is 999111"}}

	// Happy path.
	resp, body := post(true, path, form)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body["status"] != "queued" || !strings.HasPrefix(body["sid"].(string), "SM") {
		t.Fatalf("body = %v", body)
	}
	g.Flush()
	if m, ok := phone.Latest(); !ok || m.Body != "Your code is 999111" {
		t.Fatal("message not delivered through API")
	}

	// Auth required.
	resp, _ = post(false, path, form)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no-auth status = %d", resp.StatusCode)
	}
	// Wrong account path.
	resp, _ = post(true, "/2010-04-01/Accounts/ACother/Messages.json", form)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("wrong path status = %d", resp.StatusCode)
	}
	// Missing fields.
	resp, _ = post(true, path, url.Values{"To": {"5125551234"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing body status = %d", resp.StatusCode)
	}
	// Invalid number.
	resp, _ = post(true, path, url.Values{"To": {"banana"}, "Body": {"x"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad number status = %d", resp.StatusCode)
	}
	// GET not allowed.
	r2, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", r2.StatusCode)
	}
}
