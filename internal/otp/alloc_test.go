package otp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"openmfa/internal/racecheck"
)

// skipUnderRace: AllocsPerRun counts race-detector bookkeeping as real
// allocations, so the zero-alloc gates only hold in race-free builds.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if racecheck.Enabled {
		t.Skip("alloc-count assertions are meaningless under -race")
	}
}

// Documented allocation floors for the OTP hot paths. HOTP pays once for
// the keyed HMAC state (NewGenerator) plus the returned code string;
// ValidateHOTP/ValidateTOTP pay the generator once for the whole window
// scan and nothing per candidate. make verify enforces these so the
// zero-alloc work cannot silently regress.
const (
	maxHOTPAllocs     = 9 // NewGenerator (6) + code buffer + string + slack
	maxValidateAllocs = 8 // NewGenerator (6) + scan buffers; window-independent
)

func TestHOTPAllocsFloor(t *testing.T) {
	skipUnderRace(t)
	secret := []byte("12345678901234567890")
	got := testing.AllocsPerRun(500, func() {
		if _, err := HOTP(secret, 7, SixDigits, SHA1); err != nil {
			t.Fatal(err)
		}
	})
	if got > maxHOTPAllocs {
		t.Errorf("HOTP allocs/op = %.1f, floor %d", got, maxHOTPAllocs)
	}
}

// TestValidateHOTPAllocsWindowIndependent is the heart of the zero-alloc
// claim: scanning a 20-counter window must allocate exactly as much as
// scanning one counter, because the HMAC state and code buffers are reused
// across candidates.
func TestValidateHOTPAllocsWindowIndependent(t *testing.T) {
	skipUnderRace(t)
	secret := []byte("12345678901234567890")
	miss := "000000" // worst case: every candidate is computed and compared
	one := testing.AllocsPerRun(500, func() {
		ValidateHOTP(secret, miss, 7, 0, SixDigits, SHA1)
	})
	wide := testing.AllocsPerRun(500, func() {
		ValidateHOTP(secret, miss, 7, 20, SixDigits, SHA1)
	})
	if wide != one {
		t.Errorf("allocs/op grew with window: window=0 %.1f, window=20 %.1f", one, wide)
	}
	if wide > maxValidateAllocs {
		t.Errorf("ValidateHOTP allocs/op = %.1f, floor %d", wide, maxValidateAllocs)
	}
}

func TestValidateTOTPAllocsWindowIndependent(t *testing.T) {
	skipUnderRace(t)
	secret := []byte("12345678901234567890")
	narrow := DefaultTOTPOptions()
	narrow.Skew = 0
	wideOpts := DefaultTOTPOptions()
	wideOpts.Skew = 900 * time.Second // ±30 steps
	at := time.Unix(1475000000, 0)
	one := testing.AllocsPerRun(500, func() {
		ValidateTOTP(secret, "000000", at, narrow)
	})
	wide := testing.AllocsPerRun(500, func() {
		ValidateTOTP(secret, "000000", at, wideOpts)
	})
	if wide != one {
		t.Errorf("allocs/op grew with skew: skew=0 %.1f, skew=900s %.1f", one, wide)
	}
	if wide > maxValidateAllocs {
		t.Errorf("ValidateTOTP allocs/op = %.1f, floor %d", wide, maxValidateAllocs)
	}
}

func TestGeneratorAppendCodeZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	g, err := NewGenerator([]byte("12345678901234567890"), SixDigits, SHA1)
	if err != nil {
		t.Fatal(err)
	}
	var buf [9]byte
	got := testing.AllocsPerRun(500, func() {
		g.AppendCode(buf[:0], 42)
	})
	if got != 0 {
		t.Errorf("Generator.AppendCode allocs/op = %.1f, want 0", got)
	}
}

// TestGeneratorMatchesHOTP pins the reusable generator to the one-shot
// reference across counters, digit widths, and algorithms — including
// repeated use of one generator (Reset correctness).
func TestGeneratorMatchesHOTP(t *testing.T) {
	secret := []byte("12345678901234567890")
	for _, alg := range []Algorithm{SHA1, SHA256, SHA512} {
		for d := Digits(6); d <= 9; d++ {
			g, err := NewGenerator(secret, d, alg)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range []uint64{0, 1, 59, 1111111109, math.MaxUint64 - 1, math.MaxUint64} {
				want, err := HOTP(secret, c, d, alg)
				if err != nil {
					t.Fatal(err)
				}
				if got := g.Code(c); got != want {
					t.Errorf("alg=%v d=%d c=%d: generator %q != HOTP %q", alg, d, c, got, want)
				}
			}
		}
	}
	if _, err := NewGenerator(secret, 3, SHA1); err == nil {
		t.Error("NewGenerator accepted 3 digits")
	}
}

// TestValidateHOTPOverflowClamp is the regression test for the silent
// uint64 wrap: with counter near MaxUint64 and a window crossing it, the
// scan used to wrap to counter 0 and validate codes for counters 0..k.
func TestValidateHOTPOverflowClamp(t *testing.T) {
	secret := []byte("12345678901234567890")
	const counter = math.MaxUint64 - 2
	const window = 10 // counter+window wraps to 7

	// Codes for the low counters the wrapped scan used to reach must be
	// rejected now.
	for c := uint64(0); c <= 7; c++ {
		code, err := HOTP(secret, c, SixDigits, SHA1)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := ValidateHOTP(secret, code, counter, window, SixDigits, SHA1); ok {
			t.Errorf("code for wrapped counter %d validated as %d", c, got)
		}
	}
	// Counters inside the clamped range [counter, MaxUint64] still work.
	for _, c := range []uint64{counter, math.MaxUint64 - 1, math.MaxUint64} {
		code, err := HOTP(secret, c, SixDigits, SHA1)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := ValidateHOTP(secret, code, counter, window, SixDigits, SHA1)
		if !ok || got != c {
			t.Errorf("counter %d: got (%d, %v), want (%d, true)", c, got, ok, c)
		}
	}
}

// TestDigitsFormatMatchesSprintf is the property test tying the zero-alloc
// digit encoder to the fmt reference for every supported width.
func TestDigitsFormatMatchesSprintf(t *testing.T) {
	for d := Digits(6); d <= 9; d++ {
		f := func(v uint32) bool {
			v %= pow10[d]
			return d.Format(v) == fmt.Sprintf("%0*d", int(d), v)
		}
		cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(int64(d)))}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("digits=%d: %v", d, err)
		}
	}
	// Out-of-contract values (v >= 10^d) keep the historical Sprintf
	// behaviour of printing every digit rather than truncating.
	if got, want := SixDigits.Format(1234567), "1234567"; got != want {
		t.Errorf("overflow value: got %q, want %q", got, want)
	}
}
