package otp

import (
	"errors"
	"math"
	"time"
)

// DefaultPeriod is the TOTP time step used throughout the deployment: "a
// code is generated every 30 seconds" (§3.3).
const DefaultPeriod = 30 * time.Second

// DefaultDriftWindow is the paper's tolerance for device clock skew: "the
// smartphone keep a time that does not drift more than a time delta of 300
// seconds from the LinOTP server's time" (§3.3). With 30-second steps that
// is ±10 steps.
const DefaultDriftWindow = 300 * time.Second

// TOTPOptions configures code generation and validation. The zero value is
// not valid; use DefaultTOTPOptions.
type TOTPOptions struct {
	Period    time.Duration // time step; must be positive
	Digits    Digits
	Algorithm Algorithm
	// Skew is the maximum absolute clock drift tolerated during
	// validation, expressed as a duration. It is converted to a step
	// count by rounding down (300s / 30s = ±10 steps).
	Skew time.Duration
}

// DefaultTOTPOptions mirrors the paper's deployment: 6 digits, 30-second
// period, SHA-1, ±300 seconds drift tolerance.
func DefaultTOTPOptions() TOTPOptions {
	return TOTPOptions{
		Period:    DefaultPeriod,
		Digits:    SixDigits,
		Algorithm: SHA1,
		Skew:      DefaultDriftWindow,
	}
}

// ErrInvalidPeriod is returned when the period is shorter than one second.
// Sub-second periods are rejected, not just non-positive ones: the counter
// arithmetic works in whole seconds, so a 500 ms period would truncate to
// a zero divisor.
var ErrInvalidPeriod = errors.New("otp: period must be at least one second")

// Counter returns the TOTP moving factor for time t: floor(unix(t)/period).
// Times before the Unix epoch and periods under one second are rejected by
// returning (0, false).
func (o TOTPOptions) Counter(t time.Time) (uint64, bool) {
	if o.Period < time.Second {
		return 0, false
	}
	u := t.Unix()
	if u < 0 {
		return 0, false
	}
	return uint64(u) / uint64(o.Period/time.Second), true
}

// skewSteps converts the Skew duration into a step count.
func (o TOTPOptions) skewSteps() uint64 {
	if o.Skew <= 0 || o.Period < time.Second {
		return 0
	}
	return uint64(o.Skew / o.Period)
}

// TOTP computes the RFC 6238 code for the secret at time t.
func TOTP(secret []byte, t time.Time, o TOTPOptions) (string, error) {
	if o.Period < time.Second {
		return "", ErrInvalidPeriod
	}
	c, ok := o.Counter(t)
	if !ok {
		return "", errors.New("otp: time before epoch")
	}
	return HOTP(secret, c, o.Digits, o.Algorithm)
}

// ValidateTOTP reports whether code is valid for the secret at server time
// t, allowing the configured skew in both directions. It returns the
// matching counter so callers can implement replay protection ("the
// provided token code is nullified", §3.2): a code must never be accepted
// twice, so callers record the returned counter and reject any counter
// <= the high-water mark.
func ValidateTOTP(secret []byte, code string, t time.Time, o TOTPOptions) (uint64, bool) {
	center, ok := o.Counter(t)
	if !ok {
		return 0, false
	}
	g, err := NewGenerator(secret, o.Digits, o.Algorithm)
	if err != nil {
		return 0, false
	}
	steps := o.skewSteps()

	lo := uint64(0)
	if center > steps {
		lo = center - steps
	}
	hi := center + steps
	if hi < center {
		hi = math.MaxUint64 // clamp instead of wrapping to counter zero
	}
	var buf [9]byte
	match := func(c uint64) bool {
		return codeEqual(g.AppendCode(buf[:0], c), code)
	}
	// Check the centre first (the common case), then spiral outwards so
	// that small drifts validate fastest. One Generator serves the whole
	// scan: the HMAC is keyed once, Reset per candidate.
	if match(center) {
		return center, true
	}
	for d := uint64(1); d <= steps; d++ {
		if hi-center >= d && match(center+d) {
			return center + d, true
		}
		if center >= d && center-d >= lo && match(center-d) {
			return center - d, true
		}
	}
	return 0, false
}

// Resync searches a wide window around server time t for two consecutive
// codes, the classic OATH token resynchronisation procedure exposed by the
// LinOTP admin UI ("re-synchronize tokens", §3.1). It returns the counter
// of the second code on success. searchSteps bounds the scan on each side.
func Resync(secret []byte, code1, code2 string, t time.Time, searchSteps uint64, o TOTPOptions) (uint64, bool) {
	center, ok := o.Counter(t)
	if !ok {
		return 0, false
	}
	g, err := NewGenerator(secret, o.Digits, o.Algorithm)
	if err != nil {
		return 0, false
	}
	lo := uint64(0)
	if center > searchSteps {
		lo = center - searchSteps
	}
	hi := center + searchSteps
	if hi < center || hi == math.MaxUint64 {
		hi = math.MaxUint64 - 1 // the scan probes c+1, which must not wrap
	}
	var buf [9]byte
	match := func(c uint64, code string) bool {
		return codeEqual(g.AppendCode(buf[:0], c), code)
	}
	for c := lo; c <= hi; c++ {
		if match(c, code1) && match(c+1, code2) {
			return c + 1, true
		}
	}
	return 0, false
}
