// Package otp implements the one-time password algorithms the paper's token
// devices rely on: HOTP (RFC 4226) and TOTP (RFC 6238), plus otpauth:// key
// URIs (the payload of the QR code shown during soft-token pairing) and
// Base32 secret handling.
//
// All three of the paper's user-facing token types — the in-house
// smartphone app, the Feitian OTP c200 fob, and SMS-delivered codes — are
// six-digit, 30-second TOTP generators; the static "training token" type is
// handled by the otpd back end rather than here.
package otp

import (
	"crypto/hmac"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/sha512"
	"crypto/subtle"
	"encoding/base32"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"math"
	"strings"
)

// Algorithm selects the HMAC hash for HOTP/TOTP computation.
type Algorithm int

// Supported algorithms. SHA1 is what RFC 6238's reference values, Google
// Authenticator, and the Feitian fobs use; it is the package default.
const (
	SHA1 Algorithm = iota
	SHA256
	SHA512
)

// String returns the otpauth URI spelling of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case SHA1:
		return "SHA1"
	case SHA256:
		return "SHA256"
	case SHA512:
		return "SHA512"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts an otpauth URI algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToUpper(s) {
	case "", "SHA1":
		return SHA1, nil
	case "SHA256":
		return SHA256, nil
	case "SHA512":
		return SHA512, nil
	default:
		return 0, fmt.Errorf("otp: unknown algorithm %q", s)
	}
}

func (a Algorithm) newHash() func() hash.Hash {
	switch a {
	case SHA1:
		return sha1.New
	case SHA256:
		return sha256.New
	case SHA512:
		return sha512.New
	default:
		panic(fmt.Sprintf("otp: invalid algorithm %d", int(a)))
	}
}

// Digits is the length of generated codes. The paper's deployment uses six
// digits everywhere.
type Digits int

// Common code lengths.
const (
	SixDigits   Digits = 6
	EightDigits Digits = 8
)

// Valid reports whether d is a code length HOTP supports (6..9: RFC 4226
// §5.3 requires at least six digits, and 10^d must fit in the 31-bit
// truncation space, which caps d at nine).
func (d Digits) Valid() bool { return d >= 6 && d <= 9 }

// Format renders a truncated HOTP value as a zero-padded code string.
// Values already reduced modulo 10^d (as HOTP truncation guarantees) take
// the fixed-size encoder; anything else falls back to fmt, preserving the
// historical print-every-digit behaviour for out-of-contract input.
func (d Digits) Format(v uint32) string {
	if !d.Valid() || v >= pow10[d] {
		return fmt.Sprintf("%0*d", int(d), v)
	}
	var buf [9]byte
	return string(d.appendFormat(buf[:0], v))
}

// appendFormat appends the zero-padded decimal rendering of v to dst
// without going through fmt. d must be Valid; v must already be reduced
// modulo 10^d (as HOTP truncation guarantees).
func (d Digits) appendFormat(dst []byte, v uint32) []byte {
	var buf [9]byte
	n := int(d)
	for i := n - 1; i >= 0; i-- {
		buf[i] = '0' + byte(v%10)
		v /= 10
	}
	return append(dst, buf[:n]...)
}

var pow10 = [...]uint32{1, 10, 100, 1000, 10000, 100000, 1000000, 10000000, 100000000, 1000000000}

// ErrInvalidDigits is returned for unsupported code lengths.
var ErrInvalidDigits = errors.New("otp: digits must be between 6 and 9")

// Generator computes HOTP codes for one secret without re-keying the HMAC
// per code: the keyed state is built once in NewGenerator and Reset between
// counters, so a drift-window scan costs one key schedule total instead of
// one per candidate, and the per-code path performs no heap allocation.
type Generator struct {
	mac    hash.Hash
	digits Digits
	ctr    [8]byte
	sum    [sha512.Size]byte
}

// NewGenerator builds a reusable code generator. A Generator is not safe
// for concurrent use.
func NewGenerator(secret []byte, digits Digits, alg Algorithm) (*Generator, error) {
	if !digits.Valid() {
		return nil, ErrInvalidDigits
	}
	switch alg {
	case SHA1, SHA256, SHA512:
	default:
		return nil, fmt.Errorf("otp: unknown algorithm %v", alg)
	}
	return &Generator{mac: hmac.New(alg.newHash(), secret), digits: digits}, nil
}

// Value computes the truncated RFC 4226 §5.3 value (already reduced modulo
// 10^digits) for counter.
func (g *Generator) Value(counter uint64) uint32 {
	g.mac.Reset()
	binary.BigEndian.PutUint64(g.ctr[:], counter)
	g.mac.Write(g.ctr[:])
	sum := g.mac.Sum(g.sum[:0])
	offset := sum[len(sum)-1] & 0x0f
	code := binary.BigEndian.Uint32(sum[offset:offset+4]) & 0x7fffffff
	return code % pow10[g.digits]
}

// AppendCode appends the zero-padded code for counter to dst, allocating
// only if dst lacks capacity.
func (g *Generator) AppendCode(dst []byte, counter uint64) []byte {
	return g.digits.appendFormat(dst, g.Value(counter))
}

// Code returns the code for counter as a string (one allocation for the
// returned string).
func (g *Generator) Code(counter uint64) string {
	var buf [9]byte
	return string(g.AppendCode(buf[:0], counter))
}

// HOTP computes the RFC 4226 HMAC-based one-time password for the given
// secret key and moving counter.
func HOTP(secret []byte, counter uint64, digits Digits, alg Algorithm) (string, error) {
	g, err := NewGenerator(secret, digits, alg)
	if err != nil {
		return "", err
	}
	return g.Code(counter), nil
}

// ValidateHOTP reports whether code matches any counter in
// [counter, counter+window] and returns the matching counter. A window of 0
// checks exactly one value; a scan whose upper end would overflow uint64 is
// clamped at MaxUint64 instead of wrapping around to counter zero. The
// comparison is constant-time per candidate.
func ValidateHOTP(secret []byte, code string, counter uint64, window int, digits Digits, alg Algorithm) (uint64, bool) {
	if window < 0 {
		window = 0
	}
	g, err := NewGenerator(secret, digits, alg)
	if err != nil {
		return 0, false
	}
	end := counter + uint64(window)
	if end < counter {
		end = math.MaxUint64
	}
	var buf [9]byte
	for c := counter; ; c++ {
		if codeEqual(g.AppendCode(buf[:0], c), code) {
			return c, true
		}
		if c == end {
			return 0, false
		}
	}
}

// codeEqual compares a computed code against user input in constant time
// via the vetted crypto/subtle primitive. The length check leaks only the
// length of the attacker-supplied input, never secret-derived data.
func codeEqual(want []byte, code string) bool {
	if len(want) != len(code) {
		return false
	}
	return subtle.ConstantTimeCompare(want, []byte(code)) == 1
}

// Base32 secret helpers. Secrets travel in unpadded RFC 4648 Base32, the
// encoding Google Authenticator-compatible apps expect in otpauth URIs.
var b32 = base32.StdEncoding.WithPadding(base32.NoPadding)

// EncodeSecret renders raw key bytes as unpadded Base32.
func EncodeSecret(secret []byte) string {
	return b32.EncodeToString(secret)
}

// DecodeSecret parses an unpadded (or padded) Base32 secret, tolerating
// lowercase input and interior spaces, which users routinely introduce when
// typing secrets by hand.
func DecodeSecret(s string) ([]byte, error) {
	clean := strings.ToUpper(strings.NewReplacer(" ", "", "-", "").Replace(s))
	clean = strings.TrimRight(clean, "=")
	b, err := b32.DecodeString(clean)
	if err != nil {
		return nil, fmt.Errorf("otp: bad base32 secret: %w", err)
	}
	return b, nil
}
