// Package otp implements the one-time password algorithms the paper's token
// devices rely on: HOTP (RFC 4226) and TOTP (RFC 6238), plus otpauth:// key
// URIs (the payload of the QR code shown during soft-token pairing) and
// Base32 secret handling.
//
// All three of the paper's user-facing token types — the in-house
// smartphone app, the Feitian OTP c200 fob, and SMS-delivered codes — are
// six-digit, 30-second TOTP generators; the static "training token" type is
// handled by the otpd back end rather than here.
package otp

import (
	"crypto/hmac"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/sha512"
	"encoding/base32"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"strings"
)

// Algorithm selects the HMAC hash for HOTP/TOTP computation.
type Algorithm int

// Supported algorithms. SHA1 is what RFC 6238's reference values, Google
// Authenticator, and the Feitian fobs use; it is the package default.
const (
	SHA1 Algorithm = iota
	SHA256
	SHA512
)

// String returns the otpauth URI spelling of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case SHA1:
		return "SHA1"
	case SHA256:
		return "SHA256"
	case SHA512:
		return "SHA512"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts an otpauth URI algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToUpper(s) {
	case "", "SHA1":
		return SHA1, nil
	case "SHA256":
		return SHA256, nil
	case "SHA512":
		return SHA512, nil
	default:
		return 0, fmt.Errorf("otp: unknown algorithm %q", s)
	}
}

func (a Algorithm) newHash() func() hash.Hash {
	switch a {
	case SHA1:
		return sha1.New
	case SHA256:
		return sha256.New
	case SHA512:
		return sha512.New
	default:
		panic(fmt.Sprintf("otp: invalid algorithm %d", int(a)))
	}
}

// Digits is the length of generated codes. The paper's deployment uses six
// digits everywhere.
type Digits int

// Common code lengths.
const (
	SixDigits   Digits = 6
	EightDigits Digits = 8
)

// Valid reports whether d is a code length HOTP supports (1..9; 10^d must
// fit in uint32 truncation space, and RFC 4226 requires at least 6).
func (d Digits) Valid() bool { return d >= 6 && d <= 9 }

// Format renders a truncated HOTP value as a zero-padded code string.
func (d Digits) Format(v uint32) string {
	return fmt.Sprintf("%0*d", int(d), v)
}

var pow10 = [...]uint32{1, 10, 100, 1000, 10000, 100000, 1000000, 10000000, 100000000, 1000000000}

// ErrInvalidDigits is returned for unsupported code lengths.
var ErrInvalidDigits = errors.New("otp: digits must be between 6 and 9")

// HOTP computes the RFC 4226 HMAC-based one-time password for the given
// secret key and moving counter.
func HOTP(secret []byte, counter uint64, digits Digits, alg Algorithm) (string, error) {
	if !digits.Valid() {
		return "", ErrInvalidDigits
	}
	mac := hmac.New(alg.newHash(), secret)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], counter)
	mac.Write(buf[:])
	sum := mac.Sum(nil)

	// Dynamic truncation (RFC 4226 §5.3).
	offset := sum[len(sum)-1] & 0x0f
	code := binary.BigEndian.Uint32(sum[offset:offset+4]) & 0x7fffffff
	return digits.Format(code % pow10[digits]), nil
}

// ValidateHOTP reports whether code matches any counter in
// [counter, counter+window] and returns the matching counter. A window of 0
// checks exactly one value. The comparison is constant-time per candidate.
func ValidateHOTP(secret []byte, code string, counter uint64, window int, digits Digits, alg Algorithm) (uint64, bool) {
	if window < 0 {
		window = 0
	}
	for i := 0; i <= window; i++ {
		c := counter + uint64(i)
		want, err := HOTP(secret, c, digits, alg)
		if err != nil {
			return 0, false
		}
		if subtleEqual(want, code) {
			return c, true
		}
	}
	return 0, false
}

func subtleEqual(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := 0; i < len(a); i++ {
		v |= a[i] ^ b[i]
	}
	return v == 0
}

// Base32 secret helpers. Secrets travel in unpadded RFC 4648 Base32, the
// encoding Google Authenticator-compatible apps expect in otpauth URIs.
var b32 = base32.StdEncoding.WithPadding(base32.NoPadding)

// EncodeSecret renders raw key bytes as unpadded Base32.
func EncodeSecret(secret []byte) string {
	return b32.EncodeToString(secret)
}

// DecodeSecret parses an unpadded (or padded) Base32 secret, tolerating
// lowercase input and interior spaces, which users routinely introduce when
// typing secrets by hand.
func DecodeSecret(s string) ([]byte, error) {
	clean := strings.ToUpper(strings.NewReplacer(" ", "", "-", "").Replace(s))
	clean = strings.TrimRight(clean, "=")
	b, err := b32.DecodeString(clean)
	if err != nil {
		return nil, fmt.Errorf("otp: bad base32 secret: %w", err)
	}
	return b, nil
}
