package otp

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// RFC 4226 Appendix D test vectors (secret "12345678901234567890").
func TestHOTPRFC4226Vectors(t *testing.T) {
	secret := []byte("12345678901234567890")
	want := []string{
		"755224", "287082", "359152", "969429", "338314",
		"254676", "287922", "162583", "399871", "520489",
	}
	for c, w := range want {
		got, err := HOTP(secret, uint64(c), SixDigits, SHA1)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("HOTP(counter=%d) = %s, want %s", c, got, w)
		}
	}
}

// RFC 6238 Appendix B test vectors (8 digits).
func TestTOTPRFC6238Vectors(t *testing.T) {
	cases := []struct {
		unix int64
		alg  Algorithm
		want string
	}{
		{59, SHA1, "94287082"},
		{59, SHA256, "46119246"},
		{59, SHA512, "90693936"},
		{1111111109, SHA1, "07081804"},
		{1111111111, SHA1, "14050471"},
		{1234567890, SHA1, "89005924"},
		{2000000000, SHA1, "69279037"},
		{20000000000, SHA1, "65353130"},
		{1111111109, SHA256, "68084774"},
		{1111111109, SHA512, "25091201"},
	}
	secrets := map[Algorithm][]byte{
		SHA1:   []byte("12345678901234567890"),
		SHA256: []byte("12345678901234567890123456789012"),
		SHA512: []byte("1234567890123456789012345678901234567890123456789012345678901234"),
	}
	for _, c := range cases {
		o := TOTPOptions{Period: 30 * time.Second, Digits: EightDigits, Algorithm: c.alg}
		got, err := TOTP(secrets[c.alg], time.Unix(c.unix, 0).UTC(), o)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("TOTP(unix=%d, %v) = %s, want %s", c.unix, c.alg, got, c.want)
		}
	}
}

func TestHOTPInvalidDigits(t *testing.T) {
	for _, d := range []Digits{0, 1, 5, 10, -3} {
		if _, err := HOTP([]byte("k"), 0, d, SHA1); err != ErrInvalidDigits {
			t.Errorf("digits=%d: err = %v, want ErrInvalidDigits", d, err)
		}
	}
}

func TestValidateHOTPWindow(t *testing.T) {
	secret := []byte("12345678901234567890")
	// Code for counter 5 should validate from counter 3 with window 2.
	code, _ := HOTP(secret, 5, SixDigits, SHA1)
	c, ok := ValidateHOTP(secret, code, 3, 2, SixDigits, SHA1)
	if !ok || c != 5 {
		t.Fatalf("ValidateHOTP = (%d,%v), want (5,true)", c, ok)
	}
	// Outside the window it must fail.
	if _, ok := ValidateHOTP(secret, code, 3, 1, SixDigits, SHA1); ok {
		t.Fatal("code outside window accepted")
	}
	// Negative window behaves as 0.
	code3, _ := HOTP(secret, 3, SixDigits, SHA1)
	if c, ok := ValidateHOTP(secret, code3, 3, -5, SixDigits, SHA1); !ok || c != 3 {
		t.Fatal("negative window broke exact match")
	}
}

// The paper's drift rule: devices within ±300 s validate; beyond that they
// do not (§3.3). This is the DESIGN.md §3.3-drift experiment.
func TestDriftWindow(t *testing.T) {
	secret := []byte("12345678901234567890")
	o := DefaultTOTPOptions()
	server := time.Date(2016, 10, 4, 12, 0, 0, 0, time.UTC)
	for _, drift := range []time.Duration{
		0, 29 * time.Second, -29 * time.Second,
		299 * time.Second, -299 * time.Second, 300 * time.Second, -300 * time.Second,
	} {
		device := server.Add(drift)
		code, err := TOTP(secret, device, o)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ValidateTOTP(secret, code, server, o); !ok {
			t.Errorf("drift %v: valid code rejected", drift)
		}
	}
	for _, drift := range []time.Duration{
		331 * time.Second, -331 * time.Second, 10 * time.Minute, -10 * time.Minute,
	} {
		device := server.Add(drift)
		code, _ := TOTP(secret, device, o)
		if _, ok := ValidateTOTP(secret, code, server, o); ok {
			t.Errorf("drift %v: out-of-window code accepted", drift)
		}
	}
}

func TestValidateTOTPReturnsCounterForReplayProtection(t *testing.T) {
	secret := []byte("12345678901234567890")
	o := DefaultTOTPOptions()
	now := time.Date(2016, 9, 27, 9, 0, 0, 0, time.UTC)
	code, _ := TOTP(secret, now, o)
	c1, ok := ValidateTOTP(secret, code, now, o)
	if !ok {
		t.Fatal("valid code rejected")
	}
	want, _ := o.Counter(now)
	if c1 != want {
		t.Fatalf("counter = %d, want %d", c1, want)
	}
}

func TestValidateTOTPWrongCode(t *testing.T) {
	secret := []byte("12345678901234567890")
	o := DefaultTOTPOptions()
	now := time.Unix(1475000000, 0)
	if _, ok := ValidateTOTP(secret, "000000", now, o); ok {
		// 000000 could theoretically be the right code; regenerate to be sure.
		real, _ := TOTP(secret, now, o)
		if real != "000000" {
			t.Fatal("wrong code accepted")
		}
	}
	if _, ok := ValidateTOTP(secret, "12345", now, o); ok {
		t.Fatal("short code accepted")
	}
	if _, ok := ValidateTOTP(secret, "", now, o); ok {
		t.Fatal("empty code accepted")
	}
}

func TestValidateTOTPNearEpoch(t *testing.T) {
	secret := []byte("12345678901234567890")
	o := DefaultTOTPOptions()
	// At t=0 the skew window would underflow counters; must not panic.
	code, err := TOTP(secret, time.Unix(0, 0), o)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ValidateTOTP(secret, code, time.Unix(0, 0), o); !ok {
		t.Fatal("epoch code rejected")
	}
	if _, err := TOTP(secret, time.Unix(-100, 0), o); err == nil {
		t.Fatal("pre-epoch time accepted")
	}
}

func TestTOTPInvalidPeriod(t *testing.T) {
	if _, err := TOTP([]byte("k"), time.Now(), TOTPOptions{Digits: SixDigits}); err != ErrInvalidPeriod {
		t.Fatalf("err = %v, want ErrInvalidPeriod", err)
	}
}

// TestTOTPSubSecondPeriod is a regression test: a positive sub-second
// period used to truncate to a zero divisor in Counter and panic with a
// divide-by-zero instead of being rejected.
func TestTOTPSubSecondPeriod(t *testing.T) {
	now := time.Unix(1475000000, 0)
	for _, period := range []time.Duration{time.Millisecond, 500 * time.Millisecond, time.Second - time.Nanosecond} {
		o := TOTPOptions{Period: period, Digits: SixDigits, Skew: 300 * time.Second}
		if _, ok := o.Counter(now); ok {
			t.Errorf("Counter accepted period %v", period)
		}
		if _, err := TOTP([]byte("k"), now, o); err != ErrInvalidPeriod {
			t.Errorf("TOTP(period=%v) err = %v, want ErrInvalidPeriod", period, err)
		}
		if c, ok := ValidateTOTP([]byte("k"), "000000", now, o); ok {
			t.Errorf("ValidateTOTP(period=%v) accepted, counter %d", period, c)
		}
	}
	// Whole-second periods still validate.
	o := TOTPOptions{Period: time.Second, Digits: SixDigits}
	code, err := TOTP([]byte("k"), now, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ValidateTOTP([]byte("k"), code, now, o); !ok {
		t.Fatal("1s-period code rejected")
	}
}

func TestResync(t *testing.T) {
	secret := []byte("12345678901234567890")
	o := DefaultTOTPOptions()
	server := time.Date(2016, 11, 1, 8, 0, 0, 0, time.UTC)
	// Device is 20 minutes fast: far outside the validation window but
	// recoverable via resync.
	device := server.Add(20 * time.Minute)
	c1, _ := TOTP(secret, device, o)
	c2, _ := TOTP(secret, device.Add(o.Period), o)
	counter, ok := Resync(secret, c1, c2, server, 100, o)
	if !ok {
		t.Fatal("resync failed for 20-minute drift")
	}
	wantC, _ := o.Counter(device.Add(o.Period))
	if counter != wantC {
		t.Fatalf("resync counter = %d, want %d", counter, wantC)
	}
	// Non-consecutive codes must not resync.
	c3, _ := TOTP(secret, device.Add(5*o.Period), o)
	if _, ok := Resync(secret, c1, c3, server, 100, o); ok {
		t.Fatal("non-consecutive codes resynced")
	}
}

func TestSecretRoundTrip(t *testing.T) {
	raw := []byte("12345678901234567890")
	enc := EncodeSecret(raw)
	if strings.Contains(enc, "=") {
		t.Fatal("encoded secret contains padding")
	}
	dec, err := DecodeSecret(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, raw) {
		t.Fatal("round trip mismatch")
	}
	// Tolerate user formatting: lowercase, spaces, dashes, padding.
	sloppy := strings.ToLower(enc[:4]) + " " + enc[4:8] + "-" + enc[8:] + "=="
	dec2, err := DecodeSecret(sloppy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec2, raw) {
		t.Fatal("sloppy decode mismatch")
	}
	if _, err := DecodeSecret("not!base32"); err == nil {
		t.Fatal("invalid base32 accepted")
	}
}

func TestKeyURIRoundTrip(t *testing.T) {
	k := Key{
		Issuer:  "TACC",
		Account: "cproctor",
		Secret:  []byte("12345678901234567890"),
		Options: DefaultTOTPOptions(),
	}
	uri := k.URI()
	if !strings.HasPrefix(uri, "otpauth://totp/TACC:cproctor?") {
		t.Fatalf("unexpected uri %q", uri)
	}
	got, err := ParseURI(uri)
	if err != nil {
		t.Fatal(err)
	}
	if got.Issuer != "TACC" || got.Account != "cproctor" {
		t.Fatalf("label parsed as %q/%q", got.Issuer, got.Account)
	}
	if !bytes.Equal(got.Secret, k.Secret) {
		t.Fatal("secret mismatch")
	}
	if got.Options.Digits != SixDigits || got.Options.Period != DefaultPeriod || got.Options.Algorithm != SHA1 {
		t.Fatalf("options mismatch: %+v", got.Options)
	}
}

func TestKeyURINonDefaults(t *testing.T) {
	k := Key{
		Issuer:  "TACC",
		Account: "storm",
		Secret:  []byte("abcdefghij"),
		Options: TOTPOptions{Period: 60 * time.Second, Digits: EightDigits, Algorithm: SHA256},
	}
	got, err := ParseURI(k.URI())
	if err != nil {
		t.Fatal(err)
	}
	if got.Options.Period != 60*time.Second || got.Options.Digits != EightDigits || got.Options.Algorithm != SHA256 {
		t.Fatalf("options mismatch: %+v", got.Options)
	}
}

func TestKeyURIHOTP(t *testing.T) {
	k := Key{Account: "fob1", Secret: []byte("12345678901234567890"), IsCounter: true, Counter: 42,
		Options: DefaultTOTPOptions()}
	uri := k.URI()
	if !strings.HasPrefix(uri, "otpauth://hotp/") {
		t.Fatalf("uri %q", uri)
	}
	got, err := ParseURI(uri)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsCounter || got.Counter != 42 {
		t.Fatalf("hotp fields: %+v", got)
	}
}

func TestParseURIErrors(t *testing.T) {
	bad := []string{
		"http://totp/x?secret=GEZDGNBV",
		"otpauth://bogus/x?secret=GEZDGNBV",
		"otpauth://totp/x",
		"otpauth://totp/x?secret=!!!",
		"otpauth://totp/x?secret=GEZDGNBV&digits=4",
		"otpauth://totp/x?secret=GEZDGNBV&period=0",
		"otpauth://totp/x?secret=GEZDGNBV&algorithm=MD5",
		"otpauth://hotp/x?secret=GEZDGNBV",
		"otpauth://hotp/x?secret=GEZDGNBV&counter=banana",
	}
	for _, s := range bad {
		if _, err := ParseURI(s); err == nil {
			t.Errorf("ParseURI(%q) succeeded, want error", s)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	for s, want := range map[string]Algorithm{"": SHA1, "sha1": SHA1, "SHA256": SHA256, "Sha512": SHA512} {
		got, err := ParseAlgorithm(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAlgorithm("MD5"); err == nil {
		t.Error("MD5 accepted")
	}
}

// Property: every generated code validates at the same instant, for all
// algorithms and digit counts.
func TestGenerateValidateProperty(t *testing.T) {
	f := func(secret []byte, unix uint32, algPick, digPick uint8) bool {
		if len(secret) == 0 {
			secret = []byte{0}
		}
		alg := Algorithm(algPick % 3)
		dig := Digits(6 + digPick%3)
		o := TOTPOptions{Period: 30 * time.Second, Digits: dig, Algorithm: alg, Skew: 300 * time.Second}
		at := time.Unix(int64(unix), 0)
		code, err := TOTP(secret, at, o)
		if err != nil {
			return false
		}
		_, ok := ValidateTOTP(secret, code, at, o)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: codes always have exactly the configured number of digits.
func TestCodeLengthProperty(t *testing.T) {
	f := func(secret []byte, counter uint64, digPick uint8) bool {
		dig := Digits(6 + digPick%4)
		code, err := HOTP(secret, counter, dig, SHA1)
		if err != nil {
			return false
		}
		if len(code) != int(dig) {
			return false
		}
		for _, r := range code {
			if r < '0' || r > '9' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: otpauth URIs round-trip arbitrary account names.
func TestURIRoundTripProperty(t *testing.T) {
	f := func(account string, secret []byte) bool {
		if len(secret) == 0 {
			secret = []byte{1}
		}
		// Strip NULs and slashes which are not meaningful in account names.
		account = strings.Map(func(r rune) rune {
			if r == 0 || r == '/' || r == ':' {
				return -1
			}
			return r
		}, account)
		k := Key{Issuer: "TACC", Account: account, Secret: secret, Options: DefaultTOTPOptions()}
		got, err := ParseURI(k.URI())
		if err != nil {
			return false
		}
		return got.Account == account && bytes.Equal(got.Secret, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHOTP(b *testing.B) {
	secret := []byte("12345678901234567890")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := HOTP(secret, uint64(i), SixDigits, SHA1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateTOTPWorstCaseDrift(b *testing.B) {
	secret := []byte("12345678901234567890")
	o := DefaultTOTPOptions()
	server := time.Unix(1475000000, 0)
	code, _ := TOTP(secret, server.Add(-300*time.Second), o) // worst case: max drift
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ValidateTOTP(secret, code, server, o); !ok {
			b.Fatal("rejected")
		}
	}
}
