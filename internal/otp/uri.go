package otp

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Key describes a provisioned OTP credential, the information carried by
// the QR code a user scans during soft-token pairing (§3.5): "the user is
// shown a QR code which contains the user's secret key encoded as an
// image".
type Key struct {
	Issuer    string // e.g. "TACC"
	Account   string // username
	Secret    []byte
	Options   TOTPOptions
	IsCounter bool   // hotp instead of totp
	Counter   uint64 // initial counter for hotp keys
}

// URI renders the key in the de facto standard otpauth:// format understood
// by Google Authenticator-derived applications, which is what the paper's
// in-house app is ("modeled after an open source release of the Google
// Authenticator application", §3.3).
func (k Key) URI() string {
	typ := "totp"
	if k.IsCounter {
		typ = "hotp"
	}
	label := url.PathEscape(k.Account)
	if k.Issuer != "" {
		label = url.PathEscape(k.Issuer) + ":" + label
	}
	q := url.Values{}
	q.Set("secret", EncodeSecret(k.Secret))
	if k.Issuer != "" {
		q.Set("issuer", k.Issuer)
	}
	if k.Options.Algorithm != SHA1 {
		q.Set("algorithm", k.Options.Algorithm.String())
	}
	if k.Options.Digits != SixDigits && k.Options.Digits != 0 {
		q.Set("digits", strconv.Itoa(int(k.Options.Digits)))
	}
	if k.IsCounter {
		q.Set("counter", strconv.FormatUint(k.Counter, 10))
	} else if k.Options.Period != DefaultPeriod && k.Options.Period != 0 {
		q.Set("period", strconv.Itoa(int(k.Options.Period/time.Second)))
	}
	return fmt.Sprintf("otpauth://%s/%s?%s", typ, label, q.Encode())
}

// ParseURI decodes an otpauth:// URI into a Key. Unspecified parameters
// take the deployment defaults (6 digits, 30 s, SHA-1).
func ParseURI(s string) (Key, error) {
	u, err := url.Parse(s)
	if err != nil {
		return Key{}, fmt.Errorf("otp: bad uri: %w", err)
	}
	if u.Scheme != "otpauth" {
		return Key{}, fmt.Errorf("otp: scheme %q, want otpauth", u.Scheme)
	}
	k := Key{Options: DefaultTOTPOptions()}
	switch u.Host {
	case "totp":
	case "hotp":
		k.IsCounter = true
	default:
		return Key{}, fmt.Errorf("otp: type %q, want totp or hotp", u.Host)
	}

	label := strings.TrimPrefix(u.Path, "/")
	if unesc, err := url.PathUnescape(label); err == nil {
		label = unesc
	}
	if i := strings.IndexByte(label, ':'); i >= 0 {
		k.Issuer = label[:i]
		k.Account = strings.TrimPrefix(label[i+1:], " ")
	} else {
		k.Account = label
	}

	q := u.Query()
	if iss := q.Get("issuer"); iss != "" {
		k.Issuer = iss
	}
	sec := q.Get("secret")
	if sec == "" {
		return Key{}, fmt.Errorf("otp: uri missing secret")
	}
	k.Secret, err = DecodeSecret(sec)
	if err != nil {
		return Key{}, err
	}
	if alg := q.Get("algorithm"); alg != "" {
		k.Options.Algorithm, err = ParseAlgorithm(alg)
		if err != nil {
			return Key{}, err
		}
	}
	if dig := q.Get("digits"); dig != "" {
		n, err := strconv.Atoi(dig)
		if err != nil || !Digits(n).Valid() {
			return Key{}, fmt.Errorf("otp: bad digits %q", dig)
		}
		k.Options.Digits = Digits(n)
	}
	if per := q.Get("period"); per != "" {
		n, err := strconv.Atoi(per)
		if err != nil || n <= 0 {
			return Key{}, fmt.Errorf("otp: bad period %q", per)
		}
		k.Options.Period = time.Duration(n) * time.Second
	}
	if cnt := q.Get("counter"); cnt != "" {
		n, err := strconv.ParseUint(cnt, 10, 64)
		if err != nil {
			return Key{}, fmt.Errorf("otp: bad counter %q", cnt)
		}
		k.Counter = n
	} else if k.IsCounter {
		return Key{}, fmt.Errorf("otp: hotp uri missing counter")
	}
	return k, nil
}

// NewKey generates a fresh random TOTP key for account under issuer using
// the deployment defaults and a 20-byte secret (the RFC 4226 recommended
// minimum for SHA-1).
func NewKey(issuer, account string, newSecret func(int) []byte) Key {
	return Key{
		Issuer:  issuer,
		Account: account,
		Secret:  newSecret(20),
		Options: DefaultTOTPOptions(),
	}
}
