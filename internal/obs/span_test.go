package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestSpanTreeParentLinkage(t *testing.T) {
	s := NewSpanStore(16)
	trace := NewTraceID()

	root := s.Start(trace, "sshd.conversation")
	root.SetAttr("user", "alice")
	child := root.StartChild("pam.pam_mfa_token")
	grand := child.StartChild("radius.rtt")
	grand.End()
	child.SetAttr("result", "success")
	child.End()
	root.End()

	spans := s.Trace(trace)
	if len(spans) != 3 {
		t.Fatalf("Trace() returned %d spans, want 3", len(spans))
	}
	// Recorded oldest-End first: grand, child, root.
	byName := map[string]SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
		if d.Trace != trace {
			t.Errorf("span %s: trace = %q, want %q", d.Name, d.Trace, trace)
		}
		if d.End.Before(d.Start) {
			t.Errorf("span %s: End before Start", d.Name)
		}
	}
	r, c, g := byName["sshd.conversation"], byName["pam.pam_mfa_token"], byName["radius.rtt"]
	if r.Parent != 0 {
		t.Errorf("root parent = %d, want 0", r.Parent)
	}
	if c.Parent != r.ID {
		t.Errorf("child parent = %d, want root ID %d", c.Parent, r.ID)
	}
	if g.Parent != c.ID {
		t.Errorf("grandchild parent = %d, want child ID %d", g.Parent, c.ID)
	}
	if len(c.Attrs) != 1 || c.Attrs[0] != (Attr{Key: "result", Value: "success"}) {
		t.Errorf("child attrs = %+v", c.Attrs)
	}
	if len(r.Attrs) != 1 || r.Attrs[0].Value != "alice" {
		t.Errorf("root attrs = %+v", r.Attrs)
	}
}

func TestSpanAttrDedupAndPostEndNoOp(t *testing.T) {
	s := NewSpanStore(4)
	sp := s.Start("aaaa", "x")
	sp.SetAttr("k", "v1")
	sp.SetAttr("k", "v2") // same key: replace, not append
	sp.End()
	sp.SetAttr("k", "v3") // after End: ignored
	sp.End()              // second End: no second record
	got := s.Trace("aaaa")
	if len(got) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(got))
	}
	if len(got[0].Attrs) != 1 || got[0].Attrs[0].Value != "v2" {
		t.Errorf("attrs = %+v, want single k=v2", got[0].Attrs)
	}
}

func TestSpanStoreRingEviction(t *testing.T) {
	s := NewSpanStore(4)
	for i := 0; i < 7; i++ {
		sp := s.Start("ring", fmt.Sprintf("s%d", i))
		sp.End()
	}
	if s.Len() != 4 {
		t.Errorf("Len() = %d, want 4", s.Len())
	}
	if s.Evicted() != 3 {
		t.Errorf("Evicted() = %d, want 3", s.Evicted())
	}
	spans := s.Trace("ring")
	if len(spans) != 4 {
		t.Fatalf("Trace() = %d spans, want 4 retained", len(spans))
	}
	for i, d := range spans {
		if want := fmt.Sprintf("s%d", i+3); d.Name != want {
			t.Errorf("retained span %d = %s, want %s (oldest-first order)", i, d.Name, want)
		}
	}
}

func TestSpanStartCtx(t *testing.T) {
	s := NewSpanStore(8)
	trace := NewTraceID()

	// Without a parent span in ctx, StartCtx roots under the ctx trace ID.
	ctx := WithTrace(context.Background(), trace)
	ctx, root := s.StartCtx(ctx, "otpd.check")
	if root.TraceID() != trace {
		t.Errorf("root trace = %q, want %q", root.TraceID(), trace)
	}
	if SpanFromContext(ctx) != root {
		t.Error("derived ctx does not carry the new span")
	}

	// With a parent in ctx, StartCtx chains off it.
	_, child := s.StartCtx(ctx, "otpd.sms")
	child.End()
	root.End()
	spans := s.Trace(trace)
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].Name != "otpd.sms" || spans[0].Parent != spans[1].ID {
		t.Errorf("child span %+v not parented on root %+v", spans[0], spans[1])
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *SpanStore
	sp := s.Start("t", "x")
	if sp != nil {
		t.Fatal("nil store returned non-nil span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if sp.TraceID() != "" {
		t.Error("nil span TraceID != \"\"")
	}
	if c := sp.StartChild("y"); c != nil {
		t.Error("nil span StartChild != nil")
	}
	if s.Trace("t") != nil || s.Len() != 0 || s.Evicted() != 0 {
		t.Error("nil store queries not empty")
	}
	ctx, nsp := s.StartCtx(context.Background(), "z")
	if ctx != context.Background() || nsp != nil {
		t.Error("nil store StartCtx changed ctx or returned a span")
	}
}

func TestSpanDurationsNonZero(t *testing.T) {
	s := NewSpanStore(2)
	sp := s.Start("d", "leg")
	time.Sleep(time.Millisecond)
	sp.End()
	got := s.Trace("d")
	if len(got) != 1 || got[0].Duration() <= 0 {
		t.Fatalf("duration = %v, want > 0", got[0].Duration())
	}
}
