package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// processStart anchors the /healthz uptime report.
var processStart = time.Now()

// Mount registers the operational endpoints on mux:
//
//	GET /metrics        Prometheus text exposition of reg
//	GET /healthz        liveness: "ok" plus uptime
//	    /debug/pprof/*  the standard net/http/pprof profiles
//
// Servers that already own a mux (the otpd admin API, the portal) mount
// these alongside their application routes; standalone daemons serve
// Handler on a dedicated -obs-addr listener.
func Mount(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s\n", time.Since(processStart).Round(time.Second))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a standalone handler serving the Mount endpoints.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, reg)
	return mux
}
