package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"
)

// processStart anchors the /healthz uptime report and the
// process_start_time_seconds convention gauge.
var processStart = time.Now()

// ConventionFamilies lists the metric families every exposition mounted
// through this package is expected to carry; metrics-lint gates on them
// via LintExposition's required argument.
func ConventionFamilies() []string {
	return []string{"process_start_time_seconds", "build_info"}
}

// registerConventions populates the Prometheus convention families:
// process_start_time_seconds lets scrapers detect restarts and compute
// counter resets, build_info is the standard constant-1 gauge carrying
// version identity in labels.
func registerConventions(reg *Registry) {
	reg.Gauge("process_start_time_seconds").Set(float64(processStart.UnixNano()) / 1e9)
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	reg.Gauge("build_info", "goversion", runtime.Version(), "version", version).Set(1)
}

// HealthCheck reports a degraded condition: nil means healthy, an error
// both flips /healthz to 503 and names the condition in its body.
type HealthCheck func() error

// Mount registers the operational endpoints on mux:
//
//	GET /metrics        Prometheus text exposition of reg
//	GET /healthz        liveness: "ok" plus uptime, or 503 "degraded"
//	                    listing every failing HealthCheck
//	    /debug/pprof/*  the standard net/http/pprof profiles
//
// Servers that already own a mux (the otpd admin API, the portal) mount
// these alongside their application routes; standalone daemons serve
// Handler on a dedicated -obs-addr listener.
func Mount(mux *http.ServeMux, reg *Registry, checks ...HealthCheck) {
	registerConventions(reg)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var failing []error
		for _, c := range checks {
			if c == nil {
				continue
			}
			if err := c(); err != nil {
				failing = append(failing, err)
			}
		}
		if len(failing) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded uptime=%s\n", time.Since(processStart).Round(time.Second))
			for _, err := range failing {
				fmt.Fprintf(w, "check: %v\n", err)
			}
			return
		}
		fmt.Fprintf(w, "ok uptime=%s\n", time.Since(processStart).Round(time.Second))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a standalone handler serving the Mount endpoints.
func Handler(reg *Registry, checks ...HealthCheck) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, reg, checks...)
	return mux
}
