package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeSampler exports Go runtime health on a Registry:
//
//	go_goroutines          current goroutine count
//	go_heap_inuse_bytes    bytes in in-use heap spans
//	go_gc_pause_p99_seconds  p99 stop-the-world GC pause (process lifetime)
//	go_gomaxprocs          current GOMAXPROCS
//
// A lightweight ticker goroutine refreshes the gauges; Stop shuts it down
// synchronously so tests stay leakcheck-clean. The readings come from
// runtime/metrics (plus runtime.NumGoroutine/GOMAXPROCS), which are cheap
// enough to sample every few seconds without perturbing the auth path.
type RuntimeSampler struct {
	goroutines *Gauge
	heapInuse  *Gauge
	gcPauseP99 *Gauge
	gomaxprocs *Gauge

	mu       sync.Mutex // guards samples (Sample may race the ticker)
	samples  []metrics.Sample
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// DefaultRuntimeSampleInterval is used when StartRuntimeSampler is given a
// non-positive interval.
const DefaultRuntimeSampleInterval = 10 * time.Second

// StartRuntimeSampler registers the runtime gauges on reg, takes one
// sample immediately, and refreshes them every interval until Stop.
// A nil registry returns a no-op sampler (Stop still safe).
func StartRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	s := NewRuntimeSampler(reg)
	if reg == nil {
		return s
	}
	if interval <= 0 {
		interval = DefaultRuntimeSampleInterval
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// NewRuntimeSampler registers the gauges and samples once, without a
// background goroutine — callers drive Sample themselves (tests, or a
// scrape-time hook).
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	s := &RuntimeSampler{
		goroutines: reg.Gauge("go_goroutines"),
		heapInuse:  reg.Gauge("go_heap_inuse_bytes"),
		gcPauseP99: reg.Gauge("go_gc_pause_p99_seconds"),
		gomaxprocs: reg.Gauge("go_gomaxprocs"),
		samples: []metrics.Sample{
			{Name: "/memory/classes/heap/objects:bytes"},
			{Name: "/memory/classes/heap/unused:bytes"},
			{Name: "/gc/pauses:seconds"},
		},
	}
	if reg != nil {
		s.Sample()
	}
	return s
}

// Sample refreshes the gauges once.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.gomaxprocs.Set(float64(runtime.GOMAXPROCS(0)))
	metrics.Read(s.samples)
	var heap float64
	for _, m := range s.samples[:2] {
		if m.Value.Kind() == metrics.KindUint64 {
			heap += float64(m.Value.Uint64())
		}
	}
	s.heapInuse.Set(heap)
	if h := s.samples[2].Value; h.Kind() == metrics.KindFloat64Histogram {
		s.gcPauseP99.Set(histQuantile(h.Float64Histogram(), 0.99))
	}
}

// histQuantile estimates a quantile from a runtime/metrics histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Buckets[i] / Buckets[i+1] bound count i; the runtime pads
			// the ends with +-Inf, so clamp to a finite edge.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 0) || math.IsNaN(ub) {
				ub = h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// Stop halts the ticker goroutine and waits for it to exit. Safe to call
// more than once and on a sampler without a goroutine.
func (s *RuntimeSampler) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
