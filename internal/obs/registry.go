// Package obs is the runtime observability layer for the auth stack: a
// concurrent metrics registry with Prometheus text-format exposition, a
// leveled structured logger, and context-propagated trace IDs.
//
// The paper's evaluation (§5, Figures 3–6) is built entirely from
// operational telemetry; this package gives the *live* sshd → PAM →
// RADIUS → otpd chain the same visibility: every layer counts outcomes,
// histograms latency, and tags log lines with a per-connection trace ID so
// one authentication can be followed end to end.
//
// Everything is stdlib-only and nil-safe: a nil *Registry, nil *Counter,
// nil *Gauge, nil *Histogram, or nil *Logger is a no-op, so instrumented
// hot paths cost a pointer test when observability is disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind discriminates the exposition family types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// DefBuckets returns the default latency buckets (seconds), spanning the
// 100 µs in-process validations up to multi-second RADIUS failover chains.
func DefBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Registry is a concurrent metric registry. Metric handles are resolved
// once (get-or-create keyed by name + label set) and then operated on with
// atomics, so the hot path never takes the registry lock.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

type family struct {
	name    string
	kind    metricKind
	buckets []float64 // histograms only
	series  map[string]any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name and the given label pairs
// (key1, value1, key2, value2, ...), creating it on first use.
// A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.metric(name, kindCounter, nil, labels)
	return m.(*Counter)
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.metric(name, kindGauge, nil, labels)
	return m.(*Gauge)
}

// Histogram returns the histogram for name and labels, creating it on
// first use. buckets are ascending upper bounds in seconds (or whatever
// unit the metric uses); nil means DefBuckets. The bucket layout is fixed
// by the first call for a name; later calls may pass nil.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.metric(name, kindHistogram, buckets, labels)
	return m.(*Histogram)
}

// EachCounter invokes fn for every counter series currently in the named
// family, passing each series' rendered label key (sorted `k="v"` pairs).
// Families whose label sets appear dynamically — per-route, per-status
// request counters — can thus be aggregated, e.g. by an SLO availability
// source, without pre-registering every series. Nil-safe; a missing or
// non-counter family is a no-op.
func (r *Registry) EachCounter(name string, fn func(seriesLabels string, c *Counter)) {
	if r == nil {
		return
	}
	r.mu.RLock()
	fam := r.families[name]
	if fam == nil || fam.kind != kindCounter {
		r.mu.RUnlock()
		return
	}
	keys := make([]string, 0, len(fam.series))
	for k := range fam.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]*Counter, len(keys))
	for i, k := range keys {
		series[i] = fam.series[k].(*Counter)
	}
	r.mu.RUnlock()
	for i, k := range keys {
		fn(k, series[i])
	}
}

func (r *Registry) metric(name string, kind metricKind, buckets []float64, labels []string) any {
	if !validName(name) {
		panic("obs: invalid metric name " + name)
	}
	key := labelKey(labels)
	r.mu.RLock()
	fam := r.families[name]
	if fam != nil {
		if m, ok := fam.series[key]; ok {
			kindGot := fam.kind
			r.mu.RUnlock()
			if kindGot != kind {
				panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, kindGot, kind))
			}
			return m
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	fam = r.families[name]
	if fam == nil {
		if kind == kindHistogram {
			if buckets == nil {
				buckets = DefBuckets()
			}
			for i := 1; i < len(buckets); i++ {
				if buckets[i] <= buckets[i-1] {
					panic("obs: histogram buckets for " + name + " must be ascending")
				}
			}
			if len(buckets) == 0 {
				panic("obs: histogram " + name + " needs at least one bucket")
			}
		}
		fam = &family{name: name, kind: kind, buckets: buckets, series: make(map[string]any)}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, fam.kind, kind))
	}
	if m, ok := fam.series[key]; ok {
		return m
	}
	var m any
	switch kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		h := &Histogram{upper: fam.buckets}
		h.counts = make([]atomic.Uint64, len(fam.buckets))
		m = h
	}
	fam.series[key] = m
	return m
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelKey renders label pairs into the canonical `k="v",k2="v2"` form,
// sorted by key, which doubles as the exposition label block.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list (want key, value pairs)")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics). Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta. Nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency/size distribution. Buckets hold
// non-cumulative per-bucket counts; exposition renders them cumulatively
// with the implicit +Inf bucket equal to the total observation count.
type Histogram struct {
	upper   []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveSince records the seconds elapsed since t0. Nil-safe.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count is the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// CountBelow is the number of observations that landed in buckets whose
// upper bound is <= bound — the "good events" count for a latency SLO.
// The answer is quantised to the bucket layout: observations are credited
// against the largest bucket bound not exceeding bound, so a threshold
// between two bounds is evaluated conservatively. Nil-safe.
func (h *Histogram) CountBelow(bound float64) uint64 {
	if h == nil {
		return 0
	}
	var cum uint64
	for i, ub := range h.upper {
		if ub > bound {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// Sum is the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing the target rank. Observations beyond the
// last bucket clamp to its upper bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, ub := range h.upper {
		c := h.counts[i].Load()
		if c == 0 {
			lower = ub
			continue
		}
		if float64(cum+c) >= rank {
			// Interpolate within [lower, ub].
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + (ub-lower)*frac
		}
		cum += c
		lower = ub
	}
	// Target rank is in the +Inf bucket: report the last finite bound.
	return h.upper[len(h.upper)-1]
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (families sorted by name, series sorted by label block), suitable
// for a /metrics endpoint. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot the family/series structure under the lock; atomic values
	// are read afterwards (they are safe without the lock).
	type seriesSnap struct {
		labels string
		metric any
	}
	type famSnap struct {
		name    string
		kind    metricKind
		buckets []float64
		series  []seriesSnap
	}
	fams := make([]famSnap, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		fs := famSnap{name: n, kind: f.kind, buckets: f.buckets}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fs.series = append(fs.series, seriesSnap{labels: k, metric: f.series[k]})
		}
		fams = append(fams, fs)
	}
	r.mu.RUnlock()

	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch m := s.metric.(type) {
			case *Counter:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, block(s.labels), m.Value())
			case *Gauge:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, block(s.labels), formatFloat(m.Value()))
			case *Histogram:
				var cum uint64
				for i, ub := range m.upper {
					cum += m.counts[i].Load()
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, bucketBlock(s.labels, formatFloat(ub)), cum)
				}
				count := m.Count()
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, bucketBlock(s.labels, "+Inf"), count)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, block(s.labels), formatFloat(m.Sum()))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, block(s.labels), count)
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func block(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func bucketBlock(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
