package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// Logger is a leveled structured logger emitting one `key=value` line per
// event:
//
//	2016-10-04T08:00:00.000Z INFO msg=auth component=sshd trace=4fca... user=alice result=accept
//
// A nil *Logger discards everything, so call sites never need a nil check.
// Loggers derived with With share the parent's writer and mutex, making
// concurrent use from every layer safe.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	min    Level
	now    func() time.Time
	prefix string   // preformatted " key=value ..." appended after msg
	sample *sampler // optional per-message rate limiter (see RateLimit)
}

// NewLogger writes events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, now: time.Now}
}

// With returns a derived logger whose events carry the given key/value
// pairs. Nil-safe.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.prefix = l.prefix + renderKV(kv)
	return &d
}

// Enabled reports whether events at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

// Debug logs at DEBUG. kv are key/value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at INFO.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at WARN.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at ERROR.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	if l.sample != nil && !l.sample.allow(msg, l.now()) {
		return
	}
	var sb strings.Builder
	sb.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	sb.WriteByte(' ')
	sb.WriteString(lv.String())
	sb.WriteString(" msg=")
	sb.WriteString(quoteValue(msg))
	sb.WriteString(l.prefix)
	sb.WriteString(renderKV(kv))
	sb.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, sb.String())
	l.mu.Unlock()
}

// renderKV formats key/value pairs as " k=v k2=v2". An odd trailing key is
// rendered with the value "(MISSING)" rather than dropped.
func renderKV(kv []any) string {
	if len(kv) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i < len(kv); i += 2 {
		sb.WriteByte(' ')
		sb.WriteString(fmt.Sprint(kv[i]))
		sb.WriteByte('=')
		if i+1 < len(kv) {
			sb.WriteString(quoteValue(fmt.Sprint(kv[i+1])))
		} else {
			sb.WriteString("(MISSING)")
		}
	}
	return sb.String()
}

func quoteValue(v string) string {
	if v == "" {
		return `""`
	}
	if strings.ContainsAny(v, " \t\n\"=") {
		return fmt.Sprintf("%q", v)
	}
	return v
}
