package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintExposition parses a Prometheus text-format exposition and returns
// every defect it finds: duplicate or interleaved TYPE declarations,
// series without a preceding TYPE, malformed metric names or label
// blocks, unparseable values, duplicate series, counters that render
// negative, and histogram bucket sequences whose cumulative counts
// decrease. Each family named in required must additionally be present —
// gates pass ConventionFamilies() here so a mount that stops exporting
// process_start_time_seconds or build_info fails lint. The
// `make metrics-lint` gate feeds it the full /metrics output of a
// running portal so a bad family can never ship silently.
func LintExposition(r io.Reader, required ...string) []error {
	var errs []error
	addf := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	declared := map[string]string{} // family -> kind
	seen := map[string]struct{}{}   // full series key
	var curFamily, curKind string
	// histogram bucket monotonicity: per series-label block, last cum count
	bucketCum := map[string]float64{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				addf(n, "malformed comment line %q", line)
				continue
			}
			name, kind := fields[2], fields[3]
			if !validName(name) {
				addf(n, "TYPE declares invalid metric name %q", name)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				addf(n, "TYPE declares unknown kind %q", kind)
			}
			if _, dup := declared[name]; dup {
				addf(n, "duplicate TYPE declaration for family %q", name)
			}
			declared[name] = kind
			curFamily, curKind = name, kind
			continue
		}

		name, labels, value, err := parseSeries(line)
		if err != nil {
			addf(n, "%v", err)
			continue
		}
		base := familyOf(name, curFamily, curKind)
		if base != curFamily {
			if kind, ok := declared[base]; ok {
				// Series re-appearing after its family block closed:
				// families must be contiguous or scrapers double-count.
				addf(n, "series %q outside its TYPE %s block (family %q interleaved)", name, kind, base)
			} else {
				addf(n, "series %q has no preceding TYPE declaration", name)
			}
			continue
		}
		key := name + "{" + labels + "}"
		if _, dup := seen[key]; dup {
			addf(n, "duplicate series %s", key)
		}
		seen[key] = struct{}{}
		if curKind == "counter" && value < 0 {
			addf(n, "counter %s has negative value %g", key, value)
		}
		if curKind == "histogram" && strings.HasSuffix(name, "_bucket") {
			// Strip le from the label block to key the bucket run.
			run := name + "{" + stripLE(labels) + "}"
			if last, ok := bucketCum[run]; ok && value < last {
				addf(n, "histogram %s cumulative bucket count decreased (%g < %g)", run, value, last)
			}
			bucketCum[run] = value
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}
	for _, fam := range required {
		if _, ok := declared[fam]; !ok {
			errs = append(errs, fmt.Errorf("required family %q missing from exposition", fam))
		}
	}
	return errs
}

// familyOf maps a sample name onto its family, honouring the histogram
// suffix convention only when the current family is a histogram.
func familyOf(name, curFamily, curKind string) string {
	if curKind == "histogram" {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.TrimSuffix(name, suf) == curFamily {
				return curFamily
			}
		}
	}
	return name
}

// parseSeries splits `name{labels} value` (labels optional) and validates
// each piece.
func parseSeries(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", "", 0, fmt.Errorf("malformed series line %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[1:end]
		rest = rest[end+1:]
		if err := lintLabels(labels); err != nil {
			return "", "", 0, fmt.Errorf("series %q: %w", name, err)
		}
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", 0, fmt.Errorf("series %q has no value", name)
	}
	fields := strings.Fields(rest)
	if len(fields) > 2 {
		return "", "", 0, fmt.Errorf("series %q has trailing garbage %q", name, rest)
	}
	v, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("series %q has unparseable value %q", name, fields[0])
	}
	return name, labels, v, nil
}

// lintLabels validates a `k="v",k2="v2"` block (the exposition cannot
// contain escaped quotes mid-value without backslash, which we honour).
func lintLabels(block string) error {
	rest := block
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label block %q", block)
		}
		key := rest[:eq]
		if !validName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("label %q value not quoted", key)
		}
		rest = rest[1:]
		// Find the closing quote, honouring backslash escapes.
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
		}
		if i >= len(rest) {
			return fmt.Errorf("label %q value unterminated", key)
		}
		rest = rest[i+1:]
		if rest == "" {
			return nil
		}
		if !strings.HasPrefix(rest, ",") {
			return fmt.Errorf("label block %q missing comma", block)
		}
		rest = rest[1:]
	}
	return fmt.Errorf("label block %q has trailing comma", block)
}

// stripLE removes the le="..." pair from a bucket label block so bucket
// runs can be grouped per series.
func stripLE(labels string) string {
	parts := splitLabelBlock(labels)
	out := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, `le="`) {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}

// splitLabels splits on commas outside quoted values.
func splitLabelBlock(labels string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		parts = append(parts, labels[start:])
	}
	return parts
}
