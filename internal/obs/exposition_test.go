package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// buildSample populates a registry with one of everything, deterministic
// values, so the rendered exposition can be compared byte-for-byte.
func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("auth_total", "result", "accept").Add(42)
	r.Counter("auth_total", "result", "reject").Add(7)
	r.Gauge("drift_ratio").Set(0.25)
	r.Gauge("open_connections").Set(3)
	h := r.Histogram("check_duration_seconds", []float64{0.001, 0.01, 0.1, 1}, "result", "ok")
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	r.Counter("label_escape_total", "path", "a\"b\\c\n").Inc()
	return r
}

// TestExpositionGolden pins the exact /metrics bytes. Regenerate with
//
//	OBS_GOLDEN_UPDATE=1 go test ./internal/obs -run TestExpositionGolden
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if update() {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func update() bool { return os.Getenv("OBS_GOLDEN_UPDATE") != "" }

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition is a strict parser for the subset of the Prometheus text
// format WritePrometheus emits: `# TYPE name kind` headers and
// `name[{k="v",...}] value` samples.
func parseExposition(t *testing.T, text string) (types map[string]string, samples []sample) {
	t.Helper()
	types = make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE header %q", ln+1, line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		labels := map[string]string{}
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unterminated label block: %q", ln+1, line)
			}
			for _, kv := range splitLabels(t, line[i+1:j]) {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln+1, kv)
				}
				labels[k] = v[1 : len(v)-1]
			}
			line = name + line[j+1:]
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("line %d: want `name value`, got %q", ln+1, line)
		}
		v, err := parseValue(f[1])
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, f[1], err)
		}
		samples = append(samples, sample{name: f[0], labels: labels, value: v})
	}
	return types, samples
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes.
func splitLabels(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
			cur.WriteByte(c)
		case c == '\\' && inQuote:
			escaped = true
			cur.WriteByte(c)
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		t.Fatalf("unterminated quote in label block %q", s)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func parseValue(s string) (float64, error) {
	if s == "+Inf" {
		return 0, fmt.Errorf("+Inf sample value outside le label")
	}
	return strconv.ParseFloat(s, 64)
}

// TestExpositionParses validates the format invariants the scrape side
// depends on: every sample belongs to a typed family, histogram buckets
// are cumulative and monotonic, the +Inf bucket equals _count, and _sum is
// consistent with the observations.
func TestExpositionParses(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, buf.String())

	if len(types) == 0 || len(samples) == 0 {
		t.Fatal("empty exposition")
	}
	baseName := func(n string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(n, suf); ok {
				if types[b] == "histogram" {
					return b
				}
			}
		}
		return n
	}
	for _, s := range samples {
		if _, ok := types[baseName(s.name)]; !ok {
			t.Fatalf("sample %q has no TYPE header", s.name)
		}
	}

	// Group histogram series by base name + labels (minus le).
	type key struct{ name, labels string }
	buckets := map[key][]sample{}
	sums := map[key]float64{}
	counts := map[key]float64{}
	for _, s := range samples {
		b := baseName(s.name)
		if types[b] != "histogram" {
			continue
		}
		lbl := make([]string, 0, len(s.labels))
		for k, v := range s.labels {
			if k == "le" {
				continue
			}
			lbl = append(lbl, k+"="+v)
		}
		sort.Strings(lbl)
		k := key{b, strings.Join(lbl, ",")}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			buckets[k] = append(buckets[k], s)
		case strings.HasSuffix(s.name, "_sum"):
			sums[k] = s.value
		case strings.HasSuffix(s.name, "_count"):
			counts[k] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram series found")
	}
	for k, bs := range buckets {
		// Buckets are emitted in ascending le order; verify cumulative
		// monotonicity and the +Inf terminal.
		prev := -1.0
		var inf float64
		sawInf := false
		for _, b := range bs {
			le := b.labels["le"]
			if le == "" {
				t.Fatalf("%v: bucket without le label", k)
			}
			if b.value < prev {
				t.Fatalf("%v: bucket le=%s count %g < previous %g (not monotonic)", k, le, b.value, prev)
			}
			prev = b.value
			if le == "+Inf" {
				inf, sawInf = b.value, true
			}
		}
		if !sawInf {
			t.Fatalf("%v: no +Inf bucket", k)
		}
		if inf != counts[k] {
			t.Fatalf("%v: +Inf bucket %g != _count %g", k, inf, counts[k])
		}
		if counts[k] > 0 && sums[k] <= 0 {
			t.Fatalf("%v: _count %g but _sum %g", k, counts[k], sums[k])
		}
	}
}
