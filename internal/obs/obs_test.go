package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestLoggerFormatAndLevels(t *testing.T) {
	var buf strings.Builder
	mu := &sync.Mutex{}
	_ = mu
	l := NewLogger(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("auth", "component", "sshd", "trace", "abcd1234abcd1234", "user", "alice")
	l.Warn("slow path", "dur", "1.5s")
	l.Error("boom", "err", `quote " me`)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (debug filtered):\n%s", len(lines), out)
	}
	if strings.Contains(out, "hidden") {
		t.Fatal("debug line leaked past INFO level")
	}
	if !strings.Contains(lines[0], " INFO msg=auth component=sshd trace=abcd1234abcd1234 user=alice") {
		t.Fatalf("info line = %q", lines[0])
	}
	if !strings.Contains(lines[1], `WARN msg="slow path" dur=1.5s`) {
		t.Fatalf("warn line = %q", lines[1])
	}
	if !strings.Contains(lines[2], `err="quote \" me"`) {
		t.Fatalf("error line = %q", lines[2])
	}
}

func TestLoggerWith(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelDebug).With("component", "radius")
	l.Info("request", "trace", "deadbeefdeadbeef")
	if !strings.Contains(buf.String(), "component=radius trace=deadbeefdeadbeef") {
		t.Fatalf("derived logger line = %q", buf.String())
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	l.Info("x") // must not panic
	l.With("a", "b").Error("y")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	pr, pw := io.Pipe()
	go io.Copy(io.Discard, pr)
	l := NewLogger(pw, LevelDebug)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.With("g", "x").Info("tick", "j", "1")
			}
		}()
	}
	wg.Wait()
	pw.Close()
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("trace IDs collided: %s", a)
	}
	if !ValidTraceID(a) || !ValidTraceID(b) {
		t.Fatalf("generated IDs fail validation: %s %s", a, b)
	}
	for _, bad := range []string{"", "short", "UPPERCASEHEX0000", strings.Repeat("a", 33), "zzzzzzzzzzzzzzzz"} {
		if ValidTraceID(bad) {
			t.Fatalf("ValidTraceID(%q) = true", bad)
		}
	}
	ctx := WithTrace(context.Background(), a)
	if got := TraceID(ctx); got != a {
		t.Fatalf("TraceID = %q, want %q", got, a)
	}
	if TraceID(context.Background()) != "" {
		t.Fatal("empty context should have no trace")
	}
	if WithTrace(context.Background(), "") != context.Background() {
		t.Fatal("empty trace should not allocate a context")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(3)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "requests_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get("/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok uptime=") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}
