package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "result", "ok")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same handle.
	if r.Counter("requests_total", "result", "ok") != c {
		t.Fatal("counter handle not stable across lookups")
	}
	// Label order must not matter.
	a := r.Counter("multi_total", "a", "1", "b", "2")
	b := r.Counter("multi_total", "b", "2", "a", "1")
	if a != b {
		t.Fatal("label order changed metric identity")
	}

	g := r.Gauge("open_conns")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.01, 0.1, 1}, "stage", "check")
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// Quantiles: p25 falls in the first bucket, p100 clamps to the last
	// finite bound (the 5s observation lives in +Inf).
	if q := h.Quantile(0.25); q <= 0 || q > 0.01 {
		t.Fatalf("p25 = %g, want within (0, 0.01]", q)
	}
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %g, want clamp to 1", q)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("auto_seconds", nil)
	h.Observe(0.003)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if len(h.upper) != len(DefBuckets()) {
		t.Fatalf("bucket count = %d, want %d", len(h.upper), len(DefBuckets()))
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	g := r.Gauge("x")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	h := r.Histogram("x_seconds", nil)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should read 0")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, %v", sb.String(), err)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing_total")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter re-registered as gauge")
		}
	}()
	r.Gauge("thing_total")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	r.Counter("bad-name")
}

func TestOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd label list")
		}
	}()
	r.Counter("x_total", "only_key")
}

// TestRegistryConcurrency hammers one registry from many goroutines mixing
// handle resolution, operations, and exposition — run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results := []string{"ok", "fail"}
			for i := 0; i < 500; i++ {
				res := results[i%2]
				r.Counter("conc_total", "result", res).Inc()
				r.Gauge("conc_gauge").Add(1)
				r.Histogram("conc_seconds", nil, "result", res).Observe(float64(i) / 1000)
				if i%100 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}(g)
	}
	wg.Wait()
	total := r.Counter("conc_total", "result", "ok").Value() +
		r.Counter("conc_total", "result", "fail").Value()
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
	hc := r.Histogram("conc_seconds", nil, "result", "ok").Count() +
		r.Histogram("conc_seconds", nil, "result", "fail").Count()
	if hc != 8*500 {
		t.Fatalf("histogram count = %d, want %d", hc, 8*500)
	}
	if g := r.Gauge("conc_gauge").Value(); g != 8*500 {
		t.Fatalf("gauge = %g, want %d", g, 8*500)
	}
}
