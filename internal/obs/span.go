package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Spans extend trace IDs into per-leg timing: one login decomposes into an
// sshd-conversation span with PAM-module and RADIUS-RTT children, plus an
// otpd-check span on the far side of the UDP hop (parentless there, joined
// to the rest of the tree by the shared trace ID). Finished spans land in a
// bounded in-memory SpanStore, queryable per trace ID, so operators can ask
// "where did this login spend its time?" without external tooling.
//
// Like the rest of the package everything is nil-safe: a nil *SpanStore
// hands out nil *Spans, and every *Span method no-ops on nil, so
// instrumented paths cost a pointer test when tracing is disabled. Span
// clocks are wall time (not the injected sim clock) on purpose: a span
// measures real compute and real network time, which is exactly what a
// frozen simulation clock cannot see.

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is the recorded form of a span.
type SpanData struct {
	Trace  string    `json:"trace"`
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"` // 0 = root (no parent in this process)
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Attrs  []Attr    `json:"attrs,omitempty"`
}

// Duration is the span's elapsed wall time.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Span is one in-flight timing leg. Start spans via SpanStore.Start /
// StartCtx or Span.StartChild; call End exactly once to record the leg
// (later Ends are no-ops).
type Span struct {
	store *SpanStore

	mu   sync.Mutex
	data SpanData
	done bool
}

// SpanStore records finished spans in a bounded ring; when the ring is
// full the oldest span is evicted (counted, never blocking the auth path).
//
// Eviction is visible at query time: the store remembers, for every trace
// that still has at least one span in the ring, whether any of its spans
// have already been evicted, and Lookup reports that as a truncation flag
// so consumers (the flight recorder, /debug/flightrec) never mistake a
// partial tree for a complete one. The bookkeeping is self-bounding: a
// trace whose last span leaves the ring is forgotten entirely (an empty
// result cannot masquerade as a complete tree), so both maps hold at most
// as many entries as the ring holds distinct traces.
type SpanStore struct {
	seq     atomic.Uint64
	evicted atomic.Uint64
	now     func() time.Time // test hook; nil = time.Now

	mu        sync.Mutex
	ring      []SpanData
	head      int
	size      int
	live      map[string]int      // trace -> spans currently in the ring
	truncated map[string]struct{} // traces with >=1 live span and >=1 evicted span
}

// DefaultSpanCapacity bounds the store when NewSpanStore is given a
// non-positive capacity: enough for a few hundred logins' worth of legs.
const DefaultSpanCapacity = 4096

// NewSpanStore creates a store keeping the most recent capacity spans
// (DefaultSpanCapacity if capacity <= 0).
func NewSpanStore(capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanStore{
		ring:      make([]SpanData, capacity),
		live:      make(map[string]int),
		truncated: make(map[string]struct{}),
	}
}

func (s *SpanStore) clock() time.Time {
	if s.now != nil {
		return s.now()
	}
	return time.Now()
}

// Start begins a root span under the given trace ID. Nil-safe: a nil store
// returns a nil (no-op) span.
func (s *SpanStore) Start(trace, name string) *Span {
	if s == nil {
		return nil
	}
	sp := &Span{store: s}
	sp.data = SpanData{
		Trace: trace,
		ID:    s.seq.Add(1),
		Name:  name,
		Start: s.clock(),
	}
	return sp
}

// StartChild begins a child span under sp, inheriting its trace. Nil-safe.
func (sp *Span) StartChild(name string) *Span {
	if sp == nil || sp.store == nil {
		return nil
	}
	sp.mu.Lock()
	trace, parent := sp.data.Trace, sp.data.ID
	sp.mu.Unlock()
	child := sp.store.Start(trace, name)
	child.mu.Lock()
	child.data.Parent = parent
	child.mu.Unlock()
	return child
}

// SetAttr annotates the span. Nil-safe; no-op after End.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.done {
		return
	}
	for i := range sp.data.Attrs {
		if sp.data.Attrs[i].Key == key {
			sp.data.Attrs[i].Value = value
			return
		}
	}
	sp.data.Attrs = append(sp.data.Attrs, Attr{Key: key, Value: value})
}

// TraceID returns the span's trace ID ("" for a nil span).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.data.Trace
}

// End finishes the span and records it in the store. Only the first End
// records; later calls are no-ops. Nil-safe.
func (sp *Span) End() {
	if sp == nil || sp.store == nil {
		return
	}
	sp.mu.Lock()
	if sp.done {
		sp.mu.Unlock()
		return
	}
	sp.done = true
	sp.data.End = sp.store.clock()
	data := sp.data
	sp.mu.Unlock()
	sp.store.record(data)
}

func (s *SpanStore) record(d SpanData) {
	s.mu.Lock()
	if s.live == nil { // stores built by struct literal in tests
		s.live = make(map[string]int)
		s.truncated = make(map[string]struct{})
	}
	if s.size == len(s.ring) {
		s.evicted.Add(1)
		old := s.ring[s.head].Trace
		if n := s.live[old] - 1; n > 0 {
			s.live[old] = n
			s.truncated[old] = struct{}{}
		} else {
			delete(s.live, old)
			delete(s.truncated, old)
		}
	} else {
		s.size++
	}
	s.live[d.Trace]++
	s.ring[s.head] = d
	s.head = (s.head + 1) % len(s.ring)
	s.mu.Unlock()
}

// Trace returns the recorded spans for a trace ID, oldest first. Nil-safe.
func (s *SpanStore) Trace(trace string) []SpanData {
	spans, _ := s.Lookup(trace)
	return spans
}

// Lookup returns the recorded spans for a trace ID, oldest first, plus a
// truncation flag: true means at least one span of this trace has already
// been evicted from the ring, so the returned tree is incomplete. Nil-safe.
func (s *SpanStore) Lookup(trace string) (spans []SpanData, truncated bool) {
	if s == nil || trace == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.size; i++ {
		d := &s.ring[(s.head-s.size+i+2*len(s.ring))%len(s.ring)]
		if d.Trace == trace {
			spans = append(spans, *d)
		}
	}
	_, truncated = s.truncated[trace]
	return spans, truncated
}

// Len is the number of recorded spans currently held. Nil-safe.
func (s *SpanStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Evicted is the number of spans dropped to ring bounding. Nil-safe.
func (s *SpanStore) Evicted() uint64 {
	if s == nil {
		return 0
	}
	return s.evicted.Load()
}

type spanCtxKey struct{}

// WithSpan attaches a span to ctx so downstream legs can parent off it.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext extracts the current span from ctx (nil if absent).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartCtx begins a span as a child of the span in ctx if one is present,
// or as a root span under the ctx trace ID otherwise, and returns a
// derived context carrying the new span. Nil-safe: with a nil store the
// original ctx and a nil span come back.
func (s *SpanStore) StartCtx(ctx context.Context, name string) (context.Context, *Span) {
	if s == nil {
		return ctx, nil
	}
	var sp *Span
	if parent := SpanFromContext(ctx); parent != nil {
		sp = parent.StartChild(name)
	} else {
		sp = s.Start(TraceID(ctx), name)
	}
	return WithSpan(ctx, sp), sp
}
