package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeNow is a settable clock for the sampler tests.
type fakeNow struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeNow) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeNow) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestLoggerRateLimitPerKey(t *testing.T) {
	clk := &fakeNow{t: time.Date(2016, 10, 4, 8, 0, 0, 0, time.UTC)}
	var buf strings.Builder
	reg := NewRegistry()
	base := NewLogger(&buf, LevelInfo)
	base.now = clk.Now
	l := base.RateLimit(3, time.Second, reg)

	for i := 0; i < 10; i++ {
		l.Info("storm", "i", i)
	}
	for i := 0; i < 2; i++ {
		l.Info("other")
	}
	out := buf.String()
	if got := strings.Count(out, "msg=storm"); got != 3 {
		t.Errorf("storm lines = %d, want 3 (limit)", got)
	}
	// A different message has its own bucket — the storm doesn't starve it.
	if got := strings.Count(out, "msg=other"); got != 2 {
		t.Errorf("other lines = %d, want 2", got)
	}
	if got := l.Suppressed(); got != 7 {
		t.Errorf("Suppressed() = %d, want 7", got)
	}
	if v := reg.Counter("log_events_suppressed_total").Value(); v != 7 {
		t.Errorf("log_events_suppressed_total = %d, want 7", v)
	}

	// Tokens refill with time: after a full period the key logs again.
	clk.Advance(time.Second)
	buf.Reset()
	for i := 0; i < 5; i++ {
		l.Info("storm")
	}
	if got := strings.Count(buf.String(), "msg=storm"); got != 3 {
		t.Errorf("after refill: storm lines = %d, want 3", got)
	}
}

func TestLoggerRateLimitSharedWithDerived(t *testing.T) {
	clk := &fakeNow{t: time.Unix(0, 0)}
	var buf strings.Builder
	base := NewLogger(&buf, LevelInfo)
	base.now = clk.Now
	l := base.RateLimit(2, time.Second, nil)
	d := l.With("component", "sshd")

	l.Info("request")
	d.Info("request") // same message key: shares the bucket
	d.Info("request")
	l.Info("request")
	if got := strings.Count(buf.String(), "msg=request"); got != 2 {
		t.Errorf("request lines = %d, want 2 across parent+derived", got)
	}
	if l.Suppressed() != 2 || d.Suppressed() != 2 {
		t.Errorf("Suppressed() = %d / %d, want 2 / 2 (shared sampler)", l.Suppressed(), d.Suppressed())
	}
}

func TestLoggerRateLimitNilAndDisabled(t *testing.T) {
	var l *Logger
	if l.RateLimit(5, time.Second, nil) != nil {
		t.Error("nil logger RateLimit != nil")
	}
	if l.Suppressed() != 0 {
		t.Error("nil logger Suppressed != 0")
	}
	var buf strings.Builder
	base := NewLogger(&buf, LevelInfo)
	if base.RateLimit(0, time.Second, nil) != base {
		t.Error("limit 0 should return the logger unchanged")
	}
	if base.RateLimit(5, 0, nil) != base {
		t.Error("period 0 should return the logger unchanged")
	}
}

func TestSamplerKeyBound(t *testing.T) {
	clk := &fakeNow{t: time.Unix(0, 0)}
	var buf strings.Builder
	base := NewLogger(&buf, LevelInfo)
	base.now = clk.Now
	l := base.RateLimit(1, time.Minute, nil)

	// Fill the key map past its bound; excess keys share the overflow
	// bucket instead of growing memory.
	for i := 0; i < samplerMaxKeys; i++ {
		l.sample.allow("key-"+time.Duration(i).String(), clk.Now())
	}
	if !l.sample.allow("fresh-overflow-a", clk.Now()) {
		t.Error("first overflow event should pass")
	}
	if l.sample.allow("fresh-overflow-b", clk.Now()) {
		t.Error("second overflow event should share the exhausted overflow bucket")
	}
	if len(l.sample.buckets) != samplerMaxKeys {
		t.Errorf("bucket map grew to %d, want bound %d", len(l.sample.buckets), samplerMaxKeys)
	}
}
