package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
)

var t0 = time.Date(2016, 10, 4, 8, 0, 0, 0, time.UTC)

func newEngine(t *testing.T, reg *obs.Registry, sim *clock.Sim) (*Engine, *obs.Counter, *obs.Counter) {
	t.Helper()
	good := reg.Counter("logins_good_total")
	total := reg.Counter("logins_total")
	e := New(Config{Obs: reg, Clock: sim})
	if err := e.Add(Objective{
		Name:   "logins",
		Target: 0.995,
		Window: 30 * 24 * time.Hour,
		Source: CounterSource{Good: good, Total: total},
	}); err != nil {
		t.Fatal(err)
	}
	return e, good, total
}

func TestHealthyTrafficBurnsNothing(t *testing.T) {
	reg := obs.NewRegistry()
	sim := clock.NewSim(t0)
	e, good, total := newEngine(t, reg, sim)

	for i := 0; i < 1000; i++ {
		good.Inc()
		total.Inc()
	}
	sim.Advance(time.Minute)
	e.Evaluate()

	if err := e.Health(); err != nil {
		t.Fatalf("healthy traffic degraded health: %v", err)
	}
	if v := reg.Gauge("slo_burn_rate", "slo", "logins", "window", "5m").Value(); v != 0 {
		t.Errorf("burn(5m) = %v, want 0", v)
	}
	if v := reg.Gauge("slo_budget_remaining", "slo", "logins").Value(); v != 1 {
		t.Errorf("budget remaining = %v, want 1", v)
	}
}

func TestFailureBurstFiresFastBurnWithinOneTick(t *testing.T) {
	reg := obs.NewRegistry()
	sim := clock.NewSim(t0)
	e, good, total := newEngine(t, reg, sim)

	// A burst of pure failures: error rate 1.0, burn = 1/0.005 = 200,
	// far above the fast pair's 14.4 on both the 5m and 1h windows.
	total.Add(200)
	_ = good
	sim.Advance(30 * time.Second)
	e.Evaluate()

	if v := reg.Gauge("slo_burn_rate", "slo", "logins", "window", "5m").Value(); v < 14.4 {
		t.Errorf("burn(5m) = %v, want > 14.4", v)
	}
	if v := reg.Gauge("slo_alert_active", "slo", "logins", "severity", "page").Value(); v != 1 {
		t.Errorf("page alert gauge = %v, want 1", v)
	}
	err := e.Health()
	if err == nil || !strings.Contains(err.Error(), "logins") {
		t.Fatalf("Health() = %v, want fast-burn error naming the objective", err)
	}

	// Recovery: a long healthy stretch slides the burst out of both fast
	// windows and the alert clears.
	for i := 0; i < 12*60; i++ {
		sim.Advance(time.Minute)
		good.Add(50)
		total.Add(50)
		e.Evaluate()
	}
	if err := e.Health(); err != nil {
		t.Fatalf("alert did not clear after recovery: %v", err)
	}
}

func TestSlowWindowPairNeedsSustainedBurn(t *testing.T) {
	reg := obs.NewRegistry()
	sim := clock.NewSim(t0)
	e, good, total := newEngine(t, reg, sim)

	// Sustained 1% error rate = burn 2 over every window: above the slow
	// pair's threshold of 1, below the fast pair's 14.4.
	for i := 0; i < 4*24; i++ { // 4 days hourly
		sim.Advance(time.Hour)
		good.Add(990)
		total.Add(1000)
		e.Evaluate()
	}
	if v := reg.Gauge("slo_alert_active", "slo", "logins", "severity", "ticket").Value(); v != 1 {
		t.Errorf("ticket alert = %v, want 1 under sustained 2x burn", v)
	}
	if v := reg.Gauge("slo_alert_active", "slo", "logins", "severity", "page").Value(); v != 0 {
		t.Errorf("page alert = %v, want 0 (burn 2 < 14.4)", v)
	}
	// Ticket severity must not degrade health.
	if err := e.Health(); err != nil {
		t.Errorf("ticket alert degraded health: %v", err)
	}
	// Burning at 2x for the whole retained history overspends the budget:
	// remaining = 1 - 2 = -1.
	left := reg.Gauge("slo_budget_remaining", "slo", "logins").Value()
	if left > -0.9 || left < -1.1 {
		t.Errorf("budget remaining = %v, want ~-1 after sustained 2x burn", left)
	}
}

func TestHistogramSourceQuantisesThreshold(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{0.1, 0.75, 2}, "k", "v")
	for _, v := range []float64{0.05, 0.5, 1.5, 3} {
		h.Observe(v)
	}
	good, total := HistogramSource{H: h, Threshold: 0.75}.Counts()
	if good != 2 || total != 4 {
		t.Errorf("HistogramSource = (%v, %v), want (2, 4)", good, total)
	}
	mg, mt := MultiSource{
		HistogramSource{H: h, Threshold: 0.75},
		HistogramSource{H: h, Threshold: 2},
	}.Counts()
	if mg != 5 || mt != 8 {
		t.Errorf("MultiSource = (%v, %v), want (5, 8)", mg, mt)
	}
}

func TestFamilySourceTracksNewSeries(t *testing.T) {
	reg := obs.NewRegistry()
	src := FamilySource{
		Reg: reg, Family: "http_total",
		Good: func(labels string) bool { return !strings.Contains(labels, `code="5`) },
	}
	if g, tot := src.Counts(); g != 0 || tot != 0 {
		t.Fatalf("empty family = (%v, %v)", g, tot)
	}
	reg.Counter("http_total", "route", "/a", "code", "200").Add(8)
	reg.Counter("http_total", "route", "/a", "code", "500").Add(2)
	if g, tot := src.Counts(); g != 8 || tot != 10 {
		t.Errorf("Counts = (%v, %v), want (8, 10)", g, tot)
	}
	// A series appearing later is picked up without re-registration.
	reg.Counter("http_total", "route", "/b", "code", "503").Inc()
	if g, tot := src.Counts(); g != 8 || tot != 11 {
		t.Errorf("Counts after new series = (%v, %v), want (8, 11)", g, tot)
	}
}

func TestSampleHistoryStaysBounded(t *testing.T) {
	reg := obs.NewRegistry()
	sim := clock.NewSim(t0)
	good := reg.Counter("g")
	total := reg.Counter("t")
	e := New(Config{Obs: reg, Clock: sim, MaxSamples: 64})
	if err := e.Add(Objective{Name: "x", Target: 0.99, Source: CounterSource{Good: good, Total: total}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		sim.Advance(time.Second)
		good.Inc()
		total.Inc()
		e.Evaluate()
	}
	st := e.Status()[0]
	if st.Samples > 64 {
		t.Errorf("history holds %d samples, cap 64", st.Samples)
	}
	if st.BudgetRemaining != 1 {
		t.Errorf("budget = %v, want 1 on perfect traffic", st.BudgetRemaining)
	}
}

func TestEngineValidation(t *testing.T) {
	e := New(Config{})
	src := CounterSource{}
	if err := e.Add(Objective{Name: "", Source: src, Target: 0.9}); err == nil {
		t.Error("empty name accepted")
	}
	if err := e.Add(Objective{Name: "x", Source: nil, Target: 0.9}); err == nil {
		t.Error("nil source accepted")
	}
	if err := e.Add(Objective{Name: "x", Source: src, Target: 1.5}); err == nil {
		t.Error("target > 1 accepted")
	}
	if err := e.Add(Objective{Name: "x", Source: src, Target: 0.9}); err != nil {
		t.Errorf("valid objective rejected: %v", err)
	}
	if err := e.Add(Objective{Name: "x", Source: src, Target: 0.9}); err == nil {
		t.Error("duplicate objective accepted")
	}
	var nilE *Engine
	nilE.Evaluate()
	nilE.Stop()
	if nilE.Health() != nil {
		t.Error("nil engine unhealthy")
	}
}

func TestStartStopLeakFree(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	e, good, total := newEngine(t, reg, clock.NewSim(t0))
	good.Inc()
	total.Inc()
	e.Start(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	e.Stop()
	e.Stop()
}

func TestHandlerAndSpecParsing(t *testing.T) {
	reg := obs.NewRegistry()
	sim := clock.NewSim(t0)
	e, good, total := newEngine(t, reg, sim)
	good.Add(10)
	total.Add(10)
	sim.Advance(time.Minute)
	e.Evaluate()

	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	var status []ObjectiveStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &status); err != nil {
		t.Fatalf("/debug/slo not JSON: %v\n%s", err, rr.Body.String())
	}
	if len(status) != 1 || status[0].Name != "logins" || len(status[0].Burn) != 4 {
		t.Fatalf("unexpected status: %+v", status)
	}

	spec, err := ParseSpec("logins:99.5%<750ms/30d")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "logins" || spec.Target != 0.995 ||
		spec.Threshold != 750*time.Millisecond || spec.Window != 30*24*time.Hour {
		t.Errorf("ParseSpec = %+v", spec)
	}
	for _, bad := range []string{"", "x", "x:99%<1s", "x:0%<1s/30d", "x:99.5%<banana/30d", "x:99.5%<1s/0d"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	var list SpecList
	if err := list.Set("a:99%<1s/7d"); err != nil {
		t.Fatal(err)
	}
	if list.String() != "a" {
		t.Errorf("SpecList.String() = %q", list.String())
	}
}
