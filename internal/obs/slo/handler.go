package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler serves the engine's state:
//
//	GET /debug/slo  JSON []ObjectiveStatus
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(e.Status())
	})
}

// Mount registers the handler at GET /debug/slo.
func (e *Engine) Mount(mux *http.ServeMux) {
	mux.Handle("GET /debug/slo", e.Handler())
}

// Spec is the parsed form of a daemon -slo flag. The flag syntax is
//
//	name:target%<threshold/window
//
// e.g. "logins:99.5%<750ms/30d" — 99.5% of logins decided in under 750ms,
// budgeted over 30 days. The threshold applies to whichever latency
// histogram the daemon binds the spec to.
type Spec struct {
	Name      string
	Target    float64       // as a ratio (0.995)
	Threshold time.Duration // latency bound
	Window    time.Duration // budget window
}

// ParseSpec parses the -slo flag syntax.
func ParseSpec(s string) (Spec, error) {
	bad := func(why string) (Spec, error) {
		return Spec{}, fmt.Errorf("slo: bad spec %q (want name:target%%<threshold/window, e.g. logins:99.5%%<750ms/30d): %s", s, why)
	}
	name, rest, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return bad("missing name")
	}
	pct, rest, ok := strings.Cut(rest, "%<")
	if !ok {
		return bad("missing target%<")
	}
	target, err := strconv.ParseFloat(pct, 64)
	if err != nil || target <= 0 || target >= 100 {
		return bad("target must be a percentage in (0,100)")
	}
	thrStr, winStr, ok := strings.Cut(rest, "/")
	if !ok {
		return bad("missing /window")
	}
	thr, err := parseDur(thrStr)
	if err != nil || thr <= 0 {
		return bad("bad threshold duration")
	}
	win, err := parseDur(winStr)
	if err != nil || win <= 0 {
		return bad("bad window duration")
	}
	return Spec{Name: name, Target: target / 100, Threshold: thr, Window: win}, nil
}

// parseDur accepts time.ParseDuration syntax plus a day suffix (30d).
func parseDur(s string) (time.Duration, error) {
	if strings.HasSuffix(s, "d") {
		days, err := strconv.ParseFloat(strings.TrimSuffix(s, "d"), 64)
		if err != nil {
			return 0, err
		}
		return time.Duration(days * 24 * float64(time.Hour)), nil
	}
	return time.ParseDuration(s)
}

// SpecList is a repeatable flag.Value collecting -slo specs.
type SpecList []Spec

// String implements flag.Value.
func (l *SpecList) String() string {
	parts := make([]string, len(*l))
	for i, s := range *l {
		parts[i] = s.Name
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (l *SpecList) Set(v string) error {
	spec, err := ParseSpec(v)
	if err != nil {
		return err
	}
	*l = append(*l, spec)
	return nil
}
