// Package slo evaluates service-level objectives over the metrics the
// auth stack already records, with multi-window burn-rate alerting.
//
// An Objective is declarative — "99.5% of logins succeed-or-fail-closed
// in under 750ms, measured over 30 days" — and is read from a Source,
// a cumulative (good, total) pair derived from existing counters or
// latency histograms; the engine never adds instrumentation to the hot
// path. On every evaluation tick it snapshots each source, keeps a
// bounded history of snapshots, and computes the burn rate over the
// standard SRE window pairs:
//
//	fast  5m and 1h,  threshold 14.4  (2% of a 30d budget in one hour)
//	slow  6h and 3d,  threshold 1     (budget exhausted at the window's pace)
//
// A pair alerts only when BOTH its windows burn above the threshold —
// the short window proves it is happening now, the long one that it is
// not a blip. The fast pair is page severity: Engine.Health reports it,
// and wiring that into authwatch/portal health checks turns a fast burn
// into a 503 on /healthz. Everything is exported on the obs registry:
//
//	slo_burn_rate{slo,window}      current burn per window
//	slo_budget_remaining{slo}      fraction of the error budget left
//	slo_alert_active{slo,severity} page/ticket pair state
package slo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/obs"
)

// Source yields the cumulative good and total event counts backing an
// objective. Implementations read existing obs handles; both values must
// be monotonically non-decreasing.
type Source interface {
	Counts() (good, total float64)
}

// HistogramSource adapts a latency histogram: good events are the
// observations at or under Threshold seconds (quantised to the bucket
// layout — see obs.Histogram.CountBelow), total is every observation.
type HistogramSource struct {
	H         *obs.Histogram
	Threshold float64
}

// Counts implements Source.
func (s HistogramSource) Counts() (float64, float64) {
	return float64(s.H.CountBelow(s.Threshold)), float64(s.H.Count())
}

// CounterSource adapts a good/total counter pair (e.g. accepted vs all
// authentications) into an availability objective.
type CounterSource struct {
	Good, Total *obs.Counter
}

// Counts implements Source.
func (s CounterSource) Counts() (float64, float64) {
	return float64(s.Good.Value()), float64(s.Total.Value())
}

// FamilySource aggregates every series of a counter family, classifying
// each series as good by its rendered label key (sorted `k="v"` pairs).
// Unlike CounterSource it tracks series that appear after registration —
// per-route, per-status request counters — so an availability objective
// can cover a whole family (Good == nil counts everything as good).
type FamilySource struct {
	Reg    *obs.Registry
	Family string
	Good   func(seriesLabels string) bool
}

// Counts implements Source.
func (s FamilySource) Counts() (good, total float64) {
	s.Reg.EachCounter(s.Family, func(labels string, c *obs.Counter) {
		v := float64(c.Value())
		total += v
		if s.Good == nil || s.Good(labels) {
			good += v
		}
	})
	return good, total
}

// MultiSource sums several sources, e.g. otpd's per-result-class check
// histograms.
type MultiSource []Source

// Counts implements Source.
func (m MultiSource) Counts() (good, total float64) {
	for _, s := range m {
		g, t := s.Counts()
		good += g
		total += t
	}
	return good, total
}

// Objective is one declarative SLO.
type Objective struct {
	// Name labels the exported series; must be a valid label value.
	Name string
	// Description is shown in /debug/slo.
	Description string
	// Target is the objective ratio, 0 < Target < 1 (0.995 = 99.5%).
	Target float64
	// Window is the error-budget accounting window (default 30 days).
	// Budget remaining is computed over min(Window, retained history).
	Window time.Duration
	// Source supplies the cumulative good/total counts (required).
	Source Source
}

// WindowPair is one burn-rate alert rule: both windows must burn above
// Threshold for the alert to fire.
type WindowPair struct {
	Severity string // "page" or "ticket"
	Short    time.Duration
	Long     time.Duration
	// Threshold is the burn-rate multiple: 1.0 means "eating budget
	// exactly as fast as the objective allows".
	Threshold float64
}

// DefaultWindows returns the standard multi-window multi-burn-rate pairs.
func DefaultWindows() []WindowPair {
	return []WindowPair{
		{Severity: "page", Short: 5 * time.Minute, Long: time.Hour, Threshold: 14.4},
		{Severity: "ticket", Short: 6 * time.Hour, Long: 3 * 24 * time.Hour, Threshold: 1},
	}
}

// Config parameterises an Engine.
type Config struct {
	// Obs receives the slo_* gauges (may be nil for a silent engine).
	Obs *obs.Registry
	// Clock drives sample timestamps; nil means real time. Simulated
	// deployments pass the same clock.Sim as the rest of the stack so
	// burn windows track simulated time deterministically.
	Clock clock.Clock
	// Windows overrides the alert pairs; nil means DefaultWindows.
	Windows []WindowPair
	// MaxSamples bounds each objective's snapshot history (default 16384).
	// When exceeded, the older half of the history is thinned 2:1, so
	// recent windows stay precise while long windows coarsen gracefully.
	MaxSamples int
}

// DefaultBudgetWindow is the accounting window when an Objective leaves
// Window zero: the paper-style 30-day error budget.
const DefaultBudgetWindow = 30 * 24 * time.Hour

type snapshot struct {
	t           time.Time
	good, total float64
}

type objState struct {
	obj     Objective
	samples []snapshot

	burn       map[string]float64 // window label -> burn rate
	alerts     map[string]bool    // severity -> active
	budgetLeft float64

	burnGauges   map[string]*obs.Gauge
	alertGauges  map[string]*obs.Gauge
	budgetGauge  *obs.Gauge
	windowLabels []string
}

// Engine evaluates objectives. Create with New, register objectives with
// Add, then either call Evaluate on your own cadence (simulations) or
// Start a ticker goroutine (daemons).
type Engine struct {
	clk        clock.Clock
	reg        *obs.Registry
	windows    []WindowPair
	maxSamples int

	mu   sync.Mutex
	objs []*objState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds an engine.
func New(cfg Config) *Engine {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	wins := cfg.Windows
	if wins == nil {
		wins = DefaultWindows()
	}
	maxSamples := cfg.MaxSamples
	if maxSamples <= 0 {
		maxSamples = 16384
	}
	return &Engine{clk: clk, reg: cfg.Obs, windows: wins, maxSamples: maxSamples}
}

// windowLabel renders a duration the way operators write it (5m, 1h, 3d).
func windowLabel(d time.Duration) string {
	switch {
	case d >= 24*time.Hour && d%(24*time.Hour) == 0:
		return fmt.Sprintf("%dd", d/(24*time.Hour))
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return d.String()
	}
}

// Add registers an objective. The first sample is taken immediately so
// burn rates are defined from the first later Evaluate.
func (e *Engine) Add(obj Objective) error {
	if e == nil {
		return fmt.Errorf("slo: nil engine")
	}
	if obj.Name == "" || obj.Source == nil {
		return fmt.Errorf("slo: objective needs Name and Source")
	}
	if obj.Target <= 0 || obj.Target >= 1 {
		return fmt.Errorf("slo: objective %s target %v out of (0,1)", obj.Name, obj.Target)
	}
	if obj.Window <= 0 {
		obj.Window = DefaultBudgetWindow
	}
	st := &objState{
		obj:         obj,
		burn:        make(map[string]float64),
		alerts:      make(map[string]bool),
		budgetLeft:  1,
		burnGauges:  make(map[string]*obs.Gauge),
		alertGauges: make(map[string]*obs.Gauge),
		budgetGauge: e.reg.Gauge("slo_budget_remaining", "slo", obj.Name),
	}
	seen := map[string]struct{}{}
	for _, wp := range e.windows {
		for _, d := range []time.Duration{wp.Short, wp.Long} {
			lbl := windowLabel(d)
			if _, dup := seen[lbl]; dup {
				continue
			}
			seen[lbl] = struct{}{}
			st.windowLabels = append(st.windowLabels, lbl)
			st.burnGauges[lbl] = e.reg.Gauge("slo_burn_rate", "slo", obj.Name, "window", lbl)
		}
		st.alertGauges[wp.Severity] = e.reg.Gauge("slo_alert_active", "slo", obj.Name, "severity", wp.Severity)
	}
	st.budgetGauge.Set(1)
	good, total := obj.Source.Counts()
	st.samples = append(st.samples, snapshot{t: e.clk.Now(), good: good, total: total})
	e.mu.Lock()
	for _, existing := range e.objs {
		if existing.obj.Name == obj.Name {
			e.mu.Unlock()
			return fmt.Errorf("slo: duplicate objective %q", obj.Name)
		}
	}
	e.objs = append(e.objs, st)
	e.mu.Unlock()
	return nil
}

// Evaluate snapshots every source and recomputes burn rates, budgets, and
// alert states. Nil-safe. Simulations call it after advancing the clock;
// Start calls it on a ticker.
func (e *Engine) Evaluate() {
	if e == nil {
		return
	}
	now := e.clk.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.objs {
		good, total := st.obj.Source.Counts()
		st.samples = append(st.samples, snapshot{t: now, good: good, total: total})
		if len(st.samples) > e.maxSamples {
			st.samples = thin(st.samples)
		}
		cur := st.samples[len(st.samples)-1]
		budget := 1 - st.obj.Target

		for _, lbl := range st.windowLabels {
			st.burn[lbl] = 0
		}
		for _, wp := range e.windows {
			shortLbl, longLbl := windowLabel(wp.Short), windowLabel(wp.Long)
			shortBurn := burnRate(st.samples, cur, now.Add(-wp.Short), budget)
			longBurn := burnRate(st.samples, cur, now.Add(-wp.Long), budget)
			st.burn[shortLbl] = shortBurn
			st.burn[longLbl] = longBurn
			active := shortBurn > wp.Threshold && longBurn > wp.Threshold
			st.alerts[wp.Severity] = active
			v := 0.0
			if active {
				v = 1
			}
			st.alertGauges[wp.Severity].Set(v)
		}
		for lbl, b := range st.burn {
			st.burnGauges[lbl].Set(b)
		}

		// Budget remaining over min(Window, retained history): errors spent
		// vs. errors allowed at the objective target.
		base := sampleAt(st.samples, now.Add(-st.obj.Window))
		dTotal := cur.total - base.total
		dErr := (cur.total - cur.good) - (base.total - base.good)
		st.budgetLeft = 1.0
		if allowed := dTotal * budget; allowed > 0 {
			st.budgetLeft = 1 - dErr/allowed
		}
		st.budgetGauge.Set(st.budgetLeft)
	}
}

// burnRate computes the burn over [from, now]: the window's error rate
// divided by the objective's error budget. An empty window burns 0.
func burnRate(samples []snapshot, cur snapshot, from time.Time, budget float64) float64 {
	base := sampleAt(samples, from)
	dTotal := cur.total - base.total
	if dTotal <= 0 || budget <= 0 {
		return 0
	}
	dErr := (cur.total - cur.good) - (base.total - base.good)
	if dErr < 0 {
		dErr = 0
	}
	return (dErr / dTotal) / budget
}

// sampleAt returns the latest sample taken at or before t, or the oldest
// retained sample when the history does not reach back that far.
func sampleAt(samples []snapshot, t time.Time) snapshot {
	// samples are in ascending time order; binary search the boundary.
	i := sort.Search(len(samples), func(i int) bool { return samples[i].t.After(t) })
	if i == 0 {
		return samples[0]
	}
	return samples[i-1]
}

// thin drops every second sample from the older half of the history.
func thin(samples []snapshot) []snapshot {
	half := len(samples) / 2
	out := samples[:0]
	for i, s := range samples {
		if i < half && i%2 == 1 {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Start launches the evaluation ticker (interval <= 0 means 30s) and
// returns immediately; Stop shuts it down synchronously.
func (e *Engine) Start(interval time.Duration) {
	if e == nil || e.stop != nil {
		return
	}
	if interval <= 0 {
		interval = 30 * time.Second
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.Evaluate()
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop halts the ticker goroutine, waiting for it to exit. Safe when
// Start was never called, and idempotent.
func (e *Engine) Stop() {
	if e == nil || e.stop == nil {
		return
	}
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

// Health implements obs.HealthCheck: a page-severity burn on any
// objective degrades /healthz. Nil-safe.
func (e *Engine) Health() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var firing []string
	for _, st := range e.objs {
		if st.alerts["page"] {
			firing = append(firing, fmt.Sprintf("%s (budget %.1f%% left)", st.obj.Name, 100*st.budgetLeft))
		}
	}
	if len(firing) == 0 {
		return nil
	}
	sort.Strings(firing)
	return fmt.Errorf("slo: fast burn on %s", strings.Join(firing, ", "))
}

// WindowStatus is one window's burn in a status report.
type WindowStatus struct {
	Window string  `json:"window"`
	Burn   float64 `json:"burn"`
}

// AlertStatus is one alert pair's state.
type AlertStatus struct {
	Severity string `json:"severity"`
	Active   bool   `json:"active"`
}

// ObjectiveStatus is one objective's full state for /debug/slo.
type ObjectiveStatus struct {
	Name            string         `json:"name"`
	Description     string         `json:"description,omitempty"`
	Target          float64        `json:"target"`
	Window          string         `json:"window"`
	BudgetRemaining float64        `json:"budget_remaining"`
	Burn            []WindowStatus `json:"burn"`
	Alerts          []AlertStatus  `json:"alerts"`
	Samples         int            `json:"samples"`
}

// Status reports every objective's current state, sorted by name.
func (e *Engine) Status() []ObjectiveStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(e.objs))
	for _, st := range e.objs {
		os := ObjectiveStatus{
			Name:            st.obj.Name,
			Description:     st.obj.Description,
			Target:          st.obj.Target,
			Window:          windowLabel(st.obj.Window),
			BudgetRemaining: st.budgetLeft,
			Samples:         len(st.samples),
		}
		for _, lbl := range st.windowLabels {
			os.Burn = append(os.Burn, WindowStatus{Window: lbl, Burn: st.burn[lbl]})
		}
		sevs := make([]string, 0, len(st.alerts))
		for sev := range st.alerts {
			sevs = append(sevs, sev)
		}
		sort.Strings(sevs)
		for _, sev := range sevs {
			os.Alerts = append(os.Alerts, AlertStatus{Severity: sev, Active: st.alerts[sev]})
		}
		out = append(out, os)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
