package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Log sampling: chaos tests and login storms can emit the same log line
// thousands of times a second; a rate-limited logger keeps the first
// occurrences (the informative ones) and counts the rest in
// log_events_suppressed_total instead of flooding stderr.

// sampler is a per-key token bucket shared by a logger and all its With
// derivatives. Keys are the log message strings — the natural "event kind"
// identity in a key=value logger. The key map is bounded; once maxKeys
// distinct messages are tracked, further new messages share one overflow
// bucket so a high-cardinality attacker cannot grow memory.
type sampler struct {
	limit float64       // events allowed per period, per key
	per   time.Duration // refill period
	max   int           // key-map bound

	suppressed *Counter     // log_events_suppressed_total (nil without a registry)
	dropped    atomic.Int64 // local mirror so Suppressed works registry-less

	mu       sync.Mutex
	buckets  map[string]*tokenBucket
	overflow tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

const samplerMaxKeys = 4096

// RateLimit returns a derived logger that allows at most limit events per
// period for each distinct message, dropping the excess and counting every
// drop in reg's log_events_suppressed_total counter. The limiter is shared
// with further With-derived loggers. Nil-safe; limit <= 0 disables
// limiting.
func (l *Logger) RateLimit(limit int, period time.Duration, reg *Registry) *Logger {
	if l == nil || limit <= 0 || period <= 0 {
		return l
	}
	d := *l
	d.sample = &sampler{
		limit:      float64(limit),
		per:        period,
		max:        samplerMaxKeys,
		suppressed: reg.Counter("log_events_suppressed_total"),
		buckets:    make(map[string]*tokenBucket),
	}
	return &d
}

// allow reports whether an event with the given key may be logged now,
// counting the suppression when it may not.
func (s *sampler) allow(key string, now time.Time) bool {
	s.mu.Lock()
	b, ok := s.buckets[key]
	if !ok {
		if len(s.buckets) < s.max {
			b = &tokenBucket{tokens: s.limit, last: now}
			s.buckets[key] = b
		} else {
			b = &s.overflow
			if b.last.IsZero() {
				b.tokens, b.last = s.limit, now
			}
		}
	}
	// Refill proportionally to elapsed time, capped at one period's worth.
	if el := now.Sub(b.last); el > 0 {
		b.tokens += s.limit * float64(el) / float64(s.per)
		if b.tokens > s.limit {
			b.tokens = s.limit
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	s.suppressed.Inc()
	s.dropped.Add(1)
	return false
}

// Suppressed is the total number of suppressed events (0 without a
// limiter). Nil-safe.
func (l *Logger) Suppressed() int64 {
	if l == nil || l.sample == nil {
		return 0
	}
	return l.sample.dropped.Load()
}
