package obs

import (
	"fmt"
	"sync"
	"testing"

	"openmfa/internal/leakcheck"
)

// TestTraceTruncationVisibleAfterEviction is the regression for silent
// partial trees: a trace whose early spans were evicted mid-trace must
// come back flagged as truncated, and a trace fully resident must not.
func TestTraceTruncationVisibleAfterEviction(t *testing.T) {
	s := NewSpanStore(4)

	// Record two spans of trace "aaaa", then flood the ring with other
	// traffic so exactly the first span of "aaaa" is evicted.
	for i := 0; i < 2; i++ {
		sp := s.Start("aaaa", fmt.Sprintf("leg%d", i))
		sp.End()
	}
	for i := 0; i < 3; i++ {
		sp := s.Start(fmt.Sprintf("bbb%d", i), "filler")
		sp.End()
	}

	spans, truncated := s.Lookup("aaaa")
	if len(spans) != 1 {
		t.Fatalf("Lookup(aaaa) = %d spans, want 1 survivor", len(spans))
	}
	if !truncated {
		t.Fatal("Lookup(aaaa) reported a complete tree after mid-trace eviction")
	}

	// The filler traces are fully resident: not truncated.
	for i := 1; i < 3; i++ {
		id := fmt.Sprintf("bbb%d", i)
		spans, truncated := s.Lookup(id)
		if len(spans) != 1 || truncated {
			t.Errorf("Lookup(%s) = %d spans truncated=%v, want 1, false", id, len(spans), truncated)
		}
	}

	// Once the last span of a trace leaves the ring the bookkeeping is
	// dropped with it: the maps stay bounded by ring occupancy.
	for i := 0; i < 8; i++ {
		sp := s.Start(fmt.Sprintf("ccc%d", i), "filler")
		sp.End()
	}
	s.mu.Lock()
	live, trunc := len(s.live), len(s.truncated)
	s.mu.Unlock()
	if live > 4 {
		t.Errorf("live-trace map holds %d entries, ring capacity is 4", live)
	}
	if trunc > live {
		t.Errorf("truncated map (%d) outgrew live map (%d)", trunc, live)
	}
	if spans, truncated := s.Lookup("aaaa"); len(spans) != 0 || truncated {
		t.Errorf("fully evicted trace: Lookup = %d spans truncated=%v, want empty, false", len(spans), truncated)
	}
}

// TestSpanStoreConcurrentEviction races Start/StartChild/SetAttr/End/
// Trace/Lookup against constant ring eviction under -race: a tiny ring
// guarantees every recording evicts, which is exactly where the
// truncation bookkeeping mutates shared maps.
func TestSpanStoreConcurrentEviction(t *testing.T) {
	leakcheck.Check(t)
	s := NewSpanStore(8)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				trace := fmt.Sprintf("%04x%04x00000000", w, i%16)
				root := s.Start(trace, "root")
				root.SetAttr("w", fmt.Sprint(w))
				child := root.StartChild("child")
				child.End()
				root.End()
				s.Trace(trace)
				if _, truncated := s.Lookup(trace); truncated {
					_ = truncated // either answer is valid under eviction
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != 8 {
		t.Fatalf("ring holds %d spans, want full capacity 8", got)
	}
	if s.Evicted() == 0 {
		t.Fatal("expected evictions under a full ring")
	}
	s.mu.Lock()
	live := 0
	for _, n := range s.live {
		live += n
	}
	s.mu.Unlock()
	if live != 8 {
		t.Fatalf("live-span accounting drifted: sum=%d, want 8", live)
	}
}
