package obs

import (
	"strings"
	"testing"
	"time"

	"openmfa/internal/leakcheck"
)

func TestRuntimeSamplerExportsGauges(t *testing.T) {
	leakcheck.Check(t)
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, time.Hour) // ticker idle; initial sample counts
	defer s.Stop()

	if v := reg.Gauge("go_goroutines").Value(); v < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", v)
	}
	if v := reg.Gauge("go_heap_inuse_bytes").Value(); v <= 0 {
		t.Errorf("go_heap_inuse_bytes = %v, want > 0", v)
	}
	if v := reg.Gauge("go_gomaxprocs").Value(); v < 1 {
		t.Errorf("go_gomaxprocs = %v, want >= 1", v)
	}
	if v := reg.Gauge("go_gc_pause_p99_seconds").Value(); v < 0 {
		t.Errorf("go_gc_pause_p99_seconds = %v, want >= 0", v)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, name := range []string{
		"go_goroutines", "go_heap_inuse_bytes", "go_gc_pause_p99_seconds", "go_gomaxprocs",
	} {
		if !strings.Contains(sb.String(), "# TYPE "+name+" gauge") {
			t.Errorf("exposition missing gauge %s", name)
		}
	}
}

func TestRuntimeSamplerStopIsIdempotentAndLeakFree(t *testing.T) {
	leakcheck.Check(t)
	s := StartRuntimeSampler(NewRegistry(), time.Millisecond)
	time.Sleep(5 * time.Millisecond) // let the ticker fire at least once
	s.Stop()
	s.Stop()
	var nilSampler *RuntimeSampler
	nilSampler.Stop()
	nilSampler.Sample()
	StartRuntimeSampler(nil, time.Millisecond).Stop() // nil registry: no goroutine
}

func TestHistogramCountBelow(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x_seconds", []float64{0.1, 0.5, 1}, "k", "v")
	for _, v := range []float64{0.05, 0.09, 0.3, 0.7, 2.0} {
		h.Observe(v)
	}
	cases := []struct {
		bound float64
		want  uint64
	}{
		{0.05, 0}, // below the first bucket bound: nothing credited
		{0.1, 2},
		{0.4, 2}, // between bounds quantises down
		{0.5, 3},
		{1, 4},
		{10, 4}, // +Inf observations are never "good"
	}
	for _, c := range cases {
		if got := h.CountBelow(c.bound); got != c.want {
			t.Errorf("CountBelow(%v) = %d, want %d", c.bound, got, c.want)
		}
	}
	var nilH *Histogram
	if nilH.CountBelow(1) != 0 {
		t.Error("nil histogram CountBelow != 0")
	}
}
