package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Trace IDs follow one authentication across layers: sshd assigns one per
// connection, the PAM stack tags every module decision with it, the token
// module carries it to the RADIUS server inside a Proxy-State attribute,
// and otpd reads it back out of the request context — so a single grep
// over the logs reconstructs the full path of any login.

type traceCtxKey struct{}

// NewTraceID returns a fresh 16-hex-character trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The kernel CSPRNG is load-bearing elsewhere (key material);
		// losing a trace ID is not worth crashing an auth path over.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithTrace attaches a trace ID to ctx.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, id)
}

// TraceID extracts the trace ID from ctx ("" if absent).
func TraceID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// ValidTraceID reports whether s looks like a trace ID (8–32 lowercase hex
// characters). RADIUS Proxy-State attributes are shared with proxy-hop
// bookkeeping, so receivers use this to tell trace IDs from opaque proxy
// state.
func ValidTraceID(s string) bool {
	if len(s) < 8 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
