package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"
)

// TestMountConventionFamilies covers the Prometheus-convention
// satellite: Mount must export process_start_time_seconds and a
// constant build_info gauge, and the exposition must pass lint with
// ConventionFamilies required.
func TestMountConventionFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("auth_total", "result", "accept").Inc()
	mux := http.NewServeMux()
	Mount(mux, reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	text := string(page)

	if errs := LintExposition(strings.NewReader(text), ConventionFamilies()...); len(errs) != 0 {
		t.Fatalf("exposition fails lint with required conventions: %v", errs)
	}

	start := reg.Gauge("process_start_time_seconds").Value()
	if start <= 0 || time.Unix(int64(start), 0).After(time.Now()) {
		t.Errorf("process_start_time_seconds = %v, want a past unix time", start)
	}
	if !strings.Contains(text, "process_start_time_seconds") {
		t.Error("process_start_time_seconds absent from /metrics")
	}
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	if got := reg.Gauge("build_info", "goversion", runtime.Version(), "version", version).Value(); got != 1 {
		t.Errorf("build_info = %v, want constant 1", got)
	}
	if !strings.Contains(text, `build_info{goversion="`+runtime.Version()+`"`) {
		t.Error("build_info missing goversion label on /metrics")
	}
}

// TestLintRequiredFamilies: a clean exposition that lacks a required
// family must fail lint with exactly that complaint.
func TestLintRequiredFamilies(t *testing.T) {
	exp := "# TYPE auth_total counter\nauth_total 1\n"
	if errs := LintExposition(strings.NewReader(exp)); len(errs) != 0 {
		t.Fatalf("baseline exposition unexpectedly dirty: %v", errs)
	}
	errs := LintExposition(strings.NewReader(exp), "process_start_time_seconds", "auth_total")
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "process_start_time_seconds") {
		t.Fatalf("required-family lint = %v, want one missing-family error", errs)
	}
}
