package obs

import (
	"strings"
	"testing"
)

func lintString(s string) []error { return LintExposition(strings.NewReader(s)) }

func TestLintCleanExpositionFromRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Inc()
	reg.Counter("b_total", "result", "ok").Add(3)
	reg.Counter("b_total", "result", `we"ird\v`).Inc()
	reg.Gauge("c_ratio").Set(0.25)
	h := reg.Histogram("d_seconds", nil, "class", "x")
	h.Observe(0.01)
	h.Observe(99)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if errs := lintString(sb.String()); len(errs) != 0 {
		t.Fatalf("registry exposition failed its own lint: %v", errs)
	}
}

func TestLintCatchesDefects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"duplicate family",
			"# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n",
			"duplicate TYPE"},
		{"duplicate series",
			"# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n",
			"duplicate series"},
		{"no TYPE",
			"x 1\n",
			"no preceding TYPE"},
		{"interleaved family",
			"# TYPE x counter\nx 1\n# TYPE y counter\ny 1\nx 2\n",
			"interleaved"},
		{"bad value",
			"# TYPE x counter\nx banana\n",
			"unparseable value"},
		{"negative counter",
			"# TYPE x counter\nx -4\n",
			"negative value"},
		{"bad name",
			"# TYPE 0x counter\n0x 1\n",
			"invalid metric name"},
		{"unterminated labels",
			"# TYPE x counter\nx{a=\"1\" 1\n",
			"unterminated"},
		{"unquoted label",
			"# TYPE x counter\nx{a=1} 1\n",
			"not quoted"},
		{"decreasing buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_sum 1\nh_count 5\n",
			"decreased"},
		{"malformed comment",
			"# TYPE x\nx 1\n",
			"malformed comment"},
	}
	for _, c := range cases {
		errs := lintString(c.in)
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: lint errors %v do not mention %q", c.name, errs, c.want)
		}
	}
}

func TestLintAcceptsHistogramSuffixFamilies(t *testing.T) {
	in := "# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.5\nh_count 2\n" +
		"# TYPE h2 counter\nh2 1\n"
	if errs := lintString(in); len(errs) != 0 {
		t.Fatalf("valid histogram block flagged: %v", errs)
	}
}
