package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"time"

	"openmfa/internal/seglog"
)

// Incident is one diagnostic bundle: the frozen profile ring (with a
// fresh capture appended, so every bundle ends in a CPU delta profile
// taken at fire time), a goroutine dump, a metrics snapshot, runtime
// stats, and recent flight-recorder trace IDs.
type Incident struct {
	ID      string    `json:"id"`
	Time    time.Time `json:"time"`
	Trigger string    `json:"trigger"`
	Detail  string    `json:"detail,omitempty"`
	// TraceIDs are recent flight-recorder traces from the burn window.
	TraceIDs []string `json:"trace_ids,omitempty"`
	// Captures is the frozen ring, oldest first; the last entry was
	// taken when the trigger fired.
	Captures []*Capture `json:"captures"`
	// Goroutines is a debug=2 text dump, possibly truncated.
	Goroutines          string `json:"goroutines"`
	GoroutinesTruncated bool   `json:"goroutines_truncated,omitempty"`
	// Metrics is the registry's Prometheus exposition at fire time.
	Metrics string       `json:"metrics"`
	Runtime RuntimeStats `json:"runtime"`
}

// Summary is an incident index entry.
type Summary struct {
	ID       string    `json:"id"`
	Time     time.Time `json:"time"`
	Trigger  string    `json:"trigger"`
	Detail   string    `json:"detail,omitempty"`
	Captures int       `json:"captures"`
	TraceIDs int       `json:"trace_ids"`
	Bytes    int       `json:"bytes"`
}

func summarize(inc *Incident, bytes int) Summary {
	return Summary{
		ID:       inc.ID,
		Time:     inc.Time,
		Trigger:  inc.Trigger,
		Detail:   inc.Detail,
		Captures: len(inc.Captures),
		TraceIDs: len(inc.TraceIDs),
		Bytes:    bytes,
	}
}

type trigger struct {
	name  string
	check func() (active bool, detail string)
}

// AddTrigger registers a named condition. Evaluate polls triggers in
// registration order and fires an incident for the first active one.
func (e *Engine) AddTrigger(name string, check func() (active bool, detail string)) {
	if e == nil || check == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.triggers = append(e.triggers, trigger{name: name, check: check})
}

// Evaluate polls the registered triggers and, subject to debounce,
// captures at most one incident for the first active one. The daemons'
// sampler loop calls this every period; tests drive it directly.
func (e *Engine) Evaluate() {
	if e == nil {
		return
	}
	e.mu.Lock()
	trigs := append([]trigger(nil), e.triggers...)
	e.mu.Unlock()
	for _, t := range trigs {
		active, detail := t.check()
		if !active {
			continue
		}
		e.fire(t.name, detail, true)
		return
	}
}

// Fire captures an incident immediately, bypassing debounce (but still
// arming it, so a subsequent trigger fire is suppressed). This is the
// manual /debug/prof/capture path.
func (e *Engine) Fire(triggerName, detail string) (*Incident, error) {
	if e == nil {
		return nil, fmt.Errorf("prof: no engine")
	}
	return e.fire(triggerName, detail, false)
}

// fire is the single incident path. Debounce is checked and armed
// before the capture so concurrent fires collapse to one bundle.
func (e *Engine) fire(triggerName, detail string, debounced bool) (*Incident, error) {
	now := e.clk.Now()
	e.mu.Lock()
	if debounced && e.haveFired && now.Sub(e.lastFire) < e.cfg.Debounce {
		e.mu.Unlock()
		e.suppressed.Inc()
		return nil, nil
	}
	e.haveFired, e.lastFire = true, now
	e.mu.Unlock()

	// Fresh capture first — it sleeps through the CPU window, so it must
	// run outside the engine lock — guaranteeing every bundle ends with
	// a CPU delta profile from fire time.
	e.CaptureOnce()

	var gbuf bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		p.WriteTo(&gbuf, 2)
	}
	var mbuf bytes.Buffer
	if e.cfg.Obs != nil {
		e.cfg.Obs.WritePrometheus(&mbuf)
	}
	var traces []string
	if e.cfg.TraceIDs != nil {
		traces = e.cfg.TraceIDs(16)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	inc := &Incident{
		ID:       fmt.Sprintf("inc-%06d", e.store.nextSeq()),
		Time:     now,
		Trigger:  triggerName,
		Detail:   detail,
		TraceIDs: traces,
		Captures: append([]*Capture(nil), e.ring...),
		Metrics:  mbuf.String(),
		Runtime:  readRuntimeStats(),
	}
	dump := gbuf.Bytes()
	if len(dump) > e.cfg.MaxDumpBytes {
		dump = dump[:e.cfg.MaxDumpBytes]
		inc.GoroutinesTruncated = true
	}
	inc.Goroutines = string(dump)

	if err := e.store.put(inc); err != nil {
		return nil, fmt.Errorf("prof: persist incident: %w", err)
	}
	e.cfg.Obs.Counter("prof_incidents_total", "trigger", triggerName).Inc()
	e.incidentsG.Set(float64(e.store.len()))
	return inc, nil
}

// List returns incident summaries, newest first.
func (e *Engine) List() []Summary {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Summary, len(e.store.order))
	for i, s := range e.store.order {
		out[len(out)-1-i] = s.sum
	}
	return out
}

// Get fetches one full incident by ID (nil when unknown). Disk-backed
// incidents are read back through the checksummed frame.
func (e *Engine) Get(id string) (*Incident, error) {
	if e == nil {
		return nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.get(id)
}

// Dir reports the incident directory ("" in memory mode).
func (e *Engine) Dir() string {
	if e == nil {
		return ""
	}
	return e.cfg.Dir
}

// memCap bounds memory-mode incident retention.
const memCap = 64

// stored is one indexed incident: a disk ref or a retained in-memory
// bundle, never both.
type stored struct {
	sum Summary
	ref seglog.Ref
	mem *Incident
}

// incidentStore is the engine's index over persisted incidents; methods
// are called with Engine.mu held.
type incidentStore struct {
	log   *seglog.Log // nil in memory mode
	seq   uint64      // last issued incident sequence number
	order []*stored   // persistence order
	byID  map[string]*stored
}

func (e *Engine) openStore() error {
	s := &e.store
	s.byID = make(map[string]*stored)
	if e.cfg.Dir == "" {
		return nil
	}
	log, torn, err := seglog.Open(seglog.Options{
		Dir:            e.cfg.Dir,
		Prefix:         SegPrefix,
		MaxSegmentSize: e.cfg.MaxSegmentSize,
		MaxSegments:    e.cfg.MaxSegments,
	}, func(payload []byte, ref seglog.Ref) error {
		var inc Incident
		if err := json.Unmarshal(payload, &inc); err != nil {
			// A committed frame that isn't an incident is foreign data;
			// skip it rather than refuse to start.
			return nil
		}
		st := &stored{sum: summarize(&inc, len(payload)), ref: ref}
		s.order = append(s.order, st)
		s.byID[inc.ID] = st
		if n, ok := incSeq(inc.ID); ok && n > s.seq {
			s.seq = n
		}
		e.recovered.Inc()
		return nil
	})
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	s.log = log
	e.tornC.Add(int64(torn))
	return nil
}

// incSeq parses the numeric part of an "inc-NNNNNN" ID.
func incSeq(id string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(id, "inc-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

func (s *incidentStore) nextSeq() uint64 {
	s.seq++
	return s.seq
}

func (s *incidentStore) len() int { return len(s.order) }

func (s *incidentStore) put(inc *Incident) error {
	if s.log == nil {
		st := &stored{sum: summarize(inc, 0), mem: inc}
		s.order = append(s.order, st)
		s.byID[inc.ID] = st
		if len(s.order) > memCap {
			drop := s.order[0]
			s.order = s.order[1:]
			delete(s.byID, drop.sum.ID)
		}
		return nil
	}
	payload, err := json.Marshal(inc)
	if err != nil {
		return err
	}
	res, err := s.log.Append(payload)
	if err != nil {
		return err
	}
	for _, old := range res.Evicted {
		kept := s.order[:0]
		for _, st := range s.order {
			if st.ref.Seg == old {
				delete(s.byID, st.sum.ID)
				continue
			}
			kept = append(kept, st)
		}
		s.order = kept
	}
	st := &stored{sum: summarize(inc, len(payload)), ref: res.Ref}
	s.order = append(s.order, st)
	s.byID[inc.ID] = st
	return nil
}

func (s *incidentStore) get(id string) (*Incident, error) {
	st, ok := s.byID[id]
	if !ok {
		return nil, nil
	}
	if st.mem != nil {
		return st.mem, nil
	}
	payload, err := s.log.Read(st.ref)
	if err != nil {
		return nil, err
	}
	var inc Incident
	if err := json.Unmarshal(payload, &inc); err != nil {
		return nil, err
	}
	return &inc, nil
}

func (s *incidentStore) close() {
	if s.log != nil {
		s.log.Close()
	}
}

// ReadDir reads incident bundles offline from a directory of
// incident-NNNNNN.seg segments or from a single .seg file, oldest
// first. Read-only: torn tails are skipped, never truncated, so it is
// safe to point at a live daemon's directory or at segments copied off
// a crashed host.
func ReadDir(path string) ([]*Incident, error) {
	var out []*Incident
	collect := func(payload []byte, _ seglog.Ref) error {
		var inc Incident
		if err := json.Unmarshal(payload, &inc); err != nil {
			return nil
		}
		out = append(out, &inc)
		return nil
	}
	dir, seq, single, err := splitSegPath(path)
	if err != nil {
		return nil, err
	}
	if single {
		if _, err := seglog.ScanSegment(dir, SegPrefix, seq, collect); err != nil {
			return nil, err
		}
	} else if err := seglog.ScanDir(dir, SegPrefix, collect); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}

// splitSegPath classifies an offline-reader path: a directory to scan
// whole, or one incident-NNNNNN.seg file.
func splitSegPath(path string) (dir string, seq uint64, single bool, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", 0, false, fmt.Errorf("prof: %w", err)
	}
	if fi.IsDir() {
		return path, 0, false, nil
	}
	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	seq, ok := seglog.SegSeq(SegPrefix, name)
	if !ok {
		return "", 0, false, fmt.Errorf("prof: %s is not a %sNNNNNN%s segment", path, SegPrefix, seglog.SegSuffix)
	}
	return dir, seq, true, nil
}
