// Package prof is the daemons' black box: a continuous profiler plus an
// incident engine that explains *why* an SLO burned.
//
// The continuous half is a background sampler that periodically captures
// a short delta CPU profile and heap/goroutine/mutex/block snapshots
// into a bounded in-memory ring. The sampler's overhead budget is
// structural: the CPU profile window is clamped to at most a tenth of
// the sampling period, so profiling is active ≤10% of wall time at the
// runtime's default 100 Hz sample rate (and the shipped defaults —
// 250ms every 30s — keep it under 1%). TestProfOverheadGate in
// internal/otpd holds the measured cost on otpd.Check within 5%.
//
// The incident half subscribes triggers to existing signals (SLO
// fast-burn, authwatch alerts, latency spikes, sticky store errors, a
// manual endpoint). When one fires, the profile ring is frozen together
// with a fresh capture, a goroutine dump, a metrics snapshot, runtime
// stats, and recent flight-recorder trace IDs into an incident bundle
// persisted crash-safe through internal/seglog — the same length-prefix
// + CRC + commit-marker framing the flight recorder uses, with rotated
// size-capped segments and torn-tail truncation on recovery. Trigger
// debounce guarantees a flapping alert cannot fill the disk.
//
// Bundles are served over /debug/prof (see Mount) and readable offline
// with loganalyze -format incident (see ReadDir), which never mutates
// the directory it scans.
package prof

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/obs"
)

// SegPrefix names incident segment files: incident-NNNNNN.seg.
const SegPrefix = "incident-"

// snapshotKinds are the runtime/pprof profiles captured on every sample
// in addition to the delta CPU profile.
var snapshotKinds = []string{"heap", "goroutine", "mutex", "block"}

// Config parameterises New. Zero values get conservative defaults; only
// Dir changes the storage mode (empty keeps incidents in memory only).
type Config struct {
	// Dir persists incident bundles as rotated segments. Empty means
	// memory-only: incidents survive until process exit, not across it.
	Dir string
	// Obs receives the prof_* metrics (optional).
	Obs *obs.Registry
	// Clock stamps captures and incidents and drives debounce. The CPU
	// profile window always uses real time (the runtime's sampler does).
	// Defaults to clock.Real.
	Clock clock.Clock
	// Period is the continuous sampling interval (default 30s).
	Period time.Duration
	// CPUDuration is the delta CPU profile window per capture (default
	// 250ms). Clamped to Period/10 so the sampler cannot spend more than
	// a tenth of wall time profiling — the structural overhead budget.
	CPUDuration time.Duration
	// Retention bounds the in-memory capture ring (default 8).
	Retention int
	// Debounce suppresses trigger-fired incidents arriving within this
	// window of the previous one (default 10m). Manual fires bypass the
	// check but still arm it.
	Debounce time.Duration
	// MaxSegmentSize rotates incident segments (default 64 MiB).
	MaxSegmentSize int64
	// MaxSegments bounds retained incident segments (default 4).
	MaxSegments int
	// MaxDumpBytes caps the goroutine dump embedded in a bundle
	// (default 1 MiB); longer dumps are truncated and flagged.
	MaxDumpBytes int
	// TraceIDs, when set, is asked for up to n recent flight-recorder
	// trace IDs to embed in each incident (wire to flightrec TraceIDs).
	TraceIDs func(n int) []string
	// MutexFraction, when > 0, is passed to
	// runtime.SetMutexProfileFraction so mutex snapshots have data.
	MutexFraction int
	// BlockRate, when > 0, is passed to runtime.SetBlockProfileRate.
	BlockRate int
}

// Capture is one continuous-profiler sample: a delta CPU profile plus
// point-in-time snapshots, all raw pprof protobuf (gzip) bytes.
type Capture struct {
	Time time.Time `json:"time"`
	// CPUSeconds is the CPU profile window length (0 when the CPU
	// profiler was unavailable, e.g. another profile was running).
	CPUSeconds float64 `json:"cpu_seconds,omitempty"`
	// Profiles maps kind ("cpu", "heap", "goroutine", "mutex", "block")
	// to raw profile bytes.
	Profiles map[string][]byte `json:"profiles"`
	// Bytes totals the profile payloads.
	Bytes int `json:"bytes"`
	// Err notes a partial capture (some kinds may still be present).
	Err string `json:"err,omitempty"`
}

// RuntimeStats is the point-in-time runtime block embedded in a bundle.
type RuntimeStats struct {
	GoVersion    string `json:"go_version"`
	NumCPU       int    `json:"num_cpu"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumGoroutine int    `json:"num_goroutine"`
	HeapAlloc    uint64 `json:"heap_alloc"`
	HeapSys      uint64 `json:"heap_sys"`
	HeapObjects  uint64 `json:"heap_objects"`
	NumGC        uint32 `json:"num_gc"`
	PauseTotalNs uint64 `json:"pause_total_ns"`
}

func readRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumGoroutine: runtime.NumGoroutine(),
		HeapAlloc:    ms.HeapAlloc,
		HeapSys:      ms.HeapSys,
		HeapObjects:  ms.HeapObjects,
		NumGC:        ms.NumGC,
		PauseTotalNs: ms.PauseTotalNs,
	}
}

// cpuBusy is process-wide: runtime/pprof allows one CPU profile at a
// time across the whole process (including /debug/pprof/profile), so
// every Engine shares the guard.
var cpuBusy atomic.Bool

// Engine is the continuous profiler + incident engine. Create with New,
// register triggers with AddTrigger, then either Start the background
// sampler (daemons) or drive CaptureOnce/Evaluate manually (tests).
type Engine struct {
	cfg    Config
	clk    clock.Clock
	cpuDur time.Duration

	captures   *obs.Counter
	capErrs    *obs.Counter
	capBytes   *obs.Counter
	capDur     *obs.Histogram
	ringG      *obs.Gauge
	incidentsG *obs.Gauge
	suppressed *obs.Counter
	recovered  *obs.Counter
	tornC      *obs.Counter

	mu        sync.Mutex
	ring      []*Capture
	triggers  []trigger
	lastFire  time.Time
	haveFired bool
	store     incidentStore

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds an engine and, when cfg.Dir is set, recovers previously
// persisted incidents (truncating torn tails left by a crash).
func New(cfg Config) (*Engine, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Period <= 0 {
		cfg.Period = 30 * time.Second
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 250 * time.Millisecond
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 8
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 10 * time.Minute
	}
	if cfg.MaxSegmentSize <= 0 {
		cfg.MaxSegmentSize = 64 << 20
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = 4
	}
	if cfg.MaxDumpBytes <= 0 {
		cfg.MaxDumpBytes = 1 << 20
	}
	e := &Engine{
		cfg:    cfg,
		clk:    cfg.Clock,
		cpuDur: cfg.CPUDuration,

		captures:   cfg.Obs.Counter("prof_captures_total"),
		capErrs:    cfg.Obs.Counter("prof_capture_errors_total"),
		capBytes:   cfg.Obs.Counter("prof_capture_bytes_total"),
		capDur:     cfg.Obs.Histogram("prof_capture_duration_seconds", obs.DefBuckets()),
		ringG:      cfg.Obs.Gauge("prof_ring_captures"),
		incidentsG: cfg.Obs.Gauge("prof_incidents"),
		suppressed: cfg.Obs.Counter("prof_incidents_suppressed_total"),
		recovered:  cfg.Obs.Counter("prof_incidents_recovered_total"),
		tornC:      cfg.Obs.Counter("prof_torn_segments_total"),
	}
	// The overhead budget is structural: never profile CPU for more than
	// a tenth of the sampling period.
	if max := cfg.Period / 10; e.cpuDur > max && max > 0 {
		e.cpuDur = max
	}
	if cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRate)
	}
	if err := e.openStore(); err != nil {
		return nil, err
	}
	e.incidentsG.Set(float64(e.store.len()))
	return e, nil
}

// CaptureOnce takes one continuous-profiler sample and pushes it into
// the ring. The CPU profile window sleeps in real time, outside the
// engine lock. Safe for concurrent use; concurrent CPU profiling is
// resolved by one caller winning the window and the rest capturing
// snapshots only.
func (e *Engine) CaptureOnce() *Capture {
	realStart := time.Now()
	c := &Capture{Time: e.clk.Now(), Profiles: make(map[string][]byte, 1+len(snapshotKinds))}
	if cpuBusy.CompareAndSwap(false, true) {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			// Something outside the guard (e.g. a live /debug/pprof/profile
			// scrape) owns the profiler; degrade to snapshots.
			c.Err = err.Error()
			e.capErrs.Inc()
		} else {
			time.Sleep(e.cpuDur)
			pprof.StopCPUProfile()
			c.Profiles["cpu"] = buf.Bytes()
			c.CPUSeconds = e.cpuDur.Seconds()
		}
		cpuBusy.Store(false)
	} else {
		c.Err = "cpu profiler busy"
		e.capErrs.Inc()
	}
	for _, kind := range snapshotKinds {
		p := pprof.Lookup(kind)
		if p == nil {
			continue
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 0); err != nil {
			c.Err = fmt.Sprintf("%s: %v", kind, err)
			e.capErrs.Inc()
			continue
		}
		c.Profiles[kind] = buf.Bytes()
	}
	for _, b := range c.Profiles {
		c.Bytes += len(b)
	}
	e.captures.Inc()
	e.capBytes.Add(int64(c.Bytes))
	e.capDur.Observe(time.Since(realStart).Seconds())

	e.mu.Lock()
	e.ring = append(e.ring, c)
	if len(e.ring) > e.cfg.Retention {
		e.ring = append(e.ring[:0:0], e.ring[len(e.ring)-e.cfg.Retention:]...)
	}
	e.ringG.Set(float64(len(e.ring)))
	e.mu.Unlock()
	return c
}

// Ring returns a snapshot of the capture ring, oldest first.
func (e *Engine) Ring() []*Capture {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Capture(nil), e.ring...)
}

// Start launches the background sampler: every Period it takes a
// capture and evaluates the registered triggers. Returns immediately;
// Stop shuts it down synchronously. Nil-safe and idempotent.
func (e *Engine) Start() {
	if e == nil || e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.cfg.Period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.CaptureOnce()
				e.Evaluate()
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop halts the sampler (waiting for it to exit) and closes the
// incident log. Further persisted fires fail; List/Get keep working.
// Safe when Start was never called, and idempotent.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	if e.stop != nil {
		e.stopOnce.Do(func() { close(e.stop) })
		<-e.done
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.store.close()
}
