package prof

import (
	"fmt"

	"openmfa/internal/obs"
)

// HealthTrigger adapts an obs.HealthCheck-shaped func into a trigger
// check: active while the check errors, with the error as detail. Wire
// it to slo.Engine.Health (fast burn), authwatch.Watcher.Health (alert
// active), or store.Store.Err (sticky WAL fault).
func HealthTrigger(check func() error) func() (bool, string) {
	return func() (bool, string) {
		if err := check(); err != nil {
			return true, err.Error()
		}
		return false, ""
	}
}

// LatencySpikeTrigger watches a set of cumulative histograms (e.g. one
// per result label of a duration family) and fires when, since the
// previous evaluation, at least minSamples observations arrived and
// more than half of them exceeded threshold seconds. Deltas — not
// lifetime totals — so an old spike cannot keep the trigger active.
// The returned closure is stateful; give each engine its own.
func LatencySpikeTrigger(hists []*obs.Histogram, threshold float64, minSamples uint64) func() (bool, string) {
	var lastTotal, lastFast uint64
	return func() (bool, string) {
		var total, fast uint64
		for _, h := range hists {
			total += h.Count()
			fast += h.CountBelow(threshold)
		}
		dTotal, dFast := total-lastTotal, fast-lastFast
		lastTotal, lastFast = total, fast
		if dTotal < minSamples {
			return false, ""
		}
		if slow := dTotal - dFast; slow*2 > dTotal {
			return true, fmt.Sprintf("latency spike: %d/%d observations over %.3gs since last evaluation", slow, dTotal, threshold)
		}
		return false, ""
	}
}
