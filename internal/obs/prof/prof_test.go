package prof

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/obs"
	"openmfa/internal/seglog"
)

var testT0 = time.Date(2016, 10, 4, 3, 12, 0, 0, time.UTC)

func newTestEngine(t *testing.T, dir string, sim *clock.Sim, reg *obs.Registry) *Engine {
	t.Helper()
	e, err := New(Config{
		Dir:         dir,
		Obs:         reg,
		Clock:       sim,
		Period:      30 * time.Second,
		CPUDuration: 10 * time.Millisecond,
		Retention:   3,
		Debounce:    10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

func TestCaptureRingAndMetrics(t *testing.T) {
	sim := clock.NewSim(testT0)
	reg := obs.NewRegistry()
	e := newTestEngine(t, "", sim, reg)
	for i := 0; i < 5; i++ {
		c := e.CaptureOnce()
		if len(c.Profiles["cpu"]) == 0 {
			t.Fatalf("capture %d: empty CPU profile (err=%q)", i, c.Err)
		}
		if c.Profiles["cpu"][0] != 0x1f || c.Profiles["cpu"][1] != 0x8b {
			t.Fatalf("capture %d: CPU profile is not gzip pprof", i)
		}
		if len(c.Profiles["heap"]) == 0 || len(c.Profiles["goroutine"]) == 0 {
			t.Fatalf("capture %d: missing snapshots: %v", i, c.Err)
		}
		sim.Advance(30 * time.Second)
	}
	ring := e.Ring()
	if len(ring) != 3 {
		t.Fatalf("ring holds %d captures, want retention 3", len(ring))
	}
	if !ring[0].Time.Before(ring[2].Time) {
		t.Error("ring not oldest-first")
	}
	if got := reg.Counter("prof_captures_total").Value(); got != 5 {
		t.Errorf("prof_captures_total = %d, want 5", got)
	}
	if got := reg.Gauge("prof_ring_captures").Value(); got != 3 {
		t.Errorf("prof_ring_captures = %v, want 3", got)
	}
	if reg.Counter("prof_capture_bytes_total").Value() <= 0 {
		t.Error("prof_capture_bytes_total not accounted")
	}
}

func TestTriggerDebounceYieldsOneIncident(t *testing.T) {
	sim := clock.NewSim(testT0)
	reg := obs.NewRegistry()
	e := newTestEngine(t, t.TempDir(), sim, reg)
	burning := true
	e.AddTrigger("slo_fast_burn", func() (bool, string) { return burning, "sshd availability burning" })
	for i := 0; i < 4; i++ {
		e.Evaluate()
		sim.Advance(30 * time.Second)
	}
	if got := len(e.List()); got != 1 {
		t.Fatalf("%d incidents after 4 evaluations in debounce window, want 1", got)
	}
	if got := reg.Counter("prof_incidents_suppressed_total").Value(); got != 3 {
		t.Errorf("suppressed = %d, want 3", got)
	}
	// Past the debounce window with the trigger still active → a second.
	sim.Advance(10 * time.Minute)
	e.Evaluate()
	if got := len(e.List()); got != 2 {
		t.Fatalf("%d incidents after debounce expiry, want 2", got)
	}
	burning = false
	sim.Advance(time.Hour)
	e.Evaluate()
	if got := len(e.List()); got != 2 {
		t.Fatalf("inactive trigger fired: %d incidents", got)
	}
	if got := reg.Counter("prof_incidents_total", "trigger", "slo_fast_burn").Value(); got != 2 {
		t.Errorf("prof_incidents_total{trigger=slo_fast_burn} = %d, want 2", got)
	}
}

func TestIncidentContentsAndManualFire(t *testing.T) {
	sim := clock.NewSim(testT0)
	reg := obs.NewRegistry()
	reg.Counter("sshd_auth_total", "result", "reject").Add(42)
	dir := t.TempDir()
	e := newTestEngine(t, dir, sim, reg)
	e.cfg.TraceIDs = func(n int) []string { return []string{"trace-a", "trace-b"} }
	e.CaptureOnce()
	inc, err := e.Fire("manual", "operator request")
	if err != nil {
		t.Fatal(err)
	}
	if inc == nil {
		t.Fatal("manual fire suppressed")
	}
	// ring had 1 capture; fire appends a fresh one.
	if len(inc.Captures) != 2 {
		t.Fatalf("bundle has %d captures, want 2", len(inc.Captures))
	}
	last := inc.Captures[len(inc.Captures)-1]
	if len(last.Profiles["cpu"]) == 0 {
		t.Error("fire-time capture has no CPU delta profile")
	}
	if !strings.Contains(inc.Goroutines, "goroutine") {
		t.Error("goroutine dump empty")
	}
	if !strings.Contains(inc.Metrics, "sshd_auth_total") {
		t.Error("metrics snapshot missing registry families")
	}
	if len(inc.TraceIDs) != 2 {
		t.Errorf("trace IDs = %v", inc.TraceIDs)
	}
	if inc.Runtime.NumGoroutine <= 0 || inc.Runtime.GoVersion == "" {
		t.Errorf("runtime stats empty: %+v", inc.Runtime)
	}
	// Manual fire arms debounce: a trigger fire right after is suppressed.
	e.AddTrigger("x", func() (bool, string) { return true, "" })
	e.Evaluate()
	if got := len(e.List()); got != 1 {
		t.Fatalf("trigger fired inside debounce armed by manual capture: %d incidents", got)
	}

	// Round-trip through Get.
	got, err := e.Get(inc.ID)
	if err != nil || got == nil {
		t.Fatalf("Get(%s) = %v, %v", inc.ID, got, err)
	}
	if got.Trigger != "manual" || got.Detail != "operator request" || len(got.Captures) != 2 {
		t.Errorf("persisted incident mangled: %+v", summarize(got, 0))
	}
	if !bytes.Equal(got.Captures[1].Profiles["cpu"], last.Profiles["cpu"]) {
		t.Error("CPU profile bytes did not survive persistence")
	}
}

func TestRecoveryAfterRestart(t *testing.T) {
	sim := clock.NewSim(testT0)
	dir := t.TempDir()
	e := newTestEngine(t, dir, sim, obs.NewRegistry())
	if _, err := e.Fire("manual", "first"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(time.Hour)
	if _, err := e.Fire("manual", "second"); err != nil {
		t.Fatal(err)
	}
	e.Stop()

	reg2 := obs.NewRegistry()
	e2 := newTestEngine(t, dir, sim, reg2)
	list := e2.List()
	if len(list) != 2 {
		t.Fatalf("recovered %d incidents, want 2", len(list))
	}
	if list[0].ID != "inc-000002" || list[1].ID != "inc-000001" {
		t.Errorf("recovered order (newest first) = %s, %s", list[0].ID, list[1].ID)
	}
	if got := reg2.Counter("prof_incidents_recovered_total").Value(); got != 2 {
		t.Errorf("recovered counter = %d", got)
	}
	// Sequence continues past recovered IDs.
	inc, err := e2.Fire("manual", "third")
	if err != nil {
		t.Fatal(err)
	}
	if inc.ID != "inc-000003" {
		t.Errorf("post-recovery ID = %s, want inc-000003", inc.ID)
	}
}

// TestIncidentTornTailSweep is the crash sweep from the acceptance
// criteria at the unit level: a segment holding one complete incident
// bundle is truncated at EVERY byte offset; recovery must either
// recover the whole bundle (cut past the commit marker) or recover
// nothing — never a half bundle — and the read-only offline reader must
// agree.
func TestIncidentTornTailSweep(t *testing.T) {
	sim := clock.NewSim(testT0)
	src := t.TempDir()
	e, err := New(Config{
		Dir: src, Clock: sim, CPUDuration: time.Millisecond, Retention: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fire("manual", "sweep seed"); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	seg := filepath.Join(src, seglog.SegName(SegPrefix, 1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < seglog.FrameHeaderSize+2 {
		t.Fatalf("suspiciously small segment: %d bytes", len(data))
	}
	for cut := len(data); cut >= 0; cut-- {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, seglog.SegName(SegPrefix, 1)), data[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		wantComplete := cut == len(data)

		// Offline read-only path first (it must not mutate the file).
		offline, err := ReadDir(dir)
		if err != nil {
			t.Fatalf("cut=%d: ReadDir: %v", cut, err)
		}
		if got := len(offline); got != b2i(wantComplete) {
			t.Fatalf("cut=%d: offline recovered %d bundles, want %d", cut, got, b2i(wantComplete))
		}
		if fi, _ := os.Stat(filepath.Join(dir, seglog.SegName(SegPrefix, 1))); fi.Size() != int64(cut) {
			t.Fatalf("cut=%d: read-only reader truncated the segment", cut)
		}

		// Read-write recovery path.
		e2, err := New(Config{Dir: dir, Clock: sim, CPUDuration: time.Millisecond, Retention: 1})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		list := e2.List()
		if got := len(list); got != b2i(wantComplete) {
			t.Fatalf("cut=%d: recovered %d incidents, want %d", cut, got, b2i(wantComplete))
		}
		if wantComplete {
			inc, err := e2.Get(list[0].ID)
			if err != nil || inc == nil || inc.Detail != "sweep seed" {
				t.Fatalf("cut=%d: recovered bundle unreadable: %v, %v", cut, inc, err)
			}
		}
		e2.Stop()
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestHandlerEndpoints(t *testing.T) {
	sim := clock.NewSim(testT0)
	reg := obs.NewRegistry()
	e := newTestEngine(t, t.TempDir(), sim, reg)
	mux := http.NewServeMux()
	e.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string, wantCode int) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s = %d (%s), want %d", path, resp.StatusCode, body, wantCode)
		}
		return body
	}

	// Empty index.
	var idx struct {
		Sampler   statusJSON `json:"sampler"`
		Incidents []Summary  `json:"incidents"`
	}
	if err := json.Unmarshal(get("/debug/prof", 200), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Sampler.Retention != 3 || len(idx.Incidents) != 0 {
		t.Errorf("index = %+v", idx)
	}

	// Manual capture endpoint fires an incident.
	var sum Summary
	if err := json.Unmarshal(get("/debug/prof/capture?reason=drill", 200), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Trigger != "manual" || sum.Detail != "drill" {
		t.Errorf("capture summary = %+v", sum)
	}

	// Full bundle fetch.
	var inc Incident
	if err := json.Unmarshal(get("/debug/prof?incident="+sum.ID, 200), &inc); err != nil {
		t.Fatal(err)
	}
	if len(inc.Captures) == 0 {
		t.Fatal("bundle has no captures")
	}

	// Raw CPU profile download: gzip pprof bytes.
	prof := get("/debug/prof?incident="+sum.ID+"&profile=cpu", 200)
	if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
		t.Errorf("profile download is not gzip pprof (%d bytes)", len(prof))
	}
	get("/debug/prof?incident="+sum.ID+"&profile=nosuch", 404)
	get("/debug/prof?incident="+sum.ID+"&profile=cpu&capture=99", 400)

	// Text parts.
	if g := get("/debug/prof?incident="+sum.ID+"&part=goroutines", 200); !strings.Contains(string(g), "goroutine") {
		t.Error("goroutines part empty")
	}
	get("/debug/prof?incident="+sum.ID+"&part=nosuch", 400)
	get("/debug/prof?incident=inc-999999", 404)
}

func TestStartStopSampler(t *testing.T) {
	e, err := New(Config{
		Period:      5 * time.Millisecond,
		CPUDuration: time.Millisecond,
		Retention:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	deadline := time.Now().Add(5 * time.Second)
	for len(e.Ring()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	e.Stop()
	if len(e.Ring()) == 0 {
		t.Fatal("sampler took no captures")
	}
	e.Stop() // idempotent
	var nilE *Engine
	nilE.Start()
	nilE.Stop()
	nilE.Evaluate()
}
