package prof

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Mount registers the incident endpoints:
//
//	GET  /debug/prof                                  sampler status + incident index (JSON)
//	GET  /debug/prof?incident=<id>                    one full bundle (JSON; profiles base64)
//	GET  /debug/prof?incident=<id>&profile=cpu        raw pprof protobuf from the bundle's
//	                                                  newest capture (open with go tool pprof)
//	GET  /debug/prof?incident=<id>&profile=heap&capture=0   ...from a specific ring slot
//	GET  /debug/prof?incident=<id>&part=goroutines    the goroutine dump (text)
//	GET  /debug/prof?incident=<id>&part=metrics       the metrics snapshot (text)
//	POST /debug/prof/capture?reason=...               fire a manual incident now
//
// Nil-safe: mounting a nil engine registers nothing.
func (e *Engine) Mount(mux *http.ServeMux) {
	if e == nil {
		return
	}
	mux.HandleFunc("/debug/prof", e.handleIndex)
	mux.HandleFunc("/debug/prof/capture", e.handleCapture)
}

// statusJSON is the sampler half of the index response.
type statusJSON struct {
	Dir          string `json:"dir,omitempty"`
	Period       string `json:"period"`
	CPUDuration  string `json:"cpu_duration"`
	Retention    int    `json:"retention"`
	RingCaptures int    `json:"ring_captures"`
	Debounce     string `json:"debounce"`
	Captures     int64  `json:"captures_total"`
	CaptureErrs  int64  `json:"capture_errors_total"`
	Incidents    int    `json:"incidents"`
	Suppressed   int64  `json:"incidents_suppressed_total"`
}

func (e *Engine) handleIndex(w http.ResponseWriter, req *http.Request) {
	qp := req.URL.Query()
	id := qp.Get("incident")
	if id == "" {
		e.mu.Lock()
		ring := len(e.ring)
		incidents := e.store.len()
		e.mu.Unlock()
		writeJSON(w, struct {
			Sampler   statusJSON `json:"sampler"`
			Incidents []Summary  `json:"incidents"`
		}{
			Sampler: statusJSON{
				Dir:          e.cfg.Dir,
				Period:       e.cfg.Period.String(),
				CPUDuration:  e.cpuDur.String(),
				Retention:    e.cfg.Retention,
				RingCaptures: ring,
				Debounce:     e.cfg.Debounce.String(),
				Captures:     e.captures.Value(),
				CaptureErrs:  e.capErrs.Value(),
				Incidents:    incidents,
				Suppressed:   e.suppressed.Value(),
			},
			Incidents: e.List(),
		})
		return
	}
	inc, err := e.Get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if inc == nil {
		http.Error(w, "prof: no incident "+id, http.StatusNotFound)
		return
	}
	if kind := qp.Get("profile"); kind != "" {
		e.serveProfile(w, qp.Get("capture"), inc, kind)
		return
	}
	switch part := qp.Get("part"); part {
	case "":
		writeJSON(w, inc)
	case "goroutines":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, inc.Goroutines)
	case "metrics":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, inc.Metrics)
	default:
		http.Error(w, "prof: unknown part "+part, http.StatusBadRequest)
	}
}

// serveProfile streams one raw pprof profile out of a bundle. The
// newest capture (the one taken at fire time) is the default.
func (e *Engine) serveProfile(w http.ResponseWriter, captureParam string, inc *Incident, kind string) {
	if len(inc.Captures) == 0 {
		http.Error(w, "prof: incident has no captures", http.StatusNotFound)
		return
	}
	idx := len(inc.Captures) - 1
	if captureParam != "" {
		n, err := strconv.Atoi(captureParam)
		if err != nil || n < 0 || n >= len(inc.Captures) {
			http.Error(w, "prof: bad capture index", http.StatusBadRequest)
			return
		}
		idx = n
	}
	data := inc.Captures[idx].Profiles[kind]
	if len(data) == 0 {
		http.Error(w, fmt.Sprintf("prof: capture %d has no %s profile", idx, kind), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s-%s-%d.pb.gz", inc.ID, kind, idx))
	w.Write(data)
}

func (e *Engine) handleCapture(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodPost {
		http.Error(w, "prof: GET or POST", http.StatusMethodNotAllowed)
		return
	}
	detail := req.URL.Query().Get("reason")
	if detail == "" {
		detail = "manual capture"
	}
	inc, err := e.Fire("manual", detail)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, summarize(inc, 0))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
