package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/eventstream"
	"openmfa/internal/faultnet"
	"openmfa/internal/flightrec"
	"openmfa/internal/idm"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
	"openmfa/internal/obs/prof"
	"openmfa/internal/obs/slo"
	"openmfa/internal/otp"
	"openmfa/internal/risk"
	"openmfa/internal/sshd"
	"openmfa/internal/store"
	"openmfa/internal/store/repl"
)

// settleFlightrec waits until the recorder has decided (kept or dropped)
// `want` completed traces. The recorder drains the bus asynchronously, so
// tests poll its counters rather than sleeping blind.
func settleFlightrec(t *testing.T, reg *obs.Registry, want int) {
	t.Helper()
	decided := func() int {
		n := int(reg.Counter("flightrec_bundles_dropped_total").Value())
		for _, r := range []string{"failed", "slow", "lockout", "alert", "sampled"} {
			n += int(reg.Counter("flightrec_bundles_kept_total", "reason", r).Value())
		}
		return n
	}
	deadline := time.Now().Add(5 * time.Second)
	for decided() < want {
		if time.Now().After(deadline) {
			t.Fatalf("flight recorder decided %d traces, want %d", decided(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// loginOnce drives one full sshd login. wrongCode forces a rejection by
// answering the token prompt with a code that can never validate.
func loginOnce(inf *Infrastructure, sim *clock.Sim, user string, secret []byte, wrongCode bool) error {
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		if wrongCode {
			return "000000", nil
		}
		code, _ := otp.TOTP(secret, sim.Now(), inf.OTP.OTPOptions())
		return code, nil
	}
	c, err := sshd.Dial(inf.SSHAddr(), DialOpts(user, r))
	if err != nil {
		return err
	}
	return c.Close()
}

// TestFlightRecorderUnderChaosStorm is the acceptance test for the flight
// recorder tentpole: under a faultnet storm (drops + duplicated
// datagrams) every failed login must be retrievable by trace ID from the
// persisted segments with a complete four-leg span tree, its captured log
// lines, and the same bundle served over /debug/flightrec — and the
// segments must still read back after the recorder shuts down.
func TestFlightRecorderUnderChaosStorm(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	logs := &syncBuf{}
	tee := flightrec.NewLogTee(logs, 0, 0)
	spans := obs.NewSpanStore(4096)
	bus := eventstream.NewBus(reg)
	dir := t.TempDir()

	rec, err := flightrec.New(flightrec.Config{
		Dir: dir, Bus: bus, Spans: spans, Logs: tee, Obs: reg,
		// SampleRate 0: only the always-keep classes survive, so the
		// storm's rejects are exactly what lands on disk.
		Policy: flightrec.Policy{SampleRate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Stop()

	chaos := faultnet.New(faultnet.Config{
		Seed:     7,
		Obs:      reg,
		DropRate: 0.25,
		DupRate:  1.0, // every surviving datagram sent twice
	})
	inf := newInfra(t, Options{
		Obs:            reg,
		Logger:         obs.NewLogger(tee, obs.LevelInfo),
		Spans:          spans,
		Events:         bus,
		FlightRec:      rec,
		FaultNet:       chaos,
		RadiusServers:  2,
		RadiusTimeout:  250 * time.Millisecond,
		RadiusRetries:  5,
		SSHAuthTimeout: 30 * time.Second,
	})
	sim := inf.Clock.(*clock.Sim)

	const users = 6
	failedUsers := map[string]bool{}
	for i := 0; i < users; i++ {
		name := fmt.Sprintf("storm%d", i)
		if _, err := inf.CreateUser(name, name+"@x", "pw", idm.ClassUser); err != nil {
			t.Fatal(err)
		}
		enr, err := inf.PairSoft(name)
		if err != nil {
			t.Fatal(err)
		}
		// One clean login and one wrong-code login per user, driven
		// sequentially so the storm stays deterministic per seed.
		if err := loginOnce(inf, sim, name, enr.Secret, false); err != nil {
			t.Fatalf("good login %s: %v", name, err)
		}
		if err := loginOnce(inf, sim, name, enr.Secret, true); err == nil {
			t.Fatalf("wrong code accepted for %s", name)
		}
		failedUsers[name] = true
		sim.Advance(time.Second)
	}
	settleFlightrec(t, reg, 2*users)

	// Every reject was kept; every success was dropped (sample rate 0).
	fails := rec.List(flightrec.Query{Class: "failed"})
	if len(fails) != users {
		t.Fatalf("failed bundles = %d, want %d: %+v", len(fails), users, fails)
	}
	if n := rec.Len(); n != users {
		t.Errorf("persisted bundles = %d, want %d", n, users)
	}
	for _, s := range fails {
		if !failedUsers[s.User] {
			t.Errorf("unexpected failed-bundle user %q", s.User)
		}
		b, err := rec.Get(s.Trace)
		if err != nil {
			t.Fatalf("Get(%s): %v", s.Trace, err)
		}
		if b.Result != "reject" || b.Reason != flightrec.ReasonFailed {
			t.Errorf("trace %s: result=%q reason=%q", s.Trace, b.Result, b.Reason)
		}
		if b.Truncated {
			t.Errorf("trace %s: span tree truncated", s.Trace)
		}
		// All four legs of the login survive in the persisted bundle.
		legs := map[string]bool{}
		for _, sp := range b.Spans {
			legs[sp.Name] = true
		}
		for _, leg := range []string{
			"sshd.conversation", "pam.pam_mfa_token", "radius.rtt", "otpd.check",
		} {
			if !legs[leg] {
				t.Errorf("trace %s: missing span leg %q (got %d spans)", s.Trace, leg, len(b.Spans))
			}
		}
		// The tee routed this trace's log lines into the bundle.
		if joined := strings.Join(b.Logs, "\n"); !strings.Contains(joined, s.Trace) {
			t.Errorf("trace %s: bundle logs do not mention the trace:\n%s", s.Trace, joined)
		}
	}

	// The same bundles serve over the portal's ops mux, as JSON and as
	// the ASCII tree.
	resp, err := http.Get(inf.PortalURL() + "/debug/flightrec?class=failed")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var page struct {
		Bundles []flightrec.Summary `json:"bundles"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("/debug/flightrec not JSON: %v\n%s", err, body)
	}
	listed := page.Bundles
	if len(listed) != users {
		t.Fatalf("/debug/flightrec?class=failed = %d bundles, want %d", len(listed), users)
	}
	resp, err = http.Get(inf.PortalURL() + "/debug/flightrec?trace=" + listed[0].Trace + "&format=tree")
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"sshd.conversation", "otpd.check", listed[0].Trace} {
		if !strings.Contains(string(tree), want) {
			t.Errorf("tree view missing %q:\n%s", want, tree)
		}
	}

	// Shut the recorder down and read the segments back cold: the failed
	// traces are all on disk, committed.
	rec.Stop()
	cold, err := flightrec.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, b := range cold {
		onDisk[b.Trace] = true
	}
	for _, s := range fails {
		if !onDisk[s.Trace] {
			t.Errorf("trace %s not in cold segment read", s.Trace)
		}
	}
}

// TestSuccessSamplingReproducibleAcrossRuns runs the identical login
// schedule through two fresh stacks with identically seeded sim clocks
// and asserts the tail-sampler keeps the same successes both times. Trace
// IDs are crypto-random and differ between runs; the sampling key (user +
// event time) is what must reproduce.
func TestSuccessSamplingReproducibleAcrossRuns(t *testing.T) {
	leakcheck.Check(t)
	const users = 24
	run := func() []string {
		reg := obs.NewRegistry()
		spans := obs.NewSpanStore(4096)
		bus := eventstream.NewBus(reg)
		rec, err := flightrec.New(flightrec.Config{
			Dir: t.TempDir(), Bus: bus, Spans: spans, Obs: reg,
			Policy: flightrec.Policy{SampleRate: 0.35},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Stop()
		inf := newInfra(t, Options{
			Obs: reg, Spans: spans, Events: bus, FlightRec: rec,
		})
		sim := inf.Clock.(*clock.Sim)
		for i := 0; i < users; i++ {
			name := fmt.Sprintf("sample%02d", i)
			if _, err := inf.CreateUser(name, name+"@x", "pw", idm.ClassUser); err != nil {
				t.Fatal(err)
			}
			enr, err := inf.PairSoft(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := loginOnce(inf, sim, name, enr.Secret, false); err != nil {
				t.Fatalf("login %s: %v", name, err)
			}
			sim.Advance(time.Second)
		}
		settleFlightrec(t, reg, users)
		var kept []string
		for _, s := range rec.List(flightrec.Query{Class: "sampled"}) {
			kept = append(kept, s.User)
		}
		sort.Strings(kept)
		return kept
	}

	first := run()
	second := run()
	if len(first) == 0 || len(first) == users {
		t.Fatalf("sample kept %d of %d successes; want a proper subset", len(first), users)
	}
	if strings.Join(first, ",") != strings.Join(second, ",") {
		t.Fatalf("sample not reproducible:\n run 1: %v\n run 2: %v", first, second)
	}
}

// TestFailureBurstBurnsSLOAndDegradesHealthz is the acceptance test for
// the SLO engine: a synthetic burst of rejects drives slo_burn_rate over
// the fast-window threshold and flips the portal's /healthz to 503 within
// a single evaluation tick; /debug/slo reports the overspent objective.
func TestFailureBurstBurnsSLOAndDegradesHealthz(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	sim := clock.NewSim(t0)

	// Availability objective over the sshd decision counters: 99.5% of
	// logins accepted, 30-day window. FamilySource follows the result
	// label series as they appear.
	eng := slo.New(slo.Config{Obs: reg, Clock: sim})
	if err := eng.Add(slo.Objective{
		Name:        "logins",
		Description: "sshd accepts / all decisions",
		Target:      0.995,
		Window:      30 * 24 * time.Hour,
		Source: slo.FamilySource{
			Reg: reg, Family: "sshd_auth_total",
			Good: func(labels string) bool {
				return strings.Contains(labels, `result="accept"`)
			},
		},
	}); err != nil {
		t.Fatal(err)
	}

	inf := newInfra(t, Options{Clock: sim, Obs: reg, SLO: eng})
	healthz := func() int {
		resp, err := http.Get(inf.PortalURL() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Healthy baseline: clean logins burn nothing.
	if _, err := inf.CreateUser("good", "g@x", "pw", idm.ClassUser); err != nil {
		t.Fatal(err)
	}
	enr, err := inf.PairSoft("good")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := loginOnce(inf, sim, "good", enr.Secret, false); err != nil {
			t.Fatalf("baseline login: %v", err)
		}
		sim.Advance(45 * time.Second) // step past TOTP replay protection
	}
	eng.Evaluate()
	if code := healthz(); code != http.StatusOK {
		t.Fatalf("/healthz = %d before the burst, want 200", code)
	}

	// The burst: 20 rejects across several accounts (each stays well
	// under the otpd lockout threshold).
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("burst%d", i)
		if _, err := inf.CreateUser(name, name+"@x", "pw", idm.ClassUser); err != nil {
			t.Fatal(err)
		}
		enr, err := inf.PairSoft(name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if err := loginOnce(inf, sim, name, enr.Secret, true); err == nil {
				t.Fatalf("wrong code accepted for %s", name)
			}
		}
	}
	sim.Advance(30 * time.Second)
	eng.Evaluate() // ONE tick: the burst must already page

	if v := reg.Gauge("slo_burn_rate", "slo", "logins", "window", "5m").Value(); v <= 14.4 {
		t.Errorf("burn(5m) = %v, want > 14.4 after the burst", v)
	}
	if v := reg.Gauge("slo_alert_active", "slo", "logins", "severity", "page").Value(); v != 1 {
		t.Errorf("page alert gauge = %v, want 1", v)
	}
	if code := healthz(); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d after the burst, want 503 within one tick", code)
	}

	// The portal serves the objective's status with the burn windows.
	resp, err := http.Get(inf.PortalURL() + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var status []slo.ObjectiveStatus
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("/debug/slo not JSON: %v\n%s", err, body)
	}
	if len(status) != 1 || status[0].Name != "logins" || len(status[0].Burn) != 4 {
		t.Fatalf("unexpected /debug/slo status: %s", body)
	}
}

// TestPortalMetricsExpositionIsLintClean fetches the live portal /metrics
// page — with runtime telemetry, SLO gauges, and flight recorder counters
// all registered — and runs the exposition linter over it: families must
// be typed, sorted, consistently labelled, and suffixed per convention.
func TestPortalMetricsExpositionIsLintClean(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	rt := obs.StartRuntimeSampler(reg, time.Minute)
	defer rt.Stop()
	spans := obs.NewSpanStore(0)
	bus := eventstream.NewBus(reg)
	rec, err := flightrec.New(flightrec.Config{
		Dir: t.TempDir(), Bus: bus, Spans: spans, Obs: reg,
		Policy: flightrec.Policy{SampleRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Stop()
	eng := slo.New(slo.Config{Obs: reg})
	if err := eng.Add(slo.Objective{
		Name: "logins", Target: 0.995,
		Source: slo.FamilySource{Reg: reg, Family: "sshd_auth_total",
			Good: func(l string) bool { return strings.Contains(l, `result="accept"`) }},
	}); err != nil {
		t.Fatal(err)
	}
	// A continuous profiler on the registry puts the prof_* families
	// under the linter as well.
	profEng, err := prof.New(prof.Config{Obs: reg, CPUDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer profEng.Stop()
	profEng.CaptureOnce()
	// The adaptive-MFA engine on the same registry puts the risk_* families
	// (gate decisions, reasons, feature-store occupancy, assess latency)
	// under the linter: wiring it into Options.Risk makes the sshd stack
	// run the gate on the login below.
	riskEng := risk.New(risk.Options{Policy: risk.AdaptivePolicy(), Obs: reg, Events: bus})
	// A replication leader with a live follower on the same registry puts
	// every repl_* family (both ends) under the linter too.
	inf := newInfra(t, Options{Obs: reg, Spans: spans, Events: bus, FlightRec: rec, SLO: eng,
		Prof: profEng, Risk: riskEng, ReplListen: "127.0.0.1:0"})
	sim := inf.Clock.(*clock.Sim)
	standby := store.OpenMemory()
	defer standby.Close()
	follower, err := repl.StartFollower(standby, repl.FollowerOptions{
		Addr: inf.ReplLeader.Addr(), Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Stop()

	if _, err := inf.CreateUser("lint", "l@x", "pw", idm.ClassUser); err != nil {
		t.Fatal(err)
	}
	enr, err := inf.PairSoft("lint")
	if err != nil {
		t.Fatal(err)
	}
	if err := loginOnce(inf, sim, "lint", enr.Secret, false); err != nil {
		t.Fatal(err)
	}
	settleFlightrec(t, reg, 1)
	eng.Evaluate()

	resp, err := http.Get(inf.PortalURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintExposition(strings.NewReader(string(page)), obs.ConventionFamilies()...); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("exposition lint: %v", e)
		}
	}
	// The replication families (leader side — including the new commit
	// LSN and follower-lag gauges — and follower side) and the profiler
	// families really were on the linted page.
	for _, fam := range []string{"repl_followers", "repl_epoch", "repl_frames_shipped_total",
		"repl_frames_applied_total", "repl_lag_lsns", "repl_commit_lsn", "repl_follower_lag_lsns",
		"prof_captures_total", "prof_ring_captures",
		"risk_decisions_total", "risk_reasons_total", "risk_feature_users",
		"risk_feature_evictions_total", "risk_assess_duration_seconds"} {
		if !strings.Contains(string(page), fam) {
			t.Errorf("lint page missing %s family", fam)
		}
	}
}
