package core

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"openmfa/internal/authwatch"
	"openmfa/internal/clock"
	"openmfa/internal/eventstream"
	"openmfa/internal/idm"
	"openmfa/internal/obs"
	"openmfa/internal/otp"
	"openmfa/internal/sshd"
)

// TestSpanTreeAndLiveAnalytics drives one real login through the wired
// stack and asserts the tentpole end to end: the login decomposes into the
// four span legs (sshd conversation, PAM module, RADIUS RTT, otpd check)
// under one trace ID with non-zero durations and correct parent linkage,
// and the live authwatch aggregates served from the portal count it.
func TestSpanTreeAndLiveAnalytics(t *testing.T) {
	reg := obs.NewRegistry()
	logs := &syncBuf{}
	spans := obs.NewSpanStore(0)
	bus := eventstream.NewBus(reg)
	watch := authwatch.New(authwatch.Config{Obs: reg})
	watch.Attach(bus, 4096)
	defer watch.Stop()

	inf := newInfra(t, Options{
		Obs:    reg,
		Logger: obs.NewLogger(logs, obs.LevelInfo),
		Spans:  spans,
		Events: bus,
		Watch:  watch,
	})
	sim := inf.Clock.(*clock.Sim)
	if _, err := inf.CreateUser("alice", "alice@x", "pw", idm.ClassUser); err != nil {
		t.Fatal(err)
	}
	enr, err := inf.PairSoft("alice")
	if err != nil {
		t.Fatal(err)
	}

	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		code, _ := otp.TOTP(enr.Secret, sim.Now(), inf.OTP.OTPOptions())
		return code, nil
	}
	c, err := sshd.Dial(inf.SSHAddr(), DialOpts("alice", r))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Recover the login's trace ID from the sshd log line.
	m := regexp.MustCompile(`component=sshd trace=([0-9a-f]{16})`).FindStringSubmatch(logs.String())
	if m == nil {
		t.Fatalf("no sshd trace line in logs:\n%s", logs.String())
	}
	trace := m[1]

	// (a) The span store holds all four legs of the login under that trace.
	recorded := spans.Trace(trace)
	byName := map[string]obs.SpanData{}
	for _, d := range recorded {
		byName[d.Name] = d
	}
	for _, leg := range []string{
		"sshd.conversation", "pam.pam_mfa_token", "radius.rtt", "otpd.check",
	} {
		d, ok := byName[leg]
		if !ok {
			t.Fatalf("trace %s missing span %q (got %d spans: %+v)", trace, leg, len(recorded), byName)
		}
		if d.Duration() <= 0 {
			t.Errorf("span %s: duration = %v, want > 0", leg, d.Duration())
		}
	}
	// Parent linkage: the PAM module leg nests under the sshd conversation
	// and the RADIUS RTT under the module. The otpd.check leg runs on the
	// far side of the UDP hop, so it has no in-process parent — the shared
	// trace ID is what joins it to the tree.
	if got, want := byName["pam.pam_mfa_token"].Parent, byName["sshd.conversation"].ID; got != want {
		t.Errorf("pam leg parent = %d, want sshd conversation %d", got, want)
	}
	if got, want := byName["radius.rtt"].Parent, byName["pam.pam_mfa_token"].ID; got != want {
		t.Errorf("radius leg parent = %d, want pam module %d", got, want)
	}
	if byName["otpd.check"].Parent != 0 {
		t.Errorf("otpd leg parent = %d, want 0 (joined by trace, not by span ID)", byName["otpd.check"].Parent)
	}

	// (b) The live analytics counted the login. The watcher consumes the
	// bus asynchronously; Stop() drains what the login published.
	watch.Stop()
	resp, err := http.Get(inf.PortalURL() + "/debug/authwatch")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/authwatch = %d", resp.StatusCode)
	}
	var snap authwatch.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/debug/authwatch not JSON: %v\n%s", err, body)
	}
	if len(snap.Days) != 1 {
		t.Fatalf("authwatch days = %d, want 1:\n%s", len(snap.Days), body)
	}
	d := snap.Days[0]
	if d.Date != sim.Now().UTC().Format("2006-01-02") {
		t.Errorf("authwatch day = %s, want the sim date", d.Date)
	}
	if d.TrafficAll != 1 || d.TrafficExt != 1 || d.TrafficExtMFA != 1 || d.UniqueMFAUsers != 1 {
		t.Errorf("day aggregates = %+v, want the one MFA login counted", d)
	}

	// (c) The ASCII figures view renders, and health stays green (no alert
	// thresholds crossed by a single clean login).
	resp, err = http.Get(inf.PortalURL() + "/debug/authwatch?format=ascii")
	if err != nil {
		t.Fatal(err)
	}
	ascii, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"unique_mfa_users", "alerts:"} {
		if !strings.Contains(string(ascii), want) {
			t.Errorf("ascii view missing %q:\n%s", want, ascii)
		}
	}
	resp, err = http.Get(inf.PortalURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
}
