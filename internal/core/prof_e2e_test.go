package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/eventstream"
	"openmfa/internal/flightrec"
	"openmfa/internal/idm"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
	"openmfa/internal/obs/prof"
	"openmfa/internal/obs/slo"
)

// profStack is the full diagnostics wiring for the black-box tests: SLO
// engine over sshd decisions, a flight recorder keeping failed logins,
// and a prof engine whose slo_fast_burn trigger and TraceIDs feed mirror
// the cmd/otpd wiring.
func profStack(t *testing.T, profDir string) (*Infrastructure, *clock.Sim, *obs.Registry, *slo.Engine, *flightrec.Recorder, *prof.Engine) {
	t.Helper()
	reg := obs.NewRegistry()
	sim := clock.NewSim(t0)
	spans := obs.NewSpanStore(4096)
	bus := eventstream.NewBus(reg)
	rec, err := flightrec.New(flightrec.Config{
		Dir: t.TempDir(), Bus: bus, Spans: spans, Obs: reg,
		Policy: flightrec.Policy{SampleRate: 0}, // only failures persist
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rec.Stop)

	eng := slo.New(slo.Config{Obs: reg, Clock: sim})
	if err := eng.Add(slo.Objective{
		Name: "logins", Target: 0.995, Window: 30 * 24 * time.Hour,
		Source: slo.FamilySource{
			Reg: reg, Family: "sshd_auth_total",
			Good: func(labels string) bool {
				return strings.Contains(labels, `result="accept"`)
			},
		},
	}); err != nil {
		t.Fatal(err)
	}

	profEng, err := prof.New(prof.Config{
		Dir: profDir, Obs: reg, Clock: sim,
		CPUDuration: 5 * time.Millisecond, Retention: 4, Debounce: 10 * time.Minute,
		TraceIDs: func(n int) []string {
			var ids []string
			for _, s := range rec.List(flightrec.Query{Limit: n}) {
				ids = append(ids, s.Trace)
			}
			return ids
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(profEng.Stop)
	profEng.AddTrigger("slo_fast_burn", prof.HealthTrigger(eng.Health))

	inf := newInfra(t, Options{
		Clock: sim, Obs: reg, SLO: eng, Spans: spans, Events: bus,
		FlightRec: rec, Prof: profEng,
	})
	return inf, sim, reg, eng, rec, profEng
}

// TestLoginStormTripsOneIncidentBundle is the capstone acceptance test
// for the black box: a login storm trips the SLO fast-burn trigger and
// exactly one debounced incident bundle lands on disk, carrying a
// non-empty CPU delta profile, a goroutine dump, the metrics snapshot,
// and the storm's flight-recorder trace IDs; the bundle is readable over
// /debug/prof and offline, and a torn segment tail never yields a
// partial bundle.
func TestLoginStormTripsOneIncidentBundle(t *testing.T) {
	leakcheck.Check(t)
	profDir := t.TempDir()
	inf, sim, reg, eng, rec, profEng := profStack(t, profDir)

	// Healthy baseline: a capture in the ring and no incident to report.
	profEng.CaptureOnce()
	profEng.Evaluate()
	if got := profEng.List(); len(got) != 0 {
		t.Fatalf("incidents before the storm: %+v", got)
	}

	// The storm: 20 rejects across 5 accounts (each stays under the otpd
	// lockout threshold), then one SLO tick trips the fast-burn page.
	const stormUsers = 5
	for i := 0; i < stormUsers; i++ {
		name := fmt.Sprintf("storm%d", i)
		if _, err := inf.CreateUser(name, name+"@x", "pw", idm.ClassUser); err != nil {
			t.Fatal(err)
		}
		enr, err := inf.PairSoft(name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if err := loginOnce(inf, sim, name, enr.Secret, true); err == nil {
				t.Fatalf("wrong code accepted for %s", name)
			}
		}
	}
	settleFlightrec(t, reg, 4*stormUsers)
	sim.Advance(30 * time.Second)
	eng.Evaluate()
	if eng.Health() == nil {
		t.Fatal("SLO fast burn did not page after the storm")
	}

	// The sampler would evaluate every period; three ticks' worth of
	// evaluations must still collapse to ONE bundle under debounce.
	for i := 0; i < 3; i++ {
		profEng.Evaluate()
	}
	sums := profEng.List()
	if len(sums) != 1 {
		t.Fatalf("incidents after the storm = %d, want exactly 1: %+v", len(sums), sums)
	}
	if v := reg.Counter("prof_incidents_suppressed_total").Value(); v != 2 {
		t.Errorf("suppressed = %v, want 2", v)
	}
	inc, err := profEng.Get(sums[0].ID)
	if err != nil || inc == nil {
		t.Fatalf("Get(%s): %v, %v", sums[0].ID, inc, err)
	}
	if inc.Trigger != "slo_fast_burn" {
		t.Errorf("trigger = %q, want slo_fast_burn", inc.Trigger)
	}
	if !strings.Contains(inc.Detail, "logins") {
		t.Errorf("detail does not name the burning SLO: %q", inc.Detail)
	}
	// The frozen ring ends with a fire-time capture holding a real
	// (gzip-framed) CPU delta profile.
	if len(inc.Captures) < 2 {
		t.Fatalf("captures = %d, want baseline + fire-time", len(inc.Captures))
	}
	cpu := inc.Captures[len(inc.Captures)-1].Profiles["cpu"]
	if len(cpu) < 2 || cpu[0] != 0x1f || cpu[1] != 0x8b {
		t.Errorf("fire-time CPU profile missing or not gzip (%d bytes)", len(cpu))
	}
	if !strings.Contains(inc.Goroutines, "goroutine") {
		t.Error("bundle has no goroutine dump")
	}
	if !strings.Contains(inc.Metrics, "sshd_auth_total") {
		t.Error("metrics snapshot does not include the burned family")
	}
	if inc.Runtime.NumGoroutine <= 0 {
		t.Errorf("runtime stats not populated: %+v", inc.Runtime)
	}
	// Every embedded trace ID resolves to a persisted failed login.
	if len(inc.TraceIDs) == 0 {
		t.Fatal("bundle carries no flight-recorder trace IDs")
	}
	failed := map[string]bool{}
	for _, s := range rec.List(flightrec.Query{Class: "failed"}) {
		failed[s.Trace] = true
	}
	for _, id := range inc.TraceIDs {
		if !failed[id] {
			t.Errorf("trace %s in bundle is not a failed-login bundle", id)
		}
	}

	// The same bundle serves over the portal's ops mux.
	var page struct {
		Incidents []prof.Summary `json:"incidents"`
	}
	body := httpGet(t, inf.PortalURL()+"/debug/prof")
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("/debug/prof not JSON: %v\n%s", err, body)
	}
	if len(page.Incidents) != 1 || page.Incidents[0].ID != inc.ID {
		t.Fatalf("/debug/prof incidents = %+v, want [%s]", page.Incidents, inc.ID)
	}
	var served prof.Incident
	if err := json.Unmarshal(httpGet(t, inf.PortalURL()+"/debug/prof?incident="+inc.ID), &served); err != nil {
		t.Fatalf("incident detail not JSON: %v", err)
	}
	if served.Trigger != inc.Trigger || len(served.Captures) != len(inc.Captures) {
		t.Errorf("served incident differs: %+v", served)
	}
	raw := httpGet(t, inf.PortalURL()+"/debug/prof?incident="+inc.ID+"&profile=cpu")
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Errorf("served CPU profile not gzip (%d bytes)", len(raw))
	}

	// Offline reader sees the identical bundle on the live directory.
	cold, err := prof.ReadDir(profDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != 1 || cold[0].ID != inc.ID {
		t.Fatalf("offline read = %d bundles, want [%s]", len(cold), inc.ID)
	}

	// Crash sweep: truncating the segment anywhere must yield all or
	// nothing — a torn tail is skipped, never surfaced as a partial
	// bundle. (The per-byte sweep lives in internal/obs/prof; this sweeps
	// a stride over the real end-to-end bundle.)
	segs, err := filepath.Glob(filepath.Join(profDir, prof.SegPrefix+"*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, 7, 8, 9, len(data) - 2, len(data) - 1, len(data)}
	for cut := 16; cut < len(data); cut += len(data)/61 + 1 {
		cuts = append(cuts, cut)
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), data[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		got, err := prof.ReadDir(dir)
		if err != nil {
			t.Fatalf("cut %d: ReadDir: %v", cut, err)
		}
		want := 0
		if cut == len(data) {
			want = 1
		}
		if len(got) != want {
			t.Fatalf("cut %d of %d: read %d bundles, want %d", cut, len(data), len(got), want)
		}
		if want == 1 && got[0].ID != inc.ID {
			t.Fatalf("cut %d: wrong bundle %s", cut, got[0].ID)
		}
	}
}

// TestDiagnosticsEndpointsConcurrentScrape hammers every diagnostics
// endpoint from parallel scrapers (as a fleet of Prometheus pollers and
// curious operators would) under the race detector: responses must stay
// 200 with well-formed bodies, and nothing may deadlock or leak.
func TestDiagnosticsEndpointsConcurrentScrape(t *testing.T) {
	leakcheck.Check(t)
	inf, sim, reg, eng, _, profEng := profStack(t, t.TempDir())

	// Populate every subsystem: one good login, one incident, one tick.
	if _, err := inf.CreateUser("scrape", "s@x", "pw", idm.ClassUser); err != nil {
		t.Fatal(err)
	}
	enr, err := inf.PairSoft("scrape")
	if err != nil {
		t.Fatal(err)
	}
	if err := loginOnce(inf, sim, "scrape", enr.Secret, false); err != nil {
		t.Fatal(err)
	}
	settleFlightrec(t, reg, 1)
	eng.Evaluate()
	if _, err := profEng.Fire("manual", "scrape seed"); err != nil {
		t.Fatal(err)
	}
	incID := profEng.List()[0].ID

	endpoints := []string{
		"/metrics",
		"/debug/slo",
		"/debug/flightrec",
		"/debug/prof",
		"/debug/prof?incident=" + incID,
		"/debug/prof?incident=" + incID + "&profile=cpu",
		"/debug/prof?incident=" + incID + "&part=goroutines",
	}
	const scrapers, rounds = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, scrapers)
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				url := endpoints[(worker+r)%len(endpoints)]
				resp, err := http.Get(inf.PortalURL() + url)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", url, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("%s: read: %v", url, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, body)
					return
				}
				if len(body) == 0 {
					errs <- fmt.Errorf("%s: empty body", url)
					return
				}
				switch url {
				case "/debug/slo", "/debug/prof":
					var v any
					if err := json.Unmarshal(body, &v); err != nil {
						errs <- fmt.Errorf("%s: not JSON: %v", url, err)
						return
					}
				}
			}
		}(i)
	}
	// Scrapes race against the sampler's own work, not a quiet engine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			profEng.CaptureOnce()
			profEng.Evaluate()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The linter still passes on the page the scrapers were hammering,
	// with the prof_* families and the required conventions present.
	page := httpGet(t, inf.PortalURL()+"/metrics")
	if lintErrs := obs.LintExposition(strings.NewReader(string(page)), obs.ConventionFamilies()...); len(lintErrs) != 0 {
		for _, e := range lintErrs {
			t.Errorf("exposition lint: %v", e)
		}
	}
	for _, fam := range []string{"prof_captures_total", "prof_ring_captures", "prof_incidents"} {
		if !strings.Contains(string(page), fam) {
			t.Errorf("metrics page missing %s family", fam)
		}
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return body
}
