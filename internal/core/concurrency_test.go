package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/radius"
)

// TestConcurrentRadiusValidationStorm drives a login storm through the
// assembled infrastructure: many users validating at once through the
// RADIUS farm. Every fresh code must be accepted (distinct users never
// contend on shared validation state), and a replayed code rejected.
func TestConcurrentRadiusValidationStorm(t *testing.T) {
	inf := newInfra(t, Options{LockoutThreshold: 1000})
	sim := inf.Clock.(*clock.Sim)

	const users = 12
	secrets := make([][]byte, users)
	for i := 0; i < users; i++ {
		name := fmt.Sprintf("storm%02d", i)
		if _, err := inf.CreateUser(name, name+"@hpc.example", "pw", idm.ClassUser); err != nil {
			t.Fatal(err)
		}
		enr, err := inf.PairSoft(name)
		if err != nil {
			t.Fatal(err)
		}
		secrets[i] = enr.Secret
	}

	exchange := func(user, code string) (*radius.Packet, error) {
		return inf.Pool.Exchange(func(req *radius.Packet) {
			req.AddString(radius.AttrUserName, user)
			hidden, err := radius.HidePassword(code, inf.Pool.Secret(), req.Authenticator)
			if err != nil {
				t.Error(err)
				return
			}
			req.Add(radius.AttrUserPassword, hidden)
		})
	}

	var wg sync.WaitGroup
	codes := make([]string, users)
	for i := 0; i < users; i++ {
		code, err := otp.TOTP(secrets[i], sim.Now(), inf.OTP.OTPOptions())
		if err != nil {
			t.Fatal(err)
		}
		codes[i] = code
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := exchange(fmt.Sprintf("storm%02d", i), codes[i])
			if err != nil {
				t.Errorf("storm%02d: %v", i, err)
				return
			}
			if resp.Code != radius.AccessAccept {
				t.Errorf("storm%02d: code = %v, want Access-Accept", i, resp.Code)
			}
		}(i)
	}
	wg.Wait()

	// Replays of the now-consumed codes must all be rejected.
	for i := 0; i < users; i++ {
		resp, err := exchange(fmt.Sprintf("storm%02d", i), codes[i])
		if err != nil {
			t.Fatal(err)
		}
		if resp.Code != radius.AccessReject {
			t.Errorf("storm%02d replay: code = %v, want Access-Reject", i, resp.Code)
		}
	}
}

// TestOptionsPlumbing checks the new knobs reach their components.
func TestOptionsPlumbing(t *testing.T) {
	o := otp.DefaultTOTPOptions()
	o.Digits = otp.EightDigits
	inf := newInfra(t, Options{
		LockoutThreshold:      3,
		OTP:                   o,
		RadiusDedupWindow:     time.Second,
		RadiusMaxDedupEntries: 16,
	})
	if got := inf.OTP.OTPOptions().Digits; got != otp.EightDigits {
		t.Fatalf("Digits = %d, want 8", got)
	}
	if _, err := inf.CreateUser("trip", "t@x", "pw", idm.ClassUser); err != nil {
		t.Fatal(err)
	}
	if _, err := inf.PairSoft("trip"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		inf.OTP.Check("trip", "00000000")
	}
	ti, err := inf.OTP.Token("trip")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Active {
		t.Fatal("token still active after LockoutThreshold=3 failures")
	}
	for _, rs := range inf.RadiusFarm() {
		if rs.DedupWindow != time.Second || rs.MaxDedupEntries != 16 {
			t.Fatalf("farm member dedup config = (%v, %d)", rs.DedupWindow, rs.MaxDedupEntries)
		}
	}
}
