package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/faultnet"
	"openmfa/internal/idm"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
	"openmfa/internal/otp"
	"openmfa/internal/otpd"
	"openmfa/internal/sshd"
	"openmfa/internal/store/repl"
)

// TestLeaderFailoverUnderLoginStorm is the replication capstone: two full
// otpd deployments — a leader with synchronous replication (MinSync=1)
// and a standby following it — take a login storm, the replication link
// is partitioned with faultnet, the leader is killed mid-storm, and the
// standby is promoted. The two invariants a failover must keep:
//
//   - no OTP is ever accepted twice: every code the dead leader accepted
//     must bounce off the promoted standby's replay protection, because
//     MinSync=1 means acceptance waited for the consumption to replicate;
//   - no lockout count is lost: failures accrued on the dead leader must
//     still count on the standby, so an attacker cannot reset their
//     budget by waiting for a failover.
func TestLeaderFailoverUnderLoginStorm(t *testing.T) {
	leakcheck.Check(t)
	sim := clock.NewSim(t0)
	key := []byte("0123456789abcdef0123456789abcdef") // shared: sealed secrets must replicate
	reg1 := obs.NewRegistry()
	reg2 := obs.NewRegistry()
	chaos := faultnet.New(faultnet.Config{Seed: 2024, Obs: reg2})

	// Leader deployment. Built directly (not via newInfra) because the
	// test kills it mid-storm; the sync.Once keeps the deferred cleanup
	// from double-closing.
	inf1, err := New(Options{
		Clock:            sim,
		Obs:              reg1,
		EncryptionKey:    key,
		LockoutThreshold: 5,
		RadiusTimeout:    750 * time.Millisecond, // must outlast the sync gate below
		ReplListen:       "127.0.0.1:0",
		ReplMinSync:      1,
		ReplSyncTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	killLeader := func() { once.Do(func() { inf1.Close() }) }
	defer killLeader()
	replAddr := inf1.ReplLeader.Addr()

	// Standby deployment: same key, same threshold, its replication dial
	// routed through the fault layer so the link can be partitioned.
	inf2 := newInfra(t, Options{
		Clock:            sim,
		Obs:              reg2,
		FaultNet:         chaos,
		EncryptionKey:    key,
		LockoutThreshold: 5,
		ReplFollow:       replAddr,
	})
	waitUntil(t, "standby connected", func() bool { return inf1.ReplLeader.Followers() == 1 })

	// Accounts exist on both deployments (IDM is per-site state); tokens
	// are enrolled only on the leader — the standby must get them via
	// replication. The standby's own store refuses local enrolment.
	users := []string{"storm0", "storm1", "storm2", "fresh0", "fresh1", "lockme"}
	secrets := map[string][]byte{}
	for _, u := range users {
		if _, err := inf1.CreateUser(u, u+"@x", "pw", idm.ClassUser); err != nil {
			t.Fatal(err)
		}
		if _, err := inf2.CreateUser(u, u+"@x", "pw", idm.ClassUser); err != nil {
			t.Fatal(err)
		}
		enr, err := inf1.PairSoft(u)
		if err != nil {
			t.Fatal(err)
		}
		if err := inf2.IDM.SetPairing(u, idm.PairingSoft); err != nil {
			t.Fatal(err)
		}
		secrets[u] = enr.Secret
	}
	if _, err := inf2.PairSoft("storm0"); err == nil {
		t.Fatal("standby accepted a local enrolment; follower fencing is off")
	}
	code := func(user string) string {
		c, _ := otp.TOTP(secrets[user], sim.Now(), inf1.OTP.OTPOptions())
		return c
	}
	login := func(addr, user, code string) error {
		r := &sshd.FuncResponder{}
		r.Fn = func(echo bool, prompt string) (string, error) {
			if strings.Contains(prompt, "Password") {
				return "pw", nil
			}
			return code, nil
		}
		c, err := sshd.Dial(addr, DialOpts(user, r))
		if err != nil {
			return err
		}
		defer c.Close()
		out, err := c.Exec("whoami")
		if err != nil {
			return err
		}
		if out != user {
			return fmt.Errorf("exec returned %q", out)
		}
		return nil
	}

	// Phase 1 — healthy storm. Every accepted login's consumed counter is
	// on the standby before the login returns (MinSync=1). The clock is
	// never advanced again, so each accepted code stays time-valid for the
	// replay attempt in phase 3: only replay protection can reject it.
	accepted := map[string]string{}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, u := range []string{"storm0", "storm1", "storm2"} {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			c := code(u)
			if err := login(inf1.SSHAddr(), u, c); err != nil {
				t.Errorf("healthy login %s: %v", u, err)
				return
			}
			mu.Lock()
			accepted[u] = c
			mu.Unlock()
		}(u)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Four wrong codes for lockme: one short of the threshold, all
	// replicated synchronously.
	for i := 0; i < 4; i++ {
		res, err := inf1.OTP.Check("lockme", "000000")
		if err != nil || res.OK || res.LockedOut {
			t.Fatalf("lockme failure %d: res=%+v err=%v", i, res, err)
		}
	}
	if l1, l2 := inf1.OTPStore().LSN(), inf2.OTPStore().LSN(); l1 != l2 {
		t.Fatalf("standby lagging after synchronous storm: leader lsn %d, standby %d", l1, l2)
	}

	// Phase 2 — partition the replication link, then kill the leader in
	// the middle of a second storm. With the standby unreachable the sync
	// gate must fail every login closed: nothing is accepted that the
	// standby has not seen.
	chaos.Partition(replAddr)
	waitUntil(t, "leader lost its follower", func() bool { return inf1.ReplLeader.Followers() == 0 })
	if err := login(inf1.SSHAddr(), "fresh0", code("fresh0")); err == nil {
		t.Fatal("login accepted while the standby was partitioned away (MinSync gate is off)")
	}
	if v := reg1.Counter("repl_wait_timeouts_total").Value(); v == 0 {
		t.Fatal("sync gate never timed out during the partition")
	}
	stormErrs := make([]error, 4)
	for i := range stormErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u := fmt.Sprintf("fresh%d", i%2)
			stormErrs[i] = login(inf1.SSHAddr(), u, code(u))
		}(i)
	}
	time.Sleep(150 * time.Millisecond) // mid-storm...
	killLeader()                       // ...the leader dies
	wg.Wait()
	for i, err := range stormErrs {
		if err == nil {
			t.Fatalf("storm login %d accepted during partition/leader death", i)
		}
	}

	// Phase 3 — promote the standby: stop following, StartLeader on the
	// same store. The epoch bump (1 → 2) fences the dead leader's era and
	// re-enables local writes with no unfenced window in between.
	chaos.Heal(replAddr)
	inf2.ReplFollower.Stop()
	promoted, err := repl.StartLeader(inf2.OTPStore(), repl.LeaderOptions{Addr: "127.0.0.1:0", Obs: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	if e := inf2.OTPStore().Epoch(); e != 2 {
		t.Fatalf("promoted epoch = %d, want 2", e)
	}

	// Zero double-accepted OTPs: every code the dead leader accepted is
	// still time-valid, and the promoted standby must reject each one on
	// its replicated consumption mark alone.
	for u, c := range accepted {
		if err := login(inf2.SSHAddr(), u, c); err == nil {
			t.Fatalf("OTP for %s accepted twice across the failover", u)
		}
	}
	// The promoted node is a real leader, not a read-only husk: a code
	// that was never accepted anywhere (fresh0's phase-2 attempts all
	// failed closed) authenticates end to end through the standby stack.
	if err := login(inf2.SSHAddr(), "fresh0", code("fresh0")); err != nil {
		t.Fatalf("fresh login on promoted standby: %v", err)
	}

	// Zero lost lockout increments: the four failures from phase 1 plus
	// this one must cross the threshold of five exactly now.
	res, err := inf2.OTP.Check("lockme", "000000")
	if err != nil || !res.LockedOut {
		t.Fatalf("5th failure after failover: res=%+v err=%v (lockout count lost)", res, err)
	}
	if _, err := inf2.OTP.Check("lockme", code("lockme")); !errors.Is(err, otpd.ErrLockedOut) {
		t.Fatalf("locked-out user validated after failover: %v", err)
	}

	// The moving parts really moved: frames shipped and applied, and the
	// partition was injected by faultnet, not a coincidence.
	if v := reg1.Counter("repl_frames_shipped_total").Value(); v == 0 {
		t.Fatal("leader shipped no frames")
	}
	if v := reg2.Counter("repl_frames_applied_total").Value(); v == 0 {
		t.Fatal("standby applied no frames")
	}
	if v := reg2.Counter("faultnet_injected_total", "kind", "partition").Value(); v == 0 {
		t.Fatal("faultnet partition never hit the replication link")
	}
}

// waitUntil polls cond for up to 10 real seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
