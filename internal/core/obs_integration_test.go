package core

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/idm"
	"openmfa/internal/obs"
	"openmfa/internal/otp"
	"openmfa/internal/sshd"
)

// syncBuf is a goroutine-safe log sink the test can read back.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestObservabilityAcrossStack drives one real authentication through
// sshd → PAM → RADIUS → otpd and asserts the tentpole's two end-to-end
// properties: every layer logs the same trace ID, and the shared registry
// records per-stage latency and outcome counters for the login.
func TestObservabilityAcrossStack(t *testing.T) {
	reg := obs.NewRegistry()
	logs := &syncBuf{}
	inf := newInfra(t, Options{
		Obs:    reg,
		Logger: obs.NewLogger(logs, obs.LevelInfo),
	})
	sim := inf.Clock.(*clock.Sim)
	if _, err := inf.CreateUser("alice", "alice@x", "pw", idm.ClassUser); err != nil {
		t.Fatal(err)
	}
	enr, err := inf.PairSoft("alice")
	if err != nil {
		t.Fatal(err)
	}

	login := func() {
		t.Helper()
		r := &sshd.FuncResponder{}
		r.Fn = func(echo bool, prompt string) (string, error) {
			if strings.Contains(prompt, "Password") {
				return "pw", nil
			}
			code, _ := otp.TOTP(enr.Secret, sim.Now(), inf.OTP.OTPOptions())
			return code, nil
		}
		c, err := sshd.Dial(inf.SSHAddr(), DialOpts("alice", r))
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	login()

	// (a) One trace ID ties together the log lines of all four layers.
	out := logs.String()
	m := regexp.MustCompile(`component=sshd trace=([0-9a-f]{16})`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no sshd trace line in logs:\n%s", out)
	}
	trace := m[1]
	for _, component := range []string{"sshd", "pam", "radius", "otpd"} {
		want := fmt.Sprintf("component=%s trace=%s", component, trace)
		if !strings.Contains(out, want) {
			t.Errorf("no %s log line with trace %s:\n%s", component, trace, out)
		}
	}

	// (b) The shared registry saw the login at every stage.
	type histCheck struct {
		name   string
		labels []string
	}
	for _, h := range []histCheck{
		{"sshd_auth_duration_seconds", nil},
		{"pam_module_duration_seconds", []string{"module", "pam_mfa_token"}},
		{"radius_request_duration_seconds", nil},
		{"radius_client_exchange_duration_seconds", nil},
		{"otpd_check_duration_seconds", []string{"result", "ok"}},
	} {
		if n := reg.Histogram(h.name, nil, h.labels...).Count(); n == 0 {
			t.Errorf("histogram %s %v: count = 0, want > 0", h.name, h.labels)
		}
	}
	counters := map[string]*obs.Counter{
		"sshd accept":   reg.Counter("sshd_auth_total", "result", "accept"),
		"pam granted":   reg.Counter("pam_stack_total", "service", "sshd", "outcome", "granted"),
		"radius accept": reg.Counter("radius_requests_total", "result", "accept"),
		"otpd ok":       reg.Counter("otpd_check_total", "result", "ok"),
	}
	for name, c := range counters {
		if c.Value() != 1 {
			t.Errorf("%s counter = %d after first login, want 1", name, c.Value())
		}
	}

	// A second login moves every accept counter by exactly one. The sim
	// clock must leave the first login's TOTP step (success consumed it).
	sim.Set(sim.Now().Add(31 * time.Second))
	login()
	for name, c := range counters {
		if c.Value() != 2 {
			t.Errorf("%s counter = %d after second login, want 2", name, c.Value())
		}
	}

	// (c) The portal serves the shared registry over HTTP.
	resp, err := http.Get(inf.PortalURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		`sshd_auth_total{result="accept"} 2`,
		`radius_requests_total{result="accept"} 2`,
		"sshd_auth_duration_seconds_count",
		"otpd_check_duration_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("portal /metrics missing %q", want)
		}
	}
	resp, err = http.Get(inf.PortalURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
}
