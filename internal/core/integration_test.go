package core

import (
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/sshd"
)

// TestPortalPairThenSSHLogin drives the complete §3.5 user journey over
// real HTTP and the SSH-substitute wire: register → log in to the portal →
// get redirected to the splash → pair a soft token by "scanning" the QR →
// confirm with a code → log in to the login node with MFA.
func TestPortalPairThenSSHLogin(t *testing.T) {
	inf := newInfra(t, Options{})
	sim := inf.Clock.(*clock.Sim)
	if _, err := inf.CreateUser("grace", "grace@hpc.example", "pw", idm.ClassUser); err != nil {
		t.Fatal(err)
	}

	jar, _ := cookiejar.New(nil)
	browser := &http.Client{Jar: jar, CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	post := func(path string, form url.Values) (int, string) {
		resp, err := browser.PostForm(inf.PortalURL()+path, form)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Portal login: unpaired → splash redirect.
	status, _ := post("/login", url.Values{"username": {"grace"}, "password": {"pw"}})
	if status != http.StatusSeeOther {
		t.Fatalf("login status = %d", status)
	}

	// Start a soft pairing; the page carries the QR payload.
	status, body := post("/pair/start", url.Values{"type": {"soft"}})
	if status != 200 {
		t.Fatalf("pair start = %d %q", status, body)
	}
	state := regexp.MustCompile(`state: (\S+)`).FindStringSubmatch(body)
	uri := regexp.MustCompile(`QR payload: (\S+)`).FindStringSubmatch(body)
	if state == nil || uri == nil {
		t.Fatalf("pair page missing state/uri: %q", body)
	}
	// The rendered QR symbol itself must be on the page.
	if !strings.Contains(body, "██") {
		t.Fatal("no QR symbol rendered on the pairing page")
	}

	// "Scan" the QR and confirm with the app's current code.
	key, err := otp.ParseURI(uri[1])
	if err != nil {
		t.Fatal(err)
	}
	code, _ := otp.TOTP(key.Secret, sim.Now(), key.Options)
	status, body = post("/pair/confirm", url.Values{"state": {state[1]}, "code": {code}})
	if status != 200 || !strings.Contains(body, "paired: soft") {
		t.Fatalf("confirm = %d %q", status, body)
	}

	// The pairing is now visible to the PAM LDAP lookup: SSH login
	// demands the token and admits with it.
	sim.Advance(31 * time.Second)
	r := &sshd.FuncResponder{}
	sawToken := false
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		sawToken = true
		c, _ := otp.TOTP(key.Secret, sim.Now(), key.Options)
		return c, nil
	}
	c, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "grace", TTY: true, Responder: r})
	if err != nil {
		t.Fatalf("ssh login after portal pairing failed: %v", err)
	}
	c.Close()
	if !sawToken {
		t.Fatal("token never prompted after pairing")
	}

	// Unpair through the portal (possession proof) and verify full-mode
	// SSH now denies.
	sim.Advance(31 * time.Second)
	code2, _ := otp.TOTP(key.Secret, sim.Now(), key.Options)
	status, body = post("/unpair/confirm", url.Values{"code": {code2}})
	if status != 200 {
		t.Fatalf("unpair = %d %q", status, body)
	}
	if _, err := sshd.Dial(inf.SSHAddr(), sshd.DialOptions{User: "grace", Responder: r}); err == nil {
		t.Fatal("unpaired user admitted in full mode")
	}
}
