// Package core assembles the complete MFA infrastructure the paper
// describes: identity management and directory, the OTP platform with its
// digest-protected admin REST API, a farm of RADIUS servers behind a
// round-robin pool, the exemption list, the Figure 1 PAM stack, the
// SSH-substitute login node, the SMS gateway, and the user portal — wired
// exactly as in §3's architecture (PAM → RADIUS → otpd; portal → admin
// REST → otpd; otpd → SMS gateway → phones).
//
// It is the library's top-level entry point: examples, the cmd/ binaries,
// and the rollout simulator all build on an Infrastructure.
package core

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"openmfa/internal/accessctl"
	"openmfa/internal/authlog"
	"openmfa/internal/authwatch"
	"openmfa/internal/clock"
	"openmfa/internal/cryptoutil"
	"openmfa/internal/directory"
	"openmfa/internal/eventstream"
	"openmfa/internal/faultnet"
	"openmfa/internal/flightrec"
	"openmfa/internal/httpdigest"
	"openmfa/internal/idm"
	"openmfa/internal/obs"
	"openmfa/internal/obs/prof"
	"openmfa/internal/obs/slo"
	"openmfa/internal/otp"
	"openmfa/internal/otpd"
	"openmfa/internal/pam"
	"openmfa/internal/portal"
	"openmfa/internal/radius"
	"openmfa/internal/risk"
	"openmfa/internal/sms"
	"openmfa/internal/sshd"
	"openmfa/internal/store"
	"openmfa/internal/store/repl"
)

// Options configures New. The zero value is a working in-memory deployment
// with two RADIUS servers and full enforcement.
type Options struct {
	// Clock drives every component; nil means real time.
	Clock clock.Sleeper
	// DataDir persists the stores on disk; empty means in-memory.
	DataDir string
	// EncryptionKey seals OTP secrets; nil generates a random key.
	EncryptionKey []byte
	// RadiusServers is the size of the RADIUS farm ("a handful of
	// servers", §3.2); zero means 2.
	RadiusServers int
	// RadiusDedupWindow overrides each farm member's RFC 2865 §2
	// duplicate-detection window; zero keeps the 5-second default.
	RadiusDedupWindow time.Duration
	// RadiusMaxDedupEntries caps each farm member's dedup cache; zero
	// keeps radius.DefaultMaxDedupEntries, negative means unbounded.
	RadiusMaxDedupEntries int
	// LockoutThreshold overrides the otpd failure-deactivation
	// threshold; zero keeps the paper's default of 20.
	LockoutThreshold int
	// OTP overrides the TOTP parameters; zero fields keep the
	// deployment defaults (see otpd.Config.OTP).
	OTP otp.TOTPOptions
	// ExemptionRules is the initial accessctl configuration.
	ExemptionRules string
	// Mode is the initial token-module enforcement mode; empty means
	// full.
	Mode pam.Mode
	// Deadline/InfoURL configure countdown mode.
	Deadline time.Time
	InfoURL  string
	// Banner is the sshd pre-auth banner.
	Banner string
	// Carrier overrides the SMS delivery model.
	Carrier *sms.CarrierModel
	// Seed makes SMS delivery deterministic.
	Seed int64
	// Email captures portal out-of-band mail; nil discards it.
	Email portal.EmailSender
	// Obs, when set, is the shared metrics registry every layer records
	// into (sshd, PAM, RADIUS server/client, otpd, portal). nil disables
	// metrics at a cost of one pointer test per site.
	Obs *obs.Registry
	// Logger, when set, receives structured trace-tagged log lines from
	// every layer.
	Logger *obs.Logger
	// Spans, when set, records one span per leg of every login (sshd
	// conversation, PAM modules, RADIUS round trip, otpd check), all
	// linked by the connection's trace ID.
	Spans *obs.SpanStore
	// Events, when set, is the operational analytics bus every layer
	// publishes typed auth events onto (login results, MFA outcomes, SMS
	// sends, lockouts, enrolments).
	Events *eventstream.Bus
	// Risk, when set, is the adaptive-MFA engine (DESIGN.md §14): the PAM
	// stack gains a risk gate after password verification (skip the second
	// factor for low-risk established logins, force it despite exemptions
	// on elevated risk, deny outright on critical risk), and the login
	// node feeds every outcome back into the engine's feature store. The
	// caller constructs it (typically with the shared Obs and Events) and
	// owns its lifecycle.
	Risk *risk.Engine
	// Watch, when set, is mounted on the portal's ops endpoints: its
	// /debug/authwatch handler joins the portal mux (requires Obs) and its
	// alert state degrades the portal /healthz. The caller attaches the
	// watcher to Events and owns its lifecycle.
	Watch *authwatch.Watcher
	// FlightRec, when set, is mounted on the portal's ops endpoints at
	// /debug/flightrec. The caller constructs the recorder over Events,
	// Spans, and an optional LogTee, and owns its lifecycle (Stop).
	FlightRec *flightrec.Recorder
	// SLO, when set, is mounted at /debug/slo and its Health check joins
	// the portal /healthz (a page-severity fast burn degrades the
	// deployment). The caller registers objectives and owns the
	// evaluation cadence (Evaluate or Start/Stop).
	SLO *slo.Engine
	// Prof, when set, is mounted at /debug/prof and /debug/prof/capture
	// on the portal's ops endpoints: the continuous profiler + incident
	// engine. The caller registers triggers (typically against SLO.Health,
	// Watch.Health, and OTPStore().Err) and owns the lifecycle
	// (Start/Stop).
	Prof *prof.Engine
	// FaultNet, when set, routes every network hop through the fault
	// injection layer: RADIUS datagrams (client dials and server sockets)
	// and the login node's TCP listener. Chaos tests use it to model
	// degraded networks; nil means the real network.
	FaultNet *faultnet.Network
	// RadiusTimeout is each pool member's per-attempt timeout; zero
	// means 2 seconds.
	RadiusTimeout time.Duration
	// RadiusRetries is each member's retransmit budget, with
	// radius.Client sentinel semantics (zero keeps 1 retry here,
	// radius.NoRetry means single-shot).
	RadiusRetries int
	// SSHAuthTimeout / SSHIdleTimeout / SSHMaxConns pass through to the
	// login node (sshd.Server sentinel semantics; zero keeps its
	// defaults).
	SSHAuthTimeout time.Duration
	SSHIdleTimeout time.Duration
	SSHMaxConns    int
	// StoreShards is the shard count for each backing store (rounded up to
	// a power of two, capped at store.MaxShards); zero picks the
	// GOMAXPROCS-scaled default. Existing data directories keep their
	// persisted count.
	StoreShards int
	// StoreSync fsyncs every committed batch in the on-disk stores.
	StoreSync bool
	// StoreGroupCommit coalesces concurrent committers into shared fsyncs
	// when StoreSync is set.
	StoreGroupCommit bool
	// CoalesceWrites batches concurrent otpd record saves into shared WAL
	// frames (one frame per burst instead of one per login); composes
	// with StoreGroupCommit, which only shares the fsyncs.
	CoalesceWrites bool
	// ReplListen makes this deployment the replication leader for the
	// otpd store: it bumps the persisted fencing epoch and streams
	// committed WAL frames to followers on this TCP address. Mutually
	// exclusive with ReplFollow.
	ReplListen string
	// ReplFollow makes this deployment a standby: the otpd store is put
	// into follower mode (local writes refused, reads stay live) and
	// replays the leader's log from this address. Promotion is a restart
	// with ReplListen set (or repl.StartLeader on the same store).
	ReplFollow string
	// ReplMinSync is the number of follower acknowledgements a leader
	// requires before a commit returns (synchronous replication). Zero
	// ships asynchronously. Only meaningful with ReplListen.
	ReplMinSync int
	// ReplSyncTimeout bounds the ReplMinSync wait; past it the write —
	// and therefore the login consuming the OTP — fails closed. Zero
	// keeps the repl default (2s).
	ReplSyncTimeout time.Duration
}

// ModeSwitch is a mutable pam.ConfigProvider: operators flip enforcement
// tiers during production ("any of these modes may be set during
// production operation").
type ModeSwitch struct {
	mu  sync.Mutex
	cfg pam.TokenConfig
}

// TokenConfig implements pam.ConfigProvider.
func (m *ModeSwitch) TokenConfig() pam.TokenConfig {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg
}

// Set replaces the configuration.
func (m *ModeSwitch) Set(cfg pam.TokenConfig) {
	m.mu.Lock()
	m.cfg = cfg
	m.mu.Unlock()
}

// SetMode changes only the enforcement mode.
func (m *ModeSwitch) SetMode(mode pam.Mode) {
	m.mu.Lock()
	m.cfg.Mode = mode
	m.mu.Unlock()
}

// Infrastructure is the running deployment.
type Infrastructure struct {
	Clock   clock.Sleeper
	IDM     *idm.IDM
	Dir     *directory.Dir
	OTP     *otpd.Server
	AuthLog *authlog.Log
	ACL     *accessctl.List
	Pool    *radius.Pool
	Stack   *pam.Stack
	SSHD    *sshd.Server
	SMS     *sms.Gateway
	Portal  *portal.Portal
	Mode    *ModeSwitch
	Admin   *otpd.AdminClient
	// Obs is the shared registry (Options.Obs, or the nil no-op).
	Obs *obs.Registry
	// Spans is the shared span store (Options.Spans; nil disables tracing).
	Spans *obs.SpanStore
	// Events is the analytics bus (Options.Events; nil disables events).
	Events *eventstream.Bus
	// ReplLeader / ReplFollower are the otpd store's replication
	// endpoints when Options.ReplListen / ReplFollow were set; nil
	// otherwise. Chaos tests reach through them to kill a leader or
	// promote a standby.
	ReplLeader   *repl.Leader
	ReplFollower *repl.Follower

	radiusServers []*radius.Server
	dirServer     *directory.Server
	adminHTTP     *http.Server
	portalHTTP    *http.Server
	adminAddr     string
	portalAddr    string
	stores        []*store.Store
	otpStore      *store.Store
}

// OTPStore exposes the otpd backing store — the replicated one. A chaos
// harness (or an embedder promoting a standby in process) hands it to
// repl.StartLeader; everything else should go through inf.OTP.
func (inf *Infrastructure) OTPStore() *store.Store { return inf.otpStore }

// New builds and starts an Infrastructure.
func New(opts Options) (*Infrastructure, error) {
	clk := opts.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	key := opts.EncryptionKey
	if key == nil {
		key = cryptoutil.RandomBytes(32)
	}
	inf := &Infrastructure{Clock: clk, Obs: opts.Obs, Spans: opts.Spans, Events: opts.Events}

	newStore := func(name string) (*store.Store, error) {
		if opts.DataDir == "" {
			s := store.OpenMemoryShards(opts.StoreShards)
			inf.stores = append(inf.stores, s)
			return s, nil
		}
		s, err := store.Open(opts.DataDir+"/"+name, store.Options{
			Shards:      opts.StoreShards,
			Sync:        opts.StoreSync,
			GroupCommit: opts.StoreGroupCommit,
			Obs:         opts.Obs,
		})
		if err != nil {
			return nil, err
		}
		inf.stores = append(inf.stores, s)
		return s, nil
	}

	idmStore, err := newStore("idm")
	if err != nil {
		return nil, err
	}
	otpStore, err := newStore("otpd")
	if err != nil {
		return nil, err
	}
	inf.otpStore = otpStore

	// Replication endpoints for the otpd store (the one holding consumed
	// OTP counters and lockout counts — the state a failover must not
	// lose). Started before anything can write so a standby never sees an
	// un-fenced local commit.
	if opts.ReplListen != "" && opts.ReplFollow != "" {
		inf.Close()
		return nil, fmt.Errorf("core: ReplListen and ReplFollow are mutually exclusive")
	}
	if opts.ReplListen != "" {
		lo := repl.LeaderOptions{
			Addr:        opts.ReplListen,
			MinSync:     opts.ReplMinSync,
			SyncTimeout: opts.ReplSyncTimeout,
			Obs:         opts.Obs,
			Logger:      opts.Logger,
		}
		if opts.FaultNet != nil {
			lo.Listen = opts.FaultNet.Listen
		}
		inf.ReplLeader, err = repl.StartLeader(otpStore, lo)
		if err != nil {
			inf.Close()
			return nil, err
		}
	}
	if opts.ReplFollow != "" {
		fo := repl.FollowerOptions{
			Addr:   opts.ReplFollow,
			Obs:    opts.Obs,
			Logger: opts.Logger,
		}
		if opts.FaultNet != nil {
			fo.Dial = opts.FaultNet.Dial
		}
		inf.ReplFollower, err = repl.StartFollower(otpStore, fo)
		if err != nil {
			inf.Close()
			return nil, err
		}
	}

	inf.Dir = directory.New()
	inf.IDM = idm.New(idmStore, inf.Dir, clk)

	// SMS gateway with the default (or supplied) carrier model.
	carrier := sms.DefaultCarrier()
	if opts.Carrier != nil {
		carrier = *opts.Carrier
	}
	inf.SMS = sms.NewGateway(clk, carrier, opts.Seed)
	inf.SMS.Events = opts.Events

	inf.OTP, err = otpd.New(otpd.Config{
		DB:               otpStore,
		EncryptionKey:    key,
		Clock:            clk,
		Issuer:           "HPC",
		LockoutThreshold: opts.LockoutThreshold,
		OTP:              opts.OTP,
		CoalesceWrites:   opts.CoalesceWrites,
		Obs:              opts.Obs,
		Logger:           opts.Logger,
		Spans:            opts.Spans,
		Events:           opts.Events,
		SMS: otpd.SMSSenderFunc(func(phone, body string) error {
			_, err := inf.SMS.Send(phone, "512000", body)
			return err
		}),
	})
	if err != nil {
		return nil, err
	}

	inf.AuthLog, err = authlog.New("", 65536)
	if err != nil {
		return nil, err
	}

	rules, err := accessctl.Parse(opts.ExemptionRules)
	if err != nil {
		return nil, err
	}
	inf.ACL = accessctl.NewList(rules)

	// RADIUS farm.
	n := opts.RadiusServers
	if n == 0 {
		n = 2
	}
	secret := cryptoutil.RandomBytes(16)
	var addrs []string
	for i := 0; i < n; i++ {
		rs := &radius.Server{
			Secret:          secret,
			Handler:         &otpd.RadiusHandler{OTP: inf.OTP},
			DedupWindow:     opts.RadiusDedupWindow,
			MaxDedupEntries: opts.RadiusMaxDedupEntries,
			Obs:             opts.Obs,
			Logger:          opts.Logger,
			Events:          opts.Events,
			Now:             clk.Now,
		}
		if opts.FaultNet != nil {
			rs.ListenPacket = opts.FaultNet.ListenPacket
		}
		if err := rs.ListenAndServe("127.0.0.1:0"); err != nil {
			inf.Close()
			return nil, err
		}
		inf.radiusServers = append(inf.radiusServers, rs)
		addrs = append(addrs, rs.Addr().String())
	}
	radiusTimeout := opts.RadiusTimeout
	if radiusTimeout == 0 {
		radiusTimeout = 2 * time.Second
	}
	radiusRetries := opts.RadiusRetries
	if radiusRetries == 0 {
		radiusRetries = 1
	}
	inf.Pool = radius.NewPool(addrs, secret, radiusTimeout, radiusRetries)
	inf.Pool.Clock = clk
	inf.Pool.SetObs(opts.Obs)
	if opts.FaultNet != nil {
		inf.Pool.SetDial(opts.FaultNet.Dial)
	}

	// Directory service (network form, for components that want it).
	inf.dirServer = directory.NewServer(inf.Dir)
	if err := inf.dirServer.ListenAndServe("127.0.0.1:0"); err != nil {
		inf.Close()
		return nil, err
	}

	// Enforcement mode + PAM stack.
	mode := opts.Mode
	if mode == "" {
		mode = pam.ModeFull
	}
	inf.Mode = &ModeSwitch{}
	inf.Mode.Set(pam.TokenConfig{Mode: mode, Deadline: opts.Deadline, InfoURL: opts.InfoURL})
	scfg := pam.SSHDStackConfig{
		AuthLog:    inf.AuthLog,
		IDM:        inf.IDM,
		Exemptions: inf.ACL,
		TokenCfg:   inf.Mode,
		Pairing:    pam.LocalPairing{Dir: inf.Dir},
		Radius:     inf.Pool,
	}
	if opts.Risk != nil {
		inf.Stack = pam.NewSSHDStackWithRisk(scfg, opts.Risk, nil)
	} else {
		inf.Stack = pam.NewSSHDStack(scfg)
	}

	// Login node.
	inf.SSHD = &sshd.Server{
		IDM: inf.IDM, AuthLog: inf.AuthLog, Stack: inf.Stack,
		Risk:  opts.Risk,
		Clock: clk, Banner: opts.Banner,
		Obs: opts.Obs, Logger: opts.Logger,
		Spans: opts.Spans, Events: opts.Events,
		AuthTimeout: opts.SSHAuthTimeout,
		IdleTimeout: opts.SSHIdleTimeout,
		MaxConns:    opts.SSHMaxConns,
	}
	if opts.FaultNet != nil {
		inf.SSHD.Listen = opts.FaultNet.Listen
	}
	if err := inf.SSHD.ListenAndServe("127.0.0.1:0"); err != nil {
		inf.Close()
		return nil, err
	}

	// otpd admin REST API with digest credentials for the portal.
	adminPass := cryptoutil.RandomHex(16)
	api := &otpd.AdminAPI{
		OTP:   inf.OTP,
		Realm: "otpd-admin",
		Creds: httpdigest.StaticCredentials{
			"portal": httpdigest.HA1("portal", "otpd-admin", adminPass),
		},
	}
	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		inf.Close()
		return nil, err
	}
	inf.adminAddr = adminLn.Addr().String()
	inf.adminHTTP = &http.Server{Handler: api.Handler()}
	go inf.adminHTTP.Serve(adminLn)

	inf.Admin = &otpd.AdminClient{
		BaseURL:  "http://" + inf.adminAddr,
		Username: "portal",
		Password: adminPass,
	}

	// Portal.
	email := opts.Email
	if email == nil {
		email = portal.EmailFunc(func(string, string, string) error { return nil })
	}
	pcfg := portal.Config{
		IDM:        inf.IDM,
		Admin:      inf.Admin,
		Email:      email,
		Clock:      clk,
		SessionKey: cryptoutil.RandomBytes(32),
		BaseURL:    "", // filled after listen
		Obs:        opts.Obs,
		Events:     opts.Events,
	}
	if opts.Watch != nil {
		pcfg.HealthChecks = append(pcfg.HealthChecks, opts.Watch.Health)
		pcfg.ExtraMounts = append(pcfg.ExtraMounts, opts.Watch.Mount)
	}
	if opts.FlightRec != nil {
		pcfg.ExtraMounts = append(pcfg.ExtraMounts, opts.FlightRec.Mount)
	}
	if opts.SLO != nil {
		pcfg.HealthChecks = append(pcfg.HealthChecks, opts.SLO.Health)
		pcfg.ExtraMounts = append(pcfg.ExtraMounts, opts.SLO.Mount)
	}
	if opts.Prof != nil {
		pcfg.ExtraMounts = append(pcfg.ExtraMounts, opts.Prof.Mount)
	}
	if inf.ReplLeader != nil {
		pcfg.ExtraMounts = append(pcfg.ExtraMounts, inf.ReplLeader.Mount)
	}
	p, err := portal.New(pcfg)
	if err != nil {
		inf.Close()
		return nil, err
	}
	inf.Portal = p
	portalLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		inf.Close()
		return nil, err
	}
	inf.portalAddr = portalLn.Addr().String()
	inf.portalHTTP = &http.Server{Handler: p.Handler()}
	go inf.portalHTTP.Serve(portalLn)

	return inf, nil
}

// SSHAddr is the login node's address.
func (inf *Infrastructure) SSHAddr() string { return inf.SSHD.Addr().String() }

// PortalURL is the portal's base URL.
func (inf *Infrastructure) PortalURL() string { return "http://" + inf.portalAddr }

// AdminURL is the otpd admin API base URL.
func (inf *Infrastructure) AdminURL() string { return "http://" + inf.adminAddr }

// DirAddr is the directory service address.
func (inf *Infrastructure) DirAddr() string { return inf.dirServer.Addr().String() }

// RadiusAddrs lists the RADIUS farm addresses.
func (inf *Infrastructure) RadiusAddrs() []string { return inf.Pool.Servers() }

// RadiusFarm exposes the individual RADIUS servers, e.g. for failure
// injection in examples and chaos tests.
func (inf *Infrastructure) RadiusFarm() []*radius.Server { return inf.radiusServers }

// CreateUser registers an account.
func (inf *Infrastructure) CreateUser(username, email, password string, class idm.AccountClass) (*idm.Account, error) {
	return inf.IDM.Create(username, email, password, class)
}

// PairSoft provisions a soft token for user and records the pairing, the
// non-HTTP equivalent of the portal flow (used by simulations and CLIs).
func (inf *Infrastructure) PairSoft(user string) (*otpd.Enrollment, error) {
	enr, err := inf.OTP.InitSoftToken(user)
	if err != nil {
		return nil, err
	}
	if err := inf.IDM.SetPairing(user, idm.PairingSoft); err != nil {
		return nil, err
	}
	return enr, nil
}

// PairSMS provisions an SMS token, registering the phone on the virtual
// network.
func (inf *Infrastructure) PairSMS(user, phone string) (*otpd.Enrollment, *sms.Phone, error) {
	ph, err := inf.SMS.Register(phone)
	if err != nil {
		return nil, nil, err
	}
	enr, err := inf.OTP.InitSMSToken(user, phone)
	if err != nil {
		return nil, nil, err
	}
	if err := inf.IDM.SetPairing(user, idm.PairingSMS); err != nil {
		return nil, nil, err
	}
	return enr, ph, nil
}

// PairHard assigns an imported fob by serial.
func (inf *Infrastructure) PairHard(user, serial string) (*otpd.Enrollment, error) {
	enr, err := inf.OTP.AssignHardToken(user, serial)
	if err != nil {
		return nil, err
	}
	if err := inf.IDM.SetPairing(user, idm.PairingHard); err != nil {
		return nil, err
	}
	return enr, nil
}

// PairTraining provisions a static training token.
func (inf *Infrastructure) PairTraining(user, code string) error {
	if err := inf.OTP.SetStaticToken(user, code); err != nil {
		return err
	}
	return inf.IDM.SetPairing(user, idm.PairingTraining)
}

// Unpair removes a pairing (admin-side; the portal's flows add possession
// proof on top of this).
func (inf *Infrastructure) Unpair(user string) error {
	if err := inf.OTP.RemoveToken(user); err != nil {
		return err
	}
	return inf.IDM.SetPairing(user, idm.PairingNone)
}

// Close shuts everything down.
func (inf *Infrastructure) Close() error {
	if inf.SSHD != nil {
		inf.SSHD.Close()
	}
	for _, rs := range inf.radiusServers {
		rs.Close()
	}
	if inf.dirServer != nil {
		inf.dirServer.Close()
	}
	if inf.adminHTTP != nil {
		inf.adminHTTP.Close()
	}
	if inf.portalHTTP != nil {
		inf.portalHTTP.Close()
	}
	// Replication detaches before the stores close: a leader must stop
	// streaming (and fail any MinSync waiters) and a follower must stop
	// applying before Close fsyncs and releases the segments.
	if inf.ReplLeader != nil {
		inf.ReplLeader.Close()
	}
	if inf.ReplFollower != nil {
		inf.ReplFollower.Stop()
	}
	var firstErr error
	for _, s := range inf.stores {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// String summarises the deployment.
func (inf *Infrastructure) String() string {
	return fmt.Sprintf("openmfa infrastructure: sshd=%s portal=%s otpd-admin=%s radius=%v",
		inf.SSHAddr(), inf.PortalURL(), inf.AdminURL(), inf.RadiusAddrs())
}
