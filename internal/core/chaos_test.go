package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/faultnet"
	"openmfa/internal/idm"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
	"openmfa/internal/otp"
	"openmfa/internal/sshd"
)

// TestAuthUnderChaos is the capstone degraded-network test: a full
// sshd → PAM → RADIUS → otpd login storm with 30% datagram loss, every
// datagram duplicated, and one of the two RADIUS backends partitioned
// away. Every login must either succeed or fail closed within a bounded
// time; a wrong code must never get in; and the whole stack must come
// back down without leaking goroutines.
func TestAuthUnderChaos(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	chaos := faultnet.New(faultnet.Config{
		Seed:     1809,
		Obs:      reg,
		DropRate: 0.30,
		DupRate:  1.0, // every surviving datagram sent twice
	})
	inf := newInfra(t, Options{
		Obs:            reg,
		FaultNet:       chaos,
		RadiusServers:  2,
		RadiusTimeout:  250 * time.Millisecond,
		RadiusRetries:  5,
		SSHAuthTimeout: 30 * time.Second,
	})
	sim := inf.Clock.(*clock.Sim)

	// Blackhole the second backend: client datagrams to it vanish and
	// dials to it fail, so the pool must mark it down and carry the whole
	// storm on the surviving server.
	addrs := inf.RadiusAddrs()
	chaos.Partition(addrs[1])

	const users = 4
	type account struct {
		name string
		code func() string
	}
	accounts := make([]account, users)
	for i := range accounts {
		name := fmt.Sprintf("chaos%d", i)
		if _, err := inf.CreateUser(name, name+"@x", "pw", idm.ClassUser); err != nil {
			t.Fatal(err)
		}
		enr, err := inf.PairSoft(name)
		if err != nil {
			t.Fatal(err)
		}
		secret := enr.Secret
		accounts[i] = account{name: name, code: func() string {
			c, _ := otp.TOTP(secret, sim.Now(), inf.OTP.OTPOptions())
			return c
		}}
	}

	login := func(user string, code func() string) error {
		r := &sshd.FuncResponder{}
		r.Fn = func(echo bool, prompt string) (string, error) {
			if strings.Contains(prompt, "Password") {
				return "pw", nil
			}
			return code(), nil
		}
		c, err := sshd.Dial(inf.SSHAddr(), DialOpts(user, r))
		if err != nil {
			return err
		}
		defer c.Close()
		out, err := c.Exec("whoami")
		if err != nil {
			return err
		}
		if out != user {
			return fmt.Errorf("exec under chaos returned %q", out)
		}
		return nil
	}

	const rounds = 3
	var successes, failures int
	for round := 0; round < rounds; round++ {
		// Fresh TOTP window each round so replay protection does not
		// reject codes the previous round consumed.
		sim.Advance(90 * time.Second)

		var wg sync.WaitGroup
		errs := make([]error, users)
		took := make([]time.Duration, users)
		for i, a := range accounts {
			wg.Add(1)
			go func(i int, a account) {
				defer wg.Done()
				start := time.Now()
				errs[i] = login(a.name, a.code)
				took[i] = time.Since(start)
			}(i, a)
		}
		// A forged code rides along with every storm round and must
		// always bounce off the stack, chaos or not.
		if err := login(accounts[0].name, func() string { return "000000" }); err == nil {
			t.Fatal("wrong code authenticated under chaos")
		}
		wg.Wait()

		for i := range errs {
			// Bounded latency: worst case is the retransmit budget on
			// the healthy server plus a fast dial failure on the
			// partitioned one, far under the 20 s ceiling.
			if took[i] > 20*time.Second {
				t.Fatalf("round %d login %d took %v", round, i, took[i])
			}
			if errs[i] == nil {
				successes++
			} else {
				failures++
				t.Logf("round %d: %s failed closed: %v", round, accounts[i].name, errs[i])
			}
		}
	}

	total := rounds * users
	if successes+failures != total {
		t.Fatalf("accounted for %d of %d logins", successes+failures, total)
	}
	// With 5 retransmits against 30% loss in each direction, a login
	// failing is a ~2% event; requiring half to land keeps the test
	// deterministic in practice while proving the degraded path works.
	if successes < total/2 {
		t.Fatalf("only %d/%d logins survived the chaos", successes, total)
	}

	// The fault layer really was in the datagram path...
	if v := reg.Counter("faultnet_injected_total", "kind", "drop").Value(); v == 0 {
		t.Fatal("no datagrams dropped")
	}
	if v := reg.Counter("faultnet_injected_total", "kind", "dup").Value(); v == 0 {
		t.Fatal("no datagrams duplicated")
	}
	// ...and the partitioned backend was actually exercised and skipped.
	if v := reg.Counter("faultnet_injected_total", "kind", "partition").Value(); v == 0 {
		t.Fatal("partitioned backend never hit")
	}
}
