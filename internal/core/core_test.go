package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/idm"
	"openmfa/internal/otp"
	"openmfa/internal/pam"
	"openmfa/internal/sshd"
)

var t0 = time.Date(2016, 10, 4, 8, 0, 0, 0, time.UTC)

func newInfra(t testing.TB, opts Options) *Infrastructure {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = clock.NewSim(t0)
	}
	inf, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inf.Close() })
	return inf
}

func TestEndToEndSSHLoginThroughFullInfrastructure(t *testing.T) {
	inf := newInfra(t, Options{Banner: "welcome to the hpc system"})
	sim := inf.Clock.(*clock.Sim)
	if _, err := inf.CreateUser("alice", "alice@x", "pw", idm.ClassUser); err != nil {
		t.Fatal(err)
	}
	enr, err := inf.PairSoft("alice")
	if err != nil {
		t.Fatal(err)
	}
	code := func() string {
		c, _ := otp.TOTP(enr.Secret, sim.Now(), inf.OTP.OTPOptions())
		return c
	}
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		return code(), nil
	}
	c, err := sshd.Dial(inf.SSHAddr(), DialOpts("alice", r))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Banner != "welcome to the hpc system" {
		t.Fatalf("banner = %q", c.Banner)
	}
	out, err := c.Exec("whoami")
	if err != nil || out != "alice" {
		t.Fatalf("exec = %q, %v", out, err)
	}
}

// DialOpts is a tiny test helper.
func DialOpts(user string, r sshd.Responder) sshd.DialOptions {
	return sshd.DialOptions{User: user, TTY: true, Responder: r}
}

func TestSMSLoginThroughVirtualCarrier(t *testing.T) {
	inf := newInfra(t, Options{})
	sim := inf.Clock.(*clock.Sim)
	inf.CreateUser("storm", "s@x", "pw", idm.ClassStaff)
	_, phone, err := inf.PairSMS("storm", "5125551234")
	if err != nil {
		t.Fatal(err)
	}
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		// Wait for the text message to arrive; the carrier sleeps on
		// the sim clock, so nudge it forward.
		ch := phone.Wait()
		for i := 0; i < 100; i++ {
			select {
			case m := <-ch:
				f := strings.Fields(m.Body)
				return f[len(f)-1], nil
			default:
				sim.Advance(time.Second)
				time.Sleep(time.Millisecond)
			}
		}
		return "", errors.New("sms never arrived")
	}
	c, err := sshd.Dial(inf.SSHAddr(), DialOpts("storm", r))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if got := len(phone.Inbox()); got != 1 {
		t.Fatalf("inbox = %d", got)
	}
	cost := inf.SMS.Cost()
	if cost.Messages != 1 {
		t.Fatalf("billed messages = %d", cost.Messages)
	}
}

func TestModeSwitchDuringProduction(t *testing.T) {
	inf := newInfra(t, Options{Mode: pam.ModePaired})
	inf.CreateUser("u", "u@x", "pw", idm.ClassUser)
	pwOnly := &sshd.FuncResponder{}
	pwOnly.Fn = func(echo bool, prompt string) (string, error) { return "pw", nil }
	// Paired mode: unpaired user enters with just the password.
	c, err := sshd.Dial(inf.SSHAddr(), DialOpts("u", pwOnly))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Flip to full enforcement live.
	inf.Mode.SetMode(pam.ModeFull)
	if _, err := sshd.Dial(inf.SSHAddr(), DialOpts("u", pwOnly)); !errors.Is(err, sshd.ErrDenied) {
		t.Fatalf("full mode err = %v", err)
	}
}

func TestHardTokenLifecycleViaFacade(t *testing.T) {
	inf := newInfra(t, Options{})
	sim := inf.Clock.(*clock.Sim)
	inf.CreateUser("hanlon", "h@x", "pw", idm.ClassStaff)
	secret := []byte("fob-secret-1234-----")
	if err := inf.OTP.ImportHardToken("C200-7777", secret); err != nil {
		t.Fatal(err)
	}
	if _, err := inf.PairHard("hanlon", "C200-7777"); err != nil {
		t.Fatal(err)
	}
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		c, _ := otp.TOTP(secret, sim.Now(), inf.OTP.OTPOptions())
		return c, nil
	}
	c, err := sshd.Dial(inf.SSHAddr(), DialOpts("hanlon", r))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Unpair and confirm the account drops back to single factor checks
	// failing (full mode denies unpaired).
	if err := inf.Unpair("hanlon"); err != nil {
		t.Fatal(err)
	}
	if p, _ := inf.IDM.Pairing("hanlon"); p != idm.PairingNone {
		t.Fatal("pairing not cleared")
	}
}

func TestTrainingAccountStaticCode(t *testing.T) {
	inf := newInfra(t, Options{})
	inf.CreateUser("train01", "t@x", "pw", idm.ClassTraining)
	if err := inf.PairTraining("train01", "424242"); err != nil {
		t.Fatal(err)
	}
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		return "424242", nil
	}
	// The whole workshop logs in with the same static code, repeatedly.
	for i := 0; i < 3; i++ {
		c, err := sshd.Dial(inf.SSHAddr(), DialOpts("train01", r))
		if err != nil {
			t.Fatalf("workshop login %d failed: %v", i, err)
		}
		c.Close()
	}
}

func TestExemptionRulesAtConstruction(t *testing.T) {
	inf := newInfra(t, Options{ExemptionRules: "permit : gw : ALL : ALL"})
	inf.CreateUser("gw", "g@x", "pw", idm.ClassGateway)
	pwOnly := &sshd.FuncResponder{}
	pwOnly.Fn = func(echo bool, prompt string) (string, error) { return "pw", nil }
	c, err := sshd.Dial(inf.SSHAddr(), DialOpts("gw", pwOnly))
	if err != nil {
		t.Fatalf("exempt gateway denied: %v", err)
	}
	c.Close()
}

func TestPortalReachableWithinInfrastructure(t *testing.T) {
	inf := newInfra(t, Options{})
	if !strings.HasPrefix(inf.PortalURL(), "http://127.0.0.1") {
		t.Fatalf("portal url = %q", inf.PortalURL())
	}
	if !strings.HasPrefix(inf.AdminURL(), "http://127.0.0.1") {
		t.Fatalf("admin url = %q", inf.AdminURL())
	}
	// The admin client the facade built must round-trip digest auth
	// against the admin API.
	inf.CreateUser("x", "x@x", "pw", idm.ClassUser)
	enr, err := inf.Admin.Init("x", "soft", "", "")
	if err != nil {
		t.Fatalf("admin init via REST failed: %v", err)
	}
	if enr.Secret == "" || enr.URI == "" {
		t.Fatalf("enrollment = %+v", enr)
	}
	// Duplicate init surfaces the HTTP conflict as an APIError.
	if _, err := inf.Admin.Init("x", "soft", "", ""); err == nil {
		t.Fatal("duplicate init accepted")
	}
}

func TestRadiusFailoverInsideFacade(t *testing.T) {
	inf := newInfra(t, Options{RadiusServers: 2})
	sim := inf.Clock.(*clock.Sim)
	inf.CreateUser("u", "u@x", "pw", idm.ClassUser)
	enr, _ := inf.PairSoft("u")
	// Kill one RADIUS server; logins must still succeed via the pool.
	inf.radiusServers[0].Close()
	r := &sshd.FuncResponder{}
	r.Fn = func(echo bool, prompt string) (string, error) {
		if strings.Contains(prompt, "Password") {
			return "pw", nil
		}
		c, _ := otp.TOTP(enr.Secret, sim.Now(), inf.OTP.OTPOptions())
		return c, nil
	}
	c, err := sshd.Dial(inf.SSHAddr(), DialOpts("u", r))
	if err != nil {
		t.Fatalf("login with one dead RADIUS server failed: %v", err)
	}
	c.Close()
}

func TestStringSummary(t *testing.T) {
	inf := newInfra(t, Options{})
	s := inf.String()
	if !strings.Contains(s, "sshd=") || !strings.Contains(s, "radius=") {
		t.Fatalf("String() = %q", s)
	}
}
