package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: openmfa/internal/radius
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEncode-8   	19225830	        59.80 ns/op	       0 B/op	       0 allocs/op
BenchmarkExchange-8 	   28135	     42749 ns/op	    6513 B/op	      73 allocs/op
PASS
ok  	openmfa/internal/radius	1.952s
pkg: openmfa/internal/store
BenchmarkApplyParallel/shards=4-8         	  759058	      1456 ns/op	     354 B/op	       5 allocs/op
BenchmarkGroupCommitSync-8                	    1200	    995432 ns/op	  12.50 syncs/op	     210 B/op	       3 allocs/op
ok  	openmfa/internal/store	3.1s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.GoOS != "linux" || s.GoArch != "amd64" || !strings.Contains(s.CPU, "Xeon") {
		t.Fatalf("header = %q/%q/%q", s.GoOS, s.GoArch, s.CPU)
	}
	if len(s.Results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(s.Results))
	}

	enc := s.Find("Encode")
	if enc == nil {
		t.Fatal("Encode missing")
	}
	if enc.Pkg != "openmfa/internal/radius" || enc.Procs != 8 ||
		enc.Iterations != 19225830 || enc.NsPerOp != 59.80 ||
		enc.BytesPerOp != 0 || enc.AllocsPerOp != 0 {
		t.Fatalf("Encode = %+v", enc)
	}

	// Sub-benchmark: the /shards=4 segment survives, the -8 suffix goes,
	// and the pkg header from the second package applies.
	ap := s.Find("ApplyParallel/shards=4")
	if ap == nil {
		t.Fatal("ApplyParallel/shards=4 missing")
	}
	if ap.Pkg != "openmfa/internal/store" || ap.AllocsPerOp != 5 {
		t.Fatalf("ApplyParallel = %+v", ap)
	}

	// Custom metric from b.ReportMetric lands in Metrics.
	gc := s.Find("GroupCommitSync")
	if gc == nil {
		t.Fatal("GroupCommitSync missing")
	}
	if gc.Metrics["syncs/op"] != 12.5 {
		t.Fatalf("syncs/op = %v", gc.Metrics["syncs/op"])
	}
}

func TestParseNoBenchmem(t *testing.T) {
	s, err := Parse(strings.NewReader("BenchmarkX \t 100 \t 5.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Find("X")
	if r == nil {
		t.Fatal("X missing")
	}
	if r.Procs != 1 || r.AllocsPerOp != -1 || r.NsPerOp != 5.0 {
		t.Fatalf("X = %+v", r)
	}
}

func TestParseRejectsCorruptLine(t *testing.T) {
	for _, in := range []string{
		"BenchmarkY-8 notanumber 5.0 ns/op\n",
		"BenchmarkY-8 100 5.0 ns/op 3\n", // dangling value without unit
		"BenchmarkY-8 100 zz ns/op\n",    // bad value
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in   string
		name string
		n    int
	}{
		{"Encode-8", "Encode", 8},
		{"Encode", "Encode", 1},
		{"Apply/shards=4-16", "Apply/shards=4", 16},
		{"Apply/n-1/sub", "Apply/n-1/sub", 1}, // dash inside a middle segment
		{"Weird-", "Weird-", 1},
		{"Trailing-word", "Trailing-word", 1},
	}
	for _, c := range cases {
		name, n := splitProcs(c.in)
		if name != c.name || n != c.n {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", c.in, name, n, c.name, c.n)
		}
	}
}
