// Package benchfmt parses the text output of `go test -bench -benchmem`
// into a structured form so the perf trajectory can be recorded as JSON
// (BENCH_*.json) and diffed across PRs instead of eyeballed in CI logs.
//
// The format parsed is the de-facto standard benchmark line:
//
//	BenchmarkEncode-8   19225830   59.80 ns/op   0 B/op   0 allocs/op
//
// plus the `pkg:`, `goos:`, `goarch:`, and `cpu:` header lines `go test`
// prints per package. Custom metrics reported with b.ReportMetric parse the
// same way (value unit pairs); everything lands in Result.Metrics keyed by
// unit, with the three standard units mirrored into named fields.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Pkg is the import path from the most recent pkg: header, empty if
	// the output carried none (e.g. a single-package run piped through
	// grep).
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix; sub-benchmark path segments are
	// kept ("ApplyParallel/shards=4").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp mirror the standard units.
	// AllocsPerOp is -1 when the run lacked -benchmem.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds every value/unit pair on the line, including the
	// standard three and any b.ReportMetric extras.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Set is a parsed benchmark run.
type Set struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"benchmarks"`
}

// Parse consumes go test -bench output. Unrecognised lines (PASS, ok,
// test log noise) are skipped; a line that starts like a benchmark result
// but fails to parse is an error, so silent corruption cannot produce an
// empty-but-plausible trajectory file.
func Parse(r io.Reader) (*Set, error) {
	s := &Set{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "goos: "):
			s.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
		case strings.HasPrefix(line, "goarch: "):
			s.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
		case strings.HasPrefix(line, "cpu: "):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line, pkg)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: line %d: %w", ln, err)
			}
			s.Results = append(s.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return s, nil
}

func parseLine(line, pkg string) (Result, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	name, procs := splitProcs(strings.TrimPrefix(f[0], "Benchmark"))
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations %q: %v", f[1], err)
	}
	res := Result{
		Pkg: pkg, Name: name, Procs: procs, Iterations: iters,
		AllocsPerOp: -1,
		Metrics:     make(map[string]float64),
	}
	rest := f[2:]
	if len(rest)%2 != 0 {
		return Result{}, fmt.Errorf("odd value/unit tail in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("value %q: %v", rest[i], err)
		}
		unit := rest[i+1]
		res.Metrics[unit] = v
		switch unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	return res, nil
}

// splitProcs strips a trailing -GOMAXPROCS from the last path segment
// ("ApplyParallel/shards=4-8" → "ApplyParallel/shards=4", 8). A trailing
// -N is only treated as a procs suffix when N parses as an integer, so
// names that merely end in a dash-word survive.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || strings.ContainsRune(name[i:], '/') {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// Find returns the first result whose name matches exactly, or nil.
func (s *Set) Find(name string) *Result {
	for i := range s.Results {
		if s.Results[i].Name == name {
			return &s.Results[i]
		}
	}
	return nil
}
