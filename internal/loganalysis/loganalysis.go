// Package loganalysis reproduces the §4.1 information-gathering pipeline:
// "a script was installed throughout major systems to create a log event
// upon successful entry with explicit information pertaining to the user's
// current shell properties and whether a terminal session (TTY) had been
// initiated ... Users were ranked by the number of log in events in a
// fixed time period. Any known gateway or community accounts ... were
// filtered out and contacted separately. ... staff members ... served as
// threshold cutoffs. Any user more active in log ins than this threshold
// were separated out to be targeted for inquiry."
package loganalysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"openmfa/internal/authlog"
)

// UserActivity aggregates one user's login events.
type UserActivity struct {
	User   string
	Logins int
	TTY    int
	NonTTY int
	Shells map[string]int
	First  time.Time
	Last   time.Time
}

// NonTTYFraction reports the share of scripted (no-terminal) entries.
func (u UserActivity) NonTTYFraction() float64 {
	if u.Logins == 0 {
		return 0
	}
	return float64(u.NonTTY) / float64(u.Logins)
}

// Report is the aggregated view over a log window.
type Report struct {
	From, To time.Time
	Users    map[string]*UserActivity
	Total    int
}

// Analyze aggregates successful session-open events within [from, to].
func Analyze(events []authlog.Event, from, to time.Time) *Report {
	r := &Report{From: from, To: to, Users: make(map[string]*UserActivity)}
	for _, e := range events {
		if e.Type != authlog.SessionOpen {
			continue
		}
		if e.Time.Before(from) || e.Time.After(to) {
			continue
		}
		u := r.Users[e.User]
		if u == nil {
			u = &UserActivity{User: e.User, Shells: make(map[string]int), First: e.Time}
			r.Users[e.User] = u
		}
		u.Logins++
		if e.TTY {
			u.TTY++
		} else {
			u.NonTTY++
		}
		if e.Shell != "" {
			u.Shells[e.Shell]++
		}
		if e.Time.Before(u.First) {
			u.First = e.Time
		}
		if e.Time.After(u.Last) {
			u.Last = e.Time
		}
		r.Total++
	}
	return r
}

// Ranked returns users ordered by descending login count (ties broken by
// name for determinism).
func (r *Report) Ranked() []*UserActivity {
	out := make([]*UserActivity, 0, len(r.Users))
	for _, u := range r.Users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Logins != out[j].Logins {
			return out[i].Logins > out[j].Logins
		}
		return out[i].User < out[j].User
	})
	return out
}

// StaffThreshold computes the cutoff: the highest login count among the
// given staff accounts. Staff "generally tend to be quite active on the
// systems" and so make a good reference point.
func (r *Report) StaffThreshold(staff map[string]bool) int {
	max := 0
	for name := range staff {
		if u, ok := r.Users[name]; ok && u.Logins > max {
			max = u.Logins
		}
	}
	return max
}

// Targets returns the accounts to contact: more active than the staff
// threshold, excluding known gateway/community accounts and staff
// themselves.
func (r *Report) Targets(threshold int, exclude map[string]bool) []*UserActivity {
	var out []*UserActivity
	for _, u := range r.Ranked() {
		if exclude[u.User] {
			continue
		}
		if u.Logins > threshold {
			out = append(out, u)
		}
	}
	return out
}

// AutomationShare reports what fraction of all logins came from the given
// subset, quantifying "a minority of users were responsible for the
// majority of entries."
func (r *Report) AutomationShare(subset []*UserActivity) float64 {
	if r.Total == 0 {
		return 0
	}
	n := 0
	for _, u := range subset {
		n += u.Logins
	}
	return float64(n) / float64(r.Total)
}

// NonTTYShare is the fraction of all logins without a terminal.
func (r *Report) NonTTYShare() float64 {
	if r.Total == 0 {
		return 0
	}
	n := 0
	for _, u := range r.Users {
		n += u.NonTTY
	}
	return float64(n) / float64(r.Total)
}

// Summary renders a human-readable report: the ranking table plus the
// headline shares.
func (r *Report) Summary(topN int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "login events %s – %s: %d total, %d users, %.0f%% non-TTY\n",
		r.From.Format("2006-01-02"), r.To.Format("2006-01-02"),
		r.Total, len(r.Users), 100*r.NonTTYShare())
	fmt.Fprintf(&sb, "%-4s %-16s %8s %6s %8s\n", "#", "user", "logins", "tty", "non-tty")
	for i, u := range r.Ranked() {
		if i >= topN {
			break
		}
		fmt.Fprintf(&sb, "%-4d %-16s %8d %6d %8d\n", i+1, u.User, u.Logins, u.TTY, u.NonTTY)
	}
	return sb.String()
}
