package loganalysis

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"openmfa/internal/authlog"
)

var (
	from = time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)
	to   = time.Date(2016, 7, 31, 23, 59, 59, 0, time.UTC)
)

func open(user string, tty bool, shell string, at time.Time) authlog.Event {
	return authlog.Event{Time: at, Type: authlog.SessionOpen, User: user,
		Addr: "1.2.3.4", TTY: tty, Shell: shell}
}

// synthetic population: one automated account dominating, staff, and a few
// interactive users.
func sampleEvents() []authlog.Event {
	var ev []authlog.Event
	at := from
	// robot: 500 scripted logins (the §4.1 signature).
	for i := 0; i < 500; i++ {
		ev = append(ev, open("robot", false, "/usr/bin/scp", at.Add(time.Duration(i)*time.Hour)))
	}
	// staffer: 60 logins, mixed.
	for i := 0; i < 60; i++ {
		ev = append(ev, open("staffer", i%2 == 0, "/bin/bash", at.Add(time.Duration(i)*3*time.Hour)))
	}
	// gateway: 800 logins but known, to be filtered.
	for i := 0; i < 800; i++ {
		ev = append(ev, open("gateway1", false, "/bin/sh", at.Add(time.Duration(i)*30*time.Minute)))
	}
	// casual interactive users.
	for u := 0; u < 10; u++ {
		for i := 0; i < 5; i++ {
			ev = append(ev, open(fmt.Sprintf("user%02d", u), true, "/bin/bash",
				at.Add(time.Duration(u*24+i)*time.Hour)))
		}
	}
	// Failed-password noise must be ignored.
	ev = append(ev, authlog.Event{Time: at, Type: authlog.FailedPassword, User: "robot", Addr: "x"})
	// Out-of-window events must be ignored.
	ev = append(ev, open("robot", false, "/bin/sh", to.Add(48*time.Hour)))
	return ev
}

func TestAnalyzeAggregation(t *testing.T) {
	r := Analyze(sampleEvents(), from, to)
	if r.Total != 500+60+800+50 {
		t.Fatalf("Total = %d", r.Total)
	}
	robot := r.Users["robot"]
	if robot == nil || robot.Logins != 500 || robot.NonTTY != 500 || robot.TTY != 0 {
		t.Fatalf("robot = %+v", robot)
	}
	if robot.Shells["/usr/bin/scp"] != 500 {
		t.Fatalf("robot shells = %v", robot.Shells)
	}
	if robot.NonTTYFraction() != 1.0 {
		t.Fatal("robot NonTTYFraction != 1")
	}
	staffer := r.Users["staffer"]
	if staffer.TTY != 30 || staffer.NonTTY != 30 {
		t.Fatalf("staffer = %+v", staffer)
	}
}

func TestRankingOrder(t *testing.T) {
	r := Analyze(sampleEvents(), from, to)
	ranked := r.Ranked()
	if ranked[0].User != "gateway1" || ranked[1].User != "robot" || ranked[2].User != "staffer" {
		t.Fatalf("top3 = %s %s %s", ranked[0].User, ranked[1].User, ranked[2].User)
	}
	// Ties broken deterministically by name.
	for i := 3; i < len(ranked)-1; i++ {
		if ranked[i].Logins == ranked[i+1].Logins && ranked[i].User > ranked[i+1].User {
			t.Fatal("tie order not deterministic")
		}
	}
}

func TestStaffThresholdAndTargets(t *testing.T) {
	r := Analyze(sampleEvents(), from, to)
	staff := map[string]bool{"staffer": true}
	threshold := r.StaffThreshold(staff)
	if threshold != 60 {
		t.Fatalf("threshold = %d", threshold)
	}
	// Known gateways and staff are excluded; only robot exceeds 60.
	exclude := map[string]bool{"gateway1": true, "staffer": true}
	targets := r.Targets(threshold, exclude)
	if len(targets) != 1 || targets[0].User != "robot" {
		t.Fatalf("targets = %+v", targets)
	}
	// "a minority of users were responsible for the majority of
	// entries": robot alone is >1/3 of all traffic here.
	if share := r.AutomationShare(targets); share < 0.3 {
		t.Fatalf("automation share = %.2f", share)
	}
}

func TestNonTTYShare(t *testing.T) {
	r := Analyze(sampleEvents(), from, to)
	// "The far majority of these log in events were not invoked with a
	// TTY."
	if s := r.NonTTYShare(); s < 0.9 {
		t.Fatalf("non-TTY share = %.2f", s)
	}
}

func TestSummaryRendering(t *testing.T) {
	r := Analyze(sampleEvents(), from, to)
	out := r.Summary(3)
	if !strings.Contains(out, "gateway1") || !strings.Contains(out, "robot") {
		t.Fatalf("summary = %q", out)
	}
	if strings.Contains(out, "user05") {
		t.Fatal("topN not honoured")
	}
}

func TestEmptyWindow(t *testing.T) {
	r := Analyze(nil, from, to)
	if r.Total != 0 || r.NonTTYShare() != 0 || r.AutomationShare(nil) != 0 {
		t.Fatal("empty report not zeroed")
	}
	if r.StaffThreshold(map[string]bool{"x": true}) != 0 {
		t.Fatal("threshold on empty report")
	}
}
