package otpd

import (
	"math"
	"os"
	"testing"

	"openmfa/internal/eventstream"
	"openmfa/internal/obs"
	"openmfa/internal/store"
)

// newSpanBenchServer is newBenchServer plus the span/event pipeline: a
// bounded span store and an event bus with one live (drained) subscriber,
// the shape a production otpd runs with authwatch attached.
func newSpanBenchServer(tb testing.TB, reg *obs.Registry, spans *obs.SpanStore, bus *eventstream.Bus) *Server {
	tb.Helper()
	srv, err := New(Config{
		DB:               store.OpenMemory(),
		EncryptionKey:    make([]byte, 32),
		LockoutThreshold: 1 << 30,
		Obs:              reg,
		Spans:            spans,
		Events:           bus,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := srv.InitSoftToken("bench"); err != nil {
		tb.Fatal(err)
	}
	return srv
}

// drainBus subscribes and discards on a goroutine, returning a stop func.
func drainBus(bus *eventstream.Bus) func() {
	sub := bus.Subscribe(1 << 12)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Events() {
		}
	}()
	return func() { sub.Close(); <-done }
}

// BenchmarkSpanEventOverhead compares otpd.Check with metrics only against
// the full observability pipeline (metrics + span store + event bus with a
// live subscriber). The enforced comparison lives in
// TestSpanEventOverheadGate.
func BenchmarkSpanEventOverhead(b *testing.B) {
	b.Run("metrics-only", func(b *testing.B) { benchCheck(b, obs.NewRegistry()) })
	b.Run("spans-events", func(b *testing.B) {
		bus := eventstream.NewBus(nil)
		stop := drainBus(bus)
		defer stop()
		srv := newSpanBenchServer(b, obs.NewRegistry(), obs.NewSpanStore(1<<14), bus)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err := srv.Check("bench", "00000"); err != nil || res.OK {
				b.Fatalf("check = %+v, %v (want deterministic failure)", res, err)
			}
		}
	})
}

// TestSpanEventOverheadGate enforces a 5% budget for the span + event
// pipeline on top of the metrics-instrumented Check hot path. Same
// methodology as TestObsOverheadGate (which gates metrics against bare):
// env-gated, ABBA-interleaved trials, min-of-trials per arm, and an
// over-budget reading must reproduce on every attempt to fail.
//
//	OBS_OVERHEAD_GATE=1 go test ./internal/otpd -run TestSpanEventOverheadGate
func TestSpanEventOverheadGate(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GATE") == "" {
		t.Skip("set OBS_OVERHEAD_GATE=1 (make bench-obs) to run the overhead gate")
	}
	const (
		trials   = 5
		attempts = 3
		budget   = 0.05
	)
	srvBase := newBenchServer(t, obs.NewRegistry())
	bus := eventstream.NewBus(nil)
	stop := drainBus(bus)
	defer stop()
	spans := obs.NewSpanStore(1 << 14)
	srvFull := newSpanBenchServer(t, obs.NewRegistry(), spans, bus)
	run := func(srv *Server) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				srv.Check("bench", "00000")
			}
		})
		return float64(r.NsPerOp())
	}
	run(srvBase) // warm-up: page in both paths before timing
	run(srvFull)
	if spans.Len() == 0 {
		t.Fatal("span store empty after warm-up: the instrumented arm is not recording spans")
	}
	measure := func() (base, full float64) {
		base, full = math.Inf(1), math.Inf(1)
		for i := 0; i < trials; i++ {
			if i%2 == 0 {
				base = math.Min(base, run(srvBase))
				full = math.Min(full, run(srvFull))
			} else {
				full = math.Min(full, run(srvFull))
				base = math.Min(base, run(srvBase))
			}
		}
		return base, full
	}
	overhead := 0.0
	for attempt := 1; attempt <= attempts; attempt++ {
		base, full := measure()
		overhead = (full - base) / base
		t.Logf("attempt %d: metrics-only %.0f ns/op, spans+events %.0f ns/op, overhead %.2f%%",
			attempt, base, full, 100*overhead)
		if overhead <= budget {
			return
		}
	}
	t.Errorf("span+event pipeline stayed more than %.0f%% slower than metrics-only across %d measurements (last: %.2f%%)",
		100*budget, attempts, 100*overhead)
}
