package otpd

import (
	"math"
	"os"
	"testing"

	"openmfa/internal/obs"
	"openmfa/internal/store"
)

// newBenchServer builds an otpd with one paired soft token. A huge lockout
// threshold keeps the deterministic-failure hot path open for the whole
// run (a five-digit code can never match a six-digit TOTP, so Check always
// takes the failure branch and never consumes a code).
func newBenchServer(tb testing.TB, reg *obs.Registry) *Server {
	tb.Helper()
	srv, err := New(Config{
		DB:               store.OpenMemory(),
		EncryptionKey:    make([]byte, 32),
		LockoutThreshold: 1 << 30,
		Obs:              reg,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := srv.InitSoftToken("bench"); err != nil {
		tb.Fatal(err)
	}
	return srv
}

func benchCheck(b *testing.B, reg *obs.Registry) {
	srv := newBenchServer(b, reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err := srv.Check("bench", "00000"); err != nil || res.OK {
			b.Fatalf("check = %+v, %v (want deterministic failure)", res, err)
		}
	}
}

// BenchmarkObsOverhead compares otpd.Check with and without the metrics
// registry attached. The instrumented path must stay within 5% of the
// uninstrumented one (pre-resolved handles, atomic-only hot path); the
// enforced comparison lives in TestObsOverheadGate.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("uninstrumented", func(b *testing.B) { benchCheck(b, nil) })
	b.Run("instrumented", func(b *testing.B) { benchCheck(b, obs.NewRegistry()) })
}

// TestObsOverheadGate enforces the 5% budget. It is env-gated so plain
// `go test ./...` (and -race runs) stay fast and timing-noise-free:
//
//	OBS_OVERHEAD_GATE=1 go test ./internal/otpd -run TestObsOverheadGate
//
// which is what `make bench-obs` runs. The two arms are ABBA-interleaved
// so machine-wide drift (frequency scaling, noisy neighbors) hits both
// equally, each arm is summarized by the minimum of its trials — the
// least-noise estimator of true cost — and a measurement that lands over
// budget is repeated: only a regression that exceeds the budget on every
// attempt fails the gate. The true instrumentation cost is a couple of
// map lookups plus atomics (~1% of a ~30µs Check), so a real >5% reading
// reproduces; a noise spike does not.
func TestObsOverheadGate(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GATE") == "" {
		t.Skip("set OBS_OVERHEAD_GATE=1 (make bench-obs) to run the overhead gate")
	}
	const (
		trials   = 5
		attempts = 3
		budget   = 0.05
	)
	srvBase := newBenchServer(t, nil)
	srvInst := newBenchServer(t, obs.NewRegistry())
	run := func(srv *Server) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				srv.Check("bench", "00000")
			}
		})
		return float64(r.NsPerOp())
	}
	run(srvBase) // warm-up: page in both paths before timing
	run(srvInst)
	measure := func() (base, inst float64) {
		base, inst = math.Inf(1), math.Inf(1)
		for i := 0; i < trials; i++ {
			if i%2 == 0 {
				base = math.Min(base, run(srvBase))
				inst = math.Min(inst, run(srvInst))
			} else {
				inst = math.Min(inst, run(srvInst))
				base = math.Min(base, run(srvBase))
			}
		}
		return base, inst
	}
	overhead := 0.0
	for attempt := 1; attempt <= attempts; attempt++ {
		base, inst := measure()
		overhead = (inst - base) / base
		t.Logf("attempt %d: uninstrumented %.0f ns/op, instrumented %.0f ns/op, overhead %.2f%%",
			attempt, base, inst, 100*overhead)
		if overhead <= budget {
			return
		}
	}
	t.Errorf("instrumented Check stayed more than %.0f%% slower than uninstrumented across %d measurements (last: %.2f%%)",
		100*budget, attempts, 100*overhead)
}
