package otpd

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"strings"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/cryptoutil"
	"openmfa/internal/eventstream"
	"openmfa/internal/obs"
	"openmfa/internal/otp"
	"openmfa/internal/store"
	"openmfa/internal/syncutil"
)

// SMSSender delivers a token code out of band. The production wiring uses
// the sms.Gateway; tests can substitute a function.
type SMSSender interface {
	SendSMS(phone, body string) error
}

// SMSSenderFunc adapts a function to SMSSender.
type SMSSenderFunc func(phone, body string) error

// SendSMS calls f.
func (f SMSSenderFunc) SendSMS(phone, body string) error { return f(phone, body) }

// Config configures a Server.
type Config struct {
	// DB is the backing store (required).
	DB *store.Store
	// EncryptionKey seals token secrets at rest (16/24/32 bytes,
	// required).
	EncryptionKey []byte
	// AuditKey signs the audit chain; defaults to EncryptionKey.
	AuditKey []byte
	// Clock defaults to the real clock.
	Clock clock.Clock
	// SMS delivers SMS codes; required only if SMS tokens are used.
	SMS SMSSender
	// LockoutThreshold defaults to DefaultLockoutThreshold (20).
	// Negative values are rejected by New.
	LockoutThreshold int
	// OTP holds the TOTP parameters. Zero fields are filled
	// individually from the deployment defaults (6 digits / 30 s /
	// SHA-1 / ±300 s); explicitly set fields are kept. A negative Skew
	// is normalised to zero (no drift tolerance); a period under one
	// second or an out-of-range digit count or algorithm is rejected.
	OTP otp.TOTPOptions
	// Issuer labels otpauth URIs; defaults to "HPC".
	Issuer string
	// Obs, when set, receives validation/SMS counters and latency
	// histograms. Handles are resolved once in New so the Check hot path
	// costs only atomic operations.
	Obs *obs.Registry
	// Logger, when set, receives a structured line per validation
	// (component=otpd) carrying the trace ID from the request context.
	Logger *obs.Logger
	// Spans, when set, records an otpd.check span per validation under
	// the request context's trace ID (the back-end leg of the login's
	// span tree; it joins the sshd/pam legs through the shared trace).
	Spans *obs.SpanStore
	// Events, when set, receives typed auth events (SMS sends, lockouts,
	// token enrolments) on the operational analytics bus.
	Events *eventstream.Bus
	// CoalesceWrites routes record saves through a store.Batcher so
	// concurrent validations share WAL frames (and fsyncs) instead of
	// logging one frame per login. Safe because each save touches only
	// that user's record and callers never depend on another in-flight
	// caller's write being excluded from their frame.
	CoalesceWrites bool
}

// recordWriter is the store surface record saves go through: either the
// Store itself or a coalescing Batcher in front of it.
type recordWriter interface {
	Put(key string, value []byte) error
}

// Server is the OTP platform.
type Server struct {
	db        *store.Store
	writes    recordWriter
	box       *cryptoutil.Box
	clk       clock.Clock
	sms       SMSSender
	opts      otp.TOTPOptions
	issuer    string
	threshold int
	audit     *Audit

	// users serialises per-user state transitions (fail counter,
	// replay high-water mark, SMS activity, enrolment) without
	// serialising distinct users behind one mutex: the table is striped
	// by a hash of the lowercased username, so validations for
	// different users proceed in parallel across cores.
	users *syncutil.StripedMutex
	// serials guards the hard-token inventory the same way, keyed by
	// fob serial (AssignHardToken races ImportHardToken and other
	// assignments for the same serial).
	serials *syncutil.StripedMutex

	// secrets caches decrypted token secrets so the validation hot path
	// skips the AES-GCM unseal; entries are keyed to the sealed
	// ciphertext and explicitly invalidated on enrolment changes.
	secrets *secretCache

	met    otpdMetrics
	logger *obs.Logger
	spans  *obs.SpanStore
	events *eventstream.Bus
}

// otpdMetrics holds pre-resolved handles so the validation hot path never
// takes the registry's lookup lock. All fields are nil (no-op) when no
// registry is configured.
type otpdMetrics struct {
	checkDur map[string]*obs.Histogram // by result class
	checkTot map[string]*obs.Counter
	lockouts *obs.Counter
	smsDur   *obs.Histogram
	smsTot   map[string]*obs.Counter
}

// checkResultClasses are the label values otpd_check_* metrics use.
var checkResultClasses = []string{"ok", "invalid", "locked_out", "error"}

func newOtpdMetrics(reg *obs.Registry) otpdMetrics {
	var m otpdMetrics
	if reg == nil {
		return m
	}
	m.checkDur = make(map[string]*obs.Histogram)
	m.checkTot = make(map[string]*obs.Counter)
	for _, res := range checkResultClasses {
		m.checkDur[res] = reg.Histogram("otpd_check_duration_seconds", nil, "result", res)
		m.checkTot[res] = reg.Counter("otpd_check_total", "result", res)
	}
	m.lockouts = reg.Counter("otpd_lockouts_total")
	m.smsDur = reg.Histogram("otpd_sms_duration_seconds", nil)
	m.smsTot = make(map[string]*obs.Counter)
	for _, res := range []string{"sent", "suppressed", "error"} {
		m.smsTot[res] = reg.Counter("otpd_sms_total", "result", res)
	}
	return m
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("otpd: Config.DB required")
	}
	box, err := cryptoutil.NewBox(cfg.EncryptionKey)
	if err != nil {
		return nil, fmt.Errorf("otpd: bad encryption key: %w", err)
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	opts, err := normalizeOTPOptions(cfg.OTP)
	if err != nil {
		return nil, err
	}
	if cfg.LockoutThreshold < 0 {
		return nil, fmt.Errorf("otpd: negative LockoutThreshold %d", cfg.LockoutThreshold)
	}
	threshold := cfg.LockoutThreshold
	if threshold == 0 {
		threshold = DefaultLockoutThreshold
	}
	issuer := cfg.Issuer
	if issuer == "" {
		issuer = "HPC"
	}
	auditKey := cfg.AuditKey
	if auditKey == nil {
		auditKey = cfg.EncryptionKey
	}
	var writes recordWriter = cfg.DB
	if cfg.CoalesceWrites {
		writes = store.NewBatcher(cfg.DB, 0)
	}
	return &Server{
		db: cfg.DB, writes: writes, box: box, clk: clk, sms: cfg.SMS, opts: opts,
		issuer: issuer, threshold: threshold,
		audit:   NewAudit(auditKey, clk.Now),
		users:   syncutil.NewStriped(0),
		serials: syncutil.NewStriped(0),
		secrets: newSecretCache(),
		met:     newOtpdMetrics(cfg.Obs),
		logger:  cfg.Logger,
		spans:   cfg.Spans,
		events:  cfg.Events,
	}, nil
}

// publish emits an auth event stamped with the server clock (so simulated
// deployments aggregate on simulated time). No-op without a bus.
func (s *Server) publish(e eventstream.Event) {
	if s.events == nil {
		return
	}
	e.Time = s.clk.Now()
	e.Component = "otpd"
	s.events.Publish(e)
}

// normalizeOTPOptions fills zero fields with the deployment defaults —
// field by field, so a caller who sets only Digits still gets the default
// period and drift window — and rejects values the validation path cannot
// run with.
func normalizeOTPOptions(o otp.TOTPOptions) (otp.TOTPOptions, error) {
	def := otp.DefaultTOTPOptions()
	if o.Period == 0 {
		o.Period = def.Period
	}
	if o.Period < time.Second {
		return o, fmt.Errorf("otpd: OTP period %v must be at least 1s", o.Period)
	}
	if o.Digits == 0 {
		o.Digits = def.Digits
	}
	if !o.Digits.Valid() {
		return o, fmt.Errorf("otpd: %w (got %d)", otp.ErrInvalidDigits, int(o.Digits))
	}
	switch o.Algorithm {
	case otp.SHA1, otp.SHA256, otp.SHA512:
	default:
		return o, fmt.Errorf("otpd: unknown OTP algorithm %v", o.Algorithm)
	}
	if o.Skew == 0 {
		o.Skew = def.Skew
	} else if o.Skew < 0 {
		o.Skew = 0 // explicit "no drift tolerance"
	}
	return o, nil
}

// Audit exposes the audit log.
func (s *Server) Audit() *Audit { return s.audit }

// OTPOptions returns the validation parameters in force.
func (s *Server) OTPOptions() otp.TOTPOptions { return s.opts }

// Enrollment is returned by Init* calls; it carries the material the
// portal needs to finish pairing.
type Enrollment struct {
	User   string
	Type   TokenType
	Secret []byte // nil for training tokens
	Serial string // hard tokens
	Phone  string // SMS tokens
	URI    string // otpauth:// URI (soft tokens: the QR payload)
}

// InitSoftToken provisions a fresh soft token for user. The secret is
// returned once (encoded in the QR the portal shows) and stored sealed.
func (s *Server) InitSoftToken(user string) (*Enrollment, error) {
	return s.initGenerated(user, TokenSoft, "", "")
}

// InitSMSToken provisions an SMS token tied to phone.
func (s *Server) InitSMSToken(user, phone string) (*Enrollment, error) {
	if phone == "" {
		return nil, errors.New("otpd: phone required for SMS token")
	}
	return s.initGenerated(user, TokenSMS, phone, "")
}

func (s *Server) initGenerated(user string, typ TokenType, phone, serial string) (*Enrollment, error) {
	user = strings.ToLower(user)
	if user == "" {
		return nil, errors.New("otpd: empty user")
	}
	s.users.Lock(user)
	defer s.users.Unlock(user)
	if s.db.Has(tokenKey(user)) {
		return nil, ErrHasToken
	}
	secret := cryptoutil.RandomBytes(20)
	r := &record{
		User: user, Type: typ, Phone: phone, Serial: serial,
		SecretSealed: s.sealSecret(user, secret),
		Active:       true,
		CreatedUnix:  s.clk.Now().Unix(),
	}
	if err := s.saveRecord(r); err != nil {
		return nil, err
	}
	s.secrets.invalidate(user)
	key := otp.Key{Issuer: s.issuer, Account: user, Secret: secret, Options: s.opts}
	s.audit.Record("init", user, "type="+string(typ), true)
	s.publish(eventstream.Event{
		Type: eventstream.TypeEnroll, User: user, Method: string(typ),
	})
	return &Enrollment{User: user, Type: typ, Secret: secret, Phone: phone, URI: key.URI()}, nil
}

// AssignHardToken pairs an inventory fob (by serial) to user.
func (s *Server) AssignHardToken(user, serial string) (*Enrollment, error) {
	user = strings.ToLower(user)
	// Lock order: user stripe, then serial stripe (ImportHardToken takes
	// only the serial stripe, so the order is never inverted).
	s.users.Lock(user)
	defer s.users.Unlock(user)
	s.serials.Lock(serial)
	defer s.serials.Unlock(serial)
	if s.db.Has(tokenKey(user)) {
		return nil, ErrHasToken
	}
	b, err := s.db.Get(hardInvKey(serial))
	if errors.Is(err, store.ErrNotFound) {
		return nil, ErrBadSerial
	}
	if err != nil {
		return nil, err
	}
	var inv hardInventory
	if err := unmarshal(b, &inv); err != nil {
		return nil, err
	}
	secret, err := s.box.Open(inv.SecretSealed, []byte("serial:"+serial))
	if err != nil {
		return nil, fmt.Errorf("otpd: inventory unseal: %w", err)
	}
	r := &record{
		User: user, Type: TokenHard, Serial: serial,
		SecretSealed: s.sealSecret(user, secret),
		Active:       true,
		CreatedUnix:  s.clk.Now().Unix(),
	}
	if err := s.saveRecord(r); err != nil {
		return nil, err
	}
	s.secrets.invalidate(user)
	if err := s.db.Delete(hardInvKey(serial)); err != nil {
		return nil, err
	}
	s.audit.Record("assign_hard", user, "serial="+serial, true)
	s.publish(eventstream.Event{
		Type: eventstream.TypeEnroll, User: user, Method: string(TokenHard),
		Detail: "serial=" + serial,
	})
	return &Enrollment{User: user, Type: TokenHard, Serial: serial}, nil
}

// SetStaticToken provisions (or reprovisions) a training account with a
// static six-digit code (§3.3: "LinOTP provides the capability to set a
// static, six-digit token code for individual accounts").
func (s *Server) SetStaticToken(user, code string) error {
	user = strings.ToLower(user)
	if len(code) != 6 || strings.TrimLeft(code, "0123456789") != "" {
		return ErrBadStatic
	}
	s.users.Lock(user)
	defer s.users.Unlock(user)
	r, err := s.loadRecord(user)
	created := false
	if errors.Is(err, ErrNoToken) {
		r = &record{User: user, Type: TokenTraining, Active: true, CreatedUnix: s.clk.Now().Unix()}
		created = true
	} else if err != nil {
		return err
	} else if r.Type != TokenTraining {
		return fmt.Errorf("otpd: %s has a %s token; remove it first", user, r.Type)
	}
	// "The static token codes are easily regenerated once the training
	// session is finished" — reprovisioning resets state.
	r.StaticSealed = s.box.Seal([]byte(code), []byte("static:"+user))
	r.FailCount = 0
	r.Active = true
	if err := s.saveRecord(r); err != nil {
		return err
	}
	s.audit.Record("set_static", user, "", true)
	if created {
		s.publish(eventstream.Event{
			Type: eventstream.TypeEnroll, User: user, Method: string(TokenTraining),
		})
	}
	return nil
}

// RemoveToken unpairs user's token.
func (s *Server) RemoveToken(user string) error {
	user = strings.ToLower(user)
	s.users.Lock(user)
	defer s.users.Unlock(user)
	if !s.db.Has(tokenKey(user)) {
		return ErrNoToken
	}
	if err := s.db.Delete(tokenKey(user)); err != nil {
		return err
	}
	s.secrets.invalidate(user)
	s.audit.Record("remove", user, "", true)
	return nil
}

// Token returns the admin view of user's token.
func (s *Server) Token(user string) (TokenInfo, error) {
	r, err := s.loadRecord(strings.ToLower(user))
	if err != nil {
		return TokenInfo{}, err
	}
	return r.info(), nil
}

// HasToken reports whether user has any token ("opt-in ... simply by a
// device pairing").
func (s *Server) HasToken(user string) bool {
	return s.db.Has(tokenKey(strings.ToLower(user)))
}

// Tokens lists every provisioned token.
func (s *Server) Tokens() []TokenInfo {
	var out []TokenInfo
	kvs, _ := s.db.Scan("token/")
	for _, kv := range kvs {
		var r record
		if err := unmarshal(kv.Value, &r); err == nil {
			out = append(out, r.info())
		}
	}
	return out
}

// CheckResult reports a validation outcome.
type CheckResult struct {
	OK      bool
	Message string
	// LockedOut is set when this attempt tripped (or found) the lockout.
	LockedOut bool
}

// Check validates a token code for user. Semantics per the paper:
//
//   - Success consumes the code: "the provided token code is nullified"
//     (§3.2) — a replayed counter is rejected.
//   - "In the event of a token mismatch, the token code remains valid and
//     a failure message is sent instead."
//   - 20 consecutive failures deactivate the token (§3.1); successes reset
//     the counter.
func (s *Server) Check(user, code string) (CheckResult, error) {
	return s.CheckCtx(context.Background(), user, code)
}

// CheckCtx is Check with a request context; the context's trace ID
// (obs.WithTrace) tags the structured log line so one login can be
// followed from sshd all the way into the validation back end.
func (s *Server) CheckCtx(ctx context.Context, user, code string) (CheckResult, error) {
	start := time.Now()
	_, span := s.spans.StartCtx(ctx, "otpd.check")
	res, err := s.check(user, code)
	class := checkClass(res, err)
	span.SetAttr("user", strings.ToLower(user))
	span.SetAttr("result", class)
	span.End()
	if s.met.checkTot != nil {
		s.met.checkTot[class].Inc()
		s.met.checkDur[class].ObserveSince(start)
		if res.LockedOut && err == nil {
			// This attempt tripped the lockout (later attempts against a
			// locked token return ErrLockedOut instead).
			s.met.lockouts.Inc()
		}
	}
	if res.LockedOut && err == nil {
		s.publish(eventstream.Event{
			Type: eventstream.TypeLockout, Trace: obs.TraceID(ctx),
			User: strings.ToLower(user), Result: class,
		})
	}
	s.logger.Info("check", "component", "otpd", "trace", obs.TraceID(ctx),
		"user", strings.ToLower(user), "result", class)
	return res, err
}

// checkClass maps a validation outcome onto the metric result classes.
func checkClass(res CheckResult, err error) string {
	switch {
	case err == nil && res.OK:
		return "ok"
	case errors.Is(err, ErrLockedOut) || (err == nil && res.LockedOut):
		return "locked_out"
	case err == nil:
		return "invalid"
	default:
		return "error"
	}
}

func (s *Server) check(user, code string) (CheckResult, error) {
	user = strings.ToLower(user)
	s.users.Lock(user)
	defer s.users.Unlock(user)

	r, err := s.loadRecord(user)
	if err != nil {
		return CheckResult{Message: "no token"}, err
	}
	if !r.Active {
		s.audit.Record("check", user, "locked out", false)
		return CheckResult{Message: "token deactivated", LockedOut: true}, ErrLockedOut
	}

	ok := false
	var matched uint64
	switch r.Type {
	case TokenTraining:
		static, err := s.box.Open(r.StaticSealed, []byte("static:"+user))
		if err != nil {
			return CheckResult{}, fmt.Errorf("otpd: unseal static: %w", err)
		}
		ok = len(static) == len(code) &&
			subtle.ConstantTimeCompare(static, []byte(code)) == 1
	default:
		secret, err := s.openSecretCached(user, r.SecretSealed)
		if err != nil {
			return CheckResult{}, fmt.Errorf("otpd: unseal secret: %w", err)
		}
		matched, ok = otp.ValidateTOTP(secret, code, s.clk.Now(), s.opts)
		if ok && matched <= r.LastCounter {
			// Replay of a consumed code.
			ok = false
		}
	}

	if !ok {
		r.FailCount++
		res := CheckResult{Message: "invalid token code"}
		if r.FailCount >= s.threshold {
			r.Active = false
			res.LockedOut = true
			res.Message = "token deactivated after repeated failures"
		}
		if err := s.saveRecord(r); err != nil {
			return CheckResult{}, err
		}
		s.audit.Record("check", user, fmt.Sprintf("fail_count=%d", r.FailCount), false)
		return res, nil
	}

	r.FailCount = 0
	if r.Type != TokenTraining {
		r.LastCounter = matched
	}
	// The consumed code is no longer "active": the next null request may
	// send a fresh SMS immediately instead of the already-sent notice.
	r.LastSMSUnix = 0
	if err := s.saveRecord(r); err != nil {
		return CheckResult{}, err
	}
	s.audit.Record("check", user, "", true)
	return CheckResult{OK: true, Message: "token validated"}, nil
}

// smsValidity is how long an SMS code remains "active", suppressing
// duplicate sends: "While the token code is active, if another request is
// made, LinOTP will not forward to Twilio" (§3.3). SMS codes tolerate the
// full drift window, so activity mirrors it.
func (s *Server) smsValidity() time.Duration {
	v := s.opts.Skew
	if v <= 0 {
		v = s.opts.Period
	}
	return v
}

// TriggerSMS sends the current token code to user's phone, unless a code
// is still active. It returns (sent, userMessage).
func (s *Server) TriggerSMS(user string) (bool, string, error) {
	return s.TriggerSMSCtx(context.Background(), user)
}

// TriggerSMSCtx is TriggerSMS with a request context carrying the trace ID.
func (s *Server) TriggerSMSCtx(ctx context.Context, user string) (bool, string, error) {
	start := time.Now()
	sent, msg, err := s.triggerSMS(user)
	class := "error"
	switch {
	case sent:
		class = "sent"
	case err == nil:
		class = "suppressed"
	}
	if s.met.smsTot != nil {
		s.met.smsTot[class].Inc()
		s.met.smsDur.ObserveSince(start)
	}
	if sent {
		s.publish(eventstream.Event{
			Type: eventstream.TypeSMS, Trace: obs.TraceID(ctx),
			User: strings.ToLower(user), Result: "sent",
		})
	}
	s.logger.Info("sms trigger", "component", "otpd", "trace", obs.TraceID(ctx),
		"user", strings.ToLower(user), "result", class)
	return sent, msg, err
}

func (s *Server) triggerSMS(user string) (bool, string, error) {
	user = strings.ToLower(user)
	s.users.Lock(user)
	defer s.users.Unlock(user)

	r, err := s.loadRecord(user)
	if err != nil {
		return false, "", err
	}
	if r.Type != TokenSMS {
		return false, "", ErrNotSMS
	}
	if !r.Active {
		return false, "token deactivated", ErrLockedOut
	}
	now := s.clk.Now()
	if r.LastSMSUnix > 0 && now.Sub(time.Unix(r.LastSMSUnix, 0)) < s.smsValidity() {
		return false, "an SMS has already been sent; enter the code you received", nil
	}
	secret, err := s.openSecretCached(user, r.SecretSealed)
	if err != nil {
		return false, "", err
	}
	code, err := otp.TOTP(secret, now, s.opts)
	if err != nil {
		return false, "", err
	}
	if s.sms == nil {
		return false, "", errors.New("otpd: no SMS sender configured")
	}
	if err := s.sms.SendSMS(r.Phone, fmt.Sprintf("Your %s token code is %s", s.issuer, code)); err != nil {
		s.audit.Record("sms", user, err.Error(), false)
		return false, "", fmt.Errorf("otpd: sms send: %w", err)
	}
	r.LastSMSUnix = now.Unix()
	if err := s.saveRecord(r); err != nil {
		return false, "", err
	}
	s.audit.Record("sms", user, "code sent", true)
	return true, "an SMS with your token code has been sent", nil
}

// Resync realigns a drifted token given two consecutive codes (admin UI
// operation, §3.1).
func (s *Server) Resync(user, code1, code2 string) error {
	user = strings.ToLower(user)
	s.users.Lock(user)
	defer s.users.Unlock(user)
	r, err := s.loadRecord(user)
	if err != nil {
		return err
	}
	if r.Type == TokenTraining {
		return errors.New("otpd: training tokens cannot be resynced")
	}
	secret, err := s.openSecretCached(user, r.SecretSealed)
	if err != nil {
		return err
	}
	counter, ok := otp.Resync(secret, code1, code2, s.clk.Now(), 1000, s.opts)
	if !ok {
		s.audit.Record("resync", user, "", false)
		return errors.New("otpd: resync failed: codes not consecutive in search window")
	}
	r.LastCounter = counter
	r.FailCount = 0
	r.Active = true
	if err := s.saveRecord(r); err != nil {
		return err
	}
	s.audit.Record("resync", user, fmt.Sprintf("counter=%d", counter), true)
	return nil
}

// ResetFailures clears the failure counter and reactivates the token
// ("clear failure counters associated with consecutive unsuccessful MFA
// log in attempts", §3.1).
func (s *Server) ResetFailures(user string) error {
	user = strings.ToLower(user)
	s.users.Lock(user)
	defer s.users.Unlock(user)
	r, err := s.loadRecord(user)
	if err != nil {
		return err
	}
	r.FailCount = 0
	r.Active = true
	if err := s.saveRecord(r); err != nil {
		return err
	}
	s.audit.Record("reset", user, "", true)
	return nil
}

// LockedOutUsers lists users whose tokens are deactivated — the paper's
// internal staff website for troubleshooting (§3.1).
func (s *Server) LockedOutUsers() []string {
	var out []string
	for _, ti := range s.Tokens() {
		if !ti.Active {
			out = append(out, ti.User)
		}
	}
	return out
}

// CurrentCode computes the code a user's device would show right now.
// This is device-side functionality exposed for simulations and tests; it
// never appears in the admin API.
func (s *Server) CurrentCode(user string, deviceDrift time.Duration) (string, error) {
	r, err := s.loadRecord(strings.ToLower(user))
	if err != nil {
		return "", err
	}
	if r.Type == TokenTraining {
		static, err := s.box.Open(r.StaticSealed, []byte("static:"+strings.ToLower(user)))
		if err != nil {
			return "", err
		}
		return string(static), nil
	}
	secret, err := s.openSecretCached(strings.ToLower(user), r.SecretSealed)
	if err != nil {
		return "", err
	}
	return otp.TOTP(secret, s.clk.Now().Add(deviceDrift), s.opts)
}
