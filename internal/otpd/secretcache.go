package otpd

import (
	"bytes"
	"sync"
)

// maxCachedSecrets bounds the decrypted-secret cache. At roughly 100 bytes
// per entry the worst case is ~13 MiB; past the cap the whole map is
// dropped and rebuilt read-mostly, which is cheaper and simpler than an
// eviction order the hit path would have to maintain.
const maxCachedSecrets = 1 << 17

// secretCache is a read-mostly map of user → decrypted token secret. It
// exists because unsealing (AES-GCM open plus key derivation) dominated the
// validation hot path once the OTP math itself went allocation-free.
//
// Correctness does not depend on invalidation discipline alone: every entry
// carries the sealed ciphertext it was decrypted from, and a lookup only
// hits when the record's current ciphertext is byte-identical. A re-keyed
// or re-enrolled token therefore misses even if an explicit invalidation
// was missed; the explicit calls (enrol, remove, assign) just keep the map
// from holding dead users.
type secretCache struct {
	mu sync.RWMutex
	m  map[string]cachedSecret
}

type cachedSecret struct {
	sealed []byte
	secret []byte
}

func newSecretCache() *secretCache {
	return &secretCache{m: make(map[string]cachedSecret)}
}

// lookup returns the cached plaintext when the sealed ciphertext matches.
// The hit path takes a read lock, one map probe, and one byte comparison —
// no allocation.
func (c *secretCache) lookup(user string, sealed []byte) ([]byte, bool) {
	c.mu.RLock()
	e, ok := c.m[user]
	c.mu.RUnlock()
	if !ok || !bytes.Equal(e.sealed, sealed) {
		return nil, false
	}
	return e.secret, true
}

func (c *secretCache) store(user string, sealed, secret []byte) {
	c.mu.Lock()
	if len(c.m) >= maxCachedSecrets {
		c.m = make(map[string]cachedSecret)
	}
	c.m[user] = cachedSecret{
		sealed: append([]byte(nil), sealed...),
		secret: append([]byte(nil), secret...),
	}
	c.mu.Unlock()
}

func (c *secretCache) invalidate(user string) {
	c.mu.Lock()
	delete(c.m, user)
	c.mu.Unlock()
}

// openSecretCached is openSecret through the read-mostly cache. The
// returned slice is shared between callers and must be treated as
// read-only — every consumer (TOTP computation, resync) only reads it.
func (s *Server) openSecretCached(user string, sealed []byte) ([]byte, error) {
	if sec, ok := s.secrets.lookup(user, sealed); ok {
		return sec, nil
	}
	sec, err := s.openSecret(user, sealed)
	if err != nil {
		return nil, err
	}
	s.secrets.store(user, sealed, sec)
	return sec, nil
}
