package otpd

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/otp"
	"openmfa/internal/racecheck"
)

func skipUnderRace(t *testing.T) {
	t.Helper()
	if racecheck.Enabled {
		t.Skip("alloc-count assertions are meaningless under -race")
	}
}

// TestOpenSecretCachedHitZeroAlloc gates the validation hot path's secret
// lookup: once a user's secret is cached, re-opening it must not unseal and
// must not allocate.
func TestOpenSecretCachedHitZeroAlloc(t *testing.T) {
	skipUnderRace(t)
	s, _ := newServer(t, clock.NewSim(t0))
	enr, err := s.InitSoftToken("u")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.loadRecord("u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.openSecretCached("u", r.SecretSealed); err != nil { // warm
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(500, func() {
		sec, err := s.openSecretCached("u", r.SecretSealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sec, enr.Secret) {
			t.Fatal("wrong secret")
		}
	})
	if got != 0 {
		t.Errorf("openSecretCached hit allocs/op = %.1f, want 0", got)
	}
}

// TestSecretCacheCiphertextGuard pins the self-correcting property: a lookup
// only hits when the record's current ciphertext is byte-identical to the
// one the entry was decrypted from, so a re-sealed record can never be
// served a stale plaintext even if explicit invalidation were missed.
func TestSecretCacheCiphertextGuard(t *testing.T) {
	c := newSecretCache()
	c.store("u", []byte("sealed-v1"), []byte("plain-v1"))
	if _, ok := c.lookup("u", []byte("sealed-v2")); ok {
		t.Fatal("lookup hit despite ciphertext change")
	}
	if sec, ok := c.lookup("u", []byte("sealed-v1")); !ok || string(sec) != "plain-v1" {
		t.Fatalf("lookup(v1) = %q, %v", sec, ok)
	}
	c.invalidate("u")
	if _, ok := c.lookup("u", []byte("sealed-v1")); ok {
		t.Fatal("lookup hit after invalidate")
	}
}

// TestSecretCacheCapDropsMap covers the size bound: crossing the cap drops
// the whole map rather than growing without limit.
func TestSecretCacheCapDropsMap(t *testing.T) {
	c := newSecretCache()
	c.m = make(map[string]cachedSecret, maxCachedSecrets)
	for i := 0; i < maxCachedSecrets; i++ {
		c.m[strconv.Itoa(i)] = cachedSecret{}
	}
	c.store("fresh", []byte("s"), []byte("p"))
	if n := len(c.m); n != 1 {
		t.Fatalf("map holds %d entries after cap reset, want 1", n)
	}
	if _, ok := c.lookup("fresh", []byte("s")); !ok {
		t.Fatal("entry stored during reset missing")
	}
}

// TestReenrollAfterRemoveUsesFreshSecret is the stale-cache regression test:
// removing a token and enrolling a new one must validate against the new
// secret and reject codes from the old one.
func TestReenrollAfterRemoveUsesFreshSecret(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	old, err := s.InitSoftToken("u")
	if err != nil {
		t.Fatal(err)
	}
	code, _ := otp.TOTP(old.Secret, sim.Now(), s.OTPOptions())
	if res, _ := s.Check("u", code); !res.OK {
		t.Fatal("initial token rejected")
	}
	if err := s.RemoveToken("u"); err != nil {
		t.Fatal(err)
	}
	fresh, err := s.InitSoftToken("u")
	if err != nil {
		t.Fatal(err)
	}
	sim.Advance(30 * time.Second) // past the replay high-water mark
	oldCode, _ := otp.TOTP(old.Secret, sim.Now(), s.OTPOptions())
	newCode, _ := otp.TOTP(fresh.Secret, sim.Now(), s.OTPOptions())
	if oldCode != newCode { // astronomically likely; guard the assertion anyway
		if res, _ := s.Check("u", oldCode); res.OK {
			t.Fatal("code from removed token accepted")
		}
	}
	if res, _ := s.Check("u", newCode); !res.OK {
		t.Fatal("fresh token rejected")
	}
}

// BenchmarkSecretCacheHit measures the cached secret-open against the
// sealed-record baseline the cache replaced (see BenchmarkSecretOpenMiss).
func BenchmarkSecretCacheHit(b *testing.B) {
	s, _ := newServer(b, clock.NewSim(t0))
	if _, err := s.InitSoftToken("u"); err != nil {
		b.Fatal(err)
	}
	r, err := s.loadRecord("u")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.openSecretCached("u", r.SecretSealed); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.openSecretCached("u", r.SecretSealed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecretOpenMiss is the uncached baseline: AES-GCM unseal per call.
func BenchmarkSecretOpenMiss(b *testing.B) {
	s, _ := newServer(b, clock.NewSim(t0))
	if _, err := s.InitSoftToken("u"); err != nil {
		b.Fatal(err)
	}
	r, err := s.loadRecord("u")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.openSecret("u", r.SecretSealed); err != nil {
			b.Fatal(err)
		}
	}
}
