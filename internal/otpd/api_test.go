package otpd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/httpdigest"
	"openmfa/internal/otp"
	"openmfa/internal/radius"
)

// --- RADIUS handler ---

func radiusPair(t *testing.T) (*Server, *capturedSMS, *clock.Sim, string, []byte) {
	t.Helper()
	sim := clock.NewSim(t0)
	s, sms := newServer(t, sim)
	secret := []byte("radius-secret")
	srv := &radius.Server{Secret: secret, Handler: &RadiusHandler{OTP: s}}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return s, sms, sim, srv.Addr().String(), secret
}

func radiusAsk(t *testing.T, addr string, secret []byte, user, code string) *radius.Packet {
	t.Helper()
	c := &radius.Client{Addr: addr, Secret: secret, Timeout: 2 * time.Second}
	req := radius.NewRequest(0)
	req.AddString(radius.AttrUserName, user)
	hidden, err := radius.HidePassword(code, secret, req.Authenticator)
	if err != nil {
		t.Fatal(err)
	}
	req.Add(radius.AttrUserPassword, hidden)
	resp, err := c.Exchange(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRadiusAcceptRejectFlow(t *testing.T) {
	s, _, sim, addr, secret := radiusPair(t)
	enr, _ := s.InitSoftToken("u")
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())

	if resp := radiusAsk(t, addr, secret, "u", code); resp.Code != radius.AccessAccept {
		t.Fatalf("valid code → %v", resp.Code)
	}
	// Replay → reject.
	if resp := radiusAsk(t, addr, secret, "u", code); resp.Code != radius.AccessReject {
		t.Fatalf("replayed code → %v", resp.Code)
	}
	if resp := radiusAsk(t, addr, secret, "u", "000000"); resp.Code != radius.AccessReject {
		t.Fatalf("wrong code → %v", resp.Code)
	}
	if resp := radiusAsk(t, addr, secret, "ghost", "123456"); resp.Code != radius.AccessReject {
		t.Fatalf("unknown user → %v", resp.Code)
	}
	// Missing user name → reject.
	c := &radius.Client{Addr: addr, Secret: secret, Timeout: 2 * time.Second}
	req := radius.NewRequest(0)
	resp, err := c.Exchange(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != radius.AccessReject {
		t.Fatalf("empty request → %v", resp.Code)
	}
}

func TestRadiusSMSChallenge(t *testing.T) {
	s, sms, sim, addr, secret := radiusPair(t)
	enr, _ := s.InitSMSToken("storm", "5125551234")

	// Null request triggers the SMS and a challenge.
	resp := radiusAsk(t, addr, secret, "storm", "")
	if resp.Code != radius.AccessChallenge {
		t.Fatalf("null request → %v", resp.Code)
	}
	if sms.count() != 1 {
		t.Fatalf("sms count = %d", sms.count())
	}
	if st, ok := resp.Get(radius.AttrState); !ok || len(st) == 0 {
		t.Fatal("challenge missing State")
	}
	// Second null request while active: challenge again with the
	// already-sent message, no second text.
	resp2 := radiusAsk(t, addr, secret, "storm", "")
	if resp2.Code != radius.AccessChallenge {
		t.Fatalf("repeat null → %v", resp2.Code)
	}
	if sms.count() != 1 {
		t.Fatal("duplicate SMS sent")
	}
	if got := resp2.GetString(radius.AttrReplyMessage); got == resp.GetString(radius.AttrReplyMessage) {
		t.Fatalf("expected already-sent notice, got %q twice", got)
	}
	// Complete with the code.
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	if r := radiusAsk(t, addr, secret, "storm", code); r.Code != radius.AccessAccept {
		t.Fatalf("code after challenge → %v", r.Code)
	}
}

func TestRadiusNullForNonSMSUserChallengesForCode(t *testing.T) {
	s, _, _, addr, secret := radiusPair(t)
	s.InitSoftToken("softie")
	resp := radiusAsk(t, addr, secret, "softie", "")
	if resp.Code != radius.AccessChallenge {
		t.Fatalf("null for soft user → %v", resp.Code)
	}
}

func TestRadiusLockedOutReject(t *testing.T) {
	s, _, _, addr, secret := radiusPair(t)
	s.InitSMSToken("u", "5125551234")
	for i := 0; i < DefaultLockoutThreshold; i++ {
		s.Check("u", "000000")
	}
	if resp := radiusAsk(t, addr, secret, "u", "111111"); resp.Code != radius.AccessReject {
		t.Fatalf("locked out check → %v", resp.Code)
	}
	if resp := radiusAsk(t, addr, secret, "u", ""); resp.Code != radius.AccessReject {
		t.Fatalf("locked out trigger → %v", resp.Code)
	}
}

// --- Admin REST API ---

func apiServer(t *testing.T) (*Server, *clock.Sim, *httptest.Server, *http.Client) {
	t.Helper()
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	api := &AdminAPI{
		OTP:   s,
		Realm: "otpd-admin",
		Creds: httpdigest.StaticCredentials{
			"portal": httpdigest.HA1("portal", "otpd-admin", "hunter2"),
		},
	}
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	client := &http.Client{Transport: &httpdigest.Client{Username: "portal", Password: "hunter2"}}
	return s, sim, srv, client
}

func postJSON(t *testing.T, c *http.Client, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := c.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestAdminAPIInitShowRemove(t *testing.T) {
	s, _, srv, client := apiServer(t)

	resp, body := postJSON(t, client, srv.URL+"/admin/init",
		initReq{User: "alice", Type: TokenSoft})
	if resp.StatusCode != 200 {
		t.Fatalf("init status = %d (%v)", resp.StatusCode, body)
	}
	if body["secret"] == "" || body["uri"] == "" {
		t.Fatalf("init response = %v", body)
	}
	if !s.HasToken("alice") {
		t.Fatal("token not created")
	}

	// Show.
	r2, err := client.Get(srv.URL + "/admin/show?user=alice")
	if err != nil {
		t.Fatal(err)
	}
	var info TokenInfo
	json.NewDecoder(r2.Body).Decode(&info)
	r2.Body.Close()
	if info.Type != TokenSoft || !info.Active {
		t.Fatalf("show = %+v", info)
	}

	// Duplicate init → 409.
	resp, _ = postJSON(t, client, srv.URL+"/admin/init", initReq{User: "alice", Type: TokenSoft})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate init status = %d", resp.StatusCode)
	}

	// Remove.
	resp, _ = postJSON(t, client, srv.URL+"/admin/remove", userReq{User: "alice"})
	if resp.StatusCode != 200 {
		t.Fatalf("remove status = %d", resp.StatusCode)
	}
	if s.HasToken("alice") {
		t.Fatal("token survived remove")
	}
	// Remove again → 404.
	resp, _ = postJSON(t, client, srv.URL+"/admin/remove", userReq{User: "alice"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("re-remove status = %d", resp.StatusCode)
	}
}

func TestAdminAPIRequiresDigestAuth(t *testing.T) {
	_, _, srv, _ := apiServer(t)
	resp, err := http.Get(srv.URL + "/admin/tokens")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated admin status = %d", resp.StatusCode)
	}
	bad := &http.Client{Transport: &httpdigest.Client{Username: "portal", Password: "wrong"}}
	resp2, err := bad.Get(srv.URL + "/admin/tokens")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong password status = %d", resp2.StatusCode)
	}
}

func TestAdminAPIBadType(t *testing.T) {
	_, _, srv, client := apiServer(t)
	resp, _ := postJSON(t, client, srv.URL+"/admin/init", initReq{User: "x", Type: "yubikey"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad type status = %d", resp.StatusCode)
	}
	// Malformed JSON.
	r, err := client.Post(srv.URL+"/admin/init", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status = %d", r.StatusCode)
	}
}

func TestAdminAPIStaticResetAuditLockedout(t *testing.T) {
	s, sim, srv, client := apiServer(t)
	resp, _ := postJSON(t, client, srv.URL+"/admin/static", userReq{User: "train01", Code: "123456"})
	if resp.StatusCode != 200 {
		t.Fatalf("static status = %d", resp.StatusCode)
	}
	if res, _ := s.Check("train01", "123456"); !res.OK {
		t.Fatal("static code not set")
	}
	_ = sim

	// Lock out and verify /admin/lockedout, then /admin/reset.
	for i := 0; i < DefaultLockoutThreshold; i++ {
		s.Check("train01", "999999")
	}
	r, err := client.Get(srv.URL + "/admin/lockedout")
	if err != nil {
		t.Fatal(err)
	}
	var locked []string
	json.NewDecoder(r.Body).Decode(&locked)
	r.Body.Close()
	if len(locked) != 1 || locked[0] != "train01" {
		t.Fatalf("lockedout = %v", locked)
	}
	resp, _ = postJSON(t, client, srv.URL+"/admin/reset", userReq{User: "train01"})
	if resp.StatusCode != 200 {
		t.Fatalf("reset status = %d", resp.StatusCode)
	}
	if res, _ := s.Check("train01", "123456"); !res.OK {
		t.Fatal("reset did not restore token")
	}

	// Audit is reachable and chained.
	r2, err := client.Get(srv.URL + "/admin/audit")
	if err != nil {
		t.Fatal(err)
	}
	var entries []AuditEntry
	json.NewDecoder(r2.Body).Decode(&entries)
	r2.Body.Close()
	if len(entries) == 0 {
		t.Fatal("empty audit trail")
	}
}

func TestValidateEndpointOpen(t *testing.T) {
	s, sim, srv, _ := apiServer(t)
	enr, _ := s.InitSoftToken("u")
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	// No digest auth needed for /validate/check.
	b, _ := json.Marshal(userReq{User: "u", Pass: code})
	resp, err := http.Post(srv.URL+"/validate/check", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if out["value"] != true {
		t.Fatalf("validate = %v", out)
	}
	// Unknown user → value=false, not an HTTP error.
	b2, _ := json.Marshal(userReq{User: "ghost", Pass: "123456"})
	resp2, err := http.Post(srv.URL+"/validate/check", "application/json", bytes.NewReader(b2))
	if err != nil {
		t.Fatal(err)
	}
	var out2 map[string]any
	json.NewDecoder(resp2.Body).Decode(&out2)
	resp2.Body.Close()
	if resp2.StatusCode != 200 || out2["value"] != false {
		t.Fatalf("validate unknown = %d %v", resp2.StatusCode, out2)
	}
}

func TestAdminAPIHardTokenFlow(t *testing.T) {
	s, sim, srv, client := apiServer(t)
	secret := []byte("fob-secret-0002-----")
	s.ImportHardToken("C200-0002", secret)
	resp, body := postJSON(t, client, srv.URL+"/admin/init",
		initReq{User: "hanlon", Type: TokenHard, Serial: "C200-0002"})
	if resp.StatusCode != 200 {
		t.Fatalf("hard init = %d %v", resp.StatusCode, body)
	}
	code, _ := otp.TOTP(secret, sim.Now(), s.OTPOptions())
	if res, _ := s.Check("hanlon", code); !res.OK {
		t.Fatal("hard token unusable after REST assignment")
	}
	// Unknown serial → 404.
	resp, _ = postJSON(t, client, srv.URL+"/admin/init",
		initReq{User: "other", Type: TokenHard, Serial: "NOPE"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown serial status = %d", resp.StatusCode)
	}
}

func TestAdminAPIResync(t *testing.T) {
	s, sim, srv, client := apiServer(t)
	enr, _ := s.InitSoftToken("u")
	dev := sim.Now().Add(15 * time.Minute)
	c1, _ := otp.TOTP(enr.Secret, dev, s.OTPOptions())
	c2, _ := otp.TOTP(enr.Secret, dev.Add(30*time.Second), s.OTPOptions())
	resp, _ := postJSON(t, client, srv.URL+"/admin/resync", userReq{User: "u", OTP1: c1, OTP2: c2})
	if resp.StatusCode != 200 {
		t.Fatalf("resync status = %d", resp.StatusCode)
	}
}
