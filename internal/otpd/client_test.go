package otpd

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/httpdigest"
	"openmfa/internal/otp"
)

// clientWorld wires AdminClient → AdminAPI → Server, the exact §3.5
// portal-to-back-end path.
func clientWorld(t *testing.T) (*Server, *capturedSMS, *clock.Sim, *AdminClient) {
	t.Helper()
	sim := clock.NewSim(t0)
	s, sms := newServer(t, sim)
	api := &AdminAPI{
		OTP:   s,
		Realm: "otpd-admin",
		Creds: httpdigest.StaticCredentials{
			"portal": httpdigest.HA1("portal", "otpd-admin", "pw"),
		},
	}
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return s, sms, sim, &AdminClient{BaseURL: srv.URL, Username: "portal", Password: "pw"}
}

func TestAdminClientSoftLifecycle(t *testing.T) {
	s, _, sim, c := clientWorld(t)

	enr, err := c.Init("alice", TokenSoft, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if enr.Type != TokenSoft || enr.Secret == "" || enr.URI == "" {
		t.Fatalf("enrollment = %+v", enr)
	}
	secret, err := enr.SecretBytes()
	if err != nil || len(secret) != 20 {
		t.Fatalf("SecretBytes = %d bytes, %v", len(secret), err)
	}

	// Validate via the open endpoint.
	code, _ := otp.TOTP(secret, sim.Now(), s.OTPOptions())
	ok, msg, err := c.Validate("alice", code)
	if err != nil || !ok {
		t.Fatalf("Validate = %v %q %v", ok, msg, err)
	}
	// Replay refused.
	ok, _, err = c.Validate("alice", code)
	if err != nil || ok {
		t.Fatalf("replay Validate = %v, %v", ok, err)
	}

	// Show.
	info, err := c.Show("alice")
	if err != nil || info.Type != TokenSoft || !info.Active {
		t.Fatalf("Show = %+v, %v", info, err)
	}

	// Remove, then Show → APIError with 404.
	if err := c.Remove("alice"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Show("alice")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("Show after remove: %v", err)
	}
	if apiErr.Error() == "" {
		t.Fatal("empty APIError message")
	}
}

func TestAdminClientSMSAndTrigger(t *testing.T) {
	_, sms, sim, c := clientWorld(t)
	if _, err := c.Init("storm", TokenSMS, "5125551234", ""); err != nil {
		t.Fatal(err)
	}
	sent, msg, err := c.TriggerSMS("storm")
	if err != nil || !sent {
		t.Fatalf("TriggerSMS = %v %q %v", sent, msg, err)
	}
	if sms.count() != 1 {
		t.Fatalf("sms count = %d", sms.count())
	}
	// Second trigger suppressed while the code is active.
	sent, msg, err = c.TriggerSMS("storm")
	if err != nil || sent || msg == "" {
		t.Fatalf("second TriggerSMS = %v %q %v", sent, msg, err)
	}
	_ = sim
}

func TestAdminClientResyncResetLockedOut(t *testing.T) {
	s, _, sim, c := clientWorld(t)
	enr, err := c.Init("bob", TokenSoft, "", "")
	if err != nil {
		t.Fatal(err)
	}
	secret, _ := enr.SecretBytes()

	// Drift the device 15 minutes and resync through the client.
	dev := sim.Now().Add(15 * time.Minute)
	c1, _ := otp.TOTP(secret, dev, s.OTPOptions())
	c2, _ := otp.TOTP(secret, dev.Add(30*time.Second), s.OTPOptions())
	if err := c.Resync("bob", c1, c2); err != nil {
		t.Fatal(err)
	}

	// Lock the account out, observe it via LockedOut, clear with Reset.
	for i := 0; i < DefaultLockoutThreshold; i++ {
		s.Check("bob", "000000")
	}
	locked, err := c.LockedOut()
	if err != nil || len(locked) != 1 || locked[0] != "bob" {
		t.Fatalf("LockedOut = %v, %v", locked, err)
	}
	if err := c.Reset("bob"); err != nil {
		t.Fatal(err)
	}
	locked, _ = c.LockedOut()
	if len(locked) != 0 {
		t.Fatalf("still locked after reset: %v", locked)
	}
}

func TestAdminClientStatic(t *testing.T) {
	_, _, _, c := clientWorld(t)
	if err := c.SetStatic("train01", "123456"); err != nil {
		t.Fatal(err)
	}
	ok, _, err := c.Validate("train01", "123456")
	if err != nil || !ok {
		t.Fatalf("static validate = %v, %v", ok, err)
	}
	// Bad code format surfaces the 400.
	err = c.SetStatic("train02", "12")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("bad static err = %v", err)
	}
}

func TestAdminClientHardToken(t *testing.T) {
	s, _, sim, c := clientWorld(t)
	fob := []byte("fob-secret-4242-----")
	s.ImportHardToken("C200-4242", fob)
	enr, err := c.Init("hanlon", TokenHard, "", "C200-4242")
	if err != nil {
		t.Fatal(err)
	}
	if enr.Serial != "C200-4242" {
		t.Fatalf("serial = %q", enr.Serial)
	}
	code, _ := otp.TOTP(fob, sim.Now(), s.OTPOptions())
	if ok, _, _ := c.Validate("hanlon", code); !ok {
		t.Fatal("hard token code rejected via client")
	}
}

func TestAdminClientBadCredentials(t *testing.T) {
	_, _, _, good := clientWorld(t)
	bad := &AdminClient{BaseURL: good.BaseURL, Username: "portal", Password: "wrong"}
	_, err := bad.Show("anyone")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 401 {
		t.Fatalf("bad creds err = %v", err)
	}
}

func TestAdminClientDeadServer(t *testing.T) {
	c := &AdminClient{BaseURL: "http://127.0.0.1:1", Username: "u", Password: "p"}
	if _, err := c.Show("x"); err == nil {
		t.Fatal("dead server Show succeeded")
	}
	if _, _, err := c.Validate("x", "1"); err == nil {
		t.Fatal("dead server Validate succeeded")
	}
}

func TestAuditMarshalJSON(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	s.InitSoftToken("u")
	b, err := s.Audit().MarshalJSON()
	if err != nil || len(b) < 10 {
		t.Fatalf("MarshalJSON = %d bytes, %v", len(b), err)
	}
}
