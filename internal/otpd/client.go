package otpd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"openmfa/internal/httpdigest"
	"openmfa/internal/otp"
)

// AdminClient is the typed client for the admin REST API — what the portal
// uses to "perform all necessary operations to manage user token
// information" (§3.5), authenticating with HTTP Digest.
type AdminClient struct {
	// BaseURL is the otpd admin endpoint, e.g. "http://127.0.0.1:8443".
	BaseURL string
	// Username/Password are the digest credentials.
	Username string
	Password string

	client *http.Client
}

func (c *AdminClient) http() *http.Client {
	if c.client == nil {
		c.client = &http.Client{Transport: &httpdigest.Client{
			Username: c.Username, Password: c.Password,
		}}
	}
	return c.client
}

// APIError carries a non-2xx response.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("otpd admin: HTTP %d: %s", e.Status, e.Message)
}

func (c *AdminClient) post(path string, body any, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http().Post(c.BaseURL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResp(resp, out)
}

func (c *AdminClient) get(path string, out any) error {
	resp, err := c.http().Get(c.BaseURL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResp(resp, out)
}

func decodeResp(resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return &APIError{Status: resp.StatusCode, Message: e.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// RemoteEnrollment is the client-side view of a token initialisation.
type RemoteEnrollment struct {
	User   string    `json:"user"`
	Type   TokenType `json:"type"`
	Secret string    `json:"secret,omitempty"` // base32
	Serial string    `json:"serial,omitempty"`
	URI    string    `json:"uri,omitempty"`
}

// SecretBytes decodes the base32 secret.
func (e *RemoteEnrollment) SecretBytes() ([]byte, error) {
	if e.Secret == "" {
		return nil, nil
	}
	return otp.DecodeSecret(e.Secret)
}

// Init provisions a token of the given type. phone is required for SMS,
// serial for hard tokens.
func (c *AdminClient) Init(user string, typ TokenType, phone, serial string) (*RemoteEnrollment, error) {
	var out RemoteEnrollment
	err := c.post("/admin/init", initReq{User: user, Type: typ, Phone: phone, Serial: serial}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Remove unpairs the user's token.
func (c *AdminClient) Remove(user string) error {
	return c.post("/admin/remove", userReq{User: user}, nil)
}

// Reset clears the user's failure counter.
func (c *AdminClient) Reset(user string) error {
	return c.post("/admin/reset", userReq{User: user}, nil)
}

// Resync realigns a drifted token.
func (c *AdminClient) Resync(user, otp1, otp2 string) error {
	return c.post("/admin/resync", userReq{User: user, OTP1: otp1, OTP2: otp2}, nil)
}

// SetStatic provisions a training token.
func (c *AdminClient) SetStatic(user, code string) error {
	return c.post("/admin/static", userReq{User: user, Code: code}, nil)
}

// TriggerSMS asks the back end to text the user their current code.
func (c *AdminClient) TriggerSMS(user string) (sent bool, msg string, err error) {
	var out struct {
		Sent    bool   `json:"sent"`
		Message string `json:"message"`
	}
	if err := c.post("/admin/sms", userReq{User: user}, &out); err != nil {
		return false, "", err
	}
	return out.Sent, out.Message, nil
}

// Show fetches the admin view of a user's token.
func (c *AdminClient) Show(user string) (*TokenInfo, error) {
	var out TokenInfo
	if err := c.get("/admin/show?user="+user, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Validate checks a token code via the open validation endpoint.
func (c *AdminClient) Validate(user, code string) (bool, string, error) {
	var out struct {
		Value   bool   `json:"value"`
		Message string `json:"message"`
	}
	b, _ := json.Marshal(userReq{User: user, Pass: code})
	resp, err := http.Post(c.BaseURL+"/validate/check", "application/json", bytes.NewReader(b))
	if err != nil {
		return false, "", err
	}
	defer resp.Body.Close()
	if err := decodeResp(resp, &out); err != nil {
		return false, "", err
	}
	return out.Value, out.Message, nil
}

// LockedOut lists deactivated users.
func (c *AdminClient) LockedOut() ([]string, error) {
	var out []string
	if err := c.get("/admin/lockedout", &out); err != nil {
		return nil, err
	}
	return out, nil
}
