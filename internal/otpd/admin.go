package otpd

import (
	"encoding/json"
	"errors"
	"net/http"

	"openmfa/internal/httpdigest"
	"openmfa/internal/otp"
)

// AdminAPI is the REST interface the portal drives (§3.5): "The portlet
// application communicates with the LinOTP back end via an administrative
// interface, which is available as a Representational State Transfer
// (REST) interface. The portal back end authenticates to the admin API
// using HTTP Digest Authentication."
//
// Endpoints (all JSON):
//
//	POST /admin/init    {user, type, phone?, serial?}   → Enrollment
//	POST /admin/remove  {user}                          → {ok}
//	POST /admin/resync  {user, otp1, otp2}              → {ok}
//	POST /admin/reset   {user}                          → {ok}
//	POST /admin/static  {user, code}                    → {ok}
//	GET  /admin/show?user=U                             → TokenInfo
//	GET  /admin/tokens                                  → []TokenInfo
//	GET  /admin/lockedout                               → []string
//	GET  /admin/audit                                   → []AuditEntry
//	POST /validate/check {user, pass}                   → {value, message}
//
// The /validate endpoint is what RADIUS servers call in LinOTP; it is
// exposed here for parity and for tests, unauthenticated like LinOTP's
// default validator.
type AdminAPI struct {
	OTP   *Server
	Realm string
	Creds httpdigest.CredentialStore
}

// Handler builds the full mux: digest-protected /admin plus open
// /validate/check.
func (a *AdminAPI) Handler() http.Handler {
	admin := http.NewServeMux()
	admin.HandleFunc("POST /admin/init", a.handleInit)
	admin.HandleFunc("POST /admin/remove", a.handleRemove)
	admin.HandleFunc("POST /admin/resync", a.handleResync)
	admin.HandleFunc("POST /admin/reset", a.handleReset)
	admin.HandleFunc("POST /admin/static", a.handleStatic)
	admin.HandleFunc("POST /admin/sms", a.handleSMS)
	admin.HandleFunc("GET /admin/show", a.handleShow)
	admin.HandleFunc("GET /admin/tokens", a.handleTokens)
	admin.HandleFunc("GET /admin/lockedout", a.handleLockedOut)
	admin.HandleFunc("GET /admin/audit", a.handleAudit)

	digest := httpdigest.NewServer(a.Realm, a.Creds)
	root := http.NewServeMux()
	root.Handle("/admin/", digest.Wrap(admin))
	root.HandleFunc("POST /validate/check", a.handleValidate)
	return root
}

type initReq struct {
	User   string    `json:"user"`
	Type   TokenType `json:"type"`
	Phone  string    `json:"phone,omitempty"`
	Serial string    `json:"serial,omitempty"`
}

type enrollmentResp struct {
	User   string    `json:"user"`
	Type   TokenType `json:"type"`
	Secret string    `json:"secret,omitempty"` // base32
	Serial string    `json:"serial,omitempty"`
	URI    string    `json:"uri,omitempty"`
}

func (a *AdminAPI) handleInit(w http.ResponseWriter, r *http.Request) {
	var req initReq
	if !decodeBody(w, r, &req) {
		return
	}
	var enr *Enrollment
	var err error
	switch req.Type {
	case TokenSoft:
		enr, err = a.OTP.InitSoftToken(req.User)
	case TokenSMS:
		enr, err = a.OTP.InitSMSToken(req.User, req.Phone)
	case TokenHard:
		enr, err = a.OTP.AssignHardToken(req.User, req.Serial)
	default:
		writeError(w, http.StatusBadRequest, ErrBadType)
		return
	}
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	resp := enrollmentResp{User: enr.User, Type: enr.Type, Serial: enr.Serial, URI: enr.URI}
	if enr.Secret != nil {
		resp.Secret = otp.EncodeSecret(enr.Secret)
	}
	writeJSON(w, http.StatusOK, resp)
}

type userReq struct {
	User string `json:"user"`
	Code string `json:"code,omitempty"`
	OTP1 string `json:"otp1,omitempty"`
	OTP2 string `json:"otp2,omitempty"`
	Pass string `json:"pass,omitempty"`
}

func (a *AdminAPI) handleRemove(w http.ResponseWriter, r *http.Request) {
	a.simpleOp(w, r, func(req *userReq) error { return a.OTP.RemoveToken(req.User) })
}

func (a *AdminAPI) handleResync(w http.ResponseWriter, r *http.Request) {
	a.simpleOp(w, r, func(req *userReq) error { return a.OTP.Resync(req.User, req.OTP1, req.OTP2) })
}

func (a *AdminAPI) handleReset(w http.ResponseWriter, r *http.Request) {
	a.simpleOp(w, r, func(req *userReq) error { return a.OTP.ResetFailures(req.User) })
}

func (a *AdminAPI) handleStatic(w http.ResponseWriter, r *http.Request) {
	a.simpleOp(w, r, func(req *userReq) error { return a.OTP.SetStaticToken(req.User, req.Code) })
}

func (a *AdminAPI) simpleOp(w http.ResponseWriter, r *http.Request, op func(*userReq) error) {
	var req userReq
	if !decodeBody(w, r, &req) {
		return
	}
	if err := op(&req); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (a *AdminAPI) handleSMS(w http.ResponseWriter, r *http.Request) {
	var req userReq
	if !decodeBody(w, r, &req) {
		return
	}
	sent, msg, err := a.OTP.TriggerSMS(req.User)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sent": sent, "message": msg})
}

func (a *AdminAPI) handleShow(w http.ResponseWriter, r *http.Request) {
	info, err := a.OTP.Token(r.URL.Query().Get("user"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (a *AdminAPI) handleTokens(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.OTP.Tokens())
}

func (a *AdminAPI) handleLockedOut(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.OTP.LockedOutUsers())
}

func (a *AdminAPI) handleAudit(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.OTP.Audit().Entries())
}

func (a *AdminAPI) handleValidate(w http.ResponseWriter, r *http.Request) {
	var req userReq
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := a.OTP.Check(req.User, req.Pass)
	if err != nil && !errors.Is(err, ErrNoToken) && !errors.Is(err, ErrLockedOut) {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"value": res.OK, "message": res.Message})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNoToken), errors.Is(err, ErrBadSerial):
		return http.StatusNotFound
	case errors.Is(err, ErrHasToken):
		return http.StatusConflict
	case errors.Is(err, ErrBadType), errors.Is(err, ErrBadStatic), errors.Is(err, ErrNotSMS):
		return http.StatusBadRequest
	case errors.Is(err, ErrLockedOut):
		return http.StatusForbidden
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
