package otpd

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// AuditEntry is one audit record. Entries form an HMAC chain: each entry's
// MAC covers its content plus the previous entry's MAC, so truncation or
// in-place tampering is detectable — LinOTP similarly signs its audit
// trail, and the paper's admins "access audit logs" through the UI (§3.1).
type AuditEntry struct {
	Seq     int       `json:"seq"`
	Time    time.Time `json:"time"`
	Action  string    `json:"action"`
	User    string    `json:"user,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	Success bool      `json:"success"`
	MAC     string    `json:"mac"`
}

// Audit is an in-memory, HMAC-chained audit log.
type Audit struct {
	mu      sync.Mutex
	key     []byte
	entries []AuditEntry
	lastMAC []byte
	now     func() time.Time
}

// NewAudit creates an audit log signed with key, timestamped by now.
func NewAudit(key []byte, now func() time.Time) *Audit {
	return &Audit{key: append([]byte(nil), key...), now: now}
}

func (a *Audit) mac(e *AuditEntry, prev []byte) []byte {
	h := hmac.New(sha256.New, a.key)
	fmt.Fprintf(h, "%d|%d|%s|%s|%s|%t|", e.Seq, e.Time.UnixNano(), e.Action, e.User, e.Detail, e.Success)
	h.Write(prev)
	return h.Sum(nil)
}

// Record appends an entry.
func (a *Audit) Record(action, user, detail string, success bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := AuditEntry{
		Seq: len(a.entries) + 1, Time: a.now().UTC(),
		Action: action, User: user, Detail: detail, Success: success,
	}
	mac := a.mac(&e, a.lastMAC)
	e.MAC = hex.EncodeToString(mac)
	a.entries = append(a.entries, e)
	a.lastMAC = mac
}

// Entries returns a copy of all entries.
func (a *Audit) Entries() []AuditEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AuditEntry, len(a.entries))
	copy(out, a.entries)
	return out
}

// Len reports the entry count.
func (a *Audit) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.entries)
}

// Verify walks the chain and reports the first broken entry (1-based), or
// 0 if the chain is intact.
func (a *Audit) Verify() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	var prev []byte
	for i := range a.entries {
		e := a.entries[i]
		want := a.mac(&e, prev)
		got, err := hex.DecodeString(e.MAC)
		if err != nil || !hmac.Equal(want, got) {
			return i + 1
		}
		prev = got
	}
	return 0
}

// MarshalJSON exports the audit trail.
func (a *Audit) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.Entries())
}
