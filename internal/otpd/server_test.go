package otpd

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/otp"
	"openmfa/internal/store"
)

var t0 = time.Date(2016, 10, 4, 9, 0, 0, 0, time.UTC)

type capturedSMS struct {
	mu   sync.Mutex
	msgs []string
}

func (c *capturedSMS) SendSMS(phone, body string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, phone+"|"+body)
	return nil
}

func (c *capturedSMS) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func newServer(t testing.TB, sim *clock.Sim) (*Server, *capturedSMS) {
	t.Helper()
	sms := &capturedSMS{}
	s, err := New(Config{
		DB:            store.OpenMemory(),
		EncryptionKey: bytes.Repeat([]byte{0x42}, 32),
		Clock:         sim,
		SMS:           sms,
		Issuer:        "TACC",
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, sms
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing DB accepted")
	}
	if _, err := New(Config{DB: store.OpenMemory(), EncryptionKey: []byte{1}}); err == nil {
		t.Fatal("bad key accepted")
	}
}

func validConfig() Config {
	return Config{DB: store.OpenMemory(), EncryptionKey: bytes.Repeat([]byte{0x42}, 32)}
}

func TestNewRejectsNegativeLockoutThreshold(t *testing.T) {
	cfg := validConfig()
	cfg.LockoutThreshold = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative LockoutThreshold accepted")
	}
}

// TestNewFillsOTPOptionsPerField is a regression test: setting any OTP
// field while leaving Period zero used to silently discard the caller's
// other fields in favour of the full defaults.
func TestNewFillsOTPOptionsPerField(t *testing.T) {
	cfg := validConfig()
	cfg.OTP = otp.TOTPOptions{Digits: otp.EightDigits}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def := otp.DefaultTOTPOptions()
	got := s.OTPOptions()
	if got.Digits != otp.EightDigits {
		t.Fatalf("Digits = %d, want 8 (caller's choice discarded)", got.Digits)
	}
	if got.Period != def.Period || got.Skew != def.Skew || got.Algorithm != def.Algorithm {
		t.Fatalf("unset fields not defaulted: %+v", got)
	}

	// A fully zero OTP config still yields the full defaults.
	s2, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s2.OTPOptions() != def {
		t.Fatalf("zero OTP = %+v, want defaults %+v", s2.OTPOptions(), def)
	}

	// Negative skew means "no drift tolerance", not an error.
	cfg = validConfig()
	cfg.OTP = otp.TOTPOptions{Skew: -1}
	s3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s3.OTPOptions().Skew != 0 {
		t.Fatalf("Skew = %v, want 0", s3.OTPOptions().Skew)
	}
}

func TestNewRejectsBadOTPOptions(t *testing.T) {
	for name, o := range map[string]otp.TOTPOptions{
		"sub-second period": {Period: 500 * time.Millisecond},
		"negative period":   {Period: -time.Second},
		"bad digits":        {Digits: 5},
		"bad algorithm":     {Algorithm: otp.Algorithm(99)},
	} {
		cfg := validConfig()
		cfg.OTP = o
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSoftTokenLifecycle(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	enr, err := s.InitSoftToken("CProctor") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if enr.Type != TokenSoft || len(enr.Secret) != 20 || enr.URI == "" {
		t.Fatalf("enrollment = %+v", enr)
	}
	if !s.HasToken("cproctor") || !s.HasToken("CPROCTOR") {
		t.Fatal("HasToken false after init")
	}
	// Duplicate init rejected.
	if _, err := s.InitSoftToken("cproctor"); err != ErrHasToken {
		t.Fatalf("duplicate init: %v", err)
	}
	// The device code validates.
	code, err := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Check("cproctor", code)
	if err != nil || !res.OK {
		t.Fatalf("Check = %+v, %v", res, err)
	}
	// Remove.
	if err := s.RemoveToken("cproctor"); err != nil {
		t.Fatal(err)
	}
	if s.HasToken("cproctor") {
		t.Fatal("token survived removal")
	}
	if err := s.RemoveToken("cproctor"); err != ErrNoToken {
		t.Fatalf("double remove: %v", err)
	}
}

func TestReplayedCodeRejected(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	enr, _ := s.InitSoftToken("u")
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	if res, _ := s.Check("u", code); !res.OK {
		t.Fatal("first use rejected")
	}
	// "the provided token code is nullified" — same code again fails.
	if res, _ := s.Check("u", code); res.OK {
		t.Fatal("replayed code accepted")
	}
	// The next period's code works.
	sim.Advance(30 * time.Second)
	code2, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	if res, _ := s.Check("u", code2); !res.OK {
		t.Fatal("next-period code rejected")
	}
}

func TestFailureLeavesCodeValid(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	enr, _ := s.InitSoftToken("u")
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	// "In the event of a token mismatch, the token code remains valid".
	wrong := "000000"
	if wrong == code {
		wrong = "000001"
	}
	if res, _ := s.Check("u", wrong); res.OK {
		t.Fatal("wrong code accepted")
	}
	if res, _ := s.Check("u", code); !res.OK {
		t.Fatal("valid code rejected after a failure")
	}
}

// DESIGN.md §3.1-lockout experiment: 20 consecutive failures deactivate.
func TestLockout(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	enr, _ := s.InitSoftToken("u")

	wrongOf := func() string {
		code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
		if code == "999999" {
			return "999998"
		}
		return "999999"
	}
	for i := 1; i < DefaultLockoutThreshold; i++ {
		res, err := s.Check("u", wrongOf())
		if err != nil {
			t.Fatal(err)
		}
		if res.LockedOut {
			t.Fatalf("locked out at attempt %d, want %d", i, DefaultLockoutThreshold)
		}
	}
	// 20th failure trips the lockout.
	res, err := s.Check("u", wrongOf())
	if err != nil {
		t.Fatal(err)
	}
	if !res.LockedOut {
		t.Fatal("no lockout at threshold")
	}
	// Even a correct code is now rejected.
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	if _, err := s.Check("u", code); !errors.Is(err, ErrLockedOut) {
		t.Fatalf("post-lockout check err = %v", err)
	}
	if got := s.LockedOutUsers(); len(got) != 1 || got[0] != "u" {
		t.Fatalf("LockedOutUsers = %v", got)
	}
	// Admin reset restores service.
	if err := s.ResetFailures("u"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(30 * time.Second)
	code, _ = otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	if res, _ := s.Check("u", code); !res.OK {
		t.Fatal("valid code rejected after reset")
	}
}

func TestSuccessResetsFailCounter(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	enr, _ := s.InitSoftToken("u")
	// 19 failures then a success, then 19 more failures: never locked out
	// because the counter is *consecutive*.
	for round := 0; round < 2; round++ {
		for i := 0; i < DefaultLockoutThreshold-1; i++ {
			res, _ := s.Check("u", "000000")
			if res.LockedOut {
				t.Fatal("premature lockout")
			}
		}
		sim.Advance(30 * time.Second)
		code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
		if res, _ := s.Check("u", code); !res.OK {
			t.Fatal("valid code rejected")
		}
	}
}

func TestDriftWithinWindowAccepted(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	enr, _ := s.InitSoftToken("u")
	// Device 4 minutes fast: within ±300 s.
	code, _ := otp.TOTP(enr.Secret, sim.Now().Add(4*time.Minute), s.OTPOptions())
	if res, _ := s.Check("u", code); !res.OK {
		t.Fatal("4-minute drift rejected")
	}
	// 11 minutes fast: outside.
	code2, _ := otp.TOTP(enr.Secret, sim.Now().Add(11*time.Minute), s.OTPOptions())
	if res, _ := s.Check("u", code2); res.OK {
		t.Fatal("11-minute drift accepted")
	}
}

func TestSMSFlow(t *testing.T) {
	sim := clock.NewSim(t0)
	s, sms := newServer(t, sim)
	enr, err := s.InitSMSToken("storm", "5125551234")
	if err != nil {
		t.Fatal(err)
	}
	sent, msg, err := s.TriggerSMS("storm")
	if err != nil || !sent {
		t.Fatalf("TriggerSMS = %v %q %v", sent, msg, err)
	}
	if sms.count() != 1 {
		t.Fatalf("sms sent = %d", sms.count())
	}
	// While the code is active a second trigger is suppressed (§3.3).
	sent, msg, err = s.TriggerSMS("storm")
	if err != nil || sent {
		t.Fatalf("second trigger = %v %q %v", sent, msg, err)
	}
	if sms.count() != 1 {
		t.Fatal("duplicate SMS sent")
	}
	// The texted code validates.
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	if res, _ := s.Check("storm", code); !res.OK {
		t.Fatal("SMS code rejected")
	}
	// After validity passes, another trigger is allowed.
	sim.Advance(6 * time.Minute)
	sent, _, err = s.TriggerSMS("storm")
	if err != nil || !sent {
		t.Fatalf("post-expiry trigger = %v %v", sent, err)
	}
}

func TestSMSErrors(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	if _, err := s.InitSMSToken("u", ""); err == nil {
		t.Fatal("empty phone accepted")
	}
	s.InitSoftToken("softie")
	if _, _, err := s.TriggerSMS("softie"); err != ErrNotSMS {
		t.Fatalf("trigger on soft token: %v", err)
	}
	if _, _, err := s.TriggerSMS("ghost"); err != ErrNoToken {
		t.Fatalf("trigger on missing: %v", err)
	}
}

func TestHardTokenInventoryAndAssignment(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	secret := []byte("feitian-fob-secret!!")
	if err := s.ImportHardToken("C200-0001", secret); err != nil {
		t.Fatal(err)
	}
	if err := s.ImportHardToken("C200-0001", secret); err == nil {
		t.Fatal("duplicate import accepted")
	}
	if s.HardInventoryCount() != 1 {
		t.Fatalf("inventory = %d", s.HardInventoryCount())
	}
	enr, err := s.AssignHardToken("hanlon", "C200-0001")
	if err != nil {
		t.Fatal(err)
	}
	if enr.Serial != "C200-0001" || enr.Type != TokenHard {
		t.Fatalf("enrollment = %+v", enr)
	}
	if s.HardInventoryCount() != 0 {
		t.Fatal("fob still in inventory after assignment")
	}
	// The pre-programmed secret generates valid codes.
	code, _ := otp.TOTP(secret, sim.Now(), s.OTPOptions())
	if res, _ := s.Check("hanlon", code); !res.OK {
		t.Fatal("hard token code rejected")
	}
	// Unknown or consumed serials fail.
	if _, err := s.AssignHardToken("other", "C200-0001"); err != ErrBadSerial {
		t.Fatalf("reassign consumed serial: %v", err)
	}
	if _, err := s.AssignHardToken("other", "NOPE"); err != ErrBadSerial {
		t.Fatalf("unknown serial: %v", err)
	}
	if err := s.ImportHardToken("", nil); err == nil {
		t.Fatal("empty import accepted")
	}
}

func TestStaticTrainingToken(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	if err := s.SetStaticToken("train01", "123456"); err != nil {
		t.Fatal(err)
	}
	if res, _ := s.Check("train01", "123456"); !res.OK {
		t.Fatal("static code rejected")
	}
	// Static codes are reusable within a session (they are not TOTP).
	if res, _ := s.Check("train01", "123456"); !res.OK {
		t.Fatal("static code not reusable")
	}
	if res, _ := s.Check("train01", "654321"); res.OK {
		t.Fatal("wrong static code accepted")
	}
	// "easily regenerated once the training session is finished".
	if err := s.SetStaticToken("train01", "777777"); err != nil {
		t.Fatal(err)
	}
	if res, _ := s.Check("train01", "123456"); res.OK {
		t.Fatal("old static code still valid")
	}
	if res, _ := s.Check("train01", "777777"); !res.OK {
		t.Fatal("new static code rejected")
	}
	// Validation of code format.
	for _, bad := range []string{"", "12345", "1234567", "abcdef"} {
		if err := s.SetStaticToken("t2", bad); err != ErrBadStatic {
			t.Fatalf("SetStaticToken(%q) err = %v", bad, err)
		}
	}
	// Cannot overwrite a non-training token.
	s.InitSoftToken("softie")
	if err := s.SetStaticToken("softie", "111111"); err == nil {
		t.Fatal("static overwrite of soft token allowed")
	}
}

func TestResync(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	enr, _ := s.InitSoftToken("u")
	// Device drifted 20 minutes ahead.
	dev := sim.Now().Add(20 * time.Minute)
	c1, _ := otp.TOTP(enr.Secret, dev, s.OTPOptions())
	c2, _ := otp.TOTP(enr.Secret, dev.Add(30*time.Second), s.OTPOptions())
	if err := s.Resync("u", c1, c2); err != nil {
		t.Fatal(err)
	}
	// Garbage codes fail.
	if err := s.Resync("u", "000000", "111111"); err == nil {
		t.Fatal("bogus resync succeeded")
	}
	if err := s.Resync("ghost", "1", "2"); err != ErrNoToken {
		t.Fatalf("resync missing user: %v", err)
	}
}

func TestTokensAndTokenInfo(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	s.InitSoftToken("a")
	s.InitSMSToken("b", "5125551234")
	s.SetStaticToken("c", "123123")
	infos := s.Tokens()
	if len(infos) != 3 {
		t.Fatalf("Tokens() = %d", len(infos))
	}
	ti, err := s.Token("b")
	if err != nil {
		t.Fatal(err)
	}
	if ti.Type != TokenSMS || ti.Phone != "5125551234" || !ti.Active {
		t.Fatalf("TokenInfo = %+v", ti)
	}
	if !ti.Created.Equal(t0) {
		t.Fatalf("Created = %v", ti.Created)
	}
	if _, err := s.Token("zzz"); err != ErrNoToken {
		t.Fatalf("Token missing: %v", err)
	}
}

func TestAuditChain(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	enr, _ := s.InitSoftToken("u")
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	s.Check("u", code)
	s.Check("u", "000000")
	a := s.Audit()
	if a.Len() < 3 {
		t.Fatalf("audit entries = %d", a.Len())
	}
	if bad := a.Verify(); bad != 0 {
		t.Fatalf("fresh chain broken at %d", bad)
	}
	// Tamper with an entry: chain must break there.
	a.mu.Lock()
	a.entries[1].Detail = "forged"
	a.mu.Unlock()
	if bad := a.Verify(); bad != 2 {
		t.Fatalf("Verify after tamper = %d, want 2", bad)
	}
}

func TestSecretsEncryptedAtRest(t *testing.T) {
	sim := clock.NewSim(t0)
	db := store.OpenMemory()
	s, err := New(Config{DB: db, EncryptionKey: bytes.Repeat([]byte{9}, 32), Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	enr, _ := s.InitSoftToken("u")
	raw, err := db.Get("token/u")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, enr.Secret) {
		t.Fatal("plaintext secret found in the store")
	}
	b32 := otp.EncodeSecret(enr.Secret)
	if bytes.Contains(raw, []byte(b32)) {
		t.Fatal("base32 secret found in the store")
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	key := bytes.Repeat([]byte{7}, 32)
	sim := clock.NewSim(t0)

	db, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(Config{DB: db, EncryptionKey: key, Clock: sim})
	enr, _ := s.InitSoftToken("u")
	db.Close()

	db2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, _ := New(Config{DB: db2, EncryptionKey: key, Clock: sim})
	sim.Advance(time.Minute)
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s2.OTPOptions())
	if res, _ := s2.Check("u", code); !res.OK {
		t.Fatal("token unusable after restart")
	}
}

func TestConcurrentChecksDoNotRaceLockout(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	s.InitSoftToken("u")
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Check("u", "000000")
		}()
	}
	wg.Wait()
	ti, _ := s.Token("u")
	if ti.Active {
		t.Fatal("40 concurrent failures did not deactivate")
	}
	// The counter stops exactly at the threshold: once deactivated,
	// further attempts short-circuit without incrementing, and no
	// updates may be lost below it.
	if ti.FailCount != DefaultLockoutThreshold {
		t.Fatalf("FailCount = %d, want %d", ti.FailCount, DefaultLockoutThreshold)
	}
}

func TestCurrentCodeHelper(t *testing.T) {
	sim := clock.NewSim(t0)
	s, _ := newServer(t, sim)
	s.InitSoftToken("u")
	code, err := s.CurrentCode("u", 0)
	if err != nil || len(code) != 6 {
		t.Fatalf("CurrentCode = %q, %v", code, err)
	}
	if res, _ := s.Check("u", code); !res.OK {
		t.Fatal("CurrentCode does not validate")
	}
	s.SetStaticToken("tr", "222333")
	c2, _ := s.CurrentCode("tr", 0)
	if c2 != "222333" {
		t.Fatalf("static CurrentCode = %q", c2)
	}
}

func TestValidType(t *testing.T) {
	for _, typ := range []TokenType{TokenSoft, TokenSMS, TokenHard, TokenTraining} {
		if !ValidType(typ) {
			t.Errorf("%s invalid", typ)
		}
	}
	if ValidType("yubikey") {
		t.Error("unknown type valid")
	}
}

func BenchmarkCheckSuccess(b *testing.B) {
	sim := clock.NewSim(t0)
	s, _ := newServer(b, sim)
	enr, _ := s.InitSoftToken("u")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(30 * time.Second)
		code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
		if res, _ := s.Check("u", code); !res.OK {
			b.Fatal("rejected")
		}
	}
}

func BenchmarkCheckFailureWorstCase(b *testing.B) {
	sim := clock.NewSim(t0)
	s, _ := newServer(b, sim)
	s.InitSoftToken("u")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Check("u", "000000")
		if i%10 == 9 {
			s.ResetFailures("u") // keep it from locking out
		}
	}
}

func ExampleServer_Check() {
	db := store.OpenMemory()
	sim := clock.NewSim(time.Date(2016, 10, 4, 0, 0, 0, 0, time.UTC))
	s, _ := New(Config{DB: db, EncryptionKey: bytes.Repeat([]byte{1}, 32), Clock: sim})
	enr, _ := s.InitSoftToken("alice")
	code, _ := otp.TOTP(enr.Secret, sim.Now(), s.OTPOptions())
	res, _ := s.Check("alice", code)
	fmt.Println(res.OK, res.Message)
	// Output: true token validated
}
