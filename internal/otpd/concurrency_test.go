package otpd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openmfa/internal/clock"
	"openmfa/internal/otp"
	"openmfa/internal/store"
)

// TestConcurrentValidationIntegrity hammers Check for many users at once
// (run under -race by the verify target). For each user it asserts the two
// per-user invariants the lock striping must preserve:
//
//   - fail counter: N concurrent wrong guesses leave FailCount == N;
//   - replay high-water mark: K concurrent submissions of the same valid
//     code yield exactly one success ("the provided token code is
//     nullified", §3.2).
func TestConcurrentValidationIntegrity(t *testing.T) {
	sim := clock.NewSim(t0)
	sms := &capturedSMS{}
	srv, err := New(Config{
		DB:            store.OpenMemory(),
		EncryptionKey: make([]byte, 32),
		Clock:         sim,
		SMS:           sms,
		// High threshold so the wrong-guess storm never deactivates.
		LockoutThreshold: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		users      = 16
		wrongPer   = 25 // concurrent wrong guesses per user
		replaysPer = 8  // concurrent submissions of the same valid code
	)
	secrets := make([][]byte, users)
	for i := 0; i < users; i++ {
		enr, err := srv.InitSoftToken(fmt.Sprintf("user%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		secrets[i] = enr.Secret
	}

	var wg sync.WaitGroup
	successes := make([]int64, users)
	for i := 0; i < users; i++ {
		user := fmt.Sprintf("user%02d", i)
		code, err := otp.TOTP(secrets[i], sim.Now(), srv.OTPOptions())
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < wrongPer; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if res, _ := srv.Check(user, "000000"); res.OK {
					t.Error("wrong code accepted")
				}
			}()
		}
		for g := 0; g < replaysPer; g++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := srv.Check(user, code)
				if err != nil {
					t.Errorf("%s: %v", user, err)
					return
				}
				if res.OK {
					atomic.AddInt64(&successes[i], 1)
				}
			}(i)
		}
	}
	wg.Wait()

	for i := 0; i < users; i++ {
		user := fmt.Sprintf("user%02d", i)
		if got := atomic.LoadInt64(&successes[i]); got != 1 {
			t.Errorf("%s: %d successes for one code, want exactly 1 (replay mark raced)", user, got)
		}
		ti, err := srv.Token(user)
		if err != nil {
			t.Fatal(err)
		}
		// The success resets FailCount, so the final count is the number
		// of failed attempts ordered after the success: wrong guesses
		// plus replays of the consumed code (at most replaysPer-1, since
		// exactly one submission of the code wins). A double-counted or
		// lost increment would break the bound.
		if ti.FailCount < 0 || ti.FailCount > wrongPer+replaysPer-1 {
			t.Errorf("%s: FailCount = %d, want 0..%d", user, ti.FailCount, wrongPer+replaysPer-1)
		}
		if !ti.Active {
			t.Errorf("%s deactivated below threshold", user)
		}
	}
}

// TestConcurrentWrongGuessesCountExactly pins the fail counter precisely:
// with no interleaved success, N concurrent failures must count to N —
// not fewer (lost read-modify-write) and not more.
func TestConcurrentWrongGuessesCountExactly(t *testing.T) {
	sim := clock.NewSim(t0)
	srv, err := New(Config{
		DB:               store.OpenMemory(),
		EncryptionKey:    make([]byte, 32),
		Clock:            sim,
		LockoutThreshold: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	const users, guesses = 8, 40
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		user := fmt.Sprintf("victim%d", i)
		if _, err := srv.InitSoftToken(user); err != nil {
			t.Fatal(err)
		}
		for g := 0; g < guesses; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.Check(user, "999999")
			}()
		}
	}
	wg.Wait()
	for i := 0; i < users; i++ {
		user := fmt.Sprintf("victim%d", i)
		ti, err := srv.Token(user)
		if err != nil {
			t.Fatal(err)
		}
		if ti.FailCount != guesses {
			t.Errorf("%s: FailCount = %d, want %d", user, ti.FailCount, guesses)
		}
	}
}

// TestConcurrentEnrollmentSingleWinner: concurrent InitSoftToken calls for
// the same user must produce exactly one token (the Has/save pair is a
// read-modify-write under the user stripe).
func TestConcurrentEnrollmentSingleWinner(t *testing.T) {
	srv, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	const attempts = 16
	var wg sync.WaitGroup
	var wins int64
	for g := 0; g < attempts; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.InitSoftToken("newbie"); err == nil {
				atomic.AddInt64(&wins, 1)
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d enrollments succeeded, want 1", wins)
	}
}

// TestConcurrentHardTokenAssignment: one fob, many claimants — exactly one
// assignment may win, and the inventory entry must be consumed once.
func TestConcurrentHardTokenAssignment(t *testing.T) {
	srv, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ImportHardToken("F-001", []byte("fob-secret-20-bytes!")); err != nil {
		t.Fatal(err)
	}
	const claimants = 12
	var wg sync.WaitGroup
	var wins int64
	for g := 0; g < claimants; g++ {
		user := fmt.Sprintf("claimant%d", g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.AssignHardToken(user, "F-001"); err == nil {
				atomic.AddInt64(&wins, 1)
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d assignments succeeded, want 1", wins)
	}
	if n := srv.HardInventoryCount(); n != 0 {
		t.Fatalf("inventory count = %d, want 0", n)
	}
}

// TestParallelUsersDoNotSerialise is a smoke check that two different
// users' validations can overlap in time: user A's Check blocks inside the
// SMS sender while user B's Check completes. Under the old process-wide
// mutex B would deadlock behind A.
func TestParallelUsersDoNotSerialise(t *testing.T) {
	sim := clock.NewSim(t0)
	inA := make(chan struct{})
	release := make(chan struct{})
	srv, err := New(Config{
		DB:            store.OpenMemory(),
		EncryptionKey: make([]byte, 32),
		Clock:         sim,
		SMS: SMSSenderFunc(func(phone, body string) error {
			close(inA)
			<-release
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.InitSMSToken("slow", "+15125550100"); err != nil {
		t.Fatal(err)
	}
	enr, err := srv.InitSoftToken("fast")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.TriggerSMS("slow") // holds "slow"'s stripe inside the sender
	}()
	<-inA

	code, _ := otp.TOTP(enr.Secret, sim.Now(), srv.OTPOptions())
	checked := make(chan CheckResult, 1)
	go func() {
		res, _ := srv.Check("fast", code)
		checked <- res
	}()
	select {
	case res := <-checked:
		if !res.OK {
			t.Fatalf("fast user's check failed: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast user's validation blocked behind slow user's lock")
	}
	close(release)
	<-done
}
