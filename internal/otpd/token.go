// Package otpd is the OTP platform at the core of the back end — the
// LinOTP substitute (§3.1). It keeps the repository of users and their
// associated one-time-password secret keys (encrypted at rest), validates
// token codes with replay protection and drift windows, enforces the
// 20-consecutive-failure lockout, implements the SMS challenge flow, static
// training tokens, token resynchronisation, an HMAC-chained audit log, and
// a REST admin API protected by HTTP Digest authentication.
package otpd

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"openmfa/internal/store"
)

// unmarshal wraps json.Unmarshal with a package-tagged error.
func unmarshal(b []byte, v any) error {
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("otpd: decode: %w", err)
	}
	return nil
}

// TokenType is the device pairing class (§3.3, Table 1).
type TokenType string

// The four token types the deployment supports.
const (
	TokenSoft     TokenType = "soft"     // in-house smartphone app
	TokenSMS      TokenType = "sms"      // Twilio-delivered codes
	TokenHard     TokenType = "hard"     // Feitian OTP c200 fob
	TokenTraining TokenType = "training" // static code for workshop accounts
)

// ValidType reports whether t is a known token type.
func ValidType(t TokenType) bool {
	switch t {
	case TokenSoft, TokenSMS, TokenHard, TokenTraining:
		return true
	}
	return false
}

// DefaultLockoutThreshold is the paper's deactivation threshold: "A
// threshold of 20 consecutive failed attempts must occur before a user
// account is temporarily deactivated" (§3.1).
const DefaultLockoutThreshold = 20

// record is the persisted form of a token. Secrets are sealed with the
// server's Box before they reach the store.
type record struct {
	User         string    `json:"user"`
	Type         TokenType `json:"type"`
	SecretSealed []byte    `json:"secret_sealed,omitempty"`
	StaticSealed []byte    `json:"static_sealed,omitempty"`
	Serial       string    `json:"serial,omitempty"`
	Phone        string    `json:"phone,omitempty"`
	Active       bool      `json:"active"`
	FailCount    int       `json:"fail_count"`
	LastCounter  uint64    `json:"last_counter"` // replay high-water mark
	LastSMSUnix  int64     `json:"last_sms_unix,omitempty"`
	CreatedUnix  int64     `json:"created_unix"`
}

// TokenInfo is the admin-visible view of a token (no secret material).
type TokenInfo struct {
	User      string    `json:"user"`
	Type      TokenType `json:"type"`
	Serial    string    `json:"serial,omitempty"`
	Phone     string    `json:"phone,omitempty"`
	Active    bool      `json:"active"`
	FailCount int       `json:"fail_count"`
	Created   time.Time `json:"created"`
}

func (r *record) info() TokenInfo {
	return TokenInfo{
		User: r.User, Type: r.Type, Serial: r.Serial, Phone: r.Phone,
		Active: r.Active, FailCount: r.FailCount,
		Created: time.Unix(r.CreatedUnix, 0).UTC(),
	}
}

func tokenKey(user string) string     { return "token/" + strings.ToLower(user) }
func hardInvKey(serial string) string { return "hardinv/" + serial }

// Well-known errors.
var (
	ErrNoToken   = errors.New("otpd: user has no token")
	ErrHasToken  = errors.New("otpd: user already has a token")
	ErrLockedOut = errors.New("otpd: token deactivated after too many failures")
	ErrBadType   = errors.New("otpd: invalid token type")
	ErrBadSerial = errors.New("otpd: unknown or assigned hard token serial")
	ErrNotSMS    = errors.New("otpd: token is not an SMS token")
	ErrInactive  = errors.New("otpd: token is inactive")
	ErrBadStatic = errors.New("otpd: static code must be six digits")
)

func (s *Server) loadRecord(user string) (*record, error) {
	b, err := s.db.Get(tokenKey(user))
	if errors.Is(err, store.ErrNotFound) {
		return nil, ErrNoToken
	}
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("otpd: corrupt record for %s: %w", user, err)
	}
	return &r, nil
}

func (s *Server) saveRecord(r *record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return s.writes.Put(tokenKey(r.User), b)
}

func (s *Server) sealSecret(user string, secret []byte) []byte {
	return s.box.Seal(secret, []byte("user:"+strings.ToLower(user)))
}

func (s *Server) openSecret(user string, sealed []byte) ([]byte, error) {
	return s.box.Open(sealed, []byte("user:"+strings.ToLower(user)))
}

// hardInventory is the persisted form of an unassigned fob.
type hardInventory struct {
	Serial       string `json:"serial"`
	SecretSealed []byte `json:"secret_sealed"`
}

// ImportHardToken loads one pre-programmed fob into inventory. The paper's
// batch purchase "came pre-programmed with a secret key, all of which were
// provided at the time of batch purchase" (§3.3).
func (s *Server) ImportHardToken(serial string, secret []byte) error {
	if serial == "" || len(secret) == 0 {
		return errors.New("otpd: serial and secret required")
	}
	s.serials.Lock(serial)
	defer s.serials.Unlock(serial)
	if s.db.Has(hardInvKey(serial)) {
		return fmt.Errorf("otpd: serial %s already imported", serial)
	}
	inv := hardInventory{Serial: serial, SecretSealed: s.box.Seal(secret, []byte("serial:"+serial))}
	b, err := json.Marshal(inv)
	if err != nil {
		return err
	}
	if err := s.db.Put(hardInvKey(serial), b); err != nil {
		return err
	}
	s.audit.Record("import_hard", "", "serial="+serial, true)
	return nil
}

// HardInventoryCount reports unassigned fobs remaining.
func (s *Server) HardInventoryCount() int { return s.db.Count("hardinv/") }
