package otpd

import (
	"context"
	"errors"

	"openmfa/internal/obs"
	"openmfa/internal/radius"
)

// RadiusHandler adapts the OTP platform to the RADIUS protocol, the glue
// described in §3.2: "The token code is sent using challenge-response
// functionality of the RADIUS protocol to a server that then negotiates a
// response from the LinOTP database."
//
// Request handling:
//
//   - Empty User-Password from an SMS-paired user → trigger a text message
//     and answer Access-Challenge with a State attribute and a
//     Reply-Message ("an SMS ... has been sent", or the already-sent
//     notice while a code is active).
//   - Otherwise validate the code: Access-Accept on success (the code is
//     nullified), Access-Reject with a Reply-Message on failure.
type RadiusHandler struct {
	OTP *Server
}

// ServeRADIUS implements radius.Handler.
func (h *RadiusHandler) ServeRADIUS(req *radius.Request) *radius.Packet {
	user := req.Username()
	if user == "" {
		return reject("missing user name")
	}
	code, err := req.Password()
	if err != nil {
		return reject("undecodable password attribute")
	}
	// The NAS's trace ID rides in on Proxy-State; rehydrate it into a
	// context so otpd's log lines join the same trace.
	ctx := obs.WithTrace(context.Background(), req.Trace())

	if code == "" {
		// Null request: SMS trigger (§3.4 Figure 2).
		sent, msg, err := h.OTP.TriggerSMSCtx(ctx, user)
		switch {
		case errors.Is(err, ErrNotSMS), errors.Is(err, ErrNoToken):
			// Not an SMS user: prompt for the device code directly.
			return challenge("enter your token code")
		case errors.Is(err, ErrLockedOut):
			return reject("token deactivated; contact support")
		case err != nil:
			return reject("token service unavailable")
		}
		_ = sent
		return challenge(msg)
	}

	res, err := h.OTP.CheckCtx(ctx, user, code)
	switch {
	case errors.Is(err, ErrNoToken):
		return reject("no token paired")
	case errors.Is(err, ErrLockedOut):
		return reject("token deactivated; contact support")
	case err != nil:
		return reject("token service unavailable")
	}
	if !res.OK {
		return reject(res.Message)
	}
	out := &radius.Packet{Code: radius.AccessAccept}
	out.AddString(radius.AttrReplyMessage, res.Message)
	return out
}

func reject(msg string) *radius.Packet {
	p := &radius.Packet{Code: radius.AccessReject}
	p.AddString(radius.AttrReplyMessage, msg)
	return p
}

func challenge(msg string) *radius.Packet {
	p := &radius.Packet{Code: radius.AccessChallenge}
	p.Add(radius.AttrState, []byte("otpd-challenge"))
	p.AddString(radius.AttrReplyMessage, msg)
	return p
}
