package otpd

import (
	"math"
	"os"
	"testing"
	"time"

	"openmfa/internal/obs"
	"openmfa/internal/obs/prof"
)

// profGateConfig runs the continuous profiler far hotter than the
// shipped defaults (50ms CPU window every 500ms — the structural 10%
// clamp ceiling, versus 250ms/30s ≈ 0.8% in production) so the gate
// bounds the worst case the engine can be configured to.
func profGateConfig(reg *obs.Registry) prof.Config {
	return prof.Config{
		Obs:         reg,
		Period:      500 * time.Millisecond,
		CPUDuration: 50 * time.Millisecond,
	}
}

// BenchmarkCheckUnderProfiler measures otpd.Check with the continuous
// profiler sampling at its structural ceiling in the background — the
// recorded-trajectory companion to TestProfOverheadGate.
func BenchmarkCheckUnderProfiler(b *testing.B) {
	reg := obs.NewRegistry()
	e, err := prof.New(profGateConfig(reg))
	if err != nil {
		b.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	benchCheck(b, reg)
}

// TestProfOverheadGate enforces the tentpole's overhead budget: with the
// continuous profiler sampling at its structural ceiling, otpd.Check
// must stay within 5% of the profiler-off cost. Env-gated and measured
// exactly like TestObsOverheadGate (ABBA interleave, min of trials,
// repeated attempts), with one extra wrinkle: CPU profiling is
// process-wide, so the profiler-off arm runs with no engine alive — a
// fresh engine is started and stopped around each profiled trial.
func TestProfOverheadGate(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GATE") == "" {
		t.Skip("set OBS_OVERHEAD_GATE=1 (make bench-obs) to run the overhead gate")
	}
	const (
		trials   = 5
		attempts = 3
		budget   = 0.05
	)
	reg := obs.NewRegistry()
	srv := newBenchServer(t, reg) // one server: the profiler is the only variable
	run := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				srv.Check("bench", "00000")
			}
		})
		return float64(r.NsPerOp())
	}
	runProfiled := func() float64 {
		e, err := prof.New(profGateConfig(reg))
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		defer e.Stop()
		return run()
	}
	run() // warm-up: page in both paths before timing
	runProfiled()
	measure := func() (off, on float64) {
		off, on = math.Inf(1), math.Inf(1)
		for i := 0; i < trials; i++ {
			if i%2 == 0 {
				off = math.Min(off, run())
				on = math.Min(on, runProfiled())
			} else {
				on = math.Min(on, runProfiled())
				off = math.Min(off, run())
			}
		}
		return off, on
	}
	overhead := 0.0
	for attempt := 1; attempt <= attempts; attempt++ {
		off, on := measure()
		overhead = (on - off) / off
		t.Logf("attempt %d: profiler off %.0f ns/op, profiler on %.0f ns/op, overhead %.2f%%",
			attempt, off, on, 100*overhead)
		if overhead <= budget {
			return
		}
	}
	t.Errorf("Check stayed more than %.0f%% slower under the profiler across %d measurements (last: %.2f%%)",
		100*budget, attempts, 100*overhead)
}
