// Package leakcheck asserts that a test leaves no goroutines behind. The
// degraded-network hardening work (per-phase deadlines in sshd, retransmit
// backoff in the RADIUS client) exists precisely so stalled peers cannot
// pin goroutines forever; this helper is how those tests prove it.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settle is how long Check waits for goroutine counts to drain back to
// baseline before declaring a leak. Network teardown (UDP handler fan-out,
// sshd connection handlers) legitimately takes a few scheduler rounds.
const settle = 5 * time.Second

// Check snapshots the current goroutines and registers a cleanup that
// fails the test if new ones are still alive after the test (and every
// cleanup registered after this call) has finished. Call it first thing:
//
//	func TestX(t *testing.T) {
//		leakcheck.Check(t)
//		...
//	}
//
// Cleanups run LIFO, so servers started (and closed via t.Cleanup) after
// Check are already down when the comparison runs.
func Check(t testing.TB) {
	t.Helper()
	before := interesting(stacks())
	t.Cleanup(func() {
		deadline := time.Now().Add(settle)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range interesting(stacks()) {
				if _, ok := before[id]; !ok {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	})
}

// stacks returns every goroutine's stack, keyed by goroutine ID line.
func stacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" {
			continue
		}
		id := g
		if i := strings.Index(g, "\n"); i >= 0 {
			id = g[:i]
		}
		out[id] = g
	}
	return out
}

// interesting filters out runtime and testing-harness goroutines that come
// and go on their own and would make the comparison flaky.
func interesting(gs map[string]string) map[string]string {
	out := make(map[string]string, len(gs))
	for id, stack := range gs {
		switch {
		case strings.Contains(stack, "testing.(*T).Run"),
			strings.Contains(stack, "testing.Main"),
			strings.Contains(stack, "testing.runTests"),
			strings.Contains(stack, "testing.tRunner.func"),
			strings.Contains(stack, "runtime.gc"),
			strings.Contains(stack, "runtime.MHeap_Scavenger"),
			strings.Contains(stack, "signal.signal_recv"),
			strings.Contains(stack, "sigterm.handler"),
			strings.Contains(stack, "runtime_mcall"),
			strings.Contains(stack, "goroutine in C code"):
			continue
		}
		out[id] = stack
	}
	return out
}

// Count returns the number of interesting goroutines right now — handy for
// asserting a server's handler fan-out returned to baseline mid-test.
func Count() int { return len(interesting(stacks())) }

// Dump formats all interesting goroutines, for debugging chaos failures.
func Dump() string {
	gs := interesting(stacks())
	parts := make([]string, 0, len(gs))
	for _, s := range gs {
		parts = append(parts, s)
	}
	return fmt.Sprintf("%d goroutines:\n%s", len(gs), strings.Join(parts, "\n---\n"))
}
