package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"openmfa/internal/obs"
)

// Handler serves the recorder:
//
//	GET /debug/flightrec                      summaries, newest first (JSON)
//	GET /debug/flightrec?class=reject         filter by result class or keep reason
//	GET /debug/flightrec?min=750ms            filter by minimum duration
//	GET /debug/flightrec?limit=50             bound the listing
//	GET /debug/flightrec?trace=<id>           one full bundle (JSON)
//	GET /debug/flightrec?trace=<id>&format=tree   ASCII span tree
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		qp := req.URL.Query()
		if trace := qp.Get("trace"); trace != "" {
			b, err := r.Get(trace)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if b == nil {
				http.Error(w, "flightrec: no bundle for trace "+trace, http.StatusNotFound)
				return
			}
			if qp.Get("format") == "tree" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				RenderTree(w, b)
				return
			}
			writeJSON(w, b)
			return
		}
		q := Query{Class: qp.Get("class")}
		if v := qp.Get("min"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "flightrec: bad min duration: "+err.Error(), http.StatusBadRequest)
				return
			}
			q.MinDuration = d
		}
		if v := qp.Get("limit"); v != "" {
			if _, err := fmt.Sscanf(v, "%d", &q.Limit); err != nil {
				http.Error(w, "flightrec: bad limit", http.StatusBadRequest)
				return
			}
		}
		writeJSON(w, struct {
			Bundles []Summary `json:"bundles"`
		}{r.List(q)})
	})
}

// Mount registers the handler at GET /debug/flightrec.
func (r *Recorder) Mount(mux *http.ServeMux) {
	mux.Handle("GET /debug/flightrec", r.Handler())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// RenderTree writes a human-readable view of one bundle: a header line,
// the span tree (legs joined by trace ID render as siblings of the
// in-process root), then the trace's events and log lines.
func RenderTree(w io.Writer, b *Bundle) {
	fmt.Fprintf(w, "trace %s user=%s addr=%s result=%s reason=%s duration=%s",
		b.Trace, b.User, b.Addr, b.Result, b.Reason, b.Duration)
	if b.Truncated {
		fmt.Fprint(w, " [span tree truncated by eviction]")
	}
	fmt.Fprintln(w)

	children := map[uint64][]obs.SpanData{}
	var roots []obs.SpanData
	ids := map[uint64]bool{}
	for _, sp := range b.Spans {
		ids[sp.ID] = true
	}
	for _, sp := range b.Spans {
		if sp.Parent != 0 && ids[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	sortSpans(roots)
	for id := range children {
		sortSpans(children[id])
	}
	for i, sp := range roots {
		renderSpan(w, sp, children, "", i == len(roots)-1)
	}
	if len(b.Events) > 0 {
		fmt.Fprintln(w, "events:")
		for _, ev := range b.Events {
			fmt.Fprintf(w, "  %s %s component=%s result=%s\n",
				ev.Time.UTC().Format("15:04:05.000"), ev.Type, ev.Component, ev.Result)
		}
	}
	if len(b.Logs) > 0 {
		fmt.Fprintln(w, "logs:")
		for _, line := range b.Logs {
			fmt.Fprintf(w, "  %s\n", line)
		}
		if b.LogsDropped > 0 {
			fmt.Fprintf(w, "  ... %d more lines dropped\n", b.LogsDropped)
		}
	}
}

func sortSpans(spans []obs.SpanData) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
}

func renderSpan(w io.Writer, sp obs.SpanData, children map[uint64][]obs.SpanData, prefix string, last bool) {
	branch, cont := "├─ ", "│  "
	if last {
		branch, cont = "└─ ", "   "
	}
	var attrs strings.Builder
	for _, a := range sp.Attrs {
		fmt.Fprintf(&attrs, " %s=%s", a.Key, a.Value)
	}
	fmt.Fprintf(w, "%s%s%s %s%s\n", prefix, branch, sp.Name, sp.Duration(), attrs.String())
	kids := children[sp.ID]
	for i, kid := range kids {
		renderSpan(w, kid, children, prefix+cont, i == len(kids)-1)
	}
}
