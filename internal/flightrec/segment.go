package flightrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment framing mirrors the store WAL's format-v2 discipline: every
// persisted bundle is exactly one frame,
//
//	[u32 payload length][u32 CRC32-IEEE of payload][JSON payload][0xC3]
//
// little-endian, committed only when all four pieces are present and
// consistent. Recovery scans each segment frame-by-frame and truncates at
// the first incomplete or corrupt frame, so a crash mid-append can lose
// at most the bundle being written — a torn tail never yields a
// half-bundle to a reader.
//
// Segments are named flightrec-NNNNNN.seg and rotate by size: when the
// active segment exceeds MaxSegmentSize a new one is opened, and when the
// directory holds more than MaxSegments the oldest is deleted. Queries
// read frames back off disk, so the recorder's memory footprint is just
// the per-trace index.
const (
	commitMarker    = 0xC3
	frameHeaderSize = 8
	maxPayloadSize  = 1 << 26 // 64 MiB; a bundle is a few KiB in practice

	segPrefix = "flightrec-"
	segSuffix = ".seg"
)

var (
	errShortFrame  = errors.New("flightrec: incomplete segment frame")
	errBadLength   = errors.New("flightrec: segment frame length out of range")
	errBadChecksum = errors.New("flightrec: segment frame checksum mismatch")
	errBadMarker   = errors.New("flightrec: segment frame missing commit marker")
)

// encodeFrame renders one complete frame around payload.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload)+1)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	buf[frameHeaderSize+len(payload)] = commitMarker
	return buf
}

// decodeFrame parses the frame at the start of b, returning the payload
// and the total frame size consumed. Any defect (short data, bad length,
// checksum mismatch, missing commit marker) is an error; callers treat it
// as the torn tail and stop.
func decodeFrame(b []byte) (payload []byte, frameLen int, err error) {
	if len(b) < frameHeaderSize {
		return nil, 0, errShortFrame
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	if plen <= 0 || plen > maxPayloadSize {
		return nil, 0, errBadLength
	}
	total := frameHeaderSize + plen + 1
	if len(b) < total {
		return nil, 0, errShortFrame
	}
	payload = b[frameHeaderSize : frameHeaderSize+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, errBadChecksum
	}
	if b[frameHeaderSize+plen] != commitMarker {
		return nil, 0, errBadMarker
	}
	return payload, total, nil
}

// segName renders the segment filename for seq.
func segName(seq uint64) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix)
}

// segSeq parses a segment filename, reporting ok=false for foreign files.
func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range ents {
		if seq, ok := segSeq(ent.Name()); ok && !ent.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// frameRef locates one committed frame on disk.
type frameRef struct {
	seg    uint64
	offset int64
	length int // full frame length including header and marker
}

// scanSegment walks every committed frame in one segment file, invoking
// fn with each payload and its location. It returns the byte offset of
// the first torn or corrupt frame (== file size when the segment is
// clean), which the recorder uses to truncate the recovered tail.
func scanSegment(dir string, seq uint64, fn func(payload []byte, ref frameRef) error) (validEnd int64, err error) {
	data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
	if err != nil {
		return 0, err
	}
	off := 0
	for off < len(data) {
		payload, frameLen, derr := decodeFrame(data[off:])
		if derr != nil {
			// Torn tail: everything before off is intact.
			return int64(off), nil
		}
		if fn != nil {
			if err := fn(payload, frameRef{seg: seq, offset: int64(off), length: frameLen}); err != nil {
				return int64(off), err
			}
		}
		off += frameLen
	}
	return int64(off), nil
}

// readFrame fetches one frame's payload back off disk by reference,
// re-verifying the checksum so a post-write disk corruption surfaces as
// an error rather than bad JSON.
func readFrame(dir string, ref frameRef) ([]byte, error) {
	f, err := os.Open(filepath.Join(dir, segName(ref.seg)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, ref.length)
	if _, err := io.ReadFull(io.NewSectionReader(f, ref.offset, int64(ref.length)), buf); err != nil {
		return nil, fmt.Errorf("flightrec: read frame: %w", err)
	}
	payload, _, err := decodeFrame(buf)
	if err != nil {
		return nil, err
	}
	return payload, nil
}
