package flightrec

import "openmfa/internal/seglog"

// The recorder's segment framing lives in internal/seglog — the shared
// crash-safe layer it now has in common with the incident profiler
// (internal/obs/prof) — with the same on-disk format this package always
// used: every persisted bundle is exactly one
//
//	[u32 payload length][u32 CRC32-IEEE of payload][JSON payload][0xC3]
//
// frame, recovery truncates torn tails, rotation is size-capped with
// oldest-segment eviction. Existing flightrec-NNNNNN.seg directories read
// back unchanged. The aliases below keep the recorder and its frame-level
// tests on the historical names.
const (
	commitMarker    = seglog.CommitMarker
	frameHeaderSize = seglog.FrameHeaderSize

	segPrefix = "flightrec-"
	segSuffix = seglog.SegSuffix
)

// frameRef locates one committed frame on disk.
type frameRef = seglog.Ref

func encodeFrame(payload []byte) []byte { return seglog.EncodeFrame(payload) }

func decodeFrame(b []byte) (payload []byte, frameLen int, err error) {
	return seglog.DecodeFrame(b)
}

func segName(seq uint64) string { return seglog.SegName(segPrefix, seq) }

func segSeq(name string) (uint64, bool) { return seglog.SegSeq(segPrefix, name) }

func listSegments(dir string) ([]uint64, error) { return seglog.ListSegments(dir, segPrefix) }

func scanSegment(dir string, seq uint64, fn func(payload []byte, ref frameRef) error) (validEnd int64, err error) {
	return seglog.ScanSegment(dir, segPrefix, seq, fn)
}
