package flightrec

import (
	"bytes"
	"io"
	"sync"
)

// LogTee wraps a log writer and indexes every line that carries a
// ` trace=<id>` token (the obs.Logger convention) by its trace ID, so the
// recorder can attach the relevant log lines to a bundle. Lines pass
// through to the underlying writer untouched.
//
// The index is bounded on both axes: at most MaxLinesPerTrace lines are
// kept per trace (later lines are dropped and counted in the bundle's
// LogsDropped), and at most MaxTraces traces are indexed at once (oldest
// evicted first). Take removes a trace's lines, so a recorder that drains
// every completed login keeps the tee near-empty in steady state.
type LogTee struct {
	w io.Writer

	mu      sync.Mutex
	lines   map[string][]string
	dropped map[string]int
	order   []string // trace insertion order for FIFO eviction

	maxLines  int
	maxTraces int
}

// Tee bounds.
const (
	DefaultMaxLinesPerTrace = 32
	DefaultMaxTracedTraces  = 1024
)

// NewLogTee wraps w. maxLines and maxTraces fall back to the defaults
// when non-positive.
func NewLogTee(w io.Writer, maxLines, maxTraces int) *LogTee {
	if maxLines <= 0 {
		maxLines = DefaultMaxLinesPerTrace
	}
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTracedTraces
	}
	return &LogTee{
		w:         w,
		lines:     make(map[string][]string),
		dropped:   make(map[string]int),
		maxLines:  maxLines,
		maxTraces: maxTraces,
	}
}

var traceToken = []byte(" trace=")

// Write implements io.Writer. Each call from obs.Logger is exactly one
// newline-terminated line, but Write tolerates multi-line payloads from
// other sources.
func (t *LogTee) Write(p []byte) (int, error) {
	if t == nil {
		return len(p), nil
	}
	for rest := p; len(rest) > 0; {
		line := rest
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			rest = nil
		}
		if trace := traceOf(line); trace != "" {
			t.index(trace, string(line))
		}
	}
	if t.w == nil {
		return len(p), nil
	}
	return t.w.Write(p)
}

// traceOf extracts the trace ID from a log line, or "".
func traceOf(line []byte) string {
	i := bytes.Index(line, traceToken)
	if i < 0 {
		return ""
	}
	v := line[i+len(traceToken):]
	if j := bytes.IndexByte(v, ' '); j >= 0 {
		v = v[:j]
	}
	return string(bytes.Trim(v, `"`))
}

func (t *LogTee) index(trace, line string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ls, known := t.lines[trace]
	if !known {
		if len(t.order) >= t.maxTraces {
			old := t.order[0]
			t.order = t.order[1:]
			delete(t.lines, old)
			delete(t.dropped, old)
		}
		t.order = append(t.order, trace)
	}
	if len(ls) >= t.maxLines {
		t.dropped[trace]++
		return
	}
	t.lines[trace] = append(ls, line)
}

// Take removes and returns the indexed lines for trace, with the count of
// lines dropped by the per-trace bound. Nil-safe.
func (t *LogTee) Take(trace string) (lines []string, dropped int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	lines = t.lines[trace]
	dropped = t.dropped[trace]
	if _, known := t.lines[trace]; known {
		delete(t.lines, trace)
		delete(t.dropped, trace)
		for i, tr := range t.order {
			if tr == trace {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
	return lines, dropped
}

// Traces reports how many traces are currently indexed (for tests).
func (t *LogTee) Traces() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lines)
}
