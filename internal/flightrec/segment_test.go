package flightrec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeBundles(t *testing.T, dir string, n int) []string {
	t.Helper()
	rec, err := New(Config{Dir: dir, Policy: Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	var traces []string
	rec.mu.Lock()
	for i := 0; i < n; i++ {
		trace := fmt.Sprintf("tr-%02d", i)
		traces = append(traces, trace)
		if err := rec.persistLocked(&Bundle{
			Trace: trace, Time: testT0.Add(time.Duration(i) * time.Second),
			User: "alice", Result: "reject", Reason: ReasonFailed,
		}); err != nil {
			rec.mu.Unlock()
			t.Fatal(err)
		}
	}
	rec.mu.Unlock()
	rec.Stop()
	return traces
}

// TestTornTailSweep is the crash-recovery exhaustiveness test: a segment
// holding several bundles is truncated at EVERY byte offset, and recovery
// must (a) never error, (b) recover exactly the bundles whose frames lie
// entirely before the cut, (c) never produce a half-bundle, and (d) leave
// the directory appendable.
func TestTornTailSweep(t *testing.T) {
	src := t.TempDir()
	traces := writeBundles(t, src, 4)
	segPath := filepath.Join(src, segName(1))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: recovery at a boundary keeps every frame before it.
	boundaries := []int{0}
	for off := 0; off < len(data); {
		_, frameLen, err := decodeFrame(data[off:])
		if err != nil {
			t.Fatalf("intact segment has bad frame at %d: %v", off, err)
		}
		off += frameLen
		boundaries = append(boundaries, off)
	}
	wholeFramesBefore := func(cut int) int {
		n := 0
		for _, b := range boundaries[1:] {
			if b <= cut {
				n++
			}
		}
		return n
	}

	for cut := len(data); cut >= 0; cut-- {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		rec, err := New(Config{Dir: dir, Policy: Policy{}})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		want := wholeFramesBefore(cut)
		if got := rec.Len(); got != want {
			t.Fatalf("cut=%d: recovered %d bundles, want %d", cut, got, want)
		}
		for i := 0; i < want; i++ {
			b, err := rec.Get(traces[i])
			if err != nil || b == nil || b.User != "alice" {
				t.Fatalf("cut=%d: bundle %s unreadable: %+v, %v", cut, traces[i], b, err)
			}
		}
		// The torn segment must have been truncated back to its last
		// committed frame.
		fi, err := os.Stat(filepath.Join(dir, segName(1)))
		if err != nil {
			t.Fatal(err)
		}
		validEnd := 0
		for _, b := range boundaries[1:] {
			if b <= cut {
				validEnd = b
			}
		}
		if fi.Size() != int64(validEnd) {
			t.Fatalf("cut=%d: segment left at %d bytes, want %d", cut, fi.Size(), validEnd)
		}
		// And the recorder must still accept new bundles.
		rec.mu.Lock()
		err = rec.persistLocked(&Bundle{Trace: "tr-new", Reason: ReasonFailed})
		rec.mu.Unlock()
		if err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if b, err := rec.Get("tr-new"); err != nil || b == nil {
			t.Fatalf("cut=%d: new bundle unreadable after recovery", cut)
		}
		rec.Stop()
	}
}

// TestCorruptFrameStopsRecovery flips a payload byte mid-segment:
// everything before the corruption recovers, everything after is
// discarded (frame streams have no resync point — mirroring the store
// WAL's prefix rule).
func TestCorruptFrameStopsRecovery(t *testing.T) {
	dir := t.TempDir()
	writeBundles(t, dir, 3)
	segPath := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	_, first, err := decodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	data[first+frameHeaderSize+4] ^= 0xFF // corrupt frame 2's payload
	if err := os.WriteFile(segPath, data, 0o600); err != nil {
		t.Fatal(err)
	}
	rec, err := New(Config{Dir: dir, Policy: Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Stop()
	if rec.Len() != 1 {
		t.Fatalf("recovered %d bundles past corruption, want 1", rec.Len())
	}
	if b, err := rec.Get("tr-00"); err != nil || b == nil {
		t.Fatalf("pre-corruption bundle lost: %v", err)
	}
}

// TestFrameRoundTrip pins the frame layout against the store WAL
// discipline: length, CRC, payload, commit marker.
func TestFrameRoundTrip(t *testing.T) {
	payload, _ := json.Marshal(Bundle{Trace: "x", Reason: ReasonFailed})
	frame := encodeFrame(payload)
	if frame[len(frame)-1] != commitMarker {
		t.Fatal("frame missing trailing commit marker")
	}
	got, n, err := decodeFrame(frame)
	if err != nil || n != len(frame) || string(got) != string(payload) {
		t.Fatalf("round trip: %q, %d, %v", got, n, err)
	}
	for _, mutate := range []func([]byte){
		func(b []byte) { b[len(b)-1] = 0 },         // marker
		func(b []byte) { b[frameHeaderSize] ^= 1 }, // payload -> CRC mismatch
		func(b []byte) { b[0], b[1] = 0xFF, 0xFF }, // absurd length
	} {
		c := append([]byte(nil), frame...)
		mutate(c)
		if _, _, err := decodeFrame(c); err == nil {
			t.Fatal("mutated frame decoded cleanly")
		}
	}
}

// TestForeignFilesIgnored: non-segment files in the directory are left
// alone by recovery and rotation.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o600); err != nil {
		t.Fatal(err)
	}
	rec, err := New(Config{Dir: dir, Policy: Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	rec.Stop()
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("foreign file disturbed")
	}
}
