package flightrec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ReadDir reads every committed bundle from a recorder directory (or a
// single .seg file) WITHOUT modifying anything: torn tails are skipped,
// not truncated, so it is safe to point at a live recorder's directory or
// at segments copied off a crashed host. Bundles are returned in
// persistence order. It is the offline reader behind
// `loganalyze -format flightrec`.
func ReadDir(path string) ([]Bundle, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("flightrec: %w", err)
	}
	if !fi.IsDir() {
		dir, name := filepath.Split(path)
		if dir == "" {
			dir = "."
		}
		seq, ok := segSeq(name)
		if !ok {
			return nil, fmt.Errorf("flightrec: %s is not a %sNNNNNN%s segment", path, segPrefix, segSuffix)
		}
		return readSegmentBundles(dir, seq)
	}
	seqs, err := listSegments(path)
	if err != nil {
		return nil, fmt.Errorf("flightrec: %w", err)
	}
	var out []Bundle
	for _, seq := range seqs {
		bs, err := readSegmentBundles(path, seq)
		if err != nil {
			return nil, err
		}
		out = append(out, bs...)
	}
	return out, nil
}

func readSegmentBundles(dir string, seq uint64) ([]Bundle, error) {
	var out []Bundle
	_, err := scanSegment(dir, seq, func(payload []byte, _ frameRef) error {
		var b Bundle
		if err := json.Unmarshal(payload, &b); err != nil {
			return nil // foreign committed frame; skip
		}
		out = append(out, b)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("flightrec: read segment %d: %w", seq, err)
	}
	return out, nil
}
