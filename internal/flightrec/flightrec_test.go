package flightrec

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/leakcheck"
	"openmfa/internal/obs"
)

var testT0 = time.Date(2016, 10, 4, 8, 0, 0, 0, time.UTC)

// settle waits until the recorder has made a keep/drop decision for n
// completions (counters move strictly after persistence).
func settle(t *testing.T, reg *obs.Registry, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var total uint64
		for _, reason := range []string{ReasonFailed, ReasonSlow, ReasonLockout, ReasonAlert, ReasonSampled} {
			total += uint64(reg.Counter("flightrec_bundles_kept_total", "reason", reason).Value())
		}
		total += uint64(reg.Counter("flightrec_bundles_dropped_total").Value())
		if total >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("recorder did not settle")
}

func login(trace, user, result string, at time.Time, dur time.Duration) eventstream.Event {
	return eventstream.Event{
		Time: at, Type: eventstream.TypeLogin, Component: "sshd",
		Trace: trace, User: user, Addr: "10.0.0.1:22", Result: result,
		Duration: dur,
	}
}

func TestTailSamplingKeepsEveryInterestingTrace(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	bus := eventstream.NewBus(reg)
	spans := obs.NewSpanStore(64)
	alert := false
	rec, err := New(Config{
		Dir: t.TempDir(), Bus: bus, Spans: spans, Obs: reg,
		Policy: Policy{
			SampleRate:    0, // nothing kept on sample alone
			SlowThreshold: 500 * time.Millisecond,
			AlertActive:   func() bool { return alert },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Stop()

	sp := spans.Start("tr-fail", "sshd.conversation")
	sp.End()

	bus.Publish(login("tr-fail", "alice", "reject", testT0, 10*time.Millisecond))
	bus.Publish(login("tr-slow", "bob", "accept", testT0.Add(time.Second), 900*time.Millisecond))
	bus.Publish(eventstream.Event{
		Time: testT0.Add(2 * time.Second), Type: eventstream.TypeLockout,
		Component: "otpd", Trace: "tr-lock", User: "carol",
	})
	bus.Publish(login("tr-lock", "carol", "accept", testT0.Add(3*time.Second), 10*time.Millisecond))
	bus.Publish(login("tr-ok", "dave", "accept", testT0.Add(4*time.Second), 10*time.Millisecond))
	settle(t, reg, 4)

	alert = true
	bus.Publish(login("tr-alert", "erin", "accept", testT0.Add(5*time.Second), 10*time.Millisecond))
	settle(t, reg, 5)

	for trace, reason := range map[string]string{
		"tr-fail": ReasonFailed, "tr-slow": ReasonSlow,
		"tr-lock": ReasonLockout, "tr-alert": ReasonAlert,
	} {
		b, err := rec.Get(trace)
		if err != nil {
			t.Fatalf("Get(%s): %v", trace, err)
		}
		if b == nil {
			t.Fatalf("interesting trace %s not kept", trace)
		}
		if b.Reason != reason {
			t.Errorf("%s kept for %q, want %q", trace, b.Reason, reason)
		}
	}
	if b, _ := rec.Get("tr-ok"); b != nil {
		t.Error("unremarkable success kept at sample rate 0")
	}
	if b, _ := rec.Get("tr-fail"); len(b.Spans) != 1 || b.Spans[0].Name != "sshd.conversation" {
		t.Errorf("failed bundle lost its span tree: %+v", b.Spans)
	}
	if b, _ := rec.Get("tr-lock"); len(b.Events) != 2 {
		t.Errorf("lockout bundle has %d events, want lockout+login", len(b.Events))
	}
}

func TestSuccessSamplingIsDeterministic(t *testing.T) {
	run := func() map[string]bool {
		reg := obs.NewRegistry()
		bus := eventstream.NewBus(reg)
		rec, err := New(Config{
			Dir: t.TempDir(), Bus: bus, Obs: reg,
			Policy: Policy{SampleRate: 0.3},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Stop()
		for i := 0; i < 100; i++ {
			// Trace IDs differ between "runs"; user+time do not.
			trace := fmt.Sprintf("tr-%d-%p", i, rec)
			bus.Publish(login(trace, fmt.Sprintf("user%d", i), "accept",
				testT0.Add(time.Duration(i)*time.Second), time.Millisecond))
		}
		settle(t, reg, 100)
		kept := map[string]bool{}
		for _, s := range rec.List(Query{}) {
			kept[s.User] = true
		}
		return kept
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("sample rate 0.3 kept %d of 100", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("runs kept %d vs %d bundles", len(a), len(b))
	}
	for u := range a {
		if !b[u] {
			t.Fatalf("user %s sampled in run A but not run B", u)
		}
	}
}

func TestRecoveryAfterRestart(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	bus := eventstream.NewBus(reg)
	rec, err := New(Config{Dir: dir, Bus: bus, Obs: reg, Policy: Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	bus.Publish(login("tr-1", "alice", "reject", testT0, time.Millisecond))
	bus.Publish(login("tr-2", "bob", "reject", testT0.Add(time.Second), time.Millisecond))
	settle(t, reg, 2)
	rec.Stop()

	rec2, err := New(Config{Dir: dir, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Stop()
	if rec2.Len() != 2 {
		t.Fatalf("recovered %d bundles, want 2", rec2.Len())
	}
	b, err := rec2.Get("tr-2")
	if err != nil || b == nil || b.User != "bob" || b.Reason != ReasonFailed {
		t.Fatalf("Get after recovery = %+v, %v", b, err)
	}
}

func TestRotationExpiresOldestSegment(t *testing.T) {
	reg := obs.NewRegistry()
	bus := eventstream.NewBus(reg)
	rec, err := New(Config{
		Dir: t.TempDir(), Bus: bus, Obs: reg,
		MaxSegmentSize: 512, MaxSegments: 2,
		Policy: Policy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Stop()
	for i := 0; i < 40; i++ {
		bus.Publish(login(fmt.Sprintf("tr-%02d", i), "alice", "reject",
			testT0.Add(time.Duration(i)*time.Second), time.Millisecond))
	}
	settle(t, reg, 40)
	if rot := reg.Counter("flightrec_segment_rotations_total").Value(); rot == 0 {
		t.Fatal("no rotation at 512-byte segments")
	}
	if rec.Len() >= 40 {
		t.Errorf("index holds %d bundles; expired segments should drop entries", rec.Len())
	}
	// The newest bundle always survives.
	if b, err := rec.Get("tr-39"); err != nil || b == nil {
		t.Fatalf("newest bundle lost: %v, %v", b, err)
	}
	// Expired traces report not-found, not an error.
	if b, err := rec.Get("tr-00"); err != nil || b != nil {
		t.Fatalf("oldest bundle: got %v, %v; want nil, nil", b, err)
	}
}

func TestHandlerQueries(t *testing.T) {
	reg := obs.NewRegistry()
	bus := eventstream.NewBus(reg)
	spans := obs.NewSpanStore(64)
	rec, err := New(Config{Dir: t.TempDir(), Bus: bus, Spans: spans, Obs: reg, Policy: Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Stop()

	root := spans.Start("tr-h", "sshd.conversation")
	child := root.StartChild("pam.pam_mfa_token")
	child.End()
	root.End()
	bus.Publish(login("tr-h", "alice", "reject", testT0, 42*time.Millisecond))
	bus.Publish(login("tr-h2", "bob", "reject", testT0, time.Millisecond))
	settle(t, reg, 2)

	get := func(url string) (int, string) {
		rr := httptest.NewRecorder()
		rec.Handler().ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		body, _ := io.ReadAll(rr.Result().Body)
		return rr.Code, string(body)
	}
	if code, body := get("/debug/flightrec"); code != 200 ||
		!strings.Contains(body, "tr-h") || !strings.Contains(body, "tr-h2") {
		t.Errorf("list: %d %s", code, body)
	}
	if code, body := get("/debug/flightrec?min=10ms"); code != 200 ||
		!strings.Contains(body, "tr-h") || strings.Contains(body, "tr-h2") {
		t.Errorf("min filter: %d %s", code, body)
	}
	if code, body := get("/debug/flightrec?class=reject&limit=1"); code != 200 ||
		strings.Count(body, `"trace"`) != 1 {
		t.Errorf("limit: %d %s", code, body)
	}
	if code, body := get("/debug/flightrec?trace=tr-h&format=tree"); code != 200 ||
		!strings.Contains(body, "sshd.conversation") ||
		!strings.Contains(body, "└─") ||
		!strings.Contains(body, "pam.pam_mfa_token") {
		t.Errorf("tree: %d %s", code, body)
	}
	if code, _ := get("/debug/flightrec?trace=nope"); code != 404 {
		t.Errorf("missing trace: %d, want 404", code)
	}
	if code, _ := get("/debug/flightrec?min=banana"); code != 400 {
		t.Errorf("bad min: %d, want 400", code)
	}
}

func TestLogTeeIndexesAndBounds(t *testing.T) {
	var sink strings.Builder
	tee := NewLogTee(&sink, 2, 2)
	log := obs.NewLogger(tee, obs.LevelInfo)
	log.Info("auth", "component", "sshd", "trace", "tr-1", "user", "alice")
	log.Info("auth", "trace", "tr-1", "step", "2")
	log.Info("auth", "trace", "tr-1", "step", "3") // over per-trace bound
	log.Info("no trace here")
	log.Info("auth", "trace", "tr-2")
	log.Info("auth", "trace", "tr-3") // evicts tr-1

	if !strings.Contains(sink.String(), "no trace here") {
		t.Error("tee did not pass lines through")
	}
	if got := tee.Traces(); got != 2 {
		t.Errorf("tee holds %d traces, want 2 after eviction", got)
	}
	if lines, _ := tee.Take("tr-1"); lines != nil {
		t.Errorf("evicted trace still indexed: %v", lines)
	}
	lines, dropped := tee.Take("tr-2")
	if len(lines) != 1 || !strings.Contains(lines[0], "trace=tr-2") || dropped != 0 {
		t.Errorf("Take(tr-2) = %v, %d", lines, dropped)
	}
	if got := tee.Traces(); got != 1 {
		t.Errorf("tee holds %d traces after Take, want 1", got)
	}
	var nilTee *LogTee
	if n, err := nilTee.Write([]byte("x")); n != 1 || err != nil {
		t.Error("nil tee Write not a no-op")
	}
}

func TestBundleCarriesLogsAndTruncation(t *testing.T) {
	reg := obs.NewRegistry()
	bus := eventstream.NewBus(reg)
	spans := obs.NewSpanStore(2) // tiny ring forces eviction
	tee := NewLogTee(io.Discard, 0, 0)
	rec, err := New(Config{Dir: t.TempDir(), Bus: bus, Spans: spans, Logs: tee, Obs: reg, Policy: Policy{}})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Stop()

	for i := 0; i < 3; i++ { // 3 spans in a 2-ring: first evicted
		sp := spans.Start("tr-t", fmt.Sprintf("leg-%d", i))
		sp.End()
	}
	log := obs.NewLogger(tee, obs.LevelInfo)
	log.Info("auth", "component", "sshd", "trace", "tr-t", "result", "reject")
	bus.Publish(login("tr-t", "alice", "reject", testT0, time.Millisecond))
	settle(t, reg, 1)

	b, err := rec.Get("tr-t")
	if err != nil || b == nil {
		t.Fatal(err)
	}
	if !b.Truncated {
		t.Error("bundle not marked truncated after span eviction")
	}
	if len(b.Spans) != 2 {
		t.Errorf("bundle has %d spans, want the 2 surviving", len(b.Spans))
	}
	if len(b.Logs) != 1 || !strings.Contains(b.Logs[0], "trace=tr-t") {
		t.Errorf("bundle logs = %v", b.Logs)
	}
	if tee.Traces() != 0 {
		t.Error("Take did not drain the tee")
	}
}
