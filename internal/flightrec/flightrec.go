// Package flightrec is a tail-sampled flight recorder for the auth path:
// every completed login (or RADIUS/lockout decision, for the standalone
// daemons) produces a trace bundle — the trace's span tree out of
// obs.SpanStore, the eventstream events that carried its trace ID, and
// the log lines a LogTee indexed for it — and a tail-sampling policy
// decides, at completion time when the outcome is known, whether the
// bundle is kept:
//
//   - failed logins are always kept
//   - slow logins (duration >= Policy.SlowThreshold) are always kept
//   - traces that saw a lockout event are always kept
//   - traces completing while an alert is active (Policy.AlertActive)
//     are always kept
//   - a deterministic fraction of successes (Policy.SampleRate) is kept,
//     hashed from the user and event timestamp so two identically seeded
//     simulation runs keep the same traces
//
// Kept bundles are persisted as CRC-framed JSON records in size-capped,
// rotated segment files (see segment.go); a torn tail from a crash never
// yields a half-bundle. Query by trace ID, result class, or minimum
// duration via Get/List, the /debug/flightrec handler, or
// `loganalyze -format flightrec` offline.
package flightrec

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"openmfa/internal/eventstream"
	"openmfa/internal/obs"
	"openmfa/internal/seglog"
)

// Bundle is one recorded trace: the completion event's identity fields,
// the keep reason, and the full span/event/log context.
type Bundle struct {
	Trace    string        `json:"trace"`
	Time     time.Time     `json:"time"`
	User     string        `json:"user,omitempty"`
	Addr     string        `json:"addr,omitempty"`
	Result   string        `json:"result,omitempty"`
	Reason   string        `json:"reason"` // failed | slow | lockout | alert | sampled
	Duration time.Duration `json:"duration,omitempty"`
	// Truncated reports that the span store had already evicted part of
	// this trace's tree; the bundle's Spans are a suffix, not the whole
	// conversation.
	Truncated   bool                `json:"truncated,omitempty"`
	Spans       []obs.SpanData      `json:"spans,omitempty"`
	Events      []eventstream.Event `json:"events,omitempty"`
	Logs        []string            `json:"logs,omitempty"`
	LogsDropped int                 `json:"logs_dropped,omitempty"`
}

// Keep reasons, in check order. The first matching reason labels the
// bundle and the flightrec_bundles_kept_total counter.
const (
	ReasonFailed  = "failed"
	ReasonSlow    = "slow"
	ReasonLockout = "lockout"
	ReasonAlert   = "alert"
	ReasonSampled = "sampled"
)

// Policy is the tail-sampling decision.
type Policy struct {
	// SampleRate is the fraction of successful, fast, unremarkable
	// traces to keep, in [0,1]. The decision hashes the user and event
	// timestamp (not the crypto-random trace ID), so identically seeded
	// simulated runs keep identical traces.
	SampleRate float64
	// SlowThreshold marks a trace slow when its duration reaches it;
	// zero disables the slow class.
	SlowThreshold time.Duration
	// AlertActive, when set, is consulted at completion time; traces
	// finishing during an active alert are kept. Wire it to
	// authwatch.Watcher.Health or the SLO engine.
	AlertActive func() bool
	// SuccessResult is the completion Result string that counts as
	// success (default "accept"); anything else is the failed class.
	SuccessResult string
}

// Config parameterises a Recorder.
type Config struct {
	// Dir holds the segment files (required; created if missing).
	Dir string
	// Bus is the event source (required).
	Bus *eventstream.Bus
	// Spans supplies trace span trees (optional).
	Spans *obs.SpanStore
	// Logs supplies per-trace log lines (optional).
	Logs *LogTee
	// Policy is the tail-sampling policy.
	Policy Policy
	// CompleteOn lists the event types that complete a trace (default
	// TypeLogin; standalone radiusd/otpd pass TypeRadius/TypeLockout).
	CompleteOn []eventstream.Type
	// MaxSegmentSize rotates the active segment once it reaches this
	// many bytes (default 4 MiB).
	MaxSegmentSize int64
	// MaxSegments bounds the retained segment count (default 8); the
	// oldest segment is deleted, with its bundles, on rotation past it.
	MaxSegments int
	// Buffer is the bus subscription depth (default 1024).
	Buffer int
	// Obs receives flightrec_* counters (optional).
	Obs *obs.Registry
}

// Defaults.
const (
	DefaultMaxSegmentSize = 4 << 20
	DefaultMaxSegments    = 8
	DefaultBuffer         = 1024

	maxPendingEvents = 64   // events buffered per in-flight trace
	maxPendingTraces = 4096 // in-flight traces (FIFO evicted)
)

// summary is the in-memory index entry for one persisted bundle.
type summary struct {
	Trace    string        `json:"trace"`
	Time     time.Time     `json:"time"`
	User     string        `json:"user,omitempty"`
	Result   string        `json:"result,omitempty"`
	Reason   string        `json:"reason"`
	Duration time.Duration `json:"duration,omitempty"`
	ref      frameRef
}

// Summary is one persisted bundle's index entry, as reported by List.
type Summary struct {
	Trace    string        `json:"trace"`
	Time     time.Time     `json:"time"`
	User     string        `json:"user,omitempty"`
	Result   string        `json:"result,omitempty"`
	Reason   string        `json:"reason"`
	Duration time.Duration `json:"duration,omitempty"`
}

// Query filters List.
type Query struct {
	// Class matches a bundle's Result or keep Reason ("reject",
	// "failed", "slow", ...). Empty matches everything.
	Class string
	// MinDuration drops bundles faster than this.
	MinDuration time.Duration
	// Limit bounds the result count (0 = no bound); the newest bundles
	// win.
	Limit int
}

// Recorder subscribes to the bus, assembles bundles, and persists the
// kept ones. Create with New, then Stop to shut down; Get and List keep
// working after Stop (they read from disk).
type Recorder struct {
	cfg        cfgResolved
	sub        *eventstream.Subscription
	done       chan struct{}
	stopOnce   sync.Once
	sampleKeep uint64 // hash threshold: keep when hash < sampleKeep

	mu      sync.Mutex
	pending map[string][]eventstream.Event
	order   []string // pending FIFO
	index   map[string]*summary
	bySeq   []*summary // insertion (= persistence) order
	log     *seglog.Log

	kept      map[string]*obs.Counter
	dropped   *obs.Counter
	rotations *obs.Counter
	recovered *obs.Counter
	torn      *obs.Counter
}

type cfgResolved struct {
	Config
	completeOn map[eventstream.Type]bool
}

// New opens (or recovers) the segment directory, replays every committed
// frame to rebuild the index, truncates torn tails, and starts draining
// the bus.
func New(cfg Config) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flightrec: Config.Dir required")
	}
	if cfg.MaxSegmentSize <= 0 {
		cfg.MaxSegmentSize = DefaultMaxSegmentSize
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = DefaultMaxSegments
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.Policy.SuccessResult == "" {
		cfg.Policy.SuccessResult = "accept"
	}
	completeOn := map[eventstream.Type]bool{}
	if len(cfg.CompleteOn) == 0 {
		completeOn[eventstream.TypeLogin] = true
	}
	for _, t := range cfg.CompleteOn {
		completeOn[t] = true
	}

	r := &Recorder{
		cfg:     cfgResolved{Config: cfg, completeOn: completeOn},
		pending: make(map[string][]eventstream.Event),
		index:   make(map[string]*summary),
		done:    make(chan struct{}),
		kept:    make(map[string]*obs.Counter),
	}
	rate := cfg.Policy.SampleRate
	switch {
	case rate >= 1:
		r.sampleKeep = math.MaxUint64
	case rate > 0:
		// Scale into uint64 range without risking a float64 conversion
		// at exactly 2^64 (undefined); halving first keeps it in range.
		r.sampleKeep = uint64(rate*float64(1<<63)) * 2
	}
	for _, reason := range []string{ReasonFailed, ReasonSlow, ReasonLockout, ReasonAlert, ReasonSampled} {
		r.kept[reason] = cfg.Obs.Counter("flightrec_bundles_kept_total", "reason", reason)
	}
	r.dropped = cfg.Obs.Counter("flightrec_bundles_dropped_total")
	r.rotations = cfg.Obs.Counter("flightrec_segment_rotations_total")
	r.recovered = cfg.Obs.Counter("flightrec_recovered_bundles_total")
	r.torn = cfg.Obs.Counter("flightrec_torn_tails_total")

	// Recovery and rotation live in the shared seglog layer: replay every
	// committed frame into the index and truncate torn tails. Any segment,
	// not just the last, can have a torn tail if a crash raced rotation.
	log, torn, err := seglog.Open(seglog.Options{
		Dir:            cfg.Dir,
		Prefix:         segPrefix,
		MaxSegmentSize: cfg.MaxSegmentSize,
		MaxSegments:    cfg.MaxSegments,
	}, func(payload []byte, ref frameRef) error {
		var b Bundle
		if err := json.Unmarshal(payload, &b); err != nil {
			// A committed frame that is not a bundle is foreign; skip it
			// rather than fail recovery.
			return nil
		}
		r.indexBundle(&b, ref)
		r.recovered.Inc()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("flightrec: %w", err)
	}
	r.log = log
	r.torn.Add(int64(torn))

	if cfg.Bus != nil {
		r.sub = cfg.Bus.Subscribe(cfg.Buffer)
		go r.drain()
	} else {
		close(r.done)
	}
	return r, nil
}

func (r *Recorder) indexBundle(b *Bundle, ref frameRef) {
	s := &summary{
		Trace: b.Trace, Time: b.Time, User: b.User,
		Result: b.Result, Reason: b.Reason, Duration: b.Duration,
		ref: ref,
	}
	if _, dup := r.index[b.Trace]; dup {
		return // first completion wins
	}
	r.index[b.Trace] = s
	r.bySeq = append(r.bySeq, s)
}

// drain consumes the subscription until it closes. Close drains buffered
// events before the channel closes, so Stop never loses a completed
// login that was already on the bus.
func (r *Recorder) drain() {
	defer close(r.done)
	for ev := range r.sub.Events() {
		r.handle(ev)
	}
}

// handle buffers one event and, on a completion type, runs the keep
// decision.
func (r *Recorder) handle(ev eventstream.Event) {
	if ev.Trace == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	evs, known := r.pending[ev.Trace]
	if !known {
		if len(r.order) >= maxPendingTraces {
			old := r.order[0]
			r.order = r.order[1:]
			delete(r.pending, old)
		}
		r.order = append(r.order, ev.Trace)
	}
	if len(evs) < maxPendingEvents {
		r.pending[ev.Trace] = append(evs, ev)
	}
	if !r.cfg.completeOn[ev.Type] {
		return
	}
	if _, done := r.index[ev.Trace]; done {
		return // first completion wins
	}
	r.completeLocked(ev)
}

// completeLocked assembles the bundle for ev's trace, applies the policy,
// and persists or drops it. Caller holds r.mu.
func (r *Recorder) completeLocked(ev eventstream.Event) {
	events := r.pending[ev.Trace]
	delete(r.pending, ev.Trace)
	for i, tr := range r.order {
		if tr == ev.Trace {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}

	spans, truncated := r.cfg.Spans.Lookup(ev.Trace)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	dur := ev.Duration
	if dur <= 0 && len(spans) > 0 {
		// Span tree extent: first start to last end.
		end := spans[0].End
		for _, sp := range spans {
			if sp.End.After(end) {
				end = sp.End
			}
		}
		dur = end.Sub(spans[0].Start)
	}

	reason, keep := r.decide(ev, events, dur)
	if !keep {
		r.dropped.Inc()
		r.cfg.Logs.Take(ev.Trace)
		return
	}
	logs, logsDropped := r.cfg.Logs.Take(ev.Trace)
	b := &Bundle{
		Trace: ev.Trace, Time: ev.Time, User: ev.User, Addr: ev.Addr,
		Result: ev.Result, Reason: reason, Duration: dur,
		Truncated: truncated, Spans: spans, Events: events,
		Logs: logs, LogsDropped: logsDropped,
	}
	if err := r.persistLocked(b); err == nil {
		r.kept[reason].Inc()
	}
}

// decide returns the keep reason, checking the always-keep classes in
// order before the deterministic success sample.
func (r *Recorder) decide(ev eventstream.Event, events []eventstream.Event, dur time.Duration) (string, bool) {
	p := r.cfg.Policy
	if ev.Result != p.SuccessResult {
		return ReasonFailed, true
	}
	if p.SlowThreshold > 0 && dur >= p.SlowThreshold {
		return ReasonSlow, true
	}
	for _, e := range events {
		if e.Type == eventstream.TypeLockout {
			return ReasonLockout, true
		}
	}
	if p.AlertActive != nil && p.AlertActive() {
		return ReasonAlert, true
	}
	if r.sampleKeep > 0 && sampleHash(ev.User, ev.Time) < r.sampleKeep {
		return ReasonSampled, true
	}
	return "", false
}

// sampleHash is the deterministic sampling key: FNV-1a over the user and
// the event timestamp. Trace IDs are crypto-random, so hashing them would
// never reproduce across runs; under a simulated clock the user+time pair
// is identical between identically seeded runs.
func sampleHash(user string, t time.Time) uint64 {
	h := fnv.New64a()
	h.Write([]byte(user))
	h.Write([]byte{0})
	h.Write([]byte(strconv.FormatInt(t.UnixNano(), 10)))
	return h.Sum64()
}

// persistLocked frames and appends the bundle through the segment log
// (which rotates and evicts as needed), then indexes it. Caller holds
// r.mu.
func (r *Recorder) persistLocked(b *Bundle) error {
	payload, err := json.Marshal(b)
	if err != nil {
		return err
	}
	res, err := r.log.Append(payload)
	if err != nil {
		if errors.Is(err, seglog.ErrClosed) {
			return fmt.Errorf("flightrec: recorder closed")
		}
		return err
	}
	if res.Rotated {
		r.rotations.Inc()
	}
	// Evicted segments take their bundles' index entries with them.
	for _, old := range res.Evicted {
		kept := r.bySeq[:0]
		for _, s := range r.bySeq {
			if s.ref.Seg == old {
				delete(r.index, s.Trace)
				continue
			}
			kept = append(kept, s)
		}
		r.bySeq = kept
	}
	r.indexBundle(b, res.Ref)
	return nil
}

// Stop closes the subscription, drains what was already buffered, and
// closes the active segment. Get and List continue to serve from disk.
// Idempotent and nil-safe.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() {
		if r.sub != nil {
			r.sub.Close()
		}
		<-r.done
		r.log.Close()
	})
}

// Get fetches one persisted bundle by trace ID, reading and re-verifying
// its frame from disk. Nil-safe.
func (r *Recorder) Get(trace string) (*Bundle, error) {
	if r == nil {
		return nil, fmt.Errorf("flightrec: no recorder")
	}
	r.mu.Lock()
	s, ok := r.index[trace]
	r.mu.Unlock()
	if !ok {
		return nil, nil
	}
	payload, err := r.log.Read(s.ref)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(payload, &b); err != nil {
		return nil, fmt.Errorf("flightrec: decode bundle: %w", err)
	}
	return &b, nil
}

// List reports persisted bundle summaries matching q, newest first.
// Nil-safe.
func (r *Recorder) List(q Query) []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Summary
	for i := len(r.bySeq) - 1; i >= 0; i-- {
		s := r.bySeq[i]
		if q.Class != "" && q.Class != s.Result && q.Class != s.Reason {
			continue
		}
		if s.Duration < q.MinDuration {
			continue
		}
		out = append(out, Summary{
			Trace: s.Trace, Time: s.Time, User: s.User,
			Result: s.Result, Reason: s.Reason, Duration: s.Duration,
		})
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

// Len reports how many bundles are indexed.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.index)
}
