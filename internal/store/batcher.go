package store

import "sync"

// DefaultBatcherMaxOps bounds how many operations a coalesced group may
// carry. One WAL frame per group keeps the frame (and the blast radius of a
// torn tail) bounded; 128 ops comfortably covers a burst of login commits
// while staying far under typical record sizes × frame limits.
const DefaultBatcherMaxOps = 128

// Batcher coalesces concurrent, independent Apply calls into shared WAL
// frames. The store's group commit already merges *fsyncs*; the Batcher
// merges the frames themselves, so a burst of single-record commits (the
// per-login replay/fail-counter saves) costs one encode + one flush instead
// of N.
//
// The first caller to arrive becomes the leader: it commits its own batch,
// then drains any groups that formed while it was writing. Followers append
// their ops to the open group and sleep until the leader commits it. A
// group is all-or-nothing — it lands in one checksummed frame — which is
// only sound because callers are independent: no caller may depend on
// another in-flight caller's ops NOT being committed with its own.
//
// The zero Batcher is not usable; construct with NewBatcher.
type Batcher struct {
	s      *Store
	maxOps int

	mu      sync.Mutex
	queue   []*batchGroup // groups awaiting the leader, oldest first
	leading bool
}

type batchGroup struct {
	ops  []Op
	done chan struct{}
	err  error
}

// NewBatcher wraps s. maxOps bounds the ops per coalesced frame
// (0 selects DefaultBatcherMaxOps).
func NewBatcher(s *Store, maxOps int) *Batcher {
	if maxOps <= 0 {
		maxOps = DefaultBatcherMaxOps
	}
	return &Batcher{s: s, maxOps: maxOps}
}

// Apply commits ops, possibly sharing a WAL frame with other concurrent
// Apply calls. It blocks until ops are as durable as a direct Store.Apply
// would have made them.
func (b *Batcher) Apply(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	b.mu.Lock()
	if b.leading {
		// A leader is writing: join (or open) the youngest group. The ops
		// are copied so the caller may reuse its slice once we return.
		g := b.lastOpenGroup()
		g.ops = append(g.ops, ops...)
		b.mu.Unlock()
		<-g.done
		return g.err
	}
	b.leading = true
	b.mu.Unlock()

	// Leader: commit our own ops first, then drain whatever piled up.
	err := b.s.Apply(ops)
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.leading = false
			b.mu.Unlock()
			return err
		}
		g := b.queue[0]
		b.queue = b.queue[1:]
		b.mu.Unlock()
		g.err = b.s.Apply(g.ops)
		close(g.done)
	}
}

// lastOpenGroup returns the youngest group with room, opening a new one
// when the queue is empty or its tail is full. Caller holds b.mu.
func (b *Batcher) lastOpenGroup() *batchGroup {
	if n := len(b.queue); n > 0 && len(b.queue[n-1].ops) < b.maxOps {
		return b.queue[n-1]
	}
	g := &batchGroup{done: make(chan struct{})}
	b.queue = append(b.queue, g)
	return g
}

// Put commits a single write through the coalescing path.
func (b *Batcher) Put(key string, value []byte) error {
	return b.Apply([]Op{{Key: key, Value: value}})
}

// Delete removes key through the coalescing path.
func (b *Batcher) Delete(key string) error {
	return b.Apply([]Op{{Key: key, Delete: true}})
}

// queuedOps reports how many follower ops are waiting on the leader
// (tests only).
func (b *Batcher) queuedOps() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, g := range b.queue {
		n += len(g.ops)
	}
	return n
}
