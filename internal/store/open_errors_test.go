package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestOpenRejectsCorruptMeta covers the meta-file validation: a damaged or
// hand-edited shard count must fail Open loudly rather than silently
// rehash keys into the wrong segments.
func TestOpenRejectsCorruptMeta(t *testing.T) {
	cases := map[string]string{
		"wrong header":    "not-a-store v9\nshards 4\n",
		"missing shards":  metaHeader + "\n",
		"bad count":       metaHeader + "\nshards zero\n",
		"not power of 2":  metaHeader + "\nshards 3\n",
		"count too large": metaHeader + "\nshards 1024\n",
		"count too small": metaHeader + "\nshards 0\n",
	}
	for name, body := range cases {
		dir := t.TempDir()
		if err := os.WriteFile(metaPath(dir), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Errorf("%s: Open accepted corrupt meta %q", name, body)
		}
	}
}

// TestOpenRejectsCorruptSnapshot: snapshots are written atomically, so any
// damage is an integrity failure, not a torn tail to tolerate.
func TestOpenRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("v"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(dir, "shard-000.kv"))
	if err != nil {
		t.Fatal(err)
	}
	snap[len(snap)/2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, "shard-000.kv"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

// TestOpenSurfacesUnreadableFiles: a WAL or snapshot path that exists but
// cannot be read as a file (here: a directory) is a hard error.
func TestOpenSurfacesUnreadableFiles(t *testing.T) {
	for _, name := range []string{"shard-000.wal", "shard-000.kv"} {
		dir := t.TempDir()
		if err := os.Mkdir(filepath.Join(dir, name), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{Shards: 1}); err == nil {
			t.Errorf("Open succeeded with %s as a directory", name)
		}
	}
}

// TestOpenClosesFilesOnPartialFailure drives the Open error path after
// some WAL files are already open: shard 1's segment is a dangling symlink
// into a missing directory, so recovery tolerates it (ENOENT) but the
// append-mode open fails, and shard 0's already-open file must be closed.
func TestOpenClosesFilesOnPartialFailure(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "missing-subdir", "wal")
	if err := os.Symlink(target, filepath.Join(dir, "shard-001.wal")); err != nil {
		t.Skipf("symlink unavailable: %v", err)
	}
	if _, err := Open(dir, Options{Shards: 2}); err == nil {
		t.Fatal("Open succeeded over a dangling WAL symlink")
	}
}

// TestWALPathsInMemory: volatile stores have no segments to report.
func TestWALPathsInMemory(t *testing.T) {
	if paths := OpenMemory().WALPaths(); paths != nil {
		t.Fatalf("in-memory WALPaths = %v, want nil", paths)
	}
}

// TestApplyDeduplicatesShardLocks: a batch touching the same key (and so
// the same shard) twice must lock that shard once and still apply in
// order.
func TestApplyDeduplicatesShardLocks(t *testing.T) {
	s := OpenMemoryShards(4)
	err := s.Apply([]Op{
		{Key: "k", Value: []byte("first")},
		{Key: "k", Value: []byte("second")},
		{Key: "k2", Value: []byte("other")},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("k")
	if err != nil || string(v) != "second" {
		t.Fatalf("Get(k) = %q, %v; want last write", v, err)
	}
}

// TestCloseReportsFlushError: bytes still buffered when the file under
// the WAL writer is gone must surface from Close, not vanish.
func TestCloseReportsFlushError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Leave data sitting in the bufio layer, then sabotage the fd.
	sh := s.shards[0]
	if _, err := sh.walBuf.Write(encodeBatchRecord(1, []Op{{Key: "k", Value: []byte("v")}})); err != nil {
		t.Fatal(err)
	}
	if err := sh.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close swallowed the flush failure")
	}
}

// TestScanPrefixAcrossShards spot-checks the sorted multi-shard merge with
// a non-empty prefix.
func TestScanPrefixAcrossShards(t *testing.T) {
	s := OpenMemoryShards(8)
	for _, k := range []string{"acct/carol", "acct/alice", "acct/bob", "token/alice"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := s.Scan("acct/")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, kv := range kvs {
		got = append(got, kv.Key)
	}
	want := "acct/alice,acct/bob,acct/carol"
	if strings.Join(got, ",") != want {
		t.Fatalf("Scan = %v, want %s", got, want)
	}
}
