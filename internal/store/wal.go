package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL batch-record framing (format v2). Every Apply appends exactly one
// frame to one shard segment:
//
//	[u32 payload length][u32 CRC32-IEEE of payload][payload][0xC3]
//
// payload:
//
//	[u64 LSN][u32 nops] then per op:
//	  [u8 kind (0 put, 1 delete)][u32 klen][key] (+ [u32 vlen][value] for puts)
//
// All integers are little-endian. A frame is committed only when it is
// complete — length, checksum, payload, and the trailing commit marker all
// present and consistent. Recovery truncates a segment at the first
// incomplete or corrupt frame, so a crash mid-Apply either replays the
// whole batch or none of it; the v1 text WAL replayed a prefix of the
// batch, breaking Apply's atomicity promise.
const (
	commitMarker    = 0xC3
	frameHeaderSize = 8  // payload length + CRC
	minPayloadSize  = 12 // LSN + op count
	maxPayloadSize  = 1 << 30

	opPut    = 0
	opDelete = 1
)

var (
	errShortFrame  = errors.New("store: incomplete wal frame")
	errBadLength   = errors.New("store: wal frame length out of range")
	errBadChecksum = errors.New("store: wal frame checksum mismatch")
	errBadMarker   = errors.New("store: wal frame missing commit marker")
)

// walBatch is one decoded batch record.
type walBatch struct {
	lsn uint64
	ops []Op
}

// encodedBatchLen returns the payload size for batch.
func encodedBatchLen(batch []Op) int {
	n := minPayloadSize
	for _, op := range batch {
		n += 1 + 4 + len(op.Key)
		if !op.Delete {
			n += 4 + len(op.Value)
		}
	}
	return n
}

// encodeBatchRecord renders one complete frame (header, payload, marker).
func encodeBatchRecord(lsn uint64, batch []Op) []byte {
	plen := encodedBatchLen(batch)
	buf := make([]byte, frameHeaderSize+plen+1)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(plen))
	p := buf[frameHeaderSize : frameHeaderSize+plen]
	binary.LittleEndian.PutUint64(p[0:8], lsn)
	binary.LittleEndian.PutUint32(p[8:12], uint32(len(batch)))
	off := 12
	for _, op := range batch {
		if op.Delete {
			p[off] = opDelete
		} else {
			p[off] = opPut
		}
		off++
		binary.LittleEndian.PutUint32(p[off:], uint32(len(op.Key)))
		off += 4
		off += copy(p[off:], op.Key)
		if !op.Delete {
			binary.LittleEndian.PutUint32(p[off:], uint32(len(op.Value)))
			off += 4
			off += copy(p[off:], op.Value)
		}
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(p))
	buf[frameHeaderSize+plen] = commitMarker
	return buf
}

// EncodeFrame renders one complete WAL frame — the exact bytes Apply
// would log for this batch at this LSN. Replication tests and tooling
// use it to synthesise leader streams.
func EncodeFrame(lsn uint64, batch []Op) []byte { return encodeBatchRecord(lsn, batch) }

// DecodeFrame parses one complete WAL frame (strict: no trailing bytes).
func DecodeFrame(frame []byte) (lsn uint64, ops []Op, err error) {
	b, n, err := decodeBatchRecord(frame)
	if err != nil {
		return 0, nil, err
	}
	if n != len(frame) {
		return 0, nil, fmt.Errorf("store: %d trailing bytes after frame", len(frame)-n)
	}
	return b.lsn, b.ops, nil
}

// decodeBatchRecord parses the frame at the head of data. frameLen is the
// number of bytes the frame occupies when err is nil. Decoded keys and
// values are copies; they do not alias data.
func decodeBatchRecord(data []byte) (b walBatch, frameLen int, err error) {
	if len(data) < frameHeaderSize {
		return walBatch{}, 0, errShortFrame
	}
	plen := binary.LittleEndian.Uint32(data[0:4])
	if plen < minPayloadSize || plen > maxPayloadSize {
		return walBatch{}, 0, errBadLength
	}
	total := frameHeaderSize + int(plen) + 1
	if len(data) < total {
		return walBatch{}, 0, errShortFrame
	}
	payload := data[frameHeaderSize : frameHeaderSize+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return walBatch{}, 0, errBadChecksum
	}
	if data[total-1] != commitMarker {
		return walBatch{}, 0, errBadMarker
	}
	lsn, ops, err := decodeBatchPayload(payload)
	if err != nil {
		return walBatch{}, 0, err
	}
	return walBatch{lsn: lsn, ops: ops}, total, nil
}

// decodeBatchPayload parses a checksummed payload into its ops. It is
// strict: every byte must be consumed, so encode→decode→encode is
// byte-identical.
func decodeBatchPayload(p []byte) (lsn uint64, ops []Op, err error) {
	lsn = binary.LittleEndian.Uint64(p[0:8])
	nops := binary.LittleEndian.Uint32(p[8:12])
	// Each op needs at least kind+klen (5 bytes); reject counts the
	// payload cannot hold before allocating.
	if int64(nops)*5 > int64(len(p)-minPayloadSize) && nops > 0 {
		return 0, nil, fmt.Errorf("store: wal op count %d exceeds payload", nops)
	}
	ops = make([]Op, 0, nops)
	off := 12
	for i := uint32(0); i < nops; i++ {
		if off+5 > len(p) {
			return 0, nil, errShortFrame
		}
		kind := p[off]
		if kind != opPut && kind != opDelete {
			return 0, nil, fmt.Errorf("store: wal op kind %d unknown", kind)
		}
		klen := int(binary.LittleEndian.Uint32(p[off+1:]))
		off += 5
		if klen < 0 || off+klen > len(p) {
			return 0, nil, errShortFrame
		}
		op := Op{Key: string(p[off : off+klen]), Delete: kind == opDelete}
		off += klen
		if kind == opPut {
			if off+4 > len(p) {
				return 0, nil, errShortFrame
			}
			vlen := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if vlen < 0 || off+vlen > len(p) {
				return 0, nil, errShortFrame
			}
			op.Value = append([]byte(nil), p[off:off+vlen]...)
			off += vlen
		}
		ops = append(ops, op)
	}
	if off != len(p) {
		return 0, nil, fmt.Errorf("store: %d trailing bytes in wal payload", len(p)-off)
	}
	return lsn, ops, nil
}

// recoverSegment decodes frames until the first incomplete or corrupt one.
// valid is the byte offset of the last complete frame — the truncation
// point for a torn tail. It never fails: a corrupt segment simply yields
// the committed prefix.
func recoverSegment(data []byte) (batches []walBatch, valid int) {
	for valid < len(data) {
		b, n, err := decodeBatchRecord(data[valid:])
		if err != nil {
			return batches, valid
		}
		batches = append(batches, b)
		valid += n
	}
	return batches, valid
}

// parseSnapshot decodes a snapshot file, which uses the same framing but
// strictly: any damage is an error, because a snapshot is written with
// fsync+rename and must never be torn.
func parseSnapshot(data []byte) ([]walBatch, error) {
	var batches []walBatch
	off := 0
	for off < len(data) {
		b, n, err := decodeBatchRecord(data[off:])
		if err != nil {
			return nil, fmt.Errorf("store: corrupt snapshot at offset %d: %w", off, err)
		}
		batches = append(batches, b)
		off += n
	}
	return batches, nil
}
